package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunDefault(t *testing.T) {
	if err := run(4, 8, 5, 320); err != nil {
		t.Fatal(err)
	}
}

func TestRunOtherShapes(t *testing.T) {
	if err := run(3, 4, 7, 100); err != nil {
		t.Fatal(err)
	}
	if err := run(1, 2, 3, 40); err != nil {
		t.Fatal(err)
	}
}

// TestTraceOutput runs the demo with tracing enabled and checks the
// acceptance criterion directly: the Chrome trace parses as JSON and
// contains at least p distinct rank timelines, each with send, recv and
// barrier events.
func TestTraceOutput(t *testing.T) {
	const p = 4
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := runConfig(config{P: p, K: 8, K2: 5, N: 320, TracePath: path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Cat string `json:"cat"`
			Tid int64  `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	// kinds[tid] records which event categories appeared on that timeline.
	kinds := make(map[int64]map[string]bool)
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		if kinds[e.Tid] == nil {
			kinds[e.Tid] = make(map[string]bool)
		}
		kinds[e.Tid][e.Cat] = true
	}
	ranks := 0
	for tid, cats := range kinds {
		if tid < 0 || tid >= p {
			continue // host timeline
		}
		ranks++
		for _, want := range []string{"send", "recv", "barrier"} {
			if !cats[want] {
				t.Errorf("rank %d timeline missing %s events (has %v)", tid, want, cats)
			}
		}
	}
	if ranks < p {
		t.Errorf("trace has %d rank timelines, want at least %d", ranks, p)
	}
}

func TestRunInvalid(t *testing.T) {
	if err := run(0, 8, 5, 320); err == nil {
		t.Error("p=0 should fail")
	}
	if err := run(4, 0, 5, 320); err == nil {
		t.Error("k=0 should fail")
	}
}
