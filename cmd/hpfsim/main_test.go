package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/telemetry"
)

// TestWorkloadScriptMirrorsDemo: the rendered script must be a faithful,
// executable-grade mirror of the demo — it parses, and the only findings
// on the default shape are warnings (the cross-distribution copy's
// HPF010 among them), never errors.
func TestWorkloadScriptMirrorsDemo(t *testing.T) {
	for _, cfg := range []config{
		{P: 4, K: 8, K2: 5, N: 320},
		{P: 3, K: 4, K2: 7, N: 100},
		{P: 1, K: 2, K2: 3, N: 40},
	} {
		src := workloadScript(cfg.P, cfg.K, cfg.K2, cfg.N)
		if diags := analysis.AnalyzeSource(src); analysis.HasErrors(diags) {
			t.Errorf("workload script for %+v has errors: %v\n%s", cfg, diags, src)
		}
	}
}

func TestPreflightReportsCrossDistributionCopy(t *testing.T) {
	var buf strings.Builder
	preflight(config{P: 4, K: 8, K2: 5, N: 320}, &buf)
	out := buf.String()
	if !strings.Contains(out, "HPF010") {
		t.Errorf("pre-flight should flag the cyclic(8)->cyclic(5) copy:\n%s", out)
	}
	if !strings.Contains(out, "-nocheck") {
		t.Errorf("pre-flight should mention the opt-out flag:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, "pre-flight:") {
			t.Errorf("unprefixed pre-flight line %q", line)
		}
	}
}

func TestRunDefault(t *testing.T) {
	if err := run(config{P: 4, K: 8, K2: 5, N: 320}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunOtherShapes(t *testing.T) {
	if err := run(config{P: 3, K: 4, K2: 7, N: 100}, nil); err != nil {
		t.Fatal(err)
	}
	if err := run(config{P: 1, K: 2, K2: 3, N: 40}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestTraceOutput runs the demo with tracing enabled and checks the
// acceptance criterion directly: the Chrome trace parses as JSON and
// contains at least p distinct rank timelines, each with send, recv and
// barrier events.
func TestTraceOutput(t *testing.T) {
	const p = 4
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := runConfig(config{P: p, K: 8, K2: 5, N: 320, TracePath: path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Cat string `json:"cat"`
			Tid int64  `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	// kinds[tid] records which event categories appeared on that timeline.
	kinds := make(map[int64]map[string]bool)
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		if kinds[e.Tid] == nil {
			kinds[e.Tid] = make(map[string]bool)
		}
		kinds[e.Tid][e.Cat] = true
	}
	ranks := 0
	for tid, cats := range kinds {
		if tid < 0 || tid >= p {
			continue // host timeline
		}
		ranks++
		for _, want := range []string{"send", "recv", "barrier"} {
			if !cats[want] {
				t.Errorf("rank %d timeline missing %s events (has %v)", tid, want, cats)
			}
		}
	}
	if ranks < p {
		t.Errorf("trace has %d rank timelines, want at least %d", ranks, p)
	}
}

// TestHTTPEndpoints runs the demo with the live exposition server on an
// ephemeral port and scrapes all three endpoints in the window between
// the workload and trace shutdown.
func TestHTTPEndpoints(t *testing.T) {
	get := func(url string) (int, string) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	scraped := false
	cfg := config{P: 4, K: 8, K2: 5, N: 320, HTTPAddr: "127.0.0.1:0",
		afterRun: func(addr string) {
			scraped = true
			if code, body := get("http://" + addr + "/metrics"); code != 200 ||
				!strings.Contains(body, "machine_messages_sent") {
				t.Errorf("/metrics = %d:\n%s", code, body)
			}
			if code, body := get("http://" + addr + "/healthz"); code != 200 ||
				!strings.Contains(body, `"tracing":true`) {
				t.Errorf("/healthz = %d: %s", code, body)
			}
			code, body := get("http://" + addr + "/trace")
			if code != 200 {
				t.Fatalf("/trace = %d", code)
			}
			doc, err := telemetry.ReadTraceV1(strings.NewReader(body))
			if err != nil {
				t.Fatalf("/trace is not trace/v1: %v", err)
			}
			if doc.Ranks != 4 || len(doc.Events) == 0 {
				t.Errorf("trace doc: ranks %d, %d events", doc.Ranks, len(doc.Events))
			}
		}}
	if err := runConfig(cfg); err != nil {
		t.Fatal(err)
	}
	if !scraped {
		t.Fatal("afterRun hook never ran")
	}
	// An unbindable address fails loudly before any work runs.
	if err := runConfig(config{P: 4, K: 8, K2: 5, N: 320, HTTPAddr: "256.0.0.1:bogus"}); err == nil ||
		!strings.Contains(err.Error(), "-http") {
		t.Errorf("bad -http address error = %v, want one naming the flag", err)
	}
}

func TestRunInvalid(t *testing.T) {
	if err := run(config{P: 0, K: 8, K2: 5, N: 320}, nil); err == nil {
		t.Error("p=0 should fail")
	}
	if err := run(config{P: 4, K: 0, K2: 5, N: 320}, nil); err == nil {
		t.Error("k=0 should fail")
	}
}

// TestFaultedRunCompletes: a delay/reorder plan perturbs every transfer
// but must not change any result the demo verifies.
func TestFaultedRunCompletes(t *testing.T) {
	cfg := config{P: 4, K: 8, K2: 5, N: 320,
		FaultSpec: "seed=3,delay=0.2:200us,reorder=0.2"}
	if err := runConfig(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestDroppedRunFailsStructured: drop=1 wedges the section copy; the
// watchdog must convert the hang into a non-nil error naming the
// deadlock, so main exits non-zero instead of hanging.
func TestDroppedRunFailsStructured(t *testing.T) {
	cfg := config{P: 4, K: 8, K2: 5, N: 320, FaultSpec: "seed=1,drop=1"}
	err := runConfig(cfg)
	if err == nil {
		t.Fatal("run with every message dropped should fail")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("error %q should name the deadlock", err)
	}
}

func TestInvalidFaultSpec(t *testing.T) {
	for _, spec := range []string{"drop=2", "bogus", "crash=1@-5"} {
		err := runConfig(config{P: 4, K: 8, K2: 5, N: 320, FaultSpec: spec})
		if err == nil {
			t.Errorf("spec %q should be rejected", spec)
			continue
		}
		if !strings.Contains(err.Error(), "-faults") {
			t.Errorf("error %q should name the -faults flag", err)
		}
	}
}

func TestUnwritableTracePath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no", "such", "dir", "trace.json")
	err := runConfig(config{P: 4, K: 8, K2: 5, N: 320, TracePath: path})
	if err == nil {
		t.Fatal("unwritable -trace path should fail")
	}
	if !strings.Contains(err.Error(), "-trace") {
		t.Errorf("error %q should name the -trace flag", err)
	}
}

// TestBadPprofAddrFailsFast: the -pprof listener must bind before the
// workload runs, so an unusable address is a startup error naming the
// flag — not an async complaint after the machine started.
func TestBadPprofAddrFailsFast(t *testing.T) {
	err := runConfig(config{P: 2, K: 4, K2: 3, N: 64, NoCheck: true,
		PprofAddr: "256.256.256.256:1"})
	if err == nil {
		t.Fatal("unusable -pprof address should fail the run")
	}
	if !strings.Contains(err.Error(), "-pprof") {
		t.Errorf("error %q should name the -pprof flag", err)
	}
}

// TestPprofAnyPort: ":0" now works for -pprof because the listener
// binds synchronously (the old ListenAndServe goroutine could not
// report its bound port at all).
func TestPprofAnyPort(t *testing.T) {
	err := runConfig(config{P: 2, K: 4, K2: 3, N: 64, NoCheck: true,
		PprofAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
}
