package main

import "testing"

func TestRunDefault(t *testing.T) {
	if err := run(4, 8, 5, 320); err != nil {
		t.Fatal(err)
	}
}

func TestRunOtherShapes(t *testing.T) {
	if err := run(3, 4, 7, 100); err != nil {
		t.Fatal(err)
	}
	if err := run(1, 2, 3, 40); err != nil {
		t.Fatal(err)
	}
}

func TestRunInvalid(t *testing.T) {
	if err := run(0, 8, 5, 320); err == nil {
		t.Error("p=0 should fail")
	}
	if err := run(4, 0, 5, 320); err == nil {
		t.Error("k=0 should fail")
	}
}
