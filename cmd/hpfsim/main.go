// Command hpfsim runs a small SPMD demonstration on the simulated
// distributed-memory machine: it distributes an array cyclic(k) over p
// processors, performs strided section assignments through the AM-table
// node code, copies a section between two differently-distributed arrays
// using planned communication sets, and verifies the result against a
// sequential reference.
//
//	hpfsim -p 4 -k 8 -n 320
//	hpfsim -trace trace.json      # per-rank Chrome trace (chrome://tracing, Perfetto)
//	hpfsim -metrics               # dump the telemetry registry (telemetry/v1 JSON)
//	hpfsim -http localhost:8080 -linger 30s   # serve /metrics, /trace, /healthz
//	hpfsim -pprof localhost:6060  # serve net/http/pprof during the run
//	hpfsim -faults seed=3,delay=0.2:200us,reorder=0.2   # seeded chaos run
//	hpfsim -deadline 2s           # blocked receives fail instead of hanging
//
// Before the machine starts, the demo workload is rendered as a
// mini-HPF script and run through the hpflint analysis passes; findings
// (for example the cross-distribution copy's HPF010) are printed to
// stderr as a pre-flight report. -nocheck skips it.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	"repro/internal/analysis"
	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/hpf"
	"repro/internal/machine"
	"repro/internal/redist"
	"repro/internal/section"
	"repro/internal/telemetry"
)

func main() {
	var (
		p        = flag.Int64("p", 4, "number of processors")
		k        = flag.Int64("k", 8, "block size")
		k2       = flag.Int64("k2", 5, "block size of the second distribution")
		n        = flag.Int64("n", 320, "array size")
		trace    = flag.String("trace", "", "write a Chrome trace_event JSON of the run to this file")
		metrics  = flag.Bool("metrics", false, "dump the telemetry registry as telemetry/v1 JSON after the run")
		httpAddr = flag.String("http", "", "serve /metrics (Prometheus), /trace (trace/v1) and /healthz on this address (e.g. localhost:8080)")
		linger   = flag.Duration("linger", 0, "keep the -http server (and the trace) alive this long after the run, for scraping")
		pprof    = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		faults   = flag.String("faults", "", "inject seeded message faults: seed=<n>,drop=<p>,dup=<p>,reorder=<p>,delay=<p>[:<dur>],crash=<rank>@<step>")
		deadline = flag.Duration("deadline", 0, "per-receive deadline: a Recv blocked longer than this fails the run instead of hanging")
		nocheck  = flag.Bool("nocheck", false, "skip the static pre-flight analysis of the workload")
	)
	flag.Parse()
	cfg := config{P: *p, K: *k, K2: *k2, N: *n,
		TracePath: *trace, Metrics: *metrics, PprofAddr: *pprof,
		HTTPAddr: *httpAddr, Linger: *linger,
		FaultSpec: *faults, Deadline: *deadline, NoCheck: *nocheck}
	if err := runConfig(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "hpfsim:", err)
		os.Exit(1)
	}
}

type config struct {
	P, K, K2, N int64
	TracePath   string
	Metrics     bool
	PprofAddr   string
	HTTPAddr    string
	Linger      time.Duration
	FaultSpec   string
	Deadline    time.Duration
	NoCheck     bool

	// afterRun, when set, is called with the -http server's bound
	// address after the workload finishes but before the linger sleep
	// and trace shutdown — the window tests use to scrape endpoints.
	afterRun func(addr string)
}

// traceCapacity retains plenty of events per rank for the demo workload
// while bounding memory for long runs.
const traceCapacity = 1 << 14

func runConfig(cfg config) error {
	// Flag failure modes surface before any work runs: a malformed
	// -faults spec or an unwritable -trace path exits non-zero with a
	// message naming the flag, not a partial run with a surprise at the
	// end.
	var faults *machine.FaultPlan
	if cfg.FaultSpec != "" {
		fp, err := machine.ParseFaultSpec(cfg.FaultSpec)
		if err != nil {
			return fmt.Errorf("invalid -faults spec: %w", err)
		}
		faults = fp
	}
	var traceFile *os.File
	if cfg.TracePath != "" {
		f, err := os.Create(cfg.TracePath)
		if err != nil {
			return fmt.Errorf("cannot write -trace output: %w", err)
		}
		traceFile = f
	}
	// The pprof listener binds synchronously, like -http below: a bad
	// address fails the run up front with an error naming the flag (and
	// ":0" works, with the bound address printed), instead of a goroutine
	// complaining to stderr after the run has started.
	if cfg.PprofAddr != "" {
		ln, err := net.Listen("tcp", cfg.PprofAddr)
		if err != nil {
			if traceFile != nil {
				traceFile.Close()
				os.Remove(cfg.TracePath)
			}
			return fmt.Errorf("cannot serve on -pprof address: %w", err)
		}
		defer ln.Close()
		go http.Serve(ln, nil)
		fmt.Printf("pprof: serving on http://%s/debug/pprof/\n", ln.Addr())
	}
	// The live endpoints bind through net.Listen so ":0" works (the
	// bound address is printed); the run is traced whenever anything can
	// observe it — a -trace file or a /trace scraper.
	var httpLn net.Listener
	if cfg.HTTPAddr != "" {
		ln, err := net.Listen("tcp", cfg.HTTPAddr)
		if err != nil {
			if traceFile != nil {
				traceFile.Close()
				os.Remove(cfg.TracePath)
			}
			return fmt.Errorf("cannot serve on -http address: %w", err)
		}
		httpLn = ln
		defer ln.Close()
		go func() {
			srv := &http.Server{Handler: telemetry.Handler()}
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintln(os.Stderr, "hpfsim: http:", err)
			}
		}()
		fmt.Printf("http: serving /metrics, /trace, /healthz on http://%s/\n", ln.Addr())
	}
	if traceFile != nil || httpLn != nil {
		telemetry.StartTracing(int(cfg.P), traceCapacity)
		defer telemetry.StopTracing()
	}
	if !cfg.NoCheck {
		preflight(cfg, os.Stderr)
	}
	runErr := run(cfg, faults)
	if httpLn != nil && runErr == nil {
		if cfg.afterRun != nil {
			cfg.afterRun(httpLn.Addr().String())
		}
		if cfg.Linger > 0 {
			fmt.Printf("http: lingering %v for scrapers (ctrl-c to stop early)\n", cfg.Linger)
			time.Sleep(cfg.Linger)
		}
	}
	if traceFile != nil {
		t := telemetry.StopTracing()
		if t == nil || runErr != nil {
			traceFile.Close()
			os.Remove(cfg.TracePath)
		} else {
			if err := t.WriteChromeTrace(traceFile); err != nil {
				traceFile.Close()
				return err
			}
			if err := traceFile.Close(); err != nil {
				return err
			}
			fmt.Printf("\ntrace: wrote %s (open in chrome://tracing or https://ui.perfetto.dev)\n", cfg.TracePath)
			fmt.Printf("\nper-rank event summary:\n")
			if err := t.WriteSummary(os.Stdout); err != nil {
				return err
			}
		}
	}
	if cfg.Metrics && runErr == nil {
		fmt.Printf("\ntelemetry registry (%s):\n", telemetry.Schema)
		if err := telemetry.Default().WriteJSON(os.Stdout); err != nil {
			return err
		}
	}
	return runErr
}

// workloadScript renders the demo workload as a mini-HPF script so the
// static analyzer can pre-flight the exact communication pattern the
// machine is about to execute: fill A cyclic(k), strided store, the
// cross-distribution copy into B cyclic(k2), a read of the copied
// section, the redistribute of A onto cyclic(k2), and the final
// verification read.
func workloadScript(p, k, k2, n int64) string {
	sec := section.Section{Lo: 4, Hi: n - 1, Stride: 9}
	dstHi := int64(0)
	if cnt := sec.Count(); cnt > 0 {
		dstHi = 2 * (cnt - 1)
	}
	return fmt.Sprintf(`processors P(%d)
array A(%d) distribute cyclic(%d) onto P
array B(%d) distribute cyclic(%d) onto P
A = 0.0
A(4:%d:9) = -1.0
B(0:%d:2) = A(4:%d:9)
sum B(0:%d:2)
redistribute A cyclic(%d)
sum A(0:%d)
`, p, n, k, n, k2, n-1, dstHi, n-1, dstHi, k2, n-1)
}

// preflight runs the hpflint passes over the rendered workload and
// writes any findings to w. It is advisory: the run proceeds either
// way, and invalid flag combinations still fail in run() with the
// machine's own errors.
func preflight(cfg config, w io.Writer) {
	diags := analysis.AnalyzeSource(workloadScript(cfg.P, cfg.K, cfg.K2, cfg.N))
	if len(diags) == 0 {
		return
	}
	fmt.Fprintln(w, "pre-flight: hpflint findings on the workload script (-nocheck to skip):")
	for _, d := range diags {
		fmt.Fprintf(w, "pre-flight: workload.hpf:%s\n", d)
	}
}

// run executes the demo workload. Machine-level failures — an injected
// crash, a tripped deadlock watchdog, an expired -deadline — arrive as
// panics out of m.Run and are converted to ordinary errors here so main
// exits non-zero with the diagnostic instead of dumping a goroutine
// trace.
func run(cfg config, faults *machine.FaultPlan) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("machine failure: %v", r)
		}
	}()
	p, k, k2, n := cfg.P, cfg.K, cfg.K2, cfg.N
	layoutA, err := dist.New(p, k)
	if err != nil {
		return err
	}
	layoutB, err := dist.New(p, k2)
	if err != nil {
		return err
	}
	m := machine.MustNew(int(p))
	if cfg.Deadline > 0 {
		m.WithDeadline(cfg.Deadline)
	}
	if faults != nil {
		m.SetFaults(faults)
		fmt.Printf("faults: armed %s\n", cfg.FaultSpec)
	}

	fmt.Printf("machine: %d processors\n", p)
	fmt.Printf("A: %d elements, %v\n", n, layoutA)
	fmt.Printf("B: %d elements, %v\n", n, layoutB)

	// A(i) = i, then A(l:u:s) = -1 through the AM-table node code.
	a := hpf.MustNewArray(layoutA, n)
	for i := int64(0); i < n; i++ {
		a.Set(i, float64(i))
	}
	sec := section.Section{Lo: 4, Hi: n - 1, Stride: 9}
	if err := a.FillSection(sec, -1); err != nil {
		return err
	}
	fmt.Printf("\nA(%v) = -1 done; A(4) = %v, A(13) = %v, A(14) = %v\n",
		sec, a.Get(4), a.Get(13), a.Get(14))

	// B(0:2(cnt-1):2) = A(4:…:9): cross-distribution section copy.
	b := hpf.MustNewArray(layoutB, n)
	cnt := sec.Count()
	dstSec := section.Section{Lo: 0, Hi: 2 * (cnt - 1), Stride: 2}
	plan, err := comm.NewPlan(layoutB, n, dstSec, layoutA, n, sec)
	if err != nil {
		return err
	}
	fmt.Printf("\ncopy B%v = A%v: %d elements", dstSec, sec, plan.TotalVolume())
	local := int64(0)
	for q := int64(0); q < p; q++ {
		local += plan.Volume(q, q)
	}
	fmt.Printf(" (%d stay on-processor, %d move)\n", local, plan.TotalVolume()-local)
	if err := plan.Execute(m, b, a); err != nil {
		return err
	}
	fmt.Printf("B(0) = %v, B(2) = %v (expect -1 -1)\n", b.Get(0), b.Get(2))

	// Redistribute A onto layoutB and verify contents survive.
	a2, err := redist.Redistribute(m, a, layoutB)
	if err != nil {
		return err
	}
	same := true
	ga, ga2 := a.Gather(), a2.Gather()
	for i := range ga {
		if ga[i] != ga2[i] {
			same = false
			break
		}
	}
	fmt.Printf("\nredistribute A: %v -> %v, contents preserved: %v\n",
		layoutA, layoutB, same)
	if !same {
		return fmt.Errorf("redistribution corrupted data")
	}

	// Max reduction across the machine for good measure. The barrier
	// aligns every rank's timeline before the timed collective, and shows
	// up as one barrier event per rank in traces.
	var maxes []float64
	m.Run(func(proc *machine.Proc) {
		proc.Barrier()
		localMax := 0.0
		for _, v := range a.LocalMem(int64(proc.Rank())) {
			if v > localMax {
				localMax = v
			}
		}
		if got := proc.AllReduce(localMax, machine.Max); proc.Rank() == 0 {
			maxes = append(maxes, got)
		}
	})
	fmt.Printf("allreduce max(A) = %v\n", maxes[0])
	if faults != nil {
		fmt.Println(m.FaultSummary())
	}
	return nil
}
