// Command hpflint statically analyzes mini-HPF scripts without running
// them. It parses each script with the same grammar the interpreter
// executes (internal/lang/ast) and runs the internal/analysis passes:
// declaration checking, section bounds, shape conformance, distribution
// tracking across redistribute, int64-overflow guards on the lattice
// parameters, a communication-cost lint, and the dataflow passes
// (HPF013–HPF018: redundant/dead redistributes, dead stores,
// possibly-uninitialized reads, layout suggestions and the whole-script
// communication budget).
//
//	hpflint script.hpf            # lint one or more script files
//	hpflint -                     # lint a script from stdin
//	hpflint -json script.hpf      # machine-readable diagnostics
//	hpflint -sarif script.hpf     # SARIF 2.1.0 for CI annotation
//	hpflint -fix script.hpf       # rewrite: drop redundant/dead redistributes
//
// Text diagnostics have the shape
//
//	script.hpf:7:1: error[HPF005]: section 0:400:1 outside A extent [0, 320)
//
// and sort deterministically by (file, line, col, code). A file that
// cannot be read is reported and the remaining files are still linted.
//
// -fix takes exactly one input, prints the rewritten script on stdout
// and notes each applied fix on stderr. Only provably safe rewrites are
// applied: redistribute statements flagged HPF013/HPF014 whose removal
// introduces no new diagnostics (each removal is verified by re-linting)
// are replaced with comments, preserving line numbers.
//
// hpflint exits 1 when any error-severity diagnostic was reported, 2 on
// usage or I/O problems (even if other files linted clean), and 0
// otherwise (clean scripts, or warnings only).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
)

// version tags the SARIF tool descriptor.
const version = "1.0"

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hpflint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	sarifOut := fs.Bool("sarif", false, "emit diagnostics as SARIF 2.1.0")
	fix := fs.Bool("fix", false, "apply safe fixes and print the rewritten script")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: hpflint [-json|-sarif|-fix] [script.hpf ... | -]")
		return 2
	}
	exclusive := 0
	for _, on := range []bool{*jsonOut, *sarifOut, *fix} {
		if on {
			exclusive++
		}
	}
	if exclusive > 1 {
		fmt.Fprintln(stderr, "hpflint: -json, -sarif and -fix are mutually exclusive")
		return 2
	}
	if *fix {
		return runFix(fs.Args(), stdin, stdout, stderr)
	}

	var all []analysis.FileDiagnostic
	hasErrors, ioFailed := false, false
	for _, name := range fs.Args() {
		src, display, err := readScript(name, stdin)
		if err != nil {
			// Report and keep going: one unreadable file must not hide
			// findings in the rest.
			fmt.Fprintln(stderr, "hpflint:", err)
			ioFailed = true
			continue
		}
		diags := analysis.AnalyzeSource(src)
		if analysis.HasErrors(diags) {
			hasErrors = true
		}
		for _, d := range diags {
			all = append(all, analysis.FileDiagnostic{File: display, Diagnostic: d})
		}
	}
	analysis.SortFileDiags(all)

	switch {
	case *sarifOut:
		raw, err := analysis.SARIF("hpflint", version, all)
		if err != nil {
			fmt.Fprintln(stderr, "hpflint:", err)
			return 2
		}
		fmt.Fprintln(stdout, string(raw))
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []analysis.FileDiagnostic{}
		}
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(stderr, "hpflint:", err)
			return 2
		}
	default:
		for _, d := range all {
			fmt.Fprintf(stdout, "%s:%s\n", d.File, d.Diagnostic)
		}
	}
	switch {
	case ioFailed:
		return 2
	case hasErrors:
		return 1
	}
	return 0
}

// runFix implements -fix: rewrite one script, print it, and report the
// applied fixes on stderr.
func runFix(names []string, stdin io.Reader, stdout, stderr io.Writer) int {
	if len(names) != 1 {
		fmt.Fprintln(stderr, "hpflint: -fix takes exactly one script")
		return 2
	}
	src, display, err := readScript(names[0], stdin)
	if err != nil {
		fmt.Fprintln(stderr, "hpflint:", err)
		return 2
	}
	fixed, fixes := analysis.ApplyFixes(src)
	fmt.Fprint(stdout, fixed)
	for _, f := range fixes {
		fmt.Fprintf(stderr, "%s:%d: fixed [%s]: removed %q\n", display, f.Line, f.Code, f.Old)
	}
	if analysis.HasErrors(analysis.AnalyzeSource(fixed)) {
		return 1
	}
	return 0
}

// readScript loads one input: a file path, or "-" for stdin.
func readScript(name string, stdin io.Reader) (src, display string, err error) {
	if name == "-" {
		b, err := io.ReadAll(stdin)
		if err != nil {
			return "", "", err
		}
		return string(b), "<stdin>", nil
	}
	b, err := os.ReadFile(name)
	if err != nil {
		return "", "", err
	}
	return string(b), name, nil
}
