// Command hpflint statically analyzes mini-HPF scripts without running
// them. It parses each script with the same grammar the interpreter
// executes (internal/lang/ast) and runs the internal/analysis passes:
// declaration checking, section bounds, shape conformance, distribution
// tracking across redistribute, int64-overflow guards on the lattice
// parameters, and a communication-cost lint.
//
//	hpflint script.hpf            # lint one or more script files
//	hpflint -                     # lint a script from stdin
//	hpflint -json script.hpf      # machine-readable diagnostics
//
// Text diagnostics have the shape
//
//	script.hpf:7:1: error[HPF005]: section 0:400:1 outside A extent [0, 320)
//
// hpflint exits 1 when any error-severity diagnostic was reported, 2 on
// usage or I/O problems, and 0 otherwise (a clean script, or warnings
// only).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
)

// fileDiagnostic is a diagnostic tagged with the script it came from,
// the unit of -json output.
type fileDiagnostic struct {
	File string `json:"file"`
	analysis.Diagnostic
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hpflint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: hpflint [-json] [script.hpf ... | -]")
		return 2
	}

	var all []fileDiagnostic
	hasErrors := false
	for _, name := range fs.Args() {
		src, display, err := readScript(name, stdin)
		if err != nil {
			fmt.Fprintln(stderr, "hpflint:", err)
			return 2
		}
		diags := analysis.AnalyzeSource(src)
		if analysis.HasErrors(diags) {
			hasErrors = true
		}
		for _, d := range diags {
			all = append(all, fileDiagnostic{File: display, Diagnostic: d})
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []fileDiagnostic{}
		}
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(stderr, "hpflint:", err)
			return 2
		}
	} else {
		for _, d := range all {
			fmt.Fprintf(stdout, "%s:%s\n", d.File, d.Diagnostic)
		}
	}
	if hasErrors {
		return 1
	}
	return 0
}

// readScript loads one input: a file path, or "-" for stdin.
func readScript(name string, stdin io.Reader) (src, display string, err error) {
	if name == "-" {
		b, err := io.ReadAll(stdin)
		if err != nil {
			return "", "", err
		}
		return string(b), "<stdin>", nil
	}
	b, err := os.ReadFile(name)
	if err != nil {
		return "", "", err
	}
	return string(b), name, nil
}
