package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeScript(t *testing.T, script string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "s.hpf")
	if err := os.WriteFile(path, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLintCleanScript(t *testing.T) {
	path := writeScript(t, "processors P(2)\narray A(10) distribute cyclic(2) onto P\nA = 1.0\nsum A\n")
	var out, errOut strings.Builder
	if code := run([]string{path}, nil, &out, &errOut); code != 0 {
		t.Fatalf("clean script: exit %d, stderr %q", code, errOut.String())
	}
	if out.String() != "" {
		t.Errorf("clean script should print nothing, got %q", out.String())
	}
}

func TestLintErrorsExitNonzero(t *testing.T) {
	path := writeScript(t, "processors P(2)\narray A(10) distribute cyclic(2) onto P\nA(0:50) = 1.0\n")
	var out, errOut strings.Builder
	if code := run([]string{path}, nil, &out, &errOut); code != 1 {
		t.Fatalf("script with errors: exit %d, want 1", code)
	}
	got := out.String()
	if !strings.Contains(got, "error[HPF005]") {
		t.Errorf("missing HPF005 diagnostic: %q", got)
	}
	if !strings.HasPrefix(got, path+":3:1:") {
		t.Errorf("diagnostic not prefixed with file:line:col: %q", got)
	}
}

func TestLintWarningsExitZero(t *testing.T) {
	path := writeScript(t, "processors P(2)\narray A(10) distribute cyclic(2) onto P\nA(5:4) = 1.0\n")
	var out, errOut strings.Builder
	if code := run([]string{path}, nil, &out, &errOut); code != 0 {
		t.Fatalf("warnings only: exit %d, want 0", code)
	}
	if !strings.Contains(out.String(), "warning[HPF006]") {
		t.Errorf("missing HPF006 warning: %q", out.String())
	}
}

func TestLintStdin(t *testing.T) {
	var out, errOut strings.Builder
	in := strings.NewReader("bogus\n")
	if code := run([]string{"-"}, in, &out, &errOut); code != 1 {
		t.Fatalf("stdin with syntax error: exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), "<stdin>:1:1: error[HPF001]") {
		t.Errorf("stdin diagnostic wrong: %q", out.String())
	}
}

func TestLintJSON(t *testing.T) {
	path := writeScript(t, "processors P(2)\narray A(10) distribute cyclic(2) onto P\nA(0:50) = 1.0\nA(5:4) = 1.0\n")
	var out, errOut strings.Builder
	if code := run([]string{"-json", path}, nil, &out, &errOut); code != 1 {
		t.Fatalf("json run: exit %d, want 1", code)
	}
	var diags []struct {
		File     string `json:"file"`
		Code     string `json:"code"`
		Severity string `json:"severity"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics, got %v", diags)
	}
	if diags[0].Code != "HPF005" || diags[0].Severity != "error" || diags[0].Line != 3 {
		t.Errorf("first diagnostic wrong: %+v", diags[0])
	}
	if diags[1].Code != "HPF006" || diags[1].Severity != "warning" {
		t.Errorf("second diagnostic wrong: %+v", diags[1])
	}
	if diags[0].File != path {
		t.Errorf("file field wrong: %+v", diags[0])
	}
}

func TestLintJSONClean(t *testing.T) {
	path := writeScript(t, "processors P(2)\narray A(10) distribute cyclic(2) onto P\n")
	var out, errOut strings.Builder
	if code := run([]string{"-json", path}, nil, &out, &errOut); code != 0 {
		t.Fatalf("clean json run: exit %d", code)
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Errorf("clean -json output should be [], got %q", out.String())
	}
}

func TestLintMultipleFiles(t *testing.T) {
	good := writeScript(t, "processors P(2)\narray A(10) distribute cyclic(2) onto P\n")
	bad := writeScript(t, "bogus\n")
	var out, errOut strings.Builder
	if code := run([]string{good, bad}, nil, &out, &errOut); code != 1 {
		t.Fatalf("mixed files: exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), bad+":1:1:") {
		t.Errorf("bad file not reported: %q", out.String())
	}
}

func TestLintUsageAndIOErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, nil, &out, &errOut); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"/nonexistent/x.hpf"}, nil, &out, &errOut); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
}

// TestLintContinuesPastReadErrors: an unreadable file is reported but
// the other files are still linted; the run still exits 2.
func TestLintContinuesPastReadErrors(t *testing.T) {
	bad := writeScript(t, "A(0:50) = 1.0\n")
	var out, errOut strings.Builder
	code := run([]string{"/nonexistent/x.hpf", bad}, nil, &out, &errOut)
	if code != 2 {
		t.Fatalf("exit %d, want 2 (I/O error wins)", code)
	}
	if !strings.Contains(errOut.String(), "hpflint:") {
		t.Errorf("read error not reported: %q", errOut.String())
	}
	if !strings.Contains(out.String(), bad+":1:1:") {
		t.Errorf("remaining file was not linted: %q", out.String())
	}
}

// TestLintDeterministicOrder: diagnostics across files sort by
// (file, line, col, code) regardless of argument order.
func TestLintDeterministicOrder(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.hpf")
	b := filepath.Join(dir, "b.hpf")
	for path, src := range map[string]string{a: "bogus\n", b: "bogus\n"} {
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var out1, out2, errOut strings.Builder
	if code := run([]string{b, a}, nil, &out1, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if code := run([]string{a, b}, nil, &out2, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if out1.String() != out2.String() {
		t.Errorf("output depends on argument order:\n%q\n%q", out1.String(), out2.String())
	}
	if !strings.HasPrefix(out1.String(), a+":") {
		t.Errorf("diagnostics not sorted by file: %q", out1.String())
	}
}

func TestLintSARIF(t *testing.T) {
	path := writeScript(t, "processors P(2)\narray A(10) distribute cyclic(2) onto P\nA(0:50) = 1.0\n")
	var out, errOut strings.Builder
	if code := run([]string{"-sarif", path}, nil, &out, &errOut); code != 1 {
		t.Fatalf("sarif run: exit %d, want 1", code)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out.String()), &log); err != nil {
		t.Fatalf("not valid SARIF JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || len(log.Runs[0].Results) != 1 {
		t.Fatalf("unexpected SARIF shape: %s", out.String())
	}
	if log.Runs[0].Results[0].RuleID != "HPF005" {
		t.Errorf("ruleId = %q, want HPF005", log.Runs[0].Results[0].RuleID)
	}
}

func TestLintFix(t *testing.T) {
	src := `processors P(4)
array A(64) distribute cyclic(4) onto P
A = 1.0
redistribute A cyclic(4)
sum A(0:63)
`
	path := writeScript(t, src)
	var out, errOut strings.Builder
	if code := run([]string{"-fix", path}, nil, &out, &errOut); code != 0 {
		t.Fatalf("fix run: exit %d, stderr %q", code, errOut.String())
	}
	if strings.Contains(out.String(), "redistribute A cyclic(4)") &&
		!strings.Contains(out.String(), "! hpflint -fix") {
		t.Errorf("no-op redistribute not removed:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "fixed [HPF013]") {
		t.Errorf("fix not reported on stderr: %q", errOut.String())
	}
	// The rewritten script must lint clean.
	fixedPath := writeScript(t, out.String())
	var out2, errOut2 strings.Builder
	if code := run([]string{fixedPath}, nil, &out2, &errOut2); code != 0 || out2.String() != "" {
		t.Errorf("fixed script not clean: exit %d, %q", code, out2.String())
	}
}

func TestLintFlagExclusivity(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-json", "-sarif", "x.hpf"}, nil, &out, &errOut); code != 2 {
		t.Errorf("-json -sarif together: exit %d, want 2", code)
	}
	if code := run([]string{"-fix", "a.hpf", "b.hpf"}, nil, &out, &errOut); code != 2 {
		t.Errorf("-fix with two files: exit %d, want 2", code)
	}
}
