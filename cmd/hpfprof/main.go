// Command hpfprof analyzes a trace written by the simulated machine and
// reports where the wall-clock time went: the causal critical path with
// every blocking wait attributed to the peer operation that ended it, a
// per-rank time breakdown, the communication matrix, and load-imbalance
// statistics.
//
// It accepts both trace containers the tools produce and auto-detects
// which one it was given:
//
//	hpfsim -trace trace.json && hpfprof trace.json      # Chrome trace_event JSON
//	curl -s localhost:8080/trace | hpfprof -            # trace/v1 from a live run
//	hpfprof -json trace.json > report.json              # machine-readable (hpfprof/v1)
//	hpfprof -top 3 trace.json                           # shorter tables
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/reuse"
	"repro/internal/telemetry"
	"repro/internal/traceanalysis"
)

// ReportSchema tags the -json output so downstream consumers can
// detect format drift.
const ReportSchema = "hpfprof/v1"

// MemReportSchema tags -mem -json output (hpfmem's format; hpfprof -mem
// is a convenience alias for the hpfmem CLI).
const MemReportSchema = "hpfmem/v1"

// ServeReportSchema tags -serve -json output: the hpfd request-phase
// attribution.
const ServeReportSchema = "hpfprof/serve/v1"

func main() {
	var (
		top      = flag.Int("top", 10, "rows to show in the per-operation tables (0 = all)")
		jsonOut  = flag.Bool("json", false, "emit the full analysis as "+ReportSchema+" JSON instead of text")
		maxSteps = flag.Int("steps", 0, "with -json, cap critical_path.steps at this many entries (0 = all; totals and by_op stay complete)")
		mem      = flag.Bool("mem", false, "treat the input as an accesstrace/v1 memory trace and run the reuse-distance locality analysis (like hpfmem)")
		serve    = flag.Bool("serve", false, "treat the input as an hpfd trace/v1 dump and report per-request phase attribution and the coalescing tree")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: hpfprof [flags] <trace-file>\n\nAnalyzes a trace/v1 or Chrome trace_event JSON file (\"-\" reads stdin).\nWith -mem, analyzes an accesstrace/v1 memory trace instead.\nWith -serve, analyzes an hpfd trace/v1 dump (curl /trace | hpfprof -serve -).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	var err error
	switch {
	case *mem:
		err = runMem(os.Stdout, os.Stderr, flag.Arg(0), *jsonOut)
	case *serve:
		err = runServe(os.Stdout, flag.Arg(0), *jsonOut)
	default:
		err = run(os.Stdout, os.Stderr, flag.Arg(0), *top, *maxSteps, *jsonOut)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpfprof:", err)
		os.Exit(1)
	}
}

// runServe is the hpfd request-attribution path: a trace/v1 dump in,
// per-phase latency and the coalescing tree out.
func runServe(w io.Writer, path string, jsonOut bool) error {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	doc, err := telemetry.ReadTraceV1(r)
	if err != nil {
		return err
	}
	a, err := traceanalysis.AnalyzeServe(doc)
	if err != nil {
		return err
	}
	if !jsonOut {
		return a.WriteText(w)
	}
	out := struct {
		Schema string `json:"schema"`
		*traceanalysis.ServeAnalysis
	}{ServeReportSchema, a}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// runMem is the hpfmem analysis inlined: locality tables from a memory
// access trace.
func runMem(w, ew io.Writer, path string, jsonOut bool) error {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	doc, err := telemetry.ReadAccessTrace(r)
	if err != nil {
		return err
	}
	rep := reuse.BuildReport(doc, reuse.Options{Chunks: 4})
	if !jsonOut {
		return rep.WriteText(w)
	}
	if rep.Dropped > 0 {
		fmt.Fprintf(ew, "hpfprof: WARNING: access rings overwrote %d records; distances near the start of the run are missing or inflated\n", rep.Dropped)
	}
	out := struct {
		Schema string `json:"schema"`
		*reuse.Report
	}{MemReportSchema, rep}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func run(w, ew io.Writer, path string, top, maxSteps int, jsonOut bool) error {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	tr, err := traceanalysis.Load(r)
	if err != nil {
		return err
	}
	a, err := traceanalysis.Analyze(tr)
	if err != nil {
		return err
	}
	if !jsonOut {
		return a.WriteText(w, top)
	}
	// The text report embeds its truncation warning; the JSON path keeps
	// stdout machine-readable and shouts on stderr instead.
	if a.Dropped > 0 {
		fmt.Fprintf(ew, "hpfprof: WARNING: trace rings overwrote %d events; the analysis only covers the end of the run\n", a.Dropped)
	}
	if maxSteps > 0 && len(a.CriticalPath.Steps) > maxSteps {
		a.CriticalPath.Steps = a.CriticalPath.Steps[:maxSteps]
	}
	doc := struct {
		Schema string `json:"schema"`
		*traceanalysis.Analysis
	}{ReportSchema, a}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
