// Command hpfprof analyzes a trace written by the simulated machine and
// reports where the wall-clock time went: the causal critical path with
// every blocking wait attributed to the peer operation that ended it, a
// per-rank time breakdown, the communication matrix, and load-imbalance
// statistics.
//
// It accepts both trace containers the tools produce and auto-detects
// which one it was given:
//
//	hpfsim -trace trace.json && hpfprof trace.json      # Chrome trace_event JSON
//	curl -s localhost:8080/trace | hpfprof -            # trace/v1 from a live run
//	hpfprof -json trace.json > report.json              # machine-readable (hpfprof/v1)
//	hpfprof -top 3 trace.json                           # shorter tables
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/traceanalysis"
)

// ReportSchema tags the -json output so downstream consumers can
// detect format drift.
const ReportSchema = "hpfprof/v1"

func main() {
	var (
		top      = flag.Int("top", 10, "rows to show in the per-operation tables (0 = all)")
		jsonOut  = flag.Bool("json", false, "emit the full analysis as "+ReportSchema+" JSON instead of text")
		maxSteps = flag.Int("steps", 0, "with -json, cap critical_path.steps at this many entries (0 = all; totals and by_op stay complete)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: hpfprof [flags] <trace-file>\n\nAnalyzes a trace/v1 or Chrome trace_event JSON file (\"-\" reads stdin).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, os.Stderr, flag.Arg(0), *top, *maxSteps, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "hpfprof:", err)
		os.Exit(1)
	}
}

func run(w, ew io.Writer, path string, top, maxSteps int, jsonOut bool) error {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	tr, err := traceanalysis.Load(r)
	if err != nil {
		return err
	}
	a, err := traceanalysis.Analyze(tr)
	if err != nil {
		return err
	}
	if !jsonOut {
		return a.WriteText(w, top)
	}
	// The text report embeds its truncation warning; the JSON path keeps
	// stdout machine-readable and shouts on stderr instead.
	if a.Dropped > 0 {
		fmt.Fprintf(ew, "hpfprof: WARNING: trace rings overwrote %d events; the analysis only covers the end of the run\n", a.Dropped)
	}
	if maxSteps > 0 && len(a.CriticalPath.Steps) > maxSteps {
		a.CriticalPath.Steps = a.CriticalPath.Steps[:maxSteps]
	}
	doc := struct {
		Schema string `json:"schema"`
		*traceanalysis.Analysis
	}{ReportSchema, a}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
