package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/telemetry"
)

// traceFiles runs a small traced 2-rank workload and writes it out in
// both container formats, returning their paths.
func traceFiles(t *testing.T) (chromePath, v1Path string) {
	t.Helper()
	tr := telemetry.StartTracing(2, 1024)
	defer telemetry.StopTracing()
	m := machine.MustNew(2)
	m.Run(func(p *machine.Proc) {
		if p.Rank() == 0 {
			p.Send(1, "ping", []float64{1, 2, 3}, nil)
			p.Recv(1, "pong")
		} else {
			p.Recv(0, "ping")
			p.Send(0, "pong", []float64{4}, nil)
		}
		p.Barrier()
	})
	dir := t.TempDir()
	chromePath = filepath.Join(dir, "chrome.json")
	v1Path = filepath.Join(dir, "v1.json")
	cf, err := os.Create(chromePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChromeTrace(cf); err != nil {
		t.Fatal(err)
	}
	cf.Close()
	vf, err := os.Create(v1Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteTraceV1(vf); err != nil {
		t.Fatal(err)
	}
	vf.Close()
	return chromePath, v1Path
}

func TestTextReport(t *testing.T) {
	chromePath, v1Path := traceFiles(t)
	for name, path := range map[string]string{"chrome": chromePath, "trace/v1": v1Path} {
		var out, errOut bytes.Buffer
		if err := run(&out, &errOut, path, 10, 0, false); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		report := out.String()
		for _, want := range []string{
			"hpfprof report: 2 ranks",
			"Critical path:",
			"Per-rank time breakdown:",
			"Load imbalance:",
			"Communication matrix (2 messages",
		} {
			if !strings.Contains(report, want) {
				t.Errorf("%s: report missing %q:\n%s", name, want, report)
			}
		}
		if strings.Contains(report, "WARNING") {
			t.Errorf("%s: unexpected truncation warning:\n%s", name, report)
		}
	}
}

func TestJSONReport(t *testing.T) {
	_, v1Path := traceFiles(t)
	var out, errOut bytes.Buffer
	if err := run(&out, &errOut, v1Path, 10, 0, true); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema       string `json:"schema"`
		Ranks        int    `json:"ranks"`
		CriticalPath struct {
			TotalNs int64 `json:"total_ns"`
			Steps   []any `json:"steps"`
		} `json:"critical_path"`
		WallClockNs int64 `json:"wall_clock_ns"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, out.String())
	}
	if doc.Schema != ReportSchema {
		t.Errorf("schema = %q, want %q", doc.Schema, ReportSchema)
	}
	if doc.Ranks != 2 || len(doc.CriticalPath.Steps) == 0 {
		t.Errorf("ranks %d, %d path steps; want 2 ranks and a non-empty path",
			doc.Ranks, len(doc.CriticalPath.Steps))
	}
	if doc.CriticalPath.TotalNs <= 0 || doc.CriticalPath.TotalNs > doc.WallClockNs {
		t.Errorf("critical path %d vs wall clock %d", doc.CriticalPath.TotalNs, doc.WallClockNs)
	}
	if errOut.Len() != 0 {
		t.Errorf("unexpected stderr output: %s", errOut.String())
	}
}

// A truncated trace must shout, in both output modes.
func TestDroppedWarning(t *testing.T) {
	tr := telemetry.NewTracer(1, 4)
	for i := 0; i < 20; i++ {
		tr.Record(telemetry.Event{Kind: telemetry.KindSend, Name: "x", Rank: 0, Peer: 0,
			Seq: int64(i + 1), Start: int64(i * 100), Dur: 50})
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "truncated.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteTraceV1(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out, errOut bytes.Buffer
	if err := run(&out, &errOut, path, 10, 0, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "WARNING") || !strings.Contains(out.String(), "16 events") {
		t.Errorf("text report does not warn about 16 dropped events:\n%s", out.String())
	}

	out.Reset()
	if err := run(&out, &errOut, path, 10, 0, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut.String(), "WARNING") {
		t.Errorf("-json mode did not warn on stderr: %q", errOut.String())
	}
	if strings.Contains(out.String(), "WARNING") {
		t.Errorf("-json stdout polluted by warning:\n%s", out.String())
	}
}

// hpfprof -mem is the hpfmem analysis inlined; it must keep the same
// stdout/stderr discipline: hpfmem/v1 JSON clean on stdout, truncation
// warnings on stderr only.
func TestMemReport(t *testing.T) {
	rec := telemetry.NewAccessRecorder(1, 64, 1)
	step := rec.BeginStep("hpf.map_section:constgap")
	for a := int64(0); a < 50; a++ {
		rec.Record(0, a%32, telemetry.AccessRead, step)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "access.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out, errOut bytes.Buffer
	if err := runMem(&out, &errOut, path, false); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Reuse-distance locality report", "hpf.map_section:constgap"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	errOut.Reset()
	if err := runMem(&out, &errOut, path, true); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  string `json:"schema"`
		Ranks   int    `json:"ranks"`
		PerRank []any  `json:"per_rank"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("-mem -json output is not JSON: %v\n%s", err, out.String())
	}
	if doc.Schema != MemReportSchema || doc.Ranks != 1 || len(doc.PerRank) != 1 {
		t.Errorf("-mem -json doc = %+v", doc)
	}
	if strings.Contains(out.String(), "WARNING") {
		t.Errorf("-mem -json stdout polluted by warning:\n%s", out.String())
	}
	if errOut.Len() != 0 {
		t.Errorf("unexpected stderr output for a complete trace: %q", errOut.String())
	}

	// Overflow the 64-record ring; the warning must land on stderr only.
	for a := int64(0); a < 200; a++ {
		rec.Record(0, a, telemetry.AccessRead, step)
	}
	f, err = os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out.Reset()
	errOut.Reset()
	if err := runMem(&out, &errOut, path, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut.String(), "WARNING") {
		t.Errorf("-mem -json mode did not warn on stderr: %q", errOut.String())
	}
	if strings.Contains(out.String(), "WARNING") {
		t.Errorf("-mem -json stdout polluted by warning:\n%s", out.String())
	}
}

func TestBadInputs(t *testing.T) {
	if err := run(&bytes.Buffer{}, &bytes.Buffer{}, "/no/such/file.json", 10, 0, false); err == nil {
		t.Error("no error for missing file")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&bytes.Buffer{}, &bytes.Buffer{}, bad, 10, 0, false); err == nil {
		t.Error("no error for non-trace input")
	}
}

// serveTraceFile records a small hpfd-style request trace — one builder
// with compile phases and one coalesced waiter — and writes it as
// trace/v1.
func serveTraceFile(t *testing.T) string {
	t.Helper()
	tr := telemetry.StartTracing(0, 1024)
	defer telemetry.StopTracing()

	ctx, root := telemetry.StartSpan(context.Background(), "hpfd.request")
	_, adm := telemetry.StartSpan(ctx, "hpfd.admission")
	adm.End()
	bctx, build := telemetry.StartSpan(ctx, "hpfd.build")
	_, tbl := telemetry.StartSpan(bctx, "hpfd.tables")
	tbl.End()
	_, sel := telemetry.StartSpan(bctx, "hpfd.select")
	sel.End()
	_, enc := telemetry.StartSpan(bctx, "hpfd.encode")
	enc.End()
	build.End()
	root.End()

	wctx, wroot := telemetry.StartSpan(context.Background(), "hpfd.request")
	_, wait := telemetry.StartSpan(wctx, "hpfd.wait")
	wait.EndLink(build.Context().Span)
	wroot.End()

	path := filepath.Join(t.TempDir(), "serve.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteTraceV1(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return path
}

func TestServeReport(t *testing.T) {
	path := serveTraceFile(t)
	var out bytes.Buffer
	if err := runServe(&out, path, false); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"2 requests, 1 builds, 1 coalesced waiters",
		"admission", "build", "tables", "select", "encode", "wait", "unattributed",
		"coalescing tree (1 flights)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text report missing %q:\n%s", want, text)
		}
	}

	out.Reset()
	if err := runServe(&out, path, true); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema   string `json:"schema"`
		Requests int    `json:"requests"`
		Builds   int    `json:"builds"`
		Waiters  int    `json:"waiters"`
		Phases   []struct {
			Name string `json:"name"`
		} `json:"phases"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("-serve -json output is not JSON: %v", err)
	}
	if doc.Schema != ServeReportSchema {
		t.Errorf("schema = %q, want %q", doc.Schema, ServeReportSchema)
	}
	if doc.Requests != 2 || doc.Builds != 1 || doc.Waiters != 1 {
		t.Errorf("requests/builds/waiters = %d/%d/%d, want 2/1/1", doc.Requests, doc.Builds, doc.Waiters)
	}
	if len(doc.Phases) != 8 {
		t.Errorf("got %d phases, want 8", len(doc.Phases))
	}
}

// TestServeReportRejectsSPMDTrace: feeding a rank trace to -serve is a
// clear error, not an empty report.
func TestServeReportRejectsSPMDTrace(t *testing.T) {
	_, v1Path := traceFiles(t)
	var out bytes.Buffer
	if err := runServe(&out, v1Path, false); err == nil {
		t.Error("no error for an SPMD trace")
	}
}
