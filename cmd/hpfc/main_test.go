package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDemo(t *testing.T) {
	var out strings.Builder
	if err := run(true, nil, nil, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "AM = [3, 12, 15, 12, 3, 12, 3, 12]") {
		t.Errorf("demo missing paper table:\n%s", got)
	}
	if !strings.Contains(got, "sum B(0:319:1) = 3600") {
		t.Errorf("demo missing copy sum:\n%s", got)
	}
	// Redistribution must preserve the section sum.
	if strings.Count(got, "sum A(4:319:9) = 3600") != 2 {
		t.Errorf("demo sums before/after redistribute wrong:\n%s", got)
	}
}

func TestRunFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.hpf")
	script := "processors P(2)\narray A(10) distribute cyclic(2) onto P\nA = 3.0\nsum A\n"
	if err := os.WriteFile(path, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(false, []string{path}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "sum A(0:9:1) = 30") {
		t.Errorf("file run output wrong: %q", out.String())
	}
}

func TestRunStdin(t *testing.T) {
	var out strings.Builder
	in := strings.NewReader("processors P(2)\narray A(4) distribute cyclic onto P\nA = 1.0\nsum A\n")
	if err := run(false, []string{"-"}, in, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "sum A(0:3:1) = 4") {
		t.Errorf("stdin run output wrong: %q", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(false, nil, nil, &strings.Builder{}); err == nil {
		t.Error("no args should fail")
	}
	if err := run(false, []string{"/nonexistent/script.hpf"}, nil, &strings.Builder{}); err == nil {
		t.Error("missing file should fail")
	}
	in := strings.NewReader("bogus\n")
	if err := run(false, []string{"-"}, in, &strings.Builder{}); err == nil {
		t.Error("bad script should fail")
	}
}
