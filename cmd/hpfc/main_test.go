package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDemo(t *testing.T) {
	var out strings.Builder
	if err := run(true, false, nil, nil, &out, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "AM = [3, 12, 15, 12, 3, 12, 3, 12]") {
		t.Errorf("demo missing paper table:\n%s", got)
	}
	if !strings.Contains(got, "sum B(0:319:1) = 3600") {
		t.Errorf("demo missing copy sum:\n%s", got)
	}
	// Redistribution must preserve the section sum.
	if strings.Count(got, "sum A(4:319:9) = 3600") != 2 {
		t.Errorf("demo sums before/after redistribute wrong:\n%s", got)
	}
}

// TestRunDemoGolden pins the demo output byte-for-byte: the
// parse-then-execute front end must not change what the interpreter
// prints. Refresh with:
//
//	go run ./cmd/hpfc -demo > cmd/hpfc/testdata/demo.golden
func TestRunDemoGolden(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "demo.golden"))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(true, false, nil, nil, &out, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if out.String() != string(want) {
		t.Errorf("demo output diverged from golden file\ngot:\n%s\nwant:\n%s",
			out.String(), want)
	}
}

func TestRunFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.hpf")
	script := "processors P(2)\narray A(10) distribute cyclic(2) onto P\nA = 3.0\nsum A\n"
	if err := os.WriteFile(path, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(false, false, []string{path}, nil, &out, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "sum A(0:9:1) = 30") {
		t.Errorf("file run output wrong: %q", out.String())
	}
}

func TestRunStdin(t *testing.T) {
	var out strings.Builder
	in := strings.NewReader("processors P(2)\narray A(4) distribute cyclic onto P\nA = 1.0\nsum A\n")
	if err := run(false, false, []string{"-"}, in, &out, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "sum A(0:3:1) = 4") {
		t.Errorf("stdin run output wrong: %q", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(false, false, nil, nil, &strings.Builder{}, &strings.Builder{}); err == nil {
		t.Error("no args should fail")
	}
	if err := run(false, false, []string{"/nonexistent/script.hpf"}, nil,
		&strings.Builder{}, &strings.Builder{}); err == nil {
		t.Error("missing file should fail")
	}
	in := strings.NewReader("bogus\n")
	if err := run(false, false, []string{"-"}, in,
		&strings.Builder{}, &strings.Builder{}); err == nil {
		t.Error("bad script should fail")
	}
}

func TestCheckStopsErrors(t *testing.T) {
	// Out-of-bounds section: -check must refuse to run the script.
	var out, errOut strings.Builder
	in := strings.NewReader("processors P(2)\narray A(10) distribute cyclic(2) onto P\nA(0:50) = 1.0\nsum A\n")
	err := run(false, true, []string{"-"}, in, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "check failed") {
		t.Fatalf("check should stop the script, got err=%v", err)
	}
	if !strings.Contains(errOut.String(), "HPF005") {
		t.Errorf("stderr missing HPF005 diagnostic:\n%s", errOut.String())
	}
	if out.String() != "" {
		t.Errorf("script ran despite check errors:\n%s", out.String())
	}
}

func TestCheckWarningsStillRun(t *testing.T) {
	// An empty section is a warning: report it, then run anyway.
	var out, errOut strings.Builder
	in := strings.NewReader("processors P(2)\narray A(10) distribute cyclic(2) onto P\nA(5:4) = 1.0\nA = 2.0\nsum A\n")
	if err := run(false, true, []string{"-"}, in, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut.String(), "HPF006") {
		t.Errorf("stderr missing HPF006 warning:\n%s", errOut.String())
	}
	if !strings.Contains(out.String(), "sum A(0:9:1) = 20") {
		t.Errorf("warnings must not stop execution:\n%s", out.String())
	}
}

func TestCheckDemo(t *testing.T) {
	// The built-in demo has no errors, so -check must let it run; its
	// deliberate cross-distribution copy (cyclic(8) -> cyclic(5)) is
	// exactly what the communication-cost lint exists to flag.
	var out, errOut strings.Builder
	if err := run(true, true, nil, nil, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut.String(), "HPF010") {
		t.Errorf("demo's cross-distribution copy should warn HPF010:\n%s", errOut.String())
	}
	if strings.Contains(errOut.String(), "error[") {
		t.Errorf("demo script should have no errors:\n%s", errOut.String())
	}
	if !strings.Contains(out.String(), "AM = [3, 12, 15, 12, 3, 12, 3, 12]") {
		t.Errorf("demo did not run under -check:\n%s", out.String())
	}
}
