// Command hpfc interprets the miniature HPF-flavored array language of
// internal/lang: distributed array declarations and section assignments
// lowered onto the library's AM tables, communication sets and the
// simulated machine.
//
//	hpfc script.hpf        # run a script file
//	hpfc -                 # read the script from stdin
//	hpfc -demo             # run the built-in demo script
//	hpfc -check script.hpf # statically analyze first, then run
//
// With -check, the internal/analysis passes (the same ones cmd/hpflint
// runs) vet the script before execution: diagnostics go to stderr, and
// error-severity findings stop the script from running at all. That
// includes the dataflow warnings HPF013–HPF018 (redundant and dead
// redistributes, dead stores, possibly-uninitialized reads, layout
// suggestions, the whole-script communication budget) — advisory here,
// but fixable with hpflint -fix.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/lang"
)

const demoScript = `! the paper's running example, as a script
processors P(4)
array A(320) distribute cyclic(8) onto P
array B(320) distribute cyclic(5) onto P

A(0:319:1) = 0.0
A(4:319:9) = 100.0
table A(4:319:9) on 1
print A(4:40:9)
sum A(4:319:9)

! cross-distribution section copy (planned communication sets)
B(0:319:1) = 0.0
B(0:70:2) = A(4:319:9)
sum B(0:319:1)

! change the block size mid-run
redistribute A cyclic(16)
sum A(4:319:9)

! two-dimensional arrays on a processor grid
processors Q(2,2)
array M(8,12) distribute (cyclic(2),cyclic(3)) onto Q
array N(12,8) distribute (cyclic(3),cyclic(2)) onto Q
M(0:7, 0:11) = 1.0
M(0:7:2, 0:11:3) = 5.0
sum M(0:7, 0:11)
N(0:11, 0:7) = transpose M(0:7, 0:11)
sum N(0:11, 0:7)
stats
`

func main() {
	demo := flag.Bool("demo", false, "run the built-in demo script")
	check := flag.Bool("check", false, "statically analyze the script before running it")
	flag.Parse()
	if err := run(*demo, *check, flag.Args(), os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "hpfc:", err)
		os.Exit(1)
	}
}

func run(demo, check bool, args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	var src string
	switch {
	case demo:
		src = demoScript
	case len(args) == 1 && args[0] == "-":
		b, err := io.ReadAll(stdin)
		if err != nil {
			return err
		}
		src = string(b)
	case len(args) == 1:
		b, err := os.ReadFile(args[0])
		if err != nil {
			return err
		}
		src = string(b)
	default:
		return fmt.Errorf("usage: hpfc [-demo] [-check] [script.hpf | -]")
	}
	if check {
		diags := analysis.AnalyzeSource(src)
		for _, d := range diags {
			fmt.Fprintln(stderr, d)
		}
		if analysis.HasErrors(diags) {
			return fmt.Errorf("check failed: script has errors")
		}
	}
	in := lang.New()
	if err := in.Run(src); err != nil {
		return err
	}
	_, err := io.WriteString(stdout, in.Output())
	return err
}
