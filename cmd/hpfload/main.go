// Command hpfload drives a zipf-keyed request load at a running hpfd
// instance and reports client-observed latency percentiles together
// with the server's coalescing effectiveness (scraped from /metrics
// before and after the run). A zipf key popularity with s slightly
// above 1 is the classic cache workload: a few hot keys dominate, so
// the interesting behavior — thundering herds on a popular cold key —
// happens naturally at the start of every run.
//
//	hpfload -addr localhost:8080                  # 2000 requests, 16 workers, 64 keys
//	hpfload -addr localhost:8080 -n 10000 -c 64   # heavier burst
//	hpfload -addr localhost:8080 -zipf 0          # uniform key popularity
//	hpfload -addr localhost:8080 -json            # hpfload/v1 machine-readable report
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
	"repro/internal/telemetry"
)

func main() {
	var (
		addr    = flag.String("addr", "", "hpfd address to load (host:port; required)")
		n       = flag.Int64("n", 2000, "total number of requests")
		c       = flag.Int("c", 16, "concurrent workers")
		keys    = flag.Int("keys", 64, "number of distinct plan keys in the working set")
		zipf    = flag.Float64("zipf", 1.2, "zipf s parameter for key popularity (> 1; <= 1 means uniform)")
		seed    = flag.Int64("seed", 1, "random seed for key selection (runs are reproducible)")
		tenant  = flag.String("tenant", "", "X-Tenant header to send with every request")
		asJSON  = flag.Bool("json", false, "emit the hpfload/v1 report as JSON instead of text")
		timeout = flag.Duration("timeout", 30*time.Second, "per-request timeout")
	)
	flag.Parse()
	cfg := loadConfig{Addr: *addr, N: *n, C: *c, Keys: *keys, Zipf: *zipf,
		Seed: *seed, Tenant: *tenant, Timeout: *timeout}
	rep, err := runLoad(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpfload:", err)
		os.Exit(1)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "hpfload:", err)
			os.Exit(1)
		}
		return
	}
	printReport(os.Stdout, rep)
}

type loadConfig struct {
	Addr    string
	N       int64
	C       int
	Keys    int
	Zipf    float64
	Seed    int64
	Tenant  string
	Timeout time.Duration
}

// ReportSchema tags the machine-readable load report.
const ReportSchema = "hpfload/v1"

// serverDelta is what the server-side counters moved by during the run,
// scraped from /metrics. Compiles is the number of plans actually
// built; Coalesced counts herd waiters that reused an in-flight build —
// the coalescing win hpfload exists to measure.
type serverDelta struct {
	Compiles  int64 `json:"compiles"`
	Coalesced int64 `json:"coalesced"`
	Hits      int64 `json:"hits"`
	Scraped   bool  `json:"scraped"` // false when /metrics lacked the plan-cache gauges
}

type report struct {
	Schema     string  `json:"schema"`
	Addr       string  `json:"addr"`
	Requests   int64   `json:"requests"`
	Workers    int     `json:"workers"`
	Keys       int     `json:"keys"`
	Zipf       float64 `json:"zipf"`
	Seed       int64   `json:"seed"`
	OK         int64   `json:"ok"`
	Throttled  int64   `json:"throttled_429"`
	Failed     int64   `json:"failed"`
	DurationNs int64   `json:"duration_ns"`
	Throughput float64 `json:"requests_per_second"`
	P50Ns      int64   `json:"p50_ns"`
	P90Ns      int64   `json:"p90_ns"`
	P99Ns      int64   `json:"p99_ns"`
	MaxNs      int64   `json:"max_ns"`

	// StatusCounts breaks every response down by status code ("200",
	// "429", ...), plus "error" for transport failures that never got a
	// status line. ThrottledRate is 429s over all requests.
	StatusCounts  map[string]int64 `json:"status_counts"`
	ThrottledRate float64          `json:"throttled_rate"`
	// RetryAfter summarizes the Retry-After values the server attached to
	// its 429s; nil when the run was never throttled.
	RetryAfter *retryAfterStats `json:"retry_after,omitempty"`

	Server serverDelta `json:"server"`
	// CoalescingEffectiveness is Coalesced / (Coalesced + Compiles): the
	// fraction of cold-path requests that rode an existing build instead
	// of compiling. 0 when the server exposed no counters or stayed warm.
	CoalescingEffectiveness float64 `json:"coalescing_effectiveness"`
}

// retryAfterStats aggregates the Retry-After seconds observed on 429
// responses. A load generator that honors these would sleep MeanSeconds
// on average before retrying — so the spread is worth reporting.
type retryAfterStats struct {
	Count       int64   `json:"count"`
	MinSeconds  int64   `json:"min_seconds"`
	MaxSeconds  int64   `json:"max_seconds"`
	MeanSeconds float64 `json:"mean_seconds"`
}

// statusTally is the workers' shared outcome sink. One mutex is fine
// here: the critical section is a map increment, dwarfed by the HTTP
// round trip each worker performs between visits.
type statusTally struct {
	mu      sync.Mutex
	counts  map[string]int64
	raCount int64
	raSum   int64
	raMin   int64
	raMax   int64
}

func newStatusTally() *statusTally {
	return &statusTally{counts: make(map[string]int64)}
}

func (t *statusTally) observe(status string, retryAfter string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.counts[status]++
	if retryAfter == "" {
		return
	}
	// hpfd sends delta-seconds; ignore HTTP-date or garbage values rather
	// than failing the run over a malformed header.
	sec, err := strconv.ParseInt(strings.TrimSpace(retryAfter), 10, 64)
	if err != nil || sec < 0 {
		return
	}
	if t.raCount == 0 || sec < t.raMin {
		t.raMin = sec
	}
	if sec > t.raMax {
		t.raMax = sec
	}
	t.raCount++
	t.raSum += sec
}

func (t *statusTally) report() (map[string]int64, *retryAfterStats) {
	t.mu.Lock()
	defer t.mu.Unlock()
	counts := make(map[string]int64, len(t.counts))
	for k, v := range t.counts {
		counts[k] = v
	}
	if t.raCount == 0 {
		return counts, nil
	}
	return counts, &retryAfterStats{
		Count:       t.raCount,
		MinSeconds:  t.raMin,
		MaxSeconds:  t.raMax,
		MeanSeconds: float64(t.raSum) / float64(t.raCount),
	}
}

// makeKeys synthesizes the working set: distinct (k, l, s) variations
// over a 4096-element array on 4 processors, index i always mapping to
// the same key so runs are comparable across processes.
func makeKeys(n int) []serve.PlanRequest {
	keys := make([]serve.PlanRequest, n)
	for i := range keys {
		keys[i] = serve.PlanRequest{
			P: 4,
			K: 8 + int64(i%8)*4,
			L: int64(i / 1000),
			U: 4095,
			S: 3 + 2*int64(i%1000),
			N: 4096,
		}
	}
	return keys
}

func runLoad(cfg loadConfig) (*report, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("-addr is required (the hpfd instance to load)")
	}
	if cfg.N < 1 || cfg.C < 1 || cfg.Keys < 1 {
		return nil, fmt.Errorf("-n, -c and -keys must all be >= 1")
	}
	base := cfg.Addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: cfg.Timeout}
	before, err := scrapeCounters(client, base)
	if err != nil {
		return nil, fmt.Errorf("server not reachable: %w", err)
	}

	keys := makeKeys(cfg.Keys)
	bodies := make([][]byte, len(keys))
	for i, k := range keys {
		b, err := json.Marshal(k)
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}

	var (
		latency   telemetry.Histogram
		ok        atomic.Int64
		throttled atomic.Int64
		failed    atomic.Int64
		next      atomic.Int64
	)
	tally := newStatusTally()
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.C; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker owns a seeded source: rand.Zipf is not safe for
			// concurrent use, and per-worker seeding keeps runs reproducible
			// for a fixed (seed, c).
			r := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			var z *rand.Zipf
			if cfg.Zipf > 1 && cfg.Keys > 1 {
				z = rand.NewZipf(r, cfg.Zipf, 1, uint64(cfg.Keys-1))
			}
			for next.Add(1) <= cfg.N {
				var i int
				if z != nil {
					i = int(z.Uint64())
				} else {
					i = r.Intn(cfg.Keys)
				}
				t0 := time.Now()
				req, err := http.NewRequest(http.MethodPost, base+"/v1/plan",
					strings.NewReader(string(bodies[i])))
				if err != nil {
					failed.Add(1)
					tally.observe("error", "")
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				if cfg.Tenant != "" {
					req.Header.Set("X-Tenant", cfg.Tenant)
				}
				resp, err := client.Do(req)
				if err != nil {
					failed.Add(1)
					tally.observe("error", "")
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				latency.Observe(time.Since(t0).Nanoseconds())
				tally.observe(strconv.Itoa(resp.StatusCode), resp.Header.Get("Retry-After"))
				switch {
				case resp.StatusCode == http.StatusOK:
					ok.Add(1)
				case resp.StatusCode == http.StatusTooManyRequests:
					throttled.Add(1)
				default:
					failed.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := scrapeCounters(client, base)
	if err != nil {
		return nil, fmt.Errorf("post-run scrape failed: %w", err)
	}
	rep := &report{
		Schema:     ReportSchema,
		Addr:       cfg.Addr,
		Requests:   cfg.N,
		Workers:    cfg.C,
		Keys:       cfg.Keys,
		Zipf:       cfg.Zipf,
		Seed:       cfg.Seed,
		OK:         ok.Load(),
		Throttled:  throttled.Load(),
		Failed:     failed.Load(),
		DurationNs: elapsed.Nanoseconds(),
		Throughput: float64(cfg.N) / elapsed.Seconds(),
		P50Ns:      latency.Quantile(0.50),
		P90Ns:      latency.Quantile(0.90),
		P99Ns:      latency.Quantile(0.99),
		MaxNs:      latency.Max(),
	}
	rep.StatusCounts, rep.RetryAfter = tally.report()
	rep.ThrottledRate = float64(rep.Throttled) / float64(cfg.N)
	rep.Server = serverDelta{
		Compiles:  after.misses - before.misses,
		Coalesced: after.coalesced - before.coalesced,
		Hits:      after.hits - before.hits,
		Scraped:   before.scraped && after.scraped,
	}
	if cold := rep.Server.Coalesced + rep.Server.Compiles; cold > 0 {
		rep.CoalescingEffectiveness = float64(rep.Server.Coalesced) / float64(cold)
	}
	return rep, nil
}

// counters is the subset of the server's Prometheus exposition hpfload
// cares about: the plan cache's gauges as registered by cmd/hpfd under
// plancache.hpfd.plans.*.
type counters struct {
	misses, coalesced, hits int64
	scraped                 bool
}

func scrapeCounters(client *http.Client, base string) (counters, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return counters{}, err
	}
	defer resp.Body.Close()
	var c counters
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, valStr, found := strings.Cut(line, " ")
		if !found {
			continue
		}
		var dst *int64
		switch name {
		case "plancache_hpfd_plans_misses":
			dst = &c.misses
		case "plancache_hpfd_plans_coalesced":
			dst = &c.coalesced
		case "plancache_hpfd_plans_hits":
			dst = &c.hits
		default:
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(valStr), 64)
		if err != nil {
			continue
		}
		*dst = int64(v)
		c.scraped = true
	}
	return c, sc.Err()
}

func printReport(w *os.File, rep *report) {
	fmt.Fprintf(w, "hpfload: %d requests, %d workers, %d keys (zipf s=%g, seed %d) against %s\n",
		rep.Requests, rep.Workers, rep.Keys, rep.Zipf, rep.Seed, rep.Addr)
	fmt.Fprintf(w, "  outcome      %d ok, %d throttled (429), %d failed in %v (%.0f req/s)\n",
		rep.OK, rep.Throttled, rep.Failed, time.Duration(rep.DurationNs).Round(time.Millisecond), rep.Throughput)
	fmt.Fprintf(w, "  latency      p50 %v  p90 %v  p99 %v  max %v\n",
		time.Duration(rep.P50Ns), time.Duration(rep.P90Ns), time.Duration(rep.P99Ns), time.Duration(rep.MaxNs))
	if len(rep.StatusCounts) > 0 {
		codes := make([]string, 0, len(rep.StatusCounts))
		for code := range rep.StatusCounts {
			codes = append(codes, code)
		}
		sort.Strings(codes)
		parts := make([]string, 0, len(codes))
		for _, code := range codes {
			parts = append(parts, fmt.Sprintf("%s:%d", code, rep.StatusCounts[code]))
		}
		fmt.Fprintf(w, "  status       %s  (429 rate %.1f%%)\n",
			strings.Join(parts, "  "), 100*rep.ThrottledRate)
	}
	if ra := rep.RetryAfter; ra != nil {
		fmt.Fprintf(w, "  retry-after  %d values: min %ds  mean %.1fs  max %ds\n",
			ra.Count, ra.MinSeconds, ra.MeanSeconds, ra.MaxSeconds)
	}
	if rep.Server.Scraped {
		fmt.Fprintf(w, "  server       %d compiles, %d coalesced waiters, %d cache hits\n",
			rep.Server.Compiles, rep.Server.Coalesced, rep.Server.Hits)
		fmt.Fprintf(w, "  coalescing   %.1f%% of cold-path requests rode an in-flight compile\n",
			100*rep.CoalescingEffectiveness)
	} else {
		fmt.Fprintf(w, "  server       (no plancache_hpfd_plans_* gauges on /metrics; is this hpfd?)\n")
	}
}
