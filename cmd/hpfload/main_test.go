package main

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// newHpfd stands up an in-process hpfd (the serve handler with the
// plan-cache gauges registered, exactly as cmd/hpfd configures it) and
// returns its base address.
func newHpfd(t *testing.T, cfg serve.Config) (string, *serve.Server) {
	t.Helper()
	cfg.MetricsName = "hpfd.plans"
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return strings.TrimPrefix(ts.URL, "http://"), srv
}

// TestLoadAgainstColdServer runs a small burst at a cold instance and
// checks the report: everything answered, latency percentiles ordered,
// and the server-side counter deltas scraped from /metrics.
func TestLoadAgainstColdServer(t *testing.T) {
	addr, srv := newHpfd(t, serve.Config{})
	rep, err := runLoad(loadConfig{
		Addr: addr, N: 200, C: 8, Keys: 16, Zipf: 1.2, Seed: 7,
		Timeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ReportSchema {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.OK != 200 || rep.Throttled != 0 || rep.Failed != 0 {
		t.Fatalf("outcome = %d ok / %d throttled / %d failed, want 200/0/0",
			rep.OK, rep.Throttled, rep.Failed)
	}
	if rep.P50Ns <= 0 || rep.P50Ns > rep.P99Ns || rep.MaxNs < rep.P50Ns {
		t.Errorf("latency percentiles inconsistent: p50 %d p99 %d max %d",
			rep.P50Ns, rep.P99Ns, rep.MaxNs)
	}
	if !rep.Server.Scraped {
		t.Fatal("report did not scrape the plan-cache gauges from /metrics")
	}
	if rep.Server.Compiles < 1 || rep.Server.Compiles > 16 {
		t.Errorf("server compiled %d plans for a 16-key working set", rep.Server.Compiles)
	}
	st := srv.Stats()
	if rep.Server.Compiles != st.Misses || rep.Server.Coalesced != st.Coalesced {
		t.Errorf("scraped deltas (%d compiles, %d coalesced) disagree with server stats %+v",
			rep.Server.Compiles, rep.Server.Coalesced, st)
	}
	if rep.StatusCounts["200"] != 200 || len(rep.StatusCounts) != 1 {
		t.Errorf("status counts = %v, want {200: 200}", rep.StatusCounts)
	}
	if rep.ThrottledRate != 0 || rep.RetryAfter != nil {
		t.Errorf("unthrottled run reported rate %f, retry-after %+v", rep.ThrottledRate, rep.RetryAfter)
	}
}

// TestThrottledRunReportsRetryAfter drives a quota'd tenant hard enough
// to draw 429s and checks the new hpfload/v1 fields: the per-status
// breakdown, the 429 rate, and the observed Retry-After spread.
func TestThrottledRunReportsRetryAfter(t *testing.T) {
	// Burst 1 at 0.5 rps: the first request spends the bucket, everything
	// after is refused with Retry-After >= 1.
	addr, _ := newHpfd(t, serve.Config{TenantRate: 0.5, TenantBurst: 1})
	rep, err := runLoad(loadConfig{
		Addr: addr, N: 32, C: 4, Keys: 4, Zipf: 0, Seed: 3,
		Tenant: "throttled-tenant", Timeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Throttled == 0 {
		t.Fatal("no 429s; the quota did not bite")
	}
	if rep.StatusCounts["429"] != rep.Throttled {
		t.Errorf("status counts %v disagree with throttled = %d", rep.StatusCounts, rep.Throttled)
	}
	if got := rep.StatusCounts["200"] + rep.StatusCounts["429"]; got != rep.Requests {
		t.Errorf("status counts %v do not cover all %d requests", rep.StatusCounts, rep.Requests)
	}
	wantRate := float64(rep.Throttled) / float64(rep.Requests)
	if rep.ThrottledRate != wantRate {
		t.Errorf("throttled rate = %f, want %f", rep.ThrottledRate, wantRate)
	}
	ra := rep.RetryAfter
	if ra == nil {
		t.Fatal("throttled run reported no retry-after stats")
	}
	if ra.Count != rep.Throttled {
		t.Errorf("retry-after count = %d, want one per 429 (%d)", ra.Count, rep.Throttled)
	}
	if ra.MinSeconds < 1 || ra.MaxSeconds < ra.MinSeconds ||
		ra.MeanSeconds < float64(ra.MinSeconds) || ra.MeanSeconds > float64(ra.MaxSeconds) {
		t.Errorf("retry-after stats inconsistent: %+v", ra)
	}
}

// TestStatusTally exercises the aggregation edge cases directly:
// transport errors with no header, malformed and negative Retry-After
// values ignored, min/max/mean over a spread.
func TestStatusTally(t *testing.T) {
	tally := newStatusTally()
	tally.observe("error", "")
	tally.observe("200", "")
	tally.observe("429", "2")
	tally.observe("429", "5")
	tally.observe("429", "1")
	tally.observe("429", "not-a-number") // counted as a 429, excluded from stats
	tally.observe("429", "-3")           // negative: ditto
	counts, ra := tally.report()
	if counts["error"] != 1 || counts["200"] != 1 || counts["429"] != 5 {
		t.Errorf("counts = %v", counts)
	}
	if ra == nil || ra.Count != 3 || ra.MinSeconds != 1 || ra.MaxSeconds != 5 {
		t.Fatalf("retry-after = %+v, want count 3 min 1 max 5", ra)
	}
	if want := (2.0 + 5.0 + 1.0) / 3.0; ra.MeanSeconds != want {
		t.Errorf("mean = %f, want %f", ra.MeanSeconds, want)
	}

	// No 429s at all: the stats block must be omitted, not zero-valued.
	empty := newStatusTally()
	empty.observe("200", "")
	if _, ra := empty.report(); ra != nil {
		t.Errorf("clean run produced retry-after stats %+v", ra)
	}
}

// TestSingleColdKeyCompilesOnce: a concurrent burst at one cold key is
// the acceptance shape — exactly one compile regardless of worker
// count, everyone else a hit or a coalesced waiter.
func TestSingleColdKeyCompilesOnce(t *testing.T) {
	addr, srv := newHpfd(t, serve.Config{})
	rep, err := runLoad(loadConfig{
		Addr: addr, N: 64, C: 32, Keys: 1, Zipf: 0, Seed: 1,
		Timeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 64 {
		t.Fatalf("ok = %d, want 64 (%d throttled, %d failed)", rep.OK, rep.Throttled, rep.Failed)
	}
	if rep.Server.Compiles != 1 {
		t.Errorf("single cold key compiled %d times, want exactly 1", rep.Server.Compiles)
	}
	st := srv.Stats()
	if st.Hits+st.Coalesced != 63 {
		t.Errorf("hits (%d) + coalesced (%d) = %d, want 63", st.Hits, st.Coalesced, st.Hits+st.Coalesced)
	}
	if rep.CoalescingEffectiveness < 0 || rep.CoalescingEffectiveness > 1 {
		t.Errorf("coalescing effectiveness %f out of range", rep.CoalescingEffectiveness)
	}
}

func TestRunLoadValidation(t *testing.T) {
	if _, err := runLoad(loadConfig{}); err == nil {
		t.Error("runLoad accepted an empty address")
	}
	if _, err := runLoad(loadConfig{Addr: "127.0.0.1:1", N: 0, C: 1, Keys: 1}); err == nil {
		t.Error("runLoad accepted n = 0")
	}
	// Unreachable server: fail fast on the pre-run scrape.
	if _, err := runLoad(loadConfig{Addr: "127.0.0.1:1", N: 1, C: 1, Keys: 1,
		Timeout: time.Second}); err == nil {
		t.Error("runLoad succeeded against an unreachable server")
	}
}

// TestMakeKeysDistinct: the working set must be n genuinely distinct
// cache keys, or -keys lies about the cache pressure it creates.
func TestMakeKeysDistinct(t *testing.T) {
	keys := makeKeys(512)
	seen := make(map[serve.PlanRequest]bool, len(keys))
	for _, k := range keys {
		if seen[k] {
			t.Fatalf("duplicate key %+v", k)
		}
		seen[k] = true
	}
}
