package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// accessFiles records a small two-rank access trace and writes it in
// both accesstrace/v1 encodings, returning their paths.
func accessFiles(t *testing.T) (jsonPath, binPath string) {
	t.Helper()
	r := telemetry.NewAccessRecorder(2, 1024, 1)
	step := r.BeginStep("hpf.fill_section:constgap")
	for rank := int32(0); rank < 2; rank++ {
		for sweep := 0; sweep < 2; sweep++ {
			for a := int64(0); a < 50; a++ {
				r.Record(rank, 3*a, telemetry.AccessWrite, step)
			}
		}
	}
	dir := t.TempDir()
	jsonPath = filepath.Join(dir, "access.json")
	binPath = filepath.Join(dir, "access.bin")
	jf, err := os.Create(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(jf); err != nil {
		t.Fatal(err)
	}
	jf.Close()
	bf, err := os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WriteBinary(bf); err != nil {
		t.Fatal(err)
	}
	bf.Close()
	return jsonPath, binPath
}

func TestTextReport(t *testing.T) {
	jsonPath, binPath := accessFiles(t)
	for name, path := range map[string]string{"json": jsonPath, "binary": binPath} {
		var out, errOut bytes.Buffer
		if err := run(&out, &errOut, path, 4, "", false); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		report := out.String()
		for _, want := range []string{
			"Reuse-distance locality report (2 ranks",
			"per rank:",
			"per operation label:",
			"hpf.fill_section:constgap",
		} {
			if !strings.Contains(report, want) {
				t.Errorf("%s: report missing %q:\n%s", name, want, report)
			}
		}
		if strings.Contains(report, "WARNING") {
			t.Errorf("%s: unexpected truncation warning:\n%s", name, report)
		}
	}
}

func TestJSONReport(t *testing.T) {
	jsonPath, _ := accessFiles(t)
	var out, errOut bytes.Buffer
	if err := run(&out, &errOut, jsonPath, 2, "16,1024", true); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  string  `json:"schema"`
		Ranks   int     `json:"ranks"`
		Dropped int64   `json:"dropped"`
		Caches  []int64 `json:"cache_sizes"`
		PerRank []struct {
			Rank     int32 `json:"rank"`
			Accesses int64 `json:"accesses"`
			Distinct int64 `json:"distinct_addrs"`
		} `json:"per_rank"`
		PerLabel []struct {
			Label string `json:"label"`
		} `json:"per_label"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, out.String())
	}
	if doc.Schema != ReportSchema {
		t.Errorf("schema = %q, want %q", doc.Schema, ReportSchema)
	}
	if doc.Ranks != 2 || len(doc.PerRank) != 2 {
		t.Errorf("ranks = %d, per_rank = %+v", doc.Ranks, doc.PerRank)
	}
	if want := []int64{16, 1024}; len(doc.Caches) != 2 || doc.Caches[0] != want[0] || doc.Caches[1] != want[1] {
		t.Errorf("-caches not honored: %v", doc.Caches)
	}
	for _, p := range doc.PerRank {
		if p.Accesses != 100 || p.Distinct != 50 {
			t.Errorf("rank %d: accesses %d distinct %d, want 100/50", p.Rank, p.Accesses, p.Distinct)
		}
	}
	if len(doc.PerLabel) != 1 || doc.PerLabel[0].Label != "hpf.fill_section:constgap" {
		t.Errorf("per_label = %+v", doc.PerLabel)
	}
	if errOut.Len() != 0 {
		t.Errorf("unexpected stderr output: %s", errOut.String())
	}
}

// A trace whose rings overwrote records must shout — on stderr in -json
// mode so stdout stays machine-readable, inline in text mode.
func TestDroppedWarning(t *testing.T) {
	r := telemetry.NewAccessRecorder(1, 64, 1)
	step := r.BeginStep("hpf.fill_section:generic")
	for a := int64(0); a < 200; a++ {
		r.Record(0, a, telemetry.AccessRead, step)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "truncated.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out, errOut bytes.Buffer
	if err := run(&out, &errOut, path, 1, "", false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "WARNING") || !strings.Contains(out.String(), "136") {
		t.Errorf("text report does not warn about 136 dropped records:\n%s", out.String())
	}

	out.Reset()
	if err := run(&out, &errOut, path, 1, "", true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut.String(), "WARNING") || !strings.Contains(errOut.String(), "136") {
		t.Errorf("-json mode did not warn on stderr: %q", errOut.String())
	}
	if strings.Contains(out.String(), "WARNING") {
		t.Errorf("-json stdout polluted by warning:\n%s", out.String())
	}
	var doc map[string]any
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("-json stdout not valid JSON after warning: %v", err)
	}
}

func TestBadInputs(t *testing.T) {
	if err := run(&bytes.Buffer{}, &bytes.Buffer{}, "/no/such/trace.json", 4, "", false); err == nil {
		t.Error("no error for missing file")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not an access trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&bytes.Buffer{}, &bytes.Buffer{}, bad, 4, "", false); err == nil {
		t.Error("no error for non-trace input")
	}
	jsonPath, _ := accessFiles(t)
	for _, caches := range []string{"zero", "-1", "12,"} {
		if err := run(&bytes.Buffer{}, &bytes.Buffer{}, jsonPath, 4, caches, false); err == nil {
			t.Errorf("no error for -caches %q", caches)
		}
	}
}
