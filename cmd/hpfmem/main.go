// Command hpfmem analyzes a memory access trace recorded by the
// telemetry access recorder and reports the locality structure the
// paper's address sequences induce: exact per-rank reuse-distance
// histograms (Olken/Parda splay-tree algorithm), miss-rate estimates
// for a range of LRU cache sizes, and per-operation profiles keyed by
// the kernel kind that generated each address stream.
//
//	jacobi -memtrace access.json && hpfmem access.json   # per-rank tables
//	hpfmem -json access.json > locality.json             # machine-readable (hpfmem/v1)
//	hpfmem -caches 1024,65536 -chunks 8 access.bin       # custom LRU sizes, Parda chunks
//
// Both accesstrace/v1 encodings (JSON and the binary spill framing) are
// auto-detected; "-" reads stdin.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/reuse"
	"repro/internal/telemetry"
)

// ReportSchema tags the -json output so downstream consumers can detect
// format drift.
const ReportSchema = "hpfmem/v1"

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit the analysis as "+ReportSchema+" JSON instead of text")
		chunks  = flag.Int("chunks", 4, "Parda partitions per rank (1 = sequential Olken)")
		caches  = flag.String("caches", "", "comma-separated LRU cache sizes in elements (default 512,4096,32768,262144)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: hpfmem [flags] <access-trace>\n\nAnalyzes an accesstrace/v1 file (JSON or binary; \"-\" reads stdin).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, os.Stderr, flag.Arg(0), *chunks, *caches, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "hpfmem:", err)
		os.Exit(1)
	}
}

// parseCaches parses the -caches list; empty means package defaults.
func parseCaches(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	var out []int64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("invalid cache size %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func run(w, ew io.Writer, path string, chunks int, caches string, jsonOut bool) error {
	sizes, err := parseCaches(caches)
	if err != nil {
		return err
	}
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	doc, err := telemetry.ReadAccessTrace(r)
	if err != nil {
		return err
	}
	rep := reuse.BuildReport(doc, reuse.Options{Chunks: chunks, CacheSizes: sizes})
	if !jsonOut {
		return rep.WriteText(w)
	}
	// Text mode embeds its truncation warning; JSON keeps stdout
	// machine-readable and shouts on stderr instead.
	if rep.Dropped > 0 {
		fmt.Fprintf(ew, "hpfmem: WARNING: access rings overwrote %d records; distances near the start of the run are missing or inflated\n", rep.Dropped)
	}
	out := struct {
		Schema string `json:"schema"`
		*reuse.Report
	}{ReportSchema, rep}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
