package main

import (
	"os"
	"strings"
	"testing"
)

// capture runs f with stdout redirected and returns what it printed.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	r.Close()
	return string(buf[:n]), ferr
}

func TestRunAMTable(t *testing.T) {
	out, err := capture(t, func() error {
		return run(4, 8, 4, 9, 1, 0, false, false, false, false, false, "")
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "AM = [3, 12, 15, 12, 3, 12, 3, 12]") {
		t.Errorf("paper AM table missing: %q", out)
	}
}

func TestRunBasis(t *testing.T) {
	out, err := capture(t, func() error {
		return run(4, 8, 0, 9, 0, 0, false, true, false, false, false, "")
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "R = (b=4, a=1)") || !strings.Contains(out, "L = (b=5, a=-1)") {
		t.Errorf("basis output wrong: %q", out)
	}
}

func TestRunBasisDegenerate(t *testing.T) {
	out, err := capture(t, func() error {
		return run(4, 1, 0, 3, 0, 0, false, true, false, false, false, "")
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "degenerate") {
		t.Errorf("degenerate message missing: %q", out)
	}
}

func TestRunFigure(t *testing.T) {
	out, err := capture(t, func() error {
		return run(4, 8, 0, 9, 0, 64, true, false, false, false, false, "")
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "proc 0") || !strings.Contains(out, "[ 9]") {
		t.Errorf("figure output wrong:\n%s", out)
	}
}

func TestRunTrace(t *testing.T) {
	out, err := capture(t, func() error {
		return run(4, 8, 4, 9, 1, 320, false, false, false, true, false, "")
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "eq2") || !strings.Contains(out, "visits") {
		t.Errorf("trace output wrong:\n%s", out)
	}
}

func TestRunAll(t *testing.T) {
	out, err := capture(t, func() error {
		return run(4, 8, 4, 9, 0, 0, false, false, false, false, true, "")
	})
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 4; m++ {
		if !strings.Contains(out, "proc "+string(rune('0'+m))) {
			t.Errorf("missing processor %d: %q", m, out)
		}
	}
}

func TestRunEmit(t *testing.T) {
	for _, sh := range []string{"a", "b", "c", "d", "free"} {
		out, err := capture(t, func() error {
			return run(4, 8, 4, 9, 1, 0, false, false, false, false, false, sh)
		})
		if err != nil {
			t.Fatalf("emit %s: %v", sh, err)
		}
		if !strings.Contains(out, "node code") {
			t.Errorf("emit %s: no code emitted: %q", sh, out)
		}
	}
	if _, err := capture(t, func() error {
		return run(4, 8, 4, 9, 1, 0, false, false, false, false, false, "zz")
	}); err == nil {
		t.Error("unknown emit shape should fail")
	}
}

func TestRunBasisFig(t *testing.T) {
	out, err := capture(t, func() error {
		return run(4, 8, 0, 9, 0, 320, false, false, true, false, false, "")
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "( 36)") || !strings.Contains(out, "(261)") {
		t.Errorf("basis figure missing endpoints:\n%s", out)
	}
}

func TestRunInvalid(t *testing.T) {
	if _, err := capture(t, func() error {
		return run(0, 8, 0, 9, 0, 0, false, false, false, false, false, "")
	}); err == nil {
		t.Error("invalid parameters should fail")
	}
}
