// Command amgen computes and prints memory access sequences for regular
// sections of cyclic(k)-distributed arrays: the AM gap table, the lattice
// basis vectors, ASCII layout figures in the style of the paper's
// Figures 1–6, and the algorithm's visit trace.
//
// Usage:
//
//	amgen -p 4 -k 8 -l 4 -s 9 -m 1            # AM table (Figure 5 example)
//	amgen -p 4 -k 8 -s 9 -basis               # R and L vectors
//	amgen -p 4 -k 8 -l 0 -s 9 -fig -n 320     # layout figure (Figure 1)
//	amgen -p 4 -k 8 -l 4 -s 9 -m 1 -trace     # visited points (Figure 6)
//	amgen -p 4 -k 8 -l 4 -s 9 -all            # tables for every processor
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/lattice"
	"repro/internal/section"
	"repro/internal/viz"
)

func main() {
	var (
		p        = flag.Int64("p", 4, "number of processors")
		k        = flag.Int64("k", 8, "block size of the cyclic(k) distribution")
		l        = flag.Int64("l", 0, "section lower bound")
		s        = flag.Int64("s", 9, "section stride (> 0)")
		m        = flag.Int64("m", 0, "processor number")
		n        = flag.Int64("n", 0, "template size for -fig (default 10 rows)")
		fig      = flag.Bool("fig", false, "print the layout figure with the section marked")
		basis    = flag.Bool("basis", false, "print the R/L lattice basis")
		basisFig = flag.Bool("basisfig", false, "print the basis-scan figure (Figures 2/4)")
		trace    = flag.Bool("trace", false, "print the gap-loop visit trace and mark it in a figure")
		all      = flag.Bool("all", false, "print the AM table for every processor")
		emit     = flag.String("emit", "", "emit C node code: a, b, c, d or free")
	)
	flag.Parse()
	if err := run(*p, *k, *l, *s, *m, *n, *fig, *basis, *basisFig, *trace, *all, *emit); err != nil {
		fmt.Fprintln(os.Stderr, "amgen:", err)
		os.Exit(1)
	}
}

func run(p, k, l, s, m, n int64, fig, basis, basisFig, trace, all bool, emit string) error {
	pr := core.Problem{P: p, K: k, L: l, S: s, M: m}
	if err := pr.Validate(); err != nil {
		return err
	}
	if n == 0 {
		n = 10 * p * k
	}

	if emit != "" {
		var (
			out string
			err error
		)
		switch emit {
		case "a":
			out, err = codegen.EmitCCode(codegen.EmitA, pr, "100.0")
		case "b":
			out, err = codegen.EmitCCode(codegen.EmitB, pr, "100.0")
		case "c":
			out, err = codegen.EmitCCode(codegen.EmitC_, pr, "100.0")
		case "d":
			out, err = codegen.EmitCCode(codegen.EmitD, pr, "100.0")
		case "free":
			out, err = codegen.EmitTableFree(pr, "100.0")
		default:
			return fmt.Errorf("unknown -emit shape %q (want a, b, c, d or free)", emit)
		}
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}

	if basis {
		b, ok, err := core.Vectors(p, k, s)
		if err != nil {
			return err
		}
		if !ok {
			fmt.Println("degenerate case: AM tables have length <= 1 on every processor")
			return nil
		}
		fmt.Printf("R = (b=%d, a=%d), section index %d, local gap %d\n",
			b.R.B, b.R.A, b.R.I, b.GapR)
		fmt.Printf("L = (b=%d, a=%d), section index %d, local gap %d\n",
			b.L.B, b.L.A, b.L.I, b.GapL)
		fmt.Printf("basis check |R.a*L.i - L.a*R.i| = 1: %v\n", lattice.IsBasis(b.R, b.L))
		return nil
	}

	if basisFig {
		out, err := viz.BasisFigure(p, k, s, n)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}

	if fig {
		marks := viz.Marks{}
		marks.MarkSection(section.Section{Lo: l, Hi: n - 1, Stride: s}, n)
		marks.MarkStart(l)
		fmt.Print(viz.Layout(dist.MustNew(p, k), n, marks))
		return nil
	}

	if trace {
		seq, visits, err := core.LatticeTrace(pr)
		if err != nil {
			return err
		}
		fmt.Println(viz.AMTable(seq))
		fmt.Println("visits (index, equation, on-processor):")
		for _, v := range visits {
			fmt.Printf("  %6d  eq%d  %v\n", v.Index, v.Equation, v.OnProc)
		}
		marks := viz.Marks{}
		marks.MarkVisits(visits, n)
		marks.MarkStart(l)
		fmt.Print(viz.Layout(dist.MustNew(p, k), n, marks))
		return nil
	}

	if all {
		for proc := int64(0); proc < p; proc++ {
			pr.M = proc
			seq, err := core.Lattice(pr)
			if err != nil {
				return err
			}
			fmt.Printf("proc %d: %s\n", proc, viz.AMTable(seq))
		}
		return nil
	}

	seq, err := core.Lattice(pr)
	if err != nil {
		return err
	}
	fmt.Println(viz.AMTable(seq))
	return nil
}
