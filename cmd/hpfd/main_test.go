package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// startServer runs runConfig on a free port in the background and
// returns the bound address plus a shutdown-and-wait function.
func startServer(t *testing.T, cfg config) (string, func() error) {
	t.Helper()
	addrCh := make(chan string, 1)
	stop := make(chan struct{})
	done := make(chan error, 1)
	cfg.Addr = "127.0.0.1:0"
	cfg.afterStart = func(addr string) { addrCh <- addr }
	cfg.stop = stop
	go func() { done <- runConfig(cfg) }()
	select {
	case addr := <-addrCh:
		return addr, func() error {
			close(stop)
			select {
			case err := <-done:
				return err
			case <-time.After(10 * time.Second):
				t.Fatal("runConfig did not return after stop")
				return nil
			}
		}
	case err := <-done:
		t.Fatalf("server exited before start: %v", err)
		return "", nil
	}
}

// TestServeLifecycle boots hpfd on :0, exercises the plan and ops
// endpoints over real HTTP, and shuts down gracefully.
func TestServeLifecycle(t *testing.T) {
	addr, shutdown := startServer(t, config{Drain: 5 * time.Second})
	url := "http://" + addr

	body := []byte(`{"p":4,"k":8,"l":4,"u":319,"s":9}`)
	resp, err := http.Post(url+"/v1/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	plan, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/plan = %d: %s", resp.StatusCode, plan)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("plan response has no ETag")
	}
	var doc map[string]any
	if err := json.Unmarshal(plan, &doc); err != nil || doc["schema"] != "hpfd/v1" {
		t.Fatalf("bad plan document (%v): %s", err, plan)
	}

	// Conditional revalidation against the running daemon.
	req, _ := http.NewRequest(http.MethodPost, url+"/v1/plan", bytes.NewReader(body))
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("conditional request = %d, want 304", resp.StatusCode)
	}

	// The ops surface is mounted, with both the hpfd.* counters and the
	// plan cache's plancache.hpfd.plans.* gauges.
	resp, err = http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"hpfd_requests", "plancache_hpfd_plans_misses"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	resp, err = http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz = %d", resp.StatusCode)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	// The port is released after shutdown.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("server still answering after shutdown")
	}
}

// TestBadAddrFailsFast: an unusable -addr must fail runConfig
// synchronously with an error naming the flag — not report success and
// die in a goroutine.
func TestBadAddrFailsFast(t *testing.T) {
	err := runConfig(config{Addr: "256.256.256.256:1", Drain: time.Second})
	if err == nil {
		t.Fatal("runConfig succeeded with an unusable -addr")
	}
	if !strings.Contains(err.Error(), "-addr") {
		t.Errorf("error %q does not name the -addr flag", err)
	}
}

// TestBadPprofFailsFast: same contract for the -pprof listener, which
// historically started asynchronously and could fail after startup.
func TestBadPprofFailsFast(t *testing.T) {
	// Occupy a port so the pprof bind deterministically fails.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	err = runConfig(config{Addr: "127.0.0.1:0", PprofAddr: ln.Addr().String(), Drain: time.Second})
	if err == nil {
		t.Fatal("runConfig succeeded with an occupied -pprof address")
	}
	if !strings.Contains(err.Error(), "-pprof") {
		t.Errorf("error %q does not name the -pprof flag", err)
	}
}

// TestHTTPServerHardening: the listener-facing server carries the
// slowloris protections, from both the defaults and explicit overrides.
func TestHTTPServerHardening(t *testing.T) {
	hs := newHTTPServer(config{}.withDefaults(), nil)
	if hs.ReadHeaderTimeout != 5*time.Second {
		t.Errorf("default ReadHeaderTimeout = %v, want 5s", hs.ReadHeaderTimeout)
	}
	if hs.ReadTimeout != 30*time.Second {
		t.Errorf("default ReadTimeout = %v, want 30s", hs.ReadTimeout)
	}
	if hs.IdleTimeout != 2*time.Minute {
		t.Errorf("default IdleTimeout = %v, want 2m", hs.IdleTimeout)
	}
	if hs.MaxHeaderBytes != 1<<20 {
		t.Errorf("default MaxHeaderBytes = %d, want %d", hs.MaxHeaderBytes, 1<<20)
	}

	hs = newHTTPServer(config{
		ReadHeaderTimeout: time.Second,
		ReadTimeout:       2 * time.Second,
		IdleTimeout:       3 * time.Second,
		MaxHeaderBytes:    4096,
	}.withDefaults(), nil)
	if hs.ReadHeaderTimeout != time.Second || hs.ReadTimeout != 2*time.Second ||
		hs.IdleTimeout != 3*time.Second || hs.MaxHeaderBytes != 4096 {
		t.Errorf("overrides not applied: %+v", hs)
	}
}

// TestBadLogFormat: an unknown -log-format fails the start with an
// error naming the flag.
func TestBadLogFormat(t *testing.T) {
	err := runConfig(config{Addr: "127.0.0.1:0", LogFormat: "xml", Drain: time.Second})
	if err == nil {
		t.Fatal("runConfig succeeded with -log-format xml")
	}
	if !strings.Contains(err.Error(), "-log-format") {
		t.Errorf("error %q does not name the -log-format flag", err)
	}
}

// logBuffer is a mutex-guarded sink for the server's log stream; the
// lifecycle goroutine and per-request access logs write concurrently.
type logBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *logBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *logBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestJSONLogsAndTraceIdentity boots hpfd with -log-format json, joins
// a fixed traceparent, and checks: the trace ID round-trips into
// X-Request-ID, every log line is valid JSON, and the lifecycle events
// (listening, request, draining, drained) are all present.
func TestJSONLogsAndTraceIdentity(t *testing.T) {
	var logs logBuffer
	addr, shutdown := startServer(t, config{Drain: 5 * time.Second, LogFormat: "json", logOut: &logs})
	url := "http://" + addr

	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, _ := http.NewRequest(http.MethodGet, url+"/v1/plan?p=4&k=8&l=4&u=319&s=9", nil)
	req.Header.Set("traceparent", "00-"+traceID+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/plan = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != traceID {
		t.Errorf("X-Request-ID = %q, want the inbound trace ID %q", got, traceID)
	}
	if tp := resp.Header.Get("traceparent"); !strings.Contains(tp, traceID) {
		t.Errorf("response traceparent %q does not carry the inbound trace ID", tp)
	}

	// The span trace is exported on /trace (tracing is on by default).
	resp, err = http.Get(url + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	trace, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/trace = %d", resp.StatusCode)
	}
	if !strings.Contains(string(trace), `"hpfd.request"`) || !strings.Contains(string(trace), traceID) {
		t.Error("/trace export lacks the request span or its trace ID")
	}

	if err := shutdown(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}

	msgs := map[string]bool{}
	for i, line := range strings.Split(strings.TrimSpace(logs.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line %d is not JSON: %v\n%s", i, err, line)
		}
		if msg, ok := rec["msg"].(string); ok {
			msgs[msg] = true
		}
		if rec["msg"] == "request" && rec["route"] == "plan" {
			if rec["trace"] != traceID {
				t.Errorf("access log trace = %v, want %s", rec["trace"], traceID)
			}
		}
	}
	for _, want := range []string{"listening", "request", "draining", "drained"} {
		if !msgs[want] {
			t.Errorf("log stream lacks a %q event:\n%s", want, logs.String())
		}
	}
}
