package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// startServer runs runConfig on a free port in the background and
// returns the bound address plus a shutdown-and-wait function.
func startServer(t *testing.T, cfg config) (string, func() error) {
	t.Helper()
	addrCh := make(chan string, 1)
	stop := make(chan struct{})
	done := make(chan error, 1)
	cfg.Addr = "127.0.0.1:0"
	cfg.afterStart = func(addr string) { addrCh <- addr }
	cfg.stop = stop
	go func() { done <- runConfig(cfg) }()
	select {
	case addr := <-addrCh:
		return addr, func() error {
			close(stop)
			select {
			case err := <-done:
				return err
			case <-time.After(10 * time.Second):
				t.Fatal("runConfig did not return after stop")
				return nil
			}
		}
	case err := <-done:
		t.Fatalf("server exited before start: %v", err)
		return "", nil
	}
}

// TestServeLifecycle boots hpfd on :0, exercises the plan and ops
// endpoints over real HTTP, and shuts down gracefully.
func TestServeLifecycle(t *testing.T) {
	addr, shutdown := startServer(t, config{Drain: 5 * time.Second})
	url := "http://" + addr

	body := []byte(`{"p":4,"k":8,"l":4,"u":319,"s":9}`)
	resp, err := http.Post(url+"/v1/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	plan, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/plan = %d: %s", resp.StatusCode, plan)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("plan response has no ETag")
	}
	var doc map[string]any
	if err := json.Unmarshal(plan, &doc); err != nil || doc["schema"] != "hpfd/v1" {
		t.Fatalf("bad plan document (%v): %s", err, plan)
	}

	// Conditional revalidation against the running daemon.
	req, _ := http.NewRequest(http.MethodPost, url+"/v1/plan", bytes.NewReader(body))
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("conditional request = %d, want 304", resp.StatusCode)
	}

	// The ops surface is mounted, with both the hpfd.* counters and the
	// plan cache's plancache.hpfd.plans.* gauges.
	resp, err = http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"hpfd_requests", "plancache_hpfd_plans_misses"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	resp, err = http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz = %d", resp.StatusCode)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	// The port is released after shutdown.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("server still answering after shutdown")
	}
}

// TestBadAddrFailsFast: an unusable -addr must fail runConfig
// synchronously with an error naming the flag — not report success and
// die in a goroutine.
func TestBadAddrFailsFast(t *testing.T) {
	err := runConfig(config{Addr: "256.256.256.256:1", Drain: time.Second})
	if err == nil {
		t.Fatal("runConfig succeeded with an unusable -addr")
	}
	if !strings.Contains(err.Error(), "-addr") {
		t.Errorf("error %q does not name the -addr flag", err)
	}
}

// TestBadPprofFailsFast: same contract for the -pprof listener, which
// historically started asynchronously and could fail after startup.
func TestBadPprofFailsFast(t *testing.T) {
	// Occupy a port so the pprof bind deterministically fails.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	err = runConfig(config{Addr: "127.0.0.1:0", PprofAddr: ln.Addr().String(), Drain: time.Second})
	if err == nil {
		t.Fatal("runConfig succeeded with an occupied -pprof address")
	}
	if !strings.Contains(err.Error(), "-pprof") {
		t.Errorf("error %q does not name the -pprof flag", err)
	}
}
