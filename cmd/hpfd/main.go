// Command hpfd serves the paper's plan compiler as a multi-tenant HTTP
// service. One plan — the AM-table set, per-rank access sequences and
// selected node-code kernels for a (p, k, l, u, s) key — is a pure
// function of its key, so hpfd can hand out deterministic ETags,
// coalesce a thundering herd of identical cold misses onto a single
// compilation, and serve warm keys straight from its LRU.
//
//	hpfd                              # serve on localhost:8080
//	hpfd -addr :0                     # any free port (the bound address is printed)
//	hpfd -tenant-qps 50 -tenant-burst 20   # per-tenant token buckets (X-Tenant header)
//	hpfd -max-inflight 16             # bound concurrent compiles; overflow gets 429
//	hpfd -drain 30s                   # graceful-shutdown budget on SIGINT/SIGTERM
//	hpfd -pprof localhost:6060        # serve net/http/pprof alongside
//
// Endpoints:
//
//	POST /v1/plan        {"p":4,"k":8,"l":4,"u":319,"s":9}  -> hpfd/v1 plan document
//	GET  /v1/plan?p=4&k=8&l=4&u=319&s=9                     -> same document, URL-addressable
//	POST /v1/plan/batch  {"requests":[...]}                 -> hpfd/batch/v1, per-key partial failure
//	GET  /metrics /healthz /trace                           -> shared telemetry surface
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", "localhost:8080", "address to serve on (\":0\" picks a free port)")
		cache       = flag.Int("cache", 4096, "compiled-plan LRU capacity (keys)")
		maxInflight = flag.Int("max-inflight", 64, "maximum concurrently running plan compilations; further cold misses get 429")
		tenantQPS   = flag.Float64("tenant-qps", 0, "per-tenant steady-state requests/second (X-Tenant header); 0 disables quotas")
		tenantBurst = flag.Float64("tenant-burst", 32, "per-tenant burst allowance")
		maxBatch    = flag.Int("max-batch", 256, "maximum keys in one /v1/plan/batch request")
		noCoalesce  = flag.Bool("no-coalesce", false, "serve every cold miss with its own compilation (benchmark baseline; never use in production)")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown budget: in-flight requests get this long to finish")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	cfg := config{
		Addr:        *addr,
		Cache:       *cache,
		MaxInflight: *maxInflight,
		TenantQPS:   *tenantQPS,
		TenantBurst: *tenantBurst,
		MaxBatch:    *maxBatch,
		NoCoalesce:  *noCoalesce,
		Drain:       *drain,
		PprofAddr:   *pprofAddr,
	}
	if err := runConfig(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "hpfd:", err)
		os.Exit(1)
	}
}

type config struct {
	Addr        string
	Cache       int
	MaxInflight int
	TenantQPS   float64
	TenantBurst float64
	MaxBatch    int
	NoCoalesce  bool
	Drain       time.Duration
	PprofAddr   string

	// afterStart, when set, is called with the bound listen address once
	// the server is accepting connections — the hook tests use to drive
	// requests at a ":0" instance.
	afterStart func(addr string)
	// stop, when non-nil, triggers the same graceful shutdown as
	// SIGINT/SIGTERM when it becomes readable — so tests can exercise the
	// drain path without signaling the test process.
	stop <-chan struct{}
}

func runConfig(cfg config) error {
	// Both listeners bind synchronously so a bad address fails the start
	// with an error naming the flag — not a goroutine printing to stderr
	// after the service claimed to be up — and so ":0" addresses can be
	// reported to the caller.
	if cfg.PprofAddr != "" {
		ln, err := net.Listen("tcp", cfg.PprofAddr)
		if err != nil {
			return fmt.Errorf("cannot serve on -pprof address: %w", err)
		}
		defer ln.Close()
		go http.Serve(ln, nil)
		fmt.Printf("pprof: serving on http://%s/debug/pprof/\n", ln.Addr())
	}
	srv, err := serve.New(serve.Config{
		CacheCapacity: cfg.Cache,
		MaxInflight:   cfg.MaxInflight,
		TenantRate:    cfg.TenantQPS,
		TenantBurst:   cfg.TenantBurst,
		MaxBatch:      cfg.MaxBatch,
		NoCoalesce:    cfg.NoCoalesce,
		MetricsName:   "hpfd.plans",
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return fmt.Errorf("cannot serve on -addr address: %w", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	served := make(chan error, 1)
	go func() { served <- hs.Serve(ln) }()
	fmt.Printf("hpfd: serving on http://%s/ (plan: /v1/plan, batch: /v1/plan/batch, ops: /metrics /healthz /trace)\n", ln.Addr())
	if cfg.TenantQPS > 0 {
		fmt.Printf("hpfd: per-tenant quota %.3g req/s, burst %.3g (X-Tenant header)\n", cfg.TenantQPS, cfg.TenantBurst)
	}
	if cfg.afterStart != nil {
		cfg.afterStart(ln.Addr().String())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case err := <-served:
		// Serve never returns nil; reaching here without Shutdown means
		// the listener failed underneath us.
		return fmt.Errorf("server failed: %w", err)
	case s := <-sig:
		fmt.Printf("hpfd: %v — draining (up to %v)\n", s, cfg.Drain)
	case <-cfg.stop:
		fmt.Printf("hpfd: stop requested — draining (up to %v)\n", cfg.Drain)
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.Drain)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain exceeded %v: %w", cfg.Drain, err)
	}
	<-served // http.ErrServerClosed
	st := srv.Stats()
	fmt.Printf("hpfd: drained; cache %d entries, %d hits, %d compiles, %d coalesced waiters\n",
		st.Entries, st.Hits, st.Misses, st.Coalesced)
	return nil
}
