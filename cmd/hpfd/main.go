// Command hpfd serves the paper's plan compiler as a multi-tenant HTTP
// service. One plan — the AM-table set, per-rank access sequences and
// selected node-code kernels for a (p, k, l, u, s) key — is a pure
// function of its key, so hpfd can hand out deterministic ETags,
// coalesce a thundering herd of identical cold misses onto a single
// compilation, and serve warm keys straight from its LRU.
//
//	hpfd                              # serve on localhost:8080
//	hpfd -addr :0                     # any free port (the bound address is logged)
//	hpfd -tenant-qps 50 -tenant-burst 20   # per-tenant token buckets (X-Tenant header)
//	hpfd -max-inflight 16             # bound concurrent compiles; overflow gets 429
//	hpfd -drain 30s                   # graceful-shutdown budget on SIGINT/SIGTERM
//	hpfd -pprof localhost:6060        # serve net/http/pprof alongside
//	hpfd -log-format json             # structured JSON logs (access log + lifecycle)
//	hpfd -slo-target 50ms             # publish hpfd.slo.* burn-rate gauges
//	hpfd -trace-events 0              # disable the request-span ring tracer
//
// Every request gets a W3C trace identity: an inbound traceparent is
// joined, X-Request-ID is echoed or minted, and with tracing on the
// whole request path (admission, singleflight build/wait, table build,
// kernel selection) is recorded as spans — dump /trace and feed it to
// hpfprof -serve for per-phase attribution.
//
// Endpoints:
//
//	POST /v1/plan        {"p":4,"k":8,"l":4,"u":319,"s":9}  -> hpfd/v1 plan document
//	GET  /v1/plan?p=4&k=8&l=4&u=319&s=9                     -> same document, URL-addressable
//	POST /v1/plan/batch  {"requests":[...]}                 -> hpfd/batch/v1, per-key partial failure
//	GET  /metrics /healthz /trace                           -> shared telemetry surface
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/telemetry"
)

func main() {
	var (
		addr        = flag.String("addr", "localhost:8080", "address to serve on (\":0\" picks a free port)")
		cache       = flag.Int("cache", 4096, "compiled-plan LRU capacity (keys)")
		maxInflight = flag.Int("max-inflight", 64, "maximum concurrently running plan compilations; further cold misses get 429")
		tenantQPS   = flag.Float64("tenant-qps", 0, "per-tenant steady-state requests/second (X-Tenant header); 0 disables quotas")
		tenantBurst = flag.Float64("tenant-burst", 32, "per-tenant burst allowance")
		maxBatch    = flag.Int("max-batch", 256, "maximum keys in one /v1/plan/batch request")
		noCoalesce  = flag.Bool("no-coalesce", false, "serve every cold miss with its own compilation (benchmark baseline; never use in production)")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown budget: in-flight requests get this long to finish")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		logFormat   = flag.String("log-format", "text", "log output format: json or text")
		sloTarget   = flag.Duration("slo-target", 0, "request latency budget; > 0 publishes hpfd.slo.* burn-rate gauges")
		traceEvents = flag.Int("trace-events", 1<<14, "request-span ring-tracer capacity in events; 0 disables tracing")

		readHeaderTimeout = flag.Duration("read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout (slowloris protection)")
		readTimeout       = flag.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout")
		idleTimeout       = flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections")
		maxHeaderBytes    = flag.Int("max-header-bytes", 1<<20, "http.Server MaxHeaderBytes")
	)
	flag.Parse()
	cfg := config{
		Addr:              *addr,
		Cache:             *cache,
		MaxInflight:       *maxInflight,
		TenantQPS:         *tenantQPS,
		TenantBurst:       *tenantBurst,
		MaxBatch:          *maxBatch,
		NoCoalesce:        *noCoalesce,
		Drain:             *drain,
		PprofAddr:         *pprofAddr,
		LogFormat:         *logFormat,
		SLOTarget:         *sloTarget,
		TraceEvents:       *traceEvents,
		TraceDisabled:     *traceEvents <= 0,
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		IdleTimeout:       *idleTimeout,
		MaxHeaderBytes:    *maxHeaderBytes,
	}
	if err := runConfig(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "hpfd:", err)
		os.Exit(1)
	}
}

type config struct {
	Addr        string
	Cache       int
	MaxInflight int
	TenantQPS   float64
	TenantBurst float64
	MaxBatch    int
	NoCoalesce  bool
	Drain       time.Duration
	PprofAddr   string
	LogFormat   string
	SLOTarget   time.Duration
	// TraceEvents is the request-span ring capacity; 0 takes the default
	// (16384). TraceDisabled turns the tracer off entirely (the CLI maps
	// -trace-events 0 here, so a zero-valued test config still traces).
	TraceEvents   int
	TraceDisabled bool

	// http.Server hardening; zero values take the flag defaults so a
	// directly constructed config (tests) still gets a hardened server.
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	IdleTimeout       time.Duration
	MaxHeaderBytes    int

	// afterStart, when set, is called with the bound listen address once
	// the server is accepting connections — the hook tests use to drive
	// requests at a ":0" instance.
	afterStart func(addr string)
	// stop, when non-nil, triggers the same graceful shutdown as
	// SIGINT/SIGTERM when it becomes readable — so tests can exercise the
	// drain path without signaling the test process.
	stop <-chan struct{}
	// logOut, when set, receives the log stream instead of os.Stdout.
	logOut io.Writer
}

func (c config) withDefaults() config {
	if c.LogFormat == "" {
		c.LogFormat = "text"
	}
	if c.ReadHeaderTimeout <= 0 {
		c.ReadHeaderTimeout = 5 * time.Second
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 30 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.MaxHeaderBytes <= 0 {
		c.MaxHeaderBytes = 1 << 20
	}
	if c.TraceEvents <= 0 {
		c.TraceEvents = 1 << 14
	}
	return c
}

// newLogger builds the service logger for the -log-format flag value.
func newLogger(format string, out io.Writer) (*slog.Logger, error) {
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(out, nil)), nil
	case "text":
		return slog.New(slog.NewTextHandler(out, nil)), nil
	}
	return nil, fmt.Errorf("-log-format must be json or text, got %q", format)
}

// newHTTPServer builds the hardened listener-facing server: header and
// read deadlines plus a header-size cap so one slow or hostile client
// cannot pin a connection goroutine forever (slowloris protection).
func newHTTPServer(cfg config, handler http.Handler) *http.Server {
	return &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: cfg.ReadHeaderTimeout,
		ReadTimeout:       cfg.ReadTimeout,
		IdleTimeout:       cfg.IdleTimeout,
		MaxHeaderBytes:    cfg.MaxHeaderBytes,
	}
}

func runConfig(cfg config) error {
	cfg = cfg.withDefaults()
	out := cfg.logOut
	if out == nil {
		out = os.Stdout
	}
	logger, err := newLogger(cfg.LogFormat, out)
	if err != nil {
		return err
	}
	if !cfg.TraceDisabled {
		telemetry.StartTracing(0, cfg.TraceEvents)
		defer telemetry.StopTracing()
	}
	// Both listeners bind synchronously so a bad address fails the start
	// with an error naming the flag — not a goroutine logging after the
	// service claimed to be up — and so ":0" addresses can be reported
	// to the caller.
	if cfg.PprofAddr != "" {
		ln, err := net.Listen("tcp", cfg.PprofAddr)
		if err != nil {
			return fmt.Errorf("cannot serve on -pprof address: %w", err)
		}
		defer ln.Close()
		go http.Serve(ln, nil)
		logger.Info("pprof", slog.String("addr", ln.Addr().String()))
	}
	srv, err := serve.New(serve.Config{
		CacheCapacity: cfg.Cache,
		MaxInflight:   cfg.MaxInflight,
		TenantRate:    cfg.TenantQPS,
		TenantBurst:   cfg.TenantBurst,
		MaxBatch:      cfg.MaxBatch,
		NoCoalesce:    cfg.NoCoalesce,
		MetricsName:   "hpfd.plans",
		Logger:        logger,
		SLOTarget:     cfg.SLOTarget,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return fmt.Errorf("cannot serve on -addr address: %w", err)
	}
	hs := newHTTPServer(cfg, srv.Handler())
	served := make(chan error, 1)
	go func() { served <- hs.Serve(ln) }()
	traceEvents := cfg.TraceEvents
	if cfg.TraceDisabled {
		traceEvents = 0
	}
	logger.Info("listening",
		slog.String("addr", ln.Addr().String()),
		slog.String("log_format", cfg.LogFormat),
		slog.Int("trace_events", traceEvents),
		slog.Duration("slo_target", cfg.SLOTarget),
	)
	if cfg.TenantQPS > 0 {
		logger.Info("quota",
			slog.Float64("tenant_qps", cfg.TenantQPS),
			slog.Float64("tenant_burst", cfg.TenantBurst),
		)
	}
	if cfg.afterStart != nil {
		cfg.afterStart(ln.Addr().String())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case err := <-served:
		// Serve never returns nil; reaching here without Shutdown means
		// the listener failed underneath us.
		return fmt.Errorf("server failed: %w", err)
	case s := <-sig:
		logger.Info("draining", slog.String("reason", s.String()), slog.Duration("budget", cfg.Drain))
	case <-cfg.stop:
		logger.Info("draining", slog.String("reason", "stop requested"), slog.Duration("budget", cfg.Drain))
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.Drain)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain exceeded %v: %w", cfg.Drain, err)
	}
	<-served // http.ErrServerClosed
	st := srv.Stats()
	logger.Info("drained",
		slog.Int64("cache_entries", st.Entries),
		slog.Int64("hits", st.Hits),
		slog.Int64("compiles", st.Misses),
		slog.Int64("coalesced", st.Coalesced),
	)
	return nil
}
