package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The run paths are exercised with tiny workloads; absolute timings are
// irrelevant here, only that every table renders without error.
func TestRunTable1(t *testing.T) {
	if err := run(1, 0, false, 2, 1, 100); err != nil {
		t.Fatal(err)
	}
}

func TestRunFigure7(t *testing.T) {
	if err := run(0, 7, false, 2, 1, 100); err != nil {
		t.Fatal(err)
	}
}

func TestRunTable2(t *testing.T) {
	if err := run(2, 0, false, 2, 1, 200); err != nil {
		t.Fatal(err)
	}
}

func TestRunNothingSelected(t *testing.T) {
	if err := run(0, 0, false, 2, 1, 100); err == nil {
		t.Error("no selection should fail")
	}
}

func TestRunCacheWithJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	cfg := config{Cache: true, Procs: 2, Reps: 1, Elems: 100, JSONPath: path}
	if err := runConfig(cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.Schema != "benchtables/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if len(rep.Cache) != 3 {
		t.Errorf("got %d cache rows, want 3", len(rep.Cache))
	}
	for _, r := range rep.Cache {
		if r.SteadyMisses != 0 {
			t.Errorf("%s: steady misses = %d, want 0", r.Name, r.SteadyMisses)
		}
	}
	if rep.Config.Procs != 2 {
		t.Errorf("config procs = %d", rep.Config.Procs)
	}
	// The telemetry snapshot rides along with every -json report.
	if rep.Telemetry == nil {
		t.Fatal("report has no telemetry snapshot")
	}
	if rep.Telemetry.Schema != "telemetry/v1" {
		t.Errorf("telemetry schema = %q, want telemetry/v1", rep.Telemetry.Schema)
	}
	// The benchmarks reset the global caches between families, so the
	// values may be zero here — what matters is that each registered
	// cache publishes its gauges into the snapshot.
	if _, ok := rep.Telemetry.Gauges["plancache.core.tables.hits"]; !ok {
		t.Error("telemetry snapshot missing plancache.core.tables.hits gauge")
	}
}

func TestRunLocalityWithJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "locality.json")
	cfg := config{Locality: true, Procs: 2, Reps: 1, Elems: 128, JSONPath: path}
	if err := runConfig(cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.Schema != "benchtables/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if len(rep.Locality) != 7 {
		t.Fatalf("got %d locality rows, want 7 (one per shape family)", len(rep.Locality))
	}
	for _, r := range rep.Locality {
		if r.Sweeps != 2 || r.Elems != 128 {
			t.Errorf("%s: row config = %+v", r.Family, r)
		}
		for _, p := range []reportLocalityProfile{r.Cyclic, r.Block} {
			if p.Accesses != 2*2*128 {
				t.Errorf("%s: accesses = %d, want %d", r.Family, p.Accesses, 2*2*128)
			}
			if p.Lines <= 0 || len(p.Miss) == 0 || p.Kernel == "" {
				t.Errorf("%s: incomplete profile %+v", r.Family, p)
			}
		}
		// Block distributions collapse to a const-gap kernel.
		if r.Block.Kernel != "constgap" {
			t.Errorf("%s: block kernel = %q", r.Family, r.Block.Kernel)
		}
	}
}

func TestInvalidFaultSpec(t *testing.T) {
	err := runConfig(config{Cache: true, Procs: 2, Reps: 1, Elems: 100,
		FaultSpec: "drop=2"})
	if err == nil {
		t.Fatal("out-of-range drop probability should be rejected")
	}
	if !strings.Contains(err.Error(), "-faults") {
		t.Errorf("error %q should name the -faults flag", err)
	}
}

func TestUnwritableJSONPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no", "such", "dir", "bench.json")
	err := runConfig(config{Cache: true, Procs: 2, Reps: 1, Elems: 100,
		JSONPath: path})
	if err == nil {
		t.Fatal("unwritable -json path should fail")
	}
	if !strings.Contains(err.Error(), "-json") {
		t.Errorf("error %q should name the -json flag", err)
	}
}

// TestFaultedBenchFailsStructured verifies the default-plan wiring end
// to end: machines created deep inside internal/bench inherit the
// armed plan, drop every message, and the watchdog converts the wedged
// benchmark into an error instead of a hang.
func TestFaultedBenchFailsStructured(t *testing.T) {
	err := runConfig(config{Cache: true, Procs: 2, Reps: 1, Elems: 100,
		FaultSpec: "seed=1,drop=1"})
	if err == nil {
		t.Fatal("benchmark with every message dropped should fail")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("error %q should name the deadlock", err)
	}
}

// TestRunServeWithJSON exercises the -serve family end to end with a
// reduced herd and checks the report rows: both modes present, the
// coalesced mode building exactly once per round.
func TestRunServeWithJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.json")
	cfg := config{Serve: true, Herd: 8, Procs: 2, Reps: 1, Elems: 100, JSONPath: path}
	if err := runConfig(cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.Schema != "benchtables/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if len(rep.Serve) != 2 {
		t.Fatalf("got %d serve rows, want 2", len(rep.Serve))
	}
	modes := map[string]reportServeRow{}
	for _, r := range rep.Serve {
		modes[r.Mode] = r
		if r.Herd != 8 || r.Rounds != 1 {
			t.Errorf("%s: herd/rounds = %d/%d, want 8/1", r.Mode, r.Herd, r.Rounds)
		}
		if r.ColdP99Ns < r.ColdP50Ns || r.ColdP50Ns <= 0 {
			t.Errorf("%s: cold p50 %d / p99 %d inconsistent", r.Mode, r.ColdP50Ns, r.ColdP99Ns)
		}
	}
	if co, ok := modes["coalesced"]; !ok {
		t.Error("no coalesced row")
	} else if co.Builds != 1 {
		t.Errorf("coalesced mode built %d plans for one cold key, want 1", co.Builds)
	}
	if _, ok := modes["no-coalesce"]; !ok {
		t.Error("no no-coalesce row")
	}
}

// TestBadPprofAddrFailsFast: the -pprof listener must bind before any
// benchmark runs, so an unusable address is a startup error naming the
// flag — not an async complaint mid-run.
func TestBadPprofAddrFailsFast(t *testing.T) {
	err := runConfig(config{Cache: true, Procs: 2, Reps: 1, Elems: 100,
		PprofAddr: "256.256.256.256:1"})
	if err == nil {
		t.Fatal("unusable -pprof address should fail the run")
	}
	if !strings.Contains(err.Error(), "-pprof") {
		t.Errorf("error %q should name the -pprof flag", err)
	}
}
