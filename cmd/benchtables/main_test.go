package main

import "testing"

// The run paths are exercised with tiny workloads; absolute timings are
// irrelevant here, only that every table renders without error.
func TestRunTable1(t *testing.T) {
	if err := run(1, 0, false, 2, 1, 100); err != nil {
		t.Fatal(err)
	}
}

func TestRunFigure7(t *testing.T) {
	if err := run(0, 7, false, 2, 1, 100); err != nil {
		t.Fatal(err)
	}
}

func TestRunTable2(t *testing.T) {
	if err := run(2, 0, false, 2, 1, 200); err != nil {
		t.Fatal(err)
	}
}

func TestRunNothingSelected(t *testing.T) {
	if err := run(0, 0, false, 2, 1, 100); err == nil {
		t.Error("no selection should fail")
	}
}
