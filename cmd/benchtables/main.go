// Command benchtables regenerates the paper's evaluation tables and
// figure on the host machine:
//
//	benchtables -table 1              # Table 1 (lattice vs sorting)
//	benchtables -figure 7             # Figure 7 series (s = 7)
//	benchtables -table 2              # Table 2 (node code shapes)
//	benchtables -all                  # everything
//
// Times are wall-clock microseconds on the current host; compare shapes
// and ratios with the paper, not absolute values (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		table  = flag.Int("table", 0, "regenerate Table 1 or 2")
		figure = flag.Int("figure", 0, "regenerate Figure 7")
		all    = flag.Bool("all", false, "regenerate every table and figure")
		procs  = flag.Int64("p", 32, "processor count (the paper uses 32)")
		reps   = flag.Int("reps", 5, "measurement repetitions (min of maxima kept)")
		elems  = flag.Int64("elems", 10000, "assignments per processor for Table 2")
	)
	flag.Parse()
	if err := run(*table, *figure, *all, *procs, *reps, *elems); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}

func run(table, figure int, all bool, procs int64, reps int, elems int64) error {
	did := false
	if all || table == 1 {
		rows, err := bench.Table1(procs, reps)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTable1(rows))
		fmt.Println()
		did = true
	}
	if all || figure == 7 {
		rows, err := bench.Figure7(procs, reps)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatFigure7(rows))
		fmt.Println()
		did = true
	}
	if all || table == 2 {
		results, err := bench.Table2(procs, elems, reps)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTable2(results))
		did = true
	}
	if !did {
		return fmt.Errorf("nothing selected: use -table 1, -table 2, -figure 7 or -all")
	}
	return nil
}
