// Command benchtables regenerates the paper's evaluation tables and
// figure on the host machine:
//
//	benchtables -table 1              # Table 1 (lattice vs sorting)
//	benchtables -figure 7             # Figure 7 series (s = 7)
//	benchtables -table 2              # Table 2 (node code shapes)
//	benchtables -cache                # plan-cache cold vs warm families
//	benchtables -shapes               # generic Figure 8 shapes vs specialized kernels
//	benchtables -locality             # block vs cyclic(k) reuse-distance profiles
//	benchtables -serve                # hpfd cold-key herd: coalesced vs no-coalesce
//	benchtables -obsserve             # hpfd per-phase attribution from request spans
//	benchtables -all                  # everything
//	benchtables -all -json out.json   # also write machine-readable results
//	benchtables -all -http :8080      # live /metrics, /trace, /healthz during the runs
//
// Times are wall-clock microseconds on the current host; compare shapes
// and ratios with the paper, not absolute values (see EXPERIMENTS.md).
// The -json schema is documented in README.md.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/machine"
	"repro/internal/reuse"
	"repro/internal/telemetry"
)

func main() {
	var (
		table     = flag.Int("table", 0, "regenerate Table 1 or 2")
		figure    = flag.Int("figure", 0, "regenerate Figure 7")
		cache     = flag.Bool("cache", false, "run the plan-cache cold/warm families")
		shapes    = flag.Bool("shapes", false, "run the shapes matrix (generic Figure 8 shapes vs specialized kernels)")
		locality  = flag.Bool("locality", false, "run the locality matrix (block vs cyclic(k) reuse-distance profiles)")
		serveBn   = flag.Bool("serve", false, "run the hpfd plan-service herd benchmark (coalesced vs no-coalesce)")
		obsServe  = flag.Bool("obsserve", false, "run the hpfd per-phase attribution benchmark (span-derived cold-herd latency breakdown)")
		herd      = flag.Int("herd", 64, "concurrent clients per cold key for -serve and -obsserve")
		all       = flag.Bool("all", false, "regenerate every table and figure")
		procs     = flag.Int64("p", 32, "processor count (the paper uses 32)")
		reps      = flag.Int("reps", 5, "measurement repetitions (min of maxima kept)")
		elems     = flag.Int64("elems", 10000, "assignments per processor for Table 2")
		jsonPath  = flag.String("json", "", "write machine-readable results to this file")
		trace     = flag.String("trace", "", "write a Chrome trace_event JSON of the run to this file")
		metrics   = flag.Bool("metrics", false, "dump the telemetry registry as telemetry/v1 JSON after the run")
		httpAddr  = flag.String("http", "", "serve /metrics (Prometheus), /trace (trace/v1) and /healthz on this address during the runs")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		faults    = flag.String("faults", "", "inject seeded message faults into every benchmark machine: seed=<n>,drop=<p>,dup=<p>,reorder=<p>,delay=<p>[:<dur>],crash=<rank>@<step>")
		deadline  = flag.Duration("deadline", 0, "per-receive deadline: a Recv blocked longer than this fails the run instead of hanging")
	)
	flag.Parse()
	cfg := config{
		Table: *table, Figure: *figure, Cache: *cache, Shapes: *shapes,
		Locality: *locality, Serve: *serveBn, ObsServe: *obsServe, Herd: *herd, All: *all,
		Procs: *procs, Reps: *reps, Elems: *elems, JSONPath: *jsonPath,
		TracePath: *trace, Metrics: *metrics, PprofAddr: *pprofAddr,
		HTTPAddr: *httpAddr, FaultSpec: *faults, Deadline: *deadline,
	}
	if err := runConfig(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}

type config struct {
	Table, Figure int
	Cache, All    bool
	Shapes        bool
	Locality      bool
	Serve         bool
	ObsServe      bool
	Herd          int
	Procs         int64
	Reps          int
	Elems         int64
	JSONPath      string
	TracePath     string
	Metrics       bool
	PprofAddr     string
	HTTPAddr      string
	FaultSpec     string
	Deadline      time.Duration
}

// report is the -json output document. Schema: see README.md
// ("Machine-readable benchmark output"). All durations are nanoseconds.
type report struct {
	Schema  string            `json:"schema"` // "benchtables/v1"
	Config  reportConfig      `json:"config"`
	Table1  []reportRow       `json:"table1,omitempty"`
	Figure7 []reportRow       `json:"figure7,omitempty"`
	Table2  []reportTable2Row `json:"table2,omitempty"`
	Cache   []reportCacheRow  `json:"cache,omitempty"`
	Shapes  []reportShapeRow  `json:"shapes,omitempty"`
	// Locality rows carry line-granularity reuse-distance profiles of
	// each Figure 8 shape family under its cyclic(k) layout vs a block
	// layout (see internal/bench.LocalityBench).
	Locality []reportLocalityRow `json:"locality,omitempty"`
	// Serve rows compare the hpfd plan service's cold-key thundering
	// herd with and without request coalescing (see
	// internal/bench.ServeBench).
	Serve []reportServeRow `json:"serve,omitempty"`
	// ObsServe is the span-derived per-phase latency attribution of a
	// cold-herd run (see internal/bench.ObsServeBench).
	ObsServe *reportObsServeRow `json:"obsserve,omitempty"`
	// Telemetry is the process-wide registry snapshot taken after the
	// runs (schema telemetry/v1): cache hit rates, message counts and
	// comm volumes ride along with the timings.
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
}

type reportConfig struct {
	Procs int64 `json:"procs"`
	Reps  int   `json:"reps"`
	Elems int64 `json:"elems"`
}

type reportCell struct {
	Stride    string `json:"stride"`
	LatticeNs int64  `json:"lattice_ns"`
	SortingNs int64  `json:"sorting_ns"`
}

type reportRow struct {
	K     int64        `json:"k"`
	Cells []reportCell `json:"cells"`
}

type reportTable2Row struct {
	K       int64            `json:"k"`
	S       int64            `json:"s"`
	ShapeNs map[string]int64 `json:"shape_ns"`
}

type reportShapeRow struct {
	Family          string           `json:"family"`
	K               int64            `json:"k"`
	S               int64            `json:"s"`
	Elems           int64            `json:"elems"`
	Kernel          string           `json:"kernel"` // selected specialized kernel kind
	ShapeNs         map[string]int64 `json:"shape_ns"`
	SpecializedNs   int64            `json:"specialized_ns"`
	SpeedupVsShapeB float64          `json:"speedup_vs_shape_b"`
}

type reportLocalityProfile struct {
	K        int64                `json:"k"`
	Kernel   string               `json:"kernel"`
	Accesses int64                `json:"accesses"`
	Lines    int64                `json:"distinct_lines"`
	MeanDist float64              `json:"mean_distance"`
	MaxDist  int64                `json:"max_distance"`
	Miss     []reuse.MissEstimate `json:"miss_rates"`
}

type reportLocalityRow struct {
	Family string                `json:"family"`
	S      int64                 `json:"s"`
	Elems  int64                 `json:"elems"`
	Sweeps int                   `json:"sweeps"`
	Cyclic reportLocalityProfile `json:"cyclic"`
	Block  reportLocalityProfile `json:"block"`
}

func toLocalityProfile(p bench.LocalityProfile) reportLocalityProfile {
	return reportLocalityProfile{
		K: p.K, Kernel: p.Kernel.String(), Accesses: p.Accesses, Lines: p.Lines,
		MeanDist: p.MeanDist, MaxDist: p.MaxDist, Miss: p.MissRates,
	}
}

type reportServeRow struct {
	Mode      string `json:"mode"` // "coalesced" or "no-coalesce"
	Herd      int    `json:"herd"`
	Rounds    int    `json:"rounds"`
	Builds    int64  `json:"builds"`
	Coalesced int64  `json:"coalesced"`
	OK        int64  `json:"ok"`
	ColdP50Ns int64  `json:"cold_p50_ns"`
	ColdP99Ns int64  `json:"cold_p99_ns"`
	WarmP50Ns int64  `json:"warm_p50_ns"`
	WarmP99Ns int64  `json:"warm_p99_ns"`
}

type reportObsServePhase struct {
	Name    string `json:"name"`
	Count   int    `json:"count"`
	TotalNs int64  `json:"total_ns"`
	P50Ns   int64  `json:"p50_ns"`
	P99Ns   int64  `json:"p99_ns"`
	MaxNs   int64  `json:"max_ns"`
}

type reportObsServeRow struct {
	Herd     int                   `json:"herd"`
	Rounds   int                   `json:"rounds"`
	Requests int                   `json:"requests"`
	Builds   int64                 `json:"builds"`
	Waiters  int64                 `json:"waiters"`
	Phases   []reportObsServePhase `json:"phases"`
}

type reportCacheRow struct {
	Name                string  `json:"name"`
	UncachedNsPerOp     float64 `json:"uncached_ns_per_op"`
	CachedNsPerOp       float64 `json:"cached_ns_per_op"`
	UncachedAllocsPerOp float64 `json:"uncached_allocs_per_op"`
	CachedAllocsPerOp   float64 `json:"cached_allocs_per_op"`
	HitRate             float64 `json:"hit_rate"`
	SteadyMisses        int64   `json:"steady_misses"`
}

func toReportRows(rows []bench.Row) []reportRow {
	out := make([]reportRow, 0, len(rows))
	for _, r := range rows {
		rr := reportRow{K: r.K}
		for _, c := range r.Cells {
			rr.Cells = append(rr.Cells, reportCell{
				Stride:    c.Stride,
				LatticeNs: c.Lattice.Nanoseconds(),
				SortingNs: c.Sorting.Nanoseconds(),
			})
		}
		out = append(out, rr)
	}
	return out
}

// run keeps the original positional signature used by the tests; it
// never writes JSON.
func run(table, figure int, all bool, procs int64, reps int, elems int64) error {
	return runConfig(config{
		Table: table, Figure: figure, All: all,
		Procs: procs, Reps: reps, Elems: elems,
	})
}

func runConfig(cfg config) error {
	// Flag failure modes surface before any benchmark runs: a malformed
	// -faults spec or an unwritable -json/-trace path exits non-zero
	// immediately, not after minutes of measurement.
	var faults *machine.FaultPlan
	if cfg.FaultSpec != "" {
		fp, err := machine.ParseFaultSpec(cfg.FaultSpec)
		if err != nil {
			return fmt.Errorf("invalid -faults spec: %w", err)
		}
		faults = fp
	}
	var jsonFile, traceFile *os.File
	cleanup := func() {
		if jsonFile != nil {
			jsonFile.Close()
			os.Remove(cfg.JSONPath)
		}
		if traceFile != nil {
			traceFile.Close()
			os.Remove(cfg.TracePath)
		}
	}
	if cfg.JSONPath != "" {
		f, err := os.Create(cfg.JSONPath)
		if err != nil {
			return fmt.Errorf("cannot write -json output: %w", err)
		}
		jsonFile = f
	}
	if cfg.TracePath != "" {
		f, err := os.Create(cfg.TracePath)
		if err != nil {
			cleanup()
			return fmt.Errorf("cannot write -trace output: %w", err)
		}
		traceFile = f
	}
	// The pprof listener binds synchronously, like -http below: a bad
	// address fails the run before any measurement starts (and ":0"
	// works, with the bound address printed), instead of a goroutine
	// complaining to stderr mid-benchmark.
	if cfg.PprofAddr != "" {
		ln, err := net.Listen("tcp", cfg.PprofAddr)
		if err != nil {
			cleanup()
			return fmt.Errorf("cannot serve on -pprof address: %w", err)
		}
		defer ln.Close()
		go http.Serve(ln, nil)
		fmt.Fprintf(os.Stderr, "benchtables: pprof on http://%s/debug/pprof/\n", ln.Addr())
	}
	if cfg.HTTPAddr != "" {
		ln, err := net.Listen("tcp", cfg.HTTPAddr)
		if err != nil {
			cleanup()
			return fmt.Errorf("cannot serve on -http address: %w", err)
		}
		defer ln.Close()
		go func() {
			srv := &http.Server{Handler: telemetry.Handler()}
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintln(os.Stderr, "benchtables: http:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "benchtables: serving /metrics, /trace, /healthz on http://%s/\n", ln.Addr())
	}
	// Benchmark machines are created inside internal/bench, so the fault
	// plan and deadline are installed as machine-wide defaults for the
	// duration of the runs (and reset on every exit path).
	if faults != nil {
		machine.SetDefaultFaults(faults)
		defer machine.SetDefaultFaults(nil)
		fmt.Fprintf(os.Stderr, "benchtables: faults armed: %s\n", cfg.FaultSpec)
	}
	if cfg.Deadline > 0 {
		machine.SetDefaultDeadline(cfg.Deadline)
		defer machine.SetDefaultDeadline(0)
	}
	if traceFile != nil {
		telemetry.StartTracing(int(cfg.Procs), 1<<14)
	}
	rep := report{
		Schema: "benchtables/v1",
		Config: reportConfig{Procs: cfg.Procs, Reps: cfg.Reps, Elems: cfg.Elems},
	}
	did, err := runBenches(cfg, &rep)
	if err != nil || !did {
		if traceFile != nil {
			telemetry.StopTracing()
		}
		cleanup()
		if err != nil {
			return err
		}
		return fmt.Errorf("nothing selected: use -table 1, -table 2, -figure 7, -cache, -shapes, -locality, -serve, -obsserve or -all")
	}
	if traceFile != nil {
		if t := telemetry.StopTracing(); t != nil {
			if err := t.WriteChromeTrace(traceFile); err != nil {
				traceFile.Close()
				return err
			}
			if err := traceFile.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "benchtables: wrote %s\n", cfg.TracePath)
		} else {
			traceFile.Close()
			os.Remove(cfg.TracePath)
		}
	}
	if jsonFile != nil {
		snap := telemetry.Default().Snapshot()
		rep.Telemetry = &snap
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			jsonFile.Close()
			return err
		}
		data = append(data, '\n')
		if _, err := jsonFile.Write(data); err != nil {
			jsonFile.Close()
			return err
		}
		if err := jsonFile.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "benchtables: wrote %s\n", cfg.JSONPath)
	}
	if cfg.Metrics {
		fmt.Printf("\ntelemetry registry (%s):\n", telemetry.Schema)
		if err := telemetry.Default().WriteJSON(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// runBenches runs the selected benchmark families. Machine-level
// failures under -faults/-deadline — injected crashes, watchdog trips,
// expired deadlines — arrive as panics out of the benchmark machines
// and are converted to ordinary errors here.
func runBenches(cfg config, rep *report) (did bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			did, err = false, fmt.Errorf("machine failure: %v", r)
		}
	}()
	if cfg.All || cfg.Table == 1 {
		rows, err := bench.Table1(cfg.Procs, cfg.Reps)
		if err != nil {
			return did, err
		}
		fmt.Print(bench.FormatTable1(rows))
		fmt.Println()
		rep.Table1 = toReportRows(rows)
		did = true
	}
	if cfg.All || cfg.Figure == 7 {
		rows, err := bench.Figure7(cfg.Procs, cfg.Reps)
		if err != nil {
			return did, err
		}
		fmt.Print(bench.FormatFigure7(rows))
		fmt.Println()
		rep.Figure7 = toReportRows(rows)
		did = true
	}
	if cfg.All || cfg.Table == 2 {
		results, err := bench.Table2(cfg.Procs, cfg.Elems, cfg.Reps)
		if err != nil {
			return did, err
		}
		fmt.Print(bench.FormatTable2(results))
		did = true
		for _, r := range results {
			row := reportTable2Row{K: r.Case.K, S: r.Case.S, ShapeNs: make(map[string]int64)}
			for sh, d := range r.Times {
				row.ShapeNs[string(sh)] = d.Nanoseconds()
			}
			rep.Table2 = append(rep.Table2, row)
		}
	}
	if cfg.All || cfg.Shapes {
		results, err := bench.ShapeBench(cfg.Procs, cfg.Elems, cfg.Reps)
		if err != nil {
			return did, err
		}
		if did {
			fmt.Println()
		}
		fmt.Print(bench.FormatShapeBench(results))
		did = true
		for _, r := range results {
			row := reportShapeRow{
				Family: r.Family, K: r.K, S: r.S, Elems: r.Elems,
				Kernel:          r.Kernel.String(),
				ShapeNs:         make(map[string]int64),
				SpecializedNs:   r.Specialized.Nanoseconds(),
				SpeedupVsShapeB: r.Speedup(),
			}
			for sh, d := range r.Generic {
				row.ShapeNs[string(sh)] = d.Nanoseconds()
			}
			rep.Shapes = append(rep.Shapes, row)
		}
	}
	if cfg.All || cfg.Locality {
		// Two sweeps: the first is all cold misses, the second exposes the
		// layout's reuse structure.
		results, err := bench.LocalityBench(cfg.Procs, cfg.Elems, 2, nil)
		if err != nil {
			return did, err
		}
		if did {
			fmt.Println()
		}
		fmt.Print(bench.FormatLocality(results))
		did = true
		for _, r := range results {
			rep.Locality = append(rep.Locality, reportLocalityRow{
				Family: r.Family, S: r.S, Elems: r.Elems, Sweeps: r.Sweeps,
				Cyclic: toLocalityProfile(r.Cyclic),
				Block:  toLocalityProfile(r.Block),
			})
		}
	}
	if cfg.All || cfg.Serve {
		// Rounds scale with reps: each round is one fresh cold key.
		rounds := cfg.Reps
		if rounds > 5 {
			rounds = 5
		}
		results, err := bench.ServeBench(cfg.Herd, rounds)
		if err != nil {
			return did, err
		}
		if did {
			fmt.Println()
		}
		fmt.Print(bench.FormatServeBench(results))
		did = true
		for _, r := range results {
			rep.Serve = append(rep.Serve, reportServeRow{
				Mode: r.Mode, Herd: r.Herd, Rounds: r.Rounds,
				Builds: r.Builds, Coalesced: r.Coalesced, OK: r.OK,
				ColdP50Ns: r.ColdP50Ns, ColdP99Ns: r.ColdP99Ns,
				WarmP50Ns: r.WarmP50Ns, WarmP99Ns: r.WarmP99Ns,
			})
		}
	}
	// ObsServeBench owns the process-wide tracer, so it cannot share a
	// run with -trace: explicit -obsserve -trace is an error, while
	// -all -trace just skips the attribution table.
	if cfg.ObsServe && cfg.TracePath != "" {
		return did, fmt.Errorf("-obsserve manages its own tracer and cannot be combined with -trace")
	}
	if cfg.ObsServe || (cfg.All && cfg.TracePath == "") {
		rounds := cfg.Reps
		if rounds > 5 {
			rounds = 5
		}
		r, err := bench.ObsServeBench(cfg.Herd, rounds)
		if err != nil {
			return did, err
		}
		if did {
			fmt.Println()
		}
		fmt.Print(bench.FormatObsServe(r))
		did = true
		row := &reportObsServeRow{
			Herd: r.Herd, Rounds: r.Rounds, Requests: r.Requests,
			Builds: int64(r.Builds), Waiters: int64(r.Waiters),
		}
		for _, p := range r.Phases {
			row.Phases = append(row.Phases, reportObsServePhase{
				Name: p.Name, Count: p.Count, TotalNs: p.TotalNs,
				P50Ns: p.P50Ns, P99Ns: p.P99Ns, MaxNs: p.MaxNs,
			})
		}
		rep.ObsServe = row
	}
	if cfg.All || cfg.Cache {
		// Iterations scale with reps; 20 per rep keeps a single run fast
		// while averaging out scheduler noise.
		results, err := bench.CacheBenchmarks(cfg.Procs, 20*cfg.Reps)
		if err != nil {
			return did, err
		}
		if did {
			fmt.Println()
		}
		fmt.Print(bench.FormatCacheBench(results))
		did = true
		for _, r := range results {
			rep.Cache = append(rep.Cache, reportCacheRow{
				Name:                r.Name,
				UncachedNsPerOp:     r.UncachedNsPerOp,
				CachedNsPerOp:       r.CachedNsPerOp,
				UncachedAllocsPerOp: r.UncachedAllocsPerOp,
				CachedAllocsPerOp:   r.CachedAllocsPerOp,
				HitRate:             r.HitRate,
				SteadyMisses:        r.SteadyMisses,
			})
		}
	}
	return did, nil
}
