// Package repro is a Go reproduction of Kennedy, Nedeljković & Sethi,
// "A Linear-Time Algorithm for Computing the Memory Access Sequence in
// Data-Parallel Programs" (PPOPP 1995).
//
// The library computes, for arrays distributed with HPF cyclic(k)
// distributions, the cyclic sequence of local memory gaps (the AM table)
// each processor follows when traversing a regular array section — in
// O(k + min(log s, log p)) time via an integer-lattice basis. It includes
// the sorting-based baseline it improves on, the restricted linear-time
// predecessor, the node-code shapes that consume the tables, affine
// alignment support, and a distributed-array runtime with communication
// set generation running on a simulated multiprocessor.
//
// A miniature HPF-flavored script language drives the runtime end to
// end: internal/lang/ast parses scripts to a typed AST shared by the
// interpreter (internal/lang) and the static analyzer
// (internal/analysis), which checks declarations, section bounds, shape
// conformance, int64 overflow of the lattice parameters, and
// communication cost, emitting stable HPF001–HPF012 diagnostics.
// cmd/hpflint lints scripts without executing them; cmd/hpfc -check
// lints before running.
//
// Start with internal/core (the algorithms), internal/dist (the
// distributions) and examples/quickstart. DESIGN.md maps every paper
// section, table and figure to the code that reproduces it; the root
// bench_test.go regenerates the evaluation.
package repro
