// Transpose: distributed matrix transposition between block-scattered
// layouts — the all-to-all-heaviest primitive in dense linear algebra and
// FFTs, built entirely from per-dimension progression intersections.
//
// A is 48×32 on a 2×2 grid with cyclic(3)×cyclic(2) distribution; B is
// 32×48 on a different (3×2, cyclic(4)×cyclic(5)) grid. B = Aᵀ moves
// every element to a new owner; the plan derives each processor pair's
// transfer set in closed form (no element scanning), and the SPMD
// execution is verified elementwise.
//
//	go run ./examples/transpose
package main

import (
	"fmt"
	"log"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/hpf"
	"repro/internal/machine"
	"repro/internal/section"
)

func main() {
	const n0, n1 = 48, 32
	gridA := dist.MustNewGrid(dist.MustNew(2, 3), dist.MustNew(2, 2))
	gridB := dist.MustNewGrid(dist.MustNew(3, 4), dist.MustNew(2, 5))

	a := hpf.MustNewArray2D(gridA, n0, n1)
	b := hpf.MustNewArray2D(gridB, n1, n0)
	for i := int64(0); i < n0; i++ {
		for j := int64(0); j < n1; j++ {
			a.Set(i, j, float64(i)+float64(j)/100)
		}
	}

	rectA, err := section.NewRect(
		section.Section{Lo: 0, Hi: n0 - 1, Stride: 1},
		section.Section{Lo: 0, Hi: n1 - 1, Stride: 1},
	)
	if err != nil {
		log.Fatal(err)
	}
	rectB, err := section.NewRect(
		section.Section{Lo: 0, Hi: n1 - 1, Stride: 1},
		section.Section{Lo: 0, Hi: n0 - 1, Stride: 1},
	)
	if err != nil {
		log.Fatal(err)
	}

	procs := max(gridA.Procs(), gridB.Procs())
	m := machine.MustNew(int(procs))
	if err := comm.Transpose2D(m, b, rectB, a, rectA); err != nil {
		log.Fatal(err)
	}

	// Verify B == A^T elementwise.
	for i := int64(0); i < n0; i++ {
		for j := int64(0); j < n1; j++ {
			if b.Get(j, i) != a.Get(i, j) {
				log.Fatalf("B(%d,%d) = %v != A(%d,%d) = %v",
					j, i, b.Get(j, i), i, j, a.Get(i, j))
			}
		}
	}
	fmt.Printf("B = A^T: %dx%d on %v×%v grid -> %dx%d on %v×%v grid\n",
		n0, n1, gridA.Dim(0), gridA.Dim(1), n1, n0, gridB.Dim(0), gridB.Dim(1))
	fmt.Printf("%d elements moved across %d processors\n", n0*n1, procs)
	fmt.Println("verified: distributed transpose matches elementwise")

	// Strided sub-transpose: B(0:15:1, 0:30:2) = transpose(A(0:30:2, 0:15:1)).
	subB, _ := section.NewRect(section.MustNew(0, 15, 1), section.MustNew(0, 30, 2))
	subA, _ := section.NewRect(section.MustNew(0, 30, 2), section.MustNew(0, 15, 1))
	if err := comm.Transpose2D(m, b, subB, a, subA); err != nil {
		log.Fatal(err)
	}
	for t0 := int64(0); t0 < 16; t0++ {
		for t1 := int64(0); t1 < 16; t1++ {
			want := a.Get(subA[0].Element(t1), subA[1].Element(t0))
			if got := b.Get(subB[0].Element(t0), subB[1].Element(t1)); got != want {
				log.Fatalf("strided sub-transpose wrong at (%d,%d)", t0, t1)
			}
		}
	}
	fmt.Println("verified: strided sub-transpose matches elementwise")
}
