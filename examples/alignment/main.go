// Alignment: address generation through an HPF affine alignment.
//
// The array A is not distributed directly: it is ALIGNED to a template
// with A(i) living at template cell 3·i + 2, and the template is
// distributed cyclic(4) over 3 processors (paper, Section 2). Each
// processor packs its owned array elements contiguously, so the local
// address of an accessed element is its rank among owned elements — a
// second address-generation problem with stride 3. The paper notes the
// general case is solved "by two applications of the access sequence
// computation algorithm"; package align composes them.
//
//	go run ./examples/alignment
package main

import (
	"fmt"
	"log"

	"repro/internal/align"
	"repro/internal/dist"
)

func main() {
	layout := dist.MustNew(3, 4) // template: cyclic(4) over 3 processors
	al := align.Alignment{A: 3, B: 2}
	m, err := align.NewMap(layout, al)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("template %v, array aligned %v\n\n", layout, al)

	// Where do the first array elements live?
	fmt.Println("array element -> template cell -> owner:")
	for i := int64(0); i < 8; i++ {
		fmt.Printf("  A(%d) -> cell %2d -> proc %d\n", i, al.Cell(i), m.Owner(i))
	}

	// Packed storage on each processor for a 40-element array.
	fmt.Println("\npacked local storage (first elements) per processor:")
	for proc := int64(0); proc < 3; proc++ {
		st, err := m.NewStorage(proc)
		if err != nil {
			log.Fatal(err)
		}
		var owned []int64
		for i := int64(0); i < 40 && len(owned) < 6; i++ {
			if st.Owns(i) {
				owned = append(owned, i)
			}
		}
		fmt.Printf("  proc %d: %d elements of A(0:39); first owned indices %v\n",
			proc, st.LocalCount(40), owned)
	}

	// Access sequence for the section A(1 : u : 5) on processor 2: the
	// composition of the stride-15 template pattern and the stride-3
	// storage ranking.
	sq, err := m.Access(2, 1, 5)
	if err != nil {
		log.Fatal(err)
	}
	if sq.Empty() {
		log.Fatal("processor 2 owns no section elements")
	}
	fmt.Printf("\nsection A(1:u:5) on proc 2: owned positions per cycle %v (period %d)\n",
		sq.JS, sq.PeriodJ)
	fmt.Printf("first storage address %d, storage gaps %v\n", sq.StartAddr, sq.Gaps)

	// Bounded addresses, verified against direct enumeration.
	addrs, err := m.Addresses(2, 1, 120, 5)
	if err != nil {
		log.Fatal(err)
	}
	st, _ := m.NewStorage(2)
	var want []int64
	for i := int64(1); i <= 120; i += 5 {
		if st.Owns(i) {
			want = append(want, st.Rank(i))
		}
	}
	fmt.Printf("addresses of A(1:120:5) on proc 2: %v\n", addrs)
	if fmt.Sprint(addrs) != fmt.Sprint(want) {
		log.Fatalf("mismatch with direct enumeration: %v", want)
	}
	fmt.Println("verified: composed sequence matches direct enumeration")
}
