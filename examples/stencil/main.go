// Stencil: a strided red/black relaxation over a cyclic(k)-distributed
// array, exercising every node-code shape of the paper's Figure 8 on the
// same workload and checking they agree.
//
// Red/black Gauss–Seidel sweeps update the odd-indexed ("red") and
// even-indexed ("black") elements alternately — regular sections with
// stride 2, exactly the access pattern the AM table exists for. Each
// shape runs the identical red-section assignment on identical data; the
// example verifies all five produce bit-identical arrays and reports a
// rough timing comparison (Table 2's experiment in miniature).
//
//	go run ./examples/stencil
package main

import (
	"fmt"
	"log"
	"reflect"
	"time"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/hpf"
	"repro/internal/section"
)

const (
	procs = 4
	k     = 8
	n     = 4096
)

// sweepShape runs A(red) = 1 on a fresh array using one code shape and
// returns the resulting dense contents.
func sweepShape(shape string) ([]float64, time.Duration, error) {
	layout := dist.MustNew(procs, k)
	a := hpf.MustNewArray(layout, n)
	red := section.MustNew(1, n-1, 2)

	start := time.Now()
	for m := int64(0); m < procs; m++ {
		pr := core.Problem{P: procs, K: k, L: red.Lo, S: red.Stride, M: m}
		u := red.Last()
		count, err := pr.Count(u)
		if err != nil {
			return nil, 0, err
		}
		if count == 0 {
			continue
		}
		seq, err := core.Lattice(pr)
		if err != nil {
			return nil, 0, err
		}
		lastGlobal, err := pr.Last(u)
		if err != nil {
			return nil, 0, err
		}
		mem := a.LocalMem(m)
		first := seq.StartLocal
		last := layout.Local(lastGlobal)

		var wrote int64
		switch shape {
		case "8(a)":
			wrote = codegen.ShapeA(mem, first, last, seq.Gaps, 1)
		case "8(b)":
			wrote = codegen.ShapeB(mem, first, last, seq.Gaps, 1)
		case "8(c)":
			wrote = codegen.ShapeC(mem, first, last, seq.Gaps, 1)
		case "8(d)":
			tab, err := core.OffsetTables(pr)
			if err != nil {
				return nil, 0, err
			}
			wrote = codegen.ShapeD(mem, first, last, tab, 1)
		case "walker":
			w, ok, err := core.NewWalker(pr)
			if err != nil || !ok {
				return nil, 0, fmt.Errorf("walker unavailable: %v", err)
			}
			wrote = codegen.ShapeWalker(mem, last, w, 1)
		default:
			return nil, 0, fmt.Errorf("unknown shape %q", shape)
		}
		if wrote != count {
			return nil, 0, fmt.Errorf("shape %s wrote %d of %d on proc %d", shape, wrote, count, m)
		}
	}
	return a.Gather(), time.Since(start), nil
}

func main() {
	shapes := []string{"8(a)", "8(b)", "8(c)", "8(d)", "walker"}
	var reference []float64
	fmt.Printf("red sweep A(1:%d:2) = 1 over cyclic(%d) × %d procs, n = %d\n\n", n-1, k, procs, n)
	for _, sh := range shapes {
		got, el, err := sweepShape(sh)
		if err != nil {
			log.Fatal(err)
		}
		if reference == nil {
			reference = got
		} else if !reflect.DeepEqual(got, reference) {
			log.Fatalf("shape %s produced different contents", sh)
		}
		fmt.Printf("  shape %-7s %8v (tables + sweep)\n", sh, el)
	}

	// Sanity: red elements are 1, black untouched.
	for i := int64(0); i < n; i++ {
		want := 0.0
		if i%2 == 1 {
			want = 1
		}
		if reference[i] != want {
			log.Fatalf("element %d = %v, want %v", i, reference[i], want)
		}
	}
	fmt.Println("\nverified: all five shapes write exactly the red section")
}
