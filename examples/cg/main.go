// CG: conjugate gradients on a cyclic(k)-distributed 1-D Poisson system,
// the flagship pattern for the whole runtime working together:
//
//   - the tridiagonal matvec runs on LOCAL data only, using halo
//     exchange for the block-boundary neighbors (Fortran D overlap
//     areas, the paper's reference [10]);
//   - dot products are machine AllReduce collectives;
//   - axpy updates are local sweeps over the packed cyclic(k) storage,
//     while the p = r + beta*p update runs through the cached section
//     runtime (MapSection + comm.Accumulate) — iteration 2..N reuses
//     memoized plans and builds no AM tables;
//   - communication volume and plan-cache hit rates are reported.
//
// Solves A·x = b with A = tridiag(-1, 2, -1) and a known solution, and
// verifies the residual and the recovered x.
//
//	go run ./examples/cg
//	go run ./examples/cg -p 8 -n 512 -trace cg.json
//	go run ./examples/cg -memtrace access.json   # then: hpfmem access.json
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/halo"
	"repro/internal/hpf"
	"repro/internal/machine"
	"repro/internal/section"
	"repro/internal/telemetry"
)

var (
	procs = flag.Int64("p", 4, "number of processors")
	k     = flag.Int64("k", 8, "block size of the cyclic(k) distribution")
	// n must stay a multiple of p*k so halos cover whole blocks.
	n     = flag.Int64("n", 256, "unknowns (must be a multiple of p*k)")
	trace = flag.String("trace", "", "write a Chrome trace_event JSON of the run to this file")
	mem   = flag.String("memtrace", "", "write an accesstrace/v1 JSON of every distributed-memory access to this file (analyze with hpfmem)")
)

// matvec computes y = A·p for the tridiagonal Poisson matrix, using one
// halo exchange and then only local memory.
func matvec(m *machine.Machine, y, p *hpf.Array) error {
	h, err := halo.Exchange(m, p, 1, 0) // pad 0 = Dirichlet boundary
	if err != nil {
		return err
	}
	layout := p.Layout()
	kk := layout.K()
	for proc := int64(0); proc < layout.P(); proc++ {
		src := p.LocalMem(proc)
		dst := y.LocalMem(proc)
		for row := int64(0); row < h.Rows(); row++ {
			base := row * kk
			for off := int64(0); off < kk; off++ {
				var left, right float64
				if off > 0 {
					left = src[base+off-1]
				} else {
					left = h.Left(proc, row, 1)
				}
				if off < kk-1 {
					right = src[base+off+1]
				} else {
					right = h.Right(proc, row, 1)
				}
				dst[base+off] = 2*src[base+off] - left - right
			}
		}
	}
	return nil
}

// dot computes x·y with per-processor partial sums combined by an
// AllReduce on the machine.
func dot(m *machine.Machine, x, y *hpf.Array) float64 {
	var result float64
	m.Run(func(proc *machine.Proc) {
		me := int64(proc.Rank())
		var part float64
		xm, ym := x.LocalMem(me), y.LocalMem(me)
		for i := range xm {
			part += xm[i] * ym[i]
		}
		total := proc.AllReduce(part, machine.Sum)
		if proc.Rank() == 0 {
			result = total
		}
	})
	return result
}

// axpy computes y += alpha*x on local memories.
func axpy(alpha float64, x, y *hpf.Array) {
	for proc := int64(0); proc < x.Layout().P(); proc++ {
		xm, ym := x.LocalMem(proc), y.LocalMem(proc)
		for i := range xm {
			ym[i] += alpha * xm[i]
		}
	}
}

// xpay computes p = r + beta*p through the cached section runtime:
// p(whole) *= beta (AM-table node loops), then p(whole) += r(whole)
// (memoized communication plan). The first call plans; every later
// iteration is pure cache hits.
func xpay(m *machine.Machine, r, p *hpf.Array, beta float64) error {
	whole := section.Section{Lo: 0, Hi: p.N() - 1, Stride: 1}
	if err := p.MapSection(whole, func(v float64) float64 { return beta * v }); err != nil {
		return err
	}
	return comm.Accumulate(m, p, whole, r, whole, comm.Add)
}

func main() {
	flag.Parse()
	procs, k, n := *procs, *k, *n
	if n%(procs*k) != 0 {
		log.Fatalf("-n %d must be a multiple of p*k = %d", n, procs*k)
	}
	if *trace != "" {
		telemetry.StartTracing(int(procs), 1<<15)
	}
	if *mem != "" {
		// Ring capacity 2^20 records per rank (16 MiB); very long runs keep
		// the most recent window and the hpfmem report warns about the rest.
		telemetry.StartAccessRecording(int(procs), 1<<20, 1)
	}
	layout := dist.MustNew(procs, k)
	m := machine.MustNew(int(procs))

	// Manufactured solution exciting many eigenmodes (a single sine mode
	// would be an eigenvector and converge in one step).
	xstar := hpf.MustNewArray(layout, n)
	for i := int64(0); i < n; i++ {
		t := float64(i+1) / float64(n+1)
		xstar.Set(i, t*(1-t)*math.Exp(2*t)+0.3*math.Sin(13*math.Pi*t))
	}
	b := hpf.MustNewArray(layout, n)
	if err := matvec(m, b, xstar); err != nil {
		log.Fatal(err)
	}

	// CG with x0 = 0: r = b, p = r.
	x := hpf.MustNewArray(layout, n)
	r := hpf.MustNewArray(layout, n)
	p := hpf.MustNewArray(layout, n)
	ap := hpf.MustNewArray(layout, n)
	for proc := int64(0); proc < procs; proc++ {
		copy(r.LocalMem(proc), b.LocalMem(proc))
		copy(p.LocalMem(proc), b.LocalMem(proc))
	}

	rr := dot(m, r, r)
	iters := int64(0)
	for ; iters < n && math.Sqrt(rr) > 1e-10; iters++ {
		if err := matvec(m, ap, p); err != nil {
			log.Fatal(err)
		}
		alpha := rr / dot(m, p, ap)
		axpy(alpha, p, x)
		axpy(-alpha, ap, r)
		rrNew := dot(m, r, r)
		if err := xpay(m, r, p, rrNew/rr); err != nil {
			log.Fatal(err)
		}
		rr = rrNew
	}

	worst := 0.0
	for i := int64(0); i < n; i++ {
		worst = math.Max(worst, math.Abs(x.Get(i)-xstar.Get(i)))
	}
	stats := m.TotalStats()
	fmt.Printf("CG on %d unknowns over %v\n", n, layout)
	fmt.Printf("converged in %d iterations, ||r|| = %.2e\n", iters, math.Sqrt(rr))
	fmt.Printf("max |x - x*| = %.2e\n", worst)
	fmt.Printf("communication: %d messages sent / %d received, %d values exchanged\n",
		stats.MessagesSent, stats.MessagesReceived, stats.ValuesSent)
	if worst > 1e-8 {
		log.Fatal("CG failed to recover the solution")
	}
	fmt.Println("verified: distributed CG recovers the manufactured solution")

	// The registry aggregates every plan cache's counters and the
	// machine's traffic histograms — no hand-rolled reporting.
	fmt.Printf("\ntelemetry registry for this run:\n")
	if err := telemetry.Default().WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	if *trace != "" {
		t := telemetry.StopTracing()
		f, err := os.Create(*trace)
		if err != nil {
			log.Fatal(err)
		}
		if err := t.WriteChromeTrace(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntrace: wrote %s (analyze with: go run ./cmd/hpfprof %s)\n", *trace, *trace)
	}
	if *mem != "" {
		ar := telemetry.StopAccessRecording()
		f, err := os.Create(*mem)
		if err != nil {
			log.Fatal(err)
		}
		if err := ar.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		if d := ar.Dropped(); d > 0 {
			fmt.Printf("\nmemtrace: ring kept only the last window (%d records overwritten)\n", d)
		}
		fmt.Printf("\nmemtrace: wrote %s (analyze with: go run ./cmd/hpfmem %s)\n", *mem, *mem)
	}
}
