// Quickstart: the paper's running example, end to end.
//
// An array is distributed cyclic(8) over 4 processors and a loop
// traverses the regular section A(4 : u : 9). Processor 1 must touch its
// owned section elements in increasing order — this program computes the
// memory-gap table (AM) it follows, exactly as in the paper's Section 5
// walk-through, then double-checks it with the sorting baseline, the
// table-free walker, and a brute-force enumeration.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/viz"
)

func main() {
	pr := core.Problem{P: 4, K: 8, L: 4, S: 9, M: 1}

	// The linear-time lattice algorithm (Figure 5).
	seq, err := core.Lattice(pr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("lattice:  ", viz.AMTable(seq))

	// The basis vectors behind it (Section 4).
	basis, ok, err := core.Vectors(pr.P, pr.K, pr.S)
	if err != nil || !ok {
		log.Fatalf("basis: ok=%v err=%v", ok, err)
	}
	fmt.Printf("basis:     R=(%d,%d) gap %d, L=(%d,%d) gap %d\n",
		basis.R.B, basis.R.A, basis.GapR, basis.L.B, basis.L.A, basis.GapL)

	// The sorting baseline produces the same table, more slowly.
	srt, err := core.Sorting(pr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sorting:  ", viz.AMTable(srt))

	// The table-free walker regenerates the gaps from R and L alone.
	w, ok, err := core.NewWalker(pr)
	if err != nil || !ok {
		log.Fatalf("walker: ok=%v err=%v", ok, err)
	}
	fmt.Printf("walker:    first 10 local addresses: %v\n", w.Addresses(10, nil))

	// Ground truth by brute force.
	ref, err := core.Enumerate(pr)
	if err != nil {
		log.Fatal(err)
	}
	if !seq.Equal(ref) || !srt.Equal(ref) {
		log.Fatal("algorithms disagree with brute force!")
	}
	fmt.Println("verified:  lattice == sorting == brute force")

	// Bounded-section helpers: how many elements of A(4:319:9) does
	// processor 1 own, and which is the last?
	count, _ := pr.Count(319)
	last, _ := pr.Last(319)
	fmt.Printf("bounded:   A(4:319:9) puts %d elements on processor %d; last is index %d\n",
		count, pr.M, last)
}
