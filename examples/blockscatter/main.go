// Blockscatter: dense matrix–vector multiply on a block-scattered
// (cyclic(k) × cyclic(k)) matrix — the use case the paper cites from
// Dongarra, van de Geijn & Walker for why cyclic(k) matters in scalable
// dense linear algebra (Section 1).
//
// The matrix A (n×n) is distributed over a 2×2 processor grid with
// cyclic(2) distributions in both dimensions; the vectors x and y are
// replicated. Each processor computes partial dot products over exactly
// the (i, j) pairs it owns — enumerated through the distribution, never
// through a global dense copy — and partial results are combined with a
// reduction on the simulated machine.
//
//	go run ./examples/blockscatter
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/dist"
	"repro/internal/hpf"
	"repro/internal/machine"
)

func main() {
	const n = 12
	grid := dist.MustNewGrid(dist.MustNew(2, 2), dist.MustNew(2, 2))
	a := hpf.MustNewArray2D(grid, n, n)

	// A(i,j) = i + j/100; x(j) = j+1.
	for i := int64(0); i < n; i++ {
		for j := int64(0); j < n; j++ {
			a.Set(i, j, float64(i)+float64(j)/100)
		}
	}
	x := make([]float64, n)
	for j := range x {
		x[j] = float64(j + 1)
	}

	// SPMD y = A·x: each processor sweeps its local matrix with its owned
	// global indices, then row sums are combined pairwise across the grid.
	m := machine.MustNew(int(grid.Procs()))
	y := make([]float64, n)
	m.Run(func(p *machine.Proc) {
		rank := int64(p.Rank())
		mem, _, cols := a.LocalMem(rank)
		rowIdx, colIdx := a.LocalDomain(rank)

		// Partial products: node loop over packed local storage.
		partial := make([]float64, n)
		for li, i := range rowIdx {
			acc := 0.0
			base := int64(li) * cols
			for lj, j := range colIdx {
				acc += mem[base+int64(lj)] * x[j]
			}
			partial[i] = acc
		}
		// Combine partials on processor 0 (sum is correct because each
		// (i, j) pair lives on exactly one processor).
		gathered := p.GatherSlices(partial, 0)
		if p.Rank() == 0 {
			for _, part := range gathered {
				for i := range y {
					y[i] += part[i]
				}
			}
		}
	})

	// Verify against a sequential reference.
	worst := 0.0
	for i := int64(0); i < n; i++ {
		want := 0.0
		for j := int64(0); j < n; j++ {
			want += a.Get(i, j) * x[j]
		}
		worst = math.Max(worst, math.Abs(want-y[i]))
	}
	fmt.Printf("y = A·x over a %d-proc block-scattered grid\n", grid.Procs())
	fmt.Printf("y[0..3] = %.2f %.2f %.2f %.2f\n", y[0], y[1], y[2], y[3])
	fmt.Printf("max |error| vs sequential reference: %g\n", worst)
	if worst > 1e-9 {
		log.Fatal("distributed result diverges from reference")
	}
	fmt.Println("verified: distributed matvec matches reference")
}
