// Redistribute: changing an array's cyclic(k) block size mid-computation,
// with planned communication sets.
//
// ScaLAPACK-style dense solvers pick the block size per phase: a large k
// for BLAS-3 locality, a small k for load balance. This example plans and
// executes the cyclic(64) → cyclic(4) redistribution of a 2048-element
// array over 8 processors, prints how much data stays put versus moves
// (information the plan exposes before any communication happens), and
// verifies the round trip.
//
//	go run ./examples/redistribute
package main

import (
	"fmt"
	"log"

	"repro/internal/dist"
	"repro/internal/hpf"
	"repro/internal/machine"
	"repro/internal/redist"
)

func main() {
	const (
		n     = 2048
		procs = 8
	)
	coarse := dist.MustNew(procs, 64) // BLAS-3 friendly
	fine := dist.MustNew(procs, 4)    // load-balance friendly

	src := hpf.MustNewArray(coarse, n)
	for i := int64(0); i < n; i++ {
		src.Set(i, float64(i))
	}

	// Inspect the plan before moving anything.
	plan, err := redist.Plan(coarse, n, fine)
	if err != nil {
		log.Fatal(err)
	}
	stay := redist.StayVolume(plan)
	fmt.Printf("redistribute %v -> %v over %d elements\n", coarse, fine, n)
	fmt.Printf("plan: %d elements stay on-processor, %d cross the network (%.1f%%)\n",
		stay, n-stay, 100*float64(n-stay)/float64(n))

	// Per-pair traffic matrix.
	fmt.Println("traffic matrix (rows: sender, cols: receiver):")
	for q := int64(0); q < procs; q++ {
		fmt.Printf("  q%-2d:", q)
		for r := int64(0); r < procs; r++ {
			fmt.Printf("%6d", plan.Volume(q, r))
		}
		fmt.Println()
	}

	// Execute on the simulated machine and verify.
	m := machine.MustNew(procs)
	mid, err := redist.Redistribute(m, src, fine)
	if err != nil {
		log.Fatal(err)
	}
	back, err := redist.Redistribute(m, mid, coarse)
	if err != nil {
		log.Fatal(err)
	}
	for i := int64(0); i < n; i++ {
		if mid.Get(i) != float64(i) || back.Get(i) != float64(i) {
			log.Fatalf("element %d corrupted: mid=%v back=%v", i, mid.Get(i), back.Get(i))
		}
	}
	fmt.Println("verified: contents preserved through cyclic(64) -> cyclic(4) -> cyclic(64)")
}
