// Jacobi: a 1-D Jacobi relaxation on a cyclic(k)-distributed array —
// the kind of data-parallel loop nest HPF compiles into exactly the
// section assignments this library implements.
//
// Each sweep computes
//
//	new(1 : n-2) = 0.5 * (x(0 : n-3) + x(2 : n-1))
//
// entirely through distributed-section machinery: the two shifted
// operands travel via planned communication sets (comm.Combine), the
// scaling runs through the AM-table node loops (MapSection), and the
// boundary values are pinned. The result after every sweep is verified
// against a sequential reference, and the distributed solve converges to
// the linear profile the boundary conditions dictate.
//
//	go run ./examples/jacobi
//	go run ./examples/jacobi -p 8 -sweeps 1000 -trace jacobi.json
//	go run ./examples/jacobi -sweeps 64 -memtrace access.json  # then: hpfmem access.json
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/hpf"
	"repro/internal/machine"
	"repro/internal/section"
	"repro/internal/telemetry"
)

func main() {
	var (
		procs  = flag.Int64("p", 4, "number of processors")
		k      = flag.Int64("k", 4, "block size of the cyclic(k) distribution")
		n      = flag.Int64("n", 64, "array size")
		sweeps = flag.Int("sweeps", 4096, "relaxation sweeps")
		trace  = flag.String("trace", "", "write a Chrome trace_event JSON of the run to this file")
		mem    = flag.String("memtrace", "", "write an accesstrace/v1 JSON of every distributed-memory access to this file (analyze with hpfmem)")
	)
	flag.Parse()
	run(*procs, *k, *n, *sweeps, *trace, *mem)
}

func run(procs, k, n int64, sweeps int, tracePath, memPath string) {
	if n < 3 {
		log.Fatal("need -n >= 3 for an interior")
	}
	if tracePath != "" {
		telemetry.StartTracing(int(procs), 1<<15)
	}
	if memPath != "" {
		// Ring capacity 2^20 records per rank (16 MiB); very long runs keep
		// the most recent window and the hpfmem report warns about the rest.
		telemetry.StartAccessRecording(int(procs), 1<<20, 1)
	}
	layout := dist.MustNew(procs, k)
	m := machine.MustNew(int(procs))

	x := hpf.MustNewArray(layout, n)
	tmp := hpf.MustNewArray(layout, n)

	// Boundary conditions: x(0) = 0, x(n-1) = 1; interior starts at 0.
	x.Set(n-1, 1)

	interior := section.MustNew(1, n-2, 1)
	left := section.MustNew(0, n-3, 1)
	right := section.MustNew(2, n-1, 1)

	// Sequential reference state.
	ref := make([]float64, n)
	ref[n-1] = 1

	for sweep := 0; sweep < sweeps; sweep++ {
		// tmp(interior) = x(left) + x(right), then scale by 0.5.
		if err := comm.Combine(m, tmp, interior, x, left, x, right, comm.Add); err != nil {
			log.Fatal(err)
		}
		if err := tmp.MapSection(interior, func(v float64) float64 { return 0.5 * v }); err != nil {
			log.Fatal(err)
		}
		// x(interior) = tmp(interior).
		if err := comm.Copy(m, x, interior, tmp, interior); err != nil {
			log.Fatal(err)
		}

		// Advance the sequential reference and spot-check occasionally.
		next := make([]float64, n)
		copy(next, ref)
		for i := int64(1); i < n-1; i++ {
			next[i] = 0.5 * (ref[i-1] + ref[i+1])
		}
		ref = next
		if sweep%1000 == 0 || sweep == sweeps-1 {
			worst := 0.0
			got := x.Gather()
			for i := range got {
				worst = math.Max(worst, math.Abs(got[i]-ref[i]))
			}
			if worst > 1e-12 {
				log.Fatalf("sweep %d: distributed diverges from reference by %g", sweep, worst)
			}
			fmt.Printf("sweep %4d: max |distributed - sequential| = %g, x(n/2) = %.6f\n",
				sweep, worst, x.Get(n/2))
		}
	}

	// After enough sweeps the solution converges to the linear profile
	// i/(n-1) the boundary conditions dictate.
	worst := 0.0
	for i := int64(0); i < n; i++ {
		worst = math.Max(worst, math.Abs(x.Get(i)-float64(i)/float64(n-1)))
	}
	fmt.Printf("\nafter %d sweeps: max deviation from linear profile = %.4f\n", sweeps, worst)
	// Jacobi needs O(n²) sweeps to propagate the boundary values across
	// the domain; only assert convergence when the run was long enough.
	if int64(sweeps) >= n*n {
		if worst > 0.05 {
			log.Fatal("solver failed to converge")
		}
		fmt.Println("verified: distributed Jacobi tracks the sequential solver and converges")
	} else {
		fmt.Printf("(%d sweeps < n² = %d: convergence not asserted, per-sweep verification still exact)\n",
			sweeps, n*n)
	}

	// Every sweep issues the same three array assignments; the runtime
	// plans them once and then serves sweeps 2..N from the caches. The
	// telemetry registry carries every cache's counters (registered by
	// the runtime packages) plus the machine's traffic totals.
	fmt.Printf("\ntelemetry registry for this run:\n")
	if err := telemetry.Default().WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	if tracePath != "" {
		t := telemetry.StopTracing()
		f, err := os.Create(tracePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := t.WriteChromeTrace(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntrace: wrote %s (analyze with: go run ./cmd/hpfprof %s)\n", tracePath, tracePath)
	}
	if memPath != "" {
		ar := telemetry.StopAccessRecording()
		f, err := os.Create(memPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := ar.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		if d := ar.Dropped(); d > 0 {
			fmt.Printf("\nmemtrace: ring kept only the last window (%d records overwritten)\n", d)
		}
		fmt.Printf("\nmemtrace: wrote %s (analyze with: go run ./cmd/hpfmem %s)\n", memPath, memPath)
	}
}
