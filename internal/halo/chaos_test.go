package halo

import (
	"strings"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/hpf"
	"repro/internal/machine"
)

// Chaos tests: Exchange runs under seeded fault plans injected inside
// machine Send/Recv. Each neighbor pair exchanges one message per
// direction per tag, so delay, duplication and reorder must leave every
// ghost cell correct; dropped messages must become a watchdog abort
// naming the parked halo receive.

func TestExchangeSurvivesDelayDupReorder(t *testing.T) {
	layout := dist.MustNew(4, 8)
	const n = 320
	a := hpf.MustNewArray(layout, n)
	for i := int64(0); i < n; i++ {
		a.Set(i, float64(i)*1.5+1)
	}
	for _, seed := range []int64{7, 31} {
		m := machine.MustNew(4)
		m.SetFaults(&machine.FaultPlan{
			Seed: seed, Delay: 0.25, DelayBy: 300 * time.Microsecond,
			Dup: 0.25, Reorder: 0.25, CrashRank: -1,
		})
		h, err := Exchange(m, a, 3, pad)
		if err != nil {
			t.Fatal(err)
		}
		checkHalo(t, h, a, 3)
		if len(m.FaultEvents()) == 0 {
			t.Errorf("seed %d: no faults injected; exchange not exercised", seed)
		}
	}
}

func TestExchangeDropBecomesStructuredFailure(t *testing.T) {
	a := hpf.MustNewArray(dist.MustNew(4, 8), 320)
	m := machine.MustNew(4)
	m.SetQuiescence(15 * time.Millisecond)
	m.SetFaults(&machine.FaultPlan{Seed: 9, Drop: 1, CrashRank: -1})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected watchdog abort when halo messages are dropped")
		}
		msg := r.(string)
		if !strings.Contains(msg, "deadlock") || !strings.Contains(msg, "parked in") {
			t.Errorf("diagnostic %q should name the deadlock and a wait site", msg)
		}
	}()
	_, _ = Exchange(m, a, 2, pad)
	t.Fatal("Exchange with all messages dropped should not complete")
}
