package halo

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/hpf"
	"repro/internal/machine"
)

// BenchmarkExchange measures a width-1 halo exchange on a 64k-element
// array over 8 processors (the per-sweep cost of a distributed stencil).
func BenchmarkExchange(b *testing.B) {
	layout := dist.MustNew(8, 32)
	const n = 65536
	a := hpf.MustNewArray(layout, n)
	for i := int64(0); i < n; i++ {
		a.Set(i, float64(i))
	}
	m := machine.MustNew(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exchange(m, a, 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}
