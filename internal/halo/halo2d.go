package halo

import (
	"fmt"

	"repro/internal/hpf"
	"repro/internal/machine"
	"repro/internal/telemetry"
)

// Halo2D holds width-1 ghost borders for a block-scattered 2-D array:
// for every local tile (a k0×k1 block of the cyclic(k0)×cyclic(k1)
// distribution) the four edge strips of neighboring elements, enabling
// 5-point stencils to run on local data after one exchange — the 2-D
// form of the Fortran D overlap areas.
//
// Tiles are indexed by (row0, row1), the block-course coordinates per
// dimension. North/South strips hold the k1 elements above/below the
// tile; West/East strips the k0 elements beside it. Cells outside the
// array hold Pad.
//
// Each strip has exactly one owning neighbor: the k1 columns of a tile
// lie within a single dimension-1 block, so the row above the tile
// belongs entirely to the dimension-0 predecessor (with a course shift at
// the grid edge) — the exchange is four point-to-point messages per
// processor, the direct product of two 1-D exchanges.
type Halo2D struct {
	Pad          float64
	k0, k1       int64
	rows0, rows1 int64
	north, south [][]float64 // [rank][(row0*rows1+row1)*k1 + j]
	west, east   [][]float64 // [rank][(row0*rows1+row1)*k0 + i]
}

// Rows returns the number of tile courses per processor in each dimension.
func (h *Halo2D) Rows() (rows0, rows1 int64) { return h.rows0, h.rows1 }

// North returns the ghost value directly above local column j of tile
// (row0, row1) on the given flat rank.
func (h *Halo2D) North(rank, row0, row1, j int64) float64 {
	return h.north[rank][(row0*h.rows1+row1)*h.k1+j]
}

// South returns the ghost value directly below local column j of the tile.
func (h *Halo2D) South(rank, row0, row1, j int64) float64 {
	return h.south[rank][(row0*h.rows1+row1)*h.k1+j]
}

// West returns the ghost value directly left of local row i of the tile.
func (h *Halo2D) West(rank, row0, row1, i int64) float64 {
	return h.west[rank][(row0*h.rows1+row1)*h.k0+i]
}

// East returns the ghost value directly right of local row i of the tile.
func (h *Halo2D) East(rank, row0, row1, i int64) float64 {
	return h.east[rank][(row0*h.rows1+row1)*h.k0+i]
}

// Exchange2D fills width-1 ghost borders for the array with one SPMD
// neighbor exchange. Both global extents must be positive multiples of
// the respective dimension's row length (whole tiles only).
func Exchange2D(m *machine.Machine, a *hpf.Array2D, pad float64) (*Halo2D, error) {
	g := a.Grid()
	n0, n1 := a.Dims()
	l0, l1 := g.Dim(0), g.Dim(1)
	if n0 == 0 || n0%l0.RowLen() != 0 || n1 == 0 || n1%l1.RowLen() != 0 {
		return nil, fmt.Errorf("halo: extents %dx%d not positive multiples of row lengths %dx%d",
			n0, n1, l0.RowLen(), l1.RowLen())
	}
	if int64(m.NProcs()) < g.Procs() {
		return nil, fmt.Errorf("halo: machine has %d procs, need %d", m.NProcs(), g.Procs())
	}
	p0, p1 := l0.P(), l1.P()
	k0, k1 := l0.K(), l1.K()
	rows0, rows1 := n0/l0.RowLen(), n1/l1.RowLen()
	nprocs := g.Procs()
	h := &Halo2D{
		Pad: pad, k0: k0, k1: k1, rows0: rows0, rows1: rows1,
		north: make([][]float64, nprocs),
		south: make([][]float64, nprocs),
		west:  make([][]float64, nprocs),
		east:  make([][]float64, nprocs),
	}
	for r := int64(0); r < nprocs; r++ {
		h.north[r] = make([]float64, rows0*rows1*k1)
		h.south[r] = make([]float64, rows0*rows1*k1)
		h.west[r] = make([]float64, rows0*rows1*k0)
		h.east[r] = make([]float64, rows0*rows1*k0)
	}

	const (
		tagN = "halo2d.n" // carries last local rows, becomes receiver's north
		tagS = "halo2d.s" // first local rows -> receiver's south
		tagW = "halo2d.w" // last local cols -> receiver's west
		tagE = "halo2d.e" // first local cols -> receiver's east
	)
	rank := func(c0, c1 int64) int {
		return int(g.FlatRank([]int64{c0, c1}))
	}
	m.Run(func(proc *machine.Proc) {
		me := int64(proc.Rank())
		if me >= nprocs {
			return
		}
		if tr := telemetry.ActiveTracer(); tr != nil {
			defer tr.EndSpan(int32(me), "halo.exchange2d", tr.Now())
		}
		coords := g.Coords(me)
		c0, c1 := coords[0], coords[1]
		mem, _, width := a.LocalMem(me)
		at := func(li, lj int64) float64 { return mem[li*width+lj] }

		// Extract and send edge strips. Down-neighbor needs my LAST local
		// rows as its north ghosts; up-neighbor my FIRST rows as south;
		// right-neighbor my LAST columns as west; left-neighbor my FIRST
		// columns as east.
		lastRows := make([]float64, rows0*rows1*k1)
		firstRows := make([]float64, rows0*rows1*k1)
		lastCols := make([]float64, rows0*rows1*k0)
		firstCols := make([]float64, rows0*rows1*k0)
		for r0 := int64(0); r0 < rows0; r0++ {
			for r1 := int64(0); r1 < rows1; r1++ {
				b1 := (r0*rows1 + r1) * k1
				b0 := (r0*rows1 + r1) * k0
				for j := int64(0); j < k1; j++ {
					lastRows[b1+j] = at(r0*k0+k0-1, r1*k1+j)
					firstRows[b1+j] = at(r0*k0, r1*k1+j)
				}
				for i := int64(0); i < k0; i++ {
					lastCols[b0+i] = at(r0*k0+i, r1*k1+k1-1)
					firstCols[b0+i] = at(r0*k0+i, r1*k1)
				}
			}
		}
		proc.Send(rank((c0+1)%p0, c1), tagN, lastRows, nil)
		proc.Send(rank((c0-1+p0)%p0, c1), tagS, firstRows, nil)
		proc.Send(rank(c0, (c1+1)%p1), tagW, lastCols, nil)
		proc.Send(rank(c0, (c1-1+p1)%p1), tagE, firstCols, nil)

		// Receive and place, shifting courses at the grid edges exactly as
		// in the 1-D exchange: processor 0's north neighbor row lives one
		// course up on processor p0-1.
		fromN := proc.Recv(rank((c0-1+p0)%p0, c1), tagN).Data
		fromS := proc.Recv(rank((c0+1)%p0, c1), tagS).Data
		fromW := proc.Recv(rank(c0, (c1-1+p1)%p1), tagW).Data
		fromE := proc.Recv(rank(c0, (c1+1)%p1), tagE).Data
		for r0 := int64(0); r0 < rows0; r0++ {
			for r1 := int64(0); r1 < rows1; r1++ {
				b1 := (r0*rows1 + r1) * k1
				b0 := (r0*rows1 + r1) * k0
				// North: sender course shifts down by one when I'm the top
				// processor row.
				src0 := r0
				if c0 == 0 {
					src0 = r0 - 1
				}
				if src0 >= 0 {
					copy(h.north[me][b1:b1+k1], fromN[(src0*rows1+r1)*k1:])
				} else {
					fill(h.north[me][b1:b1+k1], pad)
				}
				src0 = r0
				if c0 == p0-1 {
					src0 = r0 + 1
				}
				if src0 < rows0 {
					copy(h.south[me][b1:b1+k1], fromS[(src0*rows1+r1)*k1:])
				} else {
					fill(h.south[me][b1:b1+k1], pad)
				}
				src1 := r1
				if c1 == 0 {
					src1 = r1 - 1
				}
				if src1 >= 0 {
					copy(h.west[me][b0:b0+k0], fromW[(r0*rows1+src1)*k0:])
				} else {
					fill(h.west[me][b0:b0+k0], pad)
				}
				src1 = r1
				if c1 == p1-1 {
					src1 = r1 + 1
				}
				if src1 < rows1 {
					copy(h.east[me][b0:b0+k0], fromE[(r0*rows1+src1)*k0:])
				} else {
					fill(h.east[me][b0:b0+k0], pad)
				}
			}
		}
	})
	return h, nil
}
