package halo

import (
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/hpf"
	"repro/internal/machine"
)

// checkHalo2D verifies every ghost cell against global indexing.
func checkHalo2D(t *testing.T, h *Halo2D, a *hpf.Array2D) {
	t.Helper()
	g := a.Grid()
	n0, n1 := a.Dims()
	l0, l1 := g.Dim(0), g.Dim(1)
	k0, k1 := l0.K(), l1.K()
	rows0, rows1 := h.Rows()
	get := func(i, j int64) float64 {
		if i < 0 || i >= n0 || j < 0 || j >= n1 {
			return h.Pad
		}
		return a.Get(i, j)
	}
	for rank := int64(0); rank < g.Procs(); rank++ {
		coords := g.Coords(rank)
		for r0 := int64(0); r0 < rows0; r0++ {
			top := r0*l0.RowLen() + coords[0]*k0
			for r1 := int64(0); r1 < rows1; r1++ {
				left := r1*l1.RowLen() + coords[1]*k1
				for j := int64(0); j < k1; j++ {
					if got, want := h.North(rank, r0, r1, j), get(top-1, left+j); got != want {
						t.Fatalf("North(rank=%d,%d,%d,%d) = %v, want %v", rank, r0, r1, j, got, want)
					}
					if got, want := h.South(rank, r0, r1, j), get(top+k0, left+j); got != want {
						t.Fatalf("South(rank=%d,%d,%d,%d) = %v, want %v", rank, r0, r1, j, got, want)
					}
				}
				for i := int64(0); i < k0; i++ {
					if got, want := h.West(rank, r0, r1, i), get(top+i, left-1); got != want {
						t.Fatalf("West(rank=%d,%d,%d,%d) = %v, want %v", rank, r0, r1, i, got, want)
					}
					if got, want := h.East(rank, r0, r1, i), get(top+i, left+k1); got != want {
						t.Fatalf("East(rank=%d,%d,%d,%d) = %v, want %v", rank, r0, r1, i, got, want)
					}
				}
			}
		}
	}
}

func TestExchange2DBasic(t *testing.T) {
	g := dist.MustNewGrid(dist.MustNew(2, 3), dist.MustNew(2, 2))
	a := hpf.MustNewArray2D(g, 12, 8) // 2 courses × 2 courses of tiles
	n0, n1 := a.Dims()
	for i := int64(0); i < n0; i++ {
		for j := int64(0); j < n1; j++ {
			a.Set(i, j, float64(i*100+j))
		}
	}
	m := machine.MustNew(int(g.Procs()))
	h, err := Exchange2D(m, a, -1)
	if err != nil {
		t.Fatal(err)
	}
	if r0, r1 := h.Rows(); r0 != 2 || r1 != 2 {
		t.Fatalf("Rows = %d,%d, want 2,2", r0, r1)
	}
	checkHalo2D(t, h, a)
}

func TestExchange2DRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 60; trial++ {
		p0, k0 := r.Int63n(3)+1, r.Int63n(4)+1
		p1, k1 := r.Int63n(3)+1, r.Int63n(4)+1
		g := dist.MustNewGrid(dist.MustNew(p0, k0), dist.MustNew(p1, k1))
		rows0, rows1 := r.Int63n(3)+1, r.Int63n(3)+1
		a := hpf.MustNewArray2D(g, rows0*p0*k0, rows1*p1*k1)
		n0, n1 := a.Dims()
		for i := int64(0); i < n0; i++ {
			for j := int64(0); j < n1; j++ {
				a.Set(i, j, r.NormFloat64())
			}
		}
		m := machine.MustNew(int(g.Procs()))
		h, err := Exchange2D(m, a, -7)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkHalo2D(t, h, a)
	}
}

func TestExchange2DSingleProcessor(t *testing.T) {
	g := dist.MustNewGrid(dist.MustNew(1, 3), dist.MustNew(1, 2))
	a := hpf.MustNewArray2D(g, 6, 4)
	for i := int64(0); i < 6; i++ {
		for j := int64(0); j < 4; j++ {
			a.Set(i, j, float64(i*10+j))
		}
	}
	m := machine.MustNew(1)
	h, err := Exchange2D(m, a, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkHalo2D(t, h, a)
}

func TestExchange2DValidation(t *testing.T) {
	g := dist.MustNewGrid(dist.MustNew(2, 2), dist.MustNew(2, 2))
	m := machine.MustNew(4)
	ragged := hpf.MustNewArray2D(g, 7, 8)
	if _, err := Exchange2D(m, ragged, 0); err == nil {
		t.Error("ragged extents should fail")
	}
	ok := hpf.MustNewArray2D(g, 8, 8)
	small := machine.MustNew(2)
	if _, err := Exchange2D(small, ok, 0); err == nil {
		t.Error("machine too small should fail")
	}
}

// TestExchange2DStencilUse: a 5-point stencil from local memory + halos
// must match global computation.
func TestExchange2DStencilUse(t *testing.T) {
	g := dist.MustNewGrid(dist.MustNew(2, 2), dist.MustNew(2, 3))
	a := hpf.MustNewArray2D(g, 8, 12)
	n0, n1 := a.Dims()
	for i := int64(0); i < n0; i++ {
		for j := int64(0); j < n1; j++ {
			a.Set(i, j, float64(i*i+j))
		}
	}
	m := machine.MustNew(int(g.Procs()))
	h, err := Exchange2D(m, a, 0)
	if err != nil {
		t.Fatal(err)
	}
	k0, k1 := g.Dim(0).K(), g.Dim(1).K()
	for gi := int64(1); gi < n0-1; gi++ {
		for gj := int64(1); gj < n1-1; gj++ {
			rank := g.FlatRank([]int64{g.Dim(0).Owner(gi), g.Dim(1).Owner(gj)})
			mem, _, width := a.LocalMem(rank)
			li, lj := g.Dim(0).Local(gi), g.Dim(1).Local(gj)
			r0, r1 := li/k0, lj/k1
			oi, oj := li%k0, lj%k1
			var up, down, left, right float64
			if oi > 0 {
				up = mem[(li-1)*width+lj]
			} else {
				up = h.North(rank, r0, r1, oj)
			}
			if oi < k0-1 {
				down = mem[(li+1)*width+lj]
			} else {
				down = h.South(rank, r0, r1, oj)
			}
			if oj > 0 {
				left = mem[li*width+lj-1]
			} else {
				left = h.West(rank, r0, r1, oi)
			}
			if oj < k1-1 {
				right = mem[li*width+lj+1]
			} else {
				right = h.East(rank, r0, r1, oi)
			}
			want := a.Get(gi-1, gj) + a.Get(gi+1, gj) + a.Get(gi, gj-1) + a.Get(gi, gj+1)
			if got := up + down + left + right; got != want {
				t.Fatalf("stencil at (%d,%d): %v, want %v", gi, gj, got, want)
			}
		}
	}
}
