package halo

import (
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/hpf"
	"repro/internal/machine"
)

const pad = -999.0

// checkHalo verifies every ghost cell against the global array.
func checkHalo(t *testing.T, h *Halo, a *hpf.Array, w int64) {
	t.Helper()
	layout := a.Layout()
	p, k, pk := layout.P(), layout.K(), layout.RowLen()
	for m := int64(0); m < p; m++ {
		for row := int64(0); row < h.Rows(); row++ {
			start := row*pk + m*k
			end := start + k - 1
			for j := int64(1); j <= w; j++ {
				want := pad
				if g := start - j; g >= 0 {
					want = a.Get(g)
				}
				if got := h.Left(m, row, j); got != want {
					t.Fatalf("Left(m=%d,row=%d,j=%d) = %v, want %v", m, row, j, got, want)
				}
				want = pad
				if g := end + j; g < a.N() {
					want = a.Get(g)
				}
				if got := h.Right(m, row, j); got != want {
					t.Fatalf("Right(m=%d,row=%d,j=%d) = %v, want %v", m, row, j, got, want)
				}
			}
		}
	}
}

func TestExchangeBasic(t *testing.T) {
	layout := dist.MustNew(4, 8)
	a := hpf.MustNewArray(layout, 320)
	for i := int64(0); i < 320; i++ {
		a.Set(i, float64(i))
	}
	m := machine.MustNew(4)
	h, err := Exchange(m, a, 1, pad)
	if err != nil {
		t.Fatal(err)
	}
	if h.Rows() != 10 {
		t.Fatalf("Rows = %d, want 10", h.Rows())
	}
	checkHalo(t, h, a, 1)
}

func TestExchangeRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 120; trial++ {
		p := r.Int63n(6) + 1
		k := r.Int63n(8) + 1
		rows := r.Int63n(5) + 1
		n := rows * p * k
		a := hpf.MustNewArray(dist.MustNew(p, k), n)
		for i := int64(0); i < n; i++ {
			a.Set(i, float64(i)*1.5+1)
		}
		w := r.Int63n(k) + 1
		m := machine.MustNew(int(p))
		h, err := Exchange(m, a, w, pad)
		if err != nil {
			t.Fatalf("trial %d (p=%d k=%d rows=%d w=%d): %v", trial, p, k, rows, w, err)
		}
		checkHalo(t, h, a, w)
	}
}

func TestExchangeSingleProcessor(t *testing.T) {
	// p = 1: every neighbor is the processor itself.
	a := hpf.MustNewArray(dist.MustNew(1, 4), 16)
	for i := int64(0); i < 16; i++ {
		a.Set(i, float64(i))
	}
	m := machine.MustNew(1)
	h, err := Exchange(m, a, 2, pad)
	if err != nil {
		t.Fatal(err)
	}
	checkHalo(t, h, a, 2)
}

func TestExchangeValidation(t *testing.T) {
	layout := dist.MustNew(2, 4)
	a := hpf.MustNewArray(layout, 16)
	m := machine.MustNew(2)
	if _, err := Exchange(m, a, 0, 0); err == nil {
		t.Error("w=0 should fail")
	}
	if _, err := Exchange(m, a, 5, 0); err == nil {
		t.Error("w > k should fail")
	}
	ragged := hpf.MustNewArray(layout, 15)
	if _, err := Exchange(m, ragged, 1, 0); err == nil {
		t.Error("ragged array should fail")
	}
	small := machine.MustNew(1)
	if _, err := Exchange(small, a, 1, 0); err == nil {
		t.Error("machine too small should fail")
	}
}

func TestHaloAccessorPanics(t *testing.T) {
	a := hpf.MustNewArray(dist.MustNew(2, 4), 16)
	m := machine.MustNew(2)
	h, err := Exchange(m, a, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []func(){
		func() { h.Left(0, 0, 0) },
		func() { h.Left(0, 0, 3) },
		func() { h.Right(0, 0, 0) },
		func() { h.Right(0, 0, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range halo access should panic")
				}
			}()
			f()
		}()
	}
}

// TestHaloStencilUse demonstrates the point of the halo: a 3-point
// stencil computed purely from local memory + ghosts must match the
// global computation.
func TestHaloStencilUse(t *testing.T) {
	layout := dist.MustNew(4, 4)
	const n = 64
	a := hpf.MustNewArray(layout, n)
	for i := int64(0); i < n; i++ {
		a.Set(i, float64(i*i))
	}
	m := machine.MustNew(4)
	h, err := Exchange(m, a, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// For every interior element, left + right via local memory + halo.
	k := layout.K()
	for i := int64(1); i < n-1; i++ {
		mm := layout.Owner(i)
		mem := a.LocalMem(mm)
		row := layout.Row(i)
		off := layout.Offset(i)
		var left, right float64
		if off > 0 {
			left = mem[row*k+off-1]
		} else {
			left = h.Left(mm, row, 1)
		}
		if off < k-1 {
			right = mem[row*k+off+1]
		} else {
			right = h.Right(mm, row, 1)
		}
		want := a.Get(i-1) + a.Get(i+1)
		if got := left + right; got != want {
			t.Fatalf("stencil at %d: %v, want %v", i, got, want)
		}
	}
}
