// Package halo implements overlap areas ("ghost cells") for cyclic(k)
// distributed arrays — the Fortran D shift-communication pattern
// (Hiranandani, Kennedy & Tseng, the paper's reference [10]) that lets
// width-w stencils run entirely on local data after one neighbor
// exchange per sweep.
//
// Under cyclic(k), each processor's local memory is a sequence of
// k-cell blocks, and a stencil of radius w needs the w array elements on
// either side of EVERY block (not just of the whole local segment, as in
// a block distribution). Exchange fills per-block left/right ghost
// buffers from the neighboring processors in one SPMD step.
package halo

import (
	"fmt"

	"repro/internal/hpf"
	"repro/internal/machine"
	"repro/internal/telemetry"
)

// Halo holds the exchanged ghost cells of one array: for each processor
// and each of its local blocks (rows), the w cells left of the block and
// the w cells right of it, in increasing global-index order. Cells
// outside the array bounds (left of element 0, right of element n-1)
// hold Pad.
type Halo struct {
	W     int64
	Pad   float64
	rows  int64 // blocks per processor
	left  [][]float64
	right [][]float64
}

// Left returns the ghost value j cells left of processor m's block `row`
// start: j = 1 is the immediate neighbor, j = W the farthest.
func (h *Halo) Left(m, row, j int64) float64 {
	if j < 1 || j > h.W {
		panic(fmt.Sprintf("halo: left offset %d outside [1, %d]", j, h.W))
	}
	return h.left[m][row*h.W+(h.W-j)]
}

// Right returns the ghost value j cells right of processor m's block
// `row` end: j = 1 is the immediate neighbor.
func (h *Halo) Right(m, row, j int64) float64 {
	if j < 1 || j > h.W {
		panic(fmt.Sprintf("halo: right offset %d outside [1, %d]", j, h.W))
	}
	return h.right[m][row*h.W+(j-1)]
}

// Rows returns the number of blocks per processor.
func (h *Halo) Rows() int64 { return h.rows }

// Exchange performs the neighbor communication filling a width-w halo
// for the array. It requires w ≤ k (a stencil reaching past the adjacent
// block would need second-neighbor exchange) and n divisible by p·k
// (whole blocks only); out-of-array ghosts are filled with pad.
func Exchange(m *machine.Machine, a *hpf.Array, w int64, pad float64) (*Halo, error) {
	layout := a.Layout()
	p, k, pk := layout.P(), layout.K(), layout.RowLen()
	n := a.N()
	if w < 1 || w > k {
		return nil, fmt.Errorf("halo: width %d outside [1, k=%d]", w, k)
	}
	if n == 0 || n%pk != 0 {
		return nil, fmt.Errorf("halo: array length %d not a positive multiple of p*k=%d", n, pk)
	}
	if int64(m.NProcs()) < p {
		return nil, fmt.Errorf("halo: machine has %d procs, need %d", m.NProcs(), p)
	}
	rows := n / pk
	h := &Halo{
		W: w, Pad: pad, rows: rows,
		left:  make([][]float64, p),
		right: make([][]float64, p),
	}
	for q := int64(0); q < p; q++ {
		h.left[q] = make([]float64, rows*w)
		h.right[q] = make([]float64, rows*w)
	}

	const tagL, tagR = "halo.left", "halo.right"
	m.Run(func(proc *machine.Proc) {
		me := int64(proc.Rank())
		if me >= p {
			return
		}
		if tr := telemetry.ActiveTracer(); tr != nil {
			defer tr.EndSpan(int32(me), "halo.exchange", tr.Now())
		}
		mem := a.LocalMem(me)
		leftNbr := int((me - 1 + p) % p)
		rightNbr := int((me + 1) % p)

		// Send the last w cells of each block to the right neighbor (they
		// are its left halo) and the first w cells to the left neighbor.
		toRight := make([]float64, rows*w)
		toLeft := make([]float64, rows*w)
		for row := int64(0); row < rows; row++ {
			copy(toRight[row*w:], mem[row*k+k-w:row*k+k])
			copy(toLeft[row*w:], mem[row*k:row*k+w])
		}
		proc.Send(rightNbr, tagL, toRight, nil)
		proc.Send(leftNbr, tagR, toLeft, nil)

		fromLeft := proc.Recv(leftNbr, tagL).Data
		fromRight := proc.Recv(rightNbr, tagR).Data

		// The left neighbor of processor 0's block in row r is the END of
		// processor p-1's block in row r-1; the neighbor's payload is
		// indexed by ITS row. Same shift on the right edge for proc p-1.
		for row := int64(0); row < rows; row++ {
			// Left halo of (me, row).
			srcRow := row
			valid := true
			if me == 0 {
				srcRow = row - 1
				valid = srcRow >= 0
			}
			if valid {
				copy(h.left[me][row*w:(row+1)*w], fromLeft[srcRow*w:(srcRow+1)*w])
			} else {
				fill(h.left[me][row*w:(row+1)*w], pad)
			}
			// Right halo of (me, row).
			srcRow = row
			valid = true
			if me == p-1 {
				srcRow = row + 1
				valid = srcRow < rows
			}
			if valid {
				copy(h.right[me][row*w:(row+1)*w], fromRight[srcRow*w:(srcRow+1)*w])
			} else {
				fill(h.right[me][row*w:(row+1)*w], pad)
			}
		}
	})
	return h, nil
}

func fill(dst []float64, v float64) {
	for i := range dst {
		dst[i] = v
	}
}
