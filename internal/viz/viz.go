// Package viz renders ASCII versions of the paper's layout figures:
// the element grid of a cyclic(k) distribution with section elements,
// starting points and algorithm-visited points marked (Figures 1, 2, 4
// and 6).
//
// Each row of the output is one course of blocks (pk template cells),
// with processors separated by block boundaries. Cell annotations:
//
//	[n]  element of the regular section
//	(n)  the section's lower bound
//	{n}  point visited by the Figure 5 gap loop
//	 n   unmarked element
package viz

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/lattice"
	"repro/internal/section"
)

// Mark selects the decoration of one cell.
type Mark int

// Cell decorations, in increasing precedence: when several marks apply to
// one index, the highest wins.
const (
	None Mark = iota
	Section
	Visited
	Start
)

// Marks maps global indices to decorations.
type Marks map[int64]Mark

// add sets m[i] to mk unless a higher-precedence mark is present.
func (m Marks) add(i int64, mk Mark) {
	if m[i] < mk {
		m[i] = mk
	}
}

// MarkSection marks every element of sec within [0, n).
func (m Marks) MarkSection(sec section.Section, n int64) {
	for _, g := range sec.Slice() {
		if g >= 0 && g < n {
			m.add(g, Section)
		}
	}
}

// MarkStart marks the section lower bound.
func (m Marks) MarkStart(l int64) { m.add(l, Start) }

// MarkVisits marks every point of a Figure 5 trace.
func (m Marks) MarkVisits(trace []core.Visit, n int64) {
	for _, v := range trace {
		if v.Index >= 0 && v.Index < n {
			m.add(v.Index, Visited)
		}
	}
}

// Layout renders the first n cells of the layout, one block row per line,
// with the given marks. The header names the processors.
func Layout(l dist.Layout, n int64, marks Marks) string {
	var b strings.Builder
	pk := l.RowLen()
	width := len(fmt.Sprintf("%d", max64(n-1, 0)))
	cellW := width + 2 // room for the widest decoration

	// Header: one label per processor, centered over its block.
	b.WriteString(renderHeader(l, cellW))
	for base := int64(0); base < n; base += pk {
		for m := int64(0); m < l.P(); m++ {
			b.WriteString("|")
			for off := int64(0); off < l.K(); off++ {
				i := base + m*l.K() + off
				if i >= n {
					b.WriteString(strings.Repeat(" ", cellW+1))
					continue
				}
				b.WriteString(" ")
				b.WriteString(pad(decorate(i, marks[i], width), cellW))
			}
			b.WriteString(" ")
		}
		b.WriteString("|\n")
	}
	return b.String()
}

func renderHeader(l dist.Layout, cellW int) string {
	var b strings.Builder
	blockW := int(l.K())*(cellW+1) + 1 // matches the body's block width
	for m := int64(0); m < l.P(); m++ {
		label := fmt.Sprintf("proc %d", m)
		if len(label) > blockW {
			label = label[:blockW]
		}
		left := (blockW - len(label)) / 2
		b.WriteString(strings.Repeat(" ", left+1))
		b.WriteString(label)
		b.WriteString(strings.Repeat(" ", blockW-left-len(label)))
	}
	b.WriteString("\n")
	return b.String()
}

func decorate(i int64, m Mark, width int) string {
	num := fmt.Sprintf("%*d", width, i)
	switch m {
	case Start:
		return "(" + num + ")"
	case Section:
		return "[" + num + "]"
	case Visited:
		return "{" + num + "}"
	default:
		return " " + num + " "
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Figure1 renders the paper's Figure 1: the cyclic(8)×4 layout of a
// 320-element array with the section l=0, s=9 marked.
func Figure1() string {
	l := dist.MustNew(4, 8)
	marks := Marks{}
	marks.MarkSection(section.MustNew(0, 319, 9), 320)
	marks.MarkStart(0)
	return Layout(l, 320, marks)
}

// Figure6 renders the paper's Figure 6: the points visited by the gap
// loop for p=4, k=8, l=4, s=9, m=1, plus the section start.
func Figure6() (string, error) {
	pr := core.Problem{P: 4, K: 8, L: 4, S: 9, M: 1}
	_, trace, err := core.LatticeTrace(pr)
	if err != nil {
		return "", err
	}
	l := dist.MustNew(4, 8)
	const n = 320
	marks := Marks{}
	marks.MarkVisits(trace, n)
	marks.MarkStart(4)
	marks.add(13, Visited) // the start location itself is visited first
	return Layout(l, n, marks), nil
}

// AMTable renders a Sequence as the "AM = [...]" line the paper prints.
func AMTable(seq core.Sequence) string {
	if seq.Empty() {
		return "AM = [] (processor owns no section elements)"
	}
	parts := make([]string, len(seq.Gaps))
	for i, g := range seq.Gaps {
		parts[i] = fmt.Sprintf("%d", g)
	}
	return fmt.Sprintf("start=%d (local %d), AM = [%s]",
		seq.Start, seq.StartLocal, strings.Join(parts, ", "))
}

// BasisFigure renders the paper's Figures 2/4 view: the layout with the
// lattice points of section indices i·s (for one cycle of indices, lower
// bound 0) marked, and the R/L basis endpoints highlighted as Start. The
// marked points are exactly the elements the basis construction scans.
func BasisFigure(p, k, s, n int64) (string, error) {
	lat, err := lattice.New(p, k, s)
	if err != nil {
		return "", err
	}
	l := dist.MustNew(p, k)
	marks := Marks{}
	// One full cycle of section indices.
	cycle := lat.P / lat.D
	for i := int64(0); i <= cycle; i++ {
		if g := i * s; g >= 0 && g < n {
			marks.add(g, Section)
		}
	}
	if basis, ok := lat.RL(); ok {
		if g := basis.R.I * s; g >= 0 && g < n {
			marks.add(g, Start)
		}
		// L's index is negative; mark the corresponding in-cycle point
		// (L + one cycle), the "max" location of the Figure 5 scan.
		if g := (basis.L.I + cycle) * s; g >= 0 && g < n {
			marks.add(g, Start)
		}
	}
	return Layout(l, n, marks), nil
}
