package viz

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/section"
)

func TestLayoutBasicShape(t *testing.T) {
	l := dist.MustNew(2, 3)
	out := Layout(l, 12, Marks{})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + 2 full rows (12 cells / 6 per row).
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "proc 0") || !strings.Contains(lines[0], "proc 1") {
		t.Errorf("header missing processor labels: %q", lines[0])
	}
	if !strings.Contains(lines[1], "0") || !strings.Contains(lines[1], "5") {
		t.Errorf("first row missing cells: %q", lines[1])
	}
	if !strings.Contains(lines[2], "11") {
		t.Errorf("second row missing cell 11: %q", lines[2])
	}
}

func TestLayoutPartialLastRow(t *testing.T) {
	l := dist.MustNew(2, 3)
	out := Layout(l, 8, Marks{}) // 6 cells in row 0, 2 in row 1
	if !strings.Contains(out, "7") {
		t.Errorf("cell 7 missing:\n%s", out)
	}
	if strings.Contains(out, " 8 ") {
		t.Errorf("cell 8 should not exist:\n%s", out)
	}
}

func TestMarksPrecedence(t *testing.T) {
	m := Marks{}
	m.add(5, Section)
	m.add(5, Start)
	if m[5] != Start {
		t.Error("Start should override Section")
	}
	m.add(5, Section)
	if m[5] != Start {
		t.Error("lower mark must not downgrade")
	}
}

func TestMarkSectionAndRender(t *testing.T) {
	l := dist.MustNew(2, 4)
	marks := Marks{}
	marks.MarkSection(section.MustNew(1, 15, 3), 16)
	marks.MarkStart(1)
	out := Layout(l, 16, marks)
	if !strings.Contains(out, "( 1)") {
		t.Errorf("start not decorated:\n%s", out)
	}
	if !strings.Contains(out, "[ 4]") || !strings.Contains(out, "[13]") {
		t.Errorf("section cells not decorated:\n%s", out)
	}
	if strings.Contains(out, "[ 2]") {
		t.Errorf("non-section cell decorated:\n%s", out)
	}
}

func TestFigure1(t *testing.T) {
	out := Figure1()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 11 { // header + 10 rows of 32
		t.Fatalf("Figure1 has %d lines, want 11", len(lines))
	}
	// Index 108 appears (Figure 1's example element) and section elements
	// 0, 9, 18 are bracketed.
	if !strings.Contains(out, "(  0)") {
		t.Error("lower bound 0 not marked")
	}
	for _, cell := range []string{"[  9]", "[ 18]", "[108]", "[315]"} {
		if !strings.Contains(out, cell) {
			t.Errorf("section element %s not marked", cell)
		}
	}
	// 108 = 9*12 is in the section; 100 is not.
	if strings.Contains(out, "[100]") {
		t.Error("element 100 wrongly marked")
	}
}

func TestFigure6(t *testing.T) {
	out, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	// The walk-through visits 40, 76, 103, 139, ..., 301; the start 13 and
	// lower bound 4 are decorated.
	for _, cell := range []string{"{ 13}", "{ 40}", "{ 76}", "{103}", "{301}", "(  4)"} {
		if !strings.Contains(out, cell) {
			t.Errorf("expected %s in Figure 6:\n%s", cell, out)
		}
	}
	// Index 49 is examined but never visited in the paper's narrative; it
	// must not be marked (it exceeds processor 1's range on the first step).
	if strings.Contains(out, "{ 49}") {
		t.Error("49 should not be a visited point")
	}
}

func TestAMTable(t *testing.T) {
	seq, err := core.Lattice(core.Problem{P: 4, K: 8, L: 4, S: 9, M: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := AMTable(seq)
	want := "start=13 (local 5), AM = [3, 12, 15, 12, 3, 12, 3, 12]"
	if got != want {
		t.Errorf("AMTable = %q, want %q", got, want)
	}
	empty := core.Sequence{Start: -1}
	if !strings.Contains(AMTable(empty), "no section elements") {
		t.Error("empty AMTable message wrong")
	}
}

func TestBasisFigure(t *testing.T) {
	out, err := BasisFigure(4, 8, 9, 320)
	if err != nil {
		t.Fatal(err)
	}
	// R corresponds to index 36, the in-cycle L point to index 261
	// (Section 4's example).
	if !strings.Contains(out, "( 36)") {
		t.Errorf("R endpoint 36 not highlighted:\n%s", out)
	}
	if !strings.Contains(out, "(261)") {
		t.Errorf("L endpoint 261 not highlighted:\n%s", out)
	}
	// Ordinary cycle points are bracketed.
	if !strings.Contains(out, "[  9]") {
		t.Errorf("cycle point 9 not marked:\n%s", out)
	}
	if _, err := BasisFigure(0, 8, 9, 320); err == nil {
		t.Error("invalid parameters should fail")
	}
	// Degenerate basis: no Start marks, but cycle still drawn.
	out, err = BasisFigure(4, 1, 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "(") && strings.Contains(out, ")") && strings.Contains(out, "( 0)") {
		t.Errorf("degenerate case should not highlight a basis:\n%s", out)
	}
}
