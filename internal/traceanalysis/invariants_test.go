package traceanalysis

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/telemetry"
)

// Run a real 4-rank machine with a skewed workload and check that the
// analysis obeys its structural invariants against ground truth from
// the machine's own counters and the process-wide telemetry histograms.
func TestAnalyzeMachineInvariants(t *testing.T) {
	const p = 4
	telemetry.Default().Reset()
	tr := telemetry.StartTracing(p, 1<<15)
	defer telemetry.StopTracing()

	m := machine.MustNew(p)
	m.Run(func(proc *machine.Proc) {
		next := (proc.Rank() + 1) % p
		prev := (proc.Rank() + p - 1) % p
		for i := 0; i < 3; i++ {
			// Rank-skewed compute so one rank clearly straggles.
			time.Sleep(time.Duration(proc.Rank()+1) * 300 * time.Microsecond)
			proc.Send(next, "ring", []float64{float64(i)}, nil)
			proc.Recv(prev, "ring")
			proc.Barrier()
		}
		proc.AllReduce(float64(proc.Rank()), machine.Sum)
	})

	trace := FromTracer(tr)
	if trace.Dropped != 0 {
		t.Fatalf("trace dropped %d events; enlarge the ring", trace.Dropped)
	}
	a, err := Analyze(trace)
	if err != nil {
		t.Fatal(err)
	}

	// Critical path is bounded by the wall clock and dominates every
	// rank's busy time (it tiles the whole wall-clock interval).
	if a.CriticalPath.TotalNs > a.WallClockNs {
		t.Errorf("critical path %d exceeds wall clock %d", a.CriticalPath.TotalNs, a.WallClockNs)
	}
	var maxBusy int64
	for _, b := range a.Breakdown {
		if busy := b.BusyNs(); busy > maxBusy {
			maxBusy = busy
		}
	}
	if a.CriticalPath.TotalNs < maxBusy {
		t.Errorf("critical path %d below max per-rank busy %d", a.CriticalPath.TotalNs, maxBusy)
	}

	// Per-rank decomposition is exact, and idle is the wall-clock
	// remainder.
	var sumRecvWait, sumBarrierWait int64
	for _, b := range a.Breakdown {
		if got := b.ComputeNs + b.SendNs + b.RecvWaitNs + b.BarrierWaitNs; got != b.LifetimeNs {
			t.Errorf("rank %d: components sum to %d, want lifetime %d", b.Rank, got, b.LifetimeNs)
		}
		if b.LifetimeNs+b.IdleNs != a.WallClockNs {
			t.Errorf("rank %d: lifetime %d + idle %d != wall clock %d",
				b.Rank, b.LifetimeNs, b.IdleNs, a.WallClockNs)
		}
		sumRecvWait += b.RecvWaitNs
		sumBarrierWait += b.BarrierWaitNs
	}

	// Comm matrix totals match the machine's own per-rank counters
	// (collective-internal messages included on both sides).
	for r := 0; r < p; r++ {
		st := m.Stats(r)
		var rowSent int64
		for d := 0; d < p; d++ {
			rowSent += a.Comm.Messages[r][d]
		}
		if rowSent != st.MessagesSent {
			t.Errorf("rank %d: comm row sum %d, machine counted %d sends", r, rowSent, st.MessagesSent)
		}
		if a.Breakdown[r].Recvs != st.MessagesReceived {
			t.Errorf("rank %d: breakdown recvs %d, machine counted %d", r, a.Breakdown[r].Recvs, st.MessagesReceived)
		}
		if a.Breakdown[r].Sends != st.MessagesSent {
			t.Errorf("rank %d: breakdown sends %d, machine counted %d", r, a.Breakdown[r].Sends, st.MessagesSent)
		}
	}

	// Wait attribution cross-checks against the wait histograms: the
	// machine observes the identical nanosecond value it stamps on the
	// trace event, so with no drops the sums agree exactly.
	if hist := telemetry.Default().Histogram("machine.recv_wait_ns"); hist.Sum() != sumRecvWait {
		t.Errorf("breakdown recv wait %d, histogram sum %d", sumRecvWait, hist.Sum())
	}
	if hist := telemetry.Default().Histogram("machine.barrier_wait_ns"); hist.Sum() != sumBarrierWait {
		t.Errorf("breakdown barrier wait %d, histogram sum %d", sumBarrierWait, hist.Sum())
	}

	// Every message was delivered, so every recv has its send.
	if a.UnmatchedRecvs != 0 {
		t.Errorf("%d unmatched recvs in a faultless run", a.UnmatchedRecvs)
	}
}

// Both on-disk formats round-trip through Load into the same analysis.
func TestLoadFormats(t *testing.T) {
	tr := telemetry.NewTracer(4, 256)
	for _, e := range syntheticTrace().Events {
		tr.Record(e)
	}

	var v1, chrome bytes.Buffer
	if err := tr.WriteTraceV1(&v1); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}

	fromV1, err := Load(&v1)
	if err != nil {
		t.Fatalf("load trace/v1: %v", err)
	}
	fromChrome, err := Load(&chrome)
	if err != nil {
		t.Fatalf("load Chrome: %v", err)
	}
	for name, trace := range map[string]*Trace{"trace/v1": fromV1, "chrome": fromChrome} {
		if trace.Ranks != 4 || len(trace.Events) != len(syntheticTrace().Events) {
			t.Fatalf("%s: ranks %d events %d, want 4/%d", name, trace.Ranks, len(trace.Events), len(syntheticTrace().Events))
		}
		a, err := Analyze(trace)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.WallClockNs != 11010 || a.CriticalPath.TotalNs != 11010 {
			t.Errorf("%s: wall %d path %d, want 11010/11010", name, a.WallClockNs, a.CriticalPath.TotalNs)
		}
	}

	if _, err := Load(strings.NewReader(`{"schema":"bogus/v9"}`)); err == nil {
		t.Error("no error for unknown schema")
	}
	if _, err := Load(strings.NewReader(`not json`)); err == nil {
		t.Error("no error for non-JSON input")
	}
	if _, err := Load(strings.NewReader(`{"foo":1}`)); err == nil {
		t.Error("no error for unrecognized JSON")
	}
}
