package traceanalysis

import (
	"sort"

	"repro/internal/telemetry"
)

// criticalPath walks the happens-before graph backwards from the
// globally last-finishing event to the start of the run, at every point
// asking "what was this rank doing, and if it was blocked, who ended
// the wait?":
//
//   - inside a recv wait, the chain jumps to the matched send on the
//     peer rank — the message's arrival is what released this rank;
//   - inside a barrier wait, the chain jumps to the instance's last
//     arrival — the straggler released everyone;
//   - otherwise the chain stays on the rank, attributing the segment to
//     the covering event (send, span tail, collective bookkeeping) or
//     to untraced compute between events.
//
// The segments tile the wall-clock interval, so the path's total is
// bounded by the wall clock, and the per-operation aggregation ranks
// exactly the operations a straggler-chasing programmer should look at
// first.
func (g *graph) criticalPath() CriticalPath {
	cp := CriticalPath{}
	if g.rankEvents == 0 {
		return cp
	}
	// Start at the event with the latest end time.
	curRank, t := -1, int64(0)
	for r, idxs := range g.byRank {
		for _, i := range idxs {
			if end := g.events[i].Start + g.events[i].Dur; curRank < 0 || end > t {
				curRank, t = r, end
			}
		}
	}

	var steps []PathStep
	add := func(kind, name string, rank int, from, to int64) {
		if to <= from {
			return
		}
		steps = append(steps, PathStep{Kind: kind, Name: name, Rank: rank, StartNs: from, DurNs: to - from})
	}

	// Cap the walk defensively: every step either strictly lowers t or
	// terminates, but a malformed trace should degrade, not hang.
	maxSteps := 4*len(g.events) + 16
	for guard := 0; t > g.wallStart && guard < maxSteps; guard++ {
		e, idx, ok := g.coveringEvent(curRank, t)
		if !ok {
			// Nothing earlier on this rank: the chain dissolves into the
			// rank's startup.
			add("compute", "(startup)", curRank, g.wallStart, t)
			t = g.wallStart
			break
		}
		end := e.Start + e.Dur
		if end < t {
			// Gap between events: untraced local work.
			add("compute", "(compute)", curRank, end, t)
			t = end
			continue
		}
		switch e.Kind {
		case telemetry.KindRecv:
			if s, matched := g.sendOf[idx]; matched {
				se := g.events[s]
				sendEnd := se.Start + se.Dur
				if jumpT := minInt64(sendEnd, t); jumpT < t && jumpT > e.Start {
					// The wait [jumpT, t] existed because the sender delivered
					// at jumpT; continue the chain on the sender.
					add("recv-wait", e.Name, curRank, jumpT, t)
					curRank, t = int(se.Rank), jumpT
					continue
				}
			}
			// Message was already waiting in the mailbox (or the send was
			// lost from the ring): the recv itself is cheap bookkeeping.
			add("recv", e.Name, curRank, e.Start, t)
			t = e.Start
		case telemetry.KindBarrier:
			if join, ok := g.barrierCause[idx]; ok &&
				join.causeRank != curRank && join.causeStart > e.Start && join.causeStart < t {
				// This rank waited for the straggler; follow it.
				add("barrier-wait", e.Name, curRank, join.causeStart, t)
				curRank, t = join.causeRank, join.causeStart
				continue
			}
			// This rank WAS the last arrival (or the instance is unknown):
			// the barrier cost is its own bookkeeping.
			add("barrier", e.Name, curRank, e.Start, t)
			t = e.Start
		case telemetry.KindSend:
			add("send", e.Name, curRank, e.Start, t)
			t = e.Start
		case telemetry.KindReduce:
			add("collective", e.Name, curRank, e.Start, t)
			t = e.Start
		default: // KindSpan
			add("span", e.Name, curRank, e.Start, t)
			t = e.Start
		}
	}

	// The walk built the path backwards.
	for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
		steps[i], steps[j] = steps[j], steps[i]
	}
	cp.Steps = steps
	for _, s := range steps {
		cp.TotalNs += s.DurNs
	}
	cp.ByOp = aggregateSteps(steps)
	return cp
}

// coveringEvent returns the chronologically latest event on rank r that
// starts strictly before t — the event "responsible" for the timeline
// at t⁻. With nested events (a recv inside a collective span) the
// inner, later-starting event wins, which is exactly the causal leaf.
func (g *graph) coveringEvent(r int, t int64) (telemetry.Event, int, bool) {
	if r < 0 || r >= len(g.byRank) {
		return telemetry.Event{}, 0, false
	}
	idxs := g.byRank[r]
	// First index whose Start ≥ t; the predecessor starts before t.
	pos := sort.Search(len(idxs), func(i int) bool { return g.events[idxs[i]].Start >= t })
	if pos == 0 {
		return telemetry.Event{}, 0, false
	}
	i := idxs[pos-1]
	return g.events[i], i, true
}

// aggregateSteps ranks the path's segments by operation.
func aggregateSteps(steps []PathStep) []OpContribution {
	type key struct{ kind, name string }
	agg := map[key]*OpContribution{}
	for _, s := range steps {
		k := key{s.Kind, s.Name}
		oc := agg[k]
		if oc == nil {
			oc = &OpContribution{Kind: s.Kind, Name: s.Name}
			agg[k] = oc
		}
		oc.Count++
		oc.TotalNs += s.DurNs
	}
	out := make([]OpContribution, 0, len(agg))
	for _, oc := range agg {
		out = append(out, *oc)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].TotalNs != out[b].TotalNs {
			return out[a].TotalNs > out[b].TotalNs
		}
		if out[a].Kind != out[b].Kind {
			return out[a].Kind < out[b].Kind
		}
		return out[a].Name < out[b].Name
	})
	return out
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
