// Package traceanalysis turns the telemetry tracer's per-rank event
// rings into answers about a run: where the wall-clock time went, which
// rank is the straggler, and how the communication load is spread.
//
// The tracer records flat per-rank timelines; the machine stamps every
// message with a per-(src, dst, tag) FIFO sequence number, so each recv
// event names the exact send that produced it. From those edges — plus
// barrier-instance joins — this package stitches the timelines into a
// causal happens-before graph and computes:
//
//   - the critical path: the causal chain of operations bounding the
//     run's wall-clock time, with every blocking wait attributed to the
//     operation on the peer rank that ended it;
//   - a per-rank time breakdown (compute / send / recv-wait /
//     barrier-wait / idle) that sums exactly to each rank's lifetime;
//   - the communication matrix (messages and bytes per rank pair and
//     per tag);
//   - load-imbalance statistics over per-rank busy time.
//
// cmd/hpfprof is the CLI front end; it feeds this package from a
// trace/v1 or Chrome trace_event JSON file (see Load).
package traceanalysis

import (
	"fmt"
	"sort"

	"repro/internal/telemetry"
)

// Trace is the analyzer's input: a rank count, the overwrite count
// (nonzero means the rings truncated and analysis is skewed toward the
// end of the run), and the retained events.
type Trace struct {
	Ranks   int
	Dropped int64
	Events  []telemetry.Event
}

// FromTracer captures a live tracer's retained events as a Trace.
func FromTracer(t *telemetry.Tracer) *Trace {
	return &Trace{Ranks: t.Ranks(), Dropped: t.Dropped(), Events: t.Events()}
}

// RankBreakdown decomposes one rank's lifetime — the span from its
// first to its last trace event — into exclusive components:
// LifetimeNs = ComputeNs + SendNs + RecvWaitNs + BarrierWaitNs.
// Collective and span events overlap the message events they are built
// from, so they contribute counts here but their time is attributed
// through the underlying sends, recvs and barriers. IdleNs is the part
// of the machine-wide wall clock outside this rank's lifetime (late
// start or early finish).
type RankBreakdown struct {
	Rank          int   `json:"rank"`
	LifetimeNs    int64 `json:"lifetime_ns"`
	ComputeNs     int64 `json:"compute_ns"`
	SendNs        int64 `json:"send_ns"`
	RecvWaitNs    int64 `json:"recv_wait_ns"`
	BarrierWaitNs int64 `json:"barrier_wait_ns"`
	IdleNs        int64 `json:"idle_ns"`
	Sends         int64 `json:"sends"`
	Recvs         int64 `json:"recvs"`
	Barriers      int64 `json:"barriers"`
	Collectives   int64 `json:"collectives"`
	BytesSent     int64 `json:"bytes_sent"`
	BytesRecv     int64 `json:"bytes_recv"`
}

// BusyNs is the rank's non-waiting time: compute plus send work.
func (b RankBreakdown) BusyNs() int64 { return b.ComputeNs + b.SendNs }

// PathStep is one segment of the critical path, in chronological
// order. Kind is a coarse label ("compute", "send", "recv-wait",
// "barrier-wait", "barrier", "recv", "collective", "span"); Name is
// the event name (message tag, span name) or a placeholder for
// untraced compute.
type PathStep struct {
	Kind    string `json:"kind"`
	Name    string `json:"name"`
	Rank    int    `json:"rank"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
}

// OpContribution aggregates critical-path time (or host-span time) by
// operation.
type OpContribution struct {
	Kind    string `json:"kind,omitempty"`
	Name    string `json:"name"`
	Count   int64  `json:"count"`
	TotalNs int64  `json:"total_ns"`
}

// CriticalPath is the causal chain bounding the run's wall-clock time:
// contiguous segments from the start of the earliest rank event to the
// end of the latest, each attributed to the operation (or the peer
// rank's operation) that the chain was waiting on. TotalNs is the sum
// of segment durations; it never exceeds the wall clock.
type CriticalPath struct {
	TotalNs int64            `json:"total_ns"`
	Steps   []PathStep       `json:"steps"`
	ByOp    []OpContribution `json:"by_op"`
}

// CommMatrix is the communication pattern: Messages[src][dst] and
// Bytes[src][dst] count what src sent to dst (from send events — under
// fault injection the receive side may see fewer). Tags aggregates the
// same totals per message tag, sorted by bytes descending.
type CommMatrix struct {
	P        int       `json:"p"`
	Messages [][]int64 `json:"messages"`
	Bytes    [][]int64 `json:"bytes"`
	Tags     []TagStat `json:"tags"`
}

// TagStat is one tag's share of the communication volume.
type TagStat struct {
	Tag      string `json:"tag"`
	Messages int64  `json:"messages"`
	Bytes    int64  `json:"bytes"`
}

// TotalMessages sums the matrix.
func (c CommMatrix) TotalMessages() int64 {
	var n int64
	for _, row := range c.Messages {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// TotalBytes sums the byte matrix.
func (c CommMatrix) TotalBytes() int64 {
	var n int64
	for _, row := range c.Bytes {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// Imbalance summarizes the spread of per-rank busy time
// (compute + send). Percent is (max/mean − 1) · 100 — 0 % means
// perfectly balanced, 100 % means the busiest rank does twice the mean.
type Imbalance struct {
	MaxBusyNs  int64   `json:"max_busy_ns"`
	MeanBusyNs int64   `json:"mean_busy_ns"`
	MinBusyNs  int64   `json:"min_busy_ns"`
	MaxRank    int     `json:"max_rank"`
	Percent    float64 `json:"percent"`
}

// Analysis is the full report for one trace.
type Analysis struct {
	Ranks          int              `json:"ranks"`
	Events         int              `json:"events"`
	Dropped        int64            `json:"dropped"`
	WallStartNs    int64            `json:"wall_start_ns"`
	WallEndNs      int64            `json:"wall_end_ns"`
	WallClockNs    int64            `json:"wall_clock_ns"`
	Breakdown      []RankBreakdown  `json:"breakdown"`
	CriticalPath   CriticalPath     `json:"critical_path"`
	Comm           CommMatrix       `json:"comm"`
	Imbalance      Imbalance        `json:"imbalance"`
	HostSpans      []OpContribution `json:"host_spans,omitempty"`
	UnmatchedRecvs int64            `json:"unmatched_recvs"`
}

// Analyze stitches the trace into its happens-before graph and computes
// the full report. It fails if the trace contains no events on any
// processor rank.
func Analyze(tr *Trace) (*Analysis, error) {
	if tr.Ranks < 1 {
		return nil, fmt.Errorf("traceanalysis: trace has %d ranks", tr.Ranks)
	}
	g := buildGraph(tr)
	if g.wallEnd <= g.wallStart && g.rankEvents == 0 {
		return nil, fmt.Errorf("traceanalysis: trace has no events on any of the %d ranks", tr.Ranks)
	}
	a := &Analysis{
		Ranks:       tr.Ranks,
		Events:      len(tr.Events),
		Dropped:     tr.Dropped,
		WallStartNs: g.wallStart,
		WallEndNs:   g.wallEnd,
		WallClockNs: g.wallEnd - g.wallStart,
	}
	a.Breakdown = g.breakdown(a.WallClockNs)
	a.CriticalPath = g.criticalPath()
	a.Comm = g.commMatrix()
	a.Imbalance = imbalance(a.Breakdown)
	a.HostSpans = g.hostSpans()
	a.UnmatchedRecvs = g.unmatchedRecvs
	return a, nil
}

// imbalance computes the busy-time spread over ranks.
func imbalance(rows []RankBreakdown) Imbalance {
	im := Imbalance{MinBusyNs: -1}
	if len(rows) == 0 {
		im.MinBusyNs = 0
		return im
	}
	var sum int64
	for _, b := range rows {
		busy := b.BusyNs()
		sum += busy
		if busy > im.MaxBusyNs {
			im.MaxBusyNs = busy
			im.MaxRank = b.Rank
		}
		if im.MinBusyNs < 0 || busy < im.MinBusyNs {
			im.MinBusyNs = busy
		}
	}
	im.MeanBusyNs = sum / int64(len(rows))
	if im.MeanBusyNs > 0 {
		im.Percent = (float64(im.MaxBusyNs)/float64(im.MeanBusyNs) - 1) * 100
	}
	return im
}

// graph is the stitched happens-before structure shared by the
// analyses: per-rank chronological event lists over the flat event
// slice, the send that ended each recv's wait, and each barrier
// instance's last arrival.
type graph struct {
	tr     *Trace
	events []telemetry.Event
	byRank [][]int // global indices, per rank, sorted by Start

	sendOf         map[int]int         // recv index → matched send index
	barrierCause   map[int]barrierJoin // barrier index → last arrival of its instance
	hostIdx        []int
	rankEvents     int
	unmatchedRecvs int64
	wallStart      int64 // min Start over rank events
	wallEnd        int64 // max end over rank events
}

// barrierJoin names the arrival that released one barrier instance.
type barrierJoin struct {
	causeRank  int
	causeStart int64
}

func buildGraph(tr *Trace) *graph {
	g := &graph{
		tr:           tr,
		events:       tr.Events,
		byRank:       make([][]int, tr.Ranks),
		sendOf:       make(map[int]int),
		barrierCause: make(map[int]barrierJoin),
		wallStart:    int64(1)<<62 - 1,
	}
	for i, e := range g.events {
		if e.Rank >= 0 && int(e.Rank) < tr.Ranks {
			r := int(e.Rank)
			g.byRank[r] = append(g.byRank[r], i)
			g.rankEvents++
			if e.Start < g.wallStart {
				g.wallStart = e.Start
			}
			if end := e.Start + e.Dur; end > g.wallEnd {
				g.wallEnd = end
			}
		} else {
			g.hostIdx = append(g.hostIdx, i)
		}
	}
	if g.rankEvents == 0 {
		g.wallStart, g.wallEnd = 0, 0
		return g
	}
	for r := range g.byRank {
		idx := g.byRank[r]
		sort.SliceStable(idx, func(a, b int) bool { return g.events[idx[a]].Start < g.events[idx[b]].Start })
	}
	// Message edges: recv → the send that produced the message.
	for _, pr := range telemetry.MatchMessages(g.events) {
		g.sendOf[pr.Recv] = pr.Send
	}
	for i, e := range g.events {
		if e.Kind == telemetry.KindRecv && e.Rank >= 0 && int(e.Rank) < tr.Ranks {
			if _, ok := g.sendOf[i]; !ok {
				g.unmatchedRecvs++
			}
		}
	}
	g.joinBarriers()
	return g
}

// joinBarriers aligns each rank's barrier events into machine-wide
// instances and records the last arrival of each instance. Ranks are
// aligned from the most recent barrier backwards: ring overwrite drops
// the oldest events, so the tails of the per-rank barrier sequences
// correspond even when their lengths differ.
func (g *graph) joinBarriers() {
	perRank := make([][]int, g.tr.Ranks)
	minCount := -1
	for r, idxs := range g.byRank {
		for _, i := range idxs {
			if g.events[i].Kind == telemetry.KindBarrier {
				perRank[r] = append(perRank[r], i)
			}
		}
		if minCount < 0 || len(perRank[r]) < minCount {
			minCount = len(perRank[r])
		}
	}
	if minCount <= 0 {
		return
	}
	for inst := 1; inst <= minCount; inst++ {
		// The inst-th barrier from the end on every rank.
		join := barrierJoin{causeRank: -1}
		for r := range perRank {
			i := perRank[r][len(perRank[r])-inst]
			if e := g.events[i]; join.causeRank < 0 || e.Start > join.causeStart {
				join.causeRank, join.causeStart = r, e.Start
			}
		}
		for r := range perRank {
			g.barrierCause[perRank[r][len(perRank[r])-inst]] = join
		}
	}
}

// breakdown computes the per-rank decomposition.
func (g *graph) breakdown(wallClock int64) []RankBreakdown {
	rows := make([]RankBreakdown, g.tr.Ranks)
	for r := range rows {
		b := &rows[r]
		b.Rank = r
		idxs := g.byRank[r]
		if len(idxs) == 0 {
			b.IdleNs = wallClock
			continue
		}
		first, last := int64(1)<<62-1, int64(0)
		for _, i := range idxs {
			e := g.events[i]
			if e.Start < first {
				first = e.Start
			}
			if end := e.Start + e.Dur; end > last {
				last = end
			}
			switch e.Kind {
			case telemetry.KindSend:
				b.Sends++
				b.SendNs += e.Dur
				b.BytesSent += e.Bytes
			case telemetry.KindRecv:
				b.Recvs++
				b.RecvWaitNs += e.Dur
				b.BytesRecv += e.Bytes
			case telemetry.KindBarrier:
				b.Barriers++
				b.BarrierWaitNs += e.Dur
			case telemetry.KindReduce:
				b.Collectives++
			}
		}
		b.LifetimeNs = last - first
		b.ComputeNs = b.LifetimeNs - b.SendNs - b.RecvWaitNs - b.BarrierWaitNs
		if b.ComputeNs < 0 {
			// Overlapping waits can only come from a malformed trace; keep
			// the decomposition additive by absorbing the excess.
			b.RecvWaitNs += b.ComputeNs
			b.ComputeNs = 0
			if b.RecvWaitNs < 0 {
				b.BarrierWaitNs += b.RecvWaitNs
				b.RecvWaitNs = 0
			}
		}
		b.IdleNs = wallClock - b.LifetimeNs
	}
	return rows
}

// commMatrix tallies the send events into the rank-pair and tag
// matrices.
func (g *graph) commMatrix() CommMatrix {
	p := g.tr.Ranks
	c := CommMatrix{P: p, Messages: make([][]int64, p), Bytes: make([][]int64, p)}
	for i := range c.Messages {
		c.Messages[i] = make([]int64, p)
		c.Bytes[i] = make([]int64, p)
	}
	tags := map[string]*TagStat{}
	for _, e := range g.events {
		if e.Kind != telemetry.KindSend {
			continue
		}
		src, dst := int(e.Rank), int(e.Peer)
		if src < 0 || src >= p || dst < 0 || dst >= p {
			continue
		}
		c.Messages[src][dst]++
		c.Bytes[src][dst] += e.Bytes
		ts := tags[e.Name]
		if ts == nil {
			ts = &TagStat{Tag: e.Name}
			tags[e.Name] = ts
		}
		ts.Messages++
		ts.Bytes += e.Bytes
	}
	for _, ts := range tags {
		c.Tags = append(c.Tags, *ts)
	}
	sort.Slice(c.Tags, func(a, b int) bool {
		if c.Tags[a].Bytes != c.Tags[b].Bytes {
			return c.Tags[a].Bytes > c.Tags[b].Bytes
		}
		if c.Tags[a].Messages != c.Tags[b].Messages {
			return c.Tags[a].Messages > c.Tags[b].Messages
		}
		return c.Tags[a].Tag < c.Tags[b].Tag
	})
	return c
}

// hostSpans aggregates the host timeline's spans by name, largest
// total first.
func (g *graph) hostSpans() []OpContribution {
	agg := map[string]*OpContribution{}
	for _, i := range g.hostIdx {
		e := g.events[i]
		if e.Kind != telemetry.KindSpan {
			continue
		}
		oc := agg[e.Name]
		if oc == nil {
			oc = &OpContribution{Kind: "span", Name: e.Name}
			agg[e.Name] = oc
		}
		oc.Count++
		oc.TotalNs += e.Dur
	}
	out := make([]OpContribution, 0, len(agg))
	for _, oc := range agg {
		out = append(out, *oc)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].TotalNs != out[b].TotalNs {
			return out[a].TotalNs > out[b].TotalNs
		}
		return out[a].Name < out[b].Name
	})
	return out
}
