package traceanalysis

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/telemetry"
)

// syntheticServeDoc is a hand-authored hpfd trace: request A compiles a
// cold key (admission 1 µs, build 28 µs with tables/select/encode
// children), request B coalesces onto A's build (wait 27.5 µs linked to
// the build span), and request C is a warm hit. Every number in the
// golden report is derivable from these by hand.
func syntheticServeDoc() *telemetry.TraceDoc {
	span := func(name string, trace, id, parent, link uint64, start, dur int64) telemetry.TraceEvent {
		e := telemetry.TraceEvent{
			Kind: "span", Name: name, Rank: telemetry.HostRank, Peer: -1,
			Start: start, Dur: dur,
			Trace: telemetry.SpanContext{TraceLo: trace}.TraceID(),
			Span:  telemetry.SpanIDString(id),
		}
		if parent != 0 {
			e.Parent = telemetry.SpanIDString(parent)
		}
		if link != 0 {
			e.Link = telemetry.SpanIDString(link)
		}
		return e
	}
	return &telemetry.TraceDoc{
		Schema:   telemetry.TraceSchema,
		Capacity: 64,
		Events: []telemetry.TraceEvent{
			// Request A: the builder.
			span("hpfd.admission", 0xa, 0x102, 0x101, 0, 100, 1000),
			span("hpfd.tables", 0xa, 0x104, 0x103, 0, 1200, 20000),
			span("hpfd.select", 0xa, 0x105, 0x103, 0, 21200, 6000),
			span("hpfd.encode", 0xa, 0x106, 0x103, 0, 27200, 1500),
			span("hpfd.build", 0xa, 0x103, 0x101, 0, 1100, 28000),
			span("hpfd.request", 0xa, 0x101, 0, 0, 0, 30000),
			// Request B: coalesced waiter, linked to A's build span.
			span("hpfd.admission", 0xb, 0x202, 0x201, 0, 550, 500),
			span("hpfd.wait", 0xb, 0x203, 0x201, 0x103, 1100, 27500),
			span("hpfd.request", 0xb, 0x201, 0, 0, 500, 29000),
			// Request C: a warm hit.
			span("hpfd.admission", 0xc, 0x302, 0x301, 0, 40100, 300),
			span("hpfd.request", 0xc, 0x301, 0, 0, 40000, 2000),
			// Non-request noise an hpfd process also records.
			{Kind: "span", Name: "machine.run", Rank: telemetry.HostRank, Peer: -1, Start: 0, Dur: 50000},
		},
	}
}

func TestAnalyzeServe(t *testing.T) {
	a, err := AnalyzeServe(syntheticServeDoc())
	if err != nil {
		t.Fatal(err)
	}
	if a.Requests != 3 || a.Builds != 1 || a.Waiters != 1 {
		t.Fatalf("requests/builds/waiters = %d/%d/%d, want 3/1/1", a.Requests, a.Builds, a.Waiters)
	}
	for _, want := range []ServePhase{
		{Name: "request", Count: 3, TotalNs: 61000, P50Ns: 29000, P99Ns: 30000, MaxNs: 30000},
		{Name: "admission", Count: 3, TotalNs: 1800, P50Ns: 500, P99Ns: 1000, MaxNs: 1000},
		{Name: "wait", Count: 1, TotalNs: 27500, P50Ns: 27500, P99Ns: 27500, MaxNs: 27500},
		{Name: "build", Count: 1, TotalNs: 28000, P50Ns: 28000, P99Ns: 28000, MaxNs: 28000},
		{Name: "tables", Count: 1, TotalNs: 20000, P50Ns: 20000, P99Ns: 20000, MaxNs: 20000},
		{Name: "select", Count: 1, TotalNs: 6000, P50Ns: 6000, P99Ns: 6000, MaxNs: 6000},
		{Name: "encode", Count: 1, TotalNs: 1500, P50Ns: 1500, P99Ns: 1500, MaxNs: 1500},
		// A: 30000−29000=1000, B: 29000−28000=1000, C: 2000−300=1700.
		{Name: "unattributed", Count: 3, TotalNs: 3700, P50Ns: 1000, P99Ns: 1700, MaxNs: 1700},
	} {
		if got := a.Phase(want.Name); got != want {
			t.Errorf("phase %s = %+v, want %+v", want.Name, got, want)
		}
	}
	if len(a.Flights) != 1 {
		t.Fatalf("flights = %+v, want 1", a.Flights)
	}
	f := a.Flights[0]
	if f.BuildSpan != "0000000000000103" || f.Waiters != 1 || f.TotalWaitNs != 27500 || f.BuildNs != 28000 {
		t.Errorf("flight = %+v", f)
	}
}

func TestAnalyzeServeErrors(t *testing.T) {
	doc := &telemetry.TraceDoc{Schema: telemetry.TraceSchema}
	if _, err := AnalyzeServe(doc); err == nil {
		t.Error("no error for a trace without request spans")
	}
	// An SPMD trace (spans but no hpfd.request) is also rejected.
	doc.Events = []telemetry.TraceEvent{
		{Kind: "span", Name: "machine.run", Rank: telemetry.HostRank, Peer: -1, Dur: 100},
	}
	if _, err := AnalyzeServe(doc); err == nil {
		t.Error("no error for an SPMD trace")
	}
}

func TestServeGoldenReport(t *testing.T) {
	a, err := AnalyzeServe(syntheticServeDoc())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "serve_report_golden.txt")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report drifted from golden (re-run with -update if intentional):\n--- got ---\n%s\n--- want ---\n%s",
			buf.Bytes(), want)
	}
}
