package traceanalysis

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/telemetry"
)

// Service-request analysis: hpfd records every request as a tree of
// spans (hpfd.request → hpfd.admission / hpfd.build / hpfd.wait, the
// build carrying hpfd.tables / hpfd.select / hpfd.encode children) plus
// cross-trace links from coalesced waiters to the winning build.
// AnalyzeServe reconstructs per-phase latency attribution and the
// coalescing tree from those spans — the "where did the 268 ms go"
// answer for a plan request, from a trace dump alone.

// servePhaseOrder fixes the report's row order: the request envelope
// first, then its direct phases, then the build's internal phases, then
// the remainder the spans do not explain.
var servePhaseOrder = []string{
	"request", "admission", "wait", "build", "tables", "select", "encode", "unattributed",
}

// spanPhase maps a span name onto its report row; unknown hpfd spans
// are ignored so future instrumentation does not break old analyzers.
var spanPhase = map[string]string{
	"hpfd.request":   "request",
	"hpfd.admission": "admission",
	"hpfd.wait":      "wait",
	"hpfd.build":     "build",
	"hpfd.tables":    "tables",
	"hpfd.select":    "select",
	"hpfd.encode":    "encode",
}

// ServePhase is the latency distribution of one request phase across
// the trace. Percentiles are exact (computed over every sample).
type ServePhase struct {
	Name    string `json:"name"`
	Count   int    `json:"count"`
	TotalNs int64  `json:"total_ns"`
	P50Ns   int64  `json:"p50_ns"`
	P99Ns   int64  `json:"p99_ns"`
	MaxNs   int64  `json:"max_ns"`
}

// ServeFlight is one coalesced compile: the winning build span and the
// waiters from other requests' traces that linked to it.
type ServeFlight struct {
	BuildSpan   string `json:"build_span"` // hex span ID
	Trace       string `json:"trace"`      // hex trace ID of the builder's request
	BuildNs     int64  `json:"build_ns"`
	Waiters     int    `json:"waiters"`
	TotalWaitNs int64  `json:"total_wait_ns"`
}

// ServeAnalysis is the full service-side request attribution.
type ServeAnalysis struct {
	Requests int `json:"requests"`
	Builds   int `json:"builds"`
	Waiters  int `json:"waiters"`
	// Dropped is carried from the trace document: nonzero means the
	// rings overwrote events and some requests may be partial.
	Dropped int64         `json:"dropped"`
	Phases  []ServePhase  `json:"phases"`
	Flights []ServeFlight `json:"flights"`
}

// Phase returns the named phase row, or a zero row when the trace had
// no samples for it.
func (a *ServeAnalysis) Phase(name string) ServePhase {
	for _, p := range a.Phases {
		if p.Name == name {
			return p
		}
	}
	return ServePhase{Name: name}
}

// AnalyzeServe builds the request attribution from a trace/v1 document
// dumped by hpfd. It errors when the trace carries no hpfd.request
// spans — the caller probably dumped an SPMD trace by mistake.
func AnalyzeServe(doc *telemetry.TraceDoc) (*ServeAnalysis, error) {
	events := doc.RuntimeEvents()
	samples := map[string][]int64{}
	var requests, builds []telemetry.Event
	waitersByLink := map[uint64][]telemetry.Event{}
	// childNs sums each request span's direct-child durations so the
	// remainder (mux, JSON write, handler overhead) is reportable.
	childNs := map[uint64]int64{}

	for _, e := range events {
		if e.Kind != telemetry.KindSpan || e.Span == 0 {
			continue
		}
		phase, ok := spanPhase[e.Name]
		if !ok {
			continue
		}
		samples[phase] = append(samples[phase], e.Dur)
		switch phase {
		case "request":
			requests = append(requests, e)
		case "build":
			builds = append(builds, e)
		case "wait":
			waitersByLink[e.Link] = append(waitersByLink[e.Link], e)
		}
		if phase == "admission" || phase == "build" || phase == "wait" {
			childNs[e.Parent] += e.Dur
		}
	}
	if len(requests) == 0 {
		return nil, fmt.Errorf("traceanalysis: no hpfd.request spans in the trace (is this an hpfd dump?)")
	}
	for _, r := range requests {
		rem := r.Dur - childNs[r.Span]
		if rem < 0 {
			rem = 0
		}
		samples["unattributed"] = append(samples["unattributed"], rem)
	}

	a := &ServeAnalysis{
		Requests: len(requests),
		Builds:   len(builds),
		Dropped:  doc.Dropped,
	}
	for _, ws := range waitersByLink {
		a.Waiters += len(ws)
	}
	for _, name := range servePhaseOrder {
		durs := samples[name]
		if len(durs) == 0 {
			continue
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		p := ServePhase{Name: name, Count: len(durs), MaxNs: durs[len(durs)-1]}
		for _, d := range durs {
			p.TotalNs += d
		}
		p.P50Ns = exactQuantile(durs, 0.50)
		p.P99Ns = exactQuantile(durs, 0.99)
		a.Phases = append(a.Phases, p)
	}
	sort.Slice(builds, func(i, j int) bool { return builds[i].Start < builds[j].Start })
	for _, b := range builds {
		f := ServeFlight{
			BuildSpan: telemetry.SpanIDString(b.Span),
			Trace:     telemetry.SpanContext{TraceHi: b.TraceHi, TraceLo: b.TraceLo}.TraceID(),
			BuildNs:   b.Dur,
			Waiters:   len(waitersByLink[b.Span]),
		}
		for _, w := range waitersByLink[b.Span] {
			f.TotalWaitNs += w.Dur
		}
		a.Flights = append(a.Flights, f)
	}
	return a, nil
}

// exactQuantile reads the q-quantile of sorted durations using the
// nearest-rank rule, matching the registry histograms' convention of
// "the smallest value covering at least q of the samples".
func exactQuantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// WriteText renders the attribution tables.
func (a *ServeAnalysis) WriteText(w io.Writer) error {
	var err error
	pr := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pr("hpfd request attribution: %d requests, %d builds, %d coalesced waiters\n",
		a.Requests, a.Builds, a.Waiters)
	if a.Dropped > 0 {
		pr("WARNING: rings overwrote %d events; some requests are partial\n", a.Dropped)
	}
	pr("\nphase         count        p50_ns        p99_ns        max_ns      total_ns\n")
	for _, p := range a.Phases {
		pr("%-12s %6d  %12d  %12d  %12d  %12d\n", p.Name, p.Count, p.P50Ns, p.P99Ns, p.MaxNs, p.TotalNs)
	}
	if len(a.Flights) > 0 {
		pr("\ncoalescing tree (%d flights)\n", len(a.Flights))
		pr("%-16s  %-32s  %12s  %7s  %13s\n", "build_span", "trace", "build_ns", "waiters", "total_wait_ns")
		for _, f := range a.Flights {
			pr("%-16s  %-32s  %12d  %7d  %13d\n", f.BuildSpan, f.Trace, f.BuildNs, f.Waiters, f.TotalWaitNs)
		}
	}
	return err
}
