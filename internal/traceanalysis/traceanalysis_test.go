package traceanalysis

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files")

// syntheticTrace is a hand-authored 4-rank run with fully deterministic
// timestamps: a ring halo exchange (each send completing just before
// its recv unblocks), a barrier where rank 2 straggles after a long
// compute phase, and a final result message 0→1. Every quantity in the
// golden report is derivable from these numbers by hand.
func syntheticTrace() *Trace {
	e := func(kind telemetry.Kind, name string, rank, peer int32, bytes, seq, start, dur int64) telemetry.Event {
		return telemetry.Event{Kind: kind, Name: name, Rank: rank, Peer: peer,
			Bytes: bytes, Seq: seq, Start: start, Dur: dur}
	}
	return &Trace{
		Ranks: 4,
		Events: []telemetry.Event{
			// Ring halo exchange 0→1→2→3→0. Each recv ends 10 ns after
			// its matched send completes (delivery + wake-up).
			e(telemetry.KindSend, "halo", 0, 1, 4096, 1, 0, 2000),
			e(telemetry.KindRecv, "halo", 1, 0, 4096, 1, 500, 1510),
			e(telemetry.KindSend, "halo", 1, 2, 4096, 1, 2010, 1000),
			e(telemetry.KindRecv, "halo", 2, 1, 4096, 1, 2500, 520),
			e(telemetry.KindSend, "halo", 2, 3, 4096, 1, 3020, 500),
			e(telemetry.KindRecv, "halo", 3, 2, 4096, 1, 3200, 330),
			e(telemetry.KindSend, "halo", 3, 0, 4096, 1, 3530, 470),
			e(telemetry.KindRecv, "halo", 0, 3, 4096, 1, 2100, 1910),
			// Barrier released at t=10000; rank 2 computes 3520→9900 and
			// arrives last, so everyone else's barrier wait is its fault.
			e(telemetry.KindBarrier, "barrier", 0, -1, 0, 0, 5000, 5000),
			e(telemetry.KindBarrier, "barrier", 1, -1, 0, 0, 6000, 4000),
			e(telemetry.KindBarrier, "barrier", 2, -1, 0, 0, 9900, 100),
			e(telemetry.KindBarrier, "barrier", 3, -1, 0, 0, 7000, 3000),
			// Final result message 0→1 sets the wall-clock end at 11010.
			e(telemetry.KindSend, "result", 0, 1, 8, 1, 10000, 1000),
			e(telemetry.KindRecv, "result", 1, 0, 8, 1, 10200, 810),
			// Host timeline.
			e(telemetry.KindSpan, "machine.run", telemetry.HostRank, -1, 0, 0, 0, 11010),
		},
	}
}

func TestAnalyzeSynthetic(t *testing.T) {
	a, err := Analyze(syntheticTrace())
	if err != nil {
		t.Fatal(err)
	}
	if a.WallClockNs != 11010 {
		t.Errorf("wall clock = %d, want 11010", a.WallClockNs)
	}
	// The walk tiles the whole wall-clock interval on this trace.
	if a.CriticalPath.TotalNs != a.WallClockNs {
		t.Errorf("critical path = %d, want full wall clock %d", a.CriticalPath.TotalNs, a.WallClockNs)
	}
	// The dominant contributor is rank 2's untraced compute phase
	// (3520→9900), reached via the barrier-wait jump.
	if len(a.CriticalPath.ByOp) == 0 || a.CriticalPath.ByOp[0].Name != "(compute)" ||
		a.CriticalPath.ByOp[0].TotalNs != 6380 {
		t.Errorf("top path op = %+v, want (compute) 6380", a.CriticalPath.ByOp)
	}
	wantSteps := []struct {
		kind string
		rank int
		dur  int64
	}{
		{"send", 0, 2000},    // halo 0→1
		{"recv-wait", 1, 10}, // rank 1 released by it
		{"send", 1, 1000},    // halo 1→2
		{"recv-wait", 2, 10}, // rank 2 released by it
		{"send", 2, 500},     // halo 2→3
		{"compute", 2, 6380}, // the straggler's compute phase
		{"barrier-wait", 0, 100},
		{"send", 0, 1000},    // result 0→1
		{"recv-wait", 1, 10}, // rank 1 released by it
	}
	if len(a.CriticalPath.Steps) != len(wantSteps) {
		t.Fatalf("path has %d steps, want %d: %+v", len(a.CriticalPath.Steps), len(wantSteps), a.CriticalPath.Steps)
	}
	for i, w := range wantSteps {
		s := a.CriticalPath.Steps[i]
		if s.Kind != w.kind || s.Rank != w.rank || s.DurNs != w.dur {
			t.Errorf("step %d = %+v, want %s rank %d dur %d", i, s, w.kind, w.rank, w.dur)
		}
	}
	// Rank 2 is the busiest: 6380 compute + 500 send.
	if a.Imbalance.MaxRank != 2 || a.Imbalance.MaxBusyNs != 6880 {
		t.Errorf("imbalance = %+v, want max rank 2 busy 6880", a.Imbalance)
	}
	if got := a.Comm.TotalMessages(); got != 5 {
		t.Errorf("total messages = %d, want 5", got)
	}
	if a.Comm.Messages[0][1] != 2 || a.Comm.Bytes[0][1] != 4104 {
		t.Errorf("comm[0][1] = %d msgs %d bytes, want 2/4104",
			a.Comm.Messages[0][1], a.Comm.Bytes[0][1])
	}
	if len(a.HostSpans) != 1 || a.HostSpans[0].Name != "machine.run" {
		t.Errorf("host spans = %+v", a.HostSpans)
	}
	if a.UnmatchedRecvs != 0 {
		t.Errorf("unmatched recvs = %d", a.UnmatchedRecvs)
	}
}

func TestGoldenReport(t *testing.T) {
	a, err := Analyze(syntheticTrace())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.WriteText(&buf, 10); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report_golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report drifted from golden (re-run with -update if intentional):\n--- got ---\n%s\n--- want ---\n%s",
			buf.Bytes(), want)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(&Trace{Ranks: 0}); err == nil {
		t.Error("no error for 0 ranks")
	}
	if _, err := Analyze(&Trace{Ranks: 2}); err == nil {
		t.Error("no error for empty trace")
	}
	// Host-only events still leave nothing to analyze.
	hostOnly := &Trace{Ranks: 2, Events: []telemetry.Event{
		{Kind: telemetry.KindSpan, Name: "s", Rank: telemetry.HostRank, Dur: 5},
	}}
	if _, err := Analyze(hostOnly); err == nil {
		t.Error("no error for host-only trace")
	}
}

// The breakdown invariant must survive malformed traces where waits
// overlap and exceed the rank lifetime.
func TestBreakdownClamps(t *testing.T) {
	tr := &Trace{Ranks: 1, Events: []telemetry.Event{
		{Kind: telemetry.KindRecv, Name: "a", Rank: 0, Peer: 0, Start: 0, Dur: 100},
		{Kind: telemetry.KindRecv, Name: "b", Rank: 0, Peer: 0, Start: 0, Dur: 100},
	}}
	a, err := Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	b := a.Breakdown[0]
	if got := b.ComputeNs + b.SendNs + b.RecvWaitNs + b.BarrierWaitNs; got != b.LifetimeNs {
		t.Errorf("components sum to %d, want lifetime %d", got, b.LifetimeNs)
	}
	if b.ComputeNs != 0 || b.RecvWaitNs != 100 {
		t.Errorf("clamped breakdown = %+v", b)
	}
}
