package traceanalysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/telemetry"
)

// Load reads a trace from either supported container and returns it
// ready for Analyze:
//
//   - trace/v1 (the tracer's self-describing export, also served by the
//     CLIs' /trace endpoint) — detected by its "schema" tag;
//   - Chrome trace_event JSON (the -trace flag's output for viewers) —
//     detected by its "traceEvents" key.
func Load(r io.Reader) (*Trace, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("traceanalysis: read trace: %w", err)
	}
	var sniff struct {
		Schema      string          `json:"schema"`
		TraceEvents json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &sniff); err != nil {
		return nil, fmt.Errorf("traceanalysis: trace is not JSON: %w", err)
	}
	switch {
	case sniff.Schema == telemetry.TraceSchema:
		doc, err := telemetry.ReadTraceV1(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		return &Trace{Ranks: doc.Ranks, Dropped: doc.Dropped, Events: doc.RuntimeEvents()}, nil
	case sniff.Schema != "":
		return nil, fmt.Errorf("traceanalysis: unsupported schema %q (want %q or Chrome trace_event JSON)",
			sniff.Schema, telemetry.TraceSchema)
	case len(sniff.TraceEvents) > 0:
		return loadChrome(data)
	}
	return nil, fmt.Errorf("traceanalysis: neither a %s document nor Chrome trace_event JSON", telemetry.TraceSchema)
}

// chromeDoc mirrors the fields of the tracer's Chrome export that carry
// analyzable information. Flow ("s"/"f") and metadata ("M") events are
// view-layer decoration and are skipped; the underlying send/recv
// events carry the same sequence numbers in args.
type chromeDoc struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Cat  string  `json:"cat"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		Tid  int     `json:"tid"`
		Args struct {
			Peer  *int32 `json:"peer"`
			Bytes int64  `json:"bytes"`
			Seq   int64  `json:"seq"`
		} `json:"args"`
	} `json:"traceEvents"`
	OtherData struct {
		Ranks   *int  `json:"ranks"`
		Dropped int64 `json:"dropped"`
	} `json:"otherData"`
}

// loadChrome reconstructs tracer events from the Chrome export.
// Timestamps are microseconds in the file; they are converted back to
// integer nanoseconds. The rank count comes from otherData; exports
// from before that block treat the largest tid as the host timeline.
func loadChrome(data []byte) (*Trace, error) {
	var doc chromeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("traceanalysis: parse Chrome trace: %w", err)
	}
	maxTid := 0
	for _, e := range doc.TraceEvents {
		if e.Tid > maxTid {
			maxTid = e.Tid
		}
	}
	ranks := maxTid // pre-otherData fallback: host is the highest tid
	if doc.OtherData.Ranks != nil {
		ranks = *doc.OtherData.Ranks
	}
	tr := &Trace{Ranks: ranks, Dropped: doc.OtherData.Dropped}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" && e.Ph != "i" {
			continue
		}
		kind, ok := telemetry.KindFromString(e.Cat)
		if !ok {
			continue
		}
		rank := int32(e.Tid)
		if e.Tid >= ranks {
			rank = telemetry.HostRank
		}
		peer := int32(-1)
		if e.Args.Peer != nil {
			peer = *e.Args.Peer
		}
		tr.Events = append(tr.Events, telemetry.Event{
			Kind:  kind,
			Name:  e.Name,
			Rank:  rank,
			Peer:  peer,
			Bytes: e.Args.Bytes,
			Seq:   e.Args.Seq,
			Start: int64(math.Round(e.Ts * 1e3)),
			Dur:   int64(math.Round(e.Dur * 1e3)),
		})
	}
	if len(tr.Events) == 0 {
		return nil, fmt.Errorf("traceanalysis: Chrome trace contains no events")
	}
	return tr, nil
}
