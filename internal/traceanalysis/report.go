package traceanalysis

import (
	"fmt"
	"io"
)

// WriteText renders the analysis as the human-readable hpfprof report.
// topN bounds the critical-path operation table and the tag table
// (≤ 0 means everything).
func (a *Analysis) WriteText(w io.Writer, topN int) error {
	p := &printer{w: w}

	p.f("hpfprof report: %d ranks, %d events, wall clock %s\n", a.Ranks, a.Events, ns(a.WallClockNs))
	if a.Dropped > 0 {
		p.f("\nWARNING: trace rings overwrote %d events — the analysis only\n", a.Dropped)
		p.f("covers the END of the run; re-trace with a larger capacity for\n")
		p.f("full coverage.\n")
	}
	if a.UnmatchedRecvs > 0 {
		p.f("note: %d recv events had no matching send in the trace\n", a.UnmatchedRecvs)
	}

	p.f("\nCritical path: %s (%.1f%% of wall clock, %d steps)\n",
		ns(a.CriticalPath.TotalNs), pct(a.CriticalPath.TotalNs, a.WallClockNs), len(a.CriticalPath.Steps))
	ops := a.CriticalPath.ByOp
	if topN > 0 && len(ops) > topN {
		ops = ops[:topN]
	}
	if len(ops) > 0 {
		p.f("  %-14s %-24s %10s %8s  %s\n", "KIND", "NAME", "TOTAL", "COUNT", "% OF PATH")
		for _, oc := range ops {
			p.f("  %-14s %-24s %10s %8d  %8.1f%%\n",
				oc.Kind, clip(oc.Name, 24), ns(oc.TotalNs), oc.Count, pct(oc.TotalNs, a.CriticalPath.TotalNs))
		}
		if rest := len(a.CriticalPath.ByOp) - len(ops); rest > 0 {
			p.f("  … %d more operations (-top 0 for all)\n", rest)
		}
	}

	p.f("\nPer-rank time breakdown:\n")
	p.f("  %4s %10s %10s %10s %10s %10s %10s %7s %7s\n",
		"RANK", "LIFETIME", "COMPUTE", "SEND", "RECVWAIT", "BARRWAIT", "IDLE", "SENDS", "RECVS")
	for _, b := range a.Breakdown {
		p.f("  %4d %10s %10s %10s %10s %10s %10s %7d %7d\n",
			b.Rank, ns(b.LifetimeNs), ns(b.ComputeNs), ns(b.SendNs),
			ns(b.RecvWaitNs), ns(b.BarrierWaitNs), ns(b.IdleNs), b.Sends, b.Recvs)
	}

	p.f("\nLoad imbalance: %.1f%% (busiest rank %d: %s busy; mean %s, min %s)\n",
		a.Imbalance.Percent, a.Imbalance.MaxRank,
		ns(a.Imbalance.MaxBusyNs), ns(a.Imbalance.MeanBusyNs), ns(a.Imbalance.MinBusyNs))

	p.f("\nCommunication matrix (%d messages, %s): messages src→dst\n",
		a.Comm.TotalMessages(), bytesHuman(a.Comm.TotalBytes()))
	p.f("  %6s", "src\\dst")
	for d := 0; d < a.Comm.P; d++ {
		p.f(" %8d", d)
	}
	p.f("\n")
	for s := 0; s < a.Comm.P; s++ {
		p.f("  %6d", s)
		for d := 0; d < a.Comm.P; d++ {
			p.f(" %8d", a.Comm.Messages[s][d])
		}
		p.f("\n")
	}
	tags := a.Comm.Tags
	if topN > 0 && len(tags) > topN {
		tags = tags[:topN]
	}
	if len(tags) > 0 {
		p.f("  by tag:\n")
		for _, ts := range tags {
			p.f("    %-24s %8d msgs %12s\n", clip(ts.Tag, 24), ts.Messages, bytesHuman(ts.Bytes))
		}
		if rest := len(a.Comm.Tags) - len(tags); rest > 0 {
			p.f("    … %d more tags\n", rest)
		}
	}

	if len(a.HostSpans) > 0 {
		p.f("\nHost spans:\n")
		for _, oc := range a.HostSpans {
			p.f("  %-24s %10s ×%d\n", clip(oc.Name, 24), ns(oc.TotalNs), oc.Count)
		}
	}
	return p.err
}

// printer accumulates the first write error so the report body can
// stay free of per-line error plumbing.
type printer struct {
	w   io.Writer
	err error
}

func (p *printer) f(format string, args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, args...)
	}
}

// ns renders a nanosecond quantity at µs resolution and above with a
// fixed short form, keeping report columns narrow.
func ns(v int64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.3fs", float64(v)/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fms", float64(v)/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(v)/1e3)
	default:
		return fmt.Sprintf("%dns", v)
	}
}

// bytesHuman renders a byte count with a binary-ish unit.
func bytesHuman(v int64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(v)/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(v)/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(v)/(1<<10))
	default:
		return fmt.Sprintf("%dB", v)
	}
}

func pct(part, whole int64) float64 {
	if whole <= 0 {
		return 0
	}
	return float64(part) / float64(whole) * 100
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
