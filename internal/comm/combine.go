package comm

import (
	"fmt"

	"repro/internal/hpf"
	"repro/internal/machine"
	"repro/internal/section"
	"repro/internal/telemetry"
)

// BinOp combines the destination's current value with an incoming value.
type BinOp func(old, incoming float64) float64

// Replace is the assignment operator (Execute's behaviour).
func Replace(_, incoming float64) float64 { return incoming }

// Add accumulates into the destination.
func Add(old, incoming float64) float64 { return old + incoming }

// ExecuteWith runs the planned transfer like Execute but combines each
// delivered value with the destination's current contents through op —
// the runtime primitive behind array statements like A(..) += B(..) and
// multi-operand expressions.
func (p *Plan) ExecuteWith(m *machine.Machine, dst, src *hpf.Array, op BinOp) error {
	nprocs := int64(m.NProcs())
	if nprocs < p.NDst || nprocs < p.NSrc {
		return fmt.Errorf("comm: machine has %d procs, plan needs %d dst / %d src",
			nprocs, p.NDst, p.NSrc)
	}
	const tag = "comm.combine"
	e := p.execFor(src.Layout(), dst.Layout())
	ar := telemetry.ActiveAccessRecorder()
	var packStep, combineStep uint32
	if ar != nil {
		packStep = ar.BeginStep("comm.pack")
		combineStep = ar.BeginStep("comm.combine")
	}
	m.Run(func(proc *machine.Proc) {
		tr := telemetry.ActiveTracer()
		var t0 int64
		if tr != nil {
			t0 = tr.Now()
		}
		me := int64(proc.Rank())
		if me < p.NSrc {
			mem := src.LocalMem(me)
			for r := int64(0); r < p.NDst; r++ {
				buf := machine.GetBuf(e.count(me, r))
				if ar != nil {
					buf = e.packTraced(buf, mem, me, r, ar, packStep)
				} else {
					buf = e.packInto(buf, mem, me, r)
				}
				proc.Send(int(r), tag, buf, nil)
			}
		}
		if me < p.NDst {
			mem := dst.LocalMem(me)
			for q := int64(0); q < p.NSrc; q++ {
				msg := proc.Recv(int(q), tag)
				if want := e.count(q, me); len(msg.Data) != want {
					panic(fmt.Sprintf("comm: received %d of %d values from proc %d",
						len(msg.Data), want, q))
				}
				if ar != nil {
					e.combineTraced(mem, msg.Data, q, me, op, ar, combineStep)
				} else {
					e.combineFrom(mem, msg.Data, q, me, op)
				}
				machine.PutBuf(msg.Data)
			}
		}
		if tr != nil {
			tr.EndSpan(int32(proc.Rank()), "comm.execute_with", t0)
		}
	})
	return nil
}

// Accumulate plans and executes dst(dstSec) op= src(srcSec), reusing a
// cached plan when the pattern recurs.
func Accumulate(m *machine.Machine, dst *hpf.Array, dstSec section.Section,
	src *hpf.Array, srcSec section.Section, op BinOp) error {
	plan, err := CachedPlan(dst.Layout(), dst.N(), dstSec, src.Layout(), src.N(), srcSec)
	if err != nil {
		return err
	}
	return plan.ExecuteWith(m, dst, src, op)
}

// Combine computes the elementwise expression
//
//	dst(dstSec) = combine(a(aSec), b(bSec))
//
// across arbitrary distributions: the a-operand is copied into the
// destination section first, then the b-operand is delivered and folded
// in with combine. dst must not alias a or b over overlapping sections
// (the copy would clobber operand values before they are read); use a
// temporary for such updates.
func Combine(m *machine.Machine, dst *hpf.Array, dstSec section.Section,
	a *hpf.Array, aSec section.Section,
	b *hpf.Array, bSec section.Section, combine BinOp) error {
	if err := Copy(m, dst, dstSec, a, aSec); err != nil {
		return err
	}
	return Accumulate(m, dst, dstSec, b, bSec, combine)
}
