// Package comm generates and executes the communication sets for array
// assignment statements A(l_a:u_a:s_a) = B(l_b:u_b:s_b) between arrays
// with different cyclic(k) distributions — the compilation problem that
// motivates the paper's address-generation work (Section 7; cf. Gupta et
// al. and Stichnoth et al.).
//
// Position t of the assignment pairs destination element dstSec(t) with
// source element srcSec(t). The positions a processor owns on either side
// form a union of at most k arithmetic progressions in t (one per block
// offset, with common difference pk/gcd(|s|, pk)); the set of positions
// processor q must send to processor r is the pairwise intersection of
// q's source progressions with r's destination progressions, each
// computed in closed form by the extended Euclidean algorithm (package
// section's Intersect). No per-element scanning is involved in planning.
package comm

import (
	"fmt"
	"sync/atomic"

	"repro/internal/dist"
	"repro/internal/hpf"
	"repro/internal/intmath"
	"repro/internal/machine"
	"repro/internal/section"
	"repro/internal/telemetry"
)

// Plan is the full communication schedule of one array assignment:
// Transfers[q][r] lists, as sections over the position index t, the
// elements processor q sends to processor r. Both sides traverse each
// list in order, so packing and unpacking agree without extra metadata.
type Plan struct {
	NDst, NSrc int64
	DstSec     section.Section
	SrcSec     section.Section
	// Transfers[q][r] = position sections moved from source proc q to
	// destination proc r.
	Transfers [][][]section.Section

	// exec caches the compiled pack/unpack local-address lists for the
	// layouts the plan was last executed against, so repeated executions
	// (the cached steady state) index straight into local memory instead
	// of re-deriving section elements and owner addresses per value.
	exec atomic.Pointer[planExec]
}

// planExec is a plan compiled against concrete layouts: for every
// (source q, destination r) pair, the source local addresses to pack
// (in transfer order) and the destination local addresses to unpack
// into (same order). Built once per (plan, layouts) and reused by every
// Execute/ExecuteWith.
type planExec struct {
	srcLayout, dstLayout dist.Layout
	pack                 [][][]int64 // [q][r] source local addresses
	unpack               [][][]int64 // [q][r] destination local addresses
}

// execFor returns the compiled address lists for the given layouts,
// building them on first use. Concurrent builders race benignly: both
// compute identical lists and the last store wins.
func (p *Plan) execFor(srcLayout, dstLayout dist.Layout) *planExec {
	if e := p.exec.Load(); e != nil && e.srcLayout == srcLayout && e.dstLayout == dstLayout {
		return e
	}
	e := &planExec{
		srcLayout: srcLayout,
		dstLayout: dstLayout,
		pack:      make([][][]int64, p.NSrc),
		unpack:    make([][][]int64, p.NSrc),
	}
	for q := int64(0); q < p.NSrc; q++ {
		e.pack[q] = make([][]int64, p.NDst)
		e.unpack[q] = make([][]int64, p.NDst)
		for r := int64(0); r < p.NDst; r++ {
			var pa, ua []int64
			for _, ts := range p.Transfers[q][r] {
				n := ts.Count()
				for j := int64(0); j < n; j++ {
					t := ts.Element(j)
					pa = append(pa, srcLayout.Local(p.SrcSec.Element(t)))
					ua = append(ua, dstLayout.Local(p.DstSec.Element(t)))
				}
			}
			e.pack[q][r] = pa
			e.unpack[q][r] = ua
		}
	}
	p.exec.Store(e)
	return e
}

// OwnedPositions returns the arithmetic progressions of positions t in
// [0, n) whose section element sec(t) = lo + t·stride is owned by
// processor m of the layout. At most k progressions, found by solving one
// congruence per block offset. This is the building block for every
// structured communication/intersection set in this package and in
// package coupled.
func OwnedPositions(l dist.Layout, sec section.Section, m, n int64) []section.Section {
	pk := l.RowLen()
	k := l.K()
	d := intmath.GCD(sec.Stride, pk)
	period := pk / d
	var out []section.Section
	for c := m * k; c < (m+1)*k; c++ {
		t0, ok := intmath.SolveCongruence(sec.Stride, c-sec.Lo, pk)
		if !ok || t0 >= n {
			continue
		}
		last := t0 + (n-1-t0)/period*period
		out = append(out, section.Section{Lo: t0, Hi: last, Stride: period})
	}
	return out
}

// NewPlan computes the communication schedule for dst(dstSec) = src(srcSec).
// The two sections must have equal element counts and lie within their
// arrays' bounds.
func NewPlan(dstLayout dist.Layout, dstN int64, dstSec section.Section,
	srcLayout dist.Layout, srcN int64, srcSec section.Section) (*Plan, error) {
	if tr := telemetry.ActiveTracer(); tr != nil {
		defer tr.EndSpan(telemetry.HostRank, "comm.plan", tr.Now())
	}
	n := dstSec.Count()
	if sn := srcSec.Count(); sn != n {
		return nil, fmt.Errorf("comm: section size mismatch: dst %v has %d elements, src %v has %d",
			dstSec, n, srcSec, sn)
	}
	if n > 0 {
		if err := checkBounds(dstSec, dstN); err != nil {
			return nil, fmt.Errorf("comm: destination %v", err)
		}
		if err := checkBounds(srcSec, srcN); err != nil {
			return nil, fmt.Errorf("comm: source %v", err)
		}
	}
	p := &Plan{
		NDst:   dstLayout.P(),
		NSrc:   srcLayout.P(),
		DstSec: dstSec,
		SrcSec: srcSec,
	}
	p.Transfers = make([][][]section.Section, p.NSrc)
	for q := range p.Transfers {
		p.Transfers[q] = make([][]section.Section, p.NDst)
	}
	if n == 0 {
		return p, nil
	}
	srcProgs := make([][]section.Section, p.NSrc)
	for q := int64(0); q < p.NSrc; q++ {
		srcProgs[q] = OwnedPositions(srcLayout, srcSec, q, n)
	}
	dstProgs := make([][]section.Section, p.NDst)
	for r := int64(0); r < p.NDst; r++ {
		dstProgs[r] = OwnedPositions(dstLayout, dstSec, r, n)
	}
	for q := int64(0); q < p.NSrc; q++ {
		for r := int64(0); r < p.NDst; r++ {
			for _, sp := range srcProgs[q] {
				for _, dp := range dstProgs[r] {
					if common, ok := section.Intersect(sp, dp); ok {
						p.Transfers[q][r] = append(p.Transfers[q][r], common)
					}
				}
			}
		}
	}
	return p, nil
}

func checkBounds(sec section.Section, n int64) error {
	asc, _ := sec.Ascending()
	if asc.Empty() {
		return nil
	}
	if asc.Lo < 0 || asc.Last() >= n {
		return fmt.Errorf("section %v outside array [0, %d)", sec, n)
	}
	return nil
}

// Volume returns the total number of elements moved from q to r.
func (p *Plan) Volume(q, r int64) int64 {
	var v int64
	for _, s := range p.Transfers[q][r] {
		v += s.Count()
	}
	return v
}

// TotalVolume returns the total number of elements moved, including
// processor-local copies.
func (p *Plan) TotalVolume() int64 {
	var v int64
	for q := int64(0); q < p.NSrc; q++ {
		for r := int64(0); r < p.NDst; r++ {
			v += p.Volume(q, r)
		}
	}
	return v
}

// Execute runs the planned assignment dst(dstSec) = src(srcSec) as an
// SPMD program on the machine: every processor packs its outgoing
// position sets from its local memory, exchanges messages, and unpacks
// into its local destination memory. The machine's processor count must
// cover both arrays' processor counts.
func (p *Plan) Execute(m *machine.Machine, dst, src *hpf.Array) error {
	nprocs := int64(m.NProcs())
	if nprocs < p.NDst || nprocs < p.NSrc {
		return fmt.Errorf("comm: machine has %d procs, plan needs %d dst / %d src",
			nprocs, p.NDst, p.NSrc)
	}
	const tag = "comm.copy"
	e := p.execFor(src.Layout(), dst.Layout())
	m.Run(func(proc *machine.Proc) {
		tr := telemetry.ActiveTracer()
		var t0 int64
		if tr != nil {
			t0 = tr.Now()
		}
		me := int64(proc.Rank())
		// Pack and send (or keep) every outgoing transfer. Buffers come
		// from the machine's pool; ownership transfers with the message
		// and the receiver recycles them after unpacking.
		if me < p.NSrc {
			mem := src.LocalMem(me)
			for r := int64(0); r < p.NDst; r++ {
				addrs := e.pack[me][r]
				buf := machine.GetBuf(len(addrs))
				for _, a := range addrs {
					buf = append(buf, mem[a])
				}
				// The processor-local portion also goes through the mailbox,
				// keeping the unpack path uniform.
				proc.Send(int(r), tag, buf, nil)
			}
		}
		// Receive and unpack.
		if me < p.NDst {
			mem := dst.LocalMem(me)
			for q := int64(0); q < p.NSrc; q++ {
				msg := proc.Recv(int(q), tag)
				addrs := e.unpack[q][me]
				if len(msg.Data) != len(addrs) {
					panic(fmt.Sprintf("comm: received %d of %d values from proc %d",
						len(msg.Data), len(addrs), q))
				}
				for i, a := range addrs {
					mem[a] = msg.Data[i]
				}
				machine.PutBuf(msg.Data)
			}
		}
		if tr != nil {
			tr.EndSpan(int32(proc.Rank()), "comm.execute", t0)
		}
	})
	return nil
}

// Copy plans and executes dst(dstSec) = src(srcSec) in one call,
// consulting the plan cache: a repeated (layouts, sections) pattern —
// the inner loop of an iterative solver — reuses the memoized schedule
// and its compiled pack/unpack addresses instead of replanning.
func Copy(m *machine.Machine, dst *hpf.Array, dstSec section.Section,
	src *hpf.Array, srcSec section.Section) error {
	plan, err := CachedPlan(dst.Layout(), dst.N(), dstSec, src.Layout(), src.N(), srcSec)
	if err != nil {
		return err
	}
	return plan.Execute(m, dst, src)
}
