// Package comm generates and executes the communication sets for array
// assignment statements A(l_a:u_a:s_a) = B(l_b:u_b:s_b) between arrays
// with different cyclic(k) distributions — the compilation problem that
// motivates the paper's address-generation work (Section 7; cf. Gupta et
// al. and Stichnoth et al.).
//
// Position t of the assignment pairs destination element dstSec(t) with
// source element srcSec(t). The positions a processor owns on either side
// form a union of at most k arithmetic progressions in t (one per block
// offset, with common difference pk/gcd(|s|, pk)); the set of positions
// processor q must send to processor r is the pairwise intersection of
// q's source progressions with r's destination progressions, each
// computed in closed form by the extended Euclidean algorithm (package
// section's Intersect). No per-element scanning is involved in planning.
package comm

import (
	"fmt"
	"sync/atomic"

	"repro/internal/dist"
	"repro/internal/hpf"
	"repro/internal/intmath"
	"repro/internal/machine"
	"repro/internal/section"
	"repro/internal/telemetry"
)

// Plan is the full communication schedule of one array assignment:
// Transfers[q][r] lists, as sections over the position index t, the
// elements processor q sends to processor r. Both sides traverse each
// list in order, so packing and unpacking agree without extra metadata.
type Plan struct {
	NDst, NSrc int64
	DstSec     section.Section
	SrcSec     section.Section
	// Transfers[q][r] = position sections moved from source proc q to
	// destination proc r.
	Transfers [][][]section.Section

	// exec caches the compiled pack/unpack local-address lists for the
	// layouts the plan was last executed against, so repeated executions
	// (the cached steady state) index straight into local memory instead
	// of re-deriving section elements and owner addresses per value.
	exec atomic.Pointer[planExec]
}

// planExec is a plan compiled against concrete layouts: for every
// (source q, destination r) pair, either a strided run (when both the
// pack and unpack address sequences are arithmetic progressions — the
// common case for regular sections, where no address list is stored at
// all) or explicit address lists in transfer order. The list-mode
// addresses live in two shared arenas — one allocation each for the
// whole plan instead of one per (q, r) pair — and the per-pair slices
// are views into them. Built once per (plan, layouts) and reused by
// every Execute/ExecuteWith; steady-state execution allocates nothing.
type planExec struct {
	srcLayout, dstLayout dist.Layout
	arenaP, arenaU       []int64     // backing stores for the list-mode slices
	pack                 [][][]int64 // [q][r] source local addresses (nil when strided)
	unpack               [][][]int64 // [q][r] destination local addresses
	runs                 [][]addrRun // [q][r] strided fast path
}

// addrRun is the compiled form of a (q, r) pair whose pack and unpack
// addresses both advance by a constant step: two base/step pairs replace
// 2n stored addresses. ok distinguishes "strided (possibly empty)" from
// "use the address lists".
type addrRun struct {
	packBase, packStep     int64
	unpackBase, unpackStep int64
	n                      int64
	ok                     bool
}

// Per-pair compilation outcome counters (pairs with traffic only) and
// compile count, visible in metric dumps next to the plan-cache stats.
var (
	telExecCompiles = telemetry.Default().Counter("comm.exec_compiles")
	telPairsStrided = telemetry.Default().Counter("comm.exec_pairs_strided")
	telPairsList    = telemetry.Default().Counter("comm.exec_pairs_list")
)

// detectRun reports whether the pack and unpack address sequences are
// both arithmetic progressions, and compiles them to an addrRun if so.
func detectRun(pa, ua []int64) (addrRun, bool) {
	run := addrRun{n: int64(len(pa)), ok: true}
	if len(pa) == 0 {
		return run, true
	}
	run.packBase, run.unpackBase = pa[0], ua[0]
	if len(pa) == 1 {
		return run, true
	}
	run.packStep, run.unpackStep = pa[1]-pa[0], ua[1]-ua[0]
	for i := 1; i < len(pa); i++ {
		if pa[i]-pa[i-1] != run.packStep || ua[i]-ua[i-1] != run.unpackStep {
			return addrRun{}, false
		}
	}
	return run, true
}

// execFor returns the compiled address lists for the given layouts,
// building them on first use. Concurrent builders race benignly: both
// compute identical lists and the last store wins.
func (p *Plan) execFor(srcLayout, dstLayout dist.Layout) *planExec {
	if e := p.exec.Load(); e != nil && e.srcLayout == srcLayout && e.dstLayout == dstLayout {
		return e
	}
	telExecCompiles.Inc()
	total := p.TotalVolume()
	e := &planExec{
		srcLayout: srcLayout,
		dstLayout: dstLayout,
		arenaP:    make([]int64, 0, total),
		arenaU:    make([]int64, 0, total),
		pack:      make([][][]int64, p.NSrc),
		unpack:    make([][][]int64, p.NSrc),
		runs:      make([][]addrRun, p.NSrc),
	}
	for q := int64(0); q < p.NSrc; q++ {
		e.pack[q] = make([][]int64, p.NDst)
		e.unpack[q] = make([][]int64, p.NDst)
		e.runs[q] = make([]addrRun, p.NDst)
		for r := int64(0); r < p.NDst; r++ {
			// Append this pair's addresses to the arenas; capacity is exact
			// (TotalVolume), so append never reallocates and earlier pairs'
			// views stay valid.
			mark := len(e.arenaP)
			for _, ts := range p.Transfers[q][r] {
				n := ts.Count()
				for j := int64(0); j < n; j++ {
					t := ts.Element(j)
					e.arenaP = append(e.arenaP, srcLayout.Local(p.SrcSec.Element(t)))
					e.arenaU = append(e.arenaU, dstLayout.Local(p.DstSec.Element(t)))
				}
			}
			pa, ua := e.arenaP[mark:], e.arenaU[mark:]
			if run, ok := detectRun(pa, ua); ok {
				// Strided pair: two base/step pairs carry everything; give
				// the arena space back for the next pair.
				e.runs[q][r] = run
				e.arenaP, e.arenaU = e.arenaP[:mark], e.arenaU[:mark]
				if run.n > 0 {
					telPairsStrided.Inc()
				}
				continue
			}
			e.pack[q][r], e.unpack[q][r] = pa, ua
			telPairsList.Inc()
		}
	}
	p.exec.Store(e)
	return e
}

// count returns the number of values the (q, r) pair moves.
func (e *planExec) count(q, r int64) int {
	if run := &e.runs[q][r]; run.ok {
		return int(run.n)
	}
	return len(e.pack[q][r])
}

// packInto appends the (q → r) source values to buf in transfer order.
// Allocation free when buf has capacity (Execute pre-sizes it through
// the machine's buffer pool).
func (e *planExec) packInto(buf []float64, mem []float64, q, r int64) []float64 {
	if run := &e.runs[q][r]; run.ok {
		a := run.packBase
		if run.packStep == 1 {
			return append(buf, mem[a:a+run.n]...)
		}
		for i := int64(0); i < run.n; i++ {
			buf = append(buf, mem[a])
			a += run.packStep
		}
		return buf
	}
	for _, a := range e.pack[q][r] {
		buf = append(buf, mem[a])
	}
	return buf
}

// unpackFrom writes the received (q → r) values into destination local
// memory in transfer order. len(data) must equal count(q, r).
func (e *planExec) unpackFrom(mem []float64, data []float64, q, r int64) {
	if run := &e.runs[q][r]; run.ok {
		a := run.unpackBase
		if run.unpackStep == 1 {
			copy(mem[a:a+run.n], data)
			return
		}
		for _, v := range data {
			mem[a] = v
			a += run.unpackStep
		}
		return
	}
	for i, a := range e.unpack[q][r] {
		mem[a] = data[i]
	}
}

// combineFrom is unpackFrom folding each delivered value into the
// destination through op (ExecuteWith's unpack path).
func (e *planExec) combineFrom(mem []float64, data []float64, q, r int64, op BinOp) {
	if run := &e.runs[q][r]; run.ok {
		a := run.unpackBase
		for _, v := range data {
			mem[a] = op(mem[a], v)
			a += run.unpackStep
		}
		return
	}
	for i, a := range e.unpack[q][r] {
		mem[a] = op(mem[a], data[i])
	}
}

// packTraced is packInto with every source-memory load recorded on
// rank q's access timeline.
func (e *planExec) packTraced(buf []float64, mem []float64, q, r int64,
	ar *telemetry.AccessRecorder, step uint32) []float64 {
	if run := &e.runs[q][r]; run.ok {
		a := run.packBase
		for i := int64(0); i < run.n; i++ {
			buf = append(buf, mem[a])
			ar.Record(int32(q), a, telemetry.AccessRead, step)
			a += run.packStep
		}
		return buf
	}
	for _, a := range e.pack[q][r] {
		buf = append(buf, mem[a])
		ar.Record(int32(q), a, telemetry.AccessRead, step)
	}
	return buf
}

// unpackTraced is unpackFrom with every destination store recorded on
// rank r's access timeline.
func (e *planExec) unpackTraced(mem []float64, data []float64, q, r int64,
	ar *telemetry.AccessRecorder, step uint32) {
	if run := &e.runs[q][r]; run.ok {
		a := run.unpackBase
		for _, v := range data {
			mem[a] = v
			ar.Record(int32(r), a, telemetry.AccessWrite, step)
			a += run.unpackStep
		}
		return
	}
	for i, a := range e.unpack[q][r] {
		mem[a] = data[i]
		ar.Record(int32(r), a, telemetry.AccessWrite, step)
	}
}

// combineTraced is combineFrom recording the read-modify-write each
// delivered value performs on the destination.
func (e *planExec) combineTraced(mem []float64, data []float64, q, r int64, op BinOp,
	ar *telemetry.AccessRecorder, step uint32) {
	if run := &e.runs[q][r]; run.ok {
		a := run.unpackBase
		for _, v := range data {
			old := mem[a]
			ar.Record(int32(r), a, telemetry.AccessRead, step)
			mem[a] = op(old, v)
			ar.Record(int32(r), a, telemetry.AccessWrite, step)
			a += run.unpackStep
		}
		return
	}
	for i, a := range e.unpack[q][r] {
		old := mem[a]
		ar.Record(int32(r), a, telemetry.AccessRead, step)
		mem[a] = op(old, data[i])
		ar.Record(int32(r), a, telemetry.AccessWrite, step)
	}
}

// OwnedPositions returns the arithmetic progressions of positions t in
// [0, n) whose section element sec(t) = lo + t·stride is owned by
// processor m of the layout. At most k progressions, found by solving one
// congruence per block offset. This is the building block for every
// structured communication/intersection set in this package and in
// package coupled.
func OwnedPositions(l dist.Layout, sec section.Section, m, n int64) []section.Section {
	pk := l.RowLen()
	k := l.K()
	d := intmath.GCD(sec.Stride, pk)
	period := pk / d
	var out []section.Section
	for c := m * k; c < (m+1)*k; c++ {
		t0, ok := intmath.SolveCongruence(sec.Stride, c-sec.Lo, pk)
		if !ok || t0 >= n {
			continue
		}
		last := t0 + (n-1-t0)/period*period
		out = append(out, section.Section{Lo: t0, Hi: last, Stride: period})
	}
	return out
}

// NewPlan computes the communication schedule for dst(dstSec) = src(srcSec).
// The two sections must have equal element counts and lie within their
// arrays' bounds.
func NewPlan(dstLayout dist.Layout, dstN int64, dstSec section.Section,
	srcLayout dist.Layout, srcN int64, srcSec section.Section) (*Plan, error) {
	if tr := telemetry.ActiveTracer(); tr != nil {
		defer tr.EndSpan(telemetry.HostRank, "comm.plan", tr.Now())
	}
	n := dstSec.Count()
	if sn := srcSec.Count(); sn != n {
		return nil, fmt.Errorf("comm: section size mismatch: dst %v has %d elements, src %v has %d",
			dstSec, n, srcSec, sn)
	}
	if n > 0 {
		if err := checkBounds(dstSec, dstN); err != nil {
			return nil, fmt.Errorf("comm: destination %v", err)
		}
		if err := checkBounds(srcSec, srcN); err != nil {
			return nil, fmt.Errorf("comm: source %v", err)
		}
	}
	p := &Plan{
		NDst:   dstLayout.P(),
		NSrc:   srcLayout.P(),
		DstSec: dstSec,
		SrcSec: srcSec,
	}
	p.Transfers = make([][][]section.Section, p.NSrc)
	for q := range p.Transfers {
		p.Transfers[q] = make([][]section.Section, p.NDst)
	}
	if n == 0 {
		return p, nil
	}
	srcProgs := make([][]section.Section, p.NSrc)
	for q := int64(0); q < p.NSrc; q++ {
		srcProgs[q] = OwnedPositions(srcLayout, srcSec, q, n)
	}
	dstProgs := make([][]section.Section, p.NDst)
	for r := int64(0); r < p.NDst; r++ {
		dstProgs[r] = OwnedPositions(dstLayout, dstSec, r, n)
	}
	for q := int64(0); q < p.NSrc; q++ {
		for r := int64(0); r < p.NDst; r++ {
			for _, sp := range srcProgs[q] {
				for _, dp := range dstProgs[r] {
					if common, ok := section.Intersect(sp, dp); ok {
						p.Transfers[q][r] = append(p.Transfers[q][r], common)
					}
				}
			}
		}
	}
	return p, nil
}

func checkBounds(sec section.Section, n int64) error {
	asc, _ := sec.Ascending()
	if asc.Empty() {
		return nil
	}
	if asc.Lo < 0 || asc.Last() >= n {
		return fmt.Errorf("section %v outside array [0, %d)", sec, n)
	}
	return nil
}

// Volume returns the total number of elements moved from q to r.
func (p *Plan) Volume(q, r int64) int64 {
	var v int64
	for _, s := range p.Transfers[q][r] {
		v += s.Count()
	}
	return v
}

// TotalVolume returns the total number of elements moved, including
// processor-local copies.
func (p *Plan) TotalVolume() int64 {
	var v int64
	for q := int64(0); q < p.NSrc; q++ {
		for r := int64(0); r < p.NDst; r++ {
			v += p.Volume(q, r)
		}
	}
	return v
}

// Execute runs the planned assignment dst(dstSec) = src(srcSec) as an
// SPMD program on the machine: every processor packs its outgoing
// position sets from its local memory, exchanges messages, and unpacks
// into its local destination memory. The machine's processor count must
// cover both arrays' processor counts.
func (p *Plan) Execute(m *machine.Machine, dst, src *hpf.Array) error {
	nprocs := int64(m.NProcs())
	if nprocs < p.NDst || nprocs < p.NSrc {
		return fmt.Errorf("comm: machine has %d procs, plan needs %d dst / %d src",
			nprocs, p.NDst, p.NSrc)
	}
	const tag = "comm.copy"
	e := p.execFor(src.Layout(), dst.Layout())
	// Access-trace steps are created once, on the host, before the SPMD
	// body; ranks record concurrently into their own rings.
	ar := telemetry.ActiveAccessRecorder()
	var packStep, unpackStep uint32
	if ar != nil {
		packStep = ar.BeginStep("comm.pack")
		unpackStep = ar.BeginStep("comm.unpack")
	}
	m.Run(func(proc *machine.Proc) {
		tr := telemetry.ActiveTracer()
		var t0 int64
		if tr != nil {
			t0 = tr.Now()
		}
		me := int64(proc.Rank())
		// Pack and send (or keep) every outgoing transfer. Buffers come
		// from the machine's pool; ownership transfers with the message
		// and the receiver recycles them after unpacking.
		if me < p.NSrc {
			mem := src.LocalMem(me)
			for r := int64(0); r < p.NDst; r++ {
				buf := machine.GetBuf(e.count(me, r))
				if ar != nil {
					buf = e.packTraced(buf, mem, me, r, ar, packStep)
				} else {
					buf = e.packInto(buf, mem, me, r)
				}
				// The processor-local portion also goes through the mailbox,
				// keeping the unpack path uniform.
				proc.Send(int(r), tag, buf, nil)
			}
		}
		// Receive and unpack.
		if me < p.NDst {
			mem := dst.LocalMem(me)
			for q := int64(0); q < p.NSrc; q++ {
				msg := proc.Recv(int(q), tag)
				if want := e.count(q, me); len(msg.Data) != want {
					panic(fmt.Sprintf("comm: received %d of %d values from proc %d",
						len(msg.Data), want, q))
				}
				if ar != nil {
					e.unpackTraced(mem, msg.Data, q, me, ar, unpackStep)
				} else {
					e.unpackFrom(mem, msg.Data, q, me)
				}
				machine.PutBuf(msg.Data)
			}
		}
		if tr != nil {
			tr.EndSpan(int32(proc.Rank()), "comm.execute", t0)
		}
	})
	return nil
}

// Copy plans and executes dst(dstSec) = src(srcSec) in one call,
// consulting the plan cache: a repeated (layouts, sections) pattern —
// the inner loop of an iterative solver — reuses the memoized schedule
// and its compiled pack/unpack addresses instead of replanning.
func Copy(m *machine.Machine, dst *hpf.Array, dstSec section.Section,
	src *hpf.Array, srcSec section.Section) error {
	plan, err := CachedPlan(dst.Layout(), dst.N(), dstSec, src.Layout(), src.N(), srcSec)
	if err != nil {
		return err
	}
	return plan.Execute(m, dst, src)
}
