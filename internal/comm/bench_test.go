package comm

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/hpf"
	"repro/internal/machine"
	"repro/internal/section"
)

// BenchmarkNewPlan measures closed-form communication-set planning: all
// (sender, receiver) transfer sets for a 100k-element strided copy
// between different cyclic(k) distributions, with no per-element work.
func BenchmarkNewPlan(b *testing.B) {
	dstL := dist.MustNew(32, 64)
	srcL := dist.MustNew(32, 16)
	n := int64(100_000)
	dstSec := section.Section{Lo: 0, Hi: 3*n - 3, Stride: 3}
	srcSec := section.Section{Lo: 5, Hi: 5 + 7*(n-1), Stride: 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := NewPlan(dstL, 3*n, dstSec, srcL, 8*n, srcSec)
		if err != nil {
			b.Fatal(err)
		}
		if plan.TotalVolume() != n {
			b.Fatalf("volume %d", plan.TotalVolume())
		}
	}
}

// BenchmarkCopyExecute measures the full plan + pack + exchange + unpack
// path on the simulated machine.
func BenchmarkCopyExecute(b *testing.B) {
	layout := dist.MustNew(8, 16)
	m := machine.MustNew(8)
	const n = 16384
	src := hpf.MustNewArray(layout, n)
	dst := hpf.MustNewArray(dist.MustNew(8, 4), n)
	for i := int64(0); i < n; i++ {
		src.Set(i, float64(i))
	}
	sec := section.Section{Lo: 0, Hi: n - 1, Stride: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Copy(m, dst, sec, src, sec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTranspose2D measures a whole distributed transpose.
func BenchmarkTranspose2D(b *testing.B) {
	g := dist.MustNewGrid(dist.MustNew(2, 8), dist.MustNew(2, 8))
	const n = 128
	src := hpf.MustNewArray2D(g, n, n)
	dst := hpf.MustNewArray2D(g, n, n)
	for i := int64(0); i < n; i++ {
		for j := int64(0); j < n; j++ {
			src.Set(i, j, float64(i*n+j))
		}
	}
	whole := section.Section{Lo: 0, Hi: n - 1, Stride: 1}
	rect, _ := section.NewRect(whole, whole)
	m := machine.MustNew(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Transpose2D(m, dst, rect, src, rect); err != nil {
			b.Fatal(err)
		}
	}
}
