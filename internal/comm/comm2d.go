package comm

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/hpf"
	"repro/internal/machine"
	"repro/internal/section"
	"repro/internal/telemetry"
)

// Plan2D is the communication schedule of a two-dimensional array
// assignment
//
//	dst(dstRect) = src(srcRect)            (Perm = [0, 1])
//	dst(dstRect) = transpose(src(srcRect)) (Perm = [1, 0])
//
// Positions are pairs (t0, t1) over the destination rect in row-major
// order; the source element for position (t0, t1) is
// (srcRect[0](t_{Perm[0]}), srcRect[1](t_{Perm[1]})). Because dimensions
// are distributed independently (paper, Section 2), the 2-D transfer set
// between two grid processors is the Cartesian product of two
// one-dimensional progression intersections — the multidimensional
// problem reduces to "multiple applications of the one-dimensional case"
// for communication exactly as it does for addressing.
type Plan2D struct {
	DstGrid, SrcGrid *dist.Grid
	DstRect, SrcRect section.Rect
	Perm             [2]int // source dimension feeding each position axis

	// axis[a][qd][rd] lists the position progressions along axis a moved
	// from source dim-owner qd to destination dim-owner rd.
	axis [2][][][]section.Section

	// pos[a][qd][rd] is axis[a][qd][rd] materialized and sorted — the
	// canonical position order shared by packer and unpacker, computed
	// once at planning time so Execute allocates nothing per transfer.
	pos [2][][][]int64
}

// NewPlan2D builds the schedule. perm selects the source dimension that
// varies with each destination axis: {0, 1} is a plain copy, {1, 0} a
// transpose. Counts must match axis-wise: dstRect[a].Count() ==
// srcRect[perm[a]].Count().
func NewPlan2D(dstGrid *dist.Grid, dstExt []int64, dstRect section.Rect,
	srcGrid *dist.Grid, srcExt []int64, srcRect section.Rect,
	perm [2]int) (*Plan2D, error) {
	if tr := telemetry.ActiveTracer(); tr != nil {
		defer tr.EndSpan(telemetry.HostRank, "comm.plan2d", tr.Now())
	}
	if dstGrid.Rank() != 2 || srcGrid.Rank() != 2 ||
		dstRect.Rank() != 2 || srcRect.Rank() != 2 ||
		len(dstExt) != 2 || len(srcExt) != 2 {
		return nil, fmt.Errorf("comm: Plan2D needs rank-2 grids, rects and extents")
	}
	if (perm != [2]int{0, 1}) && (perm != [2]int{1, 0}) {
		return nil, fmt.Errorf("comm: perm must be a permutation of {0,1}, got %v", perm)
	}
	for a := 0; a < 2; a++ {
		if dstRect[a].Count() != srcRect[perm[a]].Count() {
			return nil, fmt.Errorf("comm: axis %d size mismatch: dst %v (%d) vs src dim %d %v (%d)",
				a, dstRect[a], dstRect[a].Count(), perm[a],
				srcRect[perm[a]], srcRect[perm[a]].Count())
		}
		if err := checkBounds(dstRect[a], dstExt[a]); err != nil {
			return nil, fmt.Errorf("comm: destination dim %d %v", a, err)
		}
		if err := checkBounds(srcRect[a], srcExt[a]); err != nil {
			return nil, fmt.Errorf("comm: source dim %d %v", a, err)
		}
	}
	p := &Plan2D{
		DstGrid: dstGrid, SrcGrid: srcGrid,
		DstRect: dstRect, SrcRect: srcRect,
		Perm: perm,
	}
	for a := 0; a < 2; a++ {
		srcDim := perm[a]
		n := dstRect[a].Count()
		nq := srcGrid.Dim(srcDim).P()
		nr := dstGrid.Dim(a).P()
		p.axis[a] = make([][][]section.Section, nq)
		srcProgs := make([][]section.Section, nq)
		for q := int64(0); q < nq; q++ {
			srcProgs[q] = OwnedPositions(srcGrid.Dim(srcDim), srcRect[srcDim], q, n)
		}
		dstProgs := make([][]section.Section, nr)
		for r := int64(0); r < nr; r++ {
			dstProgs[r] = OwnedPositions(dstGrid.Dim(a), dstRect[a], r, n)
		}
		for q := int64(0); q < nq; q++ {
			p.axis[a][q] = make([][]section.Section, nr)
			for r := int64(0); r < nr; r++ {
				for _, sp := range srcProgs[q] {
					for _, dp := range dstProgs[r] {
						if common, ok := section.Intersect(sp, dp); ok {
							p.axis[a][q][r] = append(p.axis[a][q][r], common)
						}
					}
				}
			}
		}
		p.pos[a] = make([][][]int64, nq)
		for q := int64(0); q < nq; q++ {
			p.pos[a][q] = make([][]int64, nr)
			for r := int64(0); r < nr; r++ {
				p.pos[a][q][r] = p.positions(a, q, r)
			}
		}
	}
	return p, nil
}

// positions materializes the axis-a positions moved between dim-owners q
// and r, in increasing order across progressions.
func (p *Plan2D) positions(a int, q, r int64) []int64 {
	var out []int64
	for _, pg := range p.axis[a][q][r] {
		out = append(out, pg.Slice()...)
	}
	// Progressions from distinct block offsets interleave; sort for a
	// canonical order shared by packer and unpacker.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Execute runs dst(dstRect) = src(srcRect) (with the plan's axis
// permutation) on the machine. The machine must have at least
// max(dst procs, src procs) processors.
func (p *Plan2D) Execute(m *machine.Machine, dst, src *hpf.Array2D) error {
	nprocs := int64(m.NProcs())
	if nprocs < p.DstGrid.Procs() || nprocs < p.SrcGrid.Procs() {
		return fmt.Errorf("comm: machine has %d procs, plan needs %d dst / %d src",
			nprocs, p.DstGrid.Procs(), p.SrcGrid.Procs())
	}
	const tag = "comm.copy2d"
	m.Run(func(proc *machine.Proc) {
		tr := telemetry.ActiveTracer()
		var t0span int64
		if tr != nil {
			t0span = tr.Now()
		}
		me := int64(proc.Rank())
		// Send: this processor as source grid member.
		if me < p.SrcGrid.Procs() {
			qc := p.SrcGrid.Coords(me)
			mem, _, cols := src.LocalMem(me)
			for r := int64(0); r < p.DstGrid.Procs(); r++ {
				rc := p.DstGrid.Coords(r)
				// q's dim-owner coordinate for axis a is qc[Perm[a]].
				t0s := p.pos[0][qc[p.Perm[0]]][rc[0]]
				t1s := p.pos[1][qc[p.Perm[1]]][rc[1]]
				buf := machine.GetBuf(len(t0s) * len(t1s))
				for _, t0 := range t0s {
					for _, t1 := range t1s {
						// Source element for position (t0, t1).
						var i, j int64
						if p.Perm == [2]int{0, 1} {
							i = p.SrcRect[0].Element(t0)
							j = p.SrcRect[1].Element(t1)
						} else {
							i = p.SrcRect[0].Element(t1)
							j = p.SrcRect[1].Element(t0)
						}
						li := p.SrcGrid.Dim(0).Local(i)
						lj := p.SrcGrid.Dim(1).Local(j)
						buf = append(buf, mem[li*cols+lj])
					}
				}
				proc.Send(int(r), tag, buf, nil)
			}
		}
		// Receive: this processor as destination grid member.
		if me < p.DstGrid.Procs() {
			rc := p.DstGrid.Coords(me)
			mem, _, cols := dst.LocalMem(me)
			for q := int64(0); q < p.SrcGrid.Procs(); q++ {
				qc := p.SrcGrid.Coords(q)
				msg := proc.Recv(int(q), tag)
				t0s := p.pos[0][qc[p.Perm[0]]][rc[0]]
				t1s := p.pos[1][qc[p.Perm[1]]][rc[1]]
				n := 0
				for _, t0 := range t0s {
					i := p.DstRect[0].Element(t0)
					li := p.DstGrid.Dim(0).Local(i)
					for _, t1 := range t1s {
						j := p.DstRect[1].Element(t1)
						lj := p.DstGrid.Dim(1).Local(j)
						mem[li*cols+lj] = msg.Data[n]
						n++
					}
				}
				if n != len(msg.Data) {
					panic(fmt.Sprintf("comm: 2-D unpack consumed %d of %d values", n, len(msg.Data)))
				}
				machine.PutBuf(msg.Data)
			}
		}
		if tr != nil {
			tr.EndSpan(int32(proc.Rank()), "comm.execute2d", t0span)
		}
	})
	return nil
}

// Copy2D plans and executes dst(dstRect) = src(srcRect) elementwise in
// row-major position order, reusing a cached plan when the pattern
// recurs.
func Copy2D(m *machine.Machine, dst *hpf.Array2D, dstRect section.Rect,
	src *hpf.Array2D, srcRect section.Rect) error {
	dn0, dn1 := dst.Dims()
	sn0, sn1 := src.Dims()
	plan, err := CachedPlan2D(dst.Grid(), []int64{dn0, dn1}, dstRect,
		src.Grid(), []int64{sn0, sn1}, srcRect, [2]int{0, 1})
	if err != nil {
		return err
	}
	return plan.Execute(m, dst, src)
}

// Transpose2D plans and executes dst(dstRect) = transpose(src(srcRect)):
// destination position (t0, t1) receives source element
// (srcRect[0](t1), srcRect[1](t0)).
func Transpose2D(m *machine.Machine, dst *hpf.Array2D, dstRect section.Rect,
	src *hpf.Array2D, srcRect section.Rect) error {
	dn0, dn1 := dst.Dims()
	sn0, sn1 := src.Dims()
	plan, err := CachedPlan2D(dst.Grid(), []int64{dn0, dn1}, dstRect,
		src.Grid(), []int64{sn0, sn1}, srcRect, [2]int{1, 0})
	if err != nil {
		return err
	}
	return plan.Execute(m, dst, src)
}
