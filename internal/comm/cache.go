package comm

import (
	"repro/internal/dist"
	"repro/internal/plancache"
	"repro/internal/section"
)

// Communication planning is pure arithmetic over (layouts, array sizes,
// sections): the same inputs always produce the same schedule. Iterative
// solvers issue the same handful of array assignments every sweep, so
// the planner's output is memoized process-wide, exactly as the AM-table
// sets are (Section 6.1's amortization applied to the Section 7
// communication problem). Executing a cached plan also reuses its
// compiled pack/unpack address lists, so iteration 2..N does no
// planning, no intersection solving and no address arithmetic beyond
// the indexed loads and stores themselves.

// planKey identifies one 1-D communication pattern. Sections are keyed
// by their (Lo, Hi, Stride) triplet verbatim; two spellings of the same
// element set (e.g. 0:9:2 and 0:8:2) cache separately, which costs a
// duplicate entry but never correctness.
type planKey struct {
	dstLayout dist.Layout
	dstN      int64
	dstSec    section.Section
	srcLayout dist.Layout
	srcN      int64
	srcSec    section.Section
}

func hashPlanKey(k planKey) uint64 {
	h := plancache.Mix(plancache.Mix(plancache.Mix(plancache.Seed,
		k.dstLayout.P()), k.dstLayout.K()), k.dstN)
	h = plancache.Mix(plancache.Mix(plancache.Mix(h,
		k.dstSec.Lo), k.dstSec.Hi), k.dstSec.Stride)
	h = plancache.Mix(plancache.Mix(plancache.Mix(h,
		k.srcLayout.P()), k.srcLayout.K()), k.srcN)
	return plancache.Mix(plancache.Mix(plancache.Mix(h,
		k.srcSec.Lo), k.srcSec.Hi), k.srcSec.Stride)
}

var planCache = plancache.New[planKey, *Plan](256, hashPlanKey)

func init() {
	if err := planCache.Register("comm.plan1d"); err != nil {
		panic(err)
	}
}

// CachedPlan is NewPlan through the process-wide plan cache: the first
// occurrence of a (layouts, sizes, sections) pattern plans it, repeats
// reuse the memoized schedule. Plans are immutable after construction
// and safe for concurrent execution.
func CachedPlan(dstLayout dist.Layout, dstN int64, dstSec section.Section,
	srcLayout dist.Layout, srcN int64, srcSec section.Section) (*Plan, error) {
	key := planKey{
		dstLayout: dstLayout, dstN: dstN, dstSec: dstSec,
		srcLayout: srcLayout, srcN: srcN, srcSec: srcSec,
	}
	return planCache.GetOrCompute(key, func() (*Plan, error) {
		return NewPlan(dstLayout, dstN, dstSec, srcLayout, srcN, srcSec)
	})
}

// PlanCacheStats snapshots the 1-D plan cache counters; Misses equal
// the number of plans actually constructed.
func PlanCacheStats() plancache.Stats { return planCache.Stats() }

// ResetPlanCache drops all cached plans and zeroes the counters.
func ResetPlanCache() { planCache.Reset() }

// planKey2D identifies one 2-D communication pattern by the per-axis
// layouts of both grids, the extents, the rects and the axis
// permutation.
type planKey2D struct {
	dstDim0, dstDim1 dist.Layout
	dstN0, dstN1     int64
	dstR0, dstR1     section.Section
	srcDim0, srcDim1 dist.Layout
	srcN0, srcN1     int64
	srcR0, srcR1     section.Section
	perm             [2]int
}

func hashPlanKey2D(k planKey2D) uint64 {
	h := plancache.Mix(plancache.Mix(plancache.Seed, k.dstDim0.P()), k.dstDim0.K())
	h = plancache.Mix(plancache.Mix(h, k.dstDim1.P()), k.dstDim1.K())
	h = plancache.Mix(plancache.Mix(h, k.dstN0), k.dstN1)
	h = plancache.Mix(plancache.Mix(plancache.Mix(h, k.dstR0.Lo), k.dstR0.Hi), k.dstR0.Stride)
	h = plancache.Mix(plancache.Mix(plancache.Mix(h, k.dstR1.Lo), k.dstR1.Hi), k.dstR1.Stride)
	h = plancache.Mix(plancache.Mix(h, k.srcDim0.P()), k.srcDim0.K())
	h = plancache.Mix(plancache.Mix(h, k.srcDim1.P()), k.srcDim1.K())
	h = plancache.Mix(plancache.Mix(h, k.srcN0), k.srcN1)
	h = plancache.Mix(plancache.Mix(plancache.Mix(h, k.srcR0.Lo), k.srcR0.Hi), k.srcR0.Stride)
	h = plancache.Mix(plancache.Mix(plancache.Mix(h, k.srcR1.Lo), k.srcR1.Hi), k.srcR1.Stride)
	return plancache.Mix(h, int64(k.perm[0]))
}

var plan2DCache = plancache.New[planKey2D, *Plan2D](64, hashPlanKey2D)

func init() {
	if err := plan2DCache.Register("comm.plan2d"); err != nil {
		panic(err)
	}
}

// CachedPlan2D is NewPlan2D through the process-wide 2-D plan cache.
// The key covers the grids' per-axis layouts, so two *dist.Grid values
// with identical dimensions share one cached plan.
func CachedPlan2D(dstGrid *dist.Grid, dstExt []int64, dstRect section.Rect,
	srcGrid *dist.Grid, srcExt []int64, srcRect section.Rect,
	perm [2]int) (*Plan2D, error) {
	if dstGrid.Rank() != 2 || srcGrid.Rank() != 2 ||
		dstRect.Rank() != 2 || srcRect.Rank() != 2 ||
		len(dstExt) != 2 || len(srcExt) != 2 {
		// Let the planner produce its usual diagnostic.
		return NewPlan2D(dstGrid, dstExt, dstRect, srcGrid, srcExt, srcRect, perm)
	}
	key := planKey2D{
		dstDim0: dstGrid.Dim(0), dstDim1: dstGrid.Dim(1),
		dstN0: dstExt[0], dstN1: dstExt[1],
		dstR0: dstRect[0], dstR1: dstRect[1],
		srcDim0: srcGrid.Dim(0), srcDim1: srcGrid.Dim(1),
		srcN0: srcExt[0], srcN1: srcExt[1],
		srcR0: srcRect[0], srcR1: srcRect[1],
		perm: perm,
	}
	return plan2DCache.GetOrCompute(key, func() (*Plan2D, error) {
		return NewPlan2D(dstGrid, dstExt, dstRect, srcGrid, srcExt, srcRect, perm)
	})
}

// PlanCache2DStats snapshots the 2-D plan cache counters.
func PlanCache2DStats() plancache.Stats { return plan2DCache.Stats() }

// ResetPlanCache2D drops all cached 2-D plans and zeroes the counters.
func ResetPlanCache2D() { plan2DCache.Reset() }
