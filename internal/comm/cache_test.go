package comm

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/hpf"
	"repro/internal/machine"
	"repro/internal/plancache"
	"repro/internal/section"
)

// commCase generates random valid copy patterns for testing/quick: two
// layouts and two sections with matching element counts inside matching
// array bounds.
type commCase struct {
	dstP, dstK, srcP, srcK int64
	n                      int64 // element count of both sections
	dstLo, dstStride       int64
	srcLo, srcStride       int64
}

func (commCase) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(commCase{
		dstP: r.Int63n(5) + 1, dstK: r.Int63n(6) + 1,
		srcP: r.Int63n(5) + 1, srcK: r.Int63n(6) + 1,
		n:     r.Int63n(40) + 1,
		dstLo: r.Int63n(10), dstStride: r.Int63n(5) + 1,
		srcLo: r.Int63n(10), srcStride: r.Int63n(5) + 1,
	})
}

func (c commCase) sections() (dstSec, srcSec section.Section, dstN, srcN int64) {
	dstSec = section.Section{Lo: c.dstLo, Hi: c.dstLo + (c.n-1)*c.dstStride, Stride: c.dstStride}
	srcSec = section.Section{Lo: c.srcLo, Hi: c.srcLo + (c.n-1)*c.srcStride, Stride: c.srcStride}
	return dstSec, srcSec, dstSec.Last() + 1, srcSec.Last() + 1
}

// plansEquivalent compares the planner-computed fields (the compiled
// exec pointer is deliberately excluded: it is a lazily-built view).
func plansEquivalent(a, b *Plan) bool {
	return a.NDst == b.NDst && a.NSrc == b.NSrc &&
		a.DstSec == b.DstSec && a.SrcSec == b.SrcSec &&
		reflect.DeepEqual(a.Transfers, b.Transfers)
}

// TestCachedPlanMatchesNewPlan is the cache-correctness property: for
// randomized patterns the memoized plan equals a freshly computed one.
func TestCachedPlanMatchesNewPlan(t *testing.T) {
	ResetPlanCache()
	prop := func(c commCase) bool {
		dstSec, srcSec, dstN, srcN := c.sections()
		dstL := dist.MustNew(c.dstP, c.dstK)
		srcL := dist.MustNew(c.srcP, c.srcK)
		want, err := NewPlan(dstL, dstN, dstSec, srcL, srcN, srcSec)
		if err != nil {
			t.Logf("NewPlan: %v", err)
			return false
		}
		// Twice: miss path, then hit path.
		for i := 0; i < 2; i++ {
			got, err := CachedPlan(dstL, dstN, dstSec, srcL, srcN, srcSec)
			if err != nil {
				t.Logf("CachedPlan: %v", err)
				return false
			}
			if !plansEquivalent(got, want) {
				t.Logf("cached plan differs for %+v", c)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestCachedCopySteadyStateZeroPlanning verifies the acceptance
// criterion end-to-end: after the first sweep of a repeated pattern,
// further Copy calls construct no plans and no AM tables.
func TestCachedCopySteadyStateZeroPlanning(t *testing.T) {
	ResetPlanCache()
	plancache.ResetTables()
	m := machine.MustNew(4)
	dst := hpf.MustNewArray(dist.MustNew(4, 3), 120)
	src := hpf.MustNewArray(dist.MustNew(4, 5), 120)
	for i := int64(0); i < 120; i++ {
		src.Set(i, float64(i))
	}
	sec := section.MustNew(1, 118, 3)
	if err := Copy(m, dst, sec, src, sec); err != nil {
		t.Fatal(err)
	}
	warm := PlanCacheStats()
	for i := 0; i < 10; i++ {
		if err := Copy(m, dst, sec, src, sec); err != nil {
			t.Fatal(err)
		}
	}
	steady := PlanCacheStats()
	if misses := steady.Misses - warm.Misses; misses != 0 {
		t.Fatalf("steady state planned %d times, want 0", misses)
	}
	if steady.Hits-warm.Hits != 10 {
		t.Fatalf("steady state hits = %d, want 10", steady.Hits-warm.Hits)
	}
	// And the copies are still correct.
	for j := int64(0); j < sec.Count(); j++ {
		g := sec.Element(j)
		if dst.Get(g) != float64(g) {
			t.Fatalf("dst(%d) = %g, want %g", g, dst.Get(g), float64(g))
		}
	}
}

// TestPlanCacheConcurrentForcedEvictions swaps in a tiny cache so
// concurrent CachedPlan callers constantly evict each other (run with
// -race); every returned plan must still execute correctly.
func TestPlanCacheConcurrentForcedEvictions(t *testing.T) {
	old := planCache
	planCache = plancache.New[planKey, *Plan](2, hashPlanKey)
	defer func() { planCache = old }()

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			m := machine.MustNew(4)
			for i := 0; i < 40; i++ {
				stride := r.Int63n(4) + 1
				n := r.Int63n(20) + 1
				sec := section.Section{Lo: 0, Hi: (n - 1) * stride, Stride: stride}
				size := sec.Last() + 1
				dst := hpf.MustNewArray(dist.MustNew(4, r.Int63n(4)+1), size)
				src := hpf.MustNewArray(dist.MustNew(4, r.Int63n(4)+1), size)
				for g := int64(0); g < size; g++ {
					src.Set(g, float64(g))
				}
				if err := Copy(m, dst, sec, src, sec); err != nil {
					t.Error(err)
					return
				}
				for j := int64(0); j < sec.Count(); j++ {
					g := sec.Element(j)
					if dst.Get(g) != float64(g) {
						t.Errorf("dst(%d) = %g", g, dst.Get(g))
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if st := planCache.Stats(); st.Evictions == 0 {
		t.Error("expected forced evictions in tiny plan cache")
	}
}

// TestCachedPlan2DMatches verifies the 2-D cache against fresh planning
// over a seeded sweep of grids, rects and both permutations.
func TestCachedPlan2DMatches(t *testing.T) {
	ResetPlanCache2D()
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		dg := dist.MustNewGrid(dist.MustNew(r.Int63n(3)+1, r.Int63n(3)+1),
			dist.MustNew(r.Int63n(3)+1, r.Int63n(3)+1))
		sg := dist.MustNewGrid(dist.MustNew(r.Int63n(3)+1, r.Int63n(3)+1),
			dist.MustNew(r.Int63n(3)+1, r.Int63n(3)+1))
		n0, n1 := r.Int63n(6)+1, r.Int63n(6)+1
		rect := section.Rect{
			{Lo: 0, Hi: n0 - 1, Stride: 1},
			{Lo: 0, Hi: n1 - 1, Stride: 1},
		}
		perm := [2]int{0, 1}
		srcRect := rect
		if r.Intn(2) == 1 {
			perm = [2]int{1, 0}
			srcRect = section.Rect{rect[1], rect[0]}
		}
		ext := []int64{n0, n1}
		srcExt := []int64{srcRect[0].Last() + 1, srcRect[1].Last() + 1}
		want, err := NewPlan2D(dg, ext, rect, sg, srcExt, srcRect, perm)
		if err != nil {
			t.Fatal(err)
		}
		got, err := CachedPlan2D(dg, ext, rect, sg, srcExt, srcRect, perm)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.axis, want.axis) || !reflect.DeepEqual(got.pos, want.pos) {
			t.Fatalf("trial %d: cached 2-D plan differs", trial)
		}
		// Hit path returns the identical plan.
		again, err := CachedPlan2D(dg, ext, rect, sg, srcExt, srcRect, perm)
		if err != nil {
			t.Fatal(err)
		}
		if again != got {
			t.Fatalf("trial %d: second lookup missed the cache", trial)
		}
	}
}
