package comm

import (
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/hpf"
	"repro/internal/machine"
	"repro/internal/section"
)

func randomGrid(r *rand.Rand) *dist.Grid {
	return dist.MustNewGrid(
		dist.MustNew(r.Int63n(3)+1, r.Int63n(4)+1),
		dist.MustNew(r.Int63n(3)+1, r.Int63n(4)+1),
	)
}

// randomRectIn builds a rect with the given per-axis counts fitting in an
// n0×n1 array.
func randomRectIn(r *rand.Rand, c0, c1, n0, n1 int64) section.Rect {
	mk := func(count, n int64) section.Section {
		s := r.Int63n(3) + 1
		span := (count - 1) * s
		for span >= n {
			s = 1
			span = count - 1
		}
		lo := r.Int63n(n - span)
		sec := section.Section{Lo: lo, Hi: lo + span, Stride: s}
		if r.Intn(3) == 0 {
			sec = section.Section{Lo: sec.Last(), Hi: sec.Lo, Stride: -s}
		}
		return sec
	}
	rect, _ := section.NewRect(mk(c0, n0), mk(c1, n1))
	return rect
}

func TestCopy2DRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	for trial := 0; trial < 50; trial++ {
		sg, dg := randomGrid(r), randomGrid(r)
		sn0, sn1 := r.Int63n(20)+8, r.Int63n(20)+8
		dn0, dn1 := r.Int63n(20)+8, r.Int63n(20)+8
		src := hpf.MustNewArray2D(sg, sn0, sn1)
		dst := hpf.MustNewArray2D(dg, dn0, dn1)
		for i := int64(0); i < sn0; i++ {
			for j := int64(0); j < sn1; j++ {
				src.Set(i, j, float64(i*1000+j))
			}
		}
		c0 := r.Int63n(min(sn0, dn0)) + 1
		c1 := r.Int63n(min(sn1, dn1)) + 1
		srcRect := randomRectIn(r, c0, c1, sn0, sn1)
		dstRect := randomRectIn(r, c0, c1, dn0, dn1)

		m := machine.MustNew(int(max(sg.Procs(), dg.Procs())))
		if err := Copy2D(m, dst, dstRect, src, srcRect); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for t0 := int64(0); t0 < c0; t0++ {
			for t1 := int64(0); t1 < c1; t1++ {
				want := src.Get(srcRect[0].Element(t0), srcRect[1].Element(t1))
				got := dst.Get(dstRect[0].Element(t0), dstRect[1].Element(t1))
				if got != want {
					t.Fatalf("trial %d (%v = %v) at (%d,%d): %v, want %v",
						trial, dstRect, srcRect, t0, t1, got, want)
				}
			}
		}
	}
}

func TestTranspose2DRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(92))
	for trial := 0; trial < 50; trial++ {
		sg, dg := randomGrid(r), randomGrid(r)
		sn0, sn1 := r.Int63n(16)+8, r.Int63n(16)+8
		dn0, dn1 := r.Int63n(16)+8, r.Int63n(16)+8
		src := hpf.MustNewArray2D(sg, sn0, sn1)
		dst := hpf.MustNewArray2D(dg, dn0, dn1)
		for i := int64(0); i < sn0; i++ {
			for j := int64(0); j < sn1; j++ {
				src.Set(i, j, float64(i*1000+j))
			}
		}
		// For a transpose: dst axis 0 pairs with src dim 1 and vice versa.
		c0 := r.Int63n(min(dn0, sn1)) + 1
		c1 := r.Int63n(min(dn1, sn0)) + 1
		dstRect := randomRectIn(r, c0, c1, dn0, dn1)
		srcRect := randomRectIn(r, c1, c0, sn0, sn1)

		m := machine.MustNew(int(max(sg.Procs(), dg.Procs())))
		if err := Transpose2D(m, dst, dstRect, src, srcRect); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for t0 := int64(0); t0 < c0; t0++ {
			for t1 := int64(0); t1 < c1; t1++ {
				want := src.Get(srcRect[0].Element(t1), srcRect[1].Element(t0))
				got := dst.Get(dstRect[0].Element(t0), dstRect[1].Element(t1))
				if got != want {
					t.Fatalf("trial %d at (%d,%d): %v, want %v", trial, t0, t1, got, want)
				}
			}
		}
	}
}

func TestTransposeWholeMatrix(t *testing.T) {
	g := dist.MustNewGrid(dist.MustNew(2, 3), dist.MustNew(2, 2))
	a := hpf.MustNewArray2D(g, 10, 14)
	b := hpf.MustNewArray2D(g, 14, 10)
	for i := int64(0); i < 10; i++ {
		for j := int64(0); j < 14; j++ {
			a.Set(i, j, float64(i*100+j))
		}
	}
	rectA, _ := section.NewRect(section.MustNew(0, 9, 1), section.MustNew(0, 13, 1))
	rectB, _ := section.NewRect(section.MustNew(0, 13, 1), section.MustNew(0, 9, 1))
	m := machine.MustNew(int(g.Procs()))
	if err := Transpose2D(m, b, rectB, a, rectA); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		for j := int64(0); j < 14; j++ {
			if b.Get(j, i) != a.Get(i, j) {
				t.Fatalf("B(%d,%d) = %v != A(%d,%d) = %v", j, i, b.Get(j, i), i, j, a.Get(i, j))
			}
		}
	}
}

func TestPlan2DValidation(t *testing.T) {
	g := dist.MustNewGrid(dist.MustNew(2, 2), dist.MustNew(2, 2))
	ext := []int64{10, 10}
	rect, _ := section.NewRect(section.MustNew(0, 4, 1), section.MustNew(0, 4, 1))
	small, _ := section.NewRect(section.MustNew(0, 3, 1), section.MustNew(0, 4, 1))
	if _, err := NewPlan2D(g, ext, rect, g, ext, small, [2]int{0, 1}); err == nil {
		t.Error("size mismatch should fail")
	}
	oob, _ := section.NewRect(section.MustNew(0, 14, 1), section.MustNew(0, 4, 1))
	if _, err := NewPlan2D(g, ext, oob, g, ext, oob, [2]int{0, 1}); err == nil {
		t.Error("out of bounds should fail")
	}
	if _, err := NewPlan2D(g, ext, rect, g, ext, rect, [2]int{0, 0}); err == nil {
		t.Error("bad perm should fail")
	}
	g1 := dist.MustNewGrid(dist.MustNew(2, 2))
	if _, err := NewPlan2D(g1, ext, rect, g, ext, rect, [2]int{0, 1}); err == nil {
		t.Error("rank-1 grid should fail")
	}
	// Machine too small.
	src := hpf.MustNewArray2D(g, 10, 10)
	dst := hpf.MustNewArray2D(g, 10, 10)
	m := machine.MustNew(2)
	if err := Copy2D(m, dst, rect, src, rect); err == nil {
		t.Error("machine smaller than grids should fail")
	}
}
