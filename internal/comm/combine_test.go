package comm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/hpf"
	"repro/internal/machine"
	"repro/internal/section"
)

func TestAccumulateAdd(t *testing.T) {
	layout := dist.MustNew(4, 8)
	m := machine.MustNew(4)
	dst := hpf.MustNewArray(layout, 320)
	src := hpf.MustNewArray(dist.MustNew(4, 3), 320)
	for i := int64(0); i < 320; i++ {
		dst.Set(i, 100)
		src.Set(i, float64(i))
	}
	dstSec := section.MustNew(0, 90, 9)
	srcSec := section.MustNew(0, 20, 2)
	if err := Accumulate(m, dst, dstSec, src, srcSec, Add); err != nil {
		t.Fatal(err)
	}
	for j := int64(0); j < dstSec.Count(); j++ {
		want := 100 + float64(srcSec.Element(j))
		if got := dst.Get(dstSec.Element(j)); got != want {
			t.Errorf("dst(%d) = %v, want %v", dstSec.Element(j), got, want)
		}
	}
	if dst.Get(1) != 100 {
		t.Error("untouched element modified")
	}
}

func TestCombineThreeArrays(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	for trial := 0; trial < 40; trial++ {
		pa, pb, pd := r.Int63n(3)+1, r.Int63n(3)+1, r.Int63n(3)+1
		a := hpf.MustNewArray(dist.MustNew(pa, r.Int63n(5)+1), 200)
		b := hpf.MustNewArray(dist.MustNew(pb, r.Int63n(5)+1), 200)
		d := hpf.MustNewArray(dist.MustNew(pd, r.Int63n(5)+1), 200)
		for i := int64(0); i < 200; i++ {
			a.Set(i, float64(i))
			b.Set(i, float64(i)*10)
		}
		count := r.Int63n(15) + 1
		mk := func() section.Section {
			s := r.Int63n(5) + 1
			lo := r.Int63n(200 - (count-1)*s)
			return section.Section{Lo: lo, Hi: lo + (count-1)*s, Stride: s}
		}
		dSec, aSec, bSec := mk(), mk(), mk()
		m := machine.MustNew(int(max(pa, max(pb, pd))))
		if err := Combine(m, d, dSec, a, aSec, b, bSec, Add); err != nil {
			t.Fatal(err)
		}
		for j := int64(0); j < count; j++ {
			want := a.Get(aSec.Element(j)) + b.Get(bSec.Element(j))
			if got := d.Get(dSec.Element(j)); math.Abs(got-want) > 1e-12 {
				t.Fatalf("trial %d pos %d: %v, want %v", trial, j, got, want)
			}
		}
	}
}

func TestCombineCustomOp(t *testing.T) {
	layout := dist.MustNew(2, 4)
	m := machine.MustNew(2)
	a := hpf.MustNewArray(layout, 40)
	b := hpf.MustNewArray(layout, 40)
	d := hpf.MustNewArray(layout, 40)
	for i := int64(0); i < 40; i++ {
		a.Set(i, float64(i))
		b.Set(i, 3)
	}
	sec := section.MustNew(0, 39, 1)
	mul := func(x, y float64) float64 { return x * y }
	if err := Combine(m, d, sec, a, sec, b, sec, mul); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 40; i++ {
		if d.Get(i) != float64(i)*3 {
			t.Fatalf("d(%d) = %v", i, d.Get(i))
		}
	}
}

func TestExecuteWithMachineTooSmall(t *testing.T) {
	layout := dist.MustNew(4, 2)
	m := machine.MustNew(2)
	a := hpf.MustNewArray(layout, 40)
	d := hpf.MustNewArray(layout, 40)
	sec := section.MustNew(0, 9, 1)
	if err := Accumulate(m, d, sec, a, sec, Add); err == nil {
		t.Error("machine smaller than layouts should fail")
	}
}

func TestReplaceOp(t *testing.T) {
	if Replace(5, 7) != 7 {
		t.Error("Replace should return the incoming value")
	}
	if Add(5, 7) != 12 {
		t.Error("Add wrong")
	}
}
