package comm

import (
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/hpf"
	"repro/internal/machine"
	"repro/internal/section"
)

func TestOwnedPositionsCoverExactly(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		p := r.Int63n(5) + 1
		k := r.Int63n(6) + 1
		layout := dist.MustNew(p, k)
		stride := r.Int63n(20) + 1
		if r.Intn(2) == 0 {
			stride = -stride
		}
		lo := r.Int63n(200)
		n := r.Int63n(100) + 1
		sec := section.Section{Lo: lo, Hi: lo + (n-1)*stride, Stride: stride}
		if sec.Count() != n {
			t.Fatalf("test bug: count %d != %d", sec.Count(), n)
		}
		// Union over processors must partition [0, n).
		covered := make([]int, n)
		for m := int64(0); m < p; m++ {
			for _, prog := range OwnedPositions(layout, sec, m, n) {
				for _, tt := range prog.Slice() {
					if tt < 0 || tt >= n {
						t.Fatalf("position %d out of [0,%d)", tt, n)
					}
					if layout.Owner(sec.Element(tt)) != m {
						t.Fatalf("position %d claimed by %d but owned by %d",
							tt, m, layout.Owner(sec.Element(tt)))
					}
					covered[tt]++
				}
			}
		}
		for tt, c := range covered {
			if c != 1 {
				t.Fatalf("position %d covered %d times", tt, c)
			}
		}
	}
}

func TestPlanVolumes(t *testing.T) {
	dstL := dist.MustNew(4, 8)
	srcL := dist.MustNew(3, 5)
	dstSec := section.MustNew(0, 99, 1)
	srcSec := section.MustNew(0, 198, 2)
	plan, err := NewPlan(dstL, 200, dstSec, srcL, 200, srcSec)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.TotalVolume(); got != 100 {
		t.Errorf("TotalVolume = %d, want 100", got)
	}
	// Each position appears in exactly one (q, r) transfer.
	seen := make([]int, 100)
	for q := int64(0); q < plan.NSrc; q++ {
		for r := int64(0); r < plan.NDst; r++ {
			for _, s := range plan.Transfers[q][r] {
				for _, tt := range s.Slice() {
					seen[tt]++
				}
			}
		}
	}
	for tt, c := range seen {
		if c != 1 {
			t.Errorf("position %d in %d transfers", tt, c)
		}
	}
}

func TestPlanMismatchedSizes(t *testing.T) {
	l := dist.MustNew(2, 2)
	if _, err := NewPlan(l, 100, section.MustNew(0, 9, 1),
		l, 100, section.MustNew(0, 9, 2)); err == nil {
		t.Error("mismatched counts should fail")
	}
	if _, err := NewPlan(l, 5, section.MustNew(0, 9, 1),
		l, 100, section.MustNew(0, 9, 1)); err == nil {
		t.Error("out-of-bounds destination should fail")
	}
	if _, err := NewPlan(l, 100, section.MustNew(0, 9, 1),
		l, 5, section.MustNew(0, 9, 1)); err == nil {
		t.Error("out-of-bounds source should fail")
	}
}

func TestCopySameDistribution(t *testing.T) {
	layout := dist.MustNew(4, 8)
	m := machine.MustNew(4)
	src := hpf.MustNewArray(layout, 320)
	dst := hpf.MustNewArray(layout, 320)
	for i := int64(0); i < 320; i++ {
		src.Set(i, float64(i))
	}
	// dst(4:300:9) = src(0:264:8): same layout, strided sections.
	dstSec := section.MustNew(4, 300, 9)
	srcSec := section.MustNew(0, int64(8*(dstSec.Count()-1)), 8)
	if err := Copy(m, dst, dstSec, src, srcSec); err != nil {
		t.Fatal(err)
	}
	for j := int64(0); j < dstSec.Count(); j++ {
		want := float64(srcSec.Element(j))
		if got := dst.Get(dstSec.Element(j)); got != want {
			t.Errorf("dst(%d) = %v, want %v", dstSec.Element(j), got, want)
		}
	}
	// Untouched elements stay zero.
	if dst.Get(0) != 0 || dst.Get(319) != 0 {
		t.Error("untouched elements modified")
	}
}

func TestCopyCrossDistributionRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		pd := r.Int63n(4) + 1
		ps := r.Int63n(4) + 1
		kd := r.Int63n(6) + 1
		ks := r.Int63n(6) + 1
		dstL := dist.MustNew(pd, kd)
		srcL := dist.MustNew(ps, ks)
		nd := r.Int63n(300) + 50
		ns := r.Int63n(300) + 50
		dst := hpf.MustNewArray(dstL, nd)
		src := hpf.MustNewArray(srcL, ns)
		for i := int64(0); i < ns; i++ {
			src.Set(i, float64(i+1))
		}

		// Pick random equal-count sections, either direction.
		count := r.Int63n(20) + 1
		mkSec := func(n int64) section.Section {
			for {
				stride := r.Int63n(7) + 1
				if r.Intn(3) == 0 {
					stride = -stride
				}
				span := (count - 1) * int64(abs(stride))
				if span >= n {
					continue
				}
				var lo int64
				if stride > 0 {
					lo = r.Int63n(n - span)
				} else {
					lo = span + r.Int63n(n-span)
				}
				return section.Section{Lo: lo, Hi: lo + (count-1)*stride, Stride: stride}
			}
		}
		dstSec := mkSec(nd)
		srcSec := mkSec(ns)

		procs := int(max(pd, ps))
		m := machine.MustNew(procs)
		before := dst.Gather()
		if err := Copy(m, dst, dstSec, src, srcSec); err != nil {
			t.Fatal(err)
		}
		// Reference semantics: dst(dstSec(t)) = src(srcSec(t)).
		want := before
		for tt := int64(0); tt < count; tt++ {
			want[dstSec.Element(tt)] = src.Get(srcSec.Element(tt))
		}
		got := dst.Gather()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (dst %v src %v): element %d = %v, want %v",
					trial, dstSec, srcSec, i, got[i], want[i])
			}
		}
	}
}

func abs(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestCopyEmptySections(t *testing.T) {
	layout := dist.MustNew(2, 3)
	m := machine.MustNew(2)
	src := hpf.MustNewArray(layout, 30)
	dst := hpf.MustNewArray(layout, 30)
	if err := Copy(m, dst, section.MustNew(5, 4, 1), src, section.MustNew(5, 4, 1)); err != nil {
		t.Fatalf("empty copy should succeed: %v", err)
	}
}

func TestExecuteMachineTooSmall(t *testing.T) {
	layout := dist.MustNew(4, 2)
	m := machine.MustNew(2) // fewer procs than the layout
	src := hpf.MustNewArray(layout, 40)
	dst := hpf.MustNewArray(layout, 40)
	err := Copy(m, dst, section.MustNew(0, 9, 1), src, section.MustNew(0, 9, 1))
	if err == nil {
		t.Error("machine smaller than layouts should fail")
	}
}
