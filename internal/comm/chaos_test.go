package comm

import (
	"strings"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/hpf"
	"repro/internal/machine"
	"repro/internal/section"
)

// Chaos tests: communication plans execute under seeded fault plans
// applied inside the machine's Send/Recv, so the pack/exchange/unpack
// protocol is exercised unmodified. Delay, duplication and reorder must
// not corrupt a transfer (each (sender, tag) pair carries exactly one
// message per Execute); dropped messages must surface as a structured
// watchdog failure, never a hang. CI runs these with -race and a hard
// timeout (chaos-smoke job).

// chaosFixture builds differently-distributed src/dst arrays and the
// plan for dst(0:2(cnt-1):2) = src(4:n-1:9).
func chaosFixture(t *testing.T) (*Plan, *hpf.Array, *hpf.Array, section.Section, section.Section) {
	t.Helper()
	const n = 320
	srcL := dist.MustNew(4, 8)
	dstL := dist.MustNew(4, 5)
	src := hpf.MustNewArray(srcL, n)
	for i := int64(0); i < n; i++ {
		src.Set(i, float64(i))
	}
	dst := hpf.MustNewArray(dstL, n)
	srcSec := section.Section{Lo: 4, Hi: n - 1, Stride: 9}
	dstSec := section.Section{Lo: 0, Hi: 2 * (srcSec.Count() - 1), Stride: 2}
	plan, err := NewPlan(dstL, n, dstSec, srcL, n, srcSec)
	if err != nil {
		t.Fatal(err)
	}
	return plan, dst, src, dstSec, srcSec
}

func checkCopied(t *testing.T, dst, src *hpf.Array, dstSec, srcSec section.Section) {
	t.Helper()
	for i := int64(0); i < srcSec.Count(); i++ {
		want := src.Get(srcSec.Element(i))
		if got := dst.Get(dstSec.Element(i)); got != want {
			t.Fatalf("dst element %d = %v, want %v", i, got, want)
		}
	}
}

func TestExecuteSurvivesDelayDupReorder(t *testing.T) {
	for _, seed := range []int64{5, 19} {
		plan, dst, src, dstSec, srcSec := chaosFixture(t)
		m := machine.MustNew(4)
		m.SetFaults(&machine.FaultPlan{
			Seed: seed, Delay: 0.25, DelayBy: 300 * time.Microsecond,
			Dup: 0.25, Reorder: 0.25, CrashRank: -1,
		})
		if err := plan.Execute(m, dst, src); err != nil {
			t.Fatal(err)
		}
		checkCopied(t, dst, src, dstSec, srcSec)
		if len(m.FaultEvents()) == 0 {
			t.Errorf("seed %d: no faults injected; plan not exercised", seed)
		}
	}
}

func TestExecuteWithSurvivesFaults(t *testing.T) {
	plan, dst, src, dstSec, srcSec := chaosFixture(t)
	base := 0.5
	for i := int64(0); i < dst.N(); i++ {
		dst.Set(i, base)
	}
	m := machine.MustNew(4)
	m.SetFaults(&machine.FaultPlan{
		Seed: 23, Delay: 0.3, DelayBy: 300 * time.Microsecond, Reorder: 0.3,
		CrashRank: -1,
	})
	if err := plan.ExecuteWith(m, dst, src, Add); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < srcSec.Count(); i++ {
		want := base + src.Get(srcSec.Element(i))
		if got := dst.Get(dstSec.Element(i)); got != want {
			t.Fatalf("dst element %d = %v, want %v", i, got, want)
		}
	}
}

// TestExecuteDropBecomesStructuredFailure: losing plan messages parks
// the unpack side forever; the watchdog must abort with a diagnostic
// naming the comm tag instead of hanging the test suite.
func TestExecuteDropBecomesStructuredFailure(t *testing.T) {
	plan, dst, src, _, _ := chaosFixture(t)
	m := machine.MustNew(4)
	m.SetQuiescence(15 * time.Millisecond)
	m.SetFaults(&machine.FaultPlan{Seed: 3, Drop: 1, CrashRank: -1})
	start := time.Now()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected watchdog abort when every message is dropped")
		}
		msg := r.(string)
		if !strings.Contains(msg, "deadlock") || !strings.Contains(msg, "comm.copy") {
			t.Errorf("diagnostic %q should name the deadlock and the comm tag", msg)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Errorf("abort took %v", elapsed)
		}
	}()
	_ = plan.Execute(m, dst, src)
	t.Fatal("Execute with all messages dropped should not complete")
}
