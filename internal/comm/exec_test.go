package comm

import (
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/hpf"
	"repro/internal/machine"
	"repro/internal/section"
)

func TestDetectRun(t *testing.T) {
	cases := []struct {
		name   string
		pa, ua []int64
		ok     bool
	}{
		{"empty", nil, nil, true},
		{"single", []int64{7}, []int64{3}, true},
		{"unit", []int64{4, 5, 6}, []int64{9, 10, 11}, true},
		{"strided", []int64{0, 3, 6, 9}, []int64{5, 7, 9, 11}, true},
		{"descending", []int64{9, 6, 3}, []int64{2, 4, 6}, true},
		{"pack-breaks", []int64{0, 3, 7}, []int64{5, 7, 9}, false},
		{"unpack-breaks", []int64{0, 3, 6}, []int64{5, 7, 10}, false},
	}
	for _, tc := range cases {
		run, ok := detectRun(tc.pa, tc.ua)
		if ok != tc.ok {
			t.Errorf("%s: detectRun ok = %v, want %v", tc.name, ok, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		if run.n != int64(len(tc.pa)) {
			t.Errorf("%s: run.n = %d, want %d", tc.name, run.n, len(tc.pa))
		}
		// Replay the run and compare against the original lists.
		a, u := run.packBase, run.unpackBase
		for i := int64(0); i < run.n; i++ {
			if a != tc.pa[i] || u != tc.ua[i] {
				t.Errorf("%s: replay diverges at %d: (%d,%d) want (%d,%d)",
					tc.name, i, a, u, tc.pa[i], tc.ua[i])
				break
			}
			a += run.packStep
			u += run.unpackStep
		}
	}
}

// TestExecPairModesAgree cross-checks the compiled pack/unpack paths —
// strided runs and arena-backed lists alike — against the uncompiled
// definition (walk the transfer sections, move element by element), over
// randomized cross-distribution plans.
func TestExecPairModesAgree(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	sawStrided, sawList := false, false
	for trial := 0; trial < 80; trial++ {
		pd, ps := r.Int63n(4)+1, r.Int63n(4)+1
		kd, ks := r.Int63n(6)+1, r.Int63n(6)+1
		dstL, srcL := dist.MustNew(pd, kd), dist.MustNew(ps, ks)
		count := r.Int63n(30) + 1
		ds, ss := r.Int63n(6)+1, r.Int63n(6)+1
		dstSec := section.Section{Lo: r.Int63n(10), Stride: ds}
		dstSec.Hi = dstSec.Lo + (count-1)*ds
		srcSec := section.Section{Lo: r.Int63n(10), Stride: ss}
		srcSec.Hi = srcSec.Lo + (count-1)*ss
		nd, ns := dstSec.Last()+1+r.Int63n(10), srcSec.Last()+1+r.Int63n(10)

		plan, err := NewPlan(dstL, nd, dstSec, srcL, ns, srcSec)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		e := plan.execFor(srcL, dstL)

		src := hpf.MustNewArray(srcL, ns)
		for i := int64(0); i < ns; i++ {
			src.Set(i, float64(i+1))
		}
		dst := hpf.MustNewArray(dstL, nd)

		for q := int64(0); q < plan.NSrc; q++ {
			for r2 := int64(0); r2 < plan.NDst; r2++ {
				if e.runs[q][r2].ok && e.count(q, r2) > 0 {
					sawStrided = true
				}
				if !e.runs[q][r2].ok {
					sawList = true
				}
				buf := e.packInto(nil, src.LocalMem(q), q, r2)
				if len(buf) != e.count(q, r2) {
					t.Fatalf("trial %d (%d→%d): packed %d, count says %d",
						trial, q, r2, len(buf), e.count(q, r2))
				}
				e.unpackFrom(dst.LocalMem(r2), buf, q, r2)
			}
		}
		for j := int64(0); j < count; j++ {
			want := float64(srcSec.Element(j) + 1)
			if got := dst.Get(dstSec.Element(j)); got != want {
				t.Fatalf("trial %d: dst(%d) = %v, want %v",
					trial, dstSec.Element(j), got, want)
			}
		}
	}
	if !sawStrided || !sawList {
		t.Fatalf("sweep did not exercise both modes: strided=%v list=%v", sawStrided, sawList)
	}
}

// TestWarmPackUnpackZeroAllocs guards the acceptance criterion that the
// compiled pack/unpack paths allocate nothing once the exec is built and
// the value buffer is pre-sized.
func TestWarmPackUnpackZeroAllocs(t *testing.T) {
	layout := dist.MustNew(4, 8)
	src := hpf.MustNewArray(layout, 640)
	dst := hpf.MustNewArray(layout, 640)
	dstSec := section.MustNew(4, 600, 9)
	srcSec := section.MustNew(0, int64(8*(dstSec.Count()-1)), 8)
	plan, err := NewPlan(layout, 640, dstSec, layout, 640, srcSec)
	if err != nil {
		t.Fatal(err)
	}
	e := plan.execFor(layout, layout)

	for q := int64(0); q < plan.NSrc; q++ {
		for r := int64(0); r < plan.NDst; r++ {
			q, r := q, r
			buf := make([]float64, 0, e.count(q, r))
			srcMem, dstMem := src.LocalMem(q), dst.LocalMem(r)
			if n := testing.AllocsPerRun(20, func() {
				buf = e.packInto(buf[:0], srcMem, q, r)
				e.unpackFrom(dstMem, buf, q, r)
			}); n != 0 {
				t.Errorf("pair (%d→%d): warm pack/unpack allocates %v/op, want 0", q, r, n)
			}
		}
	}
}

// TestExecuteStridedEndToEnd runs a full machine execution over a plan
// whose pairs compile to strided runs (unit-stride same-layout copy) and
// one that forces list mode, checking results either way.
func TestExecuteStridedEndToEnd(t *testing.T) {
	layout := dist.MustNew(4, 8)
	m := machine.MustNew(4)
	for _, stride := range []int64{1, 9} {
		src := hpf.MustNewArray(layout, 640)
		dst := hpf.MustNewArray(layout, 640)
		for i := int64(0); i < 640; i++ {
			src.Set(i, float64(i))
		}
		count := int64(60)
		sec := section.Section{Lo: 3, Hi: 3 + (count-1)*stride, Stride: stride}
		plan, err := NewPlan(layout, 640, sec, layout, 640, sec)
		if err != nil {
			t.Fatal(err)
		}
		if err := plan.Execute(m, dst, src); err != nil {
			t.Fatal(err)
		}
		for j := int64(0); j < count; j++ {
			i := sec.Element(j)
			if got := dst.Get(i); got != float64(i) {
				t.Fatalf("stride %d: dst(%d) = %v, want %v", stride, i, got, float64(i))
			}
		}
	}
}
