package comm

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/hpf"
	"repro/internal/machine"
	"repro/internal/section"
	"repro/internal/telemetry"
)

// TestExecuteRecordsPackUnpackAccesses traces a cross-distribution copy
// and checks the recorded pack reads and unpack writes against the
// layout oracle: every rank's reads are exactly the source local
// addresses it owns in the transfer, its writes exactly the destination
// local addresses, under "comm.pack"/"comm.unpack" step labels.
func TestExecuteRecordsPackUnpackAccesses(t *testing.T) {
	srcLayout := dist.MustNew(4, 8)
	dstLayout := dist.MustNew(4, 3)
	m := machine.MustNew(4)
	src := hpf.MustNewArray(srcLayout, 320)
	dst := hpf.MustNewArray(dstLayout, 320)
	dstSec := section.MustNew(4, 300, 9)
	srcSec := section.MustNew(0, int64(8*(dstSec.Count()-1)), 8)

	ar := telemetry.StartAccessRecording(4, 1<<16, 1)
	defer telemetry.StopAccessRecording()
	if err := Copy(m, dst, dstSec, src, srcSec); err != nil {
		t.Fatal(err)
	}
	doc := ar.Doc()
	telemetry.StopAccessRecording()

	if len(doc.Steps) != 2 || doc.Steps[0].Label != "comm.pack" || doc.Steps[1].Label != "comm.unpack" {
		t.Fatalf("steps = %+v", doc.Steps)
	}
	packStep, unpackStep := doc.Steps[0].Step, doc.Steps[1].Step

	// Oracle: transfer position t pairs srcSec(t) (read on its owner)
	// with dstSec(t) (written on its owner).
	wantReads := map[int32]map[int64]int{}
	wantWrites := map[int32]map[int64]int{}
	n := dstSec.Count()
	for t0 := int64(0); t0 < n; t0++ {
		si, di := srcSec.Element(t0), dstSec.Element(t0)
		q, r := int32(srcLayout.Owner(si)), int32(dstLayout.Owner(di))
		if wantReads[q] == nil {
			wantReads[q] = map[int64]int{}
		}
		if wantWrites[r] == nil {
			wantWrites[r] = map[int64]int{}
		}
		wantReads[q][srcLayout.Local(si)]++
		wantWrites[r][dstLayout.Local(di)]++
	}

	for _, seq := range doc.Seqs {
		gotReads := map[int64]int{}
		gotWrites := map[int64]int{}
		for _, rec := range seq.Accesses {
			if rec.Write {
				if rec.Step != unpackStep {
					t.Fatalf("rank %d: write with step %d, want %d", seq.Rank, rec.Step, unpackStep)
				}
				gotWrites[rec.Addr]++
			} else {
				if rec.Step != packStep {
					t.Fatalf("rank %d: read with step %d, want %d", seq.Rank, rec.Step, packStep)
				}
				gotReads[rec.Addr]++
			}
		}
		checkAddrSet(t, "pack reads", seq.Rank, gotReads, wantReads[seq.Rank])
		checkAddrSet(t, "unpack writes", seq.Rank, gotWrites, wantWrites[seq.Rank])
	}
}

func checkAddrSet(t *testing.T, what string, rank int32, got, want map[int64]int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("rank %d %s: %d distinct addresses, want %d", rank, what, len(got), len(want))
	}
	for a, n := range want {
		if got[a] != n {
			t.Fatalf("rank %d %s: address %d recorded %d times, want %d", rank, what, a, got[a], n)
		}
	}
}

// TestExecuteWithRecordsCombineAccesses checks the accumulate path
// records the destination read-modify-write pairs.
func TestExecuteWithRecordsCombineAccesses(t *testing.T) {
	layout := dist.MustNew(3, 5)
	m := machine.MustNew(3)
	src := hpf.MustNewArray(layout, 100)
	dst := hpf.MustNewArray(layout, 100)
	sec := section.MustNew(0, 99, 1)

	ar := telemetry.StartAccessRecording(3, 1<<16, 1)
	defer telemetry.StopAccessRecording()
	if err := Accumulate(m, dst, sec, src, sec, Add); err != nil {
		t.Fatal(err)
	}
	doc := ar.Doc()
	telemetry.StopAccessRecording()

	if len(doc.Steps) != 2 || doc.Steps[0].Label != "comm.pack" || doc.Steps[1].Label != "comm.combine" {
		t.Fatalf("steps = %+v", doc.Steps)
	}
	var reads, writes int64
	for _, seq := range doc.Seqs {
		for _, rec := range seq.Accesses {
			if rec.Write {
				writes++
			} else {
				reads++
			}
		}
	}
	// 100 pack reads + 100 combine reads, 100 combine writes.
	if reads != 200 || writes != 100 {
		t.Fatalf("recorded %d reads / %d writes, want 200 / 100", reads, writes)
	}
}
