package virtual

import (
	"math/rand"
	"slices"
	"testing"

	"repro/internal/core"
)

// bruteSet returns the (index, local) pairs of all owned section elements
// in increasing index order.
func bruteSet(pr core.Problem, u int64) []Access {
	pk := pr.P * pr.K
	var out []Access
	for g := pr.L; g <= u; g += pr.S {
		if (g%pk)/pr.K == pr.M {
			out = append(out, Access{Index: g, Local: (g/pk)*pr.K + g%pr.K})
		}
	}
	return out
}

func sortByIndex(a []Access) []Access {
	c := slices.Clone(a)
	slices.SortFunc(c, func(x, y Access) int {
		switch {
		case x.Index < y.Index:
			return -1
		case x.Index > y.Index:
			return 1
		}
		return 0
	})
	return c
}

func TestSchemesCoverSameElements(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 400; trial++ {
		p := r.Int63n(6) + 1
		k := r.Int63n(10) + 1
		s := r.Int63n(3*p*k) + 1
		l := r.Int63n(2 * p * k)
		u := l + r.Int63n(5*s*k+1)
		m := r.Int63n(p)
		pr := core.Problem{P: p, K: k, L: l, S: s, M: m}
		want := bruteSet(pr, u)

		cyc, err := Cyclic(pr, u)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(sortByIndex(cyc), want) {
			t.Fatalf("%+v u=%d: cyclic covers %v, want %v", pr, u, sortByIndex(cyc), want)
		}
		blk, _, err := Block(pr, u)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(blk, want) {
			t.Fatalf("%+v u=%d: block = %v, want %v", pr, u, blk, want)
		}
	}
}

func TestBlockOrderIsIncreasing(t *testing.T) {
	pr := core.Problem{P: 4, K: 8, L: 4, S: 9, M: 1}
	blk, _, err := Block(pr, 500)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(blk); i++ {
		if blk[i].Index <= blk[i-1].Index {
			t.Fatalf("block order not increasing at %d: %v", i, blk)
		}
	}
}

// TestCyclicOrderDiffersFromIndexOrder pins down the paper's Section 7
// criticism: virtual-cyclic does NOT visit elements in increasing index
// order (for patterns touching more than one offset).
func TestCyclicOrderDiffersFromIndexOrder(t *testing.T) {
	pr := core.Problem{P: 4, K: 8, L: 4, S: 9, M: 1}
	cyc, err := Cyclic(pr, 500)
	if err != nil {
		t.Fatal(err)
	}
	inOrder := true
	for i := 1; i < len(cyc); i++ {
		if cyc[i].Index < cyc[i-1].Index {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Error("virtual-cyclic unexpectedly produced increasing index order")
	}
}

// TestCyclicOrderWithinOffsetClasses: within one offset class the order is
// increasing (the property Gupta et al. do guarantee).
func TestCyclicOrderWithinOffsetClasses(t *testing.T) {
	pr := core.Problem{P: 4, K: 8, L: 4, S: 9, M: 1}
	cyc, err := Cyclic(pr, 1000)
	if err != nil {
		t.Fatal(err)
	}
	lastByOffset := map[int64]int64{}
	for _, a := range cyc {
		off := a.Index % pr.K
		if prev, ok := lastByOffset[off]; ok && a.Index <= prev {
			t.Fatalf("offset class %d not increasing: %d after %d", off, a.Index, prev)
		}
		lastByOffset[off] = a.Index
	}
}

// TestBlockDegeneratesForLargeStride reproduces the Section 7 observation:
// when s >> k, virtual-block visits many empty blocks per element.
func TestBlockDegeneratesForLargeStride(t *testing.T) {
	pr := core.Problem{P: 4, K: 4, L: 0, S: 64, M: 0} // s = 4·pk
	_, stats, err := Block(pr, 64*50)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Elements == 0 {
		t.Fatal("expected some elements")
	}
	if stats.BlocksVisited < 3*stats.Elements {
		t.Errorf("expected heavy degeneration: %d blocks for %d elements",
			stats.BlocksVisited, stats.Elements)
	}
}

func TestEmptyAndInvalid(t *testing.T) {
	pr := core.Problem{P: 4, K: 8, L: 10, S: 3, M: 0}
	if acc, err := Cyclic(pr, 5); err != nil || acc != nil {
		t.Errorf("u < l should be empty: %v %v", acc, err)
	}
	if acc, _, err := Block(pr, 5); err != nil || acc != nil {
		t.Errorf("u < l should be empty: %v %v", acc, err)
	}
	bad := core.Problem{P: 0, K: 8, L: 0, S: 3, M: 0}
	if _, err := Cyclic(bad, 10); err == nil {
		t.Error("invalid problem should fail")
	}
	if _, _, err := Block(bad, 10); err == nil {
		t.Error("invalid problem should fail")
	}
}
