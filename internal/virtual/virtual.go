// Package virtual implements the virtual-processor address enumeration
// schemes of Gupta, Kaushik, Huang & Sadayappan that the paper compares
// against in Section 7: a cyclic(k) distribution over p processors is
// viewed as a pure cyclic or pure block distribution over a larger set of
// virtual processors, each physical processor emulating several virtual
// ones.
//
//   - Virtual-cyclic: the template is dealt cyclically to p·k virtual
//     processors; physical processor m emulates virtual processors
//     m·k … m·k+k−1. Section elements with the SAME block offset are
//     visited in increasing index order, but elements at different
//     offsets are visited offset-by-offset — NOT in global index order.
//   - Virtual-block: the template is cut into blocks assigned to virtual
//     processors round-robin; physical processor m visits its blocks
//     (rows) in order and the section elements within each block in
//     order, which IS increasing index order — but when the stride
//     exceeds the block size most blocks are empty and the scheme
//     degenerates to run-time resolution (Section 7).
//
// These generators exist to make the paper's comparison concrete: both
// produce the same element sets as package core, but only the paper's
// algorithm yields increasing-index order with O(k) table construction in
// the general case.
package virtual

import (
	"repro/internal/core"
	"repro/internal/intmath"
)

// Access is one generated element: its global index and local memory
// address under the owner's packed cyclic(k) layout.
type Access struct {
	Index, Local int64
}

// Cyclic enumerates the elements of the bounded section l:u:s owned by
// processor m in VIRTUAL-CYCLIC order: offset class by offset class (in
// increasing offset), increasing index within each class. The result
// covers exactly the same elements as core's algorithms but generally not
// in increasing global-index order.
func Cyclic(pr core.Problem, u int64) ([]Access, error) {
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	if u < pr.L {
		return nil, nil
	}
	n := (u-pr.L)/pr.S + 1
	pk := pr.P * pr.K
	d, x, _ := intmath.ExtGCD(pr.S, pk)
	nd := pk / d
	var out []Access
	// One virtual processor per offset in m's block, visited in offset
	// order: this is exactly "only array elements that have the same
	// offset are accessed in increasing order" (Section 7).
	lo := pr.K*pr.M - pr.L
	for i := intmath.CeilDiv(lo, d) * d; i < lo+pr.K; i += d {
		j0 := intmath.MulModAuto(intmath.FloorMod(i, pk)/d, x, nd)
		for j := j0; j < n; j += nd {
			g := pr.L + j*pr.S
			out = append(out, Access{
				Index: g,
				Local: intmath.FloorDiv(g, pk)*pr.K + intmath.FloorMod(g, pr.K),
			})
		}
	}
	return out, nil
}

// Block enumerates the elements of the bounded section l:u:s owned by
// processor m in VIRTUAL-BLOCK order: block (row) by block, increasing
// index within each block. For cyclic(k) layouts this coincides with
// increasing global-index order, because each processor's blocks occupy
// disjoint, increasing index ranges.
//
// The scheme's cost is its weakness: it visits every owned block, even
// the ones the section skips entirely, so for s > k most iterations do no
// work (the degeneration to "run-time address resolution" noted in
// Section 7).
type BlockStats struct {
	BlocksVisited int64 // rows examined, including empty ones
	Elements      int64 // elements produced
}

// Block returns the accesses and the visit statistics.
func Block(pr core.Problem, u int64) ([]Access, BlockStats, error) {
	var stats BlockStats
	if err := pr.Validate(); err != nil {
		return nil, stats, err
	}
	if u < pr.L {
		return nil, stats, nil
	}
	pk := pr.P * pr.K
	var out []Access
	// Walk every block of processor m that intersects [l, u].
	firstRow := intmath.FloorDiv(pr.L, pk)
	if firstRow < 0 {
		firstRow = intmath.FloorDiv(pr.L-pr.M*pr.K, pk) // conservative
	}
	lastRow := intmath.FloorDiv(u, pk)
	for row := firstRow; row <= lastRow; row++ {
		stats.BlocksVisited++
		blockLo := row*pk + pr.M*pr.K
		blockHi := blockLo + pr.K - 1
		// First section element >= max(blockLo, l).
		from := max(blockLo, pr.L)
		j := intmath.CeilDiv(from-pr.L, pr.S)
		for g := pr.L + j*pr.S; g <= blockHi && g <= u; g += pr.S {
			if g < blockLo {
				continue
			}
			out = append(out, Access{
				Index: g,
				Local: row*pr.K + intmath.FloorMod(g, pr.K),
			})
			stats.Elements++
		}
	}
	return out, stats, nil
}
