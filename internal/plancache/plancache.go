// Package plancache memoizes the runtime's derived per-pattern metadata —
// AM-table sets and communication plans — so that repeated section
// operations pay the construction cost once.
//
// Section 6.1 of the paper observes that when the input parameters
// p, k, l and s are compile-time constants "the compiler could compute
// the table of memory gaps for each processor … the code that computes
// the basis vectors R and L would have to be executed only once." An
// iterative solver (Jacobi, CG) presents the runtime with exactly that
// situation dynamically: every sweep reuses the same (p, k, l, s)
// configurations and the same (source layout, destination layout,
// section) communication patterns. This package is the runtime analogue
// of the paper's compile-time hoisting: a concurrency-safe, sharded,
// bounded LRU keyed by those parameters.
//
// The cache is generic; each consumer (core table sets here, section
// plans in internal/hpf, communication plans in internal/comm) supplies
// its own key type and hash. Shards are independent mutex-protected LRU
// lists, so concurrent SPMD processors touching different patterns do
// not contend; concurrent misses on one key are coalesced onto a single
// build (GetOrCompute); hit, miss, eviction and coalesced-waiter
// counters make the amortization observable (examples, benchtables and
// the hpfd plan service report them).
package plancache

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// numShards is the fixed shard count. Shard selection is hash-based, so
// a small power of two suffices to decorrelate concurrent access
// patterns without bloating tiny caches.
const numShards = 8

// Stats is a point-in-time snapshot of a cache's counters.
//
// Misses counts builds actually started: with GetOrCompute's request
// coalescing, a thundering herd of n concurrent misses on one cold key
// records exactly one miss (the build) and n−1 Coalesced waiters, so
// Misses equals the number of build invocations.
type Stats struct {
	Hits, Misses, Evictions int64
	Entries                 int64
	// Coalesced counts GetOrCompute callers that joined an in-flight
	// build of their key instead of running build themselves.
	Coalesced int64
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a sharded, bounded, concurrency-safe LRU map. The zero value
// is not usable; construct with New.
type Cache[K comparable, V any] struct {
	hash   func(K) uint64
	shards [numShards]shard[K, V]
}

type node[K comparable, V any] struct {
	key        K
	val        V
	prev, next *node[K, V] // MRU list; head is most recent
}

type shard[K comparable, V any] struct {
	mu         sync.Mutex
	capacity   int
	entries    map[K]*node[K, V]
	head, tail *node[K, V]

	// inflight tracks keys whose build is currently running, so
	// GetOrCompute coalesces concurrent misses onto one build.
	inflight map[K]*flight[V]

	// Counters are atomics so Stats and Snapshot read them without the
	// shard mutex: no torn reads under the race detector, and snapshots
	// never contend with the lookup path.
	hits, misses, evictions atomic.Int64
	coalesced               atomic.Int64
	entryCount              atomic.Int64
}

// flight is one in-progress build. done is closed exactly once, after
// val/err/note are final; waiters block on it and then read the fields.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
	// note is an opaque builder-published tag (hpfd publishes the build
	// span's ID so coalesced waiters can link their wait span to the
	// winning build's trace). Written only by the builder before done
	// closes; the channel close is the happens-before edge that makes it
	// safe for waiters to read.
	note uint64
}

// FlightOutcome reports how GetOrComputeFlight satisfied a lookup.
type FlightOutcome int

const (
	// FlightHit means the value was already cached.
	FlightHit FlightOutcome = iota
	// FlightBuilt means this caller ran the build.
	FlightBuilt
	// FlightCoalesced means this caller waited on another caller's
	// in-flight build of the same key.
	FlightCoalesced
)

// String names the outcome for logs and metrics.
func (o FlightOutcome) String() string {
	switch o {
	case FlightHit:
		return "hit"
	case FlightBuilt:
		return "built"
	case FlightCoalesced:
		return "coalesced"
	}
	return "unknown"
}

// New returns a cache holding at most capacity entries in total,
// uniformly split over the shards (at least one entry per shard). hash
// maps a key to a shard; it must be deterministic. Use Mix to build
// hashes from integer key fields.
func New[K comparable, V any](capacity int, hash func(K) uint64) *Cache[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	perShard := (capacity + numShards - 1) / numShards
	c := &Cache[K, V]{hash: hash}
	for i := range c.shards {
		c.shards[i].capacity = perShard
		c.shards[i].entries = make(map[K]*node[K, V])
		c.shards[i].inflight = make(map[K]*flight[V])
	}
	return c
}

func (c *Cache[K, V]) shard(k K) *shard[K, V] {
	return &c.shards[c.hash(k)%numShards]
}

// Get returns the cached value for k and marks it most recently used.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if n, ok := s.entries[k]; ok {
		s.hits.Add(1)
		s.touch(n)
		return n.val, true
	}
	s.misses.Add(1)
	var zero V
	return zero, false
}

// Put inserts or refreshes k → v, evicting the least recently used entry
// of k's shard if the shard is full.
func (c *Cache[K, V]) Put(k K, v V) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.put(k, v)
}

// GetOrCompute returns the cached value for k, computing and inserting
// it via build on a miss. Concurrent misses on the same key are
// coalesced: exactly one caller runs build (counted as the single miss)
// while the others wait on the in-flight result and are counted as
// Coalesced, so a thundering herd on a cold key performs one
// construction. A build error propagates to every coalesced waiter and
// is never cached — the next GetOrCompute after a failure retries the
// build. A panic in build is converted to an error for the waiters and
// re-raised in the building goroutine.
func (c *Cache[K, V]) GetOrCompute(k K, build func() (V, error)) (V, error) {
	v, _, _, err := c.getOrCompute(k, build, nil)
	return v, err
}

// GetOrComputeFlight is GetOrCompute with the coalescing made visible:
// it additionally reports whether this caller hit the cache, ran the
// build, or waited on another caller's build, and relays the builder's
// note. The builder may call note(tag) at most once before returning
// (hpfd publishes its build span's ID); the same tag is returned to the
// builder and to every coalesced waiter of that flight, and is 0 on a
// cache hit or when the builder never called note.
func (c *Cache[K, V]) GetOrComputeFlight(k K, build func(note func(uint64)) (V, error)) (V, FlightOutcome, uint64, error) {
	return c.getOrCompute(k, nil, build)
}

// getOrCompute implements both build-signature variants. Exactly one of
// plain and noted is non-nil; keeping the plain variant closure-free
// preserves the zero-allocation warm paths its callers rely on.
func (c *Cache[K, V]) getOrCompute(k K, plain func() (V, error), noted func(func(uint64)) (V, error)) (V, FlightOutcome, uint64, error) {
	s := c.shard(k)
	s.mu.Lock()
	if n, ok := s.entries[k]; ok {
		s.hits.Add(1)
		s.touch(n)
		v := n.val
		s.mu.Unlock()
		return v, FlightHit, 0, nil
	}
	if f, ok := s.inflight[k]; ok {
		s.coalesced.Add(1)
		s.mu.Unlock()
		<-f.done
		return f.val, FlightCoalesced, f.note, f.err
	}
	f := &flight[V]{done: make(chan struct{})}
	s.inflight[k] = f
	s.misses.Add(1)
	s.mu.Unlock()

	defer func() {
		r := recover()
		s.mu.Lock()
		// The shard may have been Reset while the build ran; delete by
		// identity so a successor flight for the same key survives.
		if s.inflight[k] == f {
			delete(s.inflight, k)
		}
		if r == nil && f.err == nil {
			s.put(k, f.val)
		}
		s.mu.Unlock()
		if r != nil {
			f.err = fmt.Errorf("plancache: build for key %v panicked: %v", k, r)
		}
		close(f.done)
		if r != nil {
			panic(r)
		}
	}()
	if plain != nil {
		f.val, f.err = plain()
	} else {
		f.val, f.err = noted(func(tag uint64) { f.note = tag })
	}
	return f.val, FlightBuilt, f.note, f.err
}

// Len returns the current number of cached entries.
func (c *Cache[K, V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Stats sums the per-shard counters. Reads are atomic and lock-free;
// concurrent lookups may land between shard reads, so the totals are a
// consistent-enough point-in-time view, never torn values.
func (c *Cache[K, V]) Stats() Stats {
	var st Stats
	for i := range c.shards {
		s := &c.shards[i]
		st.Hits += s.hits.Load()
		st.Misses += s.misses.Load()
		st.Evictions += s.evictions.Load()
		st.Entries += s.entryCount.Load()
		st.Coalesced += s.coalesced.Load()
	}
	return st
}

// Snapshot returns the per-shard counters, indexed by shard. Like
// Stats, it reads atomically without taking any shard mutex.
func (c *Cache[K, V]) Snapshot() []Stats {
	out := make([]Stats, numShards)
	for i := range c.shards {
		s := &c.shards[i]
		out[i] = Stats{
			Hits:      s.hits.Load(),
			Misses:    s.misses.Load(),
			Evictions: s.evictions.Load(),
			Entries:   s.entryCount.Load(),
			Coalesced: s.coalesced.Load(),
		}
	}
	return out
}

// Register publishes the cache's aggregate counters as computed gauges
// in the process-wide telemetry registry under
// plancache.<name>.{hits,misses,evictions,entries}, so registry dumps
// (hpfsim -metrics, benchtables -json, the examples) carry every
// cache's hit rates without bespoke reporting code. A name already
// registered — by this cache or any other — is an error: two caches
// sharing a name would silently shadow each other's gauges.
func (c *Cache[K, V]) Register(name string) error {
	r := telemetry.Default()
	prefix := "plancache." + name + "."
	for suffix, f := range map[string]func() int64{
		"hits":      func() int64 { return c.Stats().Hits },
		"misses":    func() int64 { return c.Stats().Misses },
		"evictions": func() int64 { return c.Stats().Evictions },
		"entries":   func() int64 { return c.Stats().Entries },
		"coalesced": func() int64 { return c.Stats().Coalesced },
	} {
		if err := r.RegisterGaugeFunc(prefix+suffix, f); err != nil {
			return fmt.Errorf("plancache: register %q: %w", name, err)
		}
	}
	return nil
}

// Reset drops every entry and zeroes the counters.
func (c *Cache[K, V]) Reset() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.entries = make(map[K]*node[K, V])
		s.head, s.tail = nil, nil
		s.hits.Store(0)
		s.misses.Store(0)
		s.evictions.Store(0)
		s.coalesced.Store(0)
		s.entryCount.Store(0)
		s.mu.Unlock()
	}
}

// put assumes s.mu is held.
func (s *shard[K, V]) put(k K, v V) {
	if n, ok := s.entries[k]; ok {
		n.val = v
		s.touch(n)
		return
	}
	n := &node[K, V]{key: k, val: v}
	s.entries[k] = n
	s.pushFront(n)
	if len(s.entries) > s.capacity {
		lru := s.tail
		s.unlink(lru)
		delete(s.entries, lru.key)
		s.evictions.Add(1)
	}
	s.entryCount.Store(int64(len(s.entries)))
}

// touch moves n to the front of the MRU list. s.mu must be held.
func (s *shard[K, V]) touch(n *node[K, V]) {
	if s.head == n {
		return
	}
	s.unlink(n)
	s.pushFront(n)
}

func (s *shard[K, V]) pushFront(n *node[K, V]) {
	n.prev = nil
	n.next = s.head
	if s.head != nil {
		s.head.prev = n
	}
	s.head = n
	if s.tail == nil {
		s.tail = n
	}
}

func (s *shard[K, V]) unlink(n *node[K, V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		s.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		s.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// Mix folds one integer field into a running FNV-1a hash. Start from
// Seed and chain one Mix per key field:
//
//	h := plancache.Mix(plancache.Mix(plancache.Seed, key.P), key.K)
func Mix(h uint64, x int64) uint64 {
	ux := uint64(x)
	for i := 0; i < 8; i++ {
		h ^= ux & 0xff
		h *= 1099511628211
		ux >>= 8
	}
	return h
}

// Seed is the FNV-1a offset basis, the starting value for Mix chains.
const Seed uint64 = 14695981039346656037
