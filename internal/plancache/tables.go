package plancache

import "repro/internal/core"

// TableKey identifies one AM-table configuration — exactly the
// (p, k, l, s) tuple Section 6.1 treats as compile-time constants.
type TableKey struct {
	P, K, L, S int64
}

func hashTableKey(k TableKey) uint64 {
	return Mix(Mix(Mix(Mix(Seed, k.P), k.K), k.L), k.S)
}

// tables is the process-wide TableSet cache. 256 distinct (p, k, l, s)
// configurations comfortably covers every example and benchmark sweep;
// iterative solvers use a handful.
var tables = New[TableKey, *core.TableSet](256, hashTableKey)

func init() {
	if err := tables.Register("core.tables"); err != nil {
		panic(err)
	}
}

// Tables returns the memoized core.TableSet for (p, k, l, s),
// constructing it on first use. Iteration 2..N of a solver loop finds
// the basis vectors and the shared transition table already built — the
// paper's "executed only once" scenario, keyed at run time.
func Tables(p, k, l, s int64) (*core.TableSet, error) {
	return tables.GetOrCompute(TableKey{P: p, K: k, L: l, S: s},
		func() (*core.TableSet, error) { return core.NewTableSet(p, k, l, s) })
}

// TableStats snapshots the TableSet cache counters. Misses equal the
// number of AM-table-set constructions actually performed.
func TableStats() Stats { return tables.Stats() }

// ResetTables drops all cached TableSets and zeroes the counters
// (benchmarks use this to measure the cold path).
func ResetTables() { tables.Reset() }
