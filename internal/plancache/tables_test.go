package plancache

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// tableCase generates random valid (p, k, l, s, m) configurations for
// testing/quick, covering small and large strides relative to pk.
type tableCase struct {
	P, K, L, S, M int64
}

func (tableCase) Generate(r *rand.Rand, _ int) reflect.Value {
	p := r.Int63n(12) + 1
	k := r.Int63n(40) + 1
	var s int64
	switch r.Intn(4) {
	case 0:
		s = r.Int63n(8) + 1
	case 1:
		s = p*k - 1
		if s < 1 {
			s = 1
		}
	case 2:
		s = p*k + 1
	default:
		s = r.Int63n(3*p*k) + 1
	}
	return reflect.ValueOf(tableCase{
		P: p, K: k,
		L: r.Int63n(4 * k),
		S: s,
		M: r.Int63n(p),
	})
}

// TestCachedTableSetMatchesLattice is the cache-correctness property:
// for randomized configurations the memoized TableSet produces exactly
// the sequence the uncached Figure 5 algorithm computes.
func TestCachedTableSetMatchesLattice(t *testing.T) {
	ResetTables()
	prop := func(tc tableCase) bool {
		ts, err := Tables(tc.P, tc.K, tc.L, tc.S)
		if err != nil {
			t.Logf("Tables(%+v): %v", tc, err)
			return false
		}
		got, err := ts.Sequence(tc.M)
		if err != nil {
			t.Logf("Sequence: %v", err)
			return false
		}
		want, err := core.Lattice(core.Problem{P: tc.P, K: tc.K, L: tc.L, S: tc.S, M: tc.M})
		if err != nil {
			t.Logf("Lattice: %v", err)
			return false
		}
		return got.Start == want.Start &&
			got.StartLocal == want.StartLocal &&
			reflect.DeepEqual(got.Gaps, want.Gaps)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCachedTableSetSeededSweep repeats the property over a fixed seeded
// sweep so the regression surface is deterministic, and checks that the
// second pass over the same configurations is all hits.
func TestCachedTableSetSeededSweep(t *testing.T) {
	ResetTables()
	r := rand.New(rand.NewSource(42))
	type cfg struct{ p, k, l, s int64 }
	var cfgs []cfg
	for i := 0; i < 60; i++ {
		p := r.Int63n(8) + 1
		k := r.Int63n(24) + 1
		cfgs = append(cfgs, cfg{p, k, r.Int63n(3 * k), r.Int63n(2*p*k) + 1})
	}
	check := func() {
		for _, c := range cfgs {
			ts, err := Tables(c.p, c.k, c.l, c.s)
			if err != nil {
				t.Fatalf("Tables(%+v): %v", c, err)
			}
			for m := int64(0); m < c.p; m++ {
				got, err := ts.Sequence(m)
				if err != nil {
					t.Fatal(err)
				}
				want, err := core.Lattice(core.Problem{P: c.p, K: c.k, L: c.l, S: c.s, M: m})
				if err != nil {
					t.Fatal(err)
				}
				if got.Start != want.Start || !reflect.DeepEqual(got.Gaps, want.Gaps) {
					t.Fatalf("cfg %+v m=%d: cached %v != uncached %v", c, m, got, want)
				}
			}
		}
	}
	check()
	before := TableStats()
	check() // warm pass
	after := TableStats()
	if misses := after.Misses - before.Misses; misses != 0 {
		t.Fatalf("warm pass performed %d table constructions, want 0", misses)
	}
	if after.Hits <= before.Hits {
		t.Fatal("warm pass recorded no hits")
	}
}

// TestTablesConcurrent exercises the shared table cache from many
// goroutines (run with -race): all returned TableSets must agree with
// the uncached algorithm.
func TestTablesConcurrent(t *testing.T) {
	ResetTables()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				p := r.Int63n(6) + 1
				k := r.Int63n(10) + 1
				s := r.Int63n(2*p*k) + 1
				ts, err := Tables(p, k, 0, s)
				if err != nil {
					t.Error(err)
					return
				}
				m := r.Int63n(p)
				got, err := ts.Sequence(m)
				if err != nil {
					t.Error(err)
					return
				}
				want, _ := core.Lattice(core.Problem{P: p, K: k, S: s, M: m})
				if !reflect.DeepEqual(got.Gaps, want.Gaps) {
					t.Errorf("p=%d k=%d s=%d m=%d: %v != %v", p, k, s, m, got.Gaps, want.Gaps)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
}
