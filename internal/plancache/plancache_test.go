package plancache

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func intHash(k int64) uint64 { return Mix(Seed, k) }

// oneShard funnels every key into a single shard so LRU order is
// observable deterministically.
func oneShard(capacity int) *Cache[int64, int64] {
	return New[int64, int64](capacity, func(int64) uint64 { return 0 })
}

func TestGetPut(t *testing.T) {
	c := New[int64, int64](64, intHash)
	if _, ok := c.Get(1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(1, 100)
	if v, ok := c.Get(1); !ok || v != 100 {
		t.Fatalf("Get(1) = %d, %v", v, ok)
	}
	c.Put(1, 200) // refresh
	if v, _ := c.Get(1); v != 200 {
		t.Fatalf("refresh lost: got %d", v)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// Capacity rounds up to ceil(3/8) = 1 per shard; with one shard the
	// whole cache holds one entry... use capacity 3*numShards to get
	// exactly 3 in the single shard.
	c := oneShard(3 * numShards)
	c.Put(1, 1)
	c.Put(2, 2)
	c.Put(3, 3)
	c.Get(1) // 1 becomes MRU; LRU order now 2, 3, 1
	c.Put(4, 4)
	if _, ok := c.Get(2); ok {
		t.Fatal("2 should have been evicted (was LRU)")
	}
	for _, k := range []int64{1, 3, 4} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%d missing after eviction of 2", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestCapacityBound(t *testing.T) {
	const capacity = 16
	c := New[int64, int64](capacity, intHash)
	for i := int64(0); i < 1000; i++ {
		c.Put(i, i)
	}
	if n := c.Len(); n > capacity {
		t.Fatalf("cache holds %d entries, capacity %d", n, capacity)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite 1000 inserts into capacity 16")
	}
}

// TestGetOrComputeHerd is the thundering-herd regression test: 64
// goroutines miss one cold key simultaneously, and the build must run
// exactly once — the other 63 coalesce onto the in-flight build. The
// stats must agree: one miss, 63 coalesced waiters, zero or more hits
// (a goroutine arriving after the build completes scores a hit).
func TestGetOrComputeHerd(t *testing.T) {
	c := New[int64, int64](64, intHash)
	const herd = 64
	var builds atomic.Int64
	// The build blocks until all herd-1 waiters have coalesced onto it
	// (Coalesced reads atomics, so polling from inside build is safe),
	// making the assertion below deterministic rather than timing-based.
	build := func() (int64, error) {
		builds.Add(1)
		deadline := time.Now().Add(10 * time.Second)
		for c.Stats().Coalesced < herd-1 {
			if time.Now().After(deadline) {
				return 0, fmt.Errorf("waiters never coalesced: %+v", c.Stats())
			}
			runtime.Gosched()
		}
		return 42, nil
	}
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.GetOrCompute(9, build)
			if err != nil || v != 42 {
				t.Errorf("GetOrCompute = %d, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("build ran %d times under a %d-goroutine herd, want exactly 1", n, herd)
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want exactly 1 per build", st.Misses)
	}
	if st.Coalesced != herd-1 || st.Hits != 0 {
		t.Errorf("stats = %+v, want %d coalesced waiters and 0 hits", st, herd-1)
	}
}

// TestGetOrComputeErrorPropagates: a failed build reaches every
// coalesced waiter, nothing is cached, and a later call retries.
func TestGetOrComputeErrorPropagates(t *testing.T) {
	c := New[int64, int64](64, intHash)
	const herd = 16
	wantErr := fmt.Errorf("boom")
	var builds atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.GetOrCompute(3, func() (int64, error) {
				builds.Add(1)
				deadline := time.Now().Add(10 * time.Second)
				for c.Stats().Coalesced < herd-1 {
					if time.Now().After(deadline) {
						return 0, fmt.Errorf("waiters never coalesced: %+v", c.Stats())
					}
					runtime.Gosched()
				}
				return 0, wantErr
			})
		}(i)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("build ran %d times, want 1", n)
	}
	for i, err := range errs {
		if err != wantErr {
			t.Errorf("goroutine %d got err %v, want %v", i, err, wantErr)
		}
	}
	if _, ok := c.Get(3); ok {
		t.Fatal("failed build was cached")
	}
	// The failure is not sticky: the next call retries the build.
	v, err := c.GetOrCompute(3, func() (int64, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry after failure = %d, %v", v, err)
	}
}

// TestGetOrComputePanicPropagates: a panicking build re-raises in the
// building goroutine and surfaces as an error (not a hang, not a zero
// value with nil error) for every coalesced waiter.
func TestGetOrComputePanicPropagates(t *testing.T) {
	c := New[int64, int64](64, intHash)
	// entered closes once the panicking build is running, so the waiter
	// below can only ever coalesce onto it (never become the builder).
	entered := make(chan struct{})
	waited := make(chan error, 1)
	go func() {
		<-entered
		_, err := c.GetOrCompute(5, func() (int64, error) { return 11, nil })
		waited <- err
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate to the building caller")
			}
		}()
		c.GetOrCompute(5, func() (int64, error) {
			close(entered)
			deadline := time.Now().Add(10 * time.Second)
			for c.Stats().Coalesced < 1 { // hold the flight until the waiter joins
				if time.Now().After(deadline) {
					t.Error("waiter never coalesced")
					break
				}
				runtime.Gosched()
			}
			panic("kaboom")
		})
	}()
	select {
	case err := <-waited:
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Errorf("coalesced waiter error = %v, want one mentioning the panic", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("coalesced waiter hung after the build panicked")
	}
	if _, ok := c.Get(5); ok {
		t.Fatal("panicked build was cached")
	}
}

func TestGetOrCompute(t *testing.T) {
	c := New[int64, int64](64, intHash)
	calls := 0
	build := func() (int64, error) { calls++; return 7, nil }
	for i := 0; i < 3; i++ {
		v, err := c.GetOrCompute(5, build)
		if err != nil || v != 7 {
			t.Fatalf("GetOrCompute = %d, %v", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("build ran %d times, want 1", calls)
	}
	// Errors are not cached.
	wantErr := fmt.Errorf("boom")
	if _, err := c.GetOrCompute(6, func() (int64, error) { return 0, wantErr }); err != wantErr {
		t.Fatalf("err = %v", err)
	}
	if _, ok := c.Get(6); ok {
		t.Fatal("failed build was cached")
	}
}

func TestReset(t *testing.T) {
	c := New[int64, int64](64, intHash)
	c.Put(1, 1)
	c.Get(1)
	c.Reset()
	if c.Len() != 0 {
		t.Fatal("entries survive Reset")
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("counters survive Reset: %+v", st)
	}
	if _, ok := c.Get(1); ok {
		t.Fatal("value survives Reset")
	}
}

// TestSnapshotPerShard checks that Snapshot exposes one Stats entry per
// shard and that the per-shard values sum to the aggregate Stats.
func TestSnapshotPerShard(t *testing.T) {
	c := New[int64, int64](64, intHash)
	for k := int64(0); k < 32; k++ {
		c.Put(k, k)
	}
	for k := int64(0); k < 32; k++ {
		c.Get(k)      // hit
		c.Get(k + 64) // miss
	}
	shards := c.Snapshot()
	if len(shards) != numShards {
		t.Fatalf("Snapshot() has %d entries, want %d", len(shards), numShards)
	}
	var sum Stats
	for _, s := range shards {
		sum.Hits += s.Hits
		sum.Misses += s.Misses
		sum.Evictions += s.Evictions
		sum.Entries += s.Entries
		sum.Coalesced += s.Coalesced
	}
	if got := c.Stats(); sum != got {
		t.Errorf("per-shard sum %+v != aggregate %+v", sum, got)
	}
	if sum.Hits != 32 || sum.Misses != 32 || sum.Entries != 32 {
		t.Errorf("totals = %+v, want 32 hits / 32 misses / 32 entries", sum)
	}
}

// TestSnapshotConcurrent reads Snapshot while writers hammer the cache
// (Put, Get and coalescing GetOrCompute); under -race this proves the
// counters are read atomically, and the concurrent assertions pin the
// invariants that must hold even mid-herd: counters never go negative,
// and no shard ever reports more entries than its capacity. At
// quiescence the aggregate Entries must equal Len() exactly — the herd
// no longer inflates the miss/entry accounting.
func TestSnapshotConcurrent(t *testing.T) {
	const capacity = 16
	c := New[int64, int64](capacity, intHash)
	perShard := (capacity + numShards - 1) / numShards
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				k := r.Int63n(64)
				c.Put(k, k)
				c.Get(r.Int63n(64))
				k2 := r.Int63n(64)
				if v, err := c.GetOrCompute(k2, func() (int64, error) { return k2, nil }); err != nil || v != k2 {
					t.Errorf("GetOrCompute(%d) = %d, %v", k2, v, err)
					return
				}
			}
		}(int64(w))
	}
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				for i, s := range c.Snapshot() {
					if s.Hits < 0 || s.Misses < 0 || s.Entries < 0 || s.Coalesced < 0 {
						t.Error("negative counter in snapshot")
						return
					}
					if s.Entries > int64(perShard) {
						t.Errorf("shard %d reports %d entries, capacity %d", i, s.Entries, perShard)
						return
					}
				}
			}
		}
	}()
	wg.Wait()
	close(done)
	if st := c.Stats(); st.Entries != int64(c.Len()) {
		t.Errorf("quiescent Entries %d != Len %d", st.Entries, c.Len())
	}
}

// TestConcurrentTinyCapacity hammers a tiny cache from many goroutines
// so gets, puts and evictions interleave; run with -race. Values must
// always equal their key (no cross-key corruption).
func TestConcurrentTinyCapacity(t *testing.T) {
	c := New[int64, int64](2, intHash) // 1 entry per shard: constant eviction
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				k := r.Int63n(32)
				switch r.Intn(3) {
				case 0:
					c.Put(k, k*10)
				case 1:
					if v, ok := c.Get(k); ok && v != k*10 {
						t.Errorf("Get(%d) = %d", k, v)
						return
					}
				default:
					v, err := c.GetOrCompute(k, func() (int64, error) { return k * 10, nil })
					if err != nil || v != k*10 {
						t.Errorf("GetOrCompute(%d) = %d, %v", k, v, err)
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	st := c.Stats()
	if st.Evictions == 0 {
		t.Error("expected evictions under tiny capacity")
	}
	if st.Entries > 2*numShards {
		t.Errorf("entries %d exceed bound", st.Entries)
	}
}

func TestMixSpreads(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := int64(0); i < 64; i++ {
		seen[Mix(Seed, i)%numShards] = true
	}
	if len(seen) < 2 {
		t.Fatal("Mix maps all small keys to one shard")
	}
}

// TestRegisterDuplicateName is the regression test for the silent
// gauge-shadowing bug: two caches registering the same telemetry name
// used to overwrite each other's computed gauges without complaint.
func TestRegisterDuplicateName(t *testing.T) {
	a := New[int64, int64](8, func(k int64) uint64 { return Mix(Seed, k) })
	b := New[int64, int64](8, func(k int64) uint64 { return Mix(Seed, k) })
	if err := a.Register("dup.test"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, suffix := range []string{"hits", "misses", "evictions", "entries", "coalesced"} {
			telemetry.Default().UnregisterGaugeFunc("plancache.dup.test." + suffix)
		}
	}()
	if err := b.Register("dup.test"); err == nil {
		t.Fatal("second Register of the same name should fail")
	}
	// The first cache's gauges must still be the ones published.
	a.Put(1, 1)
	a.Get(1)
	if got := telemetry.Default().Snapshot().Gauges["plancache.dup.test.hits"]; got != 1 {
		t.Errorf("published hits = %d, want 1 (cache a's counter)", got)
	}
}

// TestGetOrComputeFlight covers the three outcomes and the note relay:
// the builder's note must reach every coalesced waiter of that flight,
// a hit carries no note, and the outcomes count into the same stats as
// GetOrCompute.
func TestGetOrComputeFlight(t *testing.T) {
	c := New[int64, int64](64, intHash)
	const herd = 16
	const tag = uint64(0xabcdef0123456789)

	build := func(note func(uint64)) (int64, error) {
		note(tag)
		deadline := time.Now().Add(10 * time.Second)
		for c.Stats().Coalesced < herd-1 {
			if time.Now().After(deadline) {
				return 0, fmt.Errorf("waiters never coalesced: %+v", c.Stats())
			}
			runtime.Gosched()
		}
		return 7, nil
	}
	var wg sync.WaitGroup
	var built, coalesced atomic.Int64
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, outcome, note, err := c.GetOrComputeFlight(3, build)
			if err != nil || v != 7 {
				t.Errorf("GetOrComputeFlight = %d, %v", v, err)
			}
			if note != tag {
				t.Errorf("outcome %v got note %x, want %x", outcome, note, tag)
			}
			switch outcome {
			case FlightBuilt:
				built.Add(1)
			case FlightCoalesced:
				coalesced.Add(1)
			default:
				t.Errorf("unexpected outcome %v on a cold key", outcome)
			}
		}()
	}
	wg.Wait()
	if built.Load() != 1 || coalesced.Load() != herd-1 {
		t.Fatalf("built = %d, coalesced = %d; want 1 and %d", built.Load(), coalesced.Load(), herd-1)
	}

	// Warm lookup: a hit, no note, build not invoked.
	v, outcome, note, err := c.GetOrComputeFlight(3, func(func(uint64)) (int64, error) {
		t.Error("build ran on a warm key")
		return 0, nil
	})
	if err != nil || v != 7 || outcome != FlightHit || note != 0 {
		t.Fatalf("warm GetOrComputeFlight = %d, %v, %x, %v", v, outcome, note, err)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Coalesced != herd-1 || st.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestGetOrComputeFlightNoNote: a builder that never publishes a note
// yields 0 to itself and its waiters.
func TestGetOrComputeFlightNoNote(t *testing.T) {
	c := New[int64, int64](8, intHash)
	v, outcome, note, err := c.GetOrComputeFlight(1, func(func(uint64)) (int64, error) {
		return 5, nil
	})
	if err != nil || v != 5 || outcome != FlightBuilt || note != 0 {
		t.Fatalf("GetOrComputeFlight = %d, %v, %x, %v", v, outcome, note, err)
	}
}

func TestFlightOutcomeString(t *testing.T) {
	for o, want := range map[FlightOutcome]string{
		FlightHit: "hit", FlightBuilt: "built", FlightCoalesced: "coalesced",
		FlightOutcome(99): "unknown",
	} {
		if got := o.String(); got != want {
			t.Errorf("FlightOutcome(%d).String() = %q, want %q", int(o), got, want)
		}
	}
}
