package lattice

import (
	"math/rand"
	"testing"
)

// The paper's running example: p = 4, k = 8 (P = 32), s = 9.
func paperLattice(t *testing.T) *Lattice {
	t.Helper()
	l, err := New(4, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 8, 9); err == nil {
		t.Error("p=0 should fail")
	}
	if _, err := New(4, 0, 9); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := New(4, 8, 0); err == nil {
		t.Error("s=0 should fail")
	}
	if _, err := New(4, 8, -3); err == nil {
		t.Error("negative stride should fail")
	}
	if _, err := New(1<<31, 1<<31, 2); err == nil {
		t.Error("overflowing p*k should fail")
	}
}

func TestPointFor(t *testing.T) {
	l := paperLattice(t)
	// Section 3's example: the basis segment endpoints. Point for i = 11:
	// 11*9 = 99 = 3*32 + 3 -> (3, 3).
	pt := l.PointFor(11)
	if pt.B != 3 || pt.A != 3 {
		t.Errorf("PointFor(11) = %v, want (3,3)", pt)
	}
	// i = 7: 63 = 1*32 + 31 -> (31, 1)... paper instead uses (-1, 2):
	// 2*32 - 1 = 63. Both satisfy the equation; PointFor canonicalizes to
	// 0 <= b < P.
	pt = l.PointFor(7)
	if pt.A*32+pt.B != 63 || pt.B < 0 || pt.B >= 32 {
		t.Errorf("PointFor(7) = %v not canonical", pt)
	}
	// Negative index.
	pt = l.PointFor(-3)
	if pt.A*32+pt.B != -27 || pt.B < 0 || pt.B >= 32 {
		t.Errorf("PointFor(-3) = %v not canonical", pt)
	}
	if pt.B != 5 || pt.A != -1 {
		t.Errorf("PointFor(-3) = %v, want (5,-1)", pt)
	}
}

func TestContains(t *testing.T) {
	l := paperLattice(t)
	for i := int64(-20); i <= 20; i++ {
		pt := l.PointFor(i)
		if !l.Contains(pt.B, pt.A) {
			t.Errorf("Contains(PointFor(%d)) = false", i)
		}
	}
	// (1, 0): 0*32+1 = 1, not divisible by 9.
	if l.Contains(1, 0) {
		t.Error("Contains(1,0) should be false")
	}
}

func TestClosedUnderSubtraction(t *testing.T) {
	// Theorem 1: differences of lattice points are lattice points.
	l := paperLattice(t)
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		p1 := l.PointFor(r.Int63n(100) - 50)
		p2 := l.PointFor(r.Int63n(100) - 50)
		d := p1.Sub(p2)
		if !l.Contains(d.B, d.A) {
			t.Fatalf("difference %v of %v and %v not in lattice", d, p1, p2)
		}
		if d.A*l.P+d.B != d.I*l.S {
			t.Fatalf("index bookkeeping broken: %v", d)
		}
	}
}

func TestSmallestIndexWithOffset(t *testing.T) {
	l := paperLattice(t)
	// From the paper's Section 4 walk-through (p=4, k=8, s=9): offsets 1..7
	// have smallest indices 225, 162, 99, 36, 261, 198, 135 -> i = loc/9.
	want := map[int64]int64{1: 25, 2: 18, 3: 11, 4: 4, 5: 29, 6: 22, 7: 15}
	for b, wi := range want {
		pt, ok := l.SmallestIndexWithOffset(b)
		if !ok {
			t.Fatalf("offset %d should be solvable", b)
		}
		if pt.I != wi {
			t.Errorf("SmallestIndexWithOffset(%d).I = %d, want %d", b, pt.I, wi)
		}
		if pt.B != b {
			t.Errorf("SmallestIndexWithOffset(%d).B = %d", b, pt.B)
		}
	}
	// d > 1 case: s = 6, P = 32, d = 2. Offset 3 unsolvable.
	l2, _ := New(4, 8, 6)
	if _, ok := l2.SmallestIndexWithOffset(3); ok {
		t.Error("offset 3 should be unsolvable for s=6, P=32")
	}
	pt, ok := l2.SmallestIndexWithOffset(4)
	if !ok || pt.B != 4 {
		t.Errorf("offset 4 for s=6: %v, %v", pt, ok)
	}
	// The index must be the smallest: verify by brute force.
	for i := int64(0); i < pt.I; i++ {
		if l2.PointFor(i).B == 4 {
			t.Errorf("index %d < %d also has offset 4", i, pt.I)
		}
	}
}

func TestIsBasisPaperExample(t *testing.T) {
	// Section 3: (3,3) with i=11 and (-1,2) with i=7 form a basis since
	// 3*7 - 2*11 = -1.
	v1 := Point{B: 3, A: 3, I: 11}
	v2 := Point{B: -1, A: 2, I: 7}
	if !IsBasis(v1, v2) {
		t.Error("paper's example basis rejected")
	}
	// (3,3)@11 and (6,6)@22 are linearly dependent.
	if IsBasis(v1, Point{B: 6, A: 6, I: 22}) {
		t.Error("dependent vectors accepted as basis")
	}
}

func TestAnyBasis(t *testing.T) {
	l := paperLattice(t)
	v1, v2, single := l.AnyBasis()
	if single {
		t.Fatal("P=32, S=9 is not the single-vector case")
	}
	if !IsBasis(v1, v2) {
		t.Errorf("AnyBasis returned non-basis %v, %v", v1, v2)
	}
	// Both must be lattice points.
	for _, v := range []Point{v1, v2} {
		if v.A*l.P+v.B != v.I*l.S {
			t.Errorf("AnyBasis vector %v not on lattice", v)
		}
	}
	// Single-vector case: P | S.
	l2, _ := New(4, 8, 64)
	_, _, single = l2.AnyBasis()
	if !single {
		t.Error("P=32, S=64 should be the single-vector case")
	}
}

func TestRLPaperExample(t *testing.T) {
	l := paperLattice(t)
	b, ok := l.RL()
	if !ok {
		t.Fatal("RL should succeed for the paper example")
	}
	if b.R.B != 4 || b.R.A != 1 {
		t.Errorf("R = %v, want (4,1)", b.R)
	}
	if b.L.B != 5 || b.L.A != -1 {
		t.Errorf("L = %v, want (5,-1)", b.L)
	}
	if b.R.I != 4 {
		t.Errorf("R.I = %d, want 4 (index 36)", b.R.I)
	}
	if b.L.I != -3 {
		t.Errorf("L.I = %d, want -3 (index -27)", b.L.I)
	}
	// Gap values used by the Figure 5 example: a_r·k + b_r = 12,
	// -(a_l·k + b_l) = 3.
	if b.GapR != 12 {
		t.Errorf("GapR = %d, want 12", b.GapR)
	}
	if b.GapL != 3 {
		t.Errorf("GapL = %d, want 3", b.GapL)
	}
	if err := l.Verify(b); err != nil {
		t.Errorf("Verify failed: %v", err)
	}
	if !IsBasis(b.R, b.L) {
		t.Error("R, L should form a basis")
	}
}

func TestRLDegenerateCases(t *testing.T) {
	// k = 1: no offsets in (0, 1).
	l, _ := New(4, 1, 3)
	if _, ok := l.RL(); ok {
		t.Error("k=1 should have no R/L basis")
	}
	// d >= k: s = 16, P = 32, d = 16 >= k = 8.
	l2, _ := New(4, 8, 16)
	if _, ok := l2.RL(); ok {
		t.Error("d >= k should have no R/L basis")
	}
	// P | s.
	l3, _ := New(4, 8, 32)
	if _, ok := l3.RL(); ok {
		t.Error("P | s should have no R/L basis")
	}
}

// TestRLInvariantsSweep verifies the Section 4 construction across a broad
// parameter sweep: R/L are lattice points with offsets in (0,k), R has the
// smallest positive index with such an offset, L the largest negative one,
// and they form a basis.
func TestRLInvariantsSweep(t *testing.T) {
	for _, p := range []int64{1, 2, 3, 4, 7, 32} {
		for _, k := range []int64{2, 3, 4, 8, 16} {
			for _, s := range []int64{1, 2, 3, 5, 7, 9, 15, 31, 33, 63, 97} {
				l, err := New(p, k, s)
				if err != nil {
					t.Fatal(err)
				}
				b, ok := l.RL()
				if !ok {
					if l.D < k {
						t.Errorf("p=%d k=%d s=%d: RL failed but d=%d < k", p, k, s, l.D)
					}
					continue
				}
				if err := l.Verify(b); err != nil {
					t.Errorf("p=%d k=%d s=%d: %v", p, k, s, err)
					continue
				}
				// Brute-force the extremal indices: R.I must be the smallest
				// i > 0 with offset in (0,k); L.I the largest i < 0 likewise.
				limit := l.P / l.D * 2
				bruteR, bruteL := int64(0), int64(0)
				for i := int64(1); i <= limit; i++ {
					if pt := l.PointFor(i); pt.B > 0 && pt.B < k {
						bruteR = i
						break
					}
				}
				for i := int64(-1); i >= -limit; i-- {
					if pt := l.PointFor(i); pt.B > 0 && pt.B < k {
						bruteL = i
						break
					}
				}
				if b.R.I != bruteR {
					t.Errorf("p=%d k=%d s=%d: R.I = %d, brute %d", p, k, s, b.R.I, bruteR)
				}
				if b.L.I != bruteL {
					t.Errorf("p=%d k=%d s=%d: L.I = %d, brute %d", p, k, s, b.L.I, bruteL)
				}
			}
		}
	}
}

// TestEmptyTriangle verifies the defining property used in Theorem 2's
// proof: no lattice point lies strictly inside the triangle (0,0), R, L
// with offset coordinate in (0, k).
func TestEmptyTriangle(t *testing.T) {
	for _, s := range []int64{3, 7, 9, 11, 25} {
		l, err := New(4, 8, s)
		if err != nil {
			t.Fatal(err)
		}
		b, ok := l.RL()
		if !ok {
			continue
		}
		for i := b.L.I + 1; i < b.R.I; i++ {
			if i == 0 {
				continue
			}
			pt := l.PointFor(i)
			if pt.B > 0 && pt.B < l.K {
				t.Errorf("s=%d: index %d -> %v lies between L and R with offset in (0,k)",
					s, i, pt)
			}
		}
	}
}

func TestPointArithmetic(t *testing.T) {
	a := Point{B: 3, A: 1, I: 2}
	bb := Point{B: -1, A: 2, I: 5}
	if got := a.Add(bb); got != (Point{B: 2, A: 3, I: 7}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(bb); got != (Point{B: 4, A: -1, I: -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Neg(); got != (Point{B: -3, A: -1, I: -2}) {
		t.Errorf("Neg = %v", got)
	}
}

func TestVerifyRejectsBadBasis(t *testing.T) {
	l := paperLattice(t)
	good, _ := l.RL()
	bad := good
	bad.R.B = 0 // offset must be in (0, k)
	if err := l.Verify(bad); err == nil {
		t.Error("Verify accepted R with offset 0")
	}
	bad = good
	bad.GapR++
	if err := l.Verify(bad); err == nil {
		t.Error("Verify accepted inconsistent GapR")
	}
	bad = good
	bad.L.I = 1
	if err := l.Verify(bad); err == nil {
		t.Error("Verify accepted L with positive index")
	}
}

func BenchmarkRL(b *testing.B) {
	l, _ := New(32, 512, 99)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := l.RL(); !ok {
			b.Fatal("RL failed")
		}
	}
}
