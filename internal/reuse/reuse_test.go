package reuse

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/codegen"
	"repro/internal/core"
)

// oracleDistances is the brute-force stack-distance reference: for each
// access, walk back to the previous occurrence and count distinct
// addresses in between. O(n²) — test-only.
func oracleDistances(addrs []int64) []int64 {
	out := make([]int64, len(addrs))
	for i, a := range addrs {
		out[i] = Cold
		for j := i - 1; j >= 0; j-- {
			if addrs[j] == a {
				seen := map[int64]bool{}
				for _, b := range addrs[j+1 : i] {
					seen[b] = true
				}
				out[i] = int64(len(seen))
				break
			}
		}
	}
	return out
}

func checkAgainstOracle(t *testing.T, label string, addrs []int64) {
	t.Helper()
	want := oracleDistances(addrs)
	for _, chunks := range []int{1, 2, 3, 7} {
		got := Distances(addrs, chunks)
		if len(addrs) == 0 {
			if got != nil {
				t.Fatalf("%s chunks=%d: non-nil result for empty input", label, chunks)
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s chunks=%d: distance[%d] = %d, want %d (addr %d)",
						label, chunks, i, got[i], want[i], addrs[i])
				}
			}
		}
	}
}

func TestDistancesSmallHandChecked(t *testing.T) {
	// The canonical example: a b c b a → distances ∞ ∞ ∞ 1 2.
	addrs := []int64{10, 20, 30, 20, 10}
	got := Distances(addrs, 1)
	want := []int64{Cold, Cold, Cold, 1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Distances = %v, want %v", got, want)
	}
	// Immediate repeat has distance 0.
	if got := Distances([]int64{5, 5, 5}, 1); !reflect.DeepEqual(got, []int64{Cold, 0, 0}) {
		t.Fatalf("repeat distances = %v", got)
	}
}

func TestDistancesRandomTracesAgainstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := r.Intn(300)
		span := r.Int63n(40) + 1 // small address space forces reuses
		addrs := make([]int64, n)
		for i := range addrs {
			addrs[i] = r.Int63n(span)
		}
		checkAgainstOracle(t, "random", addrs)
	}
}

// TestDistancesFigure8Shapes validates the analyzer over the address
// sequences the paper's node loops actually generate: every Figure 8
// shape family, swept twice so the second sweep's distances expose the
// layout's reuse structure.
func TestDistancesFigure8Shapes(t *testing.T) {
	families := []struct {
		name       string
		p, k, l, s int64
		u          int64
	}{
		{"cyclic1", 4, 1, 0, 3, 500},
		{"unit-stride", 4, 8, 0, 1, 500},
		{"block", 4, 512, 0, 3, 500},
		{"unroll4", 4, 4, 0, 9, 2000},
		{"unroll8", 4, 8, 1, 5, 2000},
		{"rowstride", 4, 16, 0, 5, 2000},
		{"offsetdispatch", 4, 16, 5, 23, 2000},
	}
	for _, fam := range families {
		for m := int64(0); m < fam.p; m++ {
			pr := core.Problem{P: fam.p, K: fam.k, L: fam.l, S: fam.s, M: m}
			addrs, err := pr.Addresses(fam.u)
			if err != nil {
				t.Fatalf("%s m=%d: %v", fam.name, m, err)
			}
			// Two sweeps of the same node loop: the second sweep's reuse
			// distance per element is the number of distinct addresses per
			// sweep minus locality effects.
			seq := append(append([]int64{}, addrs...), addrs...)
			if len(seq) > 600 {
				seq = seq[:600] // keep the O(n²) oracle fast
			}
			checkAgainstOracle(t, fam.name, seq)
		}
	}
}

// TestDistancesKernelWalks cross-checks against the compiled kernels'
// Walk sequences — the exact streams the access recorder captures.
func TestDistancesKernelWalks(t *testing.T) {
	pr := core.Problem{P: 4, K: 8, L: 4, S: 9, M: 1}
	addrs, err := pr.Addresses(320)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := core.Lattice(pr)
	if err != nil {
		t.Fatal(err)
	}
	sp := codegen.Spec{
		Problem: pr,
		Start:   addrs[0],
		Last:    addrs[len(addrs)-1],
		Count:   int64(len(addrs)),
		Gaps:    seq.Gaps,
	}
	kn := codegen.Select(sp)
	var walk []int64
	kn.Walk(func(a int64) { walk = append(walk, a) })
	doubled := append(append([]int64{}, walk...), walk...)
	checkAgainstOracle(t, "kernel-walk", doubled)
}

func TestDistancesChunkedMatchesSequentialLong(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	addrs := make([]int64, 20000)
	for i := range addrs {
		// Mixture of hot and cold addresses for a heavy reuse mix.
		if r.Intn(4) == 0 {
			addrs[i] = r.Int63n(64)
		} else {
			addrs[i] = r.Int63n(1 << 20)
		}
	}
	want := Distances(addrs, 1)
	for _, chunks := range []int{2, 4, 16, 37} {
		if got := Distances(addrs, chunks); !reflect.DeepEqual(got, want) {
			t.Fatalf("chunks=%d differs from sequential", chunks)
		}
	}
}

func TestHistogramAndMissEstimates(t *testing.T) {
	var h Histogram
	dists := []int64{Cold, Cold, 0, 1, 2, 3, 7, 8, 100}
	for _, d := range dists {
		h.Add(d)
	}
	if h.Total != 9 || h.Cold != 2 || h.Finite() != 7 || h.Max != 100 {
		t.Fatalf("histogram totals = %+v", h)
	}
	// Buckets: 0→{0}, 1→{1}, 2→{2,3}, 3→{7}, 4→{8}, 7→{100}.
	wantCounts := map[int]int64{0: 1, 1: 1, 2: 2, 3: 1, 4: 1, 7: 1}
	for i, c := range h.Counts {
		if c != wantCounts[i] {
			t.Fatalf("bucket %d = %d, want %d", i, c, wantCounts[i])
		}
	}
	if got := h.Mean(); got != (0+1+2+3+7+8+100)/7.0 {
		t.Fatalf("Mean = %v", got)
	}

	// LRU of size C misses cold + d ≥ C.
	ests := MissEstimates(dists, []int64{1, 4, 1024})
	if ests[0].Misses != 8 { // only d=0 hits in a 1-entry cache
		t.Fatalf("miss@1 = %d, want 8", ests[0].Misses)
	}
	if ests[1].Misses != 5 { // d ∈ {0,1,2,3} hit
		t.Fatalf("miss@4 = %d, want 5", ests[1].Misses)
	}
	if ests[2].Misses != 2 { // only cold misses remain
		t.Fatalf("miss@1024 = %d, want 2", ests[2].Misses)
	}
	if ests[2].MissRate != 2.0/9 {
		t.Fatalf("miss rate = %v", ests[2].MissRate)
	}
}

// The histogram CDF at bucket i must equal the hit rate of an LRU cache
// of capacity 2^i (replayed exactly), tying the two views together.
func TestHistogramCDFMatchesMissEstimates(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	addrs := make([]int64, 5000)
	for i := range addrs {
		addrs[i] = r.Int63n(700)
	}
	dists := Distances(addrs, 4)
	var h Histogram
	for _, d := range dists {
		h.Add(d)
	}
	for _, i := range []int{2, 5, 9} {
		c := BucketUpperBound(i) + 1 // capacity 2^i holds distances ≤ 2^i − 1
		est := MissEstimates(dists, []int64{c})[0]
		hits := int64(len(dists)) - est.Misses
		var cum int64
		for j := 0; j <= i; j++ {
			cum += h.Counts[j]
		}
		if cum != hits {
			t.Fatalf("cumulative count through bucket %d = %d, LRU(%d) hits = %d", i, cum, c, hits)
		}
		if h.CDF(i) != float64(cum)/float64(h.Total) {
			t.Fatalf("CDF(%d) inconsistent with bucket counts", i)
		}
	}
}
