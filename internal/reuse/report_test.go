package reuse

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// testDoc builds a small two-rank trace with two labeled steps.
func testDoc() *telemetry.AccessDoc {
	r := telemetry.NewAccessRecorder(2, 1024, 1)
	s1 := r.BeginStep("hpf.fill_section:constgap")
	s2 := r.BeginStep("comm.pack")
	// Rank 0: a b a b under step 1, then b a under step 2.
	for _, a := range []int64{10, 20, 10, 20} {
		r.Record(0, a, telemetry.AccessWrite, s1)
	}
	for _, a := range []int64{20, 10} {
		r.Record(0, a, telemetry.AccessRead, s2)
	}
	// Rank 1: all distinct.
	for _, a := range []int64{1, 2, 3} {
		r.Record(1, a, telemetry.AccessRead, s2)
	}
	doc := r.Doc()
	return &doc
}

func TestBuildReportProfiles(t *testing.T) {
	rep := BuildReport(testDoc(), Options{CacheSizes: []int64{2, 64}})
	if rep.Ranks != 2 || rep.Dropped != 0 || len(rep.PerRank) != 2 {
		t.Fatalf("report header = %+v", rep)
	}

	r0 := rep.PerRank[0]
	if r0.Rank != 0 || r0.Accesses != 6 || r0.Writes != 4 || r0.Reads != 2 || r0.Distinct != 2 {
		t.Fatalf("rank 0 profile = %+v", r0)
	}
	// Rank 0 distances: ∞ ∞ 1 1 0 1 → cold 2, finite {1,1,0,1}.
	if r0.Hist.Cold != 2 || r0.Hist.Max != 1 {
		t.Fatalf("rank 0 histogram = %+v", r0.Hist)
	}
	// miss@2: cold(2) only — every finite distance < 2. miss@64 same.
	if r0.MissRates[0].Misses != 2 || r0.MissRates[1].Misses != 2 {
		t.Fatalf("rank 0 miss rates = %+v", r0.MissRates)
	}

	r1 := rep.PerRank[1]
	if r1.Rank != 1 || r1.Accesses != 3 || r1.Distinct != 3 || r1.Hist.Cold != 3 {
		t.Fatalf("rank 1 profile = %+v", r1)
	}

	if len(rep.PerLabel) != 2 {
		t.Fatalf("labels = %+v", rep.PerLabel)
	}
	// Sorted: comm.pack before hpf.fill_section.
	pack, fill := rep.PerLabel[0], rep.PerLabel[1]
	if pack.Label != "comm.pack" || fill.Label != "hpf.fill_section:constgap" {
		t.Fatalf("label order = %q, %q", pack.Label, fill.Label)
	}
	// comm.pack covers rank 0's last two accesses (distances 0, 1 in the
	// full-stream context) and rank 1's three colds.
	if pack.Accesses != 5 || pack.Hist.Cold != 3 {
		t.Fatalf("pack profile = %+v", pack)
	}
	if fill.Accesses != 4 || fill.Hist.Cold != 2 {
		t.Fatalf("fill profile = %+v", fill)
	}
}

func TestBuildReportDeterministic(t *testing.T) {
	a := BuildReport(testDoc(), Options{Chunks: 3})
	b := BuildReport(testDoc(), Options{Chunks: 1})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("report differs between chunked and sequential analysis")
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(BuildReport(testDoc(), Options{Chunks: 3}))
	if !bytes.Equal(ja, jb) {
		t.Fatal("report JSON not deterministic")
	}
}

func TestReportWriteText(t *testing.T) {
	var buf bytes.Buffer
	if err := BuildReport(testDoc(), Options{}).WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"per rank:", "per operation label:", "comm.pack", "hpf.fill_section:constgap"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "WARNING") {
		t.Fatalf("unexpected truncation warning:\n%s", out)
	}
}
