package reuse

// An order-statistics splay tree over access timestamps — the classic
// Parda/Olken structure for exact LRU stack distances. Keys are the
// (unique) times of each address's most recent access; CountGreater
// answers "how many distinct addresses were touched since time t" in
// amortized O(log n) by summing right-subtree sizes on the search path.

// node is one tree entry. size counts the subtree rooted here, which is
// what turns the splay tree into an order-statistics structure.
type node struct {
	key         int64
	left, right *node
	size        int64
}

func size(n *node) int64 {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *node) fix() {
	n.size = 1 + size(n.left) + size(n.right)
}

func rotateRight(n *node) *node {
	l := n.left
	n.left = l.right
	l.right = n
	n.fix()
	l.fix()
	return l
}

func rotateLeft(n *node) *node {
	r := n.right
	n.right = r.left
	r.left = n
	n.fix()
	r.fix()
	return r
}

// splay brings the node with the given key — or the last node on its
// search path when absent — to the root, restructuring zig-zig and
// zig-zag chains so repeated accesses amortize to O(log n).
func splay(root *node, key int64) *node {
	if root == nil || root.key == key {
		return root
	}
	if key < root.key {
		if root.left == nil {
			return root
		}
		if key < root.left.key {
			root.left.left = splay(root.left.left, key)
			root.left.fix()
			root = rotateRight(root)
		} else if key > root.left.key {
			root.left.right = splay(root.left.right, key)
			root.left.fix()
			if root.left.right != nil {
				root.left = rotateLeft(root.left)
			}
		}
		if root.left == nil {
			return root
		}
		return rotateRight(root)
	}
	if root.right == nil {
		return root
	}
	if key > root.right.key {
		root.right.right = splay(root.right.right, key)
		root.right.fix()
		root = rotateLeft(root)
	} else if key < root.right.key {
		root.right.left = splay(root.right.left, key)
		root.right.fix()
		if root.right.left != nil {
			root.right = rotateRight(root.right)
		}
	}
	if root.right == nil {
		return root
	}
	return rotateLeft(root)
}

// tree is the order-statistics splay tree. The zero value is an empty
// tree.
type tree struct {
	root *node
	free *node // freelist of deleted nodes, recycled by insert
}

// len returns the number of keys in the tree.
func (t *tree) len() int64 { return size(t.root) }

// insert adds key, which must not already be present.
func (t *tree) insert(key int64) {
	n := t.free
	if n != nil {
		t.free = n.right
		*n = node{key: key, size: 1}
	} else {
		n = &node{key: key, size: 1}
	}
	if t.root == nil {
		t.root = n
		return
	}
	r := splay(t.root, key)
	if key < r.key {
		n.left = r.left
		n.right = r
		r.left = nil
		r.fix()
	} else {
		n.right = r.right
		n.left = r
		r.right = nil
		r.fix()
	}
	n.fix()
	t.root = n
}

// delete removes key, which must be present.
func (t *tree) delete(key int64) {
	r := splay(t.root, key)
	if r == nil || r.key != key {
		panic("reuse: delete of absent key")
	}
	if r.left == nil {
		t.root = r.right
	} else {
		// Splaying the deleted key's value in the left subtree brings its
		// predecessor (the subtree maximum) to the root, with a nil right
		// child to adopt the right subtree.
		l := splay(r.left, key)
		l.right = r.right
		l.fix()
		t.root = l
	}
	r.left, r.right = nil, t.free // thread onto the freelist
	t.free = r
}

// countGreater returns how many keys in the tree are strictly greater
// than key. key itself must be present (the Olken invariant: the
// previous access time is in the tree when its reuse is resolved); the
// walk is a plain BST descent with right-subtree size sums, followed by
// a splay of the visited path to keep the amortized bound.
func (t *tree) countGreater(key int64) int64 {
	n := t.root
	var cnt int64
	for n != nil {
		switch {
		case key < n.key:
			cnt += size(n.right) + 1
			n = n.left
		case key > n.key:
			n = n.right
		default:
			cnt += size(n.right)
			t.root = splay(t.root, key)
			return cnt
		}
	}
	panic("reuse: countGreater on absent key")
}
