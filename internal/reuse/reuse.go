// Package reuse computes exact LRU reuse distances (stack distances)
// over recorded memory access sequences — the locality analysis layer
// on top of the telemetry access recorder. The reuse distance of an
// access is the number of distinct addresses touched since the previous
// access to the same address (Cold for first touches); the distribution
// of these distances determines the miss rate of every LRU cache size
// at once, which is what lets one trace justify a distribution choice:
// a block layout whose node loops sit in short reuse distances hits in
// cache where a cyclic(1) layout of the same computation does not.
//
// The algorithm is Olken's: a hash from address to its last access
// time plus an order-statistics splay tree over those times, giving
// amortized O(log n) per access. For long traces the Parda
// decomposition applies: the sequence is cut into chunks, each chunk
// resolves its internal reuses independently (an access and its
// predecessor in the same chunk see exactly the same interval either
// way), and only each chunk's first-touches are stitched sequentially
// against the merged history of earlier chunks.
package reuse

import (
	"math/bits"
	"runtime"
	"sync"
)

// Cold marks a first access: no previous touch, infinite reuse
// distance.
const Cold = int64(-1)

// Distances returns the exact reuse distance of every access in addrs:
// out[i] is the number of distinct addresses in addrs[j..i-1] where j
// is the previous occurrence of addrs[i], or Cold when addrs[i] has not
// been touched before. chunks ≤ 1 runs the sequential Olken algorithm;
// chunks > 1 runs the Parda decomposition with the per-chunk phase in
// parallel. Both produce identical output.
func Distances(addrs []int64, chunks int) []int64 {
	if len(addrs) == 0 {
		return nil
	}
	if chunks <= 1 || len(addrs) < 2*chunks {
		out := make([]int64, len(addrs))
		sequentialDistances(addrs, 0, out, nil)
		return out
	}
	return pardaDistances(addrs, chunks)
}

// sequentialDistances runs Olken's algorithm over one chunk of the
// sequence, writing distances (or Cold) into out, which aliases the
// full output array at the chunk's offset. base is the global time of
// addrs[0]. When unresolved is non-nil, every first touch appends its
// (addr, global first time) pair — the chunk's boundary set for the
// stitch phase — and the function returns the chunk's last-touch map.
func sequentialDistances(addrs []int64, base int64, out []int64, unresolved *[]boundaryAccess) map[int64]int64 {
	last := make(map[int64]int64, len(addrs)/4+16)
	var t tree
	for i, a := range addrs {
		now := base + int64(i)
		if prev, ok := last[a]; ok {
			out[i] = t.countGreater(prev)
			t.delete(prev)
		} else {
			out[i] = Cold
			if unresolved != nil {
				*unresolved = append(*unresolved, boundaryAccess{addr: a, time: now, index: i})
			}
		}
		t.insert(now)
		last[a] = now
	}
	return last
}

// boundaryAccess is one chunk-first touch awaiting resolution against
// earlier chunks' history.
type boundaryAccess struct {
	addr  int64
	time  int64 // global timestamp (position in the full sequence)
	index int   // index into the chunk's slice of the output array
}

// chunkState is the phase-1 result of one chunk.
type chunkState struct {
	unresolved []boundaryAccess
	last       map[int64]int64 // addr → global time of last touch in chunk
}

// pardaDistances is the two-phase decomposition. Phase 1 (parallel):
// each chunk resolves its internal reuses with a local tree — correct
// because the whole reuse interval of an intra-chunk pair lies inside
// the chunk. Phase 2 (sequential sweep): a global tree holds, for every
// address seen in chunks before c, the time of its last access before
// chunk c; each of chunk c's first-touches resolves against it exactly
// as Olken would, inserting its own first-touch time so later boundary
// accesses of the same chunk count it once; after the chunk, its
// last-touch map advances the global tree's per-address times.
func pardaDistances(addrs []int64, chunks int) []int64 {
	n := len(addrs)
	out := make([]int64, n)
	states := make([]chunkState, chunks)
	bounds := make([]int, chunks+1)
	for c := 0; c <= chunks; c++ {
		bounds[c] = c * n / chunks
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > chunks {
		workers = chunks
	}
	var wg sync.WaitGroup
	next := make(chan int, chunks)
	for c := 0; c < chunks; c++ {
		next <- c
	}
	close(next)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for c := range next {
				lo, hi := bounds[c], bounds[c+1]
				st := &states[c]
				st.last = sequentialDistances(addrs[lo:hi], int64(lo), out[lo:hi], &st.unresolved)
			}
		}()
	}
	wg.Wait()

	// Sequential stitch. globalTime[a] is the timestamp currently in the
	// tree for address a.
	var t tree
	globalTime := make(map[int64]int64)
	for c := 0; c < chunks; c++ {
		lo := bounds[c]
		for _, b := range states[c].unresolved {
			if prev, ok := globalTime[b.addr]; ok {
				out[lo+b.index] = t.countGreater(prev)
				t.delete(prev)
			}
			t.insert(b.time)
			globalTime[b.addr] = b.time
		}
		// Advance every address the chunk touched to its last-in-chunk
		// time, so the next chunk's boundary accesses count "distinct
		// since prev" against up-to-date history.
		for a, lastT := range states[c].last {
			if cur := globalTime[a]; cur != lastT {
				t.delete(cur)
				t.insert(lastT)
				globalTime[a] = lastT
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Histograms and miss estimates.

// NumBuckets bounds the power-of-two distance buckets: bucket i holds
// finite distances d with bits.Len64(d) == i (bucket 0 is exactly
// d = 0, a repeat of the most recent address), so bucket i's upper
// bound is 2^i − 1. 48 buckets cover every trace length the recorder
// can hold.
const NumBuckets = 48

// Histogram is the distribution of one access sequence's reuse
// distances: power-of-two buckets for the finite distances plus the
// cold (first-touch) count.
type Histogram struct {
	Counts [NumBuckets]int64
	Cold   int64
	Total  int64 // finite + cold
	Max    int64 // largest finite distance (0 when none)
	sum    int64 // sum of finite distances, for Mean
}

// bucketIndex maps a finite distance to its bucket.
func bucketIndex(d int64) int {
	if d <= 0 {
		return 0
	}
	i := bits.Len64(uint64(d))
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	return i
}

// BucketUpperBound returns the largest distance bucket i holds.
func BucketUpperBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	return int64(1)<<i - 1
}

// Add records one distance (Cold included).
func (h *Histogram) Add(d int64) {
	h.Total++
	if d == Cold {
		h.Cold++
		return
	}
	h.Counts[bucketIndex(d)]++
	h.sum += d
	if d > h.Max {
		h.Max = d
	}
}

// Finite returns the number of finite-distance accesses (reuses).
func (h *Histogram) Finite() int64 { return h.Total - h.Cold }

// Mean returns the mean finite reuse distance (0 when there are none).
func (h *Histogram) Mean() float64 {
	if f := h.Finite(); f > 0 {
		return float64(h.sum) / float64(f)
	}
	return 0
}

// CDF returns the fraction of all accesses with finite distance
// ≤ BucketUpperBound(i) — the value an LRU cache of that capacity
// would hit. Cold accesses count in the denominator (they always
// miss).
func (h *Histogram) CDF(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	var cum int64
	for j := 0; j <= i && j < NumBuckets; j++ {
		cum += h.Counts[j]
	}
	return float64(cum) / float64(h.Total)
}

// MissEstimate is the exact miss count of one fully-associative LRU
// cache size replayed over the sequence: cold misses plus every reuse
// whose distance is at least the capacity.
type MissEstimate struct {
	CacheSize int64   `json:"cache_size"`
	Misses    int64   `json:"misses"`
	MissRate  float64 `json:"miss_rate"`
}

// MissEstimates computes the estimates for each cache size from the
// per-access distances.
func MissEstimates(dists []int64, cacheSizes []int64) []MissEstimate {
	if len(cacheSizes) == 0 {
		return nil
	}
	out := make([]MissEstimate, len(cacheSizes))
	for i, c := range cacheSizes {
		out[i].CacheSize = c
	}
	for _, d := range dists {
		for i, c := range cacheSizes {
			if d == Cold || d >= c {
				out[i].Misses++
			}
		}
	}
	if n := len(dists); n > 0 {
		for i := range out {
			out[i].MissRate = float64(out[i].Misses) / float64(n)
		}
	}
	return out
}
