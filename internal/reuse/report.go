package reuse

// The locality report: reuse-distance profiles of a recorded access
// trace, sliced two ways — per rank (how well each processor's whole
// access stream reuses its local memory) and per step label (how each
// operation kind, e.g. "hpf.map_section:rowstride" or "comm.pack",
// reuses in the context of the full stream). Distances are always
// computed over a rank's complete sequence, so a label profile answers
// "when this kind of op touched memory, how far back was the previous
// touch" rather than pretending each op ran against a cold cache.

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/telemetry"
)

// DefaultCacheSizes are the fully-associative LRU capacities (in
// elements) the report estimates miss rates for when the caller does
// not choose: spanning an L1-sized window to an LLC-sized one at 8
// bytes per element.
func DefaultCacheSizes() []int64 { return []int64{512, 4096, 32768, 262144} }

// Options configures BuildReport.
type Options struct {
	// Chunks is the Parda partition count per rank; ≤ 1 analyzes each
	// rank sequentially. Ranks are always analyzed in parallel with each
	// other.
	Chunks int
	// CacheSizes are the LRU capacities to estimate miss rates for;
	// nil means DefaultCacheSizes.
	CacheSizes []int64
}

// BucketCount is one non-empty histogram bucket in wire form.
type BucketCount struct {
	UpperBound int64 `json:"le"` // largest distance in the bucket
	Count      int64 `json:"count"`
}

// HistogramDoc is a Histogram in wire form (non-empty buckets only).
type HistogramDoc struct {
	Buckets []BucketCount `json:"buckets,omitempty"`
	Cold    int64         `json:"cold"`
	Total   int64         `json:"total"`
	Max     int64         `json:"max_distance"`
	Mean    float64       `json:"mean_distance"`
}

func (h *Histogram) doc() HistogramDoc {
	doc := HistogramDoc{Cold: h.Cold, Total: h.Total, Max: h.Max, Mean: h.Mean()}
	for i, c := range h.Counts {
		if c > 0 {
			doc.Buckets = append(doc.Buckets, BucketCount{UpperBound: BucketUpperBound(i), Count: c})
		}
	}
	return doc
}

// RankProfile is one rank's locality profile.
type RankProfile struct {
	Rank      int32          `json:"rank"`
	Accesses  int64          `json:"accesses"`
	Reads     int64          `json:"reads"`
	Writes    int64          `json:"writes"`
	Distinct  int64          `json:"distinct_addrs"` // == cold misses
	Hist      HistogramDoc   `json:"histogram"`
	MissRates []MissEstimate `json:"miss_rates,omitempty"`
}

// LabelProfile aggregates, across all ranks, the accesses recorded
// under one step label (all steps sharing the label pool together).
type LabelProfile struct {
	Label     string         `json:"label"`
	Accesses  int64          `json:"accesses"`
	Hist      HistogramDoc   `json:"histogram"`
	MissRates []MissEstimate `json:"miss_rates,omitempty"`
}

// Report is the full locality analysis of one access trace.
type Report struct {
	Ranks      int            `json:"ranks"`
	Sample     int64          `json:"sample"`
	Dropped    int64          `json:"dropped"`
	CacheSizes []int64        `json:"cache_sizes"`
	PerRank    []RankProfile  `json:"per_rank"`
	PerLabel   []LabelProfile `json:"per_label,omitempty"`
}

// BuildReport analyzes every rank sequence of the trace. Rank analyses
// run concurrently; within a rank the Parda decomposition applies when
// opts.Chunks > 1.
func BuildReport(doc *telemetry.AccessDoc, opts Options) *Report {
	sizes := opts.CacheSizes
	if sizes == nil {
		sizes = DefaultCacheSizes()
	}
	rep := &Report{
		Ranks:      doc.Ranks,
		Sample:     doc.Sample,
		Dropped:    doc.Dropped,
		CacheSizes: sizes,
	}

	type rankResult struct {
		profile RankProfile
		dists   []int64
	}
	results := make([]rankResult, len(doc.Seqs))
	var wg sync.WaitGroup
	for i := range doc.Seqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seq := &doc.Seqs[i]
			addrs := make([]int64, len(seq.Accesses))
			var reads, writes int64
			for j, a := range seq.Accesses {
				addrs[j] = a.Addr
				if a.Write {
					writes++
				} else {
					reads++
				}
			}
			dists := Distances(addrs, opts.Chunks)
			var h Histogram
			for _, d := range dists {
				h.Add(d)
			}
			results[i] = rankResult{
				profile: RankProfile{
					Rank:      seq.Rank,
					Accesses:  int64(len(addrs)),
					Reads:     reads,
					Writes:    writes,
					Distinct:  h.Cold,
					Hist:      h.doc(),
					MissRates: MissEstimates(dists, sizes),
				},
				dists: dists,
			}
		}(i)
	}
	wg.Wait()

	// Per-label slices: each access's distance, attributed to the label
	// of the step it was recorded under.
	labelHist := map[string]*Histogram{}
	labelDists := map[string][]int64{}
	for i := range doc.Seqs {
		seq := &doc.Seqs[i]
		for j, a := range seq.Accesses {
			label := doc.StepLabel(a.Step)
			if label == "" {
				label = "(unlabeled)"
			}
			h := labelHist[label]
			if h == nil {
				h = &Histogram{}
				labelHist[label] = h
			}
			d := results[i].dists[j]
			h.Add(d)
			labelDists[label] = append(labelDists[label], d)
		}
		rep.PerRank = append(rep.PerRank, results[i].profile)
	}
	sort.Slice(rep.PerRank, func(a, b int) bool { return rep.PerRank[a].Rank < rep.PerRank[b].Rank })

	labels := make([]string, 0, len(labelHist))
	for l := range labelHist {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		h := labelHist[l]
		rep.PerLabel = append(rep.PerLabel, LabelProfile{
			Label:     l,
			Accesses:  h.Total,
			Hist:      h.doc(),
			MissRates: MissEstimates(labelDists[l], sizes),
		})
	}
	return rep
}

// WriteText renders the report as per-rank and per-label tables with a
// compact distance CDF.
func (r *Report) WriteText(w io.Writer) error {
	var err error
	pr := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pr("Reuse-distance locality report (%d ranks, sample 1/%d)\n", r.Ranks, r.Sample)
	if r.Dropped > 0 {
		pr("WARNING: %d access records were overwritten (ring buffers full);\n", r.Dropped)
		pr("distances near the start of the run are missing or inflated.\n")
	}
	pr("\nper rank:\n")
	pr("%6s %10s %10s %10s %10s %12s %10s", "rank", "accesses", "reads", "writes", "distinct", "mean_dist", "max_dist")
	for _, c := range r.CacheSizes {
		pr(" miss@%-6d", c)
	}
	pr("\n")
	for _, p := range r.PerRank {
		pr("%6d %10d %10d %10d %10d %12.1f %10d", p.Rank, p.Accesses, p.Reads, p.Writes, p.Distinct, p.Hist.Mean, p.Hist.Max)
		for _, m := range p.MissRates {
			pr(" %9.1f%%", 100*m.MissRate)
		}
		pr("\n")
	}
	if len(r.PerLabel) > 0 {
		pr("\nper operation label:\n")
		pr("%-40s %10s %8s %12s %10s", "label", "accesses", "cold", "mean_dist", "max_dist")
		for _, c := range r.CacheSizes {
			pr(" miss@%-6d", c)
		}
		pr("\n")
		for _, p := range r.PerLabel {
			pr("%-40s %10d %8d %12.1f %10d", p.Label, p.Accesses, p.Hist.Cold, p.Hist.Mean, p.Hist.Max)
			for _, m := range p.MissRates {
				pr(" %9.1f%%", 100*m.MissRate)
			}
			pr("\n")
		}
	}
	return err
}
