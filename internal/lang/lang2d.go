package lang

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/hpf"
	"repro/internal/section"
)

// This file adds two-dimensional arrays to the mini-language:
//
//	processors Q(2,2)                                  ! a processor grid
//	array M(16,24) distribute (cyclic(2),cyclic(3)) onto Q
//	M(0:15:2, 0:23) = 1.0                              ! rect fill
//	N(0:23, 0:15) = transpose M(0:15, 0:23)            ! distributed transpose
//	N(0:7, 0:7) = M(8:15, 8:15)                        ! rect copy
//	sum M(0:15, 0:23)
//	print M(0:3, 0:3)
//
// Grid arrangements and 2-D arrays coexist with the 1-D forms; the
// interpreter dispatches on the declared name.

// execProcessors2 handles: processors Q(2,2)
func (in *Interp) execProcessors2(name string, args []string) error {
	if _, dup := in.gridDims[name]; dup || name == in.procName {
		return fmt.Errorf("processors %s already declared", name)
	}
	dims := make([]int64, len(args))
	total := int64(1)
	for i, a := range args {
		v, err := strconv.ParseInt(a, 10, 64)
		if err != nil || v < 1 {
			return fmt.Errorf("invalid processor count %q", a)
		}
		dims[i] = v
		total *= v
	}
	if len(dims) != 2 {
		return fmt.Errorf("grids must be rank 2, got %d dims", len(dims))
	}
	// Grid layouts get their block sizes at array-declaration time; store
	// the dims for now.
	in.gridDims[name] = dims
	in.ensureMachine(total)
	return nil
}

// ensureMachine grows the machine to at least n processors. Mailboxes are
// empty between statements, so replacing the machine is safe.
func (in *Interp) ensureMachine(n int64) {
	if in.machine == nil || int64(in.machine.NProcs()) < n {
		in.machine = newMachine(n)
	}
}

// execArray2 handles:
// array M(16,24) distribute (cyclic(2),cyclic(3)) onto Q
func (in *Interp) execArray2(name string, extents []string, spec, gridName string) error {
	dims, ok := in.gridDims[gridName]
	if !ok {
		return fmt.Errorf("unknown processor grid %q", gridName)
	}
	if _, dup := in.arrays2[name]; dup {
		return fmt.Errorf("array %s already declared", name)
	}
	if _, dup := in.arrays[name]; dup {
		return fmt.Errorf("array %s already declared", name)
	}
	if len(extents) != 2 {
		return fmt.Errorf("2-D array %s needs 2 extents, got %d", name, len(extents))
	}
	n := make([]int64, 2)
	for i, e := range extents {
		v, err := strconv.ParseInt(e, 10, 64)
		if err != nil || v < 1 {
			return fmt.Errorf("invalid extent %q", e)
		}
		n[i] = v
	}
	if !strings.HasPrefix(spec, "(") || !strings.HasSuffix(spec, ")") {
		return fmt.Errorf("2-D distribution must be (spec,spec), got %q", spec)
	}
	parts := strings.Split(spec[1:len(spec)-1], ",")
	if len(parts) != 2 {
		return fmt.Errorf("2-D distribution needs 2 specs, got %d", len(parts))
	}
	layouts := make([]dist.Layout, 2)
	for d, ps := range parts {
		saveP := in.procs
		in.procs = dims[d]
		l, err := in.parseDist(strings.TrimSpace(ps), n[d])
		in.procs = saveP
		if err != nil {
			return err
		}
		layouts[d] = l
	}
	g, err := dist.NewGrid(layouts[0], layouts[1])
	if err != nil {
		return err
	}
	a, err := hpf.NewArray2D(g, n[0], n[1])
	if err != nil {
		return err
	}
	in.arrays2[name] = a
	return nil
}

// parseRef2 parses NAME(sec0, sec1) against a declared 2-D array.
func (in *Interp) parseRef2(ref string) (string, section.Rect, error) {
	i := strings.IndexByte(ref, '(')
	name := ref
	if i >= 0 {
		name = ref[:i]
	}
	a, ok := in.arrays2[name]
	if !ok {
		return "", nil, fmt.Errorf("unknown 2-D array %q", name)
	}
	n0, n1 := a.Dims()
	if i < 0 {
		rect, _ := section.NewRect(
			section.Section{Lo: 0, Hi: n0 - 1, Stride: 1},
			section.Section{Lo: 0, Hi: n1 - 1, Stride: 1},
		)
		return name, rect, nil
	}
	if !strings.HasSuffix(ref, ")") {
		return "", nil, fmt.Errorf("malformed reference %q", ref)
	}
	inner := ref[i+1 : len(ref)-1]
	dims := strings.Split(inner, ",")
	if len(dims) != 2 {
		return "", nil, fmt.Errorf("2-D reference needs 2 subscripts, got %q", inner)
	}
	secs := make([]section.Section, 2)
	for d, tri := range dims {
		sec, err := parseTriplet(strings.TrimSpace(tri))
		if err != nil {
			return "", nil, err
		}
		secs[d] = sec
	}
	rect, err := section.NewRect(secs...)
	if err != nil {
		return "", nil, err
	}
	return name, rect, nil
}

// parseTriplet parses lo:hi[:stride].
func parseTriplet(tri string) (section.Section, error) {
	parts := strings.Split(tri, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return section.Section{}, fmt.Errorf("malformed triplet %q", tri)
	}
	nums := make([]int64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return section.Section{}, fmt.Errorf("malformed triplet %q: %v", tri, err)
		}
		nums[i] = v
	}
	stride := int64(1)
	if len(nums) == 3 {
		stride = nums[2]
	}
	return section.New(nums[0], nums[1], stride)
}

// is2DRef reports whether a reference names a declared 2-D array.
func (in *Interp) is2DRef(ref string) bool {
	name := ref
	if i := strings.IndexByte(ref, '('); i >= 0 {
		name = ref[:i]
	}
	_, ok := in.arrays2[name]
	return ok
}

// execAssign2 handles 2-D assignments: rect fill, rect copy, transpose.
func (in *Interp) execAssign2(lhs, rhs string) error {
	dstName, dstRect, err := in.parseRef2(lhs)
	if err != nil {
		return err
	}
	dst := in.arrays2[dstName]

	if v, err := strconv.ParseFloat(rhs, 64); err == nil {
		return dst.FillRect(dstRect, v)
	}
	transpose := false
	if rest, ok := strings.CutPrefix(rhs, "transpose "); ok {
		transpose = true
		rhs = strings.TrimSpace(rest)
	}
	srcName, srcRect, err := in.parseRef2(rhs)
	if err != nil {
		return fmt.Errorf("right-hand side %q: %w", rhs, err)
	}
	src := in.arrays2[srcName]
	in.ensureMachine(max(dst.Grid().Procs(), src.Grid().Procs()))
	if transpose {
		return comm.Transpose2D(in.machine, dst, dstRect, src, srcRect)
	}
	return comm.Copy2D(in.machine, dst, dstRect, src, srcRect)
}

// execSum2 handles: sum M(rect)
func (in *Interp) execSum2(ref string) error {
	name, rect, err := in.parseRef2(ref)
	if err != nil {
		return err
	}
	total, err := in.arrays2[name].SumRect(rect)
	if err != nil {
		return err
	}
	fmt.Fprintf(in.out, "sum %s%v = %s\n", name, rect,
		strconv.FormatFloat(total, 'g', -1, 64))
	return nil
}

// execPrint2 handles: print M(rect), row per first-dimension element.
func (in *Interp) execPrint2(ref string) error {
	name, rect, err := in.parseRef2(ref)
	if err != nil {
		return err
	}
	a := in.arrays2[name]
	n0, n1 := a.Dims()
	asc0, _ := rect[0].Ascending()
	asc1, _ := rect[1].Ascending()
	if !rect.Empty() && (asc0.Lo < 0 || asc0.Last() >= n0 || asc1.Lo < 0 || asc1.Last() >= n1) {
		return fmt.Errorf("reference %s%v outside array %dx%d", name, rect, n0, n1)
	}
	fmt.Fprintf(in.out, "%s%v =\n", name, rect)
	for _, i := range rect[0].Slice() {
		parts := make([]string, 0, rect[1].Count())
		for _, j := range rect[1].Slice() {
			parts = append(parts, strconv.FormatFloat(a.Get(i, j), 'g', -1, 64))
		}
		fmt.Fprintf(in.out, "  [%s]\n", strings.Join(parts, " "))
	}
	return nil
}
