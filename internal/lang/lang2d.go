package lang

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/hpf"
	"repro/internal/intmath"
	"repro/internal/lang/ast"
	"repro/internal/section"
)

// This file adds two-dimensional arrays to the mini-language:
//
//	processors Q(2,2)                                  ! a processor grid
//	array M(16,24) distribute (cyclic(2),cyclic(3)) onto Q
//	M(0:15:2, 0:23) = 1.0                              ! rect fill
//	N(0:23, 0:15) = transpose M(0:15, 0:23)            ! distributed transpose
//	N(0:7, 0:7) = M(8:15, 8:15)                        ! rect copy
//	sum M(0:15, 0:23)
//	print M(0:3, 0:3)
//
// Grid arrangements and 2-D arrays coexist with the 1-D forms; the
// interpreter dispatches on the declared name.

// execProcessors2 handles: processors Q(2,2)
func (in *Interp) execProcessors2(s *ast.Processors) error {
	if _, dup := in.gridDims[s.Name]; dup || s.Name == in.procName {
		return fmt.Errorf("processors %s already declared", s.Name)
	}
	total, err := intmath.MulChecked(s.Counts[0], s.Counts[1])
	if err != nil {
		return fmt.Errorf("processor grid %s too large: %v", s.Name, err)
	}
	// Grid layouts get their block sizes at array-declaration time; store
	// the dims for now.
	in.gridDims[s.Name] = append([]int64(nil), s.Counts...)
	in.ensureMachine(total)
	return nil
}

// ensureMachine grows the machine to at least n processors. Mailboxes are
// empty between statements, so replacing the machine is safe.
func (in *Interp) ensureMachine(n int64) {
	if in.machine == nil || int64(in.machine.NProcs()) < n {
		in.machine = newMachine(n)
	}
}

// execArray2 handles:
// array M(16,24) distribute (cyclic(2),cyclic(3)) onto Q
func (in *Interp) execArray2(s *ast.ArrayDecl) error {
	dims, ok := in.gridDims[s.Target]
	if !ok {
		return fmt.Errorf("unknown processor grid %q", s.Target)
	}
	if err := in.checkFreshName(s.Name); err != nil {
		return err
	}
	layouts := make([]dist.Layout, 2)
	for d := range s.Dists {
		l, err := layoutFor(s.Dists[d], dims[d], s.Extents[d])
		if err != nil {
			return err
		}
		layouts[d] = l
	}
	g, err := dist.NewGrid(layouts[0], layouts[1])
	if err != nil {
		return err
	}
	a, err := hpf.NewArray2D(g, s.Extents[0], s.Extents[1])
	if err != nil {
		return err
	}
	in.arrays2[s.Name] = a
	return nil
}

// array2 resolves a reference against the declared 2-D arrays and turns
// its subscripts into a rect (the whole array for a bare name).
func (in *Interp) array2(ref *ast.Ref) (*hpf.Array2D, section.Rect, error) {
	a, ok := in.arrays2[ref.Name]
	if !ok {
		return nil, nil, fmt.Errorf("unknown 2-D array %q", ref.Name)
	}
	n0, n1 := a.Dims()
	if ref.Whole {
		rect, _ := section.NewRect(
			section.Section{Lo: 0, Hi: n0 - 1, Stride: 1},
			section.Section{Lo: 0, Hi: n1 - 1, Stride: 1},
		)
		return a, rect, nil
	}
	if len(ref.Subs) != 2 {
		return nil, nil, fmt.Errorf("2-D reference needs 2 subscripts, got %d", len(ref.Subs))
	}
	secs := make([]section.Section, 2)
	for d, t := range ref.Subs {
		sec, err := section.New(t.Lo, t.Hi, t.Stride)
		if err != nil {
			return nil, nil, err
		}
		secs[d] = sec
	}
	rect, err := section.NewRect(secs...)
	if err != nil {
		return nil, nil, err
	}
	return a, rect, nil
}

// execAssign2 handles 2-D assignments: rect fill, rect copy, transpose.
func (in *Interp) execAssign2(s *ast.Assign) error {
	dst, dstRect, err := in.array2(s.LHS)
	if err != nil {
		return err
	}
	var src *hpf.Array2D
	var srcRect section.Rect
	transpose := false
	switch rhs := s.RHS.(type) {
	case *ast.Scalar:
		return dst.FillRect(dstRect, rhs.Val)
	case *ast.Binary:
		return fmt.Errorf("2-D assignments support fill, copy and transpose only")
	case *ast.Transpose:
		transpose = true
		src, srcRect, err = in.array2(rhs.Src)
	case *ast.Ref:
		src, srcRect, err = in.array2(rhs)
	default:
		return fmt.Errorf("unsupported expression %T", s.RHS)
	}
	if err != nil {
		return fmt.Errorf("right-hand side: %w", err)
	}
	in.ensureMachine(max(dst.Grid().Procs(), src.Grid().Procs()))
	if transpose {
		return comm.Transpose2D(in.machine, dst, dstRect, src, srcRect)
	}
	return comm.Copy2D(in.machine, dst, dstRect, src, srcRect)
}

// execSum2 handles: sum M(rect)
func (in *Interp) execSum2(ref *ast.Ref) error {
	a, rect, err := in.array2(ref)
	if err != nil {
		return err
	}
	total, err := a.SumRect(rect)
	if err != nil {
		return err
	}
	fmt.Fprintf(in.out, "sum %s%v = %s\n", ref.Name, rect,
		strconv.FormatFloat(total, 'g', -1, 64))
	return nil
}

// execPrint2 handles: print M(rect), row per first-dimension element.
func (in *Interp) execPrint2(ref *ast.Ref) error {
	a, rect, err := in.array2(ref)
	if err != nil {
		return err
	}
	n0, n1 := a.Dims()
	asc0, _ := rect[0].Ascending()
	asc1, _ := rect[1].Ascending()
	if !rect.Empty() && (asc0.Lo < 0 || asc0.Last() >= n0 || asc1.Lo < 0 || asc1.Last() >= n1) {
		return fmt.Errorf("reference %s%v outside array %dx%d", ref.Name, rect, n0, n1)
	}
	fmt.Fprintf(in.out, "%s%v =\n", ref.Name, rect)
	for _, i := range rect[0].Slice() {
		parts := make([]string, 0, rect[1].Count())
		for _, j := range rect[1].Slice() {
			parts = append(parts, strconv.FormatFloat(a.Get(i, j), 'g', -1, 64))
		}
		fmt.Fprintf(in.out, "  [%s]\n", strings.Join(parts, " "))
	}
	return nil
}
