package lang

import (
	"strings"
	"testing"
)

func TestArray2DDeclareAndFill(t *testing.T) {
	in := New()
	script := `
processors Q(2,2)
array M(16,24) distribute (cyclic(2),cyclic(3)) onto Q
M(0:15, 0:23) = 1.0
M(0:15:2, 0:23:2) = 5.0
sum M(0:15, 0:23)
`
	if err := in.Run(script); err != nil {
		t.Fatal(err)
	}
	// 16*24 = 384 cells; 8*12 = 96 get 5, rest 1: 96*5 + 288*1 = 768.
	if !strings.Contains(in.Output(), "= 768") {
		t.Errorf("2-D fill sum wrong:\n%s", in.Output())
	}
}

func TestArray2DCopyAndTranspose(t *testing.T) {
	in := New()
	script := `
processors Q(2,2)
processors R(2,3)
array M(8,10) distribute (cyclic(2),cyclic(2)) onto Q
array N(10,8) distribute (cyclic(3),cyclic(1)) onto R
M(0:7, 0:9) = 3.0
M(0:7, 0:0) = 7.0
N(0:9, 0:7) = transpose M(0:7, 0:9)
sum N(0:9, 0:7)
sum N(0:0, 0:7)
`
	if err := in.Run(script); err != nil {
		t.Fatal(err)
	}
	out := in.Output()
	// Total preserved: 8 cells of 7 + 72 of 3 = 272.
	if !strings.Contains(out, "sum N(0:9:1, 0:7:1) = 272") {
		t.Errorf("transpose total wrong:\n%s", out)
	}
	// Column 0 of M becomes row 0 of N: 8 cells of 7 = 56.
	if !strings.Contains(out, "sum N(0:0:1, 0:7:1) = 56") {
		t.Errorf("transpose row wrong:\n%s", out)
	}
}

func TestArray2DRectCopy(t *testing.T) {
	in := New()
	script := `
processors Q(2,2)
array A(12,12) distribute (cyclic(2),cyclic(2)) onto Q
array B(12,12) distribute (cyclic(3),block) onto Q
A(0:11, 0:11) = 2.0
B(0:11, 0:11) = 0.0
B(0:5, 0:5) = A(6:11, 6:11)
sum B(0:11, 0:11)
`
	if err := in.Run(script); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(in.Output(), "= 72") { // 36 cells of 2
		t.Errorf("rect copy wrong:\n%s", in.Output())
	}
}

func TestArray2DPrint(t *testing.T) {
	in := New()
	script := `
processors Q(2,2)
array M(4,4) distribute (cyclic(1),cyclic(1)) onto Q
M(0:3, 0:3) = 0.0
M(1:1, 0:3) = 9.0
print M(0:2, 0:2)
`
	if err := in.Run(script); err != nil {
		t.Fatal(err)
	}
	out := in.Output()
	if !strings.Contains(out, "[0 0 0]") || !strings.Contains(out, "[9 9 9]") {
		t.Errorf("2-D print wrong:\n%s", out)
	}
}

func TestMixed1DAnd2D(t *testing.T) {
	in := New()
	script := `
processors P(4)
processors Q(2,2)
array A(64) distribute cyclic(8) onto P
array M(8,8) distribute (cyclic(2),cyclic(2)) onto Q
A = 1.0
M(0:7, 0:7) = 2.0
sum A
sum M(0:7, 0:7)
`
	if err := in.Run(script); err != nil {
		t.Fatal(err)
	}
	out := in.Output()
	if !strings.Contains(out, "sum A(0:63:1) = 64") {
		t.Errorf("1-D sum wrong:\n%s", out)
	}
	if !strings.Contains(out, "= 128") {
		t.Errorf("2-D sum wrong:\n%s", out)
	}
}

func TestArray2DErrors(t *testing.T) {
	cases := []struct {
		script string
		want   string
	}{
		{"processors Q(2,2)\nprocessors Q(2,2)", "already declared"},
		{"processors Q(0,2)", "invalid processor count"},
		{"processors Q(2,2)\narray M(8,8) distribute (cyclic(2),cyclic(2)) onto Z", "unknown processor grid"},
		{"processors Q(2,2)\narray M(8,8) distribute cyclic(2) onto Q", "2-D distribution"},
		{"processors Q(2,2)\narray M(8,-1) distribute (cyclic(2),cyclic(2)) onto Q", "invalid extent"},
		{"processors Q(2,2)\narray M(8,8) distribute (cyclic(2),cyclic(2)) onto Q\narray M(8,8) distribute (cyclic(2),cyclic(2)) onto Q", "already declared"},
		{"processors Q(2,2)\narray M(8,8) distribute (cyclic(2),cyclic(2)) onto Q\nM(0:7) = 1.0", "2-D reference needs 2 subscripts"},
		{"processors Q(2,2)\narray M(8,8) distribute (cyclic(2),cyclic(2)) onto Q\nM(0:7, 0:9) = 1.0", "outside"},
		{"processors Q(2,2)\narray M(8,8) distribute (cyclic(2),cyclic(2)) onto Q\nM(0:7, 0:7) = X(0:7, 0:7)", "unknown 2-D array"},
		{"processors P(2)\nprocessors P(2,2)", "already declared"},
	}
	for _, c := range cases {
		err := New().Run(c.script)
		if err == nil {
			t.Errorf("script %q should fail", c.script)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("script %q: error %q does not contain %q", c.script, err, c.want)
		}
	}
}

func TestSameNameAcrossRanks(t *testing.T) {
	// A name may not be reused between 1-D and 2-D arrays.
	err := New().Run(`
processors P(4)
processors Q(2,2)
array A(64) distribute cyclic(8) onto P
array A(8,8) distribute (cyclic(2),cyclic(2)) onto Q
`)
	if err == nil || !strings.Contains(err.Error(), "already declared") {
		t.Errorf("cross-rank name reuse should fail: %v", err)
	}
}
