// Package ast defines the typed syntax tree for the mini-HPF script
// language of internal/lang, plus a line-oriented parser producing it.
//
// The grammar is one statement per line ("!" starts a comment):
//
//	processors P(4)                 processors Q(2,2)
//	array A(320) distribute cyclic(8) onto P
//	array M(16,24) distribute (cyclic(2),cyclic(3)) onto Q
//	A(4:319:9) = 100.0              ! scalar fill
//	B(0:70:2) = A(4:319:9)          ! section copy
//	B(0:9) = A(0:9) + A(10:19)      ! elementwise (+ - *), array or scalar rhs
//	N(0:23, 0:15) = transpose M(0:15, 0:23)
//	redistribute A cyclic(16)
//	print A(0:40:4)
//	sum A(4:319:9)
//	table A(4:319:9) on 1
//	stats
//
// The same tree feeds two consumers: lang.Interp executes it and
// internal/analysis checks it. Every node carries its source position so
// both runtime errors and lint diagnostics can point at the offending
// statement.
package ast

import (
	"fmt"
	"strings"
)

// Pos is a 1-based source position.
type Pos struct {
	Line, Col int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Stmt is one script statement. Every statement knows its position and
// its trimmed source text (for error messages of the form
// "line N: <stmt>: <err>").
type Stmt interface {
	Pos() Pos
	Text() string
	stmtNode()
}

// stmtBase carries the position and source text shared by all statements.
type stmtBase struct {
	pos  Pos
	text string
}

func (b stmtBase) Pos() Pos     { return b.pos }
func (b stmtBase) Text() string { return b.text }
func (b stmtBase) stmtNode()    {}

// Script is a parsed script: the statements in source order, blank lines
// and comments dropped.
type Script struct {
	Stmts []Stmt
}

// Processors declares a flat arrangement (one count) or a grid (two).
type Processors struct {
	stmtBase
	Name   string
	Counts []int64
}

// DistKind discriminates the three distribution spellings.
type DistKind int

const (
	DistBlock   DistKind = iota // block
	DistCyclic                  // cyclic
	DistCyclicK                 // cyclic(k)
)

// DistSpec is one dimension's distribution. K is meaningful only for
// DistCyclicK.
type DistSpec struct {
	Kind DistKind
	K    int64
}

// String renders the spec in source syntax.
func (d DistSpec) String() string {
	switch d.Kind {
	case DistBlock:
		return "block"
	case DistCyclic:
		return "cyclic"
	default:
		return fmt.Sprintf("cyclic(%d)", d.K)
	}
}

// ArrayDecl declares a distributed array. Extents and Dists have the
// same length: 1 for flat arrays, 2 for grid arrays.
type ArrayDecl struct {
	stmtBase
	Name    string
	Extents []int64
	Dists   []DistSpec
	Target  string // processor arrangement or grid name
}

// Redistribute re-deals a 1-D array onto a new layout.
type Redistribute struct {
	stmtBase
	Name string
	Dist DistSpec
}

// Triplet is a Fortran-90 subscript triplet lo:hi[:stride] with inclusive
// bounds; the stride defaults to 1.
type Triplet struct {
	Lo, Hi, Stride int64
}

// String renders the triplet in canonical lo:hi:stride form.
func (t Triplet) String() string {
	return fmt.Sprintf("%d:%d:%d", t.Lo, t.Hi, t.Stride)
}

// Ref is an array reference: a bare NAME (Whole == true, the entire
// array) or NAME(triplet[, triplet]).
type Ref struct {
	RefPos Pos
	Name   string
	Subs   []Triplet
	Whole  bool
}

// String renders the reference in canonical form.
func (r *Ref) String() string {
	if r.Whole {
		return r.Name
	}
	parts := make([]string, len(r.Subs))
	for i, t := range r.Subs {
		parts[i] = t.String()
	}
	return fmt.Sprintf("%s(%s)", r.Name, strings.Join(parts, ", "))
}

// Expr is the right-hand side of an assignment: *Scalar, *Ref, *Binary
// or *Transpose.
type Expr interface {
	exprNode()
}

// Scalar is a floating-point literal.
type Scalar struct {
	Val float64
}

// Binary is an elementwise expression LEFT op RIGHT; Right is a *Ref or
// a *Scalar.
type Binary struct {
	Op    byte // '+', '-' or '*'
	Left  *Ref
	Right Expr
}

// Transpose is "transpose REF" (2-D arrays only).
type Transpose struct {
	Src *Ref
}

func (*Scalar) exprNode()    {}
func (*Ref) exprNode()       {}
func (*Binary) exprNode()    {}
func (*Transpose) exprNode() {}

// Assign is LHS = RHS.
type Assign struct {
	stmtBase
	LHS *Ref
	RHS Expr
}

// Print is "print REF".
type Print struct {
	stmtBase
	Ref *Ref
}

// Sum is "sum REF".
type Sum struct {
	stmtBase
	Ref *Ref
}

// Table is "table REF on PROC".
type Table struct {
	stmtBase
	Ref  *Ref
	Proc int64
}

// Stats is the bare "stats" statement.
type Stats struct {
	stmtBase
}

// Refs returns every array reference a statement contains, left to
// right. Declarations and stats have none.
func Refs(st Stmt) []*Ref {
	switch s := st.(type) {
	case *Assign:
		out := []*Ref{s.LHS}
		switch e := s.RHS.(type) {
		case *Ref:
			out = append(out, e)
		case *Transpose:
			out = append(out, e.Src)
		case *Binary:
			out = append(out, e.Left)
			if r, ok := e.Right.(*Ref); ok {
				out = append(out, r)
			}
		}
		return out
	case *Print:
		return []*Ref{s.Ref}
	case *Sum:
		return []*Ref{s.Ref}
	case *Table:
		return []*Ref{s.Ref}
	}
	return nil
}

// ParseError is a syntax error with its source position and the trimmed
// statement text.
type ParseError struct {
	Pos  Pos
	Stmt string
	Msg  string
}

// Error implements error in the interpreter's "line N: <stmt>: <err>"
// shape.
func (e *ParseError) Error() string {
	if e.Stmt == "" {
		return fmt.Sprintf("line %d: %s", e.Pos.Line, e.Msg)
	}
	return fmt.Sprintf("line %d: %s: %s", e.Pos.Line, e.Stmt, e.Msg)
}
