package ast

import (
	"strings"
	"testing"
)

// FuzzParseLine asserts the parser never panics: any input must yield a
// statement, a *ParseError, or (for blanks and comments) nil, nil.
func FuzzParseLine(f *testing.F) {
	seeds := []string{
		"processors P(4)",
		"processors Q(2,2)",
		"array A(320) distribute cyclic(8) onto P",
		"array M(16,24) distribute (cyclic(2),block) onto Q",
		"redistribute A cyclic(16)",
		"redistribute M (block,cyclic(3))",
		"A(4:319:9) = 100.0",
		"B(0:70:2) = A(4:319:9)",
		"B(0:9) = A(0:9) + A(10:19)",
		"N(0:23, 0:15) = transpose M(0:15, 0:23)",
		"print A(0:3)",
		"sum A",
		"table A(4:319:9) on 1",
		"stats",
		"! comment",
		"",
		// malformed triplets and refs
		"A(0:1:2:3) = 1.0",
		"A(::) = 1.0",
		"A(:,:) = 1.0",
		"A(5) = 1.0",
		"A() = 1.0",
		"A(0:4 = 1.0",
		"A(0:5:0) = 1.0",
		"A(9:0:-2) = 1.0",
		"array A(10) distribute cyclic( onto P",
		"processors P(",
		"table A(0:5) on",
		"= = =",
		"(((((",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		st, err := ParseLine(line, 1)
		if err != nil {
			if !strings.Contains(err.Error(), "line 1:") {
				t.Errorf("ParseLine(%q) error lacks line prefix: %v", line, err)
			}
			return
		}
		if st == nil {
			return
		}
		// A parsed statement must round-trip through its accessors.
		if st.Pos().Line != 1 {
			t.Errorf("ParseLine(%q) statement line = %d", line, st.Pos().Line)
		}
		_ = st.Text()
		for _, r := range Refs(st) {
			_ = r.String()
		}
	})
}

// FuzzParseAll asserts whole-script parsing never panics and reports
// errors with positive line numbers.
func FuzzParseAll(f *testing.F) {
	f.Add("processors P(4)\narray A(320) distribute cyclic(8) onto P\nA = 1.0\n")
	f.Add("bogus\nprocessors P(2)\nworse(\n")
	f.Add("processors Q(2,2)\narray M(8,8) distribute (block,block) onto Q\nM(0:7,0:7) = 1.0\n")
	f.Fuzz(func(t *testing.T, src string) {
		sc, errs := ParseAll(src)
		for _, e := range errs {
			if e.Pos.Line < 1 {
				t.Errorf("parse error with bad line: %v", e)
			}
		}
		for _, st := range sc.Stmts {
			if st.Pos().Line < 1 {
				t.Errorf("statement with bad line: %v", st.Pos())
			}
		}
	})
}
