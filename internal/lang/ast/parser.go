package ast

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a whole script, stopping at the first syntax error. The
// returned error, if any, is a *ParseError carrying line and column.
func Parse(src string) (*Script, error) {
	sc := &Script{}
	for ln, line := range strings.Split(src, "\n") {
		st, err := ParseLine(line, ln+1)
		if err != nil {
			return nil, err
		}
		if st != nil {
			sc.Stmts = append(sc.Stmts, st)
		}
	}
	return sc, nil
}

// ParseAll parses a whole script, collecting every line's syntax error
// instead of stopping at the first. Lines that fail to parse are dropped
// from the script; the analyzer reports them as diagnostics.
func ParseAll(src string) (*Script, []*ParseError) {
	sc := &Script{}
	var errs []*ParseError
	for ln, line := range strings.Split(src, "\n") {
		st, err := ParseLine(line, ln+1)
		if err != nil {
			var pe *ParseError
			if perr, ok := err.(*ParseError); ok {
				pe = perr
			} else {
				pe = &ParseError{Pos: Pos{Line: ln + 1, Col: 1}, Msg: err.Error()}
			}
			errs = append(errs, pe)
			continue
		}
		if st != nil {
			sc.Stmts = append(sc.Stmts, st)
		}
	}
	return sc, errs
}

// ParseLine parses a single statement. Blank lines and comments yield a
// nil Stmt and nil error.
func ParseLine(line string, lineNo int) (Stmt, error) {
	if i := strings.Index(line, "!"); i >= 0 {
		line = line[:i]
	}
	trimmed := strings.TrimSpace(line)
	if trimmed == "" {
		return nil, nil
	}
	col := len(line) - len(strings.TrimLeft(line, " \t")) + 1
	p := &lineParser{
		text: trimmed,
		pos:  Pos{Line: lineNo, Col: col},
		base: stmtBase{pos: Pos{Line: lineNo, Col: col}, text: trimmed},
	}
	return p.parseStmt()
}

// lineParser holds the context for parsing one statement.
type lineParser struct {
	text string
	pos  Pos
	base stmtBase
}

func (p *lineParser) errf(format string, args ...any) *ParseError {
	return &ParseError{Pos: p.pos, Stmt: p.text, Msg: fmt.Sprintf(format, args...)}
}

func (p *lineParser) parseStmt() (Stmt, error) {
	fields := strings.Fields(p.text)
	switch fields[0] {
	case "processors":
		return p.parseProcessors(fields)
	case "array":
		return p.parseArrayDecl(fields)
	case "redistribute":
		return p.parseRedistribute(fields)
	case "print":
		return p.parsePrintSum(fields, true)
	case "sum":
		return p.parsePrintSum(fields, false)
	case "table":
		return p.parseTable(fields)
	case "stats":
		if len(fields) != 1 {
			return nil, p.errf("usage: stats")
		}
		return &Stats{stmtBase: p.base}, nil
	default:
		if strings.Contains(p.text, "=") {
			return p.parseAssign()
		}
		return nil, p.errf("unknown statement %q", fields[0])
	}
}

// parseProcessors handles "processors P(4)" and "processors Q(2,2)".
func (p *lineParser) parseProcessors(fields []string) (Stmt, error) {
	if len(fields) != 2 {
		return nil, p.errf("usage: processors NAME(count[,count])")
	}
	name, args, err := p.splitCall(fields[1])
	if err != nil {
		return nil, err
	}
	if len(args) != 1 && len(args) != 2 {
		return nil, p.errf("processors takes one or two counts, got %d", len(args))
	}
	counts := make([]int64, len(args))
	for i, a := range args {
		v, perr := strconv.ParseInt(a, 10, 64)
		if perr != nil || v < 1 {
			return nil, p.errf("invalid processor count %q", a)
		}
		counts[i] = v
	}
	return &Processors{stmtBase: p.base, Name: name, Counts: counts}, nil
}

// parseArrayDecl handles
//
//	array A(320) distribute cyclic(8) onto P
//	array M(16,24) distribute (cyclic(2),cyclic(3)) onto Q
func (p *lineParser) parseArrayDecl(fields []string) (Stmt, error) {
	if len(fields) != 6 || fields[2] != "distribute" || fields[4] != "onto" {
		return nil, p.errf("usage: array NAME(size[,size]) distribute SPEC onto PROCS")
	}
	name, args, err := p.splitCall(fields[1])
	if err != nil {
		return nil, err
	}
	switch len(args) {
	case 1:
		n, perr := strconv.ParseInt(args[0], 10, 64)
		if perr != nil || n < 1 {
			return nil, p.errf("invalid array size %q", args[0])
		}
		spec, serr := p.parseDistSpec(fields[3])
		if serr != nil {
			return nil, serr
		}
		return &ArrayDecl{stmtBase: p.base, Name: name,
			Extents: []int64{n}, Dists: []DistSpec{spec}, Target: fields[5]}, nil
	case 2:
		extents := make([]int64, 2)
		for i, e := range args {
			v, perr := strconv.ParseInt(e, 10, 64)
			if perr != nil || v < 1 {
				return nil, p.errf("invalid extent %q", e)
			}
			extents[i] = v
		}
		spec := fields[3]
		if !strings.HasPrefix(spec, "(") || !strings.HasSuffix(spec, ")") {
			return nil, p.errf("2-D distribution must be (spec,spec), got %q", spec)
		}
		parts := strings.Split(spec[1:len(spec)-1], ",")
		if len(parts) != 2 {
			return nil, p.errf("2-D distribution needs 2 specs, got %d", len(parts))
		}
		dists := make([]DistSpec, 2)
		for d, ps := range parts {
			ds, serr := p.parseDistSpec(strings.TrimSpace(ps))
			if serr != nil {
				return nil, serr
			}
			dists[d] = ds
		}
		return &ArrayDecl{stmtBase: p.base, Name: name,
			Extents: extents, Dists: dists, Target: fields[5]}, nil
	default:
		return nil, p.errf("array %s needs exactly one extent", name)
	}
}

// parseDistSpec parses block, cyclic or cyclic(k).
func (p *lineParser) parseDistSpec(s string) (DistSpec, *ParseError) {
	switch {
	case s == "block":
		return DistSpec{Kind: DistBlock}, nil
	case s == "cyclic":
		return DistSpec{Kind: DistCyclic}, nil
	case strings.HasPrefix(s, "cyclic(") && strings.HasSuffix(s, ")"):
		k, err := strconv.ParseInt(s[len("cyclic("):len(s)-1], 10, 64)
		if err != nil || k < 1 {
			return DistSpec{}, p.errf("invalid block size in %q", s)
		}
		return DistSpec{Kind: DistCyclicK, K: k}, nil
	default:
		return DistSpec{}, p.errf("unknown distribution %q", s)
	}
}

// parseRedistribute handles "redistribute A cyclic(16)".
func (p *lineParser) parseRedistribute(fields []string) (Stmt, error) {
	if len(fields) != 3 {
		return nil, p.errf("usage: redistribute NAME cyclic(k)|cyclic|block")
	}
	if !validIdent(fields[1]) {
		return nil, p.errf("malformed array name %q", fields[1])
	}
	spec, err := p.parseDistSpec(fields[2])
	if err != nil {
		return nil, err
	}
	return &Redistribute{stmtBase: p.base, Name: fields[1], Dist: spec}, nil
}

// parsePrintSum handles "print REF" and "sum REF". The reference may
// contain spaces (print M(0:3, 0:3)); concatenating the fields removes
// them.
func (p *lineParser) parsePrintSum(fields []string, isPrint bool) (Stmt, error) {
	verb := "sum"
	if isPrint {
		verb = "print"
	}
	if len(fields) < 2 {
		return nil, p.errf("usage: %s NAME(lo:hi:stride)", verb)
	}
	ref, err := p.parseRef(strings.Join(fields[1:], ""))
	if err != nil {
		return nil, err
	}
	if isPrint {
		return &Print{stmtBase: p.base, Ref: ref}, nil
	}
	return &Sum{stmtBase: p.base, Ref: ref}, nil
}

// parseTable handles "table A(4:319:9) on 1".
func (p *lineParser) parseTable(fields []string) (Stmt, error) {
	if len(fields) != 4 || fields[2] != "on" {
		return nil, p.errf("usage: table NAME(lo:hi:stride) on PROC")
	}
	ref, err := p.parseRef(fields[1])
	if err != nil {
		return nil, err
	}
	m, perr := strconv.ParseInt(fields[3], 10, 64)
	if perr != nil {
		return nil, p.errf("invalid processor %q", fields[3])
	}
	return &Table{stmtBase: p.base, Ref: ref, Proc: m}, nil
}

// parseAssign handles LHS = RHS.
func (p *lineParser) parseAssign() (Stmt, error) {
	parts := strings.SplitN(p.text, "=", 2)
	lhsText := strings.TrimSpace(parts[0])
	rhsText := strings.TrimSpace(parts[1])
	if lhsText == "" {
		return nil, p.errf("empty left-hand side")
	}
	if rhsText == "" {
		return nil, p.errf("empty right-hand side")
	}
	lhs, err := p.parseRef(lhsText)
	if err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr(rhsText)
	if err != nil {
		return nil, err
	}
	return &Assign{stmtBase: p.base, LHS: lhs, RHS: rhs}, nil
}

// parseExpr parses an assignment right-hand side: a scalar literal,
// "transpose REF", "REF op (REF|scalar)" or a plain REF.
func (p *lineParser) parseExpr(rhs string) (Expr, error) {
	if v, err := strconv.ParseFloat(rhs, 64); err == nil {
		return &Scalar{Val: v}, nil
	}
	if rest, ok := strings.CutPrefix(rhs, "transpose "); ok {
		ref, err := p.parseRef(strings.TrimSpace(rest))
		if err != nil {
			return nil, err
		}
		return &Transpose{Src: ref}, nil
	}
	if left, op, right, found := splitBinary(rhs); found {
		lref, err := p.parseRef(left)
		if err != nil {
			return nil, p.errf("left operand %q: %s", left, parseMsg(err))
		}
		if v, ferr := strconv.ParseFloat(right, 64); ferr == nil {
			return &Binary{Op: op, Left: lref, Right: &Scalar{Val: v}}, nil
		}
		rref, err := p.parseRef(right)
		if err != nil {
			return nil, p.errf("right operand %q: %s", right, parseMsg(err))
		}
		return &Binary{Op: op, Left: lref, Right: rref}, nil
	}
	return p.parseRef(rhs)
}

// parseMsg extracts the bare message from a nested *ParseError so
// operand errors read "left operand "x": malformed ..." without a
// duplicated line prefix.
func parseMsg(err error) string {
	if pe, ok := err.(*ParseError); ok {
		return pe.Msg
	}
	return err.Error()
}

// splitBinary finds the leftmost space-delimited top-level (outside
// parentheses) occurrence of " + ", " - " or " * ".
func splitBinary(s string) (left string, op byte, right string, found bool) {
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ' ':
			if depth == 0 && i+2 < len(s) && s[i+2] == ' ' &&
				(s[i+1] == '+' || s[i+1] == '-' || s[i+1] == '*') {
				return strings.TrimSpace(s[:i]), s[i+1],
					strings.TrimSpace(s[i+3:]), true
			}
		}
	}
	return "", 0, "", false
}

// parseRef parses NAME, NAME(triplet) or NAME(triplet, triplet).
// Subscripts tolerate interior whitespace: "A( 0 : 9 )" parses.
func (p *lineParser) parseRef(s string) (*Ref, error) {
	s = strings.TrimSpace(s)
	i := strings.IndexByte(s, '(')
	if i < 0 {
		if !validIdent(s) {
			return nil, p.errf("malformed reference %q", s)
		}
		return &Ref{RefPos: p.pos, Name: s, Whole: true}, nil
	}
	name := strings.TrimSpace(s[:i])
	if !validIdent(name) {
		return nil, p.errf("malformed reference %q", s)
	}
	if !strings.HasSuffix(s, ")") {
		return nil, p.errf("malformed reference %q", s)
	}
	inner := s[i+1 : len(s)-1]
	if strings.TrimSpace(inner) == "" {
		return nil, p.errf("empty subscript list in %q", s)
	}
	subs := strings.Split(inner, ",")
	if len(subs) > 2 {
		return nil, p.errf("reference %q needs 1 or 2 subscripts, got %d", s, len(subs))
	}
	ref := &Ref{RefPos: p.pos, Name: name}
	for _, t := range subs {
		tri, err := p.parseTriplet(strings.TrimSpace(t))
		if err != nil {
			return nil, err
		}
		ref.Subs = append(ref.Subs, tri)
	}
	return ref, nil
}

// parseTriplet parses lo:hi[:stride]. Zero strides parse; they are
// rejected semantically (section.New) so the interpreter and analyzer
// can both point at them.
func (p *lineParser) parseTriplet(tri string) (Triplet, error) {
	parts := strings.Split(tri, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return Triplet{}, p.errf("malformed triplet %q", tri)
	}
	nums := make([]int64, len(parts))
	for i, s := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return Triplet{}, p.errf("malformed triplet %q: %v", tri, err)
		}
		nums[i] = v
	}
	t := Triplet{Lo: nums[0], Hi: nums[1], Stride: 1}
	if len(nums) == 3 {
		t.Stride = nums[2]
	}
	return t, nil
}

// splitCall parses NAME(arg1,arg2,...) into its pieces.
func (p *lineParser) splitCall(s string) (name string, args []string, err error) {
	i := strings.IndexByte(s, '(')
	if i <= 0 || !strings.HasSuffix(s, ")") {
		return "", nil, p.errf("malformed %q (want NAME(...))", s)
	}
	name = s[:i]
	if !validIdent(name) {
		return "", nil, p.errf("malformed %q (want NAME(...))", s)
	}
	inner := s[i+1 : len(s)-1]
	if strings.TrimSpace(inner) == "" {
		return "", nil, p.errf("empty argument list in %q", s)
	}
	for _, a := range strings.Split(inner, ",") {
		args = append(args, strings.TrimSpace(a))
	}
	return name, args, nil
}

// validIdent reports whether s is a plausible name: a letter or
// underscore followed by letters, digits or underscores.
func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z'):
		case i > 0 && r >= '0' && r <= '9':
		default:
			return false
		}
	}
	return true
}
