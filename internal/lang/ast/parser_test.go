package ast

import (
	"errors"
	"strings"
	"testing"
)

func parseOne(t *testing.T, line string) Stmt {
	t.Helper()
	st, err := ParseLine(line, 1)
	if err != nil {
		t.Fatalf("ParseLine(%q): %v", line, err)
	}
	if st == nil {
		t.Fatalf("ParseLine(%q): no statement", line)
	}
	return st
}

func TestParseProcessors(t *testing.T) {
	p := parseOne(t, "processors P(4)").(*Processors)
	if p.Name != "P" || len(p.Counts) != 1 || p.Counts[0] != 4 {
		t.Errorf("flat processors parsed wrong: %+v", p)
	}
	q := parseOne(t, "processors Q(2,3)").(*Processors)
	if q.Name != "Q" || len(q.Counts) != 2 || q.Counts[0] != 2 || q.Counts[1] != 3 {
		t.Errorf("grid processors parsed wrong: %+v", q)
	}
}

func TestParseArrayDecl(t *testing.T) {
	a := parseOne(t, "array A(320) distribute cyclic(8) onto P").(*ArrayDecl)
	if a.Name != "A" || a.Extents[0] != 320 || a.Target != "P" {
		t.Errorf("1-D decl parsed wrong: %+v", a)
	}
	if a.Dists[0].Kind != DistCyclicK || a.Dists[0].K != 8 {
		t.Errorf("dist spec parsed wrong: %+v", a.Dists[0])
	}
	m := parseOne(t, "array M(16,24) distribute (cyclic(2),block) onto Q").(*ArrayDecl)
	if len(m.Extents) != 2 || m.Extents[1] != 24 {
		t.Errorf("2-D extents parsed wrong: %+v", m)
	}
	if m.Dists[0].Kind != DistCyclicK || m.Dists[1].Kind != DistBlock {
		t.Errorf("2-D dists parsed wrong: %+v", m.Dists)
	}
}

func TestParseAssignForms(t *testing.T) {
	fill := parseOne(t, "A(4:319:9) = 100.0").(*Assign)
	if s, ok := fill.RHS.(*Scalar); !ok || s.Val != 100 {
		t.Errorf("scalar fill parsed wrong: %+v", fill.RHS)
	}
	if tri := fill.LHS.Subs[0]; tri.Lo != 4 || tri.Hi != 319 || tri.Stride != 9 {
		t.Errorf("lhs triplet wrong: %+v", tri)
	}
	copyStmt := parseOne(t, "B(0:70:2) = A(4:319:9)").(*Assign)
	if r, ok := copyStmt.RHS.(*Ref); !ok || r.Name != "A" {
		t.Errorf("copy rhs parsed wrong: %+v", copyStmt.RHS)
	}
	bin := parseOne(t, "B(0:9) = A(0:9) + A(10:19)").(*Assign)
	b, ok := bin.RHS.(*Binary)
	if !ok || b.Op != '+' || b.Left.Name != "A" {
		t.Errorf("binary rhs parsed wrong: %+v", bin.RHS)
	}
	if r, ok := b.Right.(*Ref); !ok || r.Subs[0].Lo != 10 {
		t.Errorf("binary right operand wrong: %+v", b.Right)
	}
	scalarOp := parseOne(t, "B(0:9) = A(0:9) * 2.5").(*Assign)
	sb := scalarOp.RHS.(*Binary)
	if s, ok := sb.Right.(*Scalar); !ok || s.Val != 2.5 || sb.Op != '*' {
		t.Errorf("array-op-scalar parsed wrong: %+v", scalarOp.RHS)
	}
	tr := parseOne(t, "N(0:23, 0:15) = transpose M(0:15, 0:23)").(*Assign)
	tt, ok := tr.RHS.(*Transpose)
	if !ok || tt.Src.Name != "M" || len(tt.Src.Subs) != 2 {
		t.Errorf("transpose parsed wrong: %+v", tr.RHS)
	}
	if len(tr.LHS.Subs) != 2 || tr.LHS.Subs[1].Hi != 15 {
		t.Errorf("2-D lhs parsed wrong: %+v", tr.LHS)
	}
}

func TestParseWholeArrayAndDefaults(t *testing.T) {
	a := parseOne(t, "A = 5.0").(*Assign)
	if !a.LHS.Whole || a.LHS.Name != "A" {
		t.Errorf("whole-array ref wrong: %+v", a.LHS)
	}
	p := parseOne(t, "print A(0:3)").(*Print)
	if p.Ref.Subs[0].Stride != 1 {
		t.Errorf("default stride wrong: %+v", p.Ref.Subs[0])
	}
}

func TestParseSpacesInRefs(t *testing.T) {
	// print/sum concatenate their fields; triplets tolerate spaces.
	p := parseOne(t, "print M(0:3, 0:3)").(*Print)
	if len(p.Ref.Subs) != 2 {
		t.Errorf("spaced 2-D print ref wrong: %+v", p.Ref)
	}
	a := parseOne(t, "A( 0 : 9 ) = 1.0").(*Assign)
	if a.LHS.Subs[0].Hi != 9 {
		t.Errorf("spaced triplet wrong: %+v", a.LHS.Subs[0])
	}
}

func TestParseCommentsAndBlank(t *testing.T) {
	for _, line := range []string{"", "   ", "! comment", "  ! indented comment"} {
		st, err := ParseLine(line, 1)
		if err != nil || st != nil {
			t.Errorf("ParseLine(%q) = %v, %v; want nil, nil", line, st, err)
		}
	}
	st := parseOne(t, "stats ! trailing comment")
	if _, ok := st.(*Stats); !ok {
		t.Errorf("trailing comment not stripped: %T", st)
	}
}

func TestParsePositions(t *testing.T) {
	sc, err := Parse("processors P(2)\n\n  sum A\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Stmts) != 2 {
		t.Fatalf("want 2 statements, got %d", len(sc.Stmts))
	}
	if pos := sc.Stmts[1].Pos(); pos.Line != 3 || pos.Col != 3 {
		t.Errorf("indented statement position wrong: %v", pos)
	}
	if sc.Stmts[1].Text() != "sum A" {
		t.Errorf("statement text wrong: %q", sc.Stmts[1].Text())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ line, want string }{
		{"bogus stuff", "unknown statement"},
		{"processors P(0)", "invalid processor count"},
		{"processors P(2,3,4)", "one or two counts"},
		{"array A(10) distribute weird onto P", "unknown distribution"},
		{"array A(0) distribute block onto P", "invalid array size"},
		{"array M(8,-1) distribute (block,block) onto Q", "invalid extent"},
		{"array M(8,8) distribute cyclic(2) onto Q", "2-D distribution"},
		{"array M(8,8) distribute (block) onto Q", "needs 2 specs"},
		{"print A(0:1:2:3)", "malformed triplet"},
		{"print", "usage: print"},
		{"sum", "usage: sum"},
		{"table A(0:5) on x", "invalid processor"},
		{"table A(0:5) over 1", "usage: table"},
		{"stats now", "usage: stats"},
		{"A(0:4) =", "empty right-hand side"},
		{"= 3.0", "empty left-hand side"},
		{"A() = 1.0", "empty subscript list"},
		{"A(5) = 1.0", "malformed triplet"},
		{"A(0:4 = 1.0", "malformed reference"},
		{"2x(0:4) = 1.0", "malformed reference"},
		{"A(0:1,0:1,0:1) = 1.0", "1 or 2 subscripts"},
		{"A(0:4) = B(0:4 + A(0:4)", "malformed triplet"},
		{"A(::", "unknown statement"},
		{"redistribute A", "usage: redistribute"},
		{"redistribute 1x cyclic(2)", "malformed array name"},
		{"processors P", "want NAME"},
		{"processors P()", "empty argument list"},
	}
	for _, c := range cases {
		st, err := ParseLine(c.line, 7)
		if err == nil {
			t.Errorf("ParseLine(%q) = %v; want error", c.line, st)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseLine(%q) error %q does not contain %q", c.line, err, c.want)
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("ParseLine(%q) error is %T, not *ParseError", c.line, err)
		} else if pe.Pos.Line != 7 {
			t.Errorf("ParseLine(%q) error line = %d, want 7", c.line, pe.Pos.Line)
		}
	}
}

func TestParseAllCollectsErrors(t *testing.T) {
	sc, errs := ParseAll("processors P(2)\nbogus\narray A(10) distribute cyclic(2) onto P\nworse(\n")
	if len(sc.Stmts) != 2 {
		t.Errorf("want 2 parsed statements, got %d", len(sc.Stmts))
	}
	if len(errs) != 2 {
		t.Fatalf("want 2 parse errors, got %v", errs)
	}
	if errs[0].Pos.Line != 2 || errs[1].Pos.Line != 4 {
		t.Errorf("error lines wrong: %v", errs)
	}
}

func TestRefsHelper(t *testing.T) {
	st := parseOne(t, "B(0:9) = A(0:9) + C(10:19)")
	refs := Refs(st)
	if len(refs) != 3 {
		t.Fatalf("want 3 refs, got %d", len(refs))
	}
	names := []string{refs[0].Name, refs[1].Name, refs[2].Name}
	if strings.Join(names, "") != "BAC" {
		t.Errorf("refs order wrong: %v", names)
	}
	if got := Refs(parseOne(t, "stats")); got != nil {
		t.Errorf("stats should have no refs: %v", got)
	}
}

func TestZeroStrideParses(t *testing.T) {
	// Zero strides are syntactically valid; rejecting them is semantic
	// (section.New for the interpreter, HPF011 for the analyzer).
	a := parseOne(t, "A(0:5:0) = 1.0").(*Assign)
	if a.LHS.Subs[0].Stride != 0 {
		t.Errorf("zero stride not preserved: %+v", a.LHS.Subs[0])
	}
}
