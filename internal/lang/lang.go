// Package lang implements a miniature HPF-flavored array language — the
// front end the paper's runtime routines were built to serve. A script
// declares a processor arrangement, declares distributed arrays, and
// performs section assignments; the interpreter lowers every statement
// onto the library: scalar fills run through the AM-table node code,
// array-to-array section assignments run through planned communication
// sets on the simulated machine, and redistribution re-deals the blocks.
//
// Scripts are parsed into the typed syntax tree of internal/lang/ast and
// then executed, so the interpreter shares one grammar with the static
// analyzer in internal/analysis (and with cmd/hpflint). See the ast
// package for the grammar:
//
//	processors P(4)
//	array A(320) distribute cyclic(8) onto P
//	array B(320) distribute block onto P
//	A(4:319:9) = 100.0              ! scalar fill through AM tables
//	B(0:70:2) = A(4:319:9)          ! section copy with comm sets
//	B(0:9) = A(0:9) + A(10:19)      ! elementwise expressions (+ - *)
//	B(0:9) = A(0:9) * 2.0           ! array op scalar
//	redistribute A cyclic(16)
//	print A(0:40:4)
//	sum A(4:319:9)
//	table A(4:319:9) on 1           ! show the AM table for processor 1
//	stats                           ! communication counters (and reset)
//
// Two-dimensional arrays live on processor grids (see lang2d.go):
//
//	processors Q(2,2)
//	array M(16,24) distribute (cyclic(2),cyclic(3)) onto Q
//	M(0:15:2, 0:23) = 1.0
//	N(0:23, 0:15) = transpose M(0:15, 0:23)
//
// Triplets follow Fortran 90: lo:hi:stride with inclusive bounds; the
// stride defaults to 1, and "A" alone means the whole array.
package lang

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/hpf"
	"repro/internal/lang/ast"
	"repro/internal/machine"
	"repro/internal/redist"
	"repro/internal/section"
	"repro/internal/viz"
)

// Interp holds the interpreter state across statements.
type Interp struct {
	out      *strings.Builder
	procs    int64
	procName string
	machine  *machine.Machine
	arrays   map[string]*hpf.Array
	gridDims map[string][]int64
	arrays2  map[string]*hpf.Array2D
}

// New returns a fresh interpreter.
func New() *Interp {
	return &Interp{
		out:      &strings.Builder{},
		arrays:   map[string]*hpf.Array{},
		gridDims: map[string][]int64{},
		arrays2:  map[string]*hpf.Array2D{},
	}
}

// newMachine builds a machine with n processors.
func newMachine(n int64) *machine.Machine {
	return machine.MustNew(int(n))
}

// Output returns everything print/sum/table statements have produced.
func (in *Interp) Output() string { return in.out.String() }

// Array exposes a declared array (for tests and embedding callers).
func (in *Interp) Array(name string) (*hpf.Array, bool) {
	a, ok := in.arrays[name]
	return a, ok
}

// Run parses a whole script and then executes it statement by
// statement, stopping at the first error. Both parse and runtime errors
// are annotated "line N: <stmt>: <err>".
func (in *Interp) Run(src string) error {
	script, err := ast.Parse(src)
	if err != nil {
		return err
	}
	return in.RunScript(script)
}

// RunScript executes an already-parsed script.
func (in *Interp) RunScript(script *ast.Script) error {
	for _, st := range script.Stmts {
		if err := in.ExecStmt(st); err != nil {
			return fmt.Errorf("line %d: %s: %w", st.Pos().Line, st.Text(), err)
		}
	}
	return nil
}

// Exec parses and executes a single statement. Blank lines and comments
// are no-ops.
func (in *Interp) Exec(line string) error {
	st, err := ast.ParseLine(line, 1)
	if err != nil {
		return err
	}
	if st == nil {
		return nil
	}
	return in.ExecStmt(st)
}

// ExecStmt executes one parsed statement.
func (in *Interp) ExecStmt(st ast.Stmt) error {
	switch s := st.(type) {
	case *ast.Processors:
		return in.execProcessors(s)
	case *ast.ArrayDecl:
		return in.execArrayDecl(s)
	case *ast.Redistribute:
		return in.execRedistribute(s)
	case *ast.Assign:
		return in.execAssign(s)
	case *ast.Print:
		return in.execPrint(s)
	case *ast.Sum:
		return in.execSum(s)
	case *ast.Table:
		return in.execTable(s)
	case *ast.Stats:
		return in.execStats()
	default:
		return fmt.Errorf("unsupported statement %T", st)
	}
}

// execProcessors handles flat arrangements (processors P(4)) and grids
// (processors Q(2,2)).
func (in *Interp) execProcessors(s *ast.Processors) error {
	if len(s.Counts) == 2 {
		return in.execProcessors2(s)
	}
	if in.procName != "" {
		return fmt.Errorf("flat processors already declared")
	}
	if _, dup := in.gridDims[s.Name]; dup {
		return fmt.Errorf("processors %s already declared", s.Name)
	}
	in.procs = s.Counts[0]
	in.procName = s.Name
	in.ensureMachine(in.procs)
	return nil
}

// execArrayDecl handles 1-D declarations
// (array A(320) distribute cyclic(8) onto P) and dispatches 2-D ones
// (array M(16,24) distribute (cyclic(2),cyclic(3)) onto Q).
func (in *Interp) execArrayDecl(s *ast.ArrayDecl) error {
	if in.machine == nil {
		return fmt.Errorf("declare processors first")
	}
	if len(s.Extents) == 2 {
		return in.execArray2(s)
	}
	if s.Target != in.procName {
		return fmt.Errorf("unknown processor arrangement %q", s.Target)
	}
	if err := in.checkFreshName(s.Name); err != nil {
		return err
	}
	n := s.Extents[0]
	layout, err := layoutFor(s.Dists[0], in.procs, n)
	if err != nil {
		return err
	}
	a, err := hpf.NewArray(layout, n)
	if err != nil {
		return err
	}
	in.arrays[s.Name] = a
	return nil
}

// checkFreshName rejects names already bound to a 1-D or 2-D array.
func (in *Interp) checkFreshName(name string) error {
	if _, dup := in.arrays[name]; dup {
		return fmt.Errorf("array %s already declared", name)
	}
	if _, dup := in.arrays2[name]; dup {
		return fmt.Errorf("array %s already declared", name)
	}
	return nil
}

// layoutFor lowers a distribution spec onto p processors for an n-cell
// array: block is cyclic(ceil(n/p)), cyclic is cyclic(1).
func layoutFor(spec ast.DistSpec, p, n int64) (dist.Layout, error) {
	switch spec.Kind {
	case ast.DistBlock:
		return dist.Block(p, n)
	case ast.DistCyclic:
		return dist.Cyclic(p)
	default:
		return dist.New(p, spec.K)
	}
}

// execRedistribute handles: redistribute A cyclic(16)
func (in *Interp) execRedistribute(s *ast.Redistribute) error {
	a, ok := in.arrays[s.Name]
	if !ok {
		return fmt.Errorf("unknown array %q", s.Name)
	}
	layout, err := layoutFor(s.Dist, in.procs, a.N())
	if err != nil {
		return err
	}
	b, err := redist.Redistribute(in.machine, a, layout)
	if err != nil {
		return err
	}
	in.arrays[s.Name] = b
	return nil
}

// array1 resolves a reference against the declared 1-D arrays and turns
// its subscript into a section (the whole array for a bare name).
func (in *Interp) array1(ref *ast.Ref) (*hpf.Array, section.Section, error) {
	a, ok := in.arrays[ref.Name]
	if !ok {
		return nil, section.Section{}, fmt.Errorf("unknown array %q", ref.Name)
	}
	if ref.Whole {
		return a, section.Section{Lo: 0, Hi: a.N() - 1, Stride: 1}, nil
	}
	if len(ref.Subs) != 1 {
		return nil, section.Section{},
			fmt.Errorf("1-D array %q takes one subscript, got %d", ref.Name, len(ref.Subs))
	}
	t := ref.Subs[0]
	sec, err := section.New(t.Lo, t.Hi, t.Stride)
	if err != nil {
		return nil, section.Section{}, err
	}
	return a, sec, nil
}

// execAssign handles scalar fills, section copies and elementwise binary
// expressions:
//
//	A(sec) = 3.0                    scalar fill
//	A(sec) = B(sec)                 section copy
//	A(sec) = B(sec) + C(sec)        elementwise array op (+ - *)
//	A(sec) = B(sec) * 2.0           array op scalar
func (in *Interp) execAssign(s *ast.Assign) error {
	if in.machine == nil {
		return fmt.Errorf("declare processors first")
	}
	if _, ok := in.arrays2[s.LHS.Name]; ok {
		return in.execAssign2(s)
	}
	dst, dstSec, err := in.array1(s.LHS)
	if err != nil {
		return err
	}
	switch rhs := s.RHS.(type) {
	case *ast.Scalar:
		return dst.FillSection(dstSec, rhs.Val)
	case *ast.Transpose:
		return fmt.Errorf("transpose requires a 2-D destination, %q is 1-D", s.LHS.Name)
	case *ast.Binary:
		return in.execBinary(dst, dstSec, rhs)
	case *ast.Ref:
		src, srcSec, err := in.array1(rhs)
		if err != nil {
			return fmt.Errorf("right-hand side %q: %w", rhs, err)
		}
		return comm.Copy(in.machine, dst, dstSec, src, srcSec)
	default:
		return fmt.Errorf("unsupported expression %T", s.RHS)
	}
}

// execBinary evaluates dst(dstSec) = left OP right, where left is an
// array reference and right is an array reference or a scalar.
func (in *Interp) execBinary(dst *hpf.Array, dstSec section.Section, e *ast.Binary) error {
	fn, ok := map[byte]comm.BinOp{
		'+': comm.Add,
		'-': func(a, b float64) float64 { return a - b },
		'*': func(a, b float64) float64 { return a * b },
	}[e.Op]
	if !ok {
		return fmt.Errorf("unknown operator %q", string(e.Op))
	}
	a, aSec, err := in.array1(e.Left)
	if err != nil {
		return fmt.Errorf("left operand %q: %w", e.Left, err)
	}

	// Array op scalar: copy then map.
	if v, ok := e.Right.(*ast.Scalar); ok {
		if err := comm.Copy(in.machine, dst, dstSec, a, aSec); err != nil {
			return err
		}
		return dst.MapSection(dstSec, func(x float64) float64 { return fn(x, v.Val) })
	}

	// Array op array.
	right := e.Right.(*ast.Ref)
	b, bSec, err := in.array1(right)
	if err != nil {
		return fmt.Errorf("right operand %q: %w", right, err)
	}
	return comm.Combine(in.machine, dst, dstSec, a, aSec, b, bSec, fn)
}

// execPrint handles: print A(0:40:4)
func (in *Interp) execPrint(s *ast.Print) error {
	if _, ok := in.arrays2[s.Ref.Name]; ok {
		return in.execPrint2(s.Ref)
	}
	a, sec, err := in.array1(s.Ref)
	if err != nil {
		return err
	}
	vals, err := a.GatherSection(sec)
	if err != nil {
		return err
	}
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	fmt.Fprintf(in.out, "%s(%v) = [%s]\n", s.Ref.Name, sec, strings.Join(parts, " "))
	return nil
}

// execSum handles: sum A(4:319:9)
func (in *Interp) execSum(s *ast.Sum) error {
	if _, ok := in.arrays2[s.Ref.Name]; ok {
		return in.execSum2(s.Ref)
	}
	a, sec, err := in.array1(s.Ref)
	if err != nil {
		return err
	}
	total, err := a.SumSection(sec)
	if err != nil {
		return err
	}
	fmt.Fprintf(in.out, "sum %s(%v) = %s\n", s.Ref.Name, sec,
		strconv.FormatFloat(total, 'g', -1, 64))
	return nil
}

// execTable handles: table A(4:319:9) on 1
func (in *Interp) execTable(s *ast.Table) error {
	a, sec, err := in.array1(s.Ref)
	if err != nil {
		return err
	}
	m := s.Proc
	asc, _ := sec.Ascending()
	if asc.Empty() {
		fmt.Fprintf(in.out, "table %s(%v) on %d: empty section\n", s.Ref.Name, sec, m)
		return nil
	}
	pr := core.Problem{
		P: a.Layout().P(), K: a.Layout().K(),
		L: asc.Lo, S: asc.Stride, M: m,
	}
	seq, err := core.Lattice(pr)
	if err != nil {
		return err
	}
	fmt.Fprintf(in.out, "table %s(%v) on %d: %s\n", s.Ref.Name, sec, m, viz.AMTable(seq))
	return nil
}

// execStats handles: stats — print and reset the machine's communication
// counters.
func (in *Interp) execStats() error {
	if in.machine == nil {
		return fmt.Errorf("declare processors first")
	}
	total := in.machine.TotalStats()
	fmt.Fprintf(in.out, "comm: %d messages, %d values\n",
		total.MessagesSent, total.ValuesSent)
	in.machine.ResetStats()
	return nil
}
