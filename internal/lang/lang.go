// Package lang implements a miniature HPF-flavored array language — the
// front end the paper's runtime routines were built to serve. A script
// declares a processor arrangement, declares distributed arrays, and
// performs section assignments; the interpreter lowers every statement
// onto the library: scalar fills run through the AM-table node code,
// array-to-array section assignments run through planned communication
// sets on the simulated machine, and redistribution re-deals the blocks.
//
// Grammar (one statement per line; "!" starts a comment):
//
//	processors P(4)
//	array A(320) distribute cyclic(8) onto P
//	array B(320) distribute block onto P
//	A(4:319:9) = 100.0              ! scalar fill through AM tables
//	B(0:70:2) = A(4:319:9)          ! section copy with comm sets
//	B(0:9) = A(0:9) + A(10:19)      ! elementwise expressions (+ - *)
//	B(0:9) = A(0:9) * 2.0           ! array op scalar
//	redistribute A cyclic(16)
//	print A(0:40:4)
//	sum A(4:319:9)
//	table A(4:319:9) on 1           ! show the AM table for processor 1
//	stats                           ! communication counters (and reset)
//
// Two-dimensional arrays live on processor grids (see lang2d.go):
//
//	processors Q(2,2)
//	array M(16,24) distribute (cyclic(2),cyclic(3)) onto Q
//	M(0:15:2, 0:23) = 1.0
//	N(0:23, 0:15) = transpose M(0:15, 0:23)
//
// Triplets follow Fortran 90: lo:hi:stride with inclusive bounds; the
// stride defaults to 1, and "A" alone means the whole array.
package lang

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/hpf"
	"repro/internal/machine"
	"repro/internal/redist"
	"repro/internal/section"
	"repro/internal/viz"
)

// Interp holds the interpreter state across statements.
type Interp struct {
	out      *strings.Builder
	procs    int64
	procName string
	machine  *machine.Machine
	arrays   map[string]*hpf.Array
	gridDims map[string][]int64
	arrays2  map[string]*hpf.Array2D
}

// New returns a fresh interpreter.
func New() *Interp {
	return &Interp{
		out:      &strings.Builder{},
		arrays:   map[string]*hpf.Array{},
		gridDims: map[string][]int64{},
		arrays2:  map[string]*hpf.Array2D{},
	}
}

// newMachine builds a machine with n processors.
func newMachine(n int64) *machine.Machine {
	return machine.MustNew(int(n))
}

// Output returns everything print/sum/table statements have produced.
func (in *Interp) Output() string { return in.out.String() }

// Array exposes a declared array (for tests and embedding callers).
func (in *Interp) Array(name string) (*hpf.Array, bool) {
	a, ok := in.arrays[name]
	return a, ok
}

// Run executes a whole script, stopping at the first error, which is
// annotated with its 1-based line number.
func (in *Interp) Run(src string) error {
	for ln, line := range strings.Split(src, "\n") {
		if err := in.Exec(line); err != nil {
			return fmt.Errorf("line %d: %w", ln+1, err)
		}
	}
	return nil
}

// Exec executes a single statement. Blank lines and comments are no-ops.
func (in *Interp) Exec(line string) error {
	if i := strings.Index(line, "!"); i >= 0 {
		line = line[:i]
	}
	line = strings.TrimSpace(line)
	if line == "" {
		return nil
	}
	fields := strings.Fields(line)
	switch fields[0] {
	case "processors":
		return in.execProcessors(fields)
	case "array":
		return in.execArray(fields)
	case "redistribute":
		return in.execRedistribute(fields)
	case "print":
		return in.execPrint(fields)
	case "sum":
		return in.execSum(fields)
	case "table":
		return in.execTable(fields)
	case "stats":
		return in.execStats(fields)
	default:
		if strings.Contains(line, "=") {
			return in.execAssign(line)
		}
		return fmt.Errorf("unknown statement %q", fields[0])
	}
}

// execProcessors handles flat arrangements (processors P(4)) and grids
// (processors Q(2,2)).
func (in *Interp) execProcessors(fields []string) error {
	if len(fields) != 2 {
		return fmt.Errorf("usage: processors NAME(count[,count])")
	}
	name, args, err := splitCall(fields[1])
	if err != nil {
		return err
	}
	if len(args) == 2 {
		return in.execProcessors2(name, args)
	}
	if in.procName != "" {
		return fmt.Errorf("flat processors already declared")
	}
	if _, dup := in.gridDims[name]; dup {
		return fmt.Errorf("processors %s already declared", name)
	}
	if len(args) != 1 {
		return fmt.Errorf("processors takes one or two counts, got %d", len(args))
	}
	p, err := strconv.ParseInt(args[0], 10, 64)
	if err != nil || p < 1 {
		return fmt.Errorf("invalid processor count %q", args[0])
	}
	in.procs = p
	in.procName = name
	in.ensureMachine(p)
	return nil
}

// execArray handles 1-D declarations
// (array A(320) distribute cyclic(8) onto P) and dispatches 2-D ones
// (array M(16,24) distribute (cyclic(2),cyclic(3)) onto Q).
func (in *Interp) execArray(fields []string) error {
	if in.machine == nil {
		return fmt.Errorf("declare processors first")
	}
	if len(fields) != 6 || fields[2] != "distribute" || fields[4] != "onto" {
		return fmt.Errorf("usage: array NAME(size[,size]) distribute SPEC onto %s",
			orProcs(in.procName))
	}
	name, args, err := splitCall(fields[1])
	if err != nil {
		return err
	}
	if len(args) == 2 {
		return in.execArray2(name, args, fields[3], fields[5])
	}
	if fields[5] != in.procName {
		return fmt.Errorf("unknown processor arrangement %q", fields[5])
	}
	if _, dup := in.arrays[name]; dup {
		return fmt.Errorf("array %s already declared", name)
	}
	if _, dup := in.arrays2[name]; dup {
		return fmt.Errorf("array %s already declared", name)
	}
	if len(args) != 1 {
		return fmt.Errorf("array %s needs exactly one extent", name)
	}
	n, err := strconv.ParseInt(args[0], 10, 64)
	if err != nil || n < 1 {
		return fmt.Errorf("invalid array size %q", args[0])
	}
	layout, err := in.parseDist(fields[3], n)
	if err != nil {
		return err
	}
	a, err := hpf.NewArray(layout, n)
	if err != nil {
		return err
	}
	in.arrays[name] = a
	return nil
}

func orProcs(name string) string {
	if name == "" {
		return "PROCS"
	}
	return name
}

// parseDist parses cyclic(8), cyclic, or block.
func (in *Interp) parseDist(spec string, n int64) (dist.Layout, error) {
	switch {
	case spec == "block":
		return dist.Block(in.procs, n)
	case spec == "cyclic":
		return dist.Cyclic(in.procs)
	case strings.HasPrefix(spec, "cyclic(") && strings.HasSuffix(spec, ")"):
		k, err := strconv.ParseInt(spec[len("cyclic("):len(spec)-1], 10, 64)
		if err != nil || k < 1 {
			return dist.Layout{}, fmt.Errorf("invalid block size in %q", spec)
		}
		return dist.New(in.procs, k)
	default:
		return dist.Layout{}, fmt.Errorf("unknown distribution %q", spec)
	}
}

// execRedistribute handles: redistribute A cyclic(16)
func (in *Interp) execRedistribute(fields []string) error {
	if len(fields) != 3 {
		return fmt.Errorf("usage: redistribute NAME cyclic(k)|cyclic|block")
	}
	a, ok := in.arrays[fields[1]]
	if !ok {
		return fmt.Errorf("unknown array %q", fields[1])
	}
	layout, err := in.parseDist(fields[2], a.N())
	if err != nil {
		return err
	}
	b, err := redist.Redistribute(in.machine, a, layout)
	if err != nil {
		return err
	}
	in.arrays[fields[1]] = b
	return nil
}

// execAssign handles scalar fills, section copies and elementwise binary
// expressions:
//
//	A(sec) = 3.0                    scalar fill
//	A(sec) = B(sec)                 section copy
//	A(sec) = B(sec) + C(sec)        elementwise array op (+ - *)
//	A(sec) = B(sec) * 2.0           array op scalar
func (in *Interp) execAssign(line string) error {
	if in.machine == nil {
		return fmt.Errorf("declare processors first")
	}
	parts := strings.SplitN(line, "=", 2)
	lhs := strings.TrimSpace(parts[0])
	rhs := strings.TrimSpace(parts[1])
	if in.is2DRef(lhs) {
		return in.execAssign2(lhs, rhs)
	}
	dstName, dstSec, err := in.parseRef(lhs)
	if err != nil {
		return err
	}
	dst := in.arrays[dstName]

	// Scalar fill?
	if v, err := strconv.ParseFloat(rhs, 64); err == nil {
		return dst.FillSection(dstSec, v)
	}

	// Binary expression? Scan for a top-level operator (operands contain
	// no spaces, so " op " is unambiguous).
	for _, op := range []string{" + ", " - ", " * "} {
		if i := strings.Index(rhs, op); i >= 0 {
			return in.execBinary(dst, dstSec, strings.TrimSpace(rhs[:i]),
				strings.TrimSpace(op), strings.TrimSpace(rhs[i+len(op):]))
		}
	}

	// Plain section copy.
	srcName, srcSec, err := in.parseRef(rhs)
	if err != nil {
		return fmt.Errorf("right-hand side %q: %w", rhs, err)
	}
	src := in.arrays[srcName]
	return comm.Copy(in.machine, dst, dstSec, src, srcSec)
}

// execBinary evaluates dst(dstSec) = left OP right, where left is an
// array reference and right is an array reference or a scalar.
func (in *Interp) execBinary(dst *hpf.Array, dstSec section.Section,
	left, op, right string) error {
	fn, ok := map[string]comm.BinOp{
		"+": comm.Add,
		"-": func(a, b float64) float64 { return a - b },
		"*": func(a, b float64) float64 { return a * b },
	}[op]
	if !ok {
		return fmt.Errorf("unknown operator %q", op)
	}
	aName, aSec, err := in.parseRef(left)
	if err != nil {
		return fmt.Errorf("left operand %q: %w", left, err)
	}
	a := in.arrays[aName]

	// Array op scalar: copy then map.
	if v, err := strconv.ParseFloat(right, 64); err == nil {
		if err := comm.Copy(in.machine, dst, dstSec, a, aSec); err != nil {
			return err
		}
		return dst.MapSection(dstSec, func(x float64) float64 { return fn(x, v) })
	}

	// Array op array.
	bName, bSec, err := in.parseRef(right)
	if err != nil {
		return fmt.Errorf("right operand %q: %w", right, err)
	}
	b := in.arrays[bName]
	return comm.Combine(in.machine, dst, dstSec, a, aSec, b, bSec, fn)
}

// execPrint handles: print A(0:40:4)
func (in *Interp) execPrint(fields []string) error {
	ref := strings.Join(fields[1:], " ")
	if len(fields) < 2 {
		return fmt.Errorf("usage: print NAME(lo:hi:stride)")
	}
	ref = strings.ReplaceAll(ref, " ", "")
	if in.is2DRef(ref) {
		return in.execPrint2(ref)
	}
	name, sec, err := in.parseRef(ref)
	if err != nil {
		return err
	}
	vals, err := in.arrays[name].GatherSection(sec)
	if err != nil {
		return err
	}
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	fmt.Fprintf(in.out, "%s(%v) = [%s]\n", name, sec, strings.Join(parts, " "))
	return nil
}

// execSum handles: sum A(4:319:9)
func (in *Interp) execSum(fields []string) error {
	if len(fields) < 2 {
		return fmt.Errorf("usage: sum NAME(lo:hi:stride)")
	}
	ref := strings.ReplaceAll(strings.Join(fields[1:], " "), " ", "")
	if in.is2DRef(ref) {
		return in.execSum2(ref)
	}
	name, sec, err := in.parseRef(ref)
	if err != nil {
		return err
	}
	total, err := in.arrays[name].SumSection(sec)
	if err != nil {
		return err
	}
	fmt.Fprintf(in.out, "sum %s(%v) = %s\n", name, sec,
		strconv.FormatFloat(total, 'g', -1, 64))
	return nil
}

// execTable handles: table A(4:319:9) on 1
func (in *Interp) execTable(fields []string) error {
	if len(fields) != 4 || fields[2] != "on" {
		return fmt.Errorf("usage: table NAME(lo:hi:stride) on PROC")
	}
	name, sec, err := in.parseRef(fields[1])
	if err != nil {
		return err
	}
	m, err := strconv.ParseInt(fields[3], 10, 64)
	if err != nil {
		return fmt.Errorf("invalid processor %q", fields[3])
	}
	a := in.arrays[name]
	asc, _ := sec.Ascending()
	if asc.Empty() {
		fmt.Fprintf(in.out, "table %s(%v) on %d: empty section\n", name, sec, m)
		return nil
	}
	pr := core.Problem{
		P: a.Layout().P(), K: a.Layout().K(),
		L: asc.Lo, S: asc.Stride, M: m,
	}
	seq, err := core.Lattice(pr)
	if err != nil {
		return err
	}
	fmt.Fprintf(in.out, "table %s(%v) on %d: %s\n", name, sec, m, viz.AMTable(seq))
	return nil
}

// execStats handles: stats — print and reset the machine's communication
// counters.
func (in *Interp) execStats(fields []string) error {
	if len(fields) != 1 {
		return fmt.Errorf("usage: stats")
	}
	if in.machine == nil {
		return fmt.Errorf("declare processors first")
	}
	total := in.machine.TotalStats()
	fmt.Fprintf(in.out, "comm: %d messages, %d values\n",
		total.MessagesSent, total.ValuesSent)
	in.machine.ResetStats()
	return nil
}

// parseRef parses NAME or NAME(lo:hi[:stride]) against a declared array.
func (in *Interp) parseRef(ref string) (string, section.Section, error) {
	name := ref
	triplet := ""
	if i := strings.IndexByte(ref, '('); i >= 0 {
		if !strings.HasSuffix(ref, ")") {
			return "", section.Section{}, fmt.Errorf("malformed reference %q", ref)
		}
		name, triplet = ref[:i], ref[i+1:len(ref)-1]
	}
	a, ok := in.arrays[name]
	if !ok {
		return "", section.Section{}, fmt.Errorf("unknown array %q", name)
	}
	if triplet == "" {
		return name, section.Section{Lo: 0, Hi: a.N() - 1, Stride: 1}, nil
	}
	parts := strings.Split(triplet, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return "", section.Section{}, fmt.Errorf("malformed triplet %q", triplet)
	}
	nums := make([]int64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return "", section.Section{}, fmt.Errorf("malformed triplet %q: %v", triplet, err)
		}
		nums[i] = v
	}
	stride := int64(1)
	if len(nums) == 3 {
		stride = nums[2]
	}
	sec, err := section.New(nums[0], nums[1], stride)
	if err != nil {
		return "", section.Section{}, err
	}
	return name, sec, nil
}

// splitCall parses NAME(arg1,arg2,...) into its pieces.
func splitCall(s string) (name string, args []string, err error) {
	i := strings.IndexByte(s, '(')
	if i <= 0 || !strings.HasSuffix(s, ")") {
		return "", nil, fmt.Errorf("malformed %q (want NAME(...))", s)
	}
	name = s[:i]
	for _, a := range strings.Split(s[i+1:len(s)-1], ",") {
		args = append(args, strings.TrimSpace(a))
	}
	return name, args, nil
}
