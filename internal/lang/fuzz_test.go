package lang

import (
	"strings"
	"testing"
)

// FuzzExec feeds arbitrary statements to an interpreter with a prepared
// environment. Malformed input must produce errors, never panics.
func FuzzExec(f *testing.F) {
	seeds := []string{
		"processors P(4)",
		"array A(320) distribute cyclic(8) onto P",
		"A(4:319:9) = 100.0",
		"B(0:70:2) = A(4:319:9)",
		"print A(0:40:4)",
		"sum A",
		"table A(4:319:9) on 1",
		"redistribute A cyclic(16)",
		"stats",
		"processors Q(2,2)",
		"array M(8,8) distribute (cyclic(2),cyclic(2)) onto Q",
		"M(0:7, 0:7) = transpose M(0:7, 0:7)",
		"A(0:9) = A(0:9) + A(0:9)",
		"A(0:9) = A(0:9) * 2.0",
		"A(::",
		"array A(999999999999999999999) distribute cyclic(8) onto P",
		"sum A(0:-5:1)",
		"table A(0:1000000:1) on -3",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, stmt string) {
		in := New()
		// A prepared environment so array statements have targets.
		for _, setup := range []string{
			"processors P(4)",
			"processors Q(2,2)",
			"array A(64) distribute cyclic(4) onto P",
			"array B(64) distribute cyclic(8) onto P",
			"array M(8,8) distribute (cyclic(2),cyclic(2)) onto Q",
		} {
			if err := in.Exec(setup); err != nil {
				t.Fatalf("setup %q: %v", setup, err)
			}
		}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("statement %q panicked: %v", stmt, r)
			}
		}()
		// Bound pathological statement lengths; errors are fine.
		if len(stmt) > 200 {
			stmt = stmt[:200]
		}
		// Avoid statements that legitimately take unbounded time (huge
		// in-bounds fills are valid programs, not parser bugs).
		if strings.Contains(stmt, "999999") {
			return
		}
		_ = in.Exec(stmt)
	})
}
