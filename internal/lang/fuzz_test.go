package lang

import (
	"strings"
	"testing"
)

// FuzzExec feeds arbitrary statements to an interpreter with a prepared
// environment. Malformed input must produce errors, never panics.
func FuzzExec(f *testing.F) {
	seeds := []string{
		"processors P(4)",
		"array A(320) distribute cyclic(8) onto P",
		"A(4:319:9) = 100.0",
		"B(0:70:2) = A(4:319:9)",
		"print A(0:40:4)",
		"sum A",
		"table A(4:319:9) on 1",
		"redistribute A cyclic(16)",
		"stats",
		"processors Q(2,2)",
		"array M(8,8) distribute (cyclic(2),cyclic(2)) onto Q",
		"M(0:7, 0:7) = transpose M(0:7, 0:7)",
		"A(0:9) = A(0:9) + A(0:9)",
		"A(0:9) = A(0:9) * 2.0",
		"A(::",
		"array A(999999999999999999999) distribute cyclic(8) onto P",
		"sum A(0:-5:1)",
		"table A(0:1000000:1) on -3",
		// 2-D statements
		"array N(8,8) distribute (block,block) onto Q",
		"N(0:7, 0:7) = 3.5",
		"N(0:7, 0:7) = M(0:7, 0:7)",
		"print M(0:3, 0:3)",
		"sum M(0:7, 0:7)",
		"M(0:7) = 1.0",
		"A(0:3, 0:3) = 1.0",
		// redistribute forms, valid and malformed
		"redistribute B block",
		"redistribute M (cyclic(3),block)",
		"redistribute",
		"redistribute Z cyclic(2)",
		"redistribute A nonsense",
		// malformed triplets and refs
		"A(0:1:2:3) = 1.0",
		"A( : ) = 1.0",
		"A(0:5:0) = 1.0",
		"A(9:0:-2) = 1.0",
		"A(0: 31 :2) = 1.0",
		"A() = 1.0",
		"A(5) = 1.0",
		"A(0:4 = 1.0",
		"A(0:4) =",
		"A(0:4) = B(0:4 +",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, stmt string) {
		in := New()
		// A prepared environment so array statements have targets.
		for _, setup := range []string{
			"processors P(4)",
			"processors Q(2,2)",
			"array A(64) distribute cyclic(4) onto P",
			"array B(64) distribute cyclic(8) onto P",
			"array M(8,8) distribute (cyclic(2),cyclic(2)) onto Q",
		} {
			if err := in.Exec(setup); err != nil {
				t.Fatalf("setup %q: %v", setup, err)
			}
		}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("statement %q panicked: %v", stmt, r)
			}
		}()
		// Bound pathological statement lengths; errors are fine.
		if len(stmt) > 200 {
			stmt = stmt[:200]
		}
		// Avoid statements that legitimately take unbounded time (huge
		// in-bounds fills are valid programs, not parser bugs).
		if strings.Contains(stmt, "999999") {
			return
		}
		_ = in.Exec(stmt)
	})
}
