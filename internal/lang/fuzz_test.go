package lang

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/lang/ast"
)

// FuzzExec feeds arbitrary statements to an interpreter with a prepared
// environment. Malformed input must produce errors, never panics.
func FuzzExec(f *testing.F) {
	seeds := []string{
		"processors P(4)",
		"array A(320) distribute cyclic(8) onto P",
		"A(4:319:9) = 100.0",
		"B(0:70:2) = A(4:319:9)",
		"print A(0:40:4)",
		"sum A",
		"table A(4:319:9) on 1",
		"redistribute A cyclic(16)",
		"stats",
		"processors Q(2,2)",
		"array M(8,8) distribute (cyclic(2),cyclic(2)) onto Q",
		"M(0:7, 0:7) = transpose M(0:7, 0:7)",
		"A(0:9) = A(0:9) + A(0:9)",
		"A(0:9) = A(0:9) * 2.0",
		"A(::",
		"array A(999999999999999999999) distribute cyclic(8) onto P",
		"sum A(0:-5:1)",
		"table A(0:1000000:1) on -3",
		// 2-D statements
		"array N(8,8) distribute (block,block) onto Q",
		"N(0:7, 0:7) = 3.5",
		"N(0:7, 0:7) = M(0:7, 0:7)",
		"print M(0:3, 0:3)",
		"sum M(0:7, 0:7)",
		"M(0:7) = 1.0",
		"A(0:3, 0:3) = 1.0",
		// redistribute forms, valid and malformed
		"redistribute B block",
		"redistribute M (cyclic(3),block)",
		"redistribute",
		"redistribute Z cyclic(2)",
		"redistribute A nonsense",
		// malformed triplets and refs
		"A(0:1:2:3) = 1.0",
		"A( : ) = 1.0",
		"A(0:5:0) = 1.0",
		"A(9:0:-2) = 1.0",
		"A(0: 31 :2) = 1.0",
		"A() = 1.0",
		"A(5) = 1.0",
		"A(0:4 = 1.0",
		"A(0:4) =",
		"A(0:4) = B(0:4 +",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, stmt string) {
		in := New()
		// A prepared environment so array statements have targets.
		for _, setup := range []string{
			"processors P(4)",
			"processors Q(2,2)",
			"array A(64) distribute cyclic(4) onto P",
			"array B(64) distribute cyclic(8) onto P",
			"array M(8,8) distribute (cyclic(2),cyclic(2)) onto Q",
		} {
			if err := in.Exec(setup); err != nil {
				t.Fatalf("setup %q: %v", setup, err)
			}
		}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("statement %q panicked: %v", stmt, r)
			}
		}()
		// Bound pathological statement lengths; errors are fine.
		if len(stmt) > 200 {
			stmt = stmt[:200]
		}
		// Avoid statements that legitimately take unbounded time (huge
		// in-bounds fills are valid programs, not parser bugs).
		if strings.Contains(stmt, "999999") {
			return
		}
		_ = in.Exec(stmt)
	})
}

// FuzzAnalyzeExec is the differential contract between the static
// analyzer and the interpreter: on any input the analyzer must not
// panic, and a script the analyzer passes without error-severity
// diagnostics must execute without a runtime error. (Warnings are
// explicitly allowed to run: empty sections, all-to-all copies and dead
// redistributes are legal programs.)
func FuzzAnalyzeExec(f *testing.F) {
	seeds := []string{
		// clean
		"processors P(4)\narray A(64) distribute cyclic(4) onto P\nA = 1.0\nsum A(0:63)\n",
		// warnings only: empty section, cross-distribution copy, dead
		// redistribute, read of an unwritten array
		"processors P(2)\narray A(16) distribute cyclic(2) onto P\nA(5:4) = 1.0\nsum A\n",
		"processors P(4)\narray A(64) distribute cyclic(4) onto P\narray B(64) distribute cyclic(8) onto P\nA = 1.0\nB(0:63) = A(0:63)\nsum B(0:63)\n",
		"processors P(4)\narray A(64) distribute cyclic(4) onto P\nA = 1.0\nsum A(0:63)\nredistribute A cyclic(8)\n",
		"processors P(2)\narray A(8) distribute cyclic(2) onto P\nsum A(0:7)\n",
		// errors: out of bounds, shape mismatch, undeclared, table rank,
		// stats before any machine exists
		"processors P(2)\narray A(8) distribute cyclic(2) onto P\nA(0:50) = 1.0\n",
		"processors P(2)\narray A(8) distribute cyclic(2) onto P\nA(0:3) = A(0:5)\n",
		"sum A\n",
		"processors P(2)\narray A(8) distribute cyclic(2) onto P\nA = 1.0\ntable A(0:7) on 5\n",
		"stats\n",
		// parse error
		"processors P(2)\narray A(8 distribute cyclic(2) onto P\n",
		// 2-D: transpose, mixed layouts, partial write then read
		"processors Q(2,2)\narray M(8,8) distribute (cyclic(2),cyclic(2)) onto Q\narray N(8,8) distribute (block,block) onto Q\nM = 2.0\nN(0:7,0:7) = transpose M(0:7,0:7)\nsum N(0:7,0:7)\n",
		"processors P(4)\narray A(32) distribute cyclic(4) onto P\nA(0:15) = 1.0\nsum A(0:15)\nredistribute A cyclic(4)\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 2000 {
			src = src[:2000]
		}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("analyzer or interpreter panicked on %q: %v", src, r)
			}
		}()
		diags := analysis.AnalyzeSource(src)
		if analysis.HasErrors(diags) {
			return // the analyzer rejected it; no execution promise
		}
		// Keep the execution side bounded: fuzzed inputs may declare
		// machines or arrays that are perfectly valid but enormous.
		sc, perr := ast.ParseAll(src)
		if len(perr) > 0 || len(sc.Stmts) > 64 {
			return
		}
		for _, st := range sc.Stmts {
			switch d := st.(type) {
			case *ast.Processors:
				total := int64(1)
				for _, e := range d.Counts {
					total *= e
				}
				if total > 64 {
					return
				}
			case *ast.ArrayDecl:
				total := int64(1)
				for _, e := range d.Extents {
					total *= e
				}
				if total > 1<<16 {
					return
				}
			}
		}
		if err := New().Run(src); err != nil {
			t.Fatalf("analyzer-clean script failed at runtime: %v\ndiags: %v\nscript:\n%s", err, diags, src)
		}
	})
}
