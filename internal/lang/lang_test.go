package lang

import (
	"strings"
	"testing"
)

func TestPaperScript(t *testing.T) {
	in := New()
	script := `
! the paper's running example
processors P(4)
array A(320) distribute cyclic(8) onto P
A(0:319:1) = 0.0
A(4:319:9) = 100.0
table A(4:319:9) on 1
print A(4:40:9)
sum A(4:319:9)
`
	if err := in.Run(script); err != nil {
		t.Fatal(err)
	}
	out := in.Output()
	if !strings.Contains(out, "AM = [3, 12, 15, 12, 3, 12, 3, 12]") {
		t.Errorf("paper AM table missing:\n%s", out)
	}
	if !strings.Contains(out, "A(4:40:9) = [100 100 100 100 100]") {
		t.Errorf("print output wrong:\n%s", out)
	}
	// 36 section elements, all 100.
	if !strings.Contains(out, "sum A(4:319:9) = 3600") {
		t.Errorf("sum output wrong:\n%s", out)
	}
}

func TestSectionCopyAcrossDistributions(t *testing.T) {
	in := New()
	script := `
processors P(4)
array A(320) distribute cyclic(8) onto P
array B(320) distribute cyclic(5) onto P
A(0:319:1) = 7.0
B(0:319:1) = 0.0
B(0:70:2) = A(4:319:9)
sum B(0:319:1)
`
	if err := in.Run(script); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(in.Output(), "sum B(0:319:1) = 252") { // 36 * 7
		t.Errorf("copy sum wrong:\n%s", in.Output())
	}
	b, ok := in.Array("B")
	if !ok {
		t.Fatal("B missing")
	}
	if b.Get(0) != 7 || b.Get(2) != 7 || b.Get(1) != 0 {
		t.Errorf("copy landed wrong: B(0)=%v B(1)=%v B(2)=%v",
			b.Get(0), b.Get(1), b.Get(2))
	}
}

func TestRedistributeStatement(t *testing.T) {
	in := New()
	script := `
processors P(4)
array A(128) distribute cyclic(8) onto P
A(0:127:1) = 1.0
A(0:127:2) = 2.0
redistribute A cyclic(2)
sum A(0:127:1)
`
	if err := in.Run(script); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(in.Output(), "sum A(0:127:1) = 192") { // 64*2 + 64*1
		t.Errorf("redistribute broke contents:\n%s", in.Output())
	}
	a, _ := in.Array("A")
	if a.Layout().K() != 2 {
		t.Errorf("layout not changed: %v", a.Layout())
	}
}

func TestBlockAndCyclicSpecs(t *testing.T) {
	in := New()
	script := `
processors P(3)
array A(90) distribute block onto P
array B(90) distribute cyclic onto P
A(0:89:1) = 1.0
B(0:89:1) = 2.0
sum A(0:89:1)
sum B(0:89:1)
`
	if err := in.Run(script); err != nil {
		t.Fatal(err)
	}
	a, _ := in.Array("A")
	if a.Layout().K() != 30 {
		t.Errorf("block layout K = %d, want 30", a.Layout().K())
	}
	b, _ := in.Array("B")
	if b.Layout().K() != 1 {
		t.Errorf("cyclic layout K = %d, want 1", b.Layout().K())
	}
}

func TestWholeArrayAndDefaultStride(t *testing.T) {
	in := New()
	if err := in.Run(`
processors P(2)
array A(10) distribute cyclic(2) onto P
A = 5.0
print A(0:3)
`); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(in.Output(), "A(0:3:1) = [5 5 5 5]") {
		t.Errorf("default stride output wrong:\n%s", in.Output())
	}
}

func TestDescendingSection(t *testing.T) {
	in := New()
	if err := in.Run(`
processors P(2)
array A(20) distribute cyclic(3) onto P
A = 0.0
A(19:1:-3) = 4.0
print A(19:1:-3)
`); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(in.Output(), "A(19:1:-3) = [4 4 4 4 4 4 4]") {
		t.Errorf("descending output wrong:\n%s", in.Output())
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		script string
		want   string
	}{
		{"array A(10) distribute cyclic(2) onto P", "processors first"},
		{"processors P(4)\nprocessors Q(2)", "already declared"},
		{"processors P(0)", "invalid processor count"},
		{"processors P(4)\nbogus stuff", "unknown statement"},
		{"processors P(4)\narray A(10) distribute weird onto P", "unknown distribution"},
		{"processors P(4)\narray A(10) distribute cyclic(2) onto Q", "unknown processor arrangement"},
		{"processors P(4)\nA(0:5) = 1.0", `unknown array "A"`},
		{"processors P(4)\narray A(10) distribute cyclic(2) onto P\nA(0:5:0) = 1.0", "zero stride"},
		{"processors P(4)\narray A(10) distribute cyclic(2) onto P\narray A(10) distribute cyclic(2) onto P", "already declared"},
		{"processors P(4)\narray A(10) distribute cyclic(2) onto P\nA(0:50) = 1.0", "outside array"},
		{"processors P(4)\narray A(10) distribute cyclic(2) onto P\nA(0:5) = B(0:5)", `unknown array "B"`},
		{"processors P(4)\narray A(10) distribute cyclic(2) onto P\nprint A(0:1:2:3)", "malformed triplet"},
		{"processors P(4)\narray A(10) distribute cyclic(2) onto P\ntable A(0:5) on x", "invalid processor"},
		{"processors P(-2)", "invalid processor count"},
	}
	for _, c := range cases {
		err := New().Run(c.script)
		if err == nil {
			t.Errorf("script %q should fail", c.script)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("script %q: error %q does not contain %q", c.script, err, c.want)
		}
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	err := New().Run("processors P(2)\n\nbogus")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %v should mention line 3", err)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	in := New()
	if err := in.Run("! nothing\n\n   \nprocessors P(2) ! trailing comment\n"); err != nil {
		t.Fatal(err)
	}
}

func TestTableEmptySection(t *testing.T) {
	in := New()
	if err := in.Run(`
processors P(2)
array A(10) distribute cyclic(2) onto P
table A(5:4:1) on 0
`); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(in.Output(), "empty section") {
		t.Errorf("empty-section table output wrong:\n%s", in.Output())
	}
}

func TestTableEmptyProcessor(t *testing.T) {
	in := New()
	if err := in.Run(`
processors P(4)
array A(64) distribute cyclic(2) onto P
table A(3:63:8) on 0
`); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(in.Output(), "no section elements") {
		t.Errorf("expected empty AM table message:\n%s", in.Output())
	}
}

func TestBinaryArrayExpression(t *testing.T) {
	in := New()
	script := `
processors P(3)
array A(60) distribute cyclic(4) onto P
array B(60) distribute cyclic(7) onto P
array C(60) distribute block onto P
A = 2.0
B = 5.0
C(0:59:1) = A(0:59:1) + B(0:59:1)
sum C
C(0:29:1) = A(0:58:2) * B(59:1:-2)
sum C(0:29:1)
`
	if err := in.Run(script); err != nil {
		t.Fatal(err)
	}
	out := in.Output()
	if !strings.Contains(out, "sum C(0:59:1) = 420") { // 60 * 7
		t.Errorf("array+array sum wrong:\n%s", out)
	}
	if !strings.Contains(out, "sum C(0:29:1) = 300") { // 30 * 10
		t.Errorf("array*array sum wrong:\n%s", out)
	}
}

func TestBinaryScalarExpression(t *testing.T) {
	in := New()
	script := `
processors P(2)
array A(20) distribute cyclic(3) onto P
array B(20) distribute cyclic(5) onto P
A = 4.0
B(0:19:1) = A(0:19:1) * 2.5
sum B
B(0:19:1) = A(0:19:1) - 1.0
sum B
`
	if err := in.Run(script); err != nil {
		t.Fatal(err)
	}
	out := in.Output()
	if !strings.Contains(out, "sum B(0:19:1) = 200") { // 20 * 10
		t.Errorf("array*scalar wrong:\n%s", out)
	}
	if !strings.Contains(out, "sum B(0:19:1) = 60") { // 20 * 3
		t.Errorf("array-scalar wrong:\n%s", out)
	}
}

func TestBinaryErrors(t *testing.T) {
	base := "processors P(2)\narray A(10) distribute cyclic(2) onto P\n"
	for _, stmt := range []string{
		"A(0:4) = X(0:4) + A(0:4)",
		"A(0:4) = A(0:4) + Y(0:4)",
		"A(0:4) = A(0:4) + A(0:5)", // size mismatch
	} {
		if err := New().Run(base + stmt); err == nil {
			t.Errorf("statement %q should fail", stmt)
		}
	}
}

func TestStatsStatement(t *testing.T) {
	in := New()
	script := `
processors P(4)
array A(64) distribute cyclic(2) onto P
array B(64) distribute cyclic(8) onto P
A = 1.0
stats
B(0:63:1) = A(0:63:1)
stats
stats
`
	if err := in.Run(script); err != nil {
		t.Fatal(err)
	}
	out := in.Output()
	// Fill is communication free; the copy moves 64 values; the counter
	// resets after each report.
	if !strings.Contains(out, "comm: 0 messages, 0 values\n") {
		t.Errorf("fill should be comm-free:\n%s", out)
	}
	if !strings.Contains(out, "64 values") {
		t.Errorf("copy volume missing:\n%s", out)
	}
	if strings.Count(out, "comm: 0 messages, 0 values\n") != 2 {
		t.Errorf("stats should reset counters:\n%s", out)
	}
	if err := New().Run("stats"); err == nil {
		t.Error("stats before processors should fail")
	}
	if err := New().Run("processors P(2)\nstats extra"); err == nil {
		t.Error("stats with arguments should fail")
	}
}
