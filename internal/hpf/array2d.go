package hpf

import (
	"fmt"

	"repro/internal/dist"
)

// Array2D is a two-dimensional distributed array over a processor grid,
// with independent cyclic(k) distributions per dimension (paper,
// Section 2). This is the "block scattered" decomposition of Dongarra,
// van de Geijn & Walker that the paper cites as the motivating use of
// cyclic(k) in dense linear algebra.
//
// Each grid processor stores its owned elements as a dense row-major
// local matrix whose rows/columns are the packed local indices of the two
// dimensions.
type Array2D struct {
	grid   *dist.Grid
	n0, n1 int64
	// local[flatRank] is a row-major localRows×localCols matrix.
	local     [][]float64
	localCols []int64
	localRows []int64
}

// NewArray2D allocates an n0×n1 array distributed over a rank-2 grid.
func NewArray2D(grid *dist.Grid, n0, n1 int64) (*Array2D, error) {
	if grid.Rank() != 2 {
		return nil, fmt.Errorf("hpf: Array2D needs a rank-2 grid, got rank %d", grid.Rank())
	}
	if n0 < 0 || n1 < 0 {
		return nil, fmt.Errorf("hpf: negative extents %d×%d", n0, n1)
	}
	a := &Array2D{grid: grid, n0: n0, n1: n1}
	nprocs := grid.Procs()
	a.local = make([][]float64, nprocs)
	a.localRows = make([]int64, nprocs)
	a.localCols = make([]int64, nprocs)
	for r := int64(0); r < nprocs; r++ {
		coords := grid.Coords(r)
		rows := grid.Dim(0).LocalCount(coords[0], n0)
		cols := grid.Dim(1).LocalCount(coords[1], n1)
		a.localRows[r] = rows
		a.localCols[r] = cols
		a.local[r] = make([]float64, rows*cols)
	}
	return a, nil
}

// MustNewArray2D is NewArray2D but panics on error.
func MustNewArray2D(grid *dist.Grid, n0, n1 int64) *Array2D {
	a, err := NewArray2D(grid, n0, n1)
	if err != nil {
		panic(err)
	}
	return a
}

// Dims returns the global extents.
func (a *Array2D) Dims() (n0, n1 int64) { return a.n0, a.n1 }

// Grid returns the processor grid.
func (a *Array2D) Grid() *dist.Grid { return a.grid }

// ownerRank returns the flat rank owning element (i, j).
func (a *Array2D) ownerRank(i, j int64) int64 {
	return a.grid.FlatRank([]int64{a.grid.Dim(0).Owner(i), a.grid.Dim(1).Owner(j)})
}

func (a *Array2D) checkIndex(i, j int64) {
	if i < 0 || i >= a.n0 || j < 0 || j >= a.n1 {
		panic(fmt.Sprintf("hpf: index (%d,%d) out of range %d×%d", i, j, a.n0, a.n1))
	}
}

// Get reads element (i, j) through the distribution.
func (a *Array2D) Get(i, j int64) float64 {
	a.checkIndex(i, j)
	r := a.ownerRank(i, j)
	li := a.grid.Dim(0).Local(i)
	lj := a.grid.Dim(1).Local(j)
	return a.local[r][li*a.localCols[r]+lj]
}

// Set writes element (i, j) through the distribution.
func (a *Array2D) Set(i, j int64, v float64) {
	a.checkIndex(i, j)
	r := a.ownerRank(i, j)
	li := a.grid.Dim(0).Local(i)
	lj := a.grid.Dim(1).Local(j)
	a.local[r][li*a.localCols[r]+lj] = v
}

// LocalMem returns flat-rank r's local matrix and its dimensions.
func (a *Array2D) LocalMem(r int64) (mem []float64, rows, cols int64) {
	return a.local[r], a.localRows[r], a.localCols[r]
}

// LocalDomain returns, for flat rank r, the global indices owned in each
// dimension in increasing order — the loop bounds generated node code
// iterates over.
func (a *Array2D) LocalDomain(r int64) (rowIdx, colIdx []int64) {
	coords := a.grid.Coords(r)
	rowIdx = ownedIndices(a.grid.Dim(0), coords[0], a.n0)
	colIdx = ownedIndices(a.grid.Dim(1), coords[1], a.n1)
	return rowIdx, colIdx
}

// ownedIndices lists the global indices in [0, n) owned by processor m of
// a layout, in increasing order.
func ownedIndices(l dist.Layout, m, n int64) []int64 {
	out := make([]int64, 0, l.LocalCount(m, n))
	for base := l.BlockStart(m, 0); base < n; base += l.RowLen() {
		for off := int64(0); off < l.K() && base+off < n; off++ {
			out = append(out, base+off)
		}
	}
	return out
}

// Gather copies the array into a dense row-major global matrix.
func (a *Array2D) Gather() []float64 {
	out := make([]float64, a.n0*a.n1)
	for i := int64(0); i < a.n0; i++ {
		for j := int64(0); j < a.n1; j++ {
			out[i*a.n1+j] = a.Get(i, j)
		}
	}
	return out
}
