package hpf

import (
	"fmt"

	"repro/internal/align"
	"repro/internal/section"
)

// AlignedArray is a distributed array whose elements are ALIGNED to a
// distributed template rather than distributed directly: element i lives
// at template cell a·i + b (paper, Section 2). Each processor stores its
// owned elements packed in increasing index order; addressing goes
// through the two-application machinery of package align.
type AlignedArray struct {
	m       *align.Map
	n       int64
	local   [][]float64
	storage []*align.Storage // per-processor rank oracles
}

// NewAlignedArray allocates an n-element array with the given alignment
// map. The template (the map's layout) must be large enough for every
// cell the alignment touches; the caller controls that by choosing the
// alignment.
func NewAlignedArray(m *align.Map, n int64) (*AlignedArray, error) {
	if n < 0 {
		return nil, fmt.Errorf("hpf: negative array size %d", n)
	}
	if n > 0 {
		for _, i := range []int64{0, n - 1} {
			if c := m.Align.Cell(i); c < 0 {
				return nil, fmt.Errorf("hpf: alignment maps element %d to negative cell %d", i, c)
			}
		}
	}
	a := &AlignedArray{m: m, n: n}
	p := m.Layout.P()
	a.local = make([][]float64, p)
	a.storage = make([]*align.Storage, p)
	for proc := int64(0); proc < p; proc++ {
		st, err := m.NewStorage(proc)
		if err != nil {
			return nil, err
		}
		a.storage[proc] = st
		a.local[proc] = make([]float64, st.LocalCount(n))
	}
	return a, nil
}

// N returns the global length.
func (a *AlignedArray) N() int64 { return a.n }

// Map returns the alignment map.
func (a *AlignedArray) Map() *align.Map { return a.m }

// LocalMem returns processor m's packed local memory.
func (a *AlignedArray) LocalMem(m int64) []float64 { return a.local[m] }

func (a *AlignedArray) checkIndex(i int64) {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("hpf: index %d out of range [0, %d)", i, a.n))
	}
}

// Get reads element i through the alignment.
func (a *AlignedArray) Get(i int64) float64 {
	a.checkIndex(i)
	proc := a.m.Owner(i)
	return a.local[proc][a.storage[proc].Rank(i)]
}

// Set writes element i through the alignment.
func (a *AlignedArray) Set(i int64, v float64) {
	a.checkIndex(i)
	proc := a.m.Owner(i)
	a.local[proc][a.storage[proc].Rank(i)] = v
}

// Gather copies the array into a dense global slice.
func (a *AlignedArray) Gather() []float64 {
	out := make([]float64, a.n)
	for i := int64(0); i < a.n; i++ {
		out[i] = a.Get(i)
	}
	return out
}

// FillSection performs A(sec) = v, each processor walking its composed
// access sequence (align.Map.Addresses) over its packed storage.
func (a *AlignedArray) FillSection(sec section.Section, v float64) error {
	if sec.Empty() {
		return nil
	}
	asc, _ := sec.Ascending()
	if asc.Lo < 0 || asc.Last() >= a.n {
		return fmt.Errorf("hpf: section %v outside array [0, %d)", sec, a.n)
	}
	for proc := int64(0); proc < a.m.Layout.P(); proc++ {
		addrs, err := a.m.Addresses(proc, sec.Lo, sec.Hi, sec.Stride)
		if err != nil {
			return err
		}
		mem := a.local[proc]
		for _, addr := range addrs {
			mem[addr] = v
		}
	}
	return nil
}

// SumSection returns the sum over A(sec).
func (a *AlignedArray) SumSection(sec section.Section) (float64, error) {
	if sec.Empty() {
		return 0, nil
	}
	asc, _ := sec.Ascending()
	if asc.Lo < 0 || asc.Last() >= a.n {
		return 0, fmt.Errorf("hpf: section %v outside array [0, %d)", sec, a.n)
	}
	var total float64
	for proc := int64(0); proc < a.m.Layout.P(); proc++ {
		addrs, err := a.m.Addresses(proc, sec.Lo, sec.Hi, sec.Stride)
		if err != nil {
			return 0, err
		}
		mem := a.local[proc]
		for _, addr := range addrs {
			total += mem[addr]
		}
	}
	return total, nil
}
