package hpf

import (
	"fmt"

	"repro/internal/md"
	"repro/internal/section"
)

// FillRect performs the multidimensional array assignment A(rect) = v:
// each processor sweeps exactly its owned section elements through the
// per-dimension access plans of package md (the Section 2 reduction of
// the multidimensional problem to one-dimensional applications).
func (a *Array2D) FillRect(rect section.Rect, v float64) error {
	if rect.Rank() != 2 {
		return fmt.Errorf("hpf: FillRect needs a rank-2 section, got %d", rect.Rank())
	}
	extents := []int64{a.n0, a.n1}
	for r := int64(0); r < a.grid.Procs(); r++ {
		plan, err := md.NewPlan(a.grid, a.grid.Coords(r), extents, rect)
		if err != nil {
			return err
		}
		mem := a.local[r]
		plan.Each(func(lin int64) { mem[lin] = v })
	}
	return nil
}

// SumRect returns the sum over A(rect), accumulated per processor through
// the access plans.
func (a *Array2D) SumRect(rect section.Rect) (float64, error) {
	if rect.Rank() != 2 {
		return 0, fmt.Errorf("hpf: SumRect needs a rank-2 section, got %d", rect.Rank())
	}
	extents := []int64{a.n0, a.n1}
	var total float64
	for r := int64(0); r < a.grid.Procs(); r++ {
		plan, err := md.NewPlan(a.grid, a.grid.Coords(r), extents, rect)
		if err != nil {
			return 0, err
		}
		mem := a.local[r]
		plan.Each(func(lin int64) { total += mem[lin] })
	}
	return total, nil
}

// MapRect applies f in place to every element of A(rect).
func (a *Array2D) MapRect(rect section.Rect, f func(float64) float64) error {
	if rect.Rank() != 2 {
		return fmt.Errorf("hpf: MapRect needs a rank-2 section, got %d", rect.Rank())
	}
	extents := []int64{a.n0, a.n1}
	for r := int64(0); r < a.grid.Procs(); r++ {
		plan, err := md.NewPlan(a.grid, a.grid.Coords(r), extents, rect)
		if err != nil {
			return err
		}
		mem := a.local[r]
		plan.Each(func(lin int64) { mem[lin] = f(mem[lin]) })
	}
	return nil
}
