package hpf

import (
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/section"
	"repro/internal/telemetry"
)

// startRecording installs a process-wide recorder and guarantees it is
// gone when the test ends.
func startRecording(t *testing.T, ranks int) *telemetry.AccessRecorder {
	t.Helper()
	ar := telemetry.StartAccessRecording(ranks, 1<<16, 1)
	t.Cleanup(func() { telemetry.StopAccessRecording() })
	return ar
}

// sectionAccesses derives the expected per-rank local-address sequence
// for a section the slow way: section elements in traversal order,
// routed through the layout.
func sectionAccesses(layout dist.Layout, sec section.Section) map[int32][]int64 {
	want := map[int32][]int64{}
	asc, _ := sec.Ascending()
	for j := int64(0); j < asc.Count(); j++ {
		i := asc.Element(j)
		want[int32(layout.Owner(i))] = append(want[int32(layout.Owner(i))], layout.Local(i))
	}
	return want
}

// TestSectionOpsRecordAccesses drives every kernel family through the
// traced fill/map/sum paths and checks the recorded sequences against
// the brute-force owner/local oracle — per rank, in order, with the
// right rw flags and a kind-qualified step label.
func TestSectionOpsRecordAccesses(t *testing.T) {
	for _, tc := range kernelFamilies() {
		t.Run(tc.name, func(t *testing.T) {
			ResetSectionPlanCache()
			layout := dist.MustNew(tc.p, tc.k)
			a := MustNewArray(layout, tc.n)
			want := sectionAccesses(layout, tc.sec)

			ar := startRecording(t, int(tc.p))
			if err := a.FillSection(tc.sec, 1.0); err != nil {
				t.Fatal(err)
			}
			if err := a.MapSection(tc.sec, func(x float64) float64 { return x + 1 }); err != nil {
				t.Fatal(err)
			}
			if _, err := a.SumSection(tc.sec); err != nil {
				t.Fatal(err)
			}
			doc := ar.Doc()
			telemetry.StopAccessRecording()

			if len(doc.Steps) != 3 {
				t.Fatalf("steps = %+v, want 3", doc.Steps)
			}
			for i, prefix := range []string{"hpf.fill_section:", "hpf.map_section:", "hpf.sum_section:"} {
				label := doc.Steps[i].Label
				if !strings.HasPrefix(label, prefix) || !strings.HasSuffix(label, tc.want.String()) {
					t.Errorf("step %d label = %q, want %s%s", i, label, prefix, tc.want)
				}
			}
			if doc.Dropped != 0 {
				t.Fatalf("dropped %d records; raise the test capacity", doc.Dropped)
			}

			for _, seq := range doc.Seqs {
				wantAddrs := want[seq.Rank]
				// Per rank: fill writes the sequence once, map reads+writes
				// it, sum reads it → 4 records per owned element.
				if got, want := len(seq.Accesses), 4*len(wantAddrs); got != want {
					t.Fatalf("rank %d: %d records, want %d", seq.Rank, got, want)
				}
				n := len(wantAddrs)
				for j, rec := range seq.Accesses[:n] { // fill
					if rec.Addr != wantAddrs[j] || !rec.Write || rec.Step != doc.Steps[0].Step {
						t.Fatalf("rank %d fill[%d] = %+v, want write of %d", seq.Rank, j, rec, wantAddrs[j])
					}
				}
				for j := 0; j < n; j++ { // map: read, write per element
					rd, wr := seq.Accesses[n+2*j], seq.Accesses[n+2*j+1]
					if rd.Addr != wantAddrs[j] || rd.Write || wr.Addr != wantAddrs[j] || !wr.Write {
						t.Fatalf("rank %d map[%d] = %+v %+v", seq.Rank, j, rd, wr)
					}
				}
				for j, rec := range seq.Accesses[3*n:] { // sum
					if rec.Addr != wantAddrs[j] || rec.Write {
						t.Fatalf("rank %d sum[%d] = %+v", seq.Rank, j, rec)
					}
				}
			}
		})
	}
}

// TestGatherScatterSectionRecordAccesses checks the elementwise section
// paths trace through the layout oracle too.
func TestGatherScatterSectionRecordAccesses(t *testing.T) {
	layout := dist.MustNew(3, 4)
	a := MustNewArray(layout, 60)
	sec := section.MustNew(2, 55, 3)
	want := sectionAccesses(layout, sec)

	ar := startRecording(t, 3)
	vals, err := a.GatherSection(sec)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.ScatterSection(sec, vals); err != nil {
		t.Fatal(err)
	}
	doc := ar.Doc()
	telemetry.StopAccessRecording()

	if len(doc.Steps) != 2 || doc.Steps[0].Label != "hpf.gather_section" || doc.Steps[1].Label != "hpf.scatter_section" {
		t.Fatalf("steps = %+v", doc.Steps)
	}
	for _, seq := range doc.Seqs {
		wantAddrs := want[seq.Rank]
		if got, want := len(seq.Accesses), 2*len(wantAddrs); got != want {
			t.Fatalf("rank %d: %d records, want %d", seq.Rank, got, want)
		}
		n := len(wantAddrs)
		for j, rec := range seq.Accesses[:n] {
			if rec.Addr != wantAddrs[j] || rec.Write {
				t.Fatalf("rank %d gather[%d] = %+v", seq.Rank, j, rec)
			}
		}
		for j, rec := range seq.Accesses[n:] {
			if rec.Addr != wantAddrs[j] || !rec.Write {
				t.Fatalf("rank %d scatter[%d] = %+v", seq.Rank, j, rec)
			}
		}
	}
}

// The warm section ops must stay allocation-free when access recording
// is disabled — the recorder check is a single atomic load.
func TestWarmSectionOpsZeroAllocsWithRecorderStopped(t *testing.T) {
	telemetry.StopAccessRecording()
	a := MustNewArray(dist.MustNew(4, 8), 4096)
	sec := section.MustNew(0, 4095, 3)
	if err := a.FillSection(sec, 1.0); err != nil { // warm the plan cache
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := a.FillSection(sec, 2.0); err != nil {
			t.Fatal(err)
		}
		if err := a.MapSection(sec, mapAdd1); err != nil {
			t.Fatal(err)
		}
		if _, err := a.SumSection(sec); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm section ops with recorder stopped: %v allocs/op, want 0", allocs)
	}
}
