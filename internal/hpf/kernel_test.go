package hpf

import (
	"math"
	"testing"

	"repro/internal/codegen"
	"repro/internal/dist"
	"repro/internal/section"
)

// kernelFamily is one (layout, section) pattern that the selector maps
// to a specific specialized kernel kind.
type kernelFamily struct {
	name   string
	p, k   int64
	n      int64
	sec    section.Section
	want   codegen.KernelKind
	onProc int64 // processor whose plan must have the wanted kind
}

// kernelFamilies covers one section per specialized kernel family.
func kernelFamilies() []kernelFamily {
	return []kernelFamily{
		{"cyclic1-constgap", 4, 1, 4096, section.MustNew(0, 4095, 3), codegen.KindConstGap, 0},
		{"unit-stride-constgap", 4, 8, 4096, section.MustNew(0, 4095, 1), codegen.KindConstGap, 0},
		{"block-constgap", 4, 1024, 4096, section.MustNew(0, 4095, 3), codegen.KindConstGap, 1},
		{"small-period-unrolled", 4, 8, 4096, section.MustNew(4, 4090, 9), codegen.KindUnrolled, 1},
		{"dense-rowstride", 4, 16, 9000, section.MustNew(0, 8999, 5), codegen.KindRowStride, 1},
		// Section plans always materialize their gap list, so sparse
		// long-period sections run the sequential generic walk; the 8(d)
		// dispatch kernel is reserved for table-only specs.
		{"sparse-generic", 4, 16, 9000, section.MustNew(5, 8999, 23), codegen.KindGeneric, 2},
	}
}

// TestSectionPlanKernelSelection pins the kernel family each layout
// compiles to, and checks cached and uncached planners agree on it.
func TestSectionPlanKernelSelection(t *testing.T) {
	for _, tc := range kernelFamilies() {
		ResetSectionPlanCache()
		a := MustNewArray(dist.MustNew(tc.p, tc.k), tc.n)
		sp, err := a.cachedSectionPlans(tc.sec)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got := sp.plans[tc.onProc].kernel.Kind()
		if got != tc.want {
			t.Errorf("%s: proc %d compiled %v, want %v", tc.name, tc.onProc, got, tc.want)
		}
		// The uncached planner must select identically: selection is a
		// pure function of (layout, section, processor).
		fresh, err := a.planSection(tc.sec, tc.onProc)
		if err != nil {
			t.Fatalf("%s: planSection: %v", tc.name, err)
		}
		if fresh.kernel.Kind() != got {
			t.Errorf("%s: uncached plan selected %v, cached %v", tc.name, fresh.kernel.Kind(), got)
		}
	}
}

// TestSectionOpsThroughKernels runs fill/map/sum for every kernel family
// and checks the results element by element against Get.
func TestSectionOpsThroughKernels(t *testing.T) {
	for _, tc := range kernelFamilies() {
		ResetSectionPlanCache()
		a := MustNewArray(dist.MustNew(tc.p, tc.k), tc.n)
		if err := a.FillSection(tc.sec, 2); err != nil {
			t.Fatalf("%s: fill: %v", tc.name, err)
		}
		if err := a.MapSection(tc.sec, func(x float64) float64 { return x*10 + 1 }); err != nil {
			t.Fatalf("%s: map: %v", tc.name, err)
		}
		cnt := tc.sec.Count()
		for j := int64(0); j < cnt; j++ {
			if got := a.Get(tc.sec.Element(j)); got != 21 {
				t.Fatalf("%s: element %d = %g, want 21", tc.name, tc.sec.Element(j), got)
			}
		}
		// Off-section elements stay untouched.
		in := map[int64]bool{}
		for j := int64(0); j < cnt; j++ {
			in[tc.sec.Element(j)] = true
		}
		for i := int64(0); i < tc.n; i++ {
			if !in[i] && a.Get(i) != 0 {
				t.Fatalf("%s: off-section element %d = %g, want 0", tc.name, i, a.Get(i))
			}
		}
		sum, err := a.SumSection(tc.sec)
		if err != nil {
			t.Fatalf("%s: sum: %v", tc.name, err)
		}
		if want := 21 * float64(cnt); math.Abs(sum-want) > 1e-6 {
			t.Fatalf("%s: sum = %g, want %g", tc.name, sum, want)
		}
	}
}

// mapAdd1 is package-level so the AllocsPerRun closures below do not
// capture anything that would itself allocate.
func mapAdd1(x float64) float64 { return x + 1 }

// TestWarmSectionOpsZeroAllocs guards the acceptance criterion that the
// warm section ops stay allocation free through the kernel dispatch,
// for every kernel family.
func TestWarmSectionOpsZeroAllocs(t *testing.T) {
	for _, tc := range kernelFamilies() {
		a := MustNewArray(dist.MustNew(tc.p, tc.k), tc.n)
		sec := tc.sec
		// Warm the plan cache (compiles the kernels once).
		if err := a.FillSection(sec, 1); err != nil {
			t.Fatalf("%s: warm-up: %v", tc.name, err)
		}
		if n := testing.AllocsPerRun(20, func() {
			if err := a.FillSection(sec, 3); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("%s: warm FillSection allocates %v/op, want 0", tc.name, n)
		}
		if n := testing.AllocsPerRun(20, func() {
			if err := a.MapSection(sec, mapAdd1); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("%s: warm MapSection allocates %v/op, want 0", tc.name, n)
		}
		if n := testing.AllocsPerRun(20, func() {
			if _, err := a.SumSection(sec); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("%s: warm SumSection allocates %v/op, want 0", tc.name, n)
		}
	}
}
