package hpf

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/plancache"
	"repro/internal/section"
)

// Section operations (fill, map, sum) re-derive the same per-processor
// node-loop plans every time an iterative program revisits a section.
// The plans depend only on (layout, array size, normalized section), so
// they are memoized process-wide: one entry holds every processor's
// plan, built through the shared TableSet cache so the basis vectors
// and transition table for the section's (p, k, l, s) are computed once
// — the runtime realization of Section 6.1's compile-time hoisting.

// sectionKey identifies one array-section node-loop pattern. The
// section is keyed in ascending normal form (fill-type operations are
// order independent, exactly as planSection normalizes).
type sectionKey struct {
	p, k, n        int64
	lo, hi, stride int64
}

func hashSectionKey(k sectionKey) uint64 {
	h := plancache.Mix(plancache.Mix(plancache.Mix(plancache.Seed, k.p), k.k), k.n)
	return plancache.Mix(plancache.Mix(plancache.Mix(h, k.lo), k.hi), k.stride)
}

// sectionPlans holds the node-loop plan of every processor for one
// cached pattern. Immutable after construction; gap tables are shared
// read-only across all users.
type sectionPlans struct {
	plans []sectionPlan // indexed by processor rank
}

var sectionPlanCache = plancache.New[sectionKey, *sectionPlans](512, hashSectionKey)

func init() {
	if err := sectionPlanCache.Register("hpf.section_plans"); err != nil {
		panic(err)
	}
}

// SectionPlanCacheStats snapshots the section-plan cache counters;
// Misses equal the number of full per-array plan constructions.
func SectionPlanCacheStats() plancache.Stats { return sectionPlanCache.Stats() }

// ResetSectionPlanCache drops all cached section plans and zeroes the
// counters (benchmarks use this to measure the cold path).
func ResetSectionPlanCache() { sectionPlanCache.Reset() }

// cachedSectionPlans returns the memoized per-processor plans for the
// section, building them on first use. A nil result (with nil error)
// means the section is empty and there is nothing to do.
func (a *Array) cachedSectionPlans(sec section.Section) (*sectionPlans, error) {
	asc, _ := sec.Ascending()
	if asc.Empty() {
		return nil, nil
	}
	if asc.Lo < 0 || asc.Last() >= a.n {
		return nil, fmt.Errorf("hpf: section %v outside array [0, %d)", sec, a.n)
	}
	key := sectionKey{
		p: a.layout.P(), k: a.layout.K(), n: a.n,
		lo: asc.Lo, hi: asc.Hi, stride: asc.Stride,
	}
	return sectionPlanCache.GetOrCompute(key, func() (*sectionPlans, error) {
		return a.buildSectionPlans(asc)
	})
}

// buildSectionPlans constructs every processor's plan through the
// shared TableSet: the basis vectors and the offset-indexed transition
// table are fetched (or built once) from the table cache, and only the
// O(k) per-processor start scans run here.
func (a *Array) buildSectionPlans(asc section.Section) (*sectionPlans, error) {
	p, k := a.layout.P(), a.layout.K()
	ts, err := plancache.Tables(p, k, asc.Lo, asc.Stride)
	if err != nil {
		return nil, err
	}
	u := asc.Last()
	sp := &sectionPlans{plans: make([]sectionPlan, p)}
	for m := int64(0); m < p; m++ {
		pr := core.Problem{P: p, K: k, L: asc.Lo, S: asc.Stride, M: m}
		count, err := pr.Count(u)
		if err != nil {
			return nil, err
		}
		if count == 0 {
			sp.plans[m] = sectionPlan{start: -1, last: -1, problem: pr}
			continue
		}
		seq, err := ts.Sequence(m)
		if err != nil {
			return nil, err
		}
		lastGlobal, err := pr.Last(u)
		if err != nil {
			return nil, err
		}
		sp.plans[m] = sectionPlan{
			start:   seq.StartLocal,
			last:    a.layout.Local(lastGlobal),
			gaps:    seq.Gaps,
			count:   count,
			problem: pr,
		}
		sp.plans[m].compileKernel(ts)
	}
	return sp, nil
}
