package hpf

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/align"
	"repro/internal/dist"
	"repro/internal/section"
)

func mustAligned(t *testing.T, p, k, a, b, n int64) *AlignedArray {
	t.Helper()
	m, err := align.NewMap(dist.MustNew(p, k), align.Alignment{A: a, B: b})
	if err != nil {
		t.Fatal(err)
	}
	arr, err := NewAlignedArray(m, n)
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

func TestAlignedGetSetRoundTrip(t *testing.T) {
	arr := mustAligned(t, 3, 4, 2, 5, 100)
	for i := int64(0); i < 100; i++ {
		arr.Set(i, float64(i)+0.25)
	}
	for i := int64(0); i < 100; i++ {
		if got := arr.Get(i); got != float64(i)+0.25 {
			t.Fatalf("Get(%d) = %v", i, got)
		}
	}
	// Total local storage equals the array size (packed, no holes).
	var total int
	for m := int64(0); m < 3; m++ {
		total += len(arr.LocalMem(m))
	}
	if total != 100 {
		t.Errorf("total local storage %d, want 100", total)
	}
}

func TestAlignedIdentityMatchesArray(t *testing.T) {
	// Identity alignment must behave exactly like a directly distributed
	// Array.
	layout := dist.MustNew(4, 8)
	m, _ := align.NewMap(layout, align.Identity)
	arr, err := NewAlignedArray(m, 320)
	if err != nil {
		t.Fatal(err)
	}
	plain := MustNewArray(layout, 320)
	for i := int64(0); i < 320; i++ {
		arr.Set(i, float64(i))
		plain.Set(i, float64(i))
	}
	for proc := int64(0); proc < 4; proc++ {
		if !reflect.DeepEqual(arr.LocalMem(proc), plain.LocalMem(proc)) {
			t.Errorf("proc %d: aligned local memory differs from plain", proc)
		}
	}
}

func TestAlignedFillSection(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 150; trial++ {
		p := r.Int63n(4) + 1
		k := r.Int63n(6) + 1
		a := r.Int63n(5) + 1
		b := r.Int63n(10)
		n := r.Int63n(150) + 10
		arr := mustAligned(t, p, k, a, b, n)

		s := r.Int63n(6) + 1
		lo := r.Int63n(n)
		hi := min(n-1, lo+r.Int63n(4*s+10))
		if r.Intn(3) == 0 {
			lo, hi, s = hi, lo, -s
		}
		sec := section.Section{Lo: lo, Hi: hi, Stride: s}
		if err := arr.FillSection(sec, 9); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		dense := arr.Gather()
		for i := int64(0); i < n; i++ {
			want := 0.0
			if sec.Contains(i) {
				want = 9
			}
			if dense[i] != want {
				t.Fatalf("trial %d (p=%d k=%d a=%d b=%d sec=%v): element %d = %v, want %v",
					trial, p, k, a, b, sec, i, dense[i], want)
			}
		}
	}
}

func TestAlignedSumSection(t *testing.T) {
	arr := mustAligned(t, 3, 5, 3, 1, 80)
	for i := int64(0); i < 80; i++ {
		arr.Set(i, float64(i))
	}
	sec := section.MustNew(2, 78, 7)
	got, err := arr.SumSection(sec)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, g := range sec.Slice() {
		want += float64(g)
	}
	if got != want {
		t.Errorf("SumSection = %v, want %v", got, want)
	}
	// Empty section sums to zero.
	if v, err := arr.SumSection(section.MustNew(5, 4, 1)); err != nil || v != 0 {
		t.Errorf("empty sum = %v, %v", v, err)
	}
}

func TestAlignedValidation(t *testing.T) {
	m, _ := align.NewMap(dist.MustNew(2, 2), align.Identity)
	if _, err := NewAlignedArray(m, -1); err == nil {
		t.Error("negative size should fail")
	}
	// Alignment mapping element 0 to a negative cell.
	neg, _ := align.NewMap(dist.MustNew(2, 2), align.Alignment{A: 1, B: -5})
	if _, err := NewAlignedArray(neg, 3); err == nil {
		t.Error("negative cells should fail")
	}
	arr := mustAligned(t, 2, 2, 1, 0, 10)
	if err := arr.FillSection(section.MustNew(0, 10, 1), 0); err == nil {
		t.Error("out-of-bounds fill should fail")
	}
	if _, err := arr.SumSection(section.MustNew(-1, 5, 1)); err == nil {
		t.Error("out-of-bounds sum should fail")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Get out of range should panic")
			}
		}()
		arr.Get(10)
	}()
}
