package hpf

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/section"
)

// BenchmarkFillSection measures a strided distributed fill through the
// AM-table node code (tables constructed per call, as at run time).
func BenchmarkFillSection(b *testing.B) {
	a := MustNewArray(dist.MustNew(32, 64), 1<<20)
	sec := section.MustNew(5, 1<<20-1, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.FillSection(sec, 1.0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGetSet measures single-element access through the
// distribution (the slow path node code avoids).
func BenchmarkGetSet(b *testing.B) {
	a := MustNewArray(dist.MustNew(32, 64), 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := int64(i) % (1 << 20)
		a.Set(idx, a.Get(idx)+1)
	}
}
