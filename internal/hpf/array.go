// Package hpf provides the distributed-array runtime that the paper's
// address-generation routines plug into: HPF-style arrays partitioned
// over simulated processors with cyclic(k) distributions, and the
// section-level operations (fill, gather, pointwise update) that
// generated node code performs.
//
// An Array's storage is physically split into one packed local memory per
// processor, exactly as an HPF compiler would lay it out (paper,
// Section 1: "an array A distributed with a cyclic(k) distribution is
// effectively split into p subarrays, each being local to one
// processor"). Section operations never touch a global dense copy; they
// run per-processor through the AM tables of package core and the node
// code shapes of package codegen.
package hpf

import (
	"fmt"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/plancache"
	"repro/internal/section"
	"repro/internal/telemetry"
)

// Section-op counters live in the process-wide registry so metric dumps
// show how often each node-loop entry point ran; when a tracer is
// active the ops also appear as host-timeline spans. Both are free of
// allocation, keeping the warm section path at 0 allocs/op.
var (
	telFillOps = telemetry.Default().Counter("hpf.fill_section_ops")
	telMapOps  = telemetry.Default().Counter("hpf.map_section_ops")
	telSumOps  = telemetry.Default().Counter("hpf.sum_section_ops")
)

// Array is a one-dimensional distributed array of float64.
type Array struct {
	layout dist.Layout
	n      int64
	local  [][]float64 // local[m] is processor m's packed memory
}

// NewArray allocates an n-element array distributed by layout. Local
// segments are zero-initialized.
func NewArray(layout dist.Layout, n int64) (*Array, error) {
	if n < 0 {
		return nil, fmt.Errorf("hpf: negative array size %d", n)
	}
	a := &Array{layout: layout, n: n}
	a.local = make([][]float64, layout.P())
	for m := int64(0); m < layout.P(); m++ {
		a.local[m] = make([]float64, layout.LocalCount(m, n))
	}
	return a, nil
}

// MustNewArray is NewArray but panics on error.
func MustNewArray(layout dist.Layout, n int64) *Array {
	a, err := NewArray(layout, n)
	if err != nil {
		panic(err)
	}
	return a
}

// N returns the global array length.
func (a *Array) N() int64 { return a.n }

// Layout returns the array's distribution.
func (a *Array) Layout() dist.Layout { return a.layout }

// LocalMem returns processor m's packed local memory. The slice aliases
// the array's storage; node code writes through it.
func (a *Array) LocalMem(m int64) []float64 { return a.local[m] }

// checkIndex panics on out-of-range access, like a Fortran bounds check.
func (a *Array) checkIndex(i int64) {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("hpf: index %d out of range [0, %d)", i, a.n))
	}
}

// Get reads element i through the distribution.
func (a *Array) Get(i int64) float64 {
	a.checkIndex(i)
	return a.local[a.layout.Owner(i)][a.layout.Local(i)]
}

// Set writes element i through the distribution.
func (a *Array) Set(i int64, v float64) {
	a.checkIndex(i)
	a.local[a.layout.Owner(i)][a.layout.Local(i)] = v
}

// Gather copies the array into a dense global slice (for verification and
// I/O; distributed computations never need it).
func (a *Array) Gather() []float64 {
	out := make([]float64, a.n)
	for i := int64(0); i < a.n; i++ {
		out[i] = a.Get(i)
	}
	return out
}

// FillAll sets every element to v.
func (a *Array) FillAll(v float64) {
	for _, mem := range a.local {
		for i := range mem {
			mem[i] = v
		}
	}
}

// sectionPlan describes the per-processor node loop for a section of this
// array: the core problem, local start/last addresses, the AM table, and
// the specialized kernel compiled from them. The kernel is selected once
// here, at plan-compile time; every subsequent traversal dispatches
// straight into the specialized loop.
type sectionPlan struct {
	start, last int64 // local addresses; start == -1 means nothing to do
	gaps        []int64
	count       int64
	problem     core.Problem
	kernel      codegen.Kernel
}

// compileKernel selects the node-code kernel for this plan. ts supplies
// the shared offset-indexed transition tables when the configuration has
// them, making the Figure 8(d) dispatch kernel available at zero extra
// storage per plan.
func (plan *sectionPlan) compileKernel(ts *core.TableSet) {
	sp := codegen.Spec{
		Problem: plan.problem,
		Start:   plan.start,
		Last:    plan.last,
		Count:   plan.count,
		Gaps:    plan.gaps,
	}
	if ts != nil {
		if delta, next, ok := ts.Transitions(); ok {
			sp.Delta, sp.Next = delta, next
		}
	}
	plan.kernel = codegen.Compile(sp)
}

// planSection builds the node-loop plan for processor m over the section
// (normalized to ascending order; fill-type operations are order
// independent). The section must lie within array bounds.
func (a *Array) planSection(sec section.Section, m int64) (sectionPlan, error) {
	asc, _ := sec.Ascending()
	if asc.Empty() {
		return sectionPlan{start: -1, last: -1}, nil
	}
	if asc.Lo < 0 || asc.Last() >= a.n {
		return sectionPlan{}, fmt.Errorf("hpf: section %v outside array [0, %d)", sec, a.n)
	}
	pr := core.Problem{P: a.layout.P(), K: a.layout.K(), L: asc.Lo, S: asc.Stride, M: m}
	u := asc.Last()
	count, err := pr.Count(u)
	if err != nil {
		return sectionPlan{}, err
	}
	if count == 0 {
		return sectionPlan{start: -1, last: -1}, nil
	}
	// Go through the shared TableSet (memoized process-wide) rather than
	// core.Lattice so the uncached path sees the same transition tables —
	// and therefore selects the same kernel — as buildSectionPlans.
	ts, err := plancache.Tables(pr.P, pr.K, pr.L, pr.S)
	if err != nil {
		return sectionPlan{}, err
	}
	seq, err := ts.Sequence(m)
	if err != nil {
		return sectionPlan{}, err
	}
	lastGlobal, err := pr.Last(u)
	if err != nil {
		return sectionPlan{}, err
	}
	plan := sectionPlan{
		start:   seq.StartLocal,
		last:    a.layout.Local(lastGlobal),
		gaps:    seq.Gaps,
		count:   count,
		problem: pr,
	}
	plan.compileKernel(ts)
	return plan, nil
}

// kindLabel names the kernel kind the plans compiled to (the kind of
// the first non-empty processor; all processors of a section share the
// same (p, k, l, s) class). Access-trace step labels carry it so the
// locality profiler can slice reuse profiles per kernel kind.
func (sp *sectionPlans) kindLabel() string {
	for m := range sp.plans {
		if sp.plans[m].start >= 0 {
			return sp.plans[m].kernel.Kind().String()
		}
	}
	return codegen.KindNone.String()
}

// FillSection performs the array assignment A(sec) = v, dispatching each
// processor's specialized node-code kernel over its local memory. The
// per-processor plans (kernel included) come from the section-plan
// cache, so repeated assignments to the same section build no tables and
// re-run no selection after the first. With an access recorder active
// the op becomes one trace step and every store is recorded per rank.
func (a *Array) FillSection(sec section.Section, v float64) error {
	telFillOps.Inc()
	if tr := telemetry.ActiveTracer(); tr != nil {
		defer tr.EndSpan(telemetry.HostRank, "hpf.fill_section", tr.Now())
	}
	sp, err := a.cachedSectionPlans(sec)
	if err != nil || sp == nil {
		return err
	}
	if ar := telemetry.ActiveAccessRecorder(); ar != nil {
		step := ar.BeginStep("hpf.fill_section:" + sp.kindLabel())
		for m := range sp.plans {
			plan := &sp.plans[m]
			if plan.start < 0 {
				continue
			}
			wrote := plan.kernel.FillTraced(a.local[m], v, ar, int32(m), step)
			if wrote != plan.count {
				return fmt.Errorf("hpf: internal: wrote %d of %d elements on proc %d",
					wrote, plan.count, m)
			}
		}
		return nil
	}
	for m := range sp.plans {
		plan := &sp.plans[m]
		if plan.start < 0 {
			continue
		}
		wrote := plan.kernel.Fill(a.local[m], v)
		if wrote != plan.count {
			return fmt.Errorf("hpf: internal: wrote %d of %d elements on proc %d",
				wrote, plan.count, m)
		}
	}
	return nil
}

// MapSection applies f to every element of A(sec) in place:
// A(sec) = f(A(sec)), through each processor's cached kernel.
func (a *Array) MapSection(sec section.Section, f func(float64) float64) error {
	telMapOps.Inc()
	if tr := telemetry.ActiveTracer(); tr != nil {
		defer tr.EndSpan(telemetry.HostRank, "hpf.map_section", tr.Now())
	}
	sp, err := a.cachedSectionPlans(sec)
	if err != nil || sp == nil {
		return err
	}
	if ar := telemetry.ActiveAccessRecorder(); ar != nil {
		step := ar.BeginStep("hpf.map_section:" + sp.kindLabel())
		for m := range sp.plans {
			plan := &sp.plans[m]
			if plan.start < 0 {
				continue
			}
			wrote := plan.kernel.MapTraced(a.local[m], f, ar, int32(m), step)
			if wrote != plan.count {
				return fmt.Errorf("hpf: internal: mapped %d of %d elements on proc %d",
					wrote, plan.count, m)
			}
		}
		return nil
	}
	for m := range sp.plans {
		plan := &sp.plans[m]
		if plan.start < 0 {
			continue
		}
		wrote := plan.kernel.Map(a.local[m], f)
		if wrote != plan.count {
			return fmt.Errorf("hpf: internal: mapped %d of %d elements on proc %d",
				wrote, plan.count, m)
		}
	}
	return nil
}

// SumSection returns the sum over A(sec), computed per processor through
// each cached kernel and combined.
func (a *Array) SumSection(sec section.Section) (float64, error) {
	telSumOps.Inc()
	if tr := telemetry.ActiveTracer(); tr != nil {
		defer tr.EndSpan(telemetry.HostRank, "hpf.sum_section", tr.Now())
	}
	var total float64
	sp, err := a.cachedSectionPlans(sec)
	if err != nil || sp == nil {
		return 0, err
	}
	if ar := telemetry.ActiveAccessRecorder(); ar != nil {
		step := ar.BeginStep("hpf.sum_section:" + sp.kindLabel())
		for m := range sp.plans {
			plan := &sp.plans[m]
			if plan.start < 0 {
				continue
			}
			part, saw := plan.kernel.SumTraced(a.local[m], ar, int32(m), step)
			if saw != plan.count {
				return 0, fmt.Errorf("hpf: internal: summed %d of %d elements on proc %d",
					saw, plan.count, m)
			}
			total += part
		}
		return total, nil
	}
	for m := range sp.plans {
		plan := &sp.plans[m]
		if plan.start < 0 {
			continue
		}
		part, saw := plan.kernel.Sum(a.local[m])
		if saw != plan.count {
			return 0, fmt.Errorf("hpf: internal: summed %d of %d elements on proc %d",
				saw, plan.count, m)
		}
		total += part
	}
	return total, nil
}

// GatherSection copies A(sec) into a dense slice in traversal order
// (respecting descending sections).
func (a *Array) GatherSection(sec section.Section) ([]float64, error) {
	n := sec.Count()
	out := make([]float64, 0, n)
	if n == 0 {
		return out, nil
	}
	asc, _ := sec.Ascending()
	if asc.Lo < 0 || asc.Last() >= a.n {
		return nil, fmt.Errorf("hpf: section %v outside array [0, %d)", sec, a.n)
	}
	if ar := telemetry.ActiveAccessRecorder(); ar != nil {
		step := ar.BeginStep("hpf.gather_section")
		for j := int64(0); j < n; j++ {
			i := sec.Element(j)
			out = append(out, a.Get(i))
			ar.Record(int32(a.layout.Owner(i)), a.layout.Local(i), telemetry.AccessRead, step)
		}
		return out, nil
	}
	for j := int64(0); j < n; j++ {
		out = append(out, a.Get(sec.Element(j)))
	}
	return out, nil
}

// ScatterSection writes a dense slice into A(sec) in traversal order.
func (a *Array) ScatterSection(sec section.Section, vals []float64) error {
	n := sec.Count()
	if int64(len(vals)) != n {
		return fmt.Errorf("hpf: scatter length %d != section count %d", len(vals), n)
	}
	if n == 0 {
		return nil
	}
	asc, _ := sec.Ascending()
	if asc.Lo < 0 || asc.Last() >= a.n {
		return fmt.Errorf("hpf: section %v outside array [0, %d)", sec, a.n)
	}
	if ar := telemetry.ActiveAccessRecorder(); ar != nil {
		step := ar.BeginStep("hpf.scatter_section")
		for j := int64(0); j < n; j++ {
			i := sec.Element(j)
			a.Set(i, vals[j])
			ar.Record(int32(a.layout.Owner(i)), a.layout.Local(i), telemetry.AccessWrite, step)
		}
		return nil
	}
	for j := int64(0); j < n; j++ {
		a.Set(sec.Element(j), vals[j])
	}
	return nil
}
