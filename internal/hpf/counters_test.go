package hpf

import (
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/telemetry"
)

// kernelCounterDeltas runs fn and returns how every codegen.kernel_*
// counter moved.
func kernelCounterDeltas(fn func()) map[string]int64 {
	before := telemetry.Default().Snapshot().Counters
	fn()
	after := telemetry.Default().Snapshot().Counters
	d := map[string]int64{}
	for name, v := range after {
		if strings.HasPrefix(name, "codegen.kernel_") && v != before[name] {
			d[name] = v - before[name]
		}
	}
	return d
}

// TestKernelCountersExactPerOp pins the accounting contract of the
// per-kind kernel counters: every section op increments
// codegen.kernel_invocations.<kind> exactly once per executing plan —
// on the cached plan path, on a fresh compile, and on the traced path
// with an access recorder active — while codegen.kernel_selected.<kind>
// moves only when a plan is actually compiled.
func TestKernelCountersExactPerOp(t *testing.T) {
	for _, tc := range kernelFamilies() {
		t.Run(tc.name, func(t *testing.T) {
			ResetSectionPlanCache()
			a := MustNewArray(dist.MustNew(tc.p, tc.k), tc.n)
			// Compile the plans up front; wantInvoked is the exact per-kind
			// census of plans that execute (processors owning elements).
			sp, err := a.cachedSectionPlans(tc.sec)
			if err != nil {
				t.Fatal(err)
			}
			wantInvoked := map[string]int64{}
			for m := range sp.plans {
				if sp.plans[m].start >= 0 {
					wantInvoked["codegen.kernel_invocations."+sp.plans[m].kernel.Kind().String()]++
				}
			}
			if len(wantInvoked) == 0 {
				t.Fatal("no executing plans in fixture")
			}

			checkOp := func(path, op string, fn func()) {
				t.Helper()
				d := kernelCounterDeltas(fn)
				for name, want := range wantInvoked {
					if d[name] != want {
						t.Errorf("%s %s: %s moved %d, want exactly %d (deltas %v)", path, op, name, d[name], want, d)
					}
					delete(d, name)
				}
				for name, got := range d {
					if strings.HasPrefix(name, "codegen.kernel_selected.") {
						if path != "uncached" {
							t.Errorf("%s %s: %s moved %d on a cached plan", path, op, name, got)
						}
						continue
					}
					t.Errorf("%s %s: unexpected counter movement %s %+d", path, op, name, got)
				}
			}

			// Cached path: the plans above are reused, no re-selection.
			checkOp("cached", "fill", func() {
				if err := a.FillSection(tc.sec, 1); err != nil {
					t.Fatal(err)
				}
			})
			checkOp("cached", "map", func() {
				if err := a.MapSection(tc.sec, func(v float64) float64 { return v + 1 }); err != nil {
					t.Fatal(err)
				}
			})
			checkOp("cached", "sum", func() {
				if _, err := a.SumSection(tc.sec); err != nil {
					t.Fatal(err)
				}
			})

			// Traced path: with a recorder active the ops run the traced
			// kernels, which must count identically (not double).
			telemetry.StartAccessRecording(int(tc.p), 1<<16, 1)
			checkOp("cached+traced", "fill", func() {
				if err := a.FillSection(tc.sec, 2); err != nil {
					t.Fatal(err)
				}
			})
			checkOp("cached+traced", "sum", func() {
				if _, err := a.SumSection(tc.sec); err != nil {
					t.Fatal(err)
				}
			})
			telemetry.StopAccessRecording()

			// Uncached path: a fresh compile re-selects once per compiled
			// plan but still invokes each kernel exactly once.
			ResetSectionPlanCache()
			checkOp("uncached", "fill", func() {
				if err := a.FillSection(tc.sec, 3); err != nil {
					t.Fatal(err)
				}
			})
			want := "codegen.kernel_selected." + tc.want.String()
			d := kernelCounterDeltas(func() {
				ResetSectionPlanCache()
				if _, err := a.cachedSectionPlans(tc.sec); err != nil {
					t.Fatal(err)
				}
			})
			if d[want] < 1 {
				t.Errorf("fresh compile did not move %s (deltas %v)", want, d)
			}
			for name := range d {
				if strings.HasPrefix(name, "codegen.kernel_invocations.") {
					t.Errorf("plan compilation moved invocation counter %s (deltas %v)", name, d)
				}
			}
		})
	}
}
