package hpf

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dist"
	"repro/internal/section"
)

func TestNewArray(t *testing.T) {
	layout := dist.MustNew(4, 8)
	a, err := NewArray(layout, 320)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != 320 {
		t.Errorf("N = %d", a.N())
	}
	// 320 = 10 rows of 32; every processor owns 80 cells.
	for m := int64(0); m < 4; m++ {
		if got := len(a.LocalMem(m)); got != 80 {
			t.Errorf("local size m=%d: %d, want 80", m, got)
		}
	}
	if _, err := NewArray(layout, -1); err == nil {
		t.Error("negative size should fail")
	}
}

func TestGetSetRoundTrip(t *testing.T) {
	a := MustNewArray(dist.MustNew(3, 5), 100)
	for i := int64(0); i < 100; i++ {
		a.Set(i, float64(i)*1.5)
	}
	for i := int64(0); i < 100; i++ {
		if got := a.Get(i); got != float64(i)*1.5 {
			t.Fatalf("Get(%d) = %v", i, got)
		}
	}
	dense := a.Gather()
	for i := range dense {
		if dense[i] != float64(i)*1.5 {
			t.Fatalf("Gather[%d] = %v", i, dense[i])
		}
	}
}

func TestBoundsPanic(t *testing.T) {
	a := MustNewArray(dist.MustNew(2, 2), 10)
	for _, i := range []int64{-1, 10, 1 << 40} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Get(%d) should panic", i)
				}
			}()
			a.Get(i)
		}()
	}
}

func TestFillSectionAgainstDense(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 300; trial++ {
		p := r.Int63n(6) + 1
		k := r.Int63n(10) + 1
		n := r.Int63n(400) + 1
		a := MustNewArray(dist.MustNew(p, k), n)
		a.FillAll(-1)
		dense := make([]float64, n)
		for i := range dense {
			dense[i] = -1
		}
		lo := r.Int63n(n)
		s := r.Int63n(3*p*k) + 1
		hi := min(n-1, lo+r.Int63n(4*s*k+1))
		if r.Intn(4) == 0 {
			// descending variant
			lo, hi = hi, lo
			s = -s
		}
		sec := section.MustNew(lo, hi, s)
		if err := a.FillSection(sec, 7); err != nil {
			t.Fatal(err)
		}
		for _, g := range sec.Slice() {
			dense[g] = 7
		}
		if got := a.Gather(); !reflect.DeepEqual(got, dense) {
			t.Fatalf("p=%d k=%d n=%d sec=%v: fill mismatch", p, k, n, sec)
		}
	}
}

func TestFillSectionOutOfBounds(t *testing.T) {
	a := MustNewArray(dist.MustNew(2, 4), 20)
	if err := a.FillSection(section.MustNew(0, 20, 1), 1); err == nil {
		t.Error("section past end should fail")
	}
	if err := a.FillSection(section.MustNew(-5, 10, 1), 1); err == nil {
		t.Error("section below start should fail")
	}
	// Empty sections are fine no-ops.
	if err := a.FillSection(section.MustNew(5, 4, 1), 1); err != nil {
		t.Errorf("empty section should be a no-op: %v", err)
	}
}

func TestMapSection(t *testing.T) {
	a := MustNewArray(dist.MustNew(4, 3), 100)
	for i := int64(0); i < 100; i++ {
		a.Set(i, float64(i))
	}
	sec := section.MustNew(2, 98, 7)
	if err := a.MapSection(sec, func(x float64) float64 { return -x }); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		want := float64(i)
		if sec.Contains(i) {
			want = -want
		}
		if got := a.Get(i); got != want {
			t.Fatalf("Get(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestSumSection(t *testing.T) {
	a := MustNewArray(dist.MustNew(4, 8), 320)
	for i := int64(0); i < 320; i++ {
		a.Set(i, float64(i))
	}
	sec := section.MustNew(4, 300, 9)
	got, err := a.SumSection(sec)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, g := range sec.Slice() {
		want += float64(g)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("SumSection = %v, want %v", got, want)
	}
}

func TestGatherScatterSection(t *testing.T) {
	a := MustNewArray(dist.MustNew(3, 4), 60)
	for i := int64(0); i < 60; i++ {
		a.Set(i, float64(i))
	}
	sec := section.MustNew(50, 2, -6) // descending
	vals, err := a.GatherSection(sec)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{50, 44, 38, 32, 26, 20, 14, 8, 2}
	if !reflect.DeepEqual(vals, want) {
		t.Errorf("GatherSection = %v, want %v", vals, want)
	}
	// Scatter back doubled.
	for i := range vals {
		vals[i] *= 2
	}
	if err := a.ScatterSection(sec, vals); err != nil {
		t.Fatal(err)
	}
	for _, g := range sec.Slice() {
		if got := a.Get(g); got != float64(g)*2 {
			t.Errorf("after scatter Get(%d) = %v", g, got)
		}
	}
	if err := a.ScatterSection(sec, vals[:3]); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestArray2DBasics(t *testing.T) {
	grid := dist.MustNewGrid(dist.MustNew(2, 2), dist.MustNew(3, 1))
	a, err := NewArray2D(grid, 7, 9)
	if err != nil {
		t.Fatal(err)
	}
	if n0, n1 := a.Dims(); n0 != 7 || n1 != 9 {
		t.Errorf("Dims = %d,%d", n0, n1)
	}
	for i := int64(0); i < 7; i++ {
		for j := int64(0); j < 9; j++ {
			a.Set(i, j, float64(i*100+j))
		}
	}
	for i := int64(0); i < 7; i++ {
		for j := int64(0); j < 9; j++ {
			if got := a.Get(i, j); got != float64(i*100+j) {
				t.Fatalf("Get(%d,%d) = %v", i, j, got)
			}
		}
	}
	dense := a.Gather()
	if dense[3*9+4] != 304 {
		t.Errorf("Gather[3,4] = %v", dense[3*9+4])
	}
	// Total local volume must equal the global volume.
	var vol int64
	for r := int64(0); r < grid.Procs(); r++ {
		mem, rows, cols := a.LocalMem(r)
		if int64(len(mem)) != rows*cols {
			t.Errorf("rank %d: len(mem)=%d, rows*cols=%d", r, len(mem), rows*cols)
		}
		vol += rows * cols
	}
	if vol != 63 {
		t.Errorf("total local volume %d, want 63", vol)
	}
}

func TestArray2DLocalDomain(t *testing.T) {
	grid := dist.MustNewGrid(dist.MustNew(2, 2), dist.MustNew(2, 3))
	a := MustNewArray2D(grid, 10, 11)
	seenRow := map[int64]int{}
	seenCol := map[int64]int{}
	for r := int64(0); r < grid.Procs(); r++ {
		rows, cols := a.LocalDomain(r)
		coords := grid.Coords(r)
		for _, i := range rows {
			if grid.Dim(0).Owner(i) != coords[0] {
				t.Errorf("rank %d: row index %d not owned", r, i)
			}
			if coords[1] == 0 {
				seenRow[i]++
			}
		}
		for _, j := range cols {
			if grid.Dim(1).Owner(j) != coords[1] {
				t.Errorf("rank %d: col index %d not owned", r, j)
			}
			if coords[0] == 0 {
				seenCol[j]++
			}
		}
	}
	// Every global row/col index appears exactly once across one grid slice.
	for i := int64(0); i < 10; i++ {
		if seenRow[i] != 1 {
			t.Errorf("row %d seen %d times", i, seenRow[i])
		}
	}
	for j := int64(0); j < 11; j++ {
		if seenCol[j] != 1 {
			t.Errorf("col %d seen %d times", j, seenCol[j])
		}
	}
}

func TestArray2DValidation(t *testing.T) {
	g1 := dist.MustNewGrid(dist.MustNew(2, 2))
	if _, err := NewArray2D(g1, 4, 4); err == nil {
		t.Error("rank-1 grid should fail")
	}
	g2 := dist.MustNewGrid(dist.MustNew(2, 2), dist.MustNew(2, 2))
	if _, err := NewArray2D(g2, -1, 4); err == nil {
		t.Error("negative extent should fail")
	}
}
