package hpf

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/section"
)

func TestFillRectAgainstDense(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	for trial := 0; trial < 120; trial++ {
		g := dist.MustNewGrid(
			dist.MustNew(r.Int63n(3)+1, r.Int63n(4)+1),
			dist.MustNew(r.Int63n(3)+1, r.Int63n(4)+1),
		)
		n0 := r.Int63n(25) + 5
		n1 := r.Int63n(25) + 5
		a := MustNewArray2D(g, n0, n1)
		dense := make([]float64, n0*n1)

		mkSec := func(n int64) section.Section {
			s := r.Int63n(4) + 1
			lo := r.Int63n(n)
			hi := min(n-1, lo+r.Int63n(2*s+8))
			if r.Intn(3) == 0 {
				return section.Section{Lo: hi, Hi: lo, Stride: -s}
			}
			return section.Section{Lo: lo, Hi: hi, Stride: s}
		}
		rect, err := section.NewRect(mkSec(n0), mkSec(n1))
		if err != nil {
			t.Fatal(err)
		}
		if err := a.FillRect(rect, 3); err != nil {
			t.Fatalf("trial %d rect %v: %v", trial, rect, err)
		}
		for idx := range rect.All() {
			dense[idx[0]*n1+idx[1]] = 3
		}
		got := a.Gather()
		for i := range dense {
			if got[i] != dense[i] {
				t.Fatalf("trial %d rect %v: cell %d = %v, want %v",
					trial, rect, i, got[i], dense[i])
			}
		}
	}
}

func TestSumRect(t *testing.T) {
	g := dist.MustNewGrid(dist.MustNew(2, 2), dist.MustNew(2, 3))
	a := MustNewArray2D(g, 12, 14)
	for i := int64(0); i < 12; i++ {
		for j := int64(0); j < 14; j++ {
			a.Set(i, j, float64(i*100+j))
		}
	}
	rect, _ := section.NewRect(section.MustNew(1, 11, 2), section.MustNew(0, 13, 3))
	got, err := a.SumRect(rect)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for idx := range rect.All() {
		want += a.Get(idx[0], idx[1])
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("SumRect = %v, want %v", got, want)
	}
}

func TestMapRect(t *testing.T) {
	g := dist.MustNewGrid(dist.MustNew(2, 1), dist.MustNew(2, 2))
	a := MustNewArray2D(g, 8, 8)
	for i := int64(0); i < 8; i++ {
		for j := int64(0); j < 8; j++ {
			a.Set(i, j, 1)
		}
	}
	rect, _ := section.NewRect(section.MustNew(0, 7, 2), section.MustNew(1, 7, 2))
	if err := a.MapRect(rect, func(x float64) float64 { return x + 10 }); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 8; i++ {
		for j := int64(0); j < 8; j++ {
			want := 1.0
			if i%2 == 0 && j%2 == 1 {
				want = 11
			}
			if got := a.Get(i, j); got != want {
				t.Fatalf("(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestRectRankValidation(t *testing.T) {
	g := dist.MustNewGrid(dist.MustNew(2, 2), dist.MustNew(2, 2))
	a := MustNewArray2D(g, 8, 8)
	rect1, _ := section.NewRect(section.MustNew(0, 7, 1))
	if err := a.FillRect(rect1, 0); err == nil {
		t.Error("rank-1 rect should fail")
	}
	if _, err := a.SumRect(rect1); err == nil {
		t.Error("rank-1 rect should fail")
	}
	if err := a.MapRect(rect1, func(x float64) float64 { return x }); err == nil {
		t.Error("rank-1 rect should fail")
	}
	rectOOB, _ := section.NewRect(section.MustNew(0, 8, 1), section.MustNew(0, 7, 1))
	if err := a.FillRect(rectOOB, 0); err == nil {
		t.Error("out-of-bounds rect should fail")
	}
}
