package hpf

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dist"
	"repro/internal/plancache"
	"repro/internal/section"
)

// TestCachedPlansMatchPlanSection checks the cached per-processor plans
// against the direct (uncached) planner over a seeded sweep.
func TestCachedPlansMatchPlanSection(t *testing.T) {
	ResetSectionPlanCache()
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		p := r.Int63n(6) + 1
		k := r.Int63n(7) + 1
		n := r.Int63n(200) + 1
		a := MustNewArray(dist.MustNew(p, k), n)
		lo := r.Int63n(n)
		stride := r.Int63n(5) + 1
		count := r.Int63n((n-lo+stride-1)/stride) + 1
		sec := section.Section{Lo: lo, Hi: lo + (count-1)*stride, Stride: stride}
		if sec.Last() >= n {
			continue
		}
		sp, err := a.cachedSectionPlans(sec)
		if err != nil {
			t.Fatalf("trial %d: cachedSectionPlans: %v", trial, err)
		}
		for m := int64(0); m < p; m++ {
			want, err := a.planSection(sec, m)
			if err != nil {
				t.Fatalf("trial %d: planSection: %v", trial, err)
			}
			got := sp.plans[m]
			if got.start != want.start || got.last != want.last || got.count != want.count {
				t.Fatalf("trial %d proc %d: cached plan %+v != fresh %+v", trial, m, got, want)
			}
			if want.start >= 0 {
				if len(got.gaps) != len(want.gaps) {
					t.Fatalf("trial %d proc %d: gap table lengths differ", trial, m)
				}
				for i := range want.gaps {
					if got.gaps[i] != want.gaps[i] {
						t.Fatalf("trial %d proc %d: gaps differ at %d", trial, m, i)
					}
				}
			}
		}
	}
}

// TestSectionOpsSteadyStateZeroMisses verifies that iteration 2..N of a
// repeated section pattern consults only the cache: zero section-plan
// misses and zero AM-table constructions after warm-up.
func TestSectionOpsSteadyStateZeroMisses(t *testing.T) {
	ResetSectionPlanCache()
	plancache.ResetTables()
	a := MustNewArray(dist.MustNew(4, 3), 120)
	sec := section.MustNew(1, 118, 3)

	if err := a.FillSection(sec, 1); err != nil {
		t.Fatal(err)
	}
	warmSec := SectionPlanCacheStats()
	warmTab := plancache.TableStats()

	for i := 0; i < 10; i++ {
		if err := a.FillSection(sec, float64(i)); err != nil {
			t.Fatal(err)
		}
		if err := a.MapSection(sec, func(v float64) float64 { return v + 1 }); err != nil {
			t.Fatal(err)
		}
		if _, err := a.SumSection(sec); err != nil {
			t.Fatal(err)
		}
	}
	steadySec := SectionPlanCacheStats()
	steadyTab := plancache.TableStats()
	if d := steadySec.Misses - warmSec.Misses; d != 0 {
		t.Fatalf("steady state rebuilt section plans %d times, want 0", d)
	}
	if d := steadyTab.Misses - warmTab.Misses; d != 0 {
		t.Fatalf("steady state rebuilt AM tables %d times, want 0", d)
	}
	if steadySec.Hits-warmSec.Hits != 30 {
		t.Fatalf("steady state section-plan hits = %d, want 30", steadySec.Hits-warmSec.Hits)
	}

	// Semantics spot check: fill 9, +1 ten times would overwrite; final
	// pass left sec elements at 9+1 = 10.
	sum, err := a.SumSection(sec)
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(sec.Count()) * 10; math.Abs(sum-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", sum, want)
	}
}

// TestSectionPlanCacheConcurrent hammers the cache from several
// goroutines over distinct arrays with overlapping patterns (run with
// -race), using a tiny cache to force evictions.
func TestSectionPlanCacheConcurrent(t *testing.T) {
	old := sectionPlanCache
	sectionPlanCache = plancache.New[sectionKey, *sectionPlans](2, hashSectionKey)
	defer func() { sectionPlanCache = old }()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				p := r.Int63n(4) + 1
				k := r.Int63n(4) + 1
				n := int64(60)
				a := MustNewArray(dist.MustNew(p, k), n)
				stride := r.Int63n(3) + 1
				cnt := r.Int63n(n/stride) + 1
				sec := section.Section{Lo: 0, Hi: (cnt - 1) * stride, Stride: stride}
				if err := a.FillSection(sec, 2); err != nil {
					t.Error(err)
					return
				}
				sum, err := a.SumSection(sec)
				if err != nil {
					t.Error(err)
					return
				}
				if want := 2 * float64(sec.Count()); math.Abs(sum-want) > 1e-9 {
					t.Errorf("sum = %g, want %g", sum, want)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if st := sectionPlanCache.Stats(); st.Evictions == 0 {
		t.Error("expected forced evictions in tiny section-plan cache")
	}
}
