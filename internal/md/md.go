// Package md generates local memory access sequences for MULTI-
// dimensional regular sections over processor grids.
//
// HPF distributes each array dimension independently, so "if a
// multidimensional array section can be described using Fortran 90
// subscript triplet notation ... the memory access problem simply reduces
// to multiple applications of the algorithm for the one-dimensional case"
// (paper, Section 2). A Plan runs the one-dimensional lattice algorithm
// per dimension and composes the per-dimension local addresses into
// linear offsets of the processor's dense local array.
package md

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/section"
)

// Plan is the access plan of one grid processor for a multidimensional
// section: the per-dimension local address lists, plus the local array
// geometry needed to linearize them.
type Plan struct {
	// addrs[d] lists dimension d's local addresses (in increasing global
	// index order) of the section elements owned along that dimension.
	addrs [][]int64
	// strides[d] is the linear stride of one step in dimension d within
	// the processor's dense row-major local array.
	strides []int64
	// reversed[d] records that the section traverses dimension d
	// descending (addresses are walked back to front).
	reversed []bool
}

// NewPlan builds the plan for the processor at the given grid coordinates
// over an array with the given global extents, for the section rect. The
// local array is assumed dense row-major with extents
// grid.Dim(d).LocalCount(coords[d], extents[d]) — the layout used by
// hpf.Array2D.
func NewPlan(grid *dist.Grid, coords, extents []int64, rect section.Rect) (*Plan, error) {
	rank := grid.Rank()
	if len(coords) != rank || len(extents) != rank || rect.Rank() != rank {
		return nil, fmt.Errorf("md: rank mismatch: grid %d, coords %d, extents %d, rect %d",
			rank, len(coords), len(extents), rect.Rank())
	}
	p := &Plan{
		addrs:    make([][]int64, rank),
		strides:  make([]int64, rank),
		reversed: make([]bool, rank),
	}
	// Row-major strides from the local shape.
	stride := int64(1)
	for d := rank - 1; d >= 0; d-- {
		layout := grid.Dim(d)
		p.strides[d] = stride
		stride *= layout.LocalCount(coords[d], extents[d])
	}
	for d := 0; d < rank; d++ {
		layout := grid.Dim(d)
		sec := rect[d]
		asc, rev := sec.Ascending()
		p.reversed[d] = rev
		if asc.Empty() {
			p.addrs[d] = nil
			continue
		}
		if asc.Lo < 0 || asc.Last() >= extents[d] {
			return nil, fmt.Errorf("md: dimension %d section %v outside [0, %d)",
				d, sec, extents[d])
		}
		pr := core.Problem{
			P: layout.P(), K: layout.K(),
			L: asc.Lo, S: asc.Stride,
			M: coords[d],
		}
		a, err := pr.Addresses(asc.Last())
		if err != nil {
			return nil, fmt.Errorf("md: dimension %d: %v", d, err)
		}
		p.addrs[d] = a
	}
	return p, nil
}

// Count returns the number of section elements this processor owns.
func (p *Plan) Count() int64 {
	n := int64(1)
	for _, a := range p.addrs {
		n *= int64(len(a))
	}
	return n
}

// DimCount returns the number of owned elements along dimension d.
func (p *Plan) DimCount(d int) int { return len(p.addrs[d]) }

// Addresses returns the linear local addresses of all owned section
// elements, ordered by the section's traversal order (outer dimensions
// vary slowest, descending dimensions walk their addresses backwards).
func (p *Plan) Addresses() []int64 {
	n := p.Count()
	out := make([]int64, 0, n)
	if n == 0 {
		return out
	}
	rank := len(p.addrs)
	pos := make([]int, rank)
	for {
		var lin int64
		for d := 0; d < rank; d++ {
			idx := pos[d]
			if p.reversed[d] {
				idx = len(p.addrs[d]) - 1 - idx
			}
			lin += p.addrs[d][idx] * p.strides[d]
		}
		out = append(out, lin)
		d := rank - 1
		for d >= 0 {
			pos[d]++
			if pos[d] < len(p.addrs[d]) {
				break
			}
			pos[d] = 0
			d--
		}
		if d < 0 {
			return out
		}
	}
}

// Each calls f for every owned element's linear local address, in
// traversal order, without materializing the address list.
func (p *Plan) Each(f func(lin int64)) {
	if p.Count() == 0 {
		return
	}
	rank := len(p.addrs)
	pos := make([]int, rank)
	for {
		var lin int64
		for d := 0; d < rank; d++ {
			idx := pos[d]
			if p.reversed[d] {
				idx = len(p.addrs[d]) - 1 - idx
			}
			lin += p.addrs[d][idx] * p.strides[d]
		}
		f(lin)
		d := rank - 1
		for d >= 0 {
			pos[d]++
			if pos[d] < len(p.addrs[d]) {
				break
			}
			pos[d] = 0
			d--
		}
		if d < 0 {
			return
		}
	}
}
