package md

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/dist"
	"repro/internal/section"
)

// bruteAddrs walks the rect in traversal order and returns, for the given
// processor, the linear local addresses of the owned elements — the
// definition Plan must match.
func bruteAddrs(grid *dist.Grid, coords, extents []int64, rect section.Rect) []int64 {
	rank := grid.Rank()
	// Local shape and row-major strides.
	shape := make([]int64, rank)
	for d := 0; d < rank; d++ {
		shape[d] = grid.Dim(d).LocalCount(coords[d], extents[d])
	}
	strides := make([]int64, rank)
	st := int64(1)
	for d := rank - 1; d >= 0; d-- {
		strides[d] = st
		st *= shape[d]
	}
	var out []int64
	for idx := range rect.All() {
		owned := true
		var lin int64
		for d := 0; d < rank; d++ {
			if grid.Dim(d).Owner(idx[d]) != coords[d] {
				owned = false
				break
			}
			lin += grid.Dim(d).Local(idx[d]) * strides[d]
		}
		if owned {
			out = append(out, lin)
		}
	}
	return out
}

func TestPlanMatchesBrute2D(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 250; trial++ {
		g := dist.MustNewGrid(
			dist.MustNew(r.Int63n(3)+1, r.Int63n(5)+1),
			dist.MustNew(r.Int63n(3)+1, r.Int63n(5)+1),
		)
		extents := []int64{r.Int63n(40) + 10, r.Int63n(40) + 10}
		mkSec := func(n int64) section.Section {
			s := r.Int63n(5) + 1
			lo := r.Int63n(n)
			hi := min(n-1, lo+r.Int63n(3*s+10))
			if r.Intn(3) == 0 {
				return section.Section{Lo: hi, Hi: lo, Stride: -s}
			}
			return section.Section{Lo: lo, Hi: hi, Stride: s}
		}
		rect, err := section.NewRect(mkSec(extents[0]), mkSec(extents[1]))
		if err != nil {
			t.Fatal(err)
		}
		for rank := int64(0); rank < g.Procs(); rank++ {
			coords := g.Coords(rank)
			plan, err := NewPlan(g, coords, extents, rect)
			if err != nil {
				t.Fatalf("trial %d rect %v: %v", trial, rect, err)
			}
			want := bruteAddrs(g, coords, extents, rect)
			got := plan.Addresses()
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if plan.Count() != int64(len(want)) {
				t.Fatalf("trial %d rect %v proc %v: Count=%d, brute %d",
					trial, rect, coords, plan.Count(), len(want))
			}
			// Plan orders row-major over owned per-dim lists; brute orders by
			// global traversal. These coincide (per-dim owned subsequences
			// preserve traversal order and dimensions are independent).
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d rect %v proc %v:\n got  %v\n want %v",
					trial, rect, coords, got, want)
			}
		}
	}
}

func TestPlanMatchesBrute3D(t *testing.T) {
	g := dist.MustNewGrid(
		dist.MustNew(2, 2),
		dist.MustNew(1, 3),
		dist.MustNew(3, 1),
	)
	extents := []int64{9, 8, 10}
	rect, _ := section.NewRect(
		section.MustNew(0, 8, 2),
		section.MustNew(7, 1, -3),
		section.MustNew(1, 9, 1),
	)
	for rank := int64(0); rank < g.Procs(); rank++ {
		coords := g.Coords(rank)
		plan, err := NewPlan(g, coords, extents, rect)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteAddrs(g, coords, extents, rect)
		if got := plan.Addresses(); !reflect.DeepEqual(got, want) {
			t.Fatalf("proc %v: got %v, want %v", coords, got, want)
		}
	}
}

func TestPlanEachMatchesAddresses(t *testing.T) {
	g := dist.MustNewGrid(dist.MustNew(2, 3), dist.MustNew(2, 2))
	extents := []int64{20, 20}
	rect, _ := section.NewRect(section.MustNew(1, 18, 3), section.MustNew(0, 19, 2))
	plan, err := NewPlan(g, []int64{1, 0}, extents, rect)
	if err != nil {
		t.Fatal(err)
	}
	var viaEach []int64
	plan.Each(func(lin int64) { viaEach = append(viaEach, lin) })
	if !reflect.DeepEqual(viaEach, plan.Addresses()) {
		t.Error("Each and Addresses disagree")
	}
}

func TestPlanCoverage(t *testing.T) {
	// Union over all processors covers every rect element exactly once
	// (addresses are per-processor local, so count coverage, not values).
	g := dist.MustNewGrid(dist.MustNew(2, 2), dist.MustNew(3, 2))
	extents := []int64{15, 17}
	rect, _ := section.NewRect(section.MustNew(0, 14, 2), section.MustNew(1, 16, 3))
	var total int64
	for rank := int64(0); rank < g.Procs(); rank++ {
		plan, err := NewPlan(g, g.Coords(rank), extents, rect)
		if err != nil {
			t.Fatal(err)
		}
		// Addresses within a processor must be distinct.
		a := plan.Addresses()
		sorted := append([]int64(nil), a...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := 1; i < len(sorted); i++ {
			if sorted[i] == sorted[i-1] {
				t.Fatalf("duplicate local address %d on rank %d", sorted[i], rank)
			}
		}
		total += plan.Count()
	}
	if total != rect.Count() {
		t.Errorf("total owned %d, rect has %d", total, rect.Count())
	}
}

func TestPlanErrors(t *testing.T) {
	g := dist.MustNewGrid(dist.MustNew(2, 2), dist.MustNew(2, 2))
	rect2, _ := section.NewRect(section.MustNew(0, 3, 1), section.MustNew(0, 3, 1))
	if _, err := NewPlan(g, []int64{0}, []int64{10, 10}, rect2); err == nil {
		t.Error("coords rank mismatch should fail")
	}
	rect1, _ := section.NewRect(section.MustNew(0, 3, 1))
	if _, err := NewPlan(g, []int64{0, 0}, []int64{10, 10}, rect1); err == nil {
		t.Error("rect rank mismatch should fail")
	}
	rectOOB, _ := section.NewRect(section.MustNew(0, 50, 1), section.MustNew(0, 3, 1))
	if _, err := NewPlan(g, []int64{0, 0}, []int64{10, 10}, rectOOB); err == nil {
		t.Error("out-of-bounds section should fail")
	}
}

func TestEmptyDimension(t *testing.T) {
	g := dist.MustNewGrid(dist.MustNew(2, 2), dist.MustNew(2, 2))
	rect, _ := section.NewRect(section.MustNew(5, 4, 1), section.MustNew(0, 9, 1))
	plan, err := NewPlan(g, []int64{0, 0}, []int64{10, 10}, rect)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Count() != 0 || len(plan.Addresses()) != 0 {
		t.Error("empty dimension should yield no addresses")
	}
	ran := false
	plan.Each(func(int64) { ran = true })
	if ran {
		t.Error("Each on empty plan should not call f")
	}
}
