// Package intmath provides the integer arithmetic underlying block-cyclic
// address generation: Euclidean (floor-style, always-nonnegative-remainder)
// division, greatest common divisors, the extended Euclidean algorithm, and
// solvers for linear Diophantine equations and congruences.
//
// All routines operate on int64 and are deterministic. Where intermediate
// products could overflow (e.g. solving a·x ≡ b (mod n) with large a, n),
// the checked variants report an error instead of silently wrapping.
package intmath

import (
	"errors"
	"fmt"
)

// ErrOverflow is returned by checked arithmetic when a result does not fit
// in an int64.
var ErrOverflow = errors.New("intmath: arithmetic overflow")

// FloorDiv returns the quotient of a divided by b, rounded toward negative
// infinity. It panics if b == 0.
//
// Unlike Go's native division, which truncates toward zero,
// FloorDiv(-7, 2) == -4.
func FloorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// FloorMod returns a - FloorDiv(a, b)*b. The result has the same sign as b
// (and is zero when b divides a). It panics if b == 0.
//
// For positive b this is the mathematician's "mod": the result lies in
// [0, b). FloorMod(-7, 32) == 25.
func FloorMod(a, b int64) int64 {
	r := a % b
	if r != 0 && ((r < 0) != (b < 0)) {
		r += b
	}
	return r
}

// CeilDiv returns the quotient of a divided by b, rounded toward positive
// infinity. It panics if b == 0.
func CeilDiv(a, b int64) int64 {
	return -FloorDiv(-a, b)
}

// Abs returns the absolute value of a. Abs(math.MinInt64) overflows and
// panics.
func Abs(a int64) int64 {
	if a == minInt64 {
		panic("intmath: Abs(math.MinInt64) overflows")
	}
	if a < 0 {
		return -a
	}
	return a
}

const (
	minInt64 = -1 << 63
	maxInt64 = 1<<63 - 1
)

// GCD returns the greatest common divisor of a and b. The result is always
// nonnegative; GCD(0, 0) == 0.
func GCD(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCM returns the least common multiple of a and b, or an error if the
// result overflows int64. LCM(0, x) == 0.
func LCM(a, b int64) (int64, error) {
	if a == 0 || b == 0 {
		return 0, nil
	}
	g := GCD(a, b)
	q := Abs(a) / g
	return MulChecked(q, Abs(b))
}

// ExtGCD runs the extended Euclidean algorithm. It returns d = GCD(a, b)
// and Bézout coefficients x, y satisfying a·x + b·y = d.
//
// The coefficients follow the classical recursive construction (CLR
// Introduction to Algorithms, the paper's reference [5]): for a, b > 0 the
// returned x satisfies |x| ≤ b/(2d) and |y| ≤ a/(2d), so no intermediate
// value overflows when a and b fit in int64.
func ExtGCD(a, b int64) (d, x, y int64) {
	// Iterative form of the textbook recursion, tracking coefficient pairs.
	oldR, r := a, b
	oldX, xx := int64(1), int64(0)
	oldY, yy := int64(0), int64(1)
	for r != 0 {
		q := oldR / r
		oldR, r = r, oldR-q*r
		oldX, xx = xx, oldX-q*xx
		oldY, yy = yy, oldY-q*yy
	}
	d, x, y = oldR, oldX, oldY
	if d < 0 {
		d, x, y = -d, -x, -y
	}
	return d, x, y
}

// MulChecked returns a*b, or ErrOverflow if the product does not fit in an
// int64.
func MulChecked(a, b int64) (int64, error) {
	if a == 0 || b == 0 {
		return 0, nil
	}
	p := a * b
	if p/b != a || (a == minInt64 && b == -1) {
		return 0, fmt.Errorf("%w: %d * %d", ErrOverflow, a, b)
	}
	return p, nil
}

// AddChecked returns a+b, or ErrOverflow if the sum does not fit in an
// int64.
func AddChecked(a, b int64) (int64, error) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, fmt.Errorf("%w: %d + %d", ErrOverflow, a, b)
	}
	return s, nil
}

// MulMod returns (a*b) mod n using FloorMod semantics (result in [0, n) for
// n > 0). It requires n > 0 and reduces its operands first; it is safe from
// overflow whenever n ≤ 3 037 000 499 (√maxInt64). For larger moduli use
// MulModBig.
func MulMod(a, b, n int64) int64 {
	if n <= 0 {
		panic("intmath: MulMod with nonpositive modulus")
	}
	a = FloorMod(a, n)
	b = FloorMod(b, n)
	return FloorMod(a*b, n)
}

// MulModAuto returns (a*b) mod n (FloorMod semantics, n > 0), choosing
// the overflow-safe doubling implementation only when n² does not fit in
// an int64. This is the right default for address-generation hot paths,
// where n = pk/d is almost always small.
func MulModAuto(a, b, n int64) int64 {
	if n < 3037000499 { // floor(sqrt(maxInt64))
		return FloorMod(FloorMod(a, n)*FloorMod(b, n), n)
	}
	return MulModBig(a, b, n)
}

// MulModBig returns (a*b) mod n without intermediate overflow for any
// n > 0, using Russian-peasant doubling. It is slower than MulMod but safe
// for the full int64 range.
func MulModBig(a, b, n int64) int64 {
	if n <= 0 {
		panic("intmath: MulModBig with nonpositive modulus")
	}
	a = FloorMod(a, n)
	b = FloorMod(b, n)
	var acc int64
	for b > 0 {
		if b&1 == 1 {
			acc += a - n
			if acc < 0 {
				acc += n
			}
		}
		a += a - n
		if a < 0 {
			a += n
		}
		b >>= 1
	}
	return acc
}

// Diophantine describes the solution set of a linear Diophantine equation
// a·x + b·y = c: X0, Y0 is one particular solution and the full set is
// { (X0 + t·StepX, Y0 - t·StepY) : t ∈ Z }.
type Diophantine struct {
	X0, Y0       int64
	StepX, StepY int64
}

// SolveDiophantine solves a·x + b·y = c over the integers. It reports
// ok = false when no solution exists (c not divisible by GCD(a, b)) and
// errors when a == b == 0 with c != 0 or when scaling the Bézout solution
// overflows.
func SolveDiophantine(a, b, c int64) (sol Diophantine, ok bool, err error) {
	if a == 0 && b == 0 {
		if c == 0 {
			return Diophantine{}, true, nil
		}
		return Diophantine{}, false, nil
	}
	d, x, y := ExtGCD(a, b)
	if FloorMod(c, d) != 0 {
		return Diophantine{}, false, nil
	}
	scale := c / d
	x0, err := MulChecked(x, scale)
	if err != nil {
		return Diophantine{}, false, err
	}
	y0, err := MulChecked(y, scale)
	if err != nil {
		return Diophantine{}, false, err
	}
	return Diophantine{X0: x0, Y0: y0, StepX: b / d, StepY: a / d}, true, nil
}

// SolveCongruence finds the smallest nonnegative x with a·x ≡ c (mod n).
// It reports ok = false when the congruence has no solution, i.e. when
// GCD(a, n) does not divide c. It requires n > 0.
//
// This is the primitive behind the paper's "find the smallest positive j
// such that s·j ≡ i (mod pk)" step (Section 2).
func SolveCongruence(a, c, n int64) (x int64, ok bool) {
	if n <= 0 {
		panic("intmath: SolveCongruence with nonpositive modulus")
	}
	d, inv, _ := ExtGCD(a, n)
	if FloorMod(c, d) != 0 {
		return 0, false
	}
	nd := n / d
	// x ≡ (c/d)·inv (mod n/d); inv may be negative, c/d may be huge:
	// reduce both before multiplying.
	return MulModAuto(FloorMod(c, n)/d, inv, nd), true
}

// ModInverse returns the multiplicative inverse of a modulo n (n > 1),
// i.e. the x in [0, n) with a·x ≡ 1 (mod n). It reports ok = false when a
// and n are not coprime.
func ModInverse(a, n int64) (x int64, ok bool) {
	if n <= 1 {
		panic("intmath: ModInverse with modulus <= 1")
	}
	d, inv, _ := ExtGCD(a, n)
	if d != 1 {
		return 0, false
	}
	return FloorMod(inv, n), true
}

// CRT solves the simultaneous congruences x ≡ a (mod m), x ≡ b (mod n)
// for m, n > 0. When compatible it returns the smallest nonnegative
// solution and the combined modulus lcm(m, n); ok is false when the
// congruences conflict (a ≢ b mod gcd(m, n)) and err is non-nil when the
// combined modulus overflows. This is the arithmetic behind intersecting
// two arithmetic progressions — the closed-form step in communication-set
// generation.
func CRT(a, m, b, n int64) (x, mod int64, ok bool, err error) {
	if m <= 0 || n <= 0 {
		panic("intmath: CRT with nonpositive modulus")
	}
	d, p, _ := ExtGCD(m, n)
	if FloorMod(b-a, d) != 0 {
		return 0, 0, false, nil
	}
	mod, err = LCM(m, n)
	if err != nil {
		return 0, 0, false, err
	}
	// x = a + m·t with t ≡ (b-a)/d · p (mod n/d).
	nd := n / d
	t := MulModAuto(FloorMod(b-a, n)/d, p, nd)
	// a + m·t may overflow for extreme inputs; check.
	mt, err := MulChecked(m, t)
	if err != nil {
		return 0, 0, false, err
	}
	sum, err := AddChecked(FloorMod(a, mod), mt)
	if err != nil {
		return 0, 0, false, err
	}
	return FloorMod(sum, mod), mod, true, nil
}
