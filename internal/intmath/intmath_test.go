package intmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{7, 2, 3},
		{-7, 2, -4},
		{7, -2, -4},
		{-7, -2, 3},
		{6, 3, 2},
		{-6, 3, -2},
		{0, 5, 0},
		{1, 5, 0},
		{-1, 5, -1},
		{-5, 5, -1},
		{-6, 5, -2},
		{4, 32, 0},
		{-4, 32, -1},
	}
	for _, c := range cases {
		if got := FloorDiv(c.a, c.b); got != c.want {
			t.Errorf("FloorDiv(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestFloorMod(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{7, 2, 1},
		{-7, 2, 1},
		{7, -2, -1},
		{-7, -2, -1},
		{-7, 32, 25},
		{0, 5, 0},
		{-5, 5, 0},
		{108, 32, 12},
	}
	for _, c := range cases {
		if got := FloorMod(c.a, c.b); got != c.want {
			t.Errorf("FloorMod(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: a == FloorDiv(a,b)*b + FloorMod(a,b) and 0 <= FloorMod(a,b) < b
// for b > 0.
func TestFloorDivModProperty(t *testing.T) {
	f := func(a int64, b int64) bool {
		if b == 0 {
			return true
		}
		q, r := FloorDiv(a, b), FloorMod(a, b)
		if q*b+r != a {
			return false
		}
		if b > 0 {
			return r >= 0 && r < b
		}
		return r <= 0 && r > b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{7, 2, 4},
		{-7, 2, -3},
		{6, 3, 2},
		{0, 4, 0},
		{1, 4, 1},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{9, 32, 1},
		{12, 18, 6},
		{0, 5, 5},
		{5, 0, 5},
		{0, 0, 0},
		{-12, 18, 6},
		{12, -18, 6},
		{-12, -18, 6},
		{1, 1, 1},
		{128, 96, 32},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLCM(t *testing.T) {
	got, err := LCM(4, 6)
	if err != nil || got != 12 {
		t.Errorf("LCM(4,6) = %d, %v; want 12, nil", got, err)
	}
	got, err = LCM(0, 7)
	if err != nil || got != 0 {
		t.Errorf("LCM(0,7) = %d, %v; want 0, nil", got, err)
	}
	if _, err = LCM(math.MaxInt64-1, math.MaxInt64); err == nil {
		t.Error("LCM of two huge coprime numbers should overflow")
	}
}

func TestExtGCDBezout(t *testing.T) {
	pairs := [][2]int64{
		{9, 32}, {32, 9}, {7, 224}, {99, 224}, {12, 18}, {1, 1},
		{270, 192}, {0, 7}, {7, 0}, {-9, 32}, {9, -32}, {-9, -32},
		{1_000_003, 998_244_353},
	}
	for _, pr := range pairs {
		a, b := pr[0], pr[1]
		d, x, y := ExtGCD(a, b)
		if d != GCD(a, b) {
			t.Errorf("ExtGCD(%d,%d) d=%d, want %d", a, b, d, GCD(a, b))
		}
		if a*x+b*y != d {
			t.Errorf("ExtGCD(%d,%d): %d*%d + %d*%d = %d, want %d",
				a, b, a, x, b, y, a*x+b*y, d)
		}
	}
}

func TestExtGCDProperty(t *testing.T) {
	f := func(a, b int32) bool {
		A, B := int64(a), int64(b)
		d, x, y := ExtGCD(A, B)
		return d == GCD(A, B) && A*x+B*y == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestExtGCDPaperExample(t *testing.T) {
	// Paper Section 5: egcd(9, 32) must give d = 1 with s·x ≡ 1 (mod pk).
	d, x, _ := ExtGCD(9, 32)
	if d != 1 {
		t.Fatalf("d = %d, want 1", d)
	}
	if FloorMod(9*x, 32) != 1 {
		t.Errorf("9*%d mod 32 = %d, want 1", x, FloorMod(9*x, 32))
	}
}

func TestMulAddChecked(t *testing.T) {
	if v, err := MulChecked(1<<32, 1<<32); err == nil {
		t.Errorf("MulChecked(2^32, 2^32) = %d, want overflow", v)
	}
	if v, err := MulChecked(123, 456); err != nil || v != 56088 {
		t.Errorf("MulChecked(123,456) = %d, %v", v, err)
	}
	if v, err := MulChecked(-123, 456); err != nil || v != -56088 {
		t.Errorf("MulChecked(-123,456) = %d, %v", v, err)
	}
	if _, err := MulChecked(math.MinInt64, -1); err == nil {
		t.Error("MulChecked(MinInt64, -1) should overflow")
	}
	if v, err := AddChecked(math.MaxInt64, 1); err == nil {
		t.Errorf("AddChecked(MaxInt64, 1) = %d, want overflow", v)
	}
	if v, err := AddChecked(math.MinInt64, -1); err == nil {
		t.Errorf("AddChecked(MinInt64, -1) = %d, want overflow", v)
	}
	if v, err := AddChecked(40, 2); err != nil || v != 42 {
		t.Errorf("AddChecked(40,2) = %d, %v", v, err)
	}
}

func TestMulMod(t *testing.T) {
	if got := MulMod(25, 7, 32); got != FloorMod(25*7, 32) {
		t.Errorf("MulMod(25,7,32) = %d", got)
	}
	if got := MulMod(-3, 5, 7); got != FloorMod(-15, 7) {
		t.Errorf("MulMod(-3,5,7) = %d, want %d", got, FloorMod(-15, 7))
	}
}

func TestMulModBigAgainstSmall(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		a := r.Int63n(1<<30) - (1 << 29)
		b := r.Int63n(1<<30) - (1 << 29)
		n := r.Int63n(1<<30) + 1
		if got, want := MulModBig(a, b, n), MulMod(a, b, n); got != want {
			t.Fatalf("MulModBig(%d,%d,%d) = %d, want %d", a, b, n, got, want)
		}
	}
}

func TestMulModBigHuge(t *testing.T) {
	// (2^62)·(2^62) mod (2^62+1): 2^62 ≡ -1, so product ≡ 1.
	n := int64(1)<<62 + 1
	a := int64(1) << 62
	if got := MulModBig(a, a, n); got != 1 {
		t.Errorf("MulModBig(2^62, 2^62, 2^62+1) = %d, want 1", got)
	}
}

func TestSolveDiophantine(t *testing.T) {
	// 9x + 32y = 5 has solutions since gcd = 1.
	sol, ok, err := SolveDiophantine(9, 32, 5)
	if err != nil || !ok {
		t.Fatalf("SolveDiophantine(9,32,5): ok=%v err=%v", ok, err)
	}
	if 9*sol.X0+32*sol.Y0 != 5 {
		t.Errorf("particular solution wrong: %+v", sol)
	}
	// Check a few points of the family.
	for _, tt := range []int64{-3, -1, 0, 1, 5} {
		x := sol.X0 + tt*sol.StepX
		y := sol.Y0 - tt*sol.StepY
		if 9*x+32*y != 5 {
			t.Errorf("family member t=%d fails: x=%d y=%d", tt, x, y)
		}
	}
	// 4x + 6y = 3 has no solution (gcd 2 does not divide 3).
	_, ok, err = SolveDiophantine(4, 6, 3)
	if err != nil || ok {
		t.Errorf("SolveDiophantine(4,6,3): ok=%v err=%v, want no solution", ok, err)
	}
	// Degenerate: 0x + 0y = 0 is trivially solvable; = 1 is not.
	if _, ok, _ = SolveDiophantine(0, 0, 0); !ok {
		t.Error("0x+0y=0 should be solvable")
	}
	if _, ok, _ = SolveDiophantine(0, 0, 1); ok {
		t.Error("0x+0y=1 should not be solvable")
	}
}

func TestSolveCongruence(t *testing.T) {
	// The paper's start-location computation: smallest j >= 0 with
	// 9j ≡ i (mod 32) for i = 4..11 (p=4, k=8, l=4, m=1).
	wantJ := map[int64]int64{4: 4, 5: 29, 6: 22, 7: 15, 8: 8, 9: 1, 10: 26, 11: 19}
	for i, want := range wantJ {
		got, ok := SolveCongruence(9, i, 32)
		if !ok || got != want {
			t.Errorf("SolveCongruence(9, %d, 32) = %d, %v; want %d", i, got, ok, want)
		}
	}
	// Unsolvable: 4x ≡ 3 (mod 6).
	if _, ok := SolveCongruence(4, 3, 6); ok {
		t.Error("4x ≡ 3 (mod 6) should be unsolvable")
	}
	// Solvable with d > 1: 4x ≡ 2 (mod 6) → x = 2 (smallest in mod 3 class... x∈{2,5}; smallest nonneg of class is 2).
	got, ok := SolveCongruence(4, 2, 6)
	if !ok || FloorMod(4*got, 6) != 2 || got < 0 || got >= 3 {
		t.Errorf("SolveCongruence(4,2,6) = %d, %v", got, ok)
	}
	// Negative c must be handled (offsets km - l can be negative).
	got, ok = SolveCongruence(9, -3, 32)
	if !ok || FloorMod(9*got, 32) != FloorMod(-3, 32) {
		t.Errorf("SolveCongruence(9,-3,32) = %d, %v", got, ok)
	}
}

func TestSolveCongruenceIsSmallest(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		a := r.Int63n(200) + 1
		n := r.Int63n(200) + 1
		c := r.Int63n(400) - 200
		got, ok := SolveCongruence(a, c, n)
		// Brute force smallest nonnegative solution.
		want, found := int64(-1), false
		for x := int64(0); x < n; x++ {
			if FloorMod(a*x, n) == FloorMod(c, n) {
				want, found = x, true
				break
			}
		}
		if ok != found {
			t.Fatalf("a=%d c=%d n=%d: ok=%v, brute found=%v", a, c, n, ok, found)
		}
		if ok && got != want {
			t.Fatalf("a=%d c=%d n=%d: got %d, brute %d", a, c, n, got, want)
		}
	}
}

func TestModInverse(t *testing.T) {
	inv, ok := ModInverse(9, 32)
	if !ok || FloorMod(9*inv, 32) != 1 {
		t.Errorf("ModInverse(9,32) = %d, %v", inv, ok)
	}
	if _, ok := ModInverse(4, 6); ok {
		t.Error("ModInverse(4,6) should not exist")
	}
}

func TestAbs(t *testing.T) {
	if Abs(-5) != 5 || Abs(5) != 5 || Abs(0) != 0 {
		t.Error("Abs basic cases failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("Abs(MinInt64) should panic")
		}
	}()
	Abs(math.MinInt64)
}

func BenchmarkExtGCD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ExtGCD(998244353, 1_000_000_007)
	}
}

func BenchmarkSolveCongruence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		SolveCongruence(99, 1234, 32*512)
	}
}

func TestCRT(t *testing.T) {
	// x ≡ 2 (mod 3), x ≡ 3 (mod 5) -> x = 8 (mod 15).
	x, mod, ok, err := CRT(2, 3, 3, 5)
	if err != nil || !ok || x != 8 || mod != 15 {
		t.Errorf("CRT(2,3,3,5) = %d mod %d ok=%v err=%v", x, mod, ok, err)
	}
	// Conflicting: x ≡ 0 (mod 4), x ≡ 1 (mod 2).
	if _, _, ok, _ := CRT(0, 4, 1, 2); ok {
		t.Error("conflicting congruences should fail")
	}
	// Compatible with shared factor: x ≡ 2 (mod 4), x ≡ 6 (mod 8) -> 6 mod 8.
	x, mod, ok, _ = CRT(2, 4, 6, 8)
	if !ok || x != 6 || mod != 8 {
		t.Errorf("CRT(2,4,6,8) = %d mod %d, ok=%v", x, mod, ok)
	}
	// Negative residues are normalized.
	x, mod, ok, _ = CRT(-1, 3, 4, 5)
	if !ok || FloorMod(x, 3) != 2 || FloorMod(x, 5) != 4 || x < 0 || x >= mod {
		t.Errorf("CRT(-1,3,4,5) = %d mod %d", x, mod)
	}
}

func TestCRTAgainstBrute(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	for trial := 0; trial < 2000; trial++ {
		m := r.Int63n(30) + 1
		n := r.Int63n(30) + 1
		a := r.Int63n(60) - 30
		b := r.Int63n(60) - 30
		x, mod, ok, err := CRT(a, m, b, n)
		if err != nil {
			t.Fatal(err)
		}
		want, found := int64(-1), false
		lcm, _ := LCM(m, n)
		for c := int64(0); c < lcm; c++ {
			if FloorMod(c-a, m) == 0 && FloorMod(c-b, n) == 0 {
				want, found = c, true
				break
			}
		}
		if ok != found {
			t.Fatalf("a=%d m=%d b=%d n=%d: ok=%v brute=%v", a, m, b, n, ok, found)
		}
		if ok && (x != want || mod != lcm) {
			t.Fatalf("a=%d m=%d b=%d n=%d: got %d mod %d, brute %d mod %d",
				a, m, b, n, x, mod, want, lcm)
		}
	}
}
