package section_test

import (
	"fmt"

	"repro/internal/section"
)

func ExampleSection() {
	s := section.MustNew(4, 40, 9)
	fmt.Println("elements:", s.Slice())
	fmt.Println("count:", s.Count())
	fmt.Println("contains 22:", s.Contains(22))
	// Output:
	// elements: [4 13 22 31 40]
	// count: 5
	// contains 22: true
}

// Intersections of regular sections are regular sections, computed in
// closed form — the primitive behind structured communication sets.
func ExampleIntersect() {
	a := section.MustNew(1, 100, 6) // 1, 7, 13, ...
	b := section.MustNew(3, 100, 4) // 3, 7, 11, ...
	common, ok := section.Intersect(a, b)
	fmt.Println(ok, common)
	// Output:
	// true 7:91:12
}

// Descending sections normalize to ascending element sets.
func ExampleSection_Ascending() {
	d := section.MustNew(40, 4, -9)
	asc, reversed := d.Ascending()
	fmt.Println(asc, reversed)
	// Output:
	// 4:40:9 true
}
