package section

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewRejectsZeroStride(t *testing.T) {
	if _, err := New(0, 10, 0); err == nil {
		t.Error("zero stride should be rejected")
	}
	if _, err := New(0, 10, 2); err != nil {
		t.Errorf("valid section rejected: %v", err)
	}
}

func TestCount(t *testing.T) {
	cases := []struct {
		s    Section
		want int64
	}{
		{MustNew(0, 10, 1), 11},
		{MustNew(0, 10, 3), 4},  // 0 3 6 9
		{MustNew(0, 9, 3), 4},   // 0 3 6 9
		{MustNew(0, 8, 3), 3},   // 0 3 6
		{MustNew(5, 4, 1), 0},   // empty ascending
		{MustNew(10, 0, -3), 4}, // 10 7 4 1
		{MustNew(0, 10, -1), 0}, // empty descending
		{MustNew(7, 7, 5), 1},
		{MustNew(7, 7, -5), 1},
		{MustNew(0, 319, 9), 36}, // paper Figure 1 section l=0 s=9 over 320 cells
	}
	for _, c := range cases {
		if got := c.s.Count(); got != c.want {
			t.Errorf("%v.Count() = %d, want %d", c.s, got, c.want)
		}
		if c.s.Empty() != (c.want == 0) {
			t.Errorf("%v.Empty() inconsistent with Count", c.s)
		}
	}
}

func TestElementLastSlice(t *testing.T) {
	s := MustNew(4, 40, 9)
	want := []int64{4, 13, 22, 31, 40}
	if got := s.Slice(); !reflect.DeepEqual(got, want) {
		t.Errorf("Slice() = %v, want %v", got, want)
	}
	if s.Last() != 40 {
		t.Errorf("Last() = %d", s.Last())
	}
	d := MustNew(40, 4, -9)
	wantD := []int64{40, 31, 22, 13, 4}
	if got := d.Slice(); !reflect.DeepEqual(got, wantD) {
		t.Errorf("descending Slice() = %v, want %v", got, wantD)
	}
}

func TestContainsIndexOf(t *testing.T) {
	s := MustNew(4, 40, 9)
	for j, e := range map[int64]int64{0: 4, 1: 13, 4: 40} {
		if !s.Contains(e) {
			t.Errorf("Contains(%d) = false", e)
		}
		if got := s.IndexOf(e); got != j {
			t.Errorf("IndexOf(%d) = %d, want %d", e, got, j)
		}
	}
	for _, e := range []int64{5, 3, 41, 49, -5, 0} {
		if s.Contains(e) {
			t.Errorf("Contains(%d) = true", e)
		}
		if s.IndexOf(e) != -1 {
			t.Errorf("IndexOf(%d) != -1", e)
		}
	}
	d := MustNew(40, 4, -9)
	if !d.Contains(13) || d.IndexOf(13) != 3 {
		t.Errorf("descending Contains/IndexOf failed: %d", d.IndexOf(13))
	}
}

func TestAscending(t *testing.T) {
	d := MustNew(40, 4, -9)
	a, rev := d.Ascending()
	if !rev {
		t.Error("descending section should report reversed")
	}
	if !reflect.DeepEqual(a.Slice(), []int64{4, 13, 22, 31, 40}) {
		t.Errorf("Ascending elements = %v", a.Slice())
	}
	s := MustNew(4, 40, 9)
	a2, rev2 := s.Ascending()
	if rev2 || a2 != s {
		t.Error("ascending section should be unchanged")
	}
	e := MustNew(0, 10, -1)
	ae, _ := e.Ascending()
	if !ae.Empty() {
		t.Error("empty descending should stay empty")
	}
}

func TestAll(t *testing.T) {
	s := MustNew(4, 40, 9)
	var got []int64
	for j, e := range s.All() {
		if s.Element(j) != e {
			t.Fatalf("iterator mismatch at %d", j)
		}
		got = append(got, e)
	}
	if !reflect.DeepEqual(got, s.Slice()) {
		t.Errorf("All() = %v", got)
	}
}

func TestClampTo(t *testing.T) {
	s := MustNew(4, 400, 9)
	c := s.ClampTo(20, 50)
	if !reflect.DeepEqual(c.Slice(), []int64{22, 31, 40, 49}) {
		t.Errorf("ClampTo = %v", c.Slice())
	}
	// Clamp to range with no elements.
	c2 := s.ClampTo(5, 12)
	if !c2.Empty() {
		t.Errorf("ClampTo(5,12) = %v, want empty", c2.Slice())
	}
	// Descending clamp preserves direction.
	d := MustNew(400, 4, -9)
	cd := d.ClampTo(20, 50)
	if !reflect.DeepEqual(cd.Slice(), []int64{49, 40, 31, 22}) {
		t.Errorf("descending ClampTo = %v", cd.Slice())
	}
	// Clamp wider than the section is a no-op on the element set.
	c3 := s.ClampTo(-100, 1000)
	if !reflect.DeepEqual(c3.Slice(), s.Slice()) {
		t.Errorf("wide ClampTo changed elements: %v", c3.Slice())
	}
}

func TestIntersectBasic(t *testing.T) {
	a := MustNew(0, 100, 6)
	b := MustNew(0, 100, 4)
	got, ok := Intersect(a, b)
	if !ok {
		t.Fatal("intersection should be non-empty")
	}
	want := []int64{0, 12, 24, 36, 48, 60, 72, 84, 96}
	if !reflect.DeepEqual(got.Slice(), want) {
		t.Errorf("Intersect = %v, want %v", got.Slice(), want)
	}
}

func TestIntersectPhase(t *testing.T) {
	a := MustNew(1, 100, 6) // 1, 7, 13, ...
	b := MustNew(3, 100, 4) // 3, 7, 11, ...
	got, ok := Intersect(a, b)
	if !ok {
		t.Fatal("should intersect")
	}
	// common elements ≡ 7 (mod 12)
	want := []int64{7, 19, 31, 43, 55, 67, 79, 91}
	if !reflect.DeepEqual(got.Slice(), want) {
		t.Errorf("Intersect = %v, want %v", got.Slice(), want)
	}
}

func TestIntersectEmpty(t *testing.T) {
	a := MustNew(0, 100, 2) // evens
	b := MustNew(1, 99, 2)  // odds
	if _, ok := Intersect(a, b); ok {
		t.Error("evens ∩ odds should be empty")
	}
	// Disjoint ranges.
	c := MustNew(0, 10, 1)
	d := MustNew(20, 30, 1)
	if _, ok := Intersect(c, d); ok {
		t.Error("disjoint ranges should not intersect")
	}
	// Empty input.
	e := MustNew(5, 4, 1)
	if _, ok := Intersect(c, e); ok {
		t.Error("intersection with empty should be empty")
	}
}

func TestIntersectDirectionFollowsA(t *testing.T) {
	// a's elements are 100, 94, …, 4 (≡ 4 mod 6); b's are ≡ 0 mod 4.
	// Common: ≡ 4 mod 12, traversed descending like a.
	a := MustNew(100, 0, -6)
	b := MustNew(0, 100, 4)
	got, ok := Intersect(a, b)
	if !ok {
		t.Fatal("should intersect")
	}
	want := []int64{100, 88, 76, 64, 52, 40, 28, 16, 4}
	if !reflect.DeepEqual(got.Slice(), want) {
		t.Errorf("Intersect = %v, want %v", got.Slice(), want)
	}
}

func TestIntersectAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		a := MustNew(r.Int63n(40)-20, r.Int63n(200)-20, r.Int63n(12)+1)
		b := MustNew(r.Int63n(40)-20, r.Int63n(200)-20, r.Int63n(12)+1)
		want := map[int64]bool{}
		for _, x := range a.Slice() {
			if b.Contains(x) {
				want[x] = true
			}
		}
		got, ok := Intersect(a, b)
		if ok != (len(want) > 0) {
			t.Fatalf("a=%v b=%v: ok=%v, brute size %d", a, b, ok, len(want))
		}
		if !ok {
			continue
		}
		gotSet := map[int64]bool{}
		for _, x := range got.Slice() {
			gotSet[x] = true
		}
		if !reflect.DeepEqual(gotSet, want) {
			t.Fatalf("a=%v b=%v: got %v, want %v", a, b, got.Slice(), want)
		}
	}
}

func TestShiftScale(t *testing.T) {
	s := MustNew(1, 10, 3) // 1 4 7 10
	sh := s.Shift(5)
	if !reflect.DeepEqual(sh.Slice(), []int64{6, 9, 12, 15}) {
		t.Errorf("Shift = %v", sh.Slice())
	}
	sc := s.Scale(2)
	if !reflect.DeepEqual(sc.Slice(), []int64{2, 8, 14, 20}) {
		t.Errorf("Scale = %v", sc.Slice())
	}
	neg := s.Scale(-1)
	if !reflect.DeepEqual(neg.Slice(), []int64{-1, -4, -7, -10}) {
		t.Errorf("Scale(-1) = %v", neg.Slice())
	}
	if neg.Count() != s.Count() {
		t.Error("Scale must preserve count")
	}
}

func TestCountProperty(t *testing.T) {
	f := func(lo int16, span uint8, stride int8) bool {
		if stride == 0 {
			return true
		}
		s := Section{Lo: int64(lo), Hi: int64(lo) + int64(span) - 10, Stride: int64(stride)}
		var brute int64
		if s.Stride > 0 {
			for i := s.Lo; i <= s.Hi; i += s.Stride {
				brute++
			}
		} else {
			for i := s.Lo; i >= s.Hi; i += s.Stride {
				brute++
			}
		}
		return s.Count() == brute
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestRect(t *testing.T) {
	r, err := NewRect(MustNew(0, 2, 1), MustNew(0, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if r.Rank() != 2 || r.Count() != 9 {
		t.Fatalf("rank=%d count=%d", r.Rank(), r.Count())
	}
	if !r.Contains([]int64{1, 2}) || r.Contains([]int64{1, 3}) {
		t.Error("Contains wrong")
	}
	if r.Contains([]int64{1}) {
		t.Error("rank mismatch should be false")
	}
	var rowMajor [][2]int64
	for idx := range r.All() {
		rowMajor = append(rowMajor, [2]int64{idx[0], idx[1]})
	}
	wantRM := [][2]int64{{0, 0}, {0, 2}, {0, 4}, {1, 0}, {1, 2}, {1, 4}, {2, 0}, {2, 2}, {2, 4}}
	if !reflect.DeepEqual(rowMajor, wantRM) {
		t.Errorf("row-major order = %v", rowMajor)
	}
	var colMajor [][2]int64
	for idx := range r.AllColMajor() {
		colMajor = append(colMajor, [2]int64{idx[0], idx[1]})
	}
	wantCM := [][2]int64{{0, 0}, {1, 0}, {2, 0}, {0, 2}, {1, 2}, {2, 2}, {0, 4}, {1, 4}, {2, 4}}
	if !reflect.DeepEqual(colMajor, wantCM) {
		t.Errorf("col-major order = %v", colMajor)
	}
}

func TestRectEmpty(t *testing.T) {
	r, _ := NewRect(MustNew(0, 2, 1), MustNew(5, 4, 1))
	if !r.Empty() || r.Count() != 0 {
		t.Error("rect with empty dim should be empty")
	}
	for range r.All() {
		t.Fatal("iteration over empty rect")
	}
	if _, err := NewRect(Section{0, 1, 0}); err == nil {
		t.Error("NewRect must reject zero stride")
	}
}

func TestRectString(t *testing.T) {
	r, _ := NewRect(MustNew(0, 9, 1), MustNew(2, 20, 3))
	if got := r.String(); got != "(0:9:1, 2:20:3)" {
		t.Errorf("String() = %q", got)
	}
}
