// Package section models Fortran-90 regular sections (subscript triplets)
// l:u:s — the arithmetic index sequences that data-parallel loops traverse
// (paper, Section 2).
//
// A Section is the ordered index sequence l, l+s, l+2s, … bounded by u
// (inclusive, in the Fortran style). Strides may be negative, in which case
// the sequence descends; a section whose bounds and stride disagree is
// empty. Zero strides are invalid.
package section

import (
	"fmt"
	"iter"

	"repro/internal/intmath"
)

// Section is a regular section l:u:s with inclusive bounds. Construct with
// New to validate the stride.
type Section struct {
	Lo, Hi, Stride int64
}

// New returns the section lo:hi:stride. It rejects stride == 0.
func New(lo, hi, stride int64) (Section, error) {
	if stride == 0 {
		return Section{}, fmt.Errorf("section: zero stride in %d:%d:0", lo, hi)
	}
	return Section{Lo: lo, Hi: hi, Stride: stride}, nil
}

// MustNew is New but panics on invalid arguments.
func MustNew(lo, hi, stride int64) Section {
	s, err := New(lo, hi, stride)
	if err != nil {
		panic(err)
	}
	return s
}

// String renders the section in triplet notation.
func (s Section) String() string {
	return fmt.Sprintf("%d:%d:%d", s.Lo, s.Hi, s.Stride)
}

// Count returns the number of elements in the section: max(0,
// floor((hi-lo)/stride) + 1).
func (s Section) Count() int64 {
	d := s.Hi - s.Lo
	if (s.Stride > 0 && d < 0) || (s.Stride < 0 && d > 0) {
		return 0
	}
	return intmath.FloorDiv(d, s.Stride) + 1
}

// Empty reports whether the section contains no elements.
func (s Section) Empty() bool { return s.Count() == 0 }

// Element returns the j-th element of the section, lo + j·stride. It does
// not check bounds; callers index with 0 ≤ j < Count().
func (s Section) Element(j int64) int64 {
	return s.Lo + j*s.Stride
}

// Last returns the final element of a non-empty section.
func (s Section) Last() int64 {
	return s.Element(s.Count() - 1)
}

// Contains reports whether global index i is an element of the section.
func (s Section) Contains(i int64) bool {
	d := i - s.Lo
	if intmath.FloorMod(d, s.Stride) != 0 {
		return false
	}
	j := intmath.FloorDiv(d, s.Stride)
	return j >= 0 && j < s.Count()
}

// IndexOf returns the position j with Element(j) == i, or -1 when i is not
// an element of the section.
func (s Section) IndexOf(i int64) int64 {
	if !s.Contains(i) {
		return -1
	}
	return intmath.FloorDiv(i-s.Lo, s.Stride)
}

// Ascending returns an equivalent element set with positive stride: for a
// descending section it reverses the traversal order. The paper treats
// negative strides "analogously" (Section 2); Ascending is that reduction.
// Reversed reports whether the order was flipped.
func (s Section) Ascending() (asc Section, reversed bool) {
	if s.Stride > 0 {
		return s, false
	}
	n := s.Count()
	if n == 0 {
		return Section{Lo: s.Lo, Hi: s.Lo - 1, Stride: -s.Stride}, true
	}
	return Section{Lo: s.Last(), Hi: s.Lo, Stride: -s.Stride}, true
}

// All iterates the elements of the section in traversal order.
func (s Section) All() iter.Seq2[int64, int64] {
	return func(yield func(j, elem int64) bool) {
		n := s.Count()
		for j := int64(0); j < n; j++ {
			if !yield(j, s.Element(j)) {
				return
			}
		}
	}
}

// Slice materializes the section's elements. Intended for tests and small
// sections.
func (s Section) Slice() []int64 {
	n := s.Count()
	out := make([]int64, 0, n)
	for j := int64(0); j < n; j++ {
		out = append(out, s.Element(j))
	}
	return out
}

// ClampTo restricts the section to elements within [lo, hi] (inclusive),
// preserving stride and phase. The result is empty if no elements fall in
// the range.
func (s Section) ClampTo(lo, hi int64) Section {
	asc, rev := s.Ascending()
	if asc.Empty() {
		return s
	}
	newLo := asc.Lo
	if newLo < lo {
		// advance to the first element >= lo
		steps := intmath.CeilDiv(lo-asc.Lo, asc.Stride)
		newLo = asc.Lo + steps*asc.Stride
	}
	newHi := asc.Hi
	if newHi > hi {
		newHi = hi
	}
	out := Section{Lo: newLo, Hi: newHi, Stride: asc.Stride}
	if out.Empty() {
		return Section{Lo: 0, Hi: -1, Stride: s.Stride}
	}
	if rev {
		// flip back to descending order
		return Section{Lo: out.Last(), Hi: out.Lo, Stride: -out.Stride}
	}
	// tighten Hi to the true last element so String() is canonical
	out.Hi = out.Last()
	return out
}

// Intersect returns the section whose element set is the intersection of a
// and b, traversed in a's direction. ok is false when the intersection is
// empty. Both sections' element sets are arithmetic progressions, so the
// intersection is one too (possibly a single element).
func Intersect(a, b Section) (Section, bool) {
	aa, arev := a.Ascending()
	bb, _ := b.Ascending()
	if aa.Empty() || bb.Empty() {
		return Section{}, false
	}
	// Solve aa.Lo + x*aa.Stride == bb.Lo + y*bb.Stride.
	sol, ok, err := intmath.SolveDiophantine(aa.Stride, -bb.Stride, bb.Lo-aa.Lo)
	if err != nil || !ok {
		return Section{}, false
	}
	step, lcmErr := intmath.LCM(aa.Stride, bb.Stride)
	if lcmErr != nil {
		return Section{}, false
	}
	// One common element: aa.Lo + x0*aa.Stride; all others differ by step.
	common := aa.Lo + sol.X0*aa.Stride
	// Find the smallest common element >= max(aa.Lo, bb.Lo).
	lo := max(aa.Lo, bb.Lo)
	hi := min(aa.Hi, bb.Hi)
	if lo > hi {
		return Section{}, false
	}
	first := common + intmath.CeilDiv(lo-common, step)*step
	if first > hi {
		return Section{}, false
	}
	last := common + intmath.FloorDiv(hi-common, step)*step
	out := Section{Lo: first, Hi: last, Stride: step}
	if arev {
		out = Section{Lo: last, Hi: first, Stride: -step}
	}
	return out, true
}

// Shift translates every element by delta, preserving stride and order.
func (s Section) Shift(delta int64) Section {
	return Section{Lo: s.Lo + delta, Hi: s.Hi + delta, Stride: s.Stride}
}

// Scale maps every element i to a·i (a != 0), as an affine alignment does.
// For negative a the traversal direction flips sign with the stride.
func (s Section) Scale(a int64) Section {
	if a == 0 {
		panic("section: Scale by zero")
	}
	return Section{Lo: s.Lo * a, Hi: s.Hi * a, Stride: s.Stride * a}
}
