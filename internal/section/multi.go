package section

import (
	"fmt"
	"iter"
	"strings"
)

// Rect is a multidimensional regular section: the Cartesian product of one
// Section per dimension, as in A(1:n:2, 3:m:5). Array subscripts in
// different dimensions are independent (paper, Section 2), so most
// address-generation questions reduce to per-dimension ones.
type Rect []Section

// NewRect builds a Rect, validating every dimension.
func NewRect(dims ...Section) (Rect, error) {
	for d, s := range dims {
		if s.Stride == 0 {
			return nil, fmt.Errorf("section: zero stride in dimension %d", d)
		}
	}
	return Rect(append([]Section(nil), dims...)), nil
}

// Rank returns the number of dimensions.
func (r Rect) Rank() int { return len(r) }

// Count returns the total number of index vectors in the product.
func (r Rect) Count() int64 {
	n := int64(1)
	for _, s := range r {
		n *= s.Count()
	}
	return n
}

// Empty reports whether any dimension is empty.
func (r Rect) Empty() bool {
	for _, s := range r {
		if s.Empty() {
			return true
		}
	}
	return len(r) == 0
}

// Contains reports whether the index vector is in the product.
func (r Rect) Contains(index []int64) bool {
	if len(index) != len(r) {
		return false
	}
	for d, s := range r {
		if !s.Contains(index[d]) {
			return false
		}
	}
	return true
}

// String renders the Rect in Fortran-style subscript notation.
func (r Rect) String() string {
	parts := make([]string, len(r))
	for d, s := range r {
		parts[d] = s.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// All iterates the index vectors in row-major order (last dimension
// fastest), which matches C layout; Fortran column-major traversal is
// AllColMajor. The yielded slice is reused across iterations; callers that
// retain it must copy.
func (r Rect) All() iter.Seq[[]int64] {
	return func(yield func([]int64) bool) {
		if r.Empty() {
			return
		}
		counts := make([]int64, len(r))
		for d, s := range r {
			counts[d] = s.Count()
		}
		pos := make([]int64, len(r))
		idx := make([]int64, len(r))
		for {
			for d, s := range r {
				idx[d] = s.Element(pos[d])
			}
			if !yield(idx) {
				return
			}
			d := len(r) - 1
			for d >= 0 {
				pos[d]++
				if pos[d] < counts[d] {
					break
				}
				pos[d] = 0
				d--
			}
			if d < 0 {
				return
			}
		}
	}
}

// AllColMajor iterates the index vectors in column-major order (first
// dimension fastest), the Fortran storage order. The yielded slice is
// reused across iterations.
func (r Rect) AllColMajor() iter.Seq[[]int64] {
	return func(yield func([]int64) bool) {
		if r.Empty() {
			return
		}
		counts := make([]int64, len(r))
		for d, s := range r {
			counts[d] = s.Count()
		}
		pos := make([]int64, len(r))
		idx := make([]int64, len(r))
		for {
			for d, s := range r {
				idx[d] = s.Element(pos[d])
			}
			if !yield(idx) {
				return
			}
			d := 0
			for d < len(r) {
				pos[d]++
				if pos[d] < counts[d] {
					break
				}
				pos[d] = 0
				d++
			}
			if d == len(r) {
				return
			}
		}
	}
}
