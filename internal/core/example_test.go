package core_test

import (
	"fmt"

	"repro/internal/core"
)

// The paper's Section 5 walk-through: p=4, k=8, l=4, s=9, processor 1.
func ExampleLattice() {
	seq, err := core.Lattice(core.Problem{P: 4, K: 8, L: 4, S: 9, M: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("start:", seq.Start)
	fmt.Println("start local address:", seq.StartLocal)
	fmt.Println("AM:", seq.Gaps)
	// Output:
	// start: 13
	// start local address: 5
	// AM: [3 12 15 12 3 12 3 12]
}

// The R/L basis vectors behind the example (Section 4, Figure 4).
func ExampleVectors() {
	basis, ok, err := core.Vectors(4, 8, 9)
	if err != nil || !ok {
		panic(fmt.Sprint(ok, err))
	}
	fmt.Printf("R = (%d,%d), index %d, gap %d\n", basis.R.B, basis.R.A, basis.R.I, basis.GapR)
	fmt.Printf("L = (%d,%d), index %d, gap %d\n", basis.L.B, basis.L.A, basis.L.I, basis.GapL)
	// Output:
	// R = (4,1), index 4, gap 12
	// L = (5,-1), index -3, gap 3
}

// A Walker regenerates the same gaps with no table storage (Section 6.2).
func ExampleWalker() {
	w, ok, err := core.NewWalker(core.Problem{P: 4, K: 8, L: 4, S: 9, M: 1})
	if err != nil || !ok {
		panic(fmt.Sprint(ok, err))
	}
	fmt.Println(w.Addresses(6, nil))
	// Output:
	// [5 8 20 35 47 50]
}

// Bounded sections: the upper bound affects only where the walk stops.
func ExampleProblem_Count() {
	pr := core.Problem{P: 4, K: 8, L: 4, S: 9, M: 1}
	n, _ := pr.Count(319)
	last, _ := pr.Last(319)
	fmt.Printf("processor %d owns %d of A(4:319:9); last is element %d\n", pr.M, n, last)
	// Output:
	// processor 1 owns 9 of A(4:319:9); last is element 301
}

// TableSet shares the basis across processors (Section 6.1's compile-time
// scenario); with gcd(s, pk) = 1 the tables are cyclic shifts.
func ExampleTableSet() {
	ts, err := core.NewTableSet(4, 8, 4, 9)
	if err != nil {
		panic(err)
	}
	fmt.Println("single cycle:", ts.SingleCycle())
	for m := int64(0); m < 2; m++ {
		seq, _ := ts.Sequence(m)
		fmt.Printf("proc %d: %v\n", m, seq.Gaps)
	}
	// Output:
	// single cycle: true
	// proc 0: [15 12 3 12 3 12 3 12]
	// proc 1: [3 12 15 12 3 12 3 12]
}
