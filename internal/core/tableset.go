package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/intmath"
)

// TableSet amortizes AM-table construction across all processors of one
// (p, k, l, s) configuration — the compile-time scenario of Section 6.1:
// "If input parameters p, k, l, and s for our algorithm are compile-time
// constants, then the compiler could compute the table of memory gaps for
// each processor. In that case the code that computes the basis vectors R
// and L would have to be executed only once."
//
// The key structural fact is that the Figure 5 gap decision depends on
// the element's offset only RELATIVE to its block: Equation 1 tests
// (offset − km) + b_r < k and Equation 3 tests (offset − km) − b_l < 0.
// So one offset-indexed transition table (gap and successor per local
// offset) serves every processor; per processor only the start location
// remains to be computed. When gcd(s, pk) = 1 the transition graph is a
// single k-cycle, making the processors' AM tables cyclic shifts of one
// another — the paper's closing observation in Section 6.1.
type TableSet struct {
	p, k, l, s int64
	pk, d, x   int64

	// Shared transition table, indexed by local offset in [0, k); valid
	// only when the general case applies (maxLen > 1).
	delta []int64
	next  []int64

	// singleGap holds k·s/d for the length ≤ 1 special cases.
	singleGap int64
	general   bool
}

// NewTableSet validates the configuration and computes everything that is
// processor independent: the extended Euclid results, the R/L basis and
// the shared transition table. O(k + min(log s, log p)) once.
func NewTableSet(p, k, l, s int64) (*TableSet, error) {
	pr := Problem{P: p, K: k, L: l, S: s, M: 0}
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	pk := p * k
	d, x, _ := intmath.ExtGCD(s, pk)
	ts := &TableSet{
		p: p, k: k, l: l, s: s,
		pk: pk, d: d, x: x,
		singleGap: k * s / d,
	}
	lat := problemLattice(pr, pk, d, x)
	basis, ok := lat.RL()
	if !ok {
		// Degenerate configuration: every processor's table has length <= 1.
		return ts, nil
	}
	ts.general = true
	ts.delta = make([]int64, k)
	ts.next = make([]int64, k)
	br, bl := basis.R.B, basis.L.B
	for o := int64(0); o < k; o++ {
		if o+br < k {
			ts.delta[o] = basis.GapR // Equation 1
			ts.next[o] = o + br
			continue
		}
		gap := basis.GapL // Equation 2
		n := o - bl
		if n < 0 {
			gap += basis.GapR // Equation 3
			n += br
		}
		ts.delta[o] = gap
		ts.next[o] = n
	}
	return ts, nil
}

// Sequence returns processor m's access sequence, identical to
// Lattice(Problem{...M: m}) but reusing the shared tables: only the O(k)
// start scan runs per processor.
func (ts *TableSet) Sequence(m int64) (Sequence, error) {
	return ts.SequenceInto(m, nil)
}

// SequenceInto is Sequence writing the gap table into buf's storage
// (buf's length is ignored; its capacity is reused and grown as needed).
// The returned Sequence's Gaps alias buf, so callers own exactly one
// live copy — the allocation-free variant for hot loops that rebuild
// sequences into scratch buffers.
func (ts *TableSet) SequenceInto(m int64, buf []int64) (Sequence, error) {
	if m < 0 || m >= ts.p {
		return Sequence{}, fmt.Errorf("core: processor %d outside [0, %d)", m, ts.p)
	}
	pr := Problem{P: ts.p, K: ts.k, L: ts.l, S: ts.s, M: m}
	start, length := pr.startScan(ts.pk, ts.d, ts.x, nil)
	switch length {
	case 0:
		return Sequence{Start: -1}, nil
	case 1:
		buf = append(buf[:0], ts.singleGap)
		return Sequence{
			Start:      start,
			StartLocal: pr.localAddr(start, ts.pk),
			Gaps:       buf,
		}, nil
	}
	gaps := sizedGaps(buf, length)
	o := intmath.FloorMod(start, ts.k)
	for i := range gaps {
		gaps[i] = ts.delta[o]
		o = ts.next[o]
	}
	return Sequence{
		Start:      start,
		StartLocal: pr.localAddr(start, ts.pk),
		Gaps:       gaps,
	}, nil
}

// sizedGaps returns buf resized to length, reusing its capacity when
// possible.
func sizedGaps(buf []int64, length int64) []int64 {
	if int64(cap(buf)) >= length {
		return buf[:length]
	}
	return make([]int64, length)
}

// All returns every processor's sequence. The per-processor start scans
// are independent, so they run in parallel across the available CPUs
// for large processor counts.
func (ts *TableSet) All() ([]Sequence, error) {
	out := make([]Sequence, ts.p)
	workers := int64(runtime.GOMAXPROCS(0))
	if workers > ts.p {
		workers = ts.p
	}
	// Below this many processors the goroutine fan-out costs more than
	// the O(k) scans it parallelizes.
	if workers <= 1 || ts.p < 8 {
		for m := int64(0); m < ts.p; m++ {
			seq, err := ts.Sequence(m)
			if err != nil {
				return nil, err
			}
			out[m] = seq
		}
		return out, nil
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	chunk := (ts.p + workers - 1) / workers
	for w := int64(0); w < workers; w++ {
		lo, hi := w*chunk, min((w+1)*chunk, ts.p)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int64) {
			defer wg.Done()
			for m := lo; m < hi; m++ {
				seq, err := ts.Sequence(m)
				if err != nil {
					errs[w] = err
					return
				}
				out[m] = seq
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Transitions exposes the shared offset-indexed transition table: delta[o]
// is the local memory gap from an element at local offset o, next[o] the
// offset of the successor element. Both slices are indexed by local offset
// in [0, k) and are shared, read-only state — callers must not modify
// them. ok is false in the degenerate configurations (every processor's
// table has length ≤ 1), where no transition table exists.
//
// This is the Figure 8(d) table pair in its processor-independent form:
// per processor only the start offset (start mod k) differs, so one pair
// serves every processor of the configuration (Section 6.1).
func (ts *TableSet) Transitions() (delta, next []int64, ok bool) {
	if !ts.general {
		return nil, nil, false
	}
	return ts.delta, ts.next, true
}

// SingleCycle reports whether the shared transition graph is one k-cycle,
// i.e. gcd(s, pk) = 1 — the case where the paper notes that "the local AM
// sequences are cyclic shifts of one another, and after computing the
// table once, only the starting locations for all the processors need to
// be found."
func (ts *TableSet) SingleCycle() bool { return ts.general && ts.d == 1 }
