package core

import (
	"testing"
)

// FuzzLatticeVsOracle drives the three fast algorithms against the
// brute-force oracle with fuzzer-chosen parameters. `go test` runs the
// seed corpus; `go test -fuzz FuzzLatticeVsOracle` explores further.
func FuzzLatticeVsOracle(f *testing.F) {
	f.Add(int64(4), int64(8), int64(4), int64(9), int64(1)) // the paper
	f.Add(int64(32), int64(512), int64(0), int64(7), int64(31))
	f.Add(int64(1), int64(1), int64(0), int64(1), int64(0))
	f.Add(int64(4), int64(2), int64(3), int64(8), int64(2)) // degenerate
	f.Add(int64(7), int64(16), int64(100), int64(113), int64(3))
	f.Fuzz(func(t *testing.T, p, k, l, s, m int64) {
		// Clamp into the valid, testable regime (the oracle is O(pk/d)).
		p = 1 + absMod(p, 16)
		k = 1 + absMod(k, 32)
		s = 1 + absMod(s, 4*p*k)
		l = absMod(l, 3*p*k)
		m = absMod(m, p)
		pr := Problem{P: p, K: k, L: l, S: s, M: m}
		ref, err := Enumerate(pr)
		if err != nil {
			t.Fatalf("oracle failed on valid input %+v: %v", pr, err)
		}
		lat, err := Lattice(pr)
		if err != nil {
			t.Fatalf("Lattice(%+v): %v", pr, err)
		}
		if !lat.Equal(ref) {
			t.Fatalf("%+v: lattice %v != oracle %v", pr, lat, ref)
		}
		srt, err := Sorting(pr)
		if err != nil || !srt.Equal(ref) {
			t.Fatalf("%+v: sorting %v != oracle %v (err %v)", pr, srt, ref, err)
		}
		if hir, err := Hiranandani(pr); err == nil && !hir.Equal(ref) {
			t.Fatalf("%+v: hiranandani %v != oracle %v", pr, hir, ref)
		}
		ts, err := NewTableSet(p, k, l, s)
		if err != nil {
			t.Fatalf("NewTableSet(%+v): %v", pr, err)
		}
		if got, err := ts.Sequence(m); err != nil || !got.Equal(ref) {
			t.Fatalf("%+v: tableset %v != oracle %v (err %v)", pr, got, ref, err)
		}
	})
}

// FuzzWalkerAgainstTable checks the table-free walker against the AM
// table over several periods.
func FuzzWalkerAgainstTable(f *testing.F) {
	f.Add(int64(4), int64(8), int64(4), int64(9), int64(1))
	f.Add(int64(3), int64(5), int64(2), int64(11), int64(2))
	f.Fuzz(func(t *testing.T, p, k, l, s, m int64) {
		p = 1 + absMod(p, 12)
		k = 1 + absMod(k, 24)
		s = 1 + absMod(s, 3*p*k)
		l = absMod(l, 2*p*k)
		m = absMod(m, p)
		pr := Problem{P: p, K: k, L: l, S: s, M: m}
		seq, err := Lattice(pr)
		if err != nil {
			t.Fatal(err)
		}
		w, ok, err := NewWalker(pr)
		if err != nil {
			t.Fatal(err)
		}
		if ok != !seq.Empty() {
			t.Fatalf("%+v: walker ok=%v, sequence empty=%v", pr, ok, seq.Empty())
		}
		if !ok {
			return
		}
		for rep := 0; rep < 2; rep++ {
			for i, g := range seq.Gaps {
				if got := w.Next(); got != g {
					t.Fatalf("%+v: walker gap %d = %d, want %d", pr, i, got, g)
				}
			}
		}
	})
}

func absMod(v, n int64) int64 {
	if n <= 0 {
		return 0
	}
	r := v % n
	if r < 0 {
		r += n
	}
	return r
}
