package core

import (
	"repro/internal/intmath"
)

// Walker generates the local memory access sequence one gap at a time
// from the basis vectors alone, storing no tables — the space/time
// trade-off of Section 6.2 (and reference [12]): "the algorithm can be
// modified to return only vectors R and L, without storing any tables.
// Based on these values, every processor can generate its local addresses
// as needed."
//
// A Walker is created per (distribution, stride, processor, lower bound)
// and yields the same gap stream as the cyclic AM table of Lattice, but
// in O(1) space.
type Walker struct {
	// Degenerate mode (AM length <= 1): constGap repeats forever.
	constGap int64
	degen    bool

	// General mode: Theorem 3 state.
	offset     int64
	lo, hi     int64
	br, bl     int64
	gapR, gapL int64

	start      int64
	startLocal int64
	period     int64
}

// NewWalker builds a Walker for the problem. For processors that own no
// section elements it returns ok = false.
func NewWalker(pr Problem) (*Walker, bool, error) {
	if err := pr.Validate(); err != nil {
		return nil, false, err
	}
	pk := pr.P * pr.K
	d, x, _ := intmath.ExtGCD(pr.S, pk)
	start, length := pr.startScan(pk, d, x, nil)
	if length == 0 {
		return nil, false, nil
	}
	w := &Walker{
		start:      start,
		startLocal: pr.localAddr(start, pk),
		period:     length,
	}
	if length == 1 {
		w.degen = true
		w.constGap = pr.K * pr.S / d
		return w, true, nil
	}
	lat := problemLattice(pr, pk, d, x)
	basis, ok := lat.RL()
	if !ok {
		panic("core: internal: no basis despite length > 1")
	}
	w.offset = intmath.FloorMod(start, pk)
	w.lo, w.hi = pr.K*pr.M, pr.K*(pr.M+1)
	w.br, w.bl = basis.R.B, basis.L.B
	w.gapR, w.gapL = basis.GapR, basis.GapL
	return w, true, nil
}

// Start returns the global index of the first owned section element.
func (w *Walker) Start() int64 { return w.start }

// StartLocal returns the local memory address of the first owned element.
func (w *Walker) StartLocal() int64 { return w.startLocal }

// Period returns the length of the cyclic gap pattern.
func (w *Walker) Period() int64 { return w.period }

// Next returns the local memory gap from the current owned element to the
// next one, advancing the walker. The stream is infinite (the pattern is
// cyclic); callers bound it with Period or an element count.
func (w *Walker) Next() int64 {
	if w.degen {
		return w.constGap
	}
	if w.offset+w.br < w.hi {
		w.offset += w.br
		return w.gapR // Equation 1
	}
	gap := w.gapL // Equation 2
	w.offset -= w.bl
	if w.offset < w.lo {
		gap += w.gapR // Equation 3
		w.offset += w.br
	}
	return gap
}

// Addresses streams the local addresses of the first n owned elements
// into dst (allocating if dst is too small) and returns it.
func (w *Walker) Addresses(n int64, dst []int64) []int64 {
	if int64(cap(dst)) < n {
		dst = make([]int64, 0, n)
	}
	dst = dst[:0]
	addr := w.startLocal
	for i := int64(0); i < n; i++ {
		dst = append(dst, addr)
		addr += w.Next()
	}
	return dst
}
