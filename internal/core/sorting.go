package core

import (
	"slices"

	"repro/internal/intmath"
)

// Sorting computes the access sequence with the method of Chatterjee,
// Gilbert, Long, Schreiber & Teng (PPoPP'93): solve one linear Diophantine
// equation per offset in the processor's block to get the first section
// element at each offset, sort those indices, and scan the sorted cycle
// for the memory gaps. O(k log k + min(log s, log p)) time.
//
// The start-location scan (Figure 5, lines 3-11) is shared verbatim with
// Lattice, mirroring the paper's experimental setup (Section 6.1). Sorting
// uses the standard library's comparison sort; SortingRadix mirrors the
// linear-time radix sort the original implementation switched to at
// k ≥ 64.
func Sorting(pr Problem) (Sequence, error) {
	return sortingImpl(pr, func(locs []int64) { slices.Sort(locs) })
}

// SortingRadix is Sorting with an LSD radix sort in place of the
// comparison sort, matching the original implementation's behaviour for
// large block sizes (Section 6.1: "the linear-time radix sort when
// k ≥ 64").
func SortingRadix(pr Problem) (Sequence, error) {
	return sortingImpl(pr, radixSort)
}

// SortingWith runs the sorting method with a caller-supplied sorting
// routine, for experimenting with the time/space trade-offs discussed in
// Section 6.1.
func SortingWith(pr Problem, sortFn func([]int64)) (Sequence, error) {
	return sortingImpl(pr, sortFn)
}

func sortingImpl(pr Problem, sortFn func([]int64)) (Sequence, error) {
	if err := pr.Validate(); err != nil {
		return Sequence{}, err
	}
	pk := pr.P * pr.K
	d, x, _ := intmath.ExtGCD(pr.S, pk)

	locs := make([]int64, 0, pr.K/d+1)
	start, length := pr.startScan(pk, d, x, &locs)

	switch length {
	case 0:
		return Sequence{Start: -1}, nil
	case 1:
		return Sequence{
			Start:      start,
			StartLocal: pr.localAddr(start, pk),
			Gaps:       []int64{pr.K * pr.S / d},
		}, nil
	}

	sortFn(locs)

	// Scan the sorted cycle for memory gaps. The cycle repeats every
	// pk/d section steps, i.e. every (pk/d)·s in global index; the final
	// gap wraps from the largest index in the cycle to the first index of
	// the next cycle.
	gaps := make([]int64, length)
	prev := pr.localAddr(locs[0], pk)
	for t := int64(1); t < length; t++ {
		cur := pr.localAddr(locs[t], pk)
		gaps[t-1] = cur - prev
		prev = cur
	}
	next := pr.localAddr(locs[0]+(pk/d)*pr.S, pk)
	gaps[length-1] = next - prev

	return Sequence{
		Start:      locs[0],
		StartLocal: pr.localAddr(locs[0], pk),
		Gaps:       gaps,
	}, nil
}

// radixSort sorts nonnegative int64 keys with an LSD byte-wise radix
// sort, skipping passes whose byte is constant across all keys.
func radixSort(a []int64) {
	if len(a) < 2 {
		return
	}
	maxV := a[0]
	for _, v := range a[1:] {
		if v > maxV {
			maxV = v
		}
	}
	buf := make([]int64, len(a))
	src, dst := a, buf
	var counts [256]int
	for shift := uint(0); shift < 64 && (maxV>>shift) != 0; shift += 8 {
		for i := range counts {
			counts[i] = 0
		}
		for _, v := range src {
			counts[(v>>shift)&0xff]++
		}
		pos := 0
		for b := 0; b < 256; b++ {
			c := counts[b]
			counts[b] = pos
			pos += c
		}
		for _, v := range src {
			b := (v >> shift) & 0xff
			dst[counts[b]] = v
			counts[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &a[0] {
		copy(a, src)
	}
}
