package core

import (
	"errors"
	"fmt"

	"repro/internal/intmath"
)

// ErrStrideTooLarge is returned by Hiranandani when the special condition
// s mod pk < k does not hold.
var ErrStrideTooLarge = errors.New("core: Hiranandani method requires s mod pk < k")

// Hiranandani computes the access sequence with the O(k) special-case
// method of Hiranandani, Kennedy, Mellor-Crummey & Sethi (ICS'94), valid
// only when s mod pk < k (the section advances through each row by less
// than a block, so each processor's accesses within a row form one
// contiguous run of section elements).
//
// Within a run, consecutive section elements are one stride apart and the
// local gap is constant; between runs the method jumps directly to the
// next run's head. Both steps are O(1), and the table is complete after
// one period, giving O(k + min(log s, log p)) total — but unlike Lattice
// this only works under the stride restriction; for s mod pk ≥ k it
// returns ErrStrideTooLarge.
func Hiranandani(pr Problem) (Sequence, error) {
	if err := pr.Validate(); err != nil {
		return Sequence{}, err
	}
	pk := pr.P * pr.K
	sr := pr.S % pk   // stride's offset advance per element
	rows := pr.S / pk // stride's row advance per element
	if sr >= pr.K {
		return Sequence{}, fmt.Errorf("%w: s=%d, pk=%d, k=%d", ErrStrideTooLarge, pr.S, pk, pr.K)
	}

	d, x, _ := intmath.ExtGCD(pr.S, pk)
	start, length := pr.startScan(pk, d, x, nil)

	switch length {
	case 0:
		return Sequence{Start: -1}, nil
	case 1:
		return Sequence{
			Start:      start,
			StartLocal: pr.localAddr(start, pk),
			Gaps:       []int64{pr.K * pr.S / d},
		}, nil
	}
	// length >= 2 excludes sr == 0 (pk | s forces a single offset class).

	lo, hi := pr.K*pr.M, pr.K*(pr.M+1)
	gaps := make([]int64, length)
	offset := intmath.FloorMod(start, pk) // in [lo, hi)
	inRun := rows*pr.K + sr               // local gap between consecutive section elements in a run
	for i := int64(0); i < length; i++ {
		if offset+sr < hi {
			// Next section element still lands in this processor's block.
			gaps[i] = inRun
			offset += sr
			continue
		}
		// Jump to the head of the next run: the smallest t ≥ 1 with
		// offset + t·sr ≥ lo + pk (one full wrap of the row offset).
		t := intmath.CeilDiv(lo+pk-offset, sr)
		newOffset := offset + t*sr - pk
		gaps[i] = (t*rows+1)*pr.K + newOffset - offset
		offset = newOffset
	}
	return Sequence{
		Start:      start,
		StartLocal: pr.localAddr(start, pk),
		Gaps:       gaps,
	}, nil
}
