package core

import (
	"fmt"

	"repro/internal/intmath"
)

// Count returns the number of elements of the bounded section L:u:S owned
// by processor M. The AM table itself is independent of the upper bound
// (Section 2); bounds enter only here and in Last/Addresses.
func (pr Problem) Count(u int64) (int64, error) {
	if err := pr.Validate(); err != nil {
		return 0, err
	}
	if u < pr.L {
		return 0, nil
	}
	n := (u-pr.L)/pr.S + 1 // total section elements
	pk := pr.P * pr.K
	d, x, _ := intmath.ExtGCD(pr.S, pk)
	nd := pk / d
	lo := pr.K*pr.M - pr.L
	var count int64
	for i := intmath.CeilDiv(lo, d) * d; i < lo+pr.K; i += d {
		j0 := mulMod(intmath.FloorMod(i, pk)/d, x, nd)
		if j0 < n {
			count += (n-1-j0)/nd + 1
		}
	}
	return count, nil
}

// Last returns the global index of the largest element of the bounded
// section L:u:S owned by processor M, or -1 when M owns none. Mirrors the
// paper's remark that the upper bound "is only used to find the last
// location for each processor".
func (pr Problem) Last(u int64) (int64, error) {
	if err := pr.Validate(); err != nil {
		return 0, err
	}
	if u < pr.L {
		return -1, nil
	}
	n := (u-pr.L)/pr.S + 1
	pk := pr.P * pr.K
	d, x, _ := intmath.ExtGCD(pr.S, pk)
	nd := pk / d
	lo := pr.K*pr.M - pr.L
	last := int64(-1)
	for i := intmath.CeilDiv(lo, d) * d; i < lo+pr.K; i += d {
		j0 := mulMod(intmath.FloorMod(i, pk)/d, x, nd)
		if j0 >= n {
			continue
		}
		j := j0 + (n-1-j0)/nd*nd
		if g := pr.L + j*pr.S; g > last {
			last = g
		}
	}
	return last, nil
}

// Addresses returns the local memory addresses (in increasing global-index
// order) of all elements of the bounded section L:u:S owned by processor
// M, computed by walking the cyclic AM table from the start location.
func (pr Problem) Addresses(u int64) ([]int64, error) {
	n, err := pr.Count(u)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	seq, err := Lattice(pr)
	if err != nil {
		return nil, err
	}
	out := make([]int64, n)
	addr := seq.StartLocal
	for t := int64(0); t < n; t++ {
		out[t] = addr
		if len(seq.Gaps) > 0 {
			addr += seq.Gaps[t%int64(len(seq.Gaps))]
		}
	}
	return out, nil
}

// Enumerate is the brute-force oracle: it walks the section element by
// element, filters by ownership, and derives the access sequence directly
// from the definition. It is O(pk/gcd(s,pk)) — far slower than Lattice —
// and exists to validate the fast algorithms in tests.
func Enumerate(pr Problem) (Sequence, error) {
	if err := pr.Validate(); err != nil {
		return Sequence{}, err
	}
	pk := pr.P * pr.K
	d := intmath.GCD(pr.S, pk)
	nd := pk / d // section steps per cycle

	// Collect owned elements over one full cycle plus the first element of
	// the next cycle; their local-address differences are the AM table.
	var owned []int64
	var firstJ int64 = -1
	for j := int64(0); ; j++ {
		g := pr.L + j*pr.S
		if intmath.FloorMod(g, pk)/pr.K == pr.M {
			if firstJ < 0 {
				firstJ = j
			}
			owned = append(owned, g)
		}
		if firstJ >= 0 && j >= firstJ+nd {
			break
		}
		if firstJ < 0 && j > nd {
			// No owned element in a full period: M owns nothing.
			return Sequence{Start: -1}, nil
		}
	}
	start := owned[0]
	gaps := make([]int64, 0, len(owned)-1)
	for t := 0; t+1 < len(owned); t++ {
		gaps = append(gaps, pr.localAddr(owned[t+1], pk)-pr.localAddr(owned[t], pk))
	}
	return Sequence{
		Start:      start,
		StartLocal: pr.localAddr(start, pk),
		Gaps:       gaps,
	}, nil
}

// Equal reports whether two sequences describe the same access pattern.
func (s Sequence) Equal(o Sequence) bool {
	if s.Start != o.Start || s.StartLocal != o.StartLocal || len(s.Gaps) != len(o.Gaps) {
		return false
	}
	for i := range s.Gaps {
		if s.Gaps[i] != o.Gaps[i] {
			return false
		}
	}
	return true
}

// String renders the sequence compactly for diagnostics.
func (s Sequence) String() string {
	if s.Empty() {
		return "core.Sequence{empty}"
	}
	return fmt.Sprintf("core.Sequence{start=%d local=%d AM=%v}", s.Start, s.StartLocal, s.Gaps)
}
