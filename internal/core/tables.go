package core

import (
	"repro/internal/intmath"
)

// OffsetTable is the AM table re-indexed by local block offset, as
// required by the node-code shape of Figure 8(d) (Section 6.2): deltaM
// must be indexed by the offset of the current element within its block,
// and a second table chains each offset to the next one in access order.
//
// Entries at offsets that the section never touches hold NextOffset -1
// and Delta 0.
type OffsetTable struct {
	Delta      []int64 // local memory gap, indexed by local offset in [0, K)
	NextOffset []int64 // successor local offset, -1 at untouched offsets
	Start      int64   // local offset of the processor's first element
	Length     int64   // number of touched offsets (AM table length)
}

// OffsetTables computes the Figure 8(d) tables by running the Figure 5
// gap loop with the paper's re-indexing modification: AM[offset - km] and
// NextOffset[offset - km] replace the sequentially indexed AM.
//
// For processors that own no section elements, Start is -1 and both
// tables are all-unused.
func OffsetTables(pr Problem) (OffsetTable, error) {
	var ot OffsetTable
	if err := OffsetTablesInto(pr, &ot); err != nil {
		return OffsetTable{}, err
	}
	return ot, nil
}

// OffsetTablesInto is OffsetTables writing into ot, reusing its Delta
// and NextOffset storage when the capacity suffices — the
// allocation-free variant for loops that rebuild shape 8(d) tables.
func OffsetTablesInto(pr Problem, ot *OffsetTable) error {
	if err := pr.Validate(); err != nil {
		return err
	}
	pk := pr.P * pr.K
	d, x, _ := intmath.ExtGCD(pr.S, pk)
	start, length := pr.startScan(pk, d, x, nil)

	ot.Delta = sizedGaps(ot.Delta, pr.K)
	ot.NextOffset = sizedGaps(ot.NextOffset, pr.K)
	ot.Start = -1
	ot.Length = length
	for i := range ot.Delta {
		ot.Delta[i] = 0
		ot.NextOffset[i] = -1
	}
	switch length {
	case 0:
		return nil
	case 1:
		off := intmath.FloorMod(start, pr.K)
		ot.Start = off
		ot.Delta[off] = pr.K * pr.S / d
		ot.NextOffset[off] = off
		return nil
	}

	lat := problemLattice(pr, pk, d, x)
	basis, ok := lat.RL()
	if !ok {
		panic("core: internal: no basis despite length > 1")
	}
	br, bl := basis.R.B, basis.L.B
	gapR, gapL := basis.GapR, basis.GapL

	lo, hi := pr.K*pr.M, pr.K*(pr.M+1)
	offset := intmath.FloorMod(start, pk)
	ot.Start = offset - lo
	i := int64(0)
	for i < length {
		for i < length && offset+br < hi {
			ot.Delta[offset-lo] = gapR
			ot.NextOffset[offset-lo] = offset - lo + br
			offset += br
			i++
		}
		if i == length {
			break
		}
		cur := offset - lo
		gap := gapL
		offset -= bl
		if offset < lo {
			gap += gapR
			offset += br
		}
		ot.Delta[cur] = gap
		ot.NextOffset[cur] = offset - lo
		i++
	}
	return nil
}

// Transition describes one state of the finite-state-machine view of the
// access pattern (Chatterjee et al.'s transition diagram, Section 2): from
// a section element at this local offset, the next element is Gap bytes
// away in local memory at local offset Next.
type Transition struct {
	Offset int64
	Gap    int64
	Next   int64
}

// TransitionTable returns the FSM transition table for the problem's
// touched offsets, in increasing offset order, together with the start
// state (the local offset of the first owned element; -1 when the
// processor owns nothing). State transitions depend only on p, k and s;
// the start state also depends on l and m (Section 2).
func TransitionTable(pr Problem) (states []Transition, start int64, err error) {
	ot, err := OffsetTables(pr)
	if err != nil {
		return nil, -1, err
	}
	for off := int64(0); off < int64(len(ot.Delta)); off++ {
		if ot.NextOffset[off] >= 0 {
			states = append(states, Transition{
				Offset: off,
				Gap:    ot.Delta[off],
				Next:   ot.NextOffset[off],
			})
		}
	}
	return states, ot.Start, nil
}
