package core

import (
	"math/rand"
	"reflect"
	"testing"
)

// paperProblem is the worked example of Section 5 / Figure 6:
// p=4, k=8, l=4, s=9, processor 1.
var paperProblem = Problem{P: 4, K: 8, L: 4, S: 9, M: 1}

func TestLatticePaperExample(t *testing.T) {
	seq, err := Lattice(paperProblem)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Start != 13 {
		t.Errorf("Start = %d, want 13", seq.Start)
	}
	// Element 13: row 0, offset 5 within processor 1's block.
	if seq.StartLocal != 5 {
		t.Errorf("StartLocal = %d, want 5", seq.StartLocal)
	}
	want := []int64{3, 12, 15, 12, 3, 12, 3, 12}
	if !reflect.DeepEqual(seq.Gaps, want) {
		t.Errorf("AM = %v, want %v", seq.Gaps, want)
	}
}

func TestLatticeFigure1Section(t *testing.T) {
	// Figure 1's section: l=0, s=9 over cyclic(8)x4. Processor 0's first
	// element is index 0 at local address 0.
	seq, err := Lattice(Problem{P: 4, K: 8, L: 0, S: 9, M: 0})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Start != 0 || seq.StartLocal != 0 {
		t.Errorf("start = %d local %d, want 0, 0", seq.Start, seq.StartLocal)
	}
	if len(seq.Gaps) != 8 {
		t.Errorf("AM length = %d, want 8", len(seq.Gaps))
	}
}

func TestAllProcessorsPaperSection(t *testing.T) {
	// Every processor's sequence must match the brute-force oracle.
	for m := int64(0); m < 4; m++ {
		pr := Problem{P: 4, K: 8, L: 4, S: 9, M: m}
		lat, err := Lattice(pr)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := Enumerate(pr)
		if err != nil {
			t.Fatal(err)
		}
		if !lat.Equal(ref) {
			t.Errorf("m=%d: lattice %v != oracle %v", m, lat, ref)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []Problem{
		{P: 0, K: 8, L: 0, S: 1, M: 0},
		{P: 4, K: 0, L: 0, S: 1, M: 0},
		{P: 4, K: 8, L: 0, S: 0, M: 0},
		{P: 4, K: 8, L: 0, S: -3, M: 0},
		{P: 4, K: 8, L: 0, S: 1, M: 4},
		{P: 4, K: 8, L: 0, S: 1, M: -1},
		{P: 1 << 32, K: 1 << 32, L: 0, S: 1, M: 0},
		{P: 32, K: 1 << 40, L: 0, S: 1 << 40, M: 0},
	}
	for _, pr := range bad {
		if err := pr.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", pr)
		}
		if _, err := Lattice(pr); err == nil {
			t.Errorf("Lattice(%+v) should fail", pr)
		}
		if _, err := Sorting(pr); err == nil {
			t.Errorf("Sorting(%+v) should fail", pr)
		}
	}
	if err := paperProblem.Validate(); err != nil {
		t.Errorf("paper problem should validate: %v", err)
	}
}

func TestEmptyProcessor(t *testing.T) {
	// p=4, k=2, s=8: pk=8 divides s, so the section stays at one offset
	// (l mod 8 = 3 -> processor 1). All other processors own nothing.
	for m := int64(0); m < 4; m++ {
		pr := Problem{P: 4, K: 2, L: 3, S: 8, M: m}
		seq, err := Lattice(pr)
		if err != nil {
			t.Fatal(err)
		}
		if m == 1 {
			if seq.Empty() || seq.Start != 3 {
				t.Errorf("m=1 should own start 3, got %v", seq)
			}
			// Single-offset case: one gap of k*s/d = 2*8/8 = 2.
			if !reflect.DeepEqual(seq.Gaps, []int64{2}) {
				t.Errorf("m=1 AM = %v, want [2]", seq.Gaps)
			}
		} else if !seq.Empty() {
			t.Errorf("m=%d should be empty, got %v", m, seq)
		}
	}
}

func TestSingleLengthCase(t *testing.T) {
	// d >= k but d < pk: s=16, p=4, k=8 -> pk=32, d=16. Two offset classes
	// (0 and 16): processors 0 and 2 own one offset each.
	for m := int64(0); m < 4; m++ {
		pr := Problem{P: 4, K: 8, L: 0, S: 16, M: m}
		seq, err := Lattice(pr)
		if err != nil {
			t.Fatal(err)
		}
		ref, _ := Enumerate(pr)
		if !seq.Equal(ref) {
			t.Errorf("m=%d: %v != oracle %v", m, seq, ref)
		}
		if m == 0 || m == 2 {
			if len(seq.Gaps) != 1 {
				t.Errorf("m=%d: AM length %d, want 1", m, len(seq.Gaps))
			}
		} else if !seq.Empty() {
			t.Errorf("m=%d should be empty", m)
		}
	}
}

// sweepProblems yields a deterministic broad mix of parameters, including
// the paper's benchmark settings and adversarial shapes.
func sweepProblems() []Problem {
	var prs []Problem
	for _, p := range []int64{1, 2, 3, 4, 5, 7, 8, 32} {
		for _, k := range []int64{1, 2, 3, 4, 7, 8, 16, 64} {
			pk := p * k
			strides := []int64{1, 2, 3, 5, 7, 9, 15, k + 1, pk - 1, pk + 1, 2*pk + 3, 99}
			for _, s := range strides {
				if s < 1 {
					continue
				}
				for _, l := range []int64{0, 1, 4, pk + 5} {
					for _, m := range []int64{0, p / 2, p - 1} {
						prs = append(prs, Problem{P: p, K: k, L: l, S: s, M: m})
					}
				}
			}
		}
	}
	return prs
}

func TestLatticeMatchesOracleSweep(t *testing.T) {
	for _, pr := range sweepProblems() {
		lat, err := Lattice(pr)
		if err != nil {
			t.Fatalf("%+v: %v", pr, err)
		}
		ref, err := Enumerate(pr)
		if err != nil {
			t.Fatalf("%+v: %v", pr, err)
		}
		if !lat.Equal(ref) {
			t.Errorf("%+v:\n lattice %v\n oracle  %v", pr, lat, ref)
		}
	}
}

func TestSortingMatchesLatticeSweep(t *testing.T) {
	for _, pr := range sweepProblems() {
		lat, _ := Lattice(pr)
		srt, err := Sorting(pr)
		if err != nil {
			t.Fatalf("%+v: %v", pr, err)
		}
		if !lat.Equal(srt) {
			t.Errorf("%+v:\n lattice %v\n sorting %v", pr, lat, srt)
		}
		rad, err := SortingRadix(pr)
		if err != nil {
			t.Fatalf("%+v: %v", pr, err)
		}
		if !lat.Equal(rad) {
			t.Errorf("%+v:\n lattice %v\n radix   %v", pr, lat, rad)
		}
	}
}

func TestHiranandaniMatchesLattice(t *testing.T) {
	applicable, skipped := 0, 0
	for _, pr := range sweepProblems() {
		hir, err := Hiranandani(pr)
		if err != nil {
			skipped++
			continue
		}
		applicable++
		lat, _ := Lattice(pr)
		if !lat.Equal(hir) {
			t.Errorf("%+v:\n lattice     %v\n hiranandani %v", pr, lat, hir)
		}
	}
	if applicable == 0 {
		t.Error("sweep contained no s mod pk < k cases")
	}
	if skipped == 0 {
		t.Error("sweep contained no s mod pk >= k cases")
	}
}

func TestHiranandaniRejectsLargeStride(t *testing.T) {
	// s mod pk = 9 >= k = 8.
	_, err := Hiranandani(Problem{P: 4, K: 8, L: 0, S: 9, M: 0})
	if err == nil {
		t.Fatal("expected ErrStrideTooLarge")
	}
}

func TestHiranandaniAcceptsSmallStride(t *testing.T) {
	// s = 37: 37 mod 32 = 5 < 8.
	seq, err := Hiranandani(Problem{P: 4, K: 8, L: 0, S: 37, M: 2})
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := Enumerate(Problem{P: 4, K: 8, L: 0, S: 37, M: 2})
	if !seq.Equal(ref) {
		t.Errorf("hiranandani %v != oracle %v", seq, ref)
	}
}

func TestRandomizedAgreement(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 3000; trial++ {
		p := r.Int63n(16) + 1
		k := r.Int63n(24) + 1
		s := r.Int63n(4*p*k) + 1
		l := r.Int63n(3 * p * k)
		m := r.Int63n(p)
		pr := Problem{P: p, K: k, L: l, S: s, M: m}
		ref, err := Enumerate(pr)
		if err != nil {
			t.Fatal(err)
		}
		lat, _ := Lattice(pr)
		if !lat.Equal(ref) {
			t.Fatalf("%+v:\n lattice %v\n oracle  %v", pr, lat, ref)
		}
		srt, _ := Sorting(pr)
		if !srt.Equal(ref) {
			t.Fatalf("%+v:\n sorting %v\n oracle  %v", pr, srt, ref)
		}
		if hir, err := Hiranandani(pr); err == nil {
			if !hir.Equal(ref) {
				t.Fatalf("%+v:\n hiranandani %v\n oracle %v", pr, hir, ref)
			}
		}
	}
}

// TestGapInvariants checks the structural facts Section 5 proves: every
// gap is one of the three Theorem 3 values, and one full cycle advances
// local memory by exactly k·s/d.
func TestGapInvariants(t *testing.T) {
	for _, pr := range sweepProblems() {
		seq, err := Lattice(pr)
		if err != nil || seq.Empty() {
			continue
		}
		pk := pr.P * pr.K
		d := gcd64(pr.S, pk)
		var sum int64
		for _, g := range seq.Gaps {
			sum += g
		}
		if want := pr.K * pr.S / d; sum != want {
			t.Errorf("%+v: cycle sum %d, want %d", pr, sum, want)
		}
		if len(seq.Gaps) > 1 {
			basis, ok, err := Vectors(pr.P, pr.K, pr.S)
			if err != nil || !ok {
				t.Errorf("%+v: Vectors failed: ok=%v err=%v", pr, ok, err)
				continue
			}
			for _, g := range seq.Gaps {
				if g != basis.GapR && g != basis.GapL && g != basis.GapR+basis.GapL {
					t.Errorf("%+v: gap %d not in {R=%d, L=%d, R+L=%d}",
						pr, g, basis.GapR, basis.GapL, basis.GapR+basis.GapL)
				}
			}
		}
		if int64(len(seq.Gaps)) > pr.K {
			t.Errorf("%+v: AM length %d exceeds k=%d", pr, len(seq.Gaps), pr.K)
		}
	}
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a < 0 {
		return -a
	}
	return a
}

func TestSequenceAddress(t *testing.T) {
	seq, _ := Lattice(paperProblem)
	// Walk 30 elements and compare against direct enumeration.
	pr := paperProblem
	pk := pr.P * pr.K
	var want []int64
	for j := int64(0); len(want) < 30; j++ {
		g := pr.L + j*pr.S
		if (g%pk)/pr.K == pr.M {
			want = append(want, (g/pk)*pr.K+g%pr.K)
		}
	}
	for n, w := range want {
		if got := seq.Address(int64(n)); got != w {
			t.Errorf("Address(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestLatticeTrace(t *testing.T) {
	seq, trace, err := LatticeTrace(paperProblem)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{3, 12, 15, 12, 3, 12, 3, 12}
	if !reflect.DeepEqual(seq.Gaps, want) {
		t.Fatalf("trace variant produced different AM: %v", seq.Gaps)
	}
	// Section 5.1: at most 2k+1 points examined.
	if len(trace) > int(2*paperProblem.K+1) {
		t.Errorf("trace has %d visits, bound is %d", len(trace), 2*paperProblem.K+1)
	}
	// The walk-through visits 40, 76, 103 (off-proc), 139, ... and ends at
	// 301 (first point of the next cycle).
	var visited []int64
	for _, v := range trace {
		visited = append(visited, v.Index)
	}
	wantPrefix := []int64{40, 76, 103, 139}
	for i, w := range wantPrefix {
		if visited[i] != w {
			t.Fatalf("visit %d = %d, want %d (all: %v)", i, visited[i], w, visited)
		}
	}
	if visited[len(visited)-1] != 301 {
		t.Errorf("last visit = %d, want 301", visited[len(visited)-1])
	}
	if trace[2].OnProc {
		t.Error("index 103 should be flagged off-processor")
	}
	if trace[2].Equation != 2 || trace[3].Equation != 3 {
		t.Errorf("equations = %d,%d, want 2,3", trace[2].Equation, trace[3].Equation)
	}
}

func TestWalkerMatchesLattice(t *testing.T) {
	for _, pr := range sweepProblems() {
		seq, _ := Lattice(pr)
		w, ok, err := NewWalker(pr)
		if err != nil {
			t.Fatal(err)
		}
		if ok == seq.Empty() {
			t.Errorf("%+v: walker ok=%v but sequence empty=%v", pr, ok, seq.Empty())
			continue
		}
		if !ok {
			continue
		}
		if w.Start() != seq.Start || w.StartLocal() != seq.StartLocal {
			t.Errorf("%+v: walker start %d/%d, lattice %d/%d",
				pr, w.Start(), w.StartLocal(), seq.Start, seq.StartLocal)
		}
		if w.Period() != int64(len(seq.Gaps)) {
			t.Errorf("%+v: period %d, want %d", pr, w.Period(), len(seq.Gaps))
		}
		// Two full periods from the walker must equal the table repeated.
		for rep := 0; rep < 2; rep++ {
			for i, g := range seq.Gaps {
				if got := w.Next(); got != g {
					t.Fatalf("%+v: rep %d gap %d = %d, want %d", pr, rep, i, got, g)
				}
			}
		}
	}
}

func TestWalkerAddresses(t *testing.T) {
	w, ok, err := NewWalker(paperProblem)
	if err != nil || !ok {
		t.Fatal(err)
	}
	got := w.Addresses(5, nil)
	want := []int64{5, 8, 20, 35, 47}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Addresses = %v, want %v", got, want)
	}
}

func TestOffsetTables(t *testing.T) {
	ot, err := OffsetTables(paperProblem)
	if err != nil {
		t.Fatal(err)
	}
	if ot.Start != 5 { // start 13, local offset 13 mod 8 = 5
		t.Errorf("Start = %d, want 5", ot.Start)
	}
	if ot.Length != 8 {
		t.Errorf("Length = %d, want 8", ot.Length)
	}
	// Chasing the tables from Start must reproduce the AM sequence.
	seq, _ := Lattice(paperProblem)
	off := ot.Start
	for i, g := range seq.Gaps {
		if ot.Delta[off] != g {
			t.Fatalf("Delta[%d] = %d, want %d (step %d)", off, ot.Delta[off], g, i)
		}
		off = ot.NextOffset[off]
		if off < 0 {
			t.Fatalf("chain broken at step %d", i)
		}
	}
	if off != ot.Start {
		t.Errorf("chain did not close: ended at %d", off)
	}
}

func TestOffsetTablesSweep(t *testing.T) {
	for _, pr := range sweepProblems() {
		ot, err := OffsetTables(pr)
		if err != nil {
			t.Fatal(err)
		}
		seq, _ := Lattice(pr)
		if seq.Empty() {
			if ot.Start != -1 {
				t.Errorf("%+v: empty but Start=%d", pr, ot.Start)
			}
			continue
		}
		off := ot.Start
		for i, g := range seq.Gaps {
			if off < 0 || off >= pr.K {
				t.Fatalf("%+v: offset %d out of range at step %d", pr, off, i)
			}
			if ot.Delta[off] != g {
				t.Fatalf("%+v: Delta[%d]=%d, want %d", pr, off, ot.Delta[off], g)
			}
			off = ot.NextOffset[off]
		}
		if off != ot.Start {
			t.Errorf("%+v: offset chain not cyclic", pr)
		}
	}
}

func TestTransitionTable(t *testing.T) {
	states, start, err := TransitionTable(paperProblem)
	if err != nil {
		t.Fatal(err)
	}
	if start != 5 {
		t.Errorf("start state = %d, want 5", start)
	}
	if len(states) != 8 {
		t.Errorf("state count = %d, want 8", len(states))
	}
	// States are sorted by offset and self-consistent.
	for i := 1; i < len(states); i++ {
		if states[i].Offset <= states[i-1].Offset {
			t.Error("states not in increasing offset order")
		}
	}
}

func TestCountLastAddresses(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 800; trial++ {
		p := r.Int63n(8) + 1
		k := r.Int63n(12) + 1
		s := r.Int63n(3*p*k) + 1
		l := r.Int63n(2 * p * k)
		u := l + r.Int63n(6*p*k*s)
		m := r.Int63n(p)
		pr := Problem{P: p, K: k, L: l, S: s, M: m}
		pk := p * k

		var wantCount, wantLast int64
		wantLast = -1
		var wantAddrs []int64
		for g := l; g <= u; g += s {
			if (g%pk)/k == m {
				wantCount++
				wantLast = g
				wantAddrs = append(wantAddrs, (g/pk)*k+g%k)
			}
		}
		gotCount, err := pr.Count(u)
		if err != nil {
			t.Fatal(err)
		}
		if gotCount != wantCount {
			t.Fatalf("%+v u=%d: Count = %d, want %d", pr, u, gotCount, wantCount)
		}
		gotLast, err := pr.Last(u)
		if err != nil {
			t.Fatal(err)
		}
		if gotLast != wantLast {
			t.Fatalf("%+v u=%d: Last = %d, want %d", pr, u, gotLast, wantLast)
		}
		gotAddrs, err := pr.Addresses(u)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotAddrs, wantAddrs) {
			t.Fatalf("%+v u=%d: Addresses = %v, want %v", pr, u, gotAddrs, wantAddrs)
		}
	}
}

func TestCountBeforeLowerBound(t *testing.T) {
	pr := paperProblem
	if n, _ := pr.Count(pr.L - 1); n != 0 {
		t.Errorf("Count(u < l) = %d", n)
	}
	if last, _ := pr.Last(pr.L - 1); last != -1 {
		t.Errorf("Last(u < l) = %d", last)
	}
	if addrs, _ := pr.Addresses(pr.L - 1); addrs != nil {
		t.Errorf("Addresses(u < l) = %v", addrs)
	}
}

func TestVectorsDegenerate(t *testing.T) {
	if _, ok, err := Vectors(4, 1, 3); err != nil || ok {
		t.Errorf("k=1 should have no basis (ok=%v err=%v)", ok, err)
	}
	if _, _, err := Vectors(0, 1, 3); err == nil {
		t.Error("invalid p should error")
	}
	basis, ok, err := Vectors(4, 8, 9)
	if err != nil || !ok {
		t.Fatalf("Vectors(4,8,9): ok=%v err=%v", ok, err)
	}
	if basis.GapR != 12 || basis.GapL != 3 {
		t.Errorf("gaps = %d,%d, want 12,3", basis.GapR, basis.GapL)
	}
}

func TestRadixSort(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(300)
		a := make([]int64, n)
		for i := range a {
			a[i] = r.Int63n(1 << uint(r.Intn(40)+1))
		}
		want := append([]int64(nil), a...)
		for i := 1; i < len(want); i++ {
			for j := i; j > 0 && want[j] < want[j-1]; j-- {
				want[j], want[j-1] = want[j-1], want[j]
			}
		}
		radixSort(a)
		if !reflect.DeepEqual(a, want) {
			t.Fatalf("radixSort wrong for trial %d", trial)
		}
	}
	// Degenerate inputs.
	radixSort(nil)
	radixSort([]int64{5})
	all0 := []int64{0, 0, 0}
	radixSort(all0)
	if !reflect.DeepEqual(all0, []int64{0, 0, 0}) {
		t.Error("radixSort of zeros broke")
	}
}

func TestLargeParameters(t *testing.T) {
	// Large but safe parameters exercise the overflow-aware paths.
	pr := Problem{P: 1 << 16, K: 1 << 16, L: 12345, S: (1 << 25) + 7, M: 99}
	seq, err := Lattice(pr)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Empty() {
		t.Skip("processor owns nothing for these parameters")
	}
	// Spot-check: Start is on processor M and is a section element.
	pk := pr.P * pr.K
	if (seq.Start%pk)/pr.K != pr.M {
		t.Errorf("start %d not on processor %d", seq.Start, pr.M)
	}
	if (seq.Start-pr.L)%pr.S != 0 {
		t.Error("start not a section element")
	}
}
