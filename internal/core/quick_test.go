package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// quickProblem generates random valid Problems for testing/quick.
type quickProblem struct {
	Pr Problem
	U  int64 // upper bound at least L
}

// Generate implements quick.Generator with a parameter distribution that
// covers the interesting regimes: tiny and large strides, strides that
// share factors with pk, lower bounds past the first row, every processor.
func (quickProblem) Generate(r *rand.Rand, size int) reflect.Value {
	p := r.Int63n(12) + 1
	k := r.Int63n(16) + 1
	pk := p * k
	var s int64
	switch r.Intn(4) {
	case 0:
		s = r.Int63n(k) + 1 // small: Hiranandani regime
	case 1:
		s = pk + r.Int63n(5) - 2 // near the row length
		if s < 1 {
			s = 1
		}
	case 2:
		s = (r.Int63n(4) + 1) * gcdFriendly(r, pk) // shares factors with pk
	default:
		s = r.Int63n(4*pk) + 1
	}
	l := r.Int63n(3 * pk)
	m := r.Int63n(p)
	u := l + r.Int63n(6*s*k+1)
	return reflect.ValueOf(quickProblem{
		Pr: Problem{P: p, K: k, L: l, S: s, M: m},
		U:  u,
	})
}

func gcdFriendly(r *rand.Rand, pk int64) int64 {
	// A random divisor of pk.
	var divs []int64
	for d := int64(1); d*d <= pk; d++ {
		if pk%d == 0 {
			divs = append(divs, d, pk/d)
		}
	}
	return divs[r.Intn(len(divs))]
}

// Property: all algorithms agree with the brute-force oracle.
func TestQuickAllAlgorithmsAgree(t *testing.T) {
	f := func(q quickProblem) bool {
		ref, err := Enumerate(q.Pr)
		if err != nil {
			return false
		}
		lat, err := Lattice(q.Pr)
		if err != nil || !lat.Equal(ref) {
			return false
		}
		srt, err := Sorting(q.Pr)
		if err != nil || !srt.Equal(ref) {
			return false
		}
		if hir, err := Hiranandani(q.Pr); err == nil && !hir.Equal(ref) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

// Property: the AM cycle advances local memory by exactly k·s/d, and the
// table length equals the number of solvable offsets (≤ k).
func TestQuickCycleSum(t *testing.T) {
	f := func(q quickProblem) bool {
		seq, err := Lattice(q.Pr)
		if err != nil {
			return false
		}
		if seq.Empty() {
			return true
		}
		var sum int64
		for _, g := range seq.Gaps {
			sum += g
		}
		d := gcd64(q.Pr.S, q.Pr.P*q.Pr.K)
		return sum == q.Pr.K*q.Pr.S/d && int64(len(seq.Gaps)) <= q.Pr.K
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

// Property: Count/Last/Addresses are mutually consistent with the gap
// walk for bounded sections.
func TestQuickBoundedConsistency(t *testing.T) {
	f := func(q quickProblem) bool {
		n, err := q.Pr.Count(q.U)
		if err != nil {
			return false
		}
		addrs, err := q.Pr.Addresses(q.U)
		if err != nil || int64(len(addrs)) != n {
			return false
		}
		last, err := q.Pr.Last(q.U)
		if err != nil {
			return false
		}
		if n == 0 {
			return last == -1
		}
		// The last address must be the local address of the Last element.
		pk := q.Pr.P * q.Pr.K
		wantLast := (last/pk)*q.Pr.K + last%q.Pr.K
		return addrs[n-1] == wantLast
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

// Property: the Walker's stream is exactly the cyclic AM table.
func TestQuickWalkerPeriodicity(t *testing.T) {
	f := func(q quickProblem) bool {
		seq, err := Lattice(q.Pr)
		if err != nil {
			return false
		}
		w, ok, err := NewWalker(q.Pr)
		if err != nil {
			return false
		}
		if !ok {
			return seq.Empty()
		}
		for rep := 0; rep < 3; rep++ {
			for _, g := range seq.Gaps {
				if w.Next() != g {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
}

// Property: offset tables chase through the full cycle and return to the
// start state (the FSM is a single cycle over touched offsets).
func TestQuickOffsetTableCycle(t *testing.T) {
	f := func(q quickProblem) bool {
		ot, err := OffsetTables(q.Pr)
		if err != nil {
			return false
		}
		if ot.Start < 0 {
			return ot.Length == 0
		}
		off := ot.Start
		seen := map[int64]bool{}
		for i := int64(0); i < ot.Length; i++ {
			if off < 0 || off >= q.Pr.K || seen[off] {
				return false
			}
			seen[off] = true
			off = ot.NextOffset[off]
		}
		return off == ot.Start
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: shifting the lower bound by one full row (pk) shifts the
// start by pk (k local cells) and leaves the gap table unchanged — the
// table depends on l only through its residue class (Section 3: the
// lattice is independent of l).
func TestQuickLowerBoundShift(t *testing.T) {
	f := func(q quickProblem) bool {
		pk := q.Pr.P * q.Pr.K
		a, err := Lattice(q.Pr)
		if err != nil {
			return false
		}
		shifted := q.Pr
		shifted.L += pk
		b, err := Lattice(shifted)
		if err != nil {
			return false
		}
		if a.Empty() != b.Empty() {
			return false
		}
		if a.Empty() {
			return true
		}
		// Same gap table, start shifted by exactly pk (one full row, k local
		// cells).
		if b.Start != a.Start+pk || b.StartLocal != a.StartLocal+q.Pr.K {
			return false
		}
		return reflect.DeepEqual(a.Gaps, b.Gaps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
