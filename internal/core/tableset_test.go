package core

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTableSetMatchesLattice(t *testing.T) {
	for _, pr := range sweepProblems() {
		ts, err := NewTableSet(pr.P, pr.K, pr.L, pr.S)
		if err != nil {
			t.Fatalf("%+v: %v", pr, err)
		}
		for m := int64(0); m < pr.P; m++ {
			got, err := ts.Sequence(m)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Lattice(Problem{P: pr.P, K: pr.K, L: pr.L, S: pr.S, M: m})
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("p=%d k=%d l=%d s=%d m=%d:\n tableset %v\n lattice  %v",
					pr.P, pr.K, pr.L, pr.S, m, got, want)
			}
		}
	}
}

func TestTableSetQuick(t *testing.T) {
	f := func(q quickProblem) bool {
		ts, err := NewTableSet(q.Pr.P, q.Pr.K, q.Pr.L, q.Pr.S)
		if err != nil {
			return false
		}
		got, err := ts.Sequence(q.Pr.M)
		if err != nil {
			return false
		}
		want, err := Lattice(q.Pr)
		if err != nil {
			return false
		}
		return got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1200}); err != nil {
		t.Error(err)
	}
}

func TestTableSetAll(t *testing.T) {
	ts, err := NewTableSet(4, 8, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	all, err := ts.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("got %d sequences", len(all))
	}
	want := []int64{3, 12, 15, 12, 3, 12, 3, 12}
	if !reflect.DeepEqual(all[1].Gaps, want) {
		t.Errorf("proc 1 gaps = %v", all[1].Gaps)
	}
}

// TestTableSetCyclicShift verifies the Section 6.1 observation: when
// gcd(s, pk) = 1 every processor's AM table is a cyclic shift of every
// other's.
func TestTableSetCyclicShift(t *testing.T) {
	ts, err := NewTableSet(4, 8, 4, 9) // gcd(9, 32) = 1
	if err != nil {
		t.Fatal(err)
	}
	if !ts.SingleCycle() {
		t.Fatal("gcd=1 configuration should report SingleCycle")
	}
	all, err := ts.All()
	if err != nil {
		t.Fatal(err)
	}
	base := all[0].Gaps
	for m := 1; m < 4; m++ {
		if !isRotation(all[m].Gaps, base) {
			t.Errorf("proc %d table %v is not a rotation of %v", m, all[m].Gaps, base)
		}
	}
	// d > 1 configuration is not a single cycle.
	ts2, err := NewTableSet(4, 8, 0, 6) // gcd(6, 32) = 2
	if err != nil {
		t.Fatal(err)
	}
	if ts2.SingleCycle() {
		t.Error("gcd=2 should not report SingleCycle")
	}
}

func isRotation(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	n := len(a)
	for shift := 0; shift < n; shift++ {
		match := true
		for i := 0; i < n; i++ {
			if a[i] != b[(i+shift)%n] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return n == 0
}

func TestTableSetErrors(t *testing.T) {
	if _, err := NewTableSet(0, 8, 0, 9); err == nil {
		t.Error("invalid config should fail")
	}
	ts, err := NewTableSet(4, 8, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ts.Sequence(-1); err == nil {
		t.Error("negative processor should fail")
	}
	if _, err := ts.Sequence(4); err == nil {
		t.Error("out-of-range processor should fail")
	}
}

func TestTableSetDegenerate(t *testing.T) {
	// pk | s: single offset class.
	ts, err := NewTableSet(4, 2, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ts.SingleCycle() {
		t.Error("degenerate config should not be a single cycle")
	}
	for m := int64(0); m < 4; m++ {
		got, err := ts.Sequence(m)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := Lattice(Problem{P: 4, K: 2, L: 3, S: 8, M: m})
		if !got.Equal(want) {
			t.Errorf("m=%d: %v != %v", m, got, want)
		}
	}
}

func BenchmarkTableSetVsLattice(b *testing.B) {
	const p, k, l, s = 32, 256, 0, 99
	b.Run("shared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ts, err := NewTableSet(p, k, l, s)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ts.All(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("individual", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for m := int64(0); m < p; m++ {
				if _, err := Lattice(Problem{P: p, K: k, L: l, S: s, M: m}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
