package core

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomProblems yields a deterministic mix of configurations covering
// the general case, the length-1 special case and empty processors.
func randomProblems(t *testing.T, n int) []Problem {
	t.Helper()
	r := rand.New(rand.NewSource(7))
	var out []Problem
	for i := 0; i < n; i++ {
		p := r.Int63n(8) + 1
		k := r.Int63n(32) + 1
		out = append(out, Problem{
			P: p, K: k,
			L: r.Int63n(3 * k),
			S: r.Int63n(3*p*k) + 1,
			M: r.Int63n(p),
		})
	}
	return out
}

func TestLatticeIntoMatchesLattice(t *testing.T) {
	buf := make([]int64, 0, 4) // deliberately small: must grow transparently
	for _, pr := range randomProblems(t, 400) {
		want, err := Lattice(pr)
		if err != nil {
			t.Fatal(err)
		}
		got, err := LatticeInto(pr, buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Start != want.Start || got.StartLocal != want.StartLocal ||
			!reflect.DeepEqual(got.Gaps, want.Gaps) {
			t.Fatalf("%+v: LatticeInto %v != Lattice %v", pr, got, want)
		}
		buf = got.Gaps // reuse across iterations, as hot loops do
	}
}

func TestLatticeIntoReusesBuffer(t *testing.T) {
	pr := Problem{P: 4, K: 8, L: 4, S: 9, M: 1}
	buf := make([]int64, 0, 64)
	seq, err := LatticeInto(pr, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &seq.Gaps[0] != &buf[:1][0] {
		t.Fatal("LatticeInto did not reuse the provided buffer")
	}
	allocs := testing.AllocsPerRun(100, func() {
		s, err := LatticeInto(pr, buf)
		if err != nil {
			t.Fatal(err)
		}
		buf = s.Gaps
	})
	if allocs > 0 {
		t.Fatalf("LatticeInto with warm buffer allocates %.1f/op, want 0", allocs)
	}
}

func TestSequenceIntoMatchesSequence(t *testing.T) {
	for _, pr := range randomProblems(t, 200) {
		ts, err := NewTableSet(pr.P, pr.K, pr.L, pr.S)
		if err != nil {
			t.Fatal(err)
		}
		var buf []int64
		for m := int64(0); m < pr.P; m++ {
			want, err := ts.Sequence(m)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ts.SequenceInto(m, buf)
			if err != nil {
				t.Fatal(err)
			}
			if got.Start != want.Start || got.StartLocal != want.StartLocal ||
				!reflect.DeepEqual(got.Gaps, want.Gaps) {
				t.Fatalf("%+v m=%d: SequenceInto %v != Sequence %v", pr, m, got, want)
			}
			buf = got.Gaps
		}
	}
}

func TestSequenceIntoZeroAllocWarm(t *testing.T) {
	ts, err := NewTableSet(4, 8, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]int64, 0, 8)
	allocs := testing.AllocsPerRun(100, func() {
		for m := int64(0); m < 4; m++ {
			s, err := ts.SequenceInto(m, buf)
			if err != nil {
				t.Fatal(err)
			}
			buf = s.Gaps
		}
	})
	if allocs > 0 {
		t.Fatalf("SequenceInto with warm buffer allocates %.1f/op, want 0", allocs)
	}
}

func TestOffsetTablesIntoMatches(t *testing.T) {
	var ot OffsetTable
	for _, pr := range randomProblems(t, 200) {
		want, err := OffsetTables(pr)
		if err != nil {
			t.Fatal(err)
		}
		if err := OffsetTablesInto(pr, &ot); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ot, want) {
			t.Fatalf("%+v: OffsetTablesInto %+v != OffsetTables %+v", pr, ot, want)
		}
	}
}

func TestAllParallelMatchesSequential(t *testing.T) {
	// p = 64 crosses the parallel threshold in All.
	ts, err := NewTableSet(64, 16, 3, 37)
	if err != nil {
		t.Fatal(err)
	}
	all, err := ts.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 64 {
		t.Fatalf("All returned %d sequences", len(all))
	}
	for m := int64(0); m < 64; m++ {
		want, err := Lattice(Problem{P: 64, K: 16, L: 3, S: 37, M: m})
		if err != nil {
			t.Fatal(err)
		}
		if all[m].Start != want.Start || !reflect.DeepEqual(all[m].Gaps, want.Gaps) {
			t.Fatalf("m=%d: All %v != Lattice %v", m, all[m], want)
		}
	}
}
