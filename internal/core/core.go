// Package core computes local memory access sequences for regular array
// sections under cyclic(k) distributions — the subject of Kennedy,
// Nedeljković & Sethi (PPOPP'95).
//
// Given an array distributed cyclic(k) over p processors and a section
// l:u:s, every processor m owns a subsequence of the section's elements.
// Enumerated in increasing global-index order, the distances between the
// local memory addresses of consecutive owned elements form a cyclic
// sequence of period at most k: the AM table (or "memory gap" table). Node
// code uses the table to stream through local memory without computing
// global addresses.
//
// Three algorithms construct the table:
//
//   - Lattice — the paper's contribution, O(k + min(log s, log p)), based
//     on the integer-lattice basis of package lattice (Figure 5).
//   - Sorting — the baseline of Chatterjee, Gilbert, Long, Schreiber &
//     Teng (PPoPP'93), O(k log k) from sorting the first cycle of accesses.
//   - Hiranandani — the special-case O(k) method of Hiranandani, Kennedy,
//     Mellor-Crummey & Sethi (ICS'94), valid only when s mod pk < k.
//
// All three produce identical tables. A brute-force Enumerate oracle and a
// table-free Walker (Section 6.2's space/time trade-off) round out the
// API. The table is independent of the section's upper bound u; bounds
// enter only through Count, Last and Addresses.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/intmath"
	"repro/internal/lattice"
)

// Problem identifies one access-sequence computation: the distribution
// (P processors, block size K), the section lower bound L and stride S,
// and the processor M whose sequence is wanted.
//
// S must be positive; negative strides are normalized by the caller (see
// section.Ascending). L must be nonnegative: it is an array index, and
// HPF arrays are indexed from 0 (a negative Start would also be
// indistinguishable from the empty-sequence sentinel).
type Problem struct {
	P, K int64 // distribution parameters: p processors, cyclic(K)
	L, S int64 // regular section lower bound and stride (S > 0)
	M    int64 // processor number, 0 ≤ M < P
}

// Validate checks the problem parameters. All algorithms call it.
func (pr Problem) Validate() error {
	if pr.P < 1 {
		return fmt.Errorf("core: processor count %d < 1", pr.P)
	}
	if pr.K < 1 {
		return fmt.Errorf("core: block size %d < 1", pr.K)
	}
	if pr.S < 1 {
		return fmt.Errorf("core: stride %d < 1 (normalize negative strides first)", pr.S)
	}
	if pr.M < 0 || pr.M >= pr.P {
		return fmt.Errorf("core: processor %d outside [0, %d)", pr.M, pr.P)
	}
	if pr.L < 0 {
		return fmt.Errorf("core: lower bound %d < 0 (array indices start at 0)", pr.L)
	}
	pk, err := intmath.MulChecked(pr.P, pr.K)
	if err != nil {
		return fmt.Errorf("core: p*k overflows: %v", err)
	}
	pks, err := intmath.MulChecked(pk, pr.S)
	if err != nil {
		return fmt.Errorf("core: p*k*s overflows: %v", err)
	}
	if _, err := intmath.AddChecked(pr.L, pks); err != nil {
		return fmt.Errorf("core: l + p*k*s overflows: %v", err)
	}
	return nil
}

// Sequence is the result of an access-sequence computation.
//
// Start is the global index of the first section element on processor M
// (the smallest element of the unbounded section L, L+S, … owned by M), or
// -1 when M owns no elements. StartLocal is its local memory address.
// Gaps is the AM table: Gaps[t] is the local-memory distance from the
// t-th owned element to the (t+1)-th; the table is cyclic, so element
// n's address is StartLocal + sum of Gaps[(0..n-1) mod len].
type Sequence struct {
	Start      int64
	StartLocal int64
	Gaps       []int64
}

// Length returns the period of the access pattern, len(Gaps).
func (s Sequence) Length() int { return len(s.Gaps) }

// Empty reports whether the processor owns no section elements.
func (s Sequence) Empty() bool { return s.Start < 0 }

// Address returns the local memory address of the n-th owned element
// (n ≥ 0), by walking the cyclic gap table.
func (s Sequence) Address(n int64) int64 {
	if s.Empty() {
		panic("core: Address on empty sequence")
	}
	addr := s.StartLocal
	if len(s.Gaps) == 0 {
		if n == 0 {
			return addr
		}
		panic("core: Address beyond single element")
	}
	period := int64(len(s.Gaps))
	var cycleSum int64
	for _, g := range s.Gaps {
		cycleSum += g
	}
	addr += (n / period) * cycleSum
	for t := int64(0); t < n%period; t++ {
		addr += s.Gaps[t]
	}
	return addr
}

// mulMod multiplies modulo n, picking the overflow-safe path only when
// needed.
func mulMod(a, b, n int64) int64 {
	return intmath.MulModAuto(a, b, n)
}

// startScan computes the starting location for processor M and the AM
// table length (the number of solvable offset equations), shared verbatim
// between the Lattice and Sorting methods as in the paper's Section 6.1.
// When collect is non-nil it additionally appends every per-offset
// smallest index (the Sorting method's input). d and x come from the
// extended Euclid's algorithm on (S, pk).
func (pr Problem) startScan(pk, d, x int64, collect *[]int64) (start int64, length int64) {
	start = math.MaxInt64
	nd := pk / d
	lo := pr.K*pr.M - pr.L
	// The Bézout coefficient is loop invariant; reduce it once. The loop
	// body then needs only nonnegative operands, so plain % suffices.
	xr := intmath.FloorMod(x, nd)
	bigMod := nd >= 3037000499 // nd² overflows int64; use the slow path
	// Solvable equations are exactly the i ≡ 0 (mod d); step over them
	// directly (Section 5's "successive solvable equations are d offsets
	// apart").
	for i := intmath.CeilDiv(lo, d) * d; i < lo+pr.K; i += d {
		var j int64
		if bigMod {
			j = intmath.MulModBig(intmath.FloorMod(i, pk)/d, xr, nd)
		} else {
			j = (intmath.FloorMod(i, pk) / d * xr) % nd
		}
		loc := pr.L + j*pr.S
		if loc < start {
			start = loc
		}
		length++
		if collect != nil {
			*collect = append(*collect, loc)
		}
	}
	if length == 0 {
		start = -1
	}
	return start, length
}

// localAddr maps a global index to its local memory address under the
// problem's distribution (row·K + offset).
func (pr Problem) localAddr(g, pk int64) int64 {
	return intmath.FloorDiv(g, pk)*pr.K + intmath.FloorMod(g, pr.K)
}

// problemLattice builds the lattice for a validated problem, reusing the
// already-computed extended-Euclid results.
func problemLattice(pr Problem, pk, d, x int64) *lattice.Lattice {
	return &lattice.Lattice{P: pk, K: pr.K, S: pr.S, D: d, X: x}
}

// Lattice computes the access sequence with the paper's linear-time
// algorithm (Figure 5): O(k + min(log s, log p)) time, O(k) space for the
// result.
func Lattice(pr Problem) (Sequence, error) {
	return latticeImpl(pr, nil, nil)
}

// LatticeInto is Lattice emitting the gap table into buf's storage
// (capacity reused, grown only when too small). The returned Sequence's
// Gaps alias buf; use it to keep repeated constructions allocation-free.
func LatticeInto(pr Problem, buf []int64) (Sequence, error) {
	if buf == nil {
		buf = make([]int64, 0, pr.K)
	}
	return latticeImpl(pr, nil, buf)
}

// Visit records one step of the Figure 5 gap loop for tracing: the global
// index of the point examined and whether it was accepted as the next
// element on the processor (Eq 1/2) or stepped through out of range
// (the Eq 3 adjustment).
type Visit struct {
	Index    int64
	OnProc   bool
	Equation int // 1, 2 or 3, per the paper's equations
}

// LatticeTrace is Lattice but additionally returns the points visited by
// the gap loop, for reproducing the paper's Figure 6. The trace includes
// at most 2k+1 visits (Section 5.1's bound).
func LatticeTrace(pr Problem) (Sequence, []Visit, error) {
	var trace []Visit
	seq, err := latticeImpl(pr, &trace, nil)
	return seq, trace, err
}

func latticeImpl(pr Problem, trace *[]Visit, buf []int64) (Sequence, error) {
	if err := pr.Validate(); err != nil {
		return Sequence{}, err
	}
	pk := pr.P * pr.K
	d, x, _ := intmath.ExtGCD(pr.S, pk)

	// Lines 4-11: starting location and table length.
	start, length := pr.startScan(pk, d, x, nil)

	// Lines 12-18: special cases.
	switch length {
	case 0:
		return Sequence{Start: -1}, nil
	case 1:
		return Sequence{
			Start:      start,
			StartLocal: pr.localAddr(start, pk),
			Gaps:       append(buf[:0], pr.K*pr.S/d),
		}, nil
	}

	// Lines 19-30: basis vectors R and L (independent of L and M).
	lat := problemLattice(pr, pk, d, x)
	basis, ok := lat.RL()
	if !ok {
		// Unreachable: length ≥ 2 implies at least two solvable offsets in
		// a k-window, hence d < k and a basis exists.
		return Sequence{}, errors.New("core: internal: no basis despite length > 1")
	}
	br, bl := basis.R.B, basis.L.B
	gapR, gapL := basis.GapR, basis.GapL

	// Lines 31-49: the gap table.
	gaps := sizedGaps(buf, length)
	offset := intmath.FloorMod(start, pk)
	lo, hi := pr.K*pr.M, pr.K*(pr.M+1)
	g := start // tracked only for tracing
	i := int64(0)
	for i < length {
		for i < length && offset+br < hi {
			gaps[i] = gapR // Equation 1
			offset += br
			i++
			if trace != nil {
				g += basis.R.I * pr.S
				*trace = append(*trace, Visit{Index: g, OnProc: true, Equation: 1})
			}
		}
		if i == length {
			break
		}
		gaps[i] = gapL // Equation 2
		offset -= bl
		if trace != nil {
			g -= basis.L.I * pr.S
			onProc := offset >= lo
			*trace = append(*trace, Visit{Index: g, OnProc: onProc, Equation: 2})
		}
		if offset < lo {
			gaps[i] += gapR // Equation 3
			offset += br
			if trace != nil {
				g += basis.R.I * pr.S
				*trace = append(*trace, Visit{Index: g, OnProc: true, Equation: 3})
			}
		}
		i++
	}
	return Sequence{
		Start:      start,
		StartLocal: pr.localAddr(start, pk),
		Gaps:       gaps,
	}, nil
}

// Vectors returns the R/L basis for the problem's distribution and stride
// (independent of L and M), for callers that generate addresses without
// tables (Section 6.2, reference [12]). ok is false in the degenerate
// cases where the AM table has length ≤ 1 on every processor.
func Vectors(p, k, s int64) (basis lattice.Basis, ok bool, err error) {
	pr := Problem{P: p, K: k, S: s}
	pr.M = 0
	if err := pr.Validate(); err != nil {
		return lattice.Basis{}, false, err
	}
	lat, err := lattice.New(p, k, s)
	if err != nil {
		return lattice.Basis{}, false, err
	}
	basis, ok = lat.RL()
	return basis, ok, nil
}
