package analysis

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lang/ast"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGolden runs the analyzer over every fixture script in testdata and
// compares the rendered diagnostics against the matching .golden file.
// Each diagnostic code has a fixture named after it, plus clean.hpf
// which must produce no output. Refresh with: go test -run Golden -update
func TestGolden(t *testing.T) {
	scripts, err := filepath.Glob(filepath.Join("testdata", "*.hpf"))
	if err != nil {
		t.Fatal(err)
	}
	if len(scripts) == 0 {
		t.Fatal("no fixture scripts found")
	}
	for _, script := range scripts {
		name := strings.TrimSuffix(filepath.Base(script), ".hpf")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(script)
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			for _, d := range AnalyzeSource(string(src)) {
				sb.WriteString(d.String())
				sb.WriteByte('\n')
			}
			got := sb.String()
			goldenPath := strings.TrimSuffix(script, ".hpf") + ".golden"
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("diagnostics diverged from %s\ngot:\n%s\nwant:\n%s",
					goldenPath, got, want)
			}
		})
	}
}

// TestFixturesCoverEveryCode guards the fixture suite itself: every
// diagnostic code must be exercised by the fixture named after it.
func TestFixturesCoverEveryCode(t *testing.T) {
	codes := map[string]string{
		CodeSyntax:          "hpf001_syntax.hpf",
		CodeUndeclaredProcs: "hpf002_undeclared_procs.hpf",
		CodeUndeclaredArray: "hpf003_undeclared_array.hpf",
		CodeRedeclared:      "hpf004_redeclared.hpf",
		CodeBounds:          "hpf005_bounds.hpf",
		CodeEmptySection:    "hpf006_empty_section.hpf",
		CodeNegativeStride:  "hpf007_negative_stride.hpf",
		CodeShape:           "hpf008_shape.hpf",
		CodeOverflow:        "hpf009_overflow.hpf",
		CodeAllToAll:        "hpf010_alltoall.hpf",
		CodeZeroStride:      "hpf011_zero_stride.hpf",
		CodeTableProc:       "hpf012_table_proc.hpf",
		CodeNoopRedist:      "hpf013_noop_redist.hpf",
		CodeDeadRedist:      "hpf014_dead_redist.hpf",
		CodeDeadStore:       "hpf015_dead_store.hpf",
		CodeUninit:          "hpf016_uninit.hpf",
		CodeLayoutFix:       "hpf017_layout_fix.hpf",
		CodeCommBudget:      "hpf018_comm_budget.hpf",
	}
	for code, fixture := range codes {
		src, err := os.ReadFile(filepath.Join("testdata", fixture))
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, d := range AnalyzeSource(string(src)) {
			if d.Code == code {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("fixture %s never triggers %s", fixture, code)
		}
	}
}

// TestNegativeFixturesAreClean guards the dataflow passes against false
// positives: each *_clean.hpf fixture must produce no diagnostics at all.
func TestNegativeFixturesAreClean(t *testing.T) {
	scripts, err := filepath.Glob(filepath.Join("testdata", "*_clean.hpf"))
	if err != nil {
		t.Fatal(err)
	}
	if len(scripts) < 6 {
		t.Fatalf("expected a negative fixture per dataflow code, found %v", scripts)
	}
	for _, script := range scripts {
		src, err := os.ReadFile(script)
		if err != nil {
			t.Fatal(err)
		}
		if diags := AnalyzeSource(string(src)); len(diags) != 0 {
			t.Errorf("%s should be clean, got %v", script, diags)
		}
	}
}

// TestRulesCoverEveryCode keeps the Rules metadata in sync with the code
// constants: every code a fixture exercises must have a rules entry.
func TestRulesCoverEveryCode(t *testing.T) {
	byCode := map[string]Rule{}
	for _, r := range Rules() {
		byCode[r.Code] = r
	}
	for i := 1; i <= 18; i++ {
		code := fmt.Sprintf("HPF%03d", i)
		if _, ok := byCode[code]; !ok {
			t.Errorf("Rules() missing %s", code)
		}
	}
	if len(byCode) != 18 {
		t.Errorf("Rules() has %d entries, want 18", len(byCode))
	}
}

func analyze(t *testing.T, src string) []Diagnostic {
	t.Helper()
	sc, err := ast.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Analyze(sc)
}

// withCode filters diagnostics to one code, for tests that probe a
// single pass against scripts other passes also have opinions about.
func withCode(diags []Diagnostic, code string) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Code == code {
			out = append(out, d)
		}
	}
	return out
}

// TestDistributionTracking shows the commcost lint consulting the
// *current* layout: a copy that is all-to-all before a redistribute is
// clean after it, and vice versa.
func TestDistributionTracking(t *testing.T) {
	diags := withCode(analyze(t, `
processors P(4)
array A(64) distribute cyclic(8) onto P
array B(64) distribute cyclic(8) onto P
B(0:9) = A(0:9)
redistribute B cyclic(2)
B(0:9) = A(0:9)
`), CodeAllToAll)
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 HPF010, got %v", diags)
	}
	if diags[0].Line != 7 {
		t.Errorf("want HPF010 at line 7 (after redistribute), got %v", diags[0])
	}
}

// TestBlockAndCyclicResolve checks that block and cyclic specs resolve
// to concrete cyclic(k) layouts for the layout-sensitive passes.
func TestBlockAndCyclicResolve(t *testing.T) {
	// block over 4 procs of 64 cells is cyclic(16); cyclic is cyclic(1):
	// both differ from cyclic(16)? no — A block == C cyclic(16) matches.
	diags := withCode(analyze(t, `
processors P(4)
array A(64) distribute block onto P
array B(64) distribute cyclic onto P
array C(64) distribute cyclic(16) onto P
C(0:9) = A(0:9)
B(0:9) = A(0:9)
`), CodeAllToAll)
	if len(diags) != 1 {
		t.Fatalf("want 1 HPF010, got %v", diags)
	}
	if diags[0].Line != 7 {
		t.Errorf("want HPF010 on the block->cyclic copy only, got %v", diags[0])
	}
}

// TestDistributionTracking2D checks the Layout-per-dimension path: a 2-D
// copy whose layouts agree in one dimension and disagree in the other is
// flagged only for the mismatched dimension, and unknown layouts (grid
// never declared) suppress the check dimension-wise.
func TestDistributionTracking2D(t *testing.T) {
	diags := withCode(analyze(t, `
processors Q(2,2)
array M(8,12) distribute (cyclic(2),cyclic(3)) onto Q
array N(8,12) distribute (cyclic(4),cyclic(3)) onto Q
M = 1.0
N(0:7, 0:11) = M(0:7, 0:11)
sum N(0:7, 0:11)
`), CodeAllToAll)
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 HPF010, got %v", diags)
	}
	if diags[0].Line != 6 || !strings.Contains(diags[0].Message, "(dim 0)") {
		t.Errorf("want HPF010 on dim 0 of the copy, got %v", diags[0])
	}

	// U's grid R is never declared: both of U's layouts are unknown, so
	// the copy into U must produce no layout-sensitive diagnostics even
	// though M's layouts are fully known.
	diags = analyze(t, `
processors Q(2,2)
array M(8,12) distribute (cyclic(2),cyclic(3)) onto Q
array U(8,12) distribute (cyclic(2),cyclic(3)) onto R
M = 1.0
U(0:7, 0:11) = M(0:7, 0:11)
sum U(0:7, 0:11)
`)
	for _, d := range diags {
		if d.Code != CodeUndeclaredProcs {
			t.Errorf("unknown-grid script should only report HPF002, got %v", d)
		}
	}
}

// TestComposablePasses runs a single pass in isolation.
func TestComposablePasses(t *testing.T) {
	sc, err := ast.Parse(`
processors P(4)
array A(64) distribute cyclic(4) onto P
A(0:99) = 1.0
B(0:5) = 2.0
`)
	if err != nil {
		t.Fatal(err)
	}
	boundsOnly := Analyze(sc, Pass{Name: "bounds", Check: checkBounds})
	for _, d := range boundsOnly {
		if d.Code != CodeBounds {
			t.Errorf("bounds-only run leaked %v", d)
		}
	}
	if len(boundsOnly) != 1 {
		t.Errorf("want 1 bounds diagnostic, got %v", boundsOnly)
	}
}

// TestCascadeSuppression: one unknown array should not drown the report
// in follow-on diagnostics from other passes.
func TestCascadeSuppression(t *testing.T) {
	diags := analyze(t, `
processors P(4)
array A(64) distribute cyclic(4) onto P
A(0:9) = Z(0:9)
`)
	if len(diags) != 1 || diags[0].Code != CodeUndeclaredArray {
		t.Errorf("want a single HPF003, got %v", diags)
	}
}

// TestUnknownLayoutSkipsLayoutChecks: arrays on unknown arrangements
// still get bounds checks, but no layout-sensitive diagnostics.
func TestUnknownLayoutSkipsLayoutChecks(t *testing.T) {
	diags := analyze(t, `
array A(64) distribute cyclic(4) onto P
A(0:99) = 1.0
table A(0:9) on 99
`)
	var codes []string
	for _, d := range diags {
		codes = append(codes, d.Code)
	}
	want := []string{CodeUndeclaredProcs, CodeBounds}
	if strings.Join(codes, ",") != strings.Join(want, ",") {
		t.Errorf("want %v, got %v", want, diags)
	}
}

func TestHasErrors(t *testing.T) {
	if HasErrors([]Diagnostic{{Severity: Warning}}) {
		t.Error("warnings alone are not errors")
	}
	if !HasErrors([]Diagnostic{{Severity: Warning}, {Severity: Error}}) {
		t.Error("error severity not detected")
	}
	if HasErrors(nil) {
		t.Error("empty list has no errors")
	}
}

// TestAnalyzeSourceMixesParseAndSemantic: syntax errors and semantic
// diagnostics interleave in line order.
func TestAnalyzeSourceMixesParseAndSemantic(t *testing.T) {
	diags := AnalyzeSource(`processors P(4)
array A(10) distribute cyclic(2) onto P
bogus
A(0:50) = 1.0
`)
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics, got %v", diags)
	}
	if diags[0].Code != CodeSyntax || diags[0].Line != 3 {
		t.Errorf("want HPF001 at line 3, got %v", diags[0])
	}
	if diags[1].Code != CodeBounds || diags[1].Line != 4 {
		t.Errorf("want HPF005 at line 4, got %v", diags[1])
	}
}

// TestDiagnosticString pins the rendering used by hpflint and goldens.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Code: CodeBounds, Severity: Error, Line: 3, Col: 1, Message: "m"}
	if got := d.String(); got != "3:1: error[HPF005]: m" {
		t.Errorf("String() = %q", got)
	}
}
