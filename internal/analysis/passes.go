package analysis

import (
	"fmt"

	"repro/internal/intmath"
	"repro/internal/lang/ast"
	"repro/internal/section"
)

// checkDecls reports undeclared and redeclared processors and arrays
// (HPF002–HPF004), and redistribute statements targeting 2-D arrays
// (HPF008).
func checkDecls(c *Checker, st ast.Stmt) {
	switch s := st.(type) {
	case *ast.Processors:
		if len(s.Counts) == 1 {
			if c.flatName != "" {
				c.Report(CodeRedeclared, Error, s.Pos(), fmt.Sprintf(
					"flat processors already declared as %s(%d)", c.flatName, c.flatP))
			} else if _, isGrid := c.grids[s.Name]; isGrid {
				c.Report(CodeRedeclared, Error, s.Pos(), fmt.Sprintf(
					"processors %s already declared", s.Name))
			}
			return
		}
		if _, dup := c.grids[s.Name]; dup || s.Name == c.flatName {
			c.Report(CodeRedeclared, Error, s.Pos(), fmt.Sprintf(
				"processors %s already declared", s.Name))
		}
	case *ast.ArrayDecl:
		if prev := c.arrays[s.Name]; prev != nil {
			c.Report(CodeRedeclared, Error, s.Pos(), fmt.Sprintf(
				"array %s already declared at line %d", s.Name, prev.DeclPos.Line))
		}
		if len(s.Extents) == 1 {
			switch {
			case c.flatName == "":
				c.Report(CodeUndeclaredProcs, Error, s.Pos(), fmt.Sprintf(
					"array %s declared before any flat processor arrangement", s.Name))
			case s.Target != c.flatName:
				c.Report(CodeUndeclaredProcs, Error, s.Pos(), fmt.Sprintf(
					"unknown processor arrangement %q", s.Target))
			}
			return
		}
		if _, ok := c.grids[s.Target]; !ok {
			c.Report(CodeUndeclaredProcs, Error, s.Pos(), fmt.Sprintf(
				"unknown processor grid %q", s.Target))
		}
	case *ast.Redistribute:
		info := c.arrays[s.Name]
		switch {
		case info == nil:
			c.Report(CodeUndeclaredArray, Error, s.Pos(), fmt.Sprintf(
				"unknown array %q", s.Name))
		case info.Rank() != 1:
			c.Report(CodeShape, Error, s.Pos(), fmt.Sprintf(
				"redistribute supports only 1-D arrays; %s is %d-D", s.Name, info.Rank()))
		}
	case *ast.Stats:
		// The interpreter refuses stats before any machine exists; a
		// clean analysis must imply a clean run.
		if c.flatName == "" && len(c.grids) == 0 {
			c.Report(CodeUndeclaredProcs, Error, s.Pos(),
				"stats before any processors declaration")
		}
	default:
		for _, ref := range ast.Refs(st) {
			if c.arrays[ref.Name] == nil {
				c.Report(CodeUndeclaredArray, Error, st.Pos(), fmt.Sprintf(
					"unknown array %q", ref.Name))
			}
		}
	}
}

// dimLabel names a subscript position in a diagnostic: empty for 1-D
// arrays, " (dim N)" for 2-D ones.
func dimLabel(rank, d int) string {
	if rank == 1 {
		return ""
	}
	return fmt.Sprintf(" (dim %d)", d)
}

// checkBounds reports zero strides (HPF011), descending sections
// (HPF007), empty sections (HPF006), sections outside the declared
// extent (HPF005) and table statements naming processors outside the
// arrangement (HPF012).
func checkBounds(c *Checker, st ast.Stmt) {
	for _, ref := range ast.Refs(st) {
		info := c.arrays[ref.Name]
		if info == nil || ref.Whole || len(ref.Subs) != info.Rank() {
			continue
		}
		for d, t := range ref.Subs {
			lbl := dimLabel(info.Rank(), d)
			if t.Stride == 0 {
				c.Report(CodeZeroStride, Error, st.Pos(), fmt.Sprintf(
					"zero stride in section %s of %s%s", t, ref.Name, lbl))
				continue
			}
			sec := section.Section{Lo: t.Lo, Hi: t.Hi, Stride: t.Stride}
			if t.Stride < 0 {
				c.Report(CodeNegativeStride, Warning, st.Pos(), fmt.Sprintf(
					"section %s of %s%s has a negative stride; traversal order is reversed",
					t, ref.Name, lbl))
			}
			if sec.Empty() {
				c.Report(CodeEmptySection, Warning, st.Pos(), fmt.Sprintf(
					"section %s of %s%s selects no elements", t, ref.Name, lbl))
				continue
			}
			asc, _ := sec.Ascending()
			if asc.Lo < 0 || asc.Last() >= info.Extents[d] {
				c.Report(CodeBounds, Error, st.Pos(), fmt.Sprintf(
					"section %s outside %s%s extent [0, %d)", t, ref.Name, lbl, info.Extents[d]))
			}
		}
	}
	if s, ok := st.(*ast.Table); ok {
		info := c.arrays[s.Ref.Name]
		if info != nil && info.Rank() == 1 && info.Layouts[0].known() {
			if s.Proc < 0 || s.Proc >= info.Layouts[0].P {
				c.Report(CodeTableProc, Error, s.Pos(), fmt.Sprintf(
					"table processor %d outside arrangement of %d processors",
					s.Proc, info.Layouts[0].P))
			}
		}
	}
}

// refCounts resolves a reference to its per-dimension element counts.
// ok is false when the array is unknown, the rank mismatches, or a
// stride is zero (all reported by other checks).
func (c *Checker) refCounts(ref *ast.Ref) ([]int64, bool) {
	info := c.arrays[ref.Name]
	if info == nil {
		return nil, false
	}
	if ref.Whole {
		return append([]int64(nil), info.Extents...), true
	}
	if len(ref.Subs) != info.Rank() {
		return nil, false
	}
	counts := make([]int64, len(ref.Subs))
	for d, t := range ref.Subs {
		if t.Stride == 0 {
			return nil, false
		}
		counts[d] = section.Section{Lo: t.Lo, Hi: t.Hi, Stride: t.Stride}.Count()
	}
	return counts, true
}

// checkShape reports rank and element-count non-conformance (HPF008):
// references with the wrong number of subscripts, copies and elementwise
// operations whose sides select different element counts, transposes
// whose rects do not match transposed, and 2-D assignments using
// unsupported expression forms.
func checkShape(c *Checker, st ast.Stmt) {
	for _, ref := range ast.Refs(st) {
		info := c.arrays[ref.Name]
		if info != nil && !ref.Whole && len(ref.Subs) != info.Rank() {
			c.Report(CodeShape, Error, st.Pos(), fmt.Sprintf(
				"array %s is %d-D but reference %s has %d subscripts",
				ref.Name, info.Rank(), ref, len(ref.Subs)))
		}
	}
	switch s := st.(type) {
	case *ast.Table:
		if info := c.arrays[s.Ref.Name]; info != nil && info.Rank() != 1 {
			c.Report(CodeShape, Error, s.Pos(), fmt.Sprintf(
				"table supports only 1-D arrays; %s is %d-D", s.Ref.Name, info.Rank()))
		}
	case *ast.Assign:
		dstInfo := c.arrays[s.LHS.Name]
		if dstInfo == nil {
			return
		}
		dstCounts, dstOK := c.refCounts(s.LHS)
		switch rhs := s.RHS.(type) {
		case *ast.Ref:
			srcInfo := c.arrays[rhs.Name]
			if srcInfo == nil {
				return
			}
			if srcInfo.Rank() != dstInfo.Rank() {
				c.Report(CodeShape, Error, s.Pos(), fmt.Sprintf(
					"cannot assign %d-D %s to %d-D %s",
					srcInfo.Rank(), rhs.Name, dstInfo.Rank(), s.LHS.Name))
				return
			}
			c.checkConforming(s, s.LHS, dstCounts, dstOK, rhs)
		case *ast.Transpose:
			srcInfo := c.arrays[rhs.Src.Name]
			if srcInfo == nil {
				return
			}
			if dstInfo.Rank() != 2 || srcInfo.Rank() != 2 {
				c.Report(CodeShape, Error, s.Pos(), "transpose requires 2-D arrays on both sides")
				return
			}
			srcCounts, srcOK := c.refCounts(rhs.Src)
			if dstOK && srcOK &&
				(dstCounts[0] != srcCounts[1] || dstCounts[1] != srcCounts[0]) {
				c.Report(CodeShape, Error, s.Pos(), fmt.Sprintf(
					"non-conforming transpose: %s selects %dx%d but transpose %s supplies %dx%d",
					s.LHS, dstCounts[0], dstCounts[1], rhs.Src, srcCounts[1], srcCounts[0]))
			}
		case *ast.Binary:
			if dstInfo.Rank() != 1 {
				c.Report(CodeShape, Error, s.Pos(),
					"2-D assignments support fill, copy and transpose only")
				return
			}
			c.checkConforming(s, s.LHS, dstCounts, dstOK, rhs.Left)
			if r, ok := rhs.Right.(*ast.Ref); ok {
				c.checkConforming(s, s.LHS, dstCounts, dstOK, r)
			}
		}
	}
}

// checkConforming reports an HPF008 when src selects a different element
// count than the destination in any dimension.
func (c *Checker) checkConforming(st ast.Stmt, dst *ast.Ref, dstCounts []int64, dstOK bool, src *ast.Ref) {
	srcInfo := c.arrays[src.Name]
	if srcInfo == nil || !dstOK {
		return
	}
	srcCounts, ok := c.refCounts(src)
	if !ok || len(srcCounts) != len(dstCounts) {
		return
	}
	for d := range dstCounts {
		if dstCounts[d] != srcCounts[d] {
			c.Report(CodeShape, Error, st.Pos(), fmt.Sprintf(
				"non-conforming assignment%s: %s selects %d elements but %s selects %d",
				dimLabel(len(dstCounts), d), dst, dstCounts[d], src, srcCounts[d]))
		}
	}
}

// checkOverflow guards the lattice parameters the AM-table machinery
// computes with: p·k at declaration and redistribution time, and
// pk·s + l for every subscripted reference (HPF009). These are exactly
// the products the paper's O(k) table construction forms from a section
// l:u:s on a cyclic(k) layout over p processors.
func checkOverflow(c *Checker, st ast.Stmt) {
	switch s := st.(type) {
	case *ast.ArrayDecl:
		procs := c.declProcs(s)
		if procs == nil {
			return
		}
		for d := range s.Dists {
			lay := resolveLayout(s.Dists[d], procs[d], s.Extents[d])
			if !lay.known() {
				continue
			}
			if _, err := intmath.MulChecked(lay.P, lay.K); err != nil {
				c.Report(CodeOverflow, Error, s.Pos(), fmt.Sprintf(
					"p*k = %d*%d%s overflows int64", lay.P, lay.K,
					dimLabel(len(s.Dists), d)))
			}
		}
	case *ast.Redistribute:
		info := c.arrays[s.Name]
		if info == nil || info.Rank() != 1 || !info.Layouts[0].known() {
			return
		}
		lay := resolveLayout(s.Dist, info.Layouts[0].P, info.Extents[0])
		if _, err := intmath.MulChecked(lay.P, lay.K); err != nil {
			c.Report(CodeOverflow, Error, s.Pos(), fmt.Sprintf(
				"p*k = %d*%d overflows int64", lay.P, lay.K))
		}
	default:
		for _, ref := range ast.Refs(st) {
			info := c.arrays[ref.Name]
			if info == nil || ref.Whole || len(ref.Subs) != info.Rank() {
				continue
			}
			for d, t := range ref.Subs {
				lay := info.Layouts[d]
				if !lay.known() {
					continue
				}
				pk, err := intmath.MulChecked(lay.P, lay.K)
				if err != nil {
					continue // reported at the declaration
				}
				pks, err := intmath.MulChecked(pk, t.Stride)
				if err != nil {
					c.Report(CodeOverflow, Error, st.Pos(), fmt.Sprintf(
						"lattice parameter pk*s = %d*%d in %s%s overflows int64",
						pk, t.Stride, ref.Name, dimLabel(info.Rank(), d)))
					continue
				}
				if _, err := intmath.AddChecked(pks, t.Lo); err != nil {
					c.Report(CodeOverflow, Error, st.Pos(), fmt.Sprintf(
						"lattice parameter pk*s + l = %d + %d in %s%s overflows int64",
						pks, t.Lo, ref.Name, dimLabel(info.Rank(), d)))
				}
			}
		}
	}
}

// layoutStr renders a layout for HPF010 messages.
func layoutStr(l Layout) string {
	return fmt.Sprintf("cyclic(%d) on %d procs", l.K, l.P)
}

// checkCommCost flags section assignments between incompatible cyclic(k)
// layouts (HPF010, warning): when source and destination disagree on p
// or k, every destination block draws from many source processors, so
// the planned communication degenerates toward all-to-all. The check
// uses the analyzer's *current* layout for each array, i.e. the result
// of any earlier redistribute.
func checkCommCost(c *Checker, st ast.Stmt) {
	s, ok := st.(*ast.Assign)
	if !ok {
		return
	}
	dst := c.arrays[s.LHS.Name]
	if dst == nil {
		return
	}
	compare := func(srcName string, src *ArrayInfo, dstDim, srcDim int, verb string) {
		a, b := dst.Layouts[dstDim], src.Layouts[srcDim]
		if a.known() && b.known() && a != b {
			c.Report(CodeAllToAll, Warning, s.Pos(), fmt.Sprintf(
				"%s from %s [%s] to %s [%s]%s forces all-to-all communication",
				verb, srcName, layoutStr(b), s.LHS.Name, layoutStr(a),
				dimLabel(dst.Rank(), dstDim)))
		}
	}
	switch rhs := s.RHS.(type) {
	case *ast.Ref:
		src := c.arrays[rhs.Name]
		if src == nil || src.Rank() != dst.Rank() {
			return
		}
		for d := range dst.Layouts {
			compare(rhs.Name, src, d, d, "copy")
		}
	case *ast.Binary:
		if dst.Rank() != 1 {
			return
		}
		operands := []*ast.Ref{rhs.Left}
		if r, ok := rhs.Right.(*ast.Ref); ok {
			operands = append(operands, r)
		}
		for _, op := range operands {
			src := c.arrays[op.Name]
			if src == nil || src.Rank() != 1 {
				continue
			}
			compare(op.Name, src, 0, 0, "elementwise op")
		}
	case *ast.Transpose:
		src := c.arrays[rhs.Src.Name]
		if src == nil || src.Rank() != 2 || dst.Rank() != 2 {
			return
		}
		compare(rhs.Src.Name, src, 0, 1, "transpose")
		compare(rhs.Src.Name, src, 1, 0, "transpose")
	}
}
