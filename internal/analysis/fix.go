package analysis

import (
	"fmt"
	"strings"

	"repro/internal/lang/ast"
)

// This file is the autofix engine behind hpflint -fix. Only provably
// safe rewrites are applied: deleting redistribute statements flagged
// HPF013 (no-op) or HPF014 (dead) — a redistribute never changes array
// contents, so removing one the analysis proves unobserved preserves the
// program's results. Each deletion is verified by re-linting: a fix that
// would surface any diagnostic not already present (for example an
// HPF010 on a later copy that the deleted redistribute was paying for)
// is rejected.

// Fix records one applied rewrite.
type Fix struct {
	Line int    // 1-based line replaced
	Code string // the diagnostic that justified it (HPF013/HPF014)
	Old  string // the original statement text
}

// diagKey identifies a diagnostic for the re-lint subset check. Fixes
// replace lines with comments, so positions are stable across rewrites.
type diagKey struct {
	line, col int
	code      string
	msg       string
}

func diagSet(diags []Diagnostic) map[diagKey]bool {
	set := make(map[diagKey]bool, len(diags))
	for _, d := range diags {
		set[diagKey{d.Line, d.Col, d.Code, d.Message}] = true
	}
	return set
}

// introducesNew reports whether got contains any diagnostic absent from
// base — the safety condition a candidate fix must not violate.
func introducesNew(got []Diagnostic, base map[diagKey]bool) bool {
	for _, d := range got {
		if !base[diagKey{d.Line, d.Col, d.Code, d.Message}] {
			return true
		}
	}
	return false
}

// ApplyFixes deletes redistribute statements flagged HPF013/HPF014 from
// src, replacing each with a comment so line numbers stay stable. The
// candidates are applied one at a time in line order; a candidate whose
// removal would introduce any diagnostic not present in the original
// report is skipped. It returns the (possibly unchanged) source and the
// fixes that were applied.
func ApplyFixes(src string) (string, []Fix) {
	diags := AnalyzeSource(src)

	// Map each fixable diagnostic to its statement; only redistribute
	// statements qualify, and the parse tree is the authority on what is
	// on a line — never the raw text.
	sc, _ := ast.ParseAll(src)
	redistAt := map[int]*ast.Redistribute{}
	for _, st := range sc.Stmts {
		if r, ok := st.(*ast.Redistribute); ok {
			redistAt[r.Pos().Line] = r
		}
	}
	var candidates []Diagnostic
	for _, d := range diags {
		if (d.Code == CodeNoopRedist || d.Code == CodeDeadRedist) && redistAt[d.Line] != nil {
			candidates = append(candidates, d)
		}
	}
	if len(candidates) == 0 {
		return src, nil
	}

	lines := strings.Split(src, "\n")
	base := diagSet(diags)
	var fixes []Fix
	seen := map[int]bool{}
	for _, d := range candidates {
		if d.Line < 1 || d.Line > len(lines) || seen[d.Line] {
			continue
		}
		seen[d.Line] = true
		old := lines[d.Line-1]
		lines[d.Line-1] = fmt.Sprintf("! hpflint -fix [%s]: removed %s", d.Code, strings.TrimSpace(old))
		if introducesNew(AnalyzeSource(strings.Join(lines, "\n")), base) {
			lines[d.Line-1] = old // unsafe: this redistribute pays for something downstream
			continue
		}
		fixes = append(fixes, Fix{Line: d.Line, Code: d.Code, Old: strings.TrimSpace(old)})
	}
	if len(fixes) == 0 {
		return src, nil
	}
	return strings.Join(lines, "\n"), fixes
}
