package analysis

import (
	"repro/internal/lang/ast"
	"repro/internal/section"
)

// This file is the dataflow framework: a generic worklist solver over the
// CFG of cfg.go, plus the two concrete problems the HPF013–HPF018 passes
// consume — a forward definedness-and-layout analysis and a backward
// liveness analysis. Both lattices track, per array, the states the
// paper's access-sequence machinery makes statically decidable:
// {unwritten, written, live, dead} × the current cyclic(k) Layout.

// Direction says which way facts propagate through the CFG.
type Direction int

const (
	Forward Direction = iota
	Backward
)

// Problem describes one dataflow analysis over facts of type F. Transfer
// must treat its input as immutable (clone-on-write or pure); Join must
// be monotone for the fixed point to terminate.
type Problem[F any] struct {
	Dir      Direction
	Boundary func() F // fact at entry (Forward) or exit (Backward)
	Init     func() F // initial fact for all other blocks (bottom)
	Transfer func(F, ast.Stmt) F
	Join     func(a, b F) F
	Equal    func(a, b F) bool
}

// Solution holds the per-block fixed point: In[b] is the fact at the top
// of block b, Out[b] at the bottom (in control-flow order, regardless of
// direction).
type Solution[F any] struct {
	In, Out []F
}

// Solve iterates the problem to a fixed point with a worklist seeded in
// reverse post-order (forward) or post-order (backward). Straight-line
// scripts converge in a single pass; graphs with back edges (FORALL)
// iterate until facts stabilize.
func Solve[F any](g *CFG, p Problem[F]) *Solution[F] {
	n := len(g.Blocks)
	sol := &Solution[F]{In: make([]F, n), Out: make([]F, n)}
	for i := 0; i < n; i++ {
		sol.In[i] = p.Init()
		sol.Out[i] = p.Init()
	}

	var order []int
	if p.Dir == Forward {
		order = g.ReversePostOrder()
		sol.In[g.Entry] = p.Boundary()
	} else {
		order = g.PostOrder()
		sol.Out[g.Exit] = p.Boundary()
	}

	inList := make([]bool, n)
	work := append([]int(nil), order...)
	for _, b := range work {
		inList[b] = true
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inList[b] = false
		blk := g.Blocks[b]

		if p.Dir == Forward {
			if len(blk.Preds) > 0 {
				acc := sol.Out[blk.Preds[0]]
				for _, pr := range blk.Preds[1:] {
					acc = p.Join(acc, sol.Out[pr])
				}
				sol.In[b] = acc
			}
			out := sol.In[b]
			for _, st := range blk.Stmts {
				out = p.Transfer(out, st)
			}
			if !p.Equal(out, sol.Out[b]) {
				sol.Out[b] = out
				for _, s := range blk.Succs {
					if !inList[s] {
						work = append(work, s)
						inList[s] = true
					}
				}
			}
		} else {
			if len(blk.Succs) > 0 {
				acc := sol.In[blk.Succs[0]]
				for _, su := range blk.Succs[1:] {
					acc = p.Join(acc, sol.In[su])
				}
				sol.Out[b] = acc
			}
			in := sol.Out[b]
			for i := len(blk.Stmts) - 1; i >= 0; i-- {
				in = p.Transfer(in, blk.Stmts[i])
			}
			if !p.Equal(in, sol.In[b]) {
				sol.In[b] = in
				for _, pr := range blk.Preds {
					if !inList[pr] {
						work = append(work, pr)
						inList[pr] = true
					}
				}
			}
		}
	}
	return sol
}

// VisitForward walks every statement in control-flow order, calling visit
// with the fact holding immediately *before* each statement.
func VisitForward[F any](g *CFG, p Problem[F], sol *Solution[F], visit func(before F, st ast.Stmt)) {
	for _, b := range g.ReversePostOrder() {
		fact := sol.In[b]
		for _, st := range g.Blocks[b].Stmts {
			visit(fact, st)
			fact = p.Transfer(fact, st)
		}
	}
}

// VisitBackward walks every statement in control-flow order, calling
// visit with the fact holding immediately *after* each statement.
func VisitBackward[F any](g *CFG, p Problem[F], sol *Solution[F], visit func(after F, st ast.Stmt)) {
	for _, b := range g.ReversePostOrder() {
		blk := g.Blocks[b]
		// Facts after each statement, recovered by transferring from the
		// block's bottom fact upward.
		after := make([]F, len(blk.Stmts))
		fact := sol.Out[b]
		for i := len(blk.Stmts) - 1; i >= 0; i-- {
			after[i] = fact
			fact = p.Transfer(fact, blk.Stmts[i])
		}
		for i, st := range blk.Stmts {
			visit(after[i], st)
		}
	}
}

// ---------------------------------------------------------------------------
// Statement effects: the def/use sets the concrete problems share.

// secRef is a resolved reference: the array name plus the normalized
// (ascending) per-dimension sections it selects. full reports whether the
// reference covers every element of the array.
type secRef struct {
	name string
	secs []section.Section
	full bool
}

// resolveRef normalizes a reference against the declared extents, or
// returns ok=false when the array is unknown, the rank mismatches, or a
// stride is zero (all reported by the statement-local passes).
func resolveRef(info *ArrayInfo, ref *ast.Ref) (secRef, bool) {
	if info == nil {
		return secRef{}, false
	}
	out := secRef{name: ref.Name}
	if ref.Whole {
		out.full = true
		for _, ext := range info.Extents {
			out.secs = append(out.secs, section.Section{Lo: 0, Hi: ext - 1, Stride: 1})
		}
		return out, true
	}
	if len(ref.Subs) != info.Rank() {
		return secRef{}, false
	}
	out.full = true
	for d, t := range ref.Subs {
		if t.Stride == 0 {
			return secRef{}, false
		}
		asc, _ := section.Section{Lo: t.Lo, Hi: t.Hi, Stride: t.Stride}.Ascending()
		out.secs = append(out.secs, asc)
		if asc.Empty() || asc.Lo != 0 || asc.Stride != 1 || asc.Last() != info.Extents[d]-1 {
			out.full = false
		}
	}
	return out, true
}

// coveredBy reports whether every element a selects is also selected by
// b (per dimension: b's stride divides a's, the alignment matches, and
// a's bounds fall inside b's). Both must already be normalized ascending.
func (a secRef) coveredBy(b secRef) bool {
	if b.full {
		return true
	}
	if len(a.secs) != len(b.secs) {
		return false
	}
	for d := range a.secs {
		as, bs := a.secs[d], b.secs[d]
		if as.Empty() {
			continue
		}
		if bs.Empty() || as.Stride%bs.Stride != 0 || (as.Lo-bs.Lo)%bs.Stride != 0 {
			return false
		}
		if as.Lo < bs.Lo || as.Last() > bs.Last() {
			return false
		}
	}
	return true
}

// effects splits one statement into the arrays it reads and writes.
// Lookup maps a name to its declaration info (nil for undeclared names,
// which are skipped — HPF003 already fired). The table statement counts
// as a read: it observes the array's layout, which is exactly what the
// dead-redistribute pass must not miss.
func effects(lookup func(string) *ArrayInfo, st ast.Stmt) (reads, writes []secRef) {
	add := func(list []secRef, ref *ast.Ref) []secRef {
		if r, ok := resolveRef(lookup(ref.Name), ref); ok {
			return append(list, r)
		}
		return list
	}
	switch s := st.(type) {
	case *ast.Assign:
		writes = add(writes, s.LHS)
		switch e := s.RHS.(type) {
		case *ast.Ref:
			reads = add(reads, e)
		case *ast.Transpose:
			reads = add(reads, e.Src)
		case *ast.Binary:
			reads = add(reads, e.Left)
			if r, ok := e.Right.(*ast.Ref); ok {
				reads = add(reads, r)
			}
		}
	case *ast.Print:
		reads = add(reads, s.Ref)
	case *ast.Sum:
		reads = add(reads, s.Ref)
	case *ast.Table:
		reads = add(reads, s.Ref)
	}
	return reads, writes
}

// ---------------------------------------------------------------------------
// Forward problem: definedness × current layout.

// DefState is the write-progress half of the array lattice.
type DefState uint8

const (
	DefUnwritten DefState = iota // no element written yet
	DefPartial                   // some (or unknown which) elements written
	DefFull                      // every element written
)

// joinDef merges definedness along two paths.
func joinDef(a, b DefState) DefState {
	if a == b {
		return a
	}
	return DefPartial
}

// arrayFlow is one array's forward fact: how much of it has been written
// and the layout it currently has.
type arrayFlow struct {
	info    *ArrayInfo
	def     DefState
	layouts []Layout
}

// flowState is the whole forward fact: the symbol environment as of a
// program point. It is persistent-by-copy: transfer clones before
// mutating, so facts at different points never alias.
type flowState struct {
	flatName string
	flatP    int64
	grids    map[string][]int64
	arrays   map[string]*arrayFlow
}

func newFlowState() *flowState {
	return &flowState{
		grids:  map[string][]int64{},
		arrays: map[string]*arrayFlow{},
	}
}

func (f *flowState) clone() *flowState {
	c := &flowState{flatName: f.flatName, flatP: f.flatP,
		grids:  make(map[string][]int64, len(f.grids)),
		arrays: make(map[string]*arrayFlow, len(f.arrays))}
	for k, v := range f.grids {
		c.grids[k] = v
	}
	for k, v := range f.arrays {
		av := *v
		av.layouts = append([]Layout(nil), v.layouts...)
		c.arrays[k] = &av
	}
	return c
}

func (f *flowState) equal(g *flowState) bool {
	if f.flatName != g.flatName || f.flatP != g.flatP ||
		len(f.grids) != len(g.grids) || len(f.arrays) != len(g.arrays) {
		return false
	}
	for k := range f.grids {
		if _, ok := g.grids[k]; !ok {
			return false
		}
	}
	for k, a := range f.arrays {
		b, ok := g.arrays[k]
		if !ok || a.def != b.def || len(a.layouts) != len(b.layouts) {
			return false
		}
		for d := range a.layouts {
			if a.layouts[d] != b.layouts[d] {
				return false
			}
		}
	}
	return true
}

// join merges two forward facts: definedness joins pointwise, layouts
// that disagree become unknown, and symbols missing on one path are kept
// (their state joined with "unwritten/unknown" conservatism).
func (f *flowState) join(g *flowState) *flowState {
	out := f.clone()
	if out.flatName != g.flatName || out.flatP != g.flatP {
		out.flatName, out.flatP = "", 0
	}
	for k := range out.grids {
		if _, ok := g.grids[k]; !ok {
			delete(out.grids, k)
		}
	}
	for k, b := range g.arrays {
		a, ok := out.arrays[k]
		if !ok {
			bv := *b
			bv.layouts = append([]Layout(nil), b.layouts...)
			out.arrays[k] = &bv
			continue
		}
		a.def = joinDef(a.def, b.def)
		for d := range a.layouts {
			if d >= len(b.layouts) || a.layouts[d] != b.layouts[d] {
				a.layouts[d] = Layout{}
			}
		}
	}
	return out
}

// declProcsFlow mirrors Checker.declProcs against the flowing symbol
// environment.
func (f *flowState) declProcs(s *ast.ArrayDecl) []int64 {
	if len(s.Extents) == 1 {
		if f.flatName != "" && s.Target == f.flatName {
			return []int64{f.flatP}
		}
		return nil
	}
	if dims, ok := f.grids[s.Target]; ok {
		return dims
	}
	return nil
}

// transfer applies one statement to the forward fact. It mirrors
// Checker.track for declarations and redistributes, and additionally
// advances the definedness half of the lattice on writes.
func (f *flowState) transfer(st ast.Stmt) *flowState {
	out := f.clone()
	switch s := st.(type) {
	case *ast.Processors:
		if len(s.Counts) == 1 {
			if out.flatName == "" {
				if _, isGrid := out.grids[s.Name]; !isGrid {
					out.flatName, out.flatP = s.Name, s.Counts[0]
				}
			}
			return out
		}
		if _, dup := out.grids[s.Name]; !dup && s.Name != out.flatName {
			out.grids[s.Name] = append([]int64(nil), s.Counts...)
		}
	case *ast.ArrayDecl:
		if _, dup := out.arrays[s.Name]; dup {
			return out
		}
		info := &ArrayInfo{
			Name:    s.Name,
			DeclPos: s.Pos(),
			Extents: append([]int64(nil), s.Extents...),
			Layouts: make([]Layout, len(s.Extents)),
		}
		af := &arrayFlow{info: info, def: DefUnwritten,
			layouts: make([]Layout, len(s.Extents))}
		if procs := out.declProcs(s); procs != nil {
			for d := range s.Dists {
				af.layouts[d] = resolveLayout(s.Dists[d], procs[d], s.Extents[d])
			}
		}
		out.arrays[s.Name] = af
	case *ast.Redistribute:
		af := out.arrays[s.Name]
		if af == nil || af.info.Rank() != 1 || !af.layouts[0].known() {
			return out
		}
		out.arrays[s.Name].layouts[0] = resolveLayout(s.Dist, af.layouts[0].P, af.info.Extents[0])
	default:
		_, writes := effects(out.lookup, st)
		for _, w := range writes {
			af := out.arrays[w.name]
			if af == nil {
				continue
			}
			if w.full {
				af.def = DefFull
			} else if af.def == DefUnwritten {
				af.def = DefPartial
			}
		}
	}
	return out
}

// lookup resolves a name to its declaration info for effects().
func (f *flowState) lookup(name string) *ArrayInfo {
	if af, ok := f.arrays[name]; ok {
		return af.info
	}
	return nil
}

// flowProblem packages the forward analysis for Solve.
func flowProblem() Problem[*flowState] {
	return Problem[*flowState]{
		Dir:      Forward,
		Boundary: newFlowState,
		Init:     newFlowState,
		Transfer: func(f *flowState, st ast.Stmt) *flowState { return f.transfer(st) },
		Join:     func(a, b *flowState) *flowState { return a.join(b) },
		Equal:    func(a, b *flowState) bool { return a.equal(b) },
	}
}

// ---------------------------------------------------------------------------
// Backward problem: liveness / next observation.

// obsKind classifies what happens to an array's current value and layout
// next along the control flow.
type obsKind uint8

const (
	obsEnd       obsKind = iota // nothing: the script ends
	obsRead                     // some element (or the layout) is read
	obsOverwrite                // every element is overwritten first
	obsRedist                   // the array is redistributed again first
)

// liveInfo is one array's backward fact: its next observation, plus the
// writes that happen after this point with no intervening read (the kill
// set the dead-store pass checks coverage against).
type liveInfo struct {
	kind    obsKind
	line    int // line of the observing statement; 0 for obsEnd
	pending []pendingWrite
}

// pendingWrite is a later write with no read between it and the current
// program point.
type pendingWrite struct {
	ref  secRef
	line int
}

// liveState maps array name -> backward fact. Arrays absent from the map
// are at the boundary state (obsEnd, nothing pending).
type liveState struct {
	lookup func(string) *ArrayInfo
	m      map[string]*liveInfo
}

func (l *liveState) clone() *liveState {
	c := &liveState{lookup: l.lookup, m: make(map[string]*liveInfo, len(l.m))}
	for k, v := range l.m {
		lv := *v
		lv.pending = append([]pendingWrite(nil), v.pending...)
		c.m[k] = &lv
	}
	return c
}

func (l *liveState) get(name string) *liveInfo {
	if v, ok := l.m[name]; ok {
		return v
	}
	v := &liveInfo{kind: obsEnd}
	l.m[name] = v
	return v
}

func (l *liveState) equal(g *liveState) bool {
	boundary := liveInfo{kind: obsEnd}
	at := func(s *liveState, k string) *liveInfo {
		if v, ok := s.m[k]; ok {
			return v
		}
		return &boundary
	}
	for k := range l.m {
		a, b := at(l, k), at(g, k)
		if a.kind != b.kind || a.line != b.line || len(a.pending) != len(b.pending) {
			return false
		}
		for i := range a.pending {
			if a.pending[i].line != b.pending[i].line ||
				a.pending[i].ref.name != b.pending[i].ref.name {
				return false
			}
		}
	}
	for k := range g.m {
		if _, ok := l.m[k]; !ok {
			b := g.m[k]
			if b.kind != obsEnd || b.line != 0 || len(b.pending) != 0 {
				return false
			}
		}
	}
	return true
}

// join merges backward facts from two successor paths. An array absent
// from a side's map is at that side's boundary state (obsEnd, nothing
// pending). Paths that disagree on the next observation join to "may be
// read" — the summary under which no waste diagnostic fires — and the
// pending kill sets intersect: only writes that happen on every path may
// justify a dead store.
func (l *liveState) join(g *liveState) *liveState {
	out := &liveState{lookup: l.lookup, m: map[string]*liveInfo{}}
	boundary := liveInfo{kind: obsEnd}
	at := func(s *liveState, k string) liveInfo {
		if v, ok := s.m[k]; ok {
			return *v
		}
		return boundary
	}
	keys := map[string]bool{}
	for k := range l.m {
		keys[k] = true
	}
	for k := range g.m {
		keys[k] = true
	}
	for k := range keys {
		a, b := at(l, k), at(g, k)
		v := &liveInfo{kind: a.kind, line: a.line}
		if a.kind != b.kind || a.line != b.line {
			v.kind, v.line = obsRead, 0
			out.m[k] = v
			continue
		}
		for _, pa := range a.pending {
			for _, pb := range b.pending {
				if pa.line == pb.line && pa.ref.name == pb.ref.name {
					v.pending = append(v.pending, pa)
					break
				}
			}
		}
		out.m[k] = v
	}
	return out
}

// transfer applies one statement backward: compute the fact *before* the
// statement from the fact *after* it. Writes are applied before reads so
// a statement that both reads and writes an array (A = A + 1) leaves it
// live.
func (l *liveState) transfer(st ast.Stmt) *liveState {
	out := l.clone()
	if s, ok := st.(*ast.Redistribute); ok {
		info := out.lookup(s.Name)
		if info != nil && info.Rank() == 1 {
			v := out.get(s.Name)
			v.kind, v.line = obsRedist, s.Pos().Line
			v.pending = nil // a redistribute reads every element to move it
		}
		return out
	}
	reads, writes := effects(out.lookup, st)
	for _, w := range writes {
		v := out.get(w.name)
		if w.full {
			v.kind, v.line = obsOverwrite, st.Pos().Line
			v.pending = []pendingWrite{{ref: w, line: st.Pos().Line}}
		} else {
			v.pending = append(v.pending, pendingWrite{ref: w, line: st.Pos().Line})
		}
	}
	for _, r := range reads {
		v := out.get(r.name)
		v.kind, v.line = obsRead, st.Pos().Line
		v.pending = nil
	}
	return out
}

// liveProblem packages the backward analysis for Solve. The lookup maps
// names to declaration info gathered by a pre-scan (extents never change
// after declaration, unlike layouts).
func liveProblem(lookup func(string) *ArrayInfo) Problem[*liveState] {
	mk := func() *liveState { return &liveState{lookup: lookup, m: map[string]*liveInfo{}} }
	return Problem[*liveState]{
		Dir:      Backward,
		Boundary: mk,
		Init:     mk,
		Transfer: func(l *liveState, st ast.Stmt) *liveState { return l.transfer(st) },
		Join:     func(a, b *liveState) *liveState { return a.join(b) },
		Equal:    func(a, b *liveState) bool { return a.equal(b) },
	}
}
