package analysis

import (
	"testing"

	"repro/internal/lang/ast"
	"repro/internal/section"
)

// TestSolveFixedPointOnLoop hand-builds a CFG with a back edge — the
// shape FORALL will produce — and checks both concrete problems converge
// to the conservative fixed point rather than the single-pass answer.
func TestSolveFixedPointOnLoop(t *testing.T) {
	sc, err := ast.Parse(`
processors P(4)
array A(64) distribute cyclic(4) onto P
A = 1.0
redistribute A cyclic(8)
sum A(0:9)
`)
	if err != nil {
		t.Fatal(err)
	}
	// entry -> prologue -> loop{redistribute; sum} -> exit, with the loop
	// block feeding back into itself.
	g := &CFG{Blocks: []*Block{
		{Index: 0},
		{Index: 1, Stmts: sc.Stmts[:3]},
		{Index: 2, Stmts: sc.Stmts[3:]},
		{Index: 3},
	}, Entry: 0, Exit: 3}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 2)
	g.AddEdge(2, 3)

	fp := flowProblem()
	sol := Solve(g, fp)
	in := sol.In[2].arrays["A"]
	if in == nil {
		t.Fatal("A missing from the loop-header fact")
	}
	// The first iteration enters the loop with cyclic(4); the back edge
	// brings cyclic(8). The join must stabilize at unknown, not at
	// whichever layout was seen first.
	if in.layouts[0].known() {
		t.Errorf("loop-header layout should join to unknown, got %+v", in.layouts[0])
	}
	if in.def != DefFull {
		t.Errorf("A is fully written on every path to the loop, got def=%d", in.def)
	}
	exit := sol.Out[g.Exit].arrays["A"]
	if exit == nil || exit.layouts[0].known() {
		t.Errorf("exit layout should be unknown after the loop, got %+v", exit)
	}

	lp := liveProblem(sol.Out[g.Exit].lookup)
	lsol := Solve(g, lp)
	// At the bottom of the loop block control may loop back to the sum,
	// so the next observation of A must be "read", not "end of script".
	if v := lsol.Out[2].get("A"); v.kind != obsRead {
		t.Errorf("loop bottom: next observation of A = %d, want obsRead", v.kind)
	}
}

// TestVisitOrderRecoversFacts checks VisitForward/VisitBackward agree on
// statement order, so checkDataflow's index pairing is sound.
func TestVisitOrderRecoversFacts(t *testing.T) {
	sc, err := ast.Parse(`
processors P(4)
array A(64) distribute cyclic(4) onto P
A = 1.0
sum A(0:9)
`)
	if err != nil {
		t.Fatal(err)
	}
	g := BuildCFG(sc)
	fp := flowProblem()
	fsol := Solve(g, fp)
	var fwd []ast.Stmt
	VisitForward(g, fp, fsol, func(_ *flowState, st ast.Stmt) { fwd = append(fwd, st) })
	lp := liveProblem(fsol.Out[g.Exit].lookup)
	lsol := Solve(g, lp)
	var bwd []ast.Stmt
	VisitBackward(g, lp, lsol, func(_ *liveState, st ast.Stmt) { bwd = append(bwd, st) })
	if len(fwd) != len(sc.Stmts) || len(bwd) != len(sc.Stmts) {
		t.Fatalf("visitors saw %d/%d statements, want %d", len(fwd), len(bwd), len(sc.Stmts))
	}
	for i := range fwd {
		if fwd[i] != sc.Stmts[i] || bwd[i] != sc.Stmts[i] {
			t.Errorf("statement %d visited out of order", i)
		}
	}
}

func sec(lo, hi, stride int64) section.Section {
	return section.Section{Lo: lo, Hi: hi, Stride: stride}
}

func TestCoveredBy(t *testing.T) {
	mk := func(s section.Section) secRef { return secRef{name: "A", secs: []section.Section{s}} }
	cases := []struct {
		a, b secRef
		want bool
	}{
		{mk(sec(0, 31, 2)), mk(sec(0, 63, 1)), true},  // stride 2 inside stride 1
		{mk(sec(0, 63, 1)), mk(sec(0, 31, 2)), false}, // dense not inside strided
		{mk(sec(4, 28, 8)), mk(sec(0, 60, 4)), true},  // stride multiple, aligned
		{mk(sec(5, 29, 8)), mk(sec(0, 60, 4)), false}, // misaligned phase
		{mk(sec(0, 9, 1)), mk(sec(2, 11, 1)), false},  // sticks out on the left
		{mk(sec(0, 9, 1)), secRef{name: "A", full: true}, true},
	}
	for i, c := range cases {
		if got := c.a.coveredBy(c.b); got != c.want {
			t.Errorf("case %d: coveredBy = %v, want %v", i, got, c.want)
		}
	}
}

func TestMovedEstimate(t *testing.T) {
	c8 := []Layout{{P: 4, K: 8}}
	c16 := []Layout{{P: 4, K: 16}}
	whole := []section.Section{sec(0, 319, 1)}
	// Redistributing 320 elements from cyclic(8) to cyclic(16) on 4
	// procs relocates exactly 3/4 of them (period 64: blocks 8..55 move).
	if got := movedEstimate(c16, whole, c8, whole); got != 240 {
		t.Errorf("redistribute estimate = %d, want 240", got)
	}
	// Identical layout, aligned sections: nothing moves.
	if got := movedEstimate(c8, []section.Section{sec(0, 9, 1)}, c8, []section.Section{sec(0, 9, 1)}); got != 0 {
		t.Errorf("aligned copy estimate = %d, want 0", got)
	}
	// Shift by one full block: every element changes owner.
	if got := movedEstimate(c8, []section.Section{sec(0, 311, 1)}, c8, []section.Section{sec(8, 319, 1)}); got != 312 {
		t.Errorf("shifted copy estimate = %d, want 312", got)
	}
	// Unknown layouts contribute nothing rather than guessing.
	if got := movedEstimate([]Layout{{}}, whole, c8, whole); got != 0 {
		t.Errorf("unknown layout estimate = %d, want 0", got)
	}
}
