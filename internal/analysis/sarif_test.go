package analysis_test

import (
	"encoding/json"
	"testing"

	"repro/internal/analysis"
)

func TestSARIF(t *testing.T) {
	diags := []analysis.FileDiagnostic{
		{File: "b.hpf", Diagnostic: analysis.Diagnostic{
			Code: analysis.CodeBounds, Severity: analysis.Error, Line: 3, Col: 1, Message: "out of bounds"}},
		{File: "a.hpf", Diagnostic: analysis.Diagnostic{
			Code: analysis.CodeNoopRedist, Severity: analysis.Warning, Line: 7, Col: 2, Message: "redundant"}},
	}
	raw, err := analysis.SARIF("hpflint", "test", diags)
	if err != nil {
		t.Fatal(err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID            string `json:"id"`
						DefaultConfig struct {
							Level string `json:"level"`
						} `json:"defaultConfiguration"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					Physical struct {
						Artifact struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(raw, &log); err != nil {
		t.Fatalf("emitted SARIF is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version=%q runs=%d", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "hpflint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != 18 {
		t.Errorf("rules = %d, want 18 (HPF001..HPF018)", len(run.Tool.Driver.Rules))
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	// Results are sorted by (file, line, col, code): a.hpf first.
	first := run.Results[0]
	if first.RuleID != analysis.CodeNoopRedist || first.Level != "warning" {
		t.Errorf("first result = %+v", first)
	}
	loc := first.Locations[0].Physical
	if loc.Artifact.URI != "a.hpf" || loc.Region.StartLine != 7 || loc.Region.StartColumn != 2 {
		t.Errorf("first location = %+v", loc)
	}
	if second := run.Results[1]; second.RuleID != analysis.CodeBounds || second.Level != "error" {
		t.Errorf("second result = %+v", second)
	}
}
