package analysis

import (
	"fmt"

	"repro/internal/intmath"
	"repro/internal/lang/ast"
	"repro/internal/section"
)

// This file is the reporting half of the dataflow layer: it solves the
// forward definedness×layout problem and the backward liveness problem
// from dataflow.go over the script's CFG, then walks the statements once
// emitting the communication-waste diagnostics HPF013–HPF018. Everything
// here is a warning: the constructs are legal, they just pay for
// communication (or computation) nobody observes.

// checkDataflow is the Finish hook of the "dataflow" pass.
func checkDataflow(c *Checker, sc *ast.Script) {
	g := BuildCFG(sc)

	fp := flowProblem()
	fsol := Solve(g, fp)
	final := fsol.Out[g.Exit]

	lp := liveProblem(final.lookup)
	lsol := Solve(g, lp)

	// Pair each statement with its before-forward and after-backward
	// facts. Both visitors walk the same control-flow order, so a shared
	// index lines them up.
	var before []*flowState
	VisitForward(g, fp, fsol, func(f *flowState, st ast.Stmt) {
		before = append(before, f)
	})
	var after []*liveState
	VisitBackward(g, lp, lsol, func(l *liveState, st ast.Stmt) {
		after = append(after, l)
	})

	w := &wasteWalker{c: c}
	idx := 0
	VisitForward(g, fp, fsol, func(_ *flowState, st ast.Stmt) {
		w.visit(before[idx], after[idx], st)
		idx++
	})
	w.reportBudget()
}

// wasteWalker accumulates whole-script communication totals while the
// per-statement diagnostics fire.
type wasteWalker struct {
	c           *Checker
	copyMoved   int64 // estimated elements moved by section copies/ops
	redistMoved int64 // estimated elements moved by redistributes
	heavy       *ast.Redistribute
	heavyMoved  int64
}

func (w *wasteWalker) visit(before *flowState, after *liveState, st ast.Stmt) {
	switch s := st.(type) {
	case *ast.Redistribute:
		w.visitRedistribute(before, after, s)
	case *ast.Assign:
		w.visitAssign(before, after, s)
	}
	w.checkUninit(before, st)
}

// visitRedistribute emits HPF013 (no-op) and HPF014 (dead), and adds the
// redistribute's estimated traffic to the budget.
func (w *wasteWalker) visitRedistribute(before *flowState, after *liveState, s *ast.Redistribute) {
	af := before.arrays[s.Name]
	if af == nil || af.info.Rank() != 1 {
		return // HPF003/HPF008 already fired
	}
	ext := af.info.Extents[0]
	cur := af.layouts[0]
	if cur.known() {
		next := resolveLayout(s.Dist, cur.P, ext)
		if next == cur {
			w.c.Report(CodeNoopRedist, Warning, s.Pos(), fmt.Sprintf(
				"redundant redistribute: %s already has layout %s", s.Name, layoutStr(cur)))
			return // a no-op moves nothing and is trivially "dead" too
		}
		whole := []section.Section{{Lo: 0, Hi: ext - 1, Stride: 1}}
		moved := movedEstimate([]Layout{next}, whole, []Layout{cur}, whole)
		w.redistMoved += moved
		if moved > w.heavyMoved {
			w.heavy, w.heavyMoved = s, moved
		}
	}

	switch v := after.get(s.Name); v.kind {
	case obsOverwrite:
		w.c.Report(CodeDeadRedist, Warning, s.Pos(), fmt.Sprintf(
			"dead redistribute: %s is fully overwritten at line %d before its new layout is read",
			s.Name, v.line))
	case obsRedist:
		w.c.Report(CodeDeadRedist, Warning, s.Pos(), fmt.Sprintf(
			"dead redistribute: %s is redistributed again at line %d before being read",
			s.Name, v.line))
	case obsEnd:
		w.c.Report(CodeDeadRedist, Warning, s.Pos(), fmt.Sprintf(
			"dead redistribute: %s is never read afterwards", s.Name))
	}
}

// visitAssign emits HPF015 (dead store) and HPF017 (layout suggestion)
// and adds copy traffic to the budget.
func (w *wasteWalker) visitAssign(before *flowState, after *liveState, s *ast.Assign) {
	dst, dstOK := resolveRef(before.lookup(s.LHS.Name), s.LHS)
	if !dstOK {
		return
	}
	w.checkDeadStore(after, s, dst)

	daf := before.arrays[s.LHS.Name]
	switch rhs := s.RHS.(type) {
	case *ast.Ref:
		src, ok := resolveRef(before.lookup(rhs.Name), rhs)
		if !ok {
			return
		}
		saf := before.arrays[rhs.Name]
		w.copyMoved += movedEstimate(daf.layouts, dst.secs, saf.layouts, src.secs)
		w.suggestLayout(s, dst, daf, src, saf)
	case *ast.Transpose:
		src, ok := resolveRef(before.lookup(rhs.Src.Name), rhs.Src)
		if !ok || len(src.secs) != 2 || len(dst.secs) != 2 {
			return
		}
		saf := before.arrays[rhs.Src.Name]
		// Element (i, j) of the destination rect pairs with element
		// (j, i) of the source rect, so compare against swapped dims.
		w.copyMoved += movedEstimate(daf.layouts, dst.secs,
			[]Layout{saf.layouts[1], saf.layouts[0]},
			[]section.Section{src.secs[1], src.secs[0]})
	case *ast.Binary:
		operands := []*ast.Ref{rhs.Left}
		if r, ok := rhs.Right.(*ast.Ref); ok {
			operands = append(operands, r)
		}
		for _, op := range operands {
			src, ok := resolveRef(before.lookup(op.Name), op)
			if !ok {
				continue
			}
			saf := before.arrays[op.Name]
			w.copyMoved += movedEstimate(daf.layouts, dst.secs, saf.layouts, src.secs)
		}
	}
}

// checkDeadStore fires HPF015 when every element this statement writes is
// overwritten by later writes before any read. The backward fact's
// pending list holds exactly those later writes.
func (w *wasteWalker) checkDeadStore(after *liveState, s *ast.Assign, dst secRef) {
	switch s.RHS.(type) {
	case *ast.Scalar, *ast.Ref:
	default:
		return // keep the diagnostic to plain fills and copies
	}
	total := int64(1)
	for _, sec := range dst.secs {
		total *= sec.Count()
	}
	if total == 0 {
		return // HPF006 covers empty sections
	}
	for _, pw := range after.get(dst.name).pending {
		if dst.coveredBy(pw.ref) {
			w.c.Report(CodeDeadStore, Warning, s.Pos(), fmt.Sprintf(
				"dead store: every element of %s is overwritten at line %d before any read",
				s.LHS, pw.line))
			return
		}
	}
}

// suggestLayout fires HPF017 for a plain copy that checkCommCost flagged
// HPF010 (same processor count, different k) when the sections are
// aligned such that redistributing the destination to the source's
// cyclic(k) makes the copy communication-free: identical strides and
// counts, and an offset that is a multiple of the source layout's period
// p·k, so corresponding elements always land on the same processor.
func (w *wasteWalker) suggestLayout(s *ast.Assign, dst secRef, daf *arrayFlow, src secRef, saf *arrayFlow) {
	if daf == nil || saf == nil || len(dst.secs) != 1 || len(src.secs) != 1 {
		return
	}
	dl, sl := daf.layouts[0], saf.layouts[0]
	if !dl.known() || !sl.known() || dl.P != sl.P || dl.K == sl.K {
		return
	}
	ds, ss := dst.secs[0], src.secs[0]
	if ds.Empty() || ss.Empty() || ds.Stride != ss.Stride || ds.Count() != ss.Count() {
		return
	}
	period, err := intmath.MulChecked(sl.P, sl.K)
	if err != nil || (ds.Lo-ss.Lo)%period != 0 {
		return
	}
	lcm, err := intmath.LCM(dl.P*dl.K, period)
	if err != nil {
		lcm = 0
	}
	msg := fmt.Sprintf(
		"redistribute %s cyclic(%d) before this copy to make it communication-free: "+
			"the sections are aligned, but cyclic(%d)/cyclic(%d) owners realign only every %d elements",
		dst.name, sl.K, dl.K, sl.K, lcm)
	if lcm == 0 {
		msg = fmt.Sprintf(
			"redistribute %s cyclic(%d) before this copy to make it communication-free: "+
				"the sections are aligned but the layouts interleave", dst.name, sl.K)
	}
	w.c.Report(CodeLayoutFix, Warning, s.Pos(), msg)
}

// checkUninit fires HPF016 when a statement reads an array no element of
// which has provably been written. Table is exempt: it observes the
// layout, not the values.
func (w *wasteWalker) checkUninit(before *flowState, st ast.Stmt) {
	if _, ok := st.(*ast.Table); ok {
		return
	}
	reads, _ := effects(before.lookup, st)
	seen := map[string]bool{}
	for _, r := range reads {
		if seen[r.name] {
			continue
		}
		seen[r.name] = true
		if af := before.arrays[r.name]; af != nil && af.def == DefUnwritten {
			w.c.Report(CodeUninit, Warning, st.Pos(), fmt.Sprintf(
				"array %s may be read before any element has been written", r.name))
		}
	}
}

// reportBudget fires HPF018 once per script, anchored at the heaviest
// redistribute, when redistributes move more estimated traffic than all
// section copies combined. Scripts whose copies move nothing are exempt:
// with no copies to optimize for, a redistribute's cost has no baseline
// to compare against.
func (w *wasteWalker) reportBudget() {
	if w.heavy == nil || w.copyMoved <= 0 || w.redistMoved <= w.copyMoved {
		return
	}
	w.c.Report(CodeCommBudget, Warning, w.heavy.Pos(), fmt.Sprintf(
		"redistributes move an estimated %d elements but all section copies combined move %d; "+
			"layout changes dominate this script's communication", w.redistMoved, w.copyMoved))
}

// ---------------------------------------------------------------------------
// Traffic estimation.

// sampleCap bounds the per-dimension owner sampling work; beyond it the
// sampled fraction is scaled to the full element count.
const sampleCap = 4096

// coordCap guards the owner arithmetic: sections with coordinates beyond
// it (necessarily out of bounds for any plausible array, and reported by
// HPF005/HPF009) are excluded from estimates.
const coordCap = int64(1) << 40

// owner returns the processor that holds global index i under l.
func owner(l Layout, i int64) int64 {
	return intmath.FloorDiv(i, l.K) % l.P
}

// movedEstimate estimates how many of the paired elements of two
// equally-shaped references live on different processors — the elements a
// copy (or a redistribute, with both sections the whole array) must move.
// Dimensions are sampled independently; the aligned fraction of the whole
// rectangle is the product of the per-dimension aligned fractions, which
// is exact for the separable owner function (i/k) mod p. Returns 0 when
// any layout is unknown or the shapes disagree (other passes report
// those).
func movedEstimate(dstL []Layout, dstS []section.Section, srcL []Layout, srcS []section.Section) int64 {
	if len(dstL) != len(dstS) || len(srcL) != len(srcS) || len(dstL) != len(srcL) {
		return 0
	}
	total := int64(1)
	sameFrac := 1.0
	for d := range dstS {
		if !dstL[d].known() || !srcL[d].known() {
			return 0
		}
		a, b := dstS[d], srcS[d]
		n := min(a.Count(), b.Count())
		if n <= 0 {
			return 0
		}
		if outOfRange(a) || outOfRange(b) {
			return 0
		}
		var err error
		if total, err = intmath.MulChecked(total, n); err != nil {
			return 0
		}
		sample := min(n, sampleCap)
		same := int64(0)
		for j := int64(0); j < sample; j++ {
			if owner(dstL[d], a.Element(j)) == owner(srcL[d], b.Element(j)) {
				same++
			}
		}
		sameFrac *= float64(same) / float64(sample)
	}
	return int64(float64(total)*(1-sameFrac) + 0.5)
}

// outOfRange reports whether a section's coordinates exceed the estimate
// guard.
func outOfRange(s section.Section) bool {
	return s.Lo < -coordCap || s.Lo > coordCap || s.Last() < -coordCap || s.Last() > coordCap
}
