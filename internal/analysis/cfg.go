package analysis

import "repro/internal/lang/ast"

// This file defines the control-flow graph the dataflow passes iterate
// over. A mini-HPF script is straight-line code today, so BuildCFG
// produces a single body block between a synthetic entry and exit; the
// graph shape (multiple successors, back edges) is nevertheless fully
// general, because the upcoming FORALL loop nests will introduce real
// branching and the fixed-point solver in dataflow.go must not care.

// Block is one basic block: a maximal straight-line statement sequence
// with edges to its successors.
type Block struct {
	Index        int
	Stmts        []ast.Stmt
	Succs, Preds []int
}

// CFG is a control-flow graph over a script's statements. Entry and Exit
// are synthetic empty blocks, so boundary dataflow facts have a home even
// when the body is empty or ill-formed.
type CFG struct {
	Blocks []*Block
	Entry  int
	Exit   int
}

// BuildCFG lowers a script to its control-flow graph. With no control
// flow in the language yet this is entry -> body -> exit; FORALL will
// split the body at loop headers.
func BuildCFG(sc *ast.Script) *CFG {
	g := &CFG{
		Blocks: []*Block{
			{Index: 0},
			{Index: 1, Stmts: sc.Stmts},
			{Index: 2},
		},
		Entry: 0,
		Exit:  2,
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	return g
}

// AddEdge records a control-flow edge from block a to block b.
func (g *CFG) AddEdge(a, b int) {
	g.Blocks[a].Succs = append(g.Blocks[a].Succs, b)
	g.Blocks[b].Preds = append(g.Blocks[b].Preds, a)
}

// ReversePostOrder returns the block indices in reverse post-order from
// the entry: the iteration order that makes forward dataflow converge in
// one pass over acyclic graphs and quickly otherwise.
func (g *CFG) ReversePostOrder() []int {
	post := g.postOrder()
	out := make([]int, len(post))
	for i, b := range post {
		out[len(post)-1-i] = b
	}
	return out
}

// PostOrder returns the block indices in post-order from the entry — the
// natural iteration order for backward problems.
func (g *CFG) PostOrder() []int { return g.postOrder() }

func (g *CFG) postOrder() []int {
	seen := make([]bool, len(g.Blocks))
	var out []int
	var walk func(int)
	walk = func(b int) {
		seen[b] = true
		for _, s := range g.Blocks[b].Succs {
			if !seen[s] {
				walk(s)
			}
		}
		out = append(out, b)
	}
	walk(g.Entry)
	return out
}
