package analysis

import "fmt"

// Severity ranks a diagnostic: errors would fail or miscompute at run
// time, warnings flag suspicious-but-legal constructs.
type Severity int

const (
	Warning Severity = iota
	Error
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// MarshalText lets Severity serialize as "error"/"warning" in -json
// output.
func (s Severity) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// Stable diagnostic codes. Codes are part of the tool's interface: they
// appear in golden tests, editor integrations and suppression lists, so
// they are never renumbered.
const (
	CodeSyntax          = "HPF001" // statement does not parse
	CodeUndeclaredProcs = "HPF002" // unknown processor arrangement/grid
	CodeUndeclaredArray = "HPF003" // reference to an undeclared array
	CodeRedeclared      = "HPF004" // processors or array declared twice
	CodeBounds          = "HPF005" // section outside the declared extent
	CodeEmptySection    = "HPF006" // section selects no elements
	CodeNegativeStride  = "HPF007" // descending section (reversed order)
	CodeShape           = "HPF008" // rank or element-count non-conformance
	CodeOverflow        = "HPF009" // p·k or pk·s + l overflows int64
	CodeAllToAll        = "HPF010" // copy between incompatible layouts
	CodeZeroStride      = "HPF011" // zero stride in a triplet
	CodeTableProc       = "HPF012" // table processor outside 0..p-1
	CodeNoopRedist      = "HPF013" // redistribute to the layout the array already has
	CodeDeadRedist      = "HPF014" // redistributed layout never observed
	CodeDeadStore       = "HPF015" // store fully overwritten before any read
	CodeUninit          = "HPF016" // array possibly read before any write
	CodeLayoutFix       = "HPF017" // one layout change makes a flagged copy comm-free
	CodeCommBudget      = "HPF018" // redistributes out-traffic all section copies
)

// Rule is the stable metadata for one diagnostic code, shared by the
// README table, the SARIF rules array and editor integrations.
type Rule struct {
	Code     string
	Severity Severity
	Summary  string
}

// Rules returns every diagnostic the analyzer can produce, in code order.
func Rules() []Rule {
	return []Rule{
		{CodeSyntax, Error, "statement does not parse"},
		{CodeUndeclaredProcs, Error, "undeclared processor arrangement or grid"},
		{CodeUndeclaredArray, Error, "reference to an undeclared array"},
		{CodeRedeclared, Error, "processors or array declared twice"},
		{CodeBounds, Error, "section outside the declared extent"},
		{CodeEmptySection, Warning, "section selects no elements"},
		{CodeNegativeStride, Warning, "descending section (reversed traversal order)"},
		{CodeShape, Error, "rank or element-count non-conformance"},
		{CodeOverflow, Error, "int64 overflow in lattice parameters"},
		{CodeAllToAll, Warning, "copy between incompatible cyclic(k) layouts forces all-to-all communication"},
		{CodeZeroStride, Error, "zero stride in a section triplet"},
		{CodeTableProc, Error, "table processor outside the arrangement"},
		{CodeNoopRedist, Warning, "redundant redistribute: the array already has the target layout"},
		{CodeDeadRedist, Warning, "dead redistribute: the new layout is never observed"},
		{CodeDeadStore, Warning, "dead store: every element is overwritten before any read"},
		{CodeUninit, Warning, "array may be read before any element is written"},
		{CodeLayoutFix, Warning, "a single cyclic(k) change would make this copy communication-free"},
		{CodeCommBudget, Warning, "redistributes move more estimated traffic than all section copies combined"},
	}
}

// Diagnostic is one analyzer finding, anchored to a source position.
type Diagnostic struct {
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Message  string   `json:"message"`
}

// String renders "line:col: severity[CODE]: message", the format used by
// hpflint's text output and the golden-file tests.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%d:%d: %s[%s]: %s", d.Line, d.Col, d.Severity, d.Code, d.Message)
}

// HasErrors reports whether any diagnostic in the list is an error.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}
