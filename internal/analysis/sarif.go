package analysis

import (
	"encoding/json"
	"sort"
)

// This file renders diagnostics as SARIF 2.1.0 — the Static Analysis
// Results Interchange Format CI systems ingest to annotate pull
// requests. Only the small stable core of the schema is emitted: one run,
// the tool's rule inventory (Rules), and one result per diagnostic with a
// physical location.

// FileDiagnostic pairs a diagnostic with the file it was found in, for
// tools that lint several files in one run.
type FileDiagnostic struct {
	File string `json:"file"`
	Diagnostic
}

// SortFileDiags orders diagnostics deterministically by (file, line,
// col, code) — the order hpflint prints and SARIF emits.
func SortFileDiags(diags []FileDiagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		if diags[i].Col != diags[j].Col {
			return diags[i].Col < diags[j].Col
		}
		return diags[i].Code < diags[j].Code
	})
}

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	Version        string      `json:"version,omitempty"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifText    `json:"shortDescription"`
	DefaultConfig    sarifDefault `json:"defaultConfiguration"`
}

type sarifDefault struct {
	Level string `json:"level"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	Physical sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	Artifact sarifArtifact `json:"artifactLocation"`
	Region   sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

func sarifLevel(s Severity) string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// SARIF renders the diagnostics as an indented SARIF 2.1.0 log. The
// diagnostics are emitted in deterministic (file, line, col, code) order.
func SARIF(toolName, toolVersion string, diags []FileDiagnostic) ([]byte, error) {
	sorted := append([]FileDiagnostic(nil), diags...)
	SortFileDiags(sorted)

	rules := make([]sarifRule, 0, 18)
	for _, r := range Rules() {
		rules = append(rules, sarifRule{
			ID:               r.Code,
			ShortDescription: sarifText{Text: r.Summary},
			DefaultConfig:    sarifDefault{Level: sarifLevel(r.Severity)},
		})
	}

	results := make([]sarifResult, 0, len(sorted))
	for _, d := range sorted {
		results = append(results, sarifResult{
			RuleID:  d.Code,
			Level:   sarifLevel(d.Severity),
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{Physical: sarifPhysical{
				Artifact: sarifArtifact{URI: d.File},
				Region:   sarifRegion{StartLine: d.Line, StartColumn: d.Col},
			}}},
		})
	}

	log := sarifLog{
		Schema:  "https://docs.oasis-open.org/sarif/sarif/v2.1.0/os/schemas/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: toolName, Version: toolVersion, Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}
