package analysis_test

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/lang"
	"repro/internal/lang/ast"
)

// gatherAll executes src and returns the global contents of every 1-D
// array it declares.
func gatherAll(t *testing.T, src string) map[string][]float64 {
	t.Helper()
	in := lang.New()
	if err := in.Run(src); err != nil {
		t.Fatalf("interpreter: %v", err)
	}
	sc, _ := ast.ParseAll(src)
	out := map[string][]float64{}
	for _, st := range sc.Stmts {
		d, ok := st.(*ast.ArrayDecl)
		if !ok || len(d.Extents) != 1 {
			continue
		}
		if arr, ok := in.Array(d.Name); ok {
			out[d.Name] = arr.Gather()
		}
	}
	return out
}

// TestApplyFixesOnFixtures is the acceptance gate for -fix: the HPF013
// and HPF014 fixtures must re-lint clean after fixing and execute to
// identical final array contents.
func TestApplyFixesOnFixtures(t *testing.T) {
	for _, name := range []string{"hpf013_noop_redist.hpf", "hpf014_dead_redist.hpf"} {
		t.Run(name, func(t *testing.T) {
			raw, err := os.ReadFile(filepath.Join("testdata", name))
			if err != nil {
				t.Fatal(err)
			}
			src := string(raw)
			fixed, fixes := analysis.ApplyFixes(src)
			if len(fixes) == 0 {
				t.Fatal("expected fixes to apply")
			}
			if diags := analysis.AnalyzeSource(fixed); len(diags) != 0 {
				t.Errorf("fixed script should re-lint clean, got %v", diags)
			}
			if got, want := len(strings.Split(fixed, "\n")), len(strings.Split(src, "\n")); got != want {
				t.Errorf("fix changed line count: %d -> %d", want, got)
			}
			before := gatherAll(t, src)
			after := gatherAll(t, fixed)
			if !reflect.DeepEqual(before, after) {
				t.Errorf("fix changed program results:\nbefore: %v\nafter:  %v", before, after)
			}
			for _, f := range fixes {
				if !strings.HasPrefix(f.Old, "redistribute") {
					t.Errorf("fix removed a non-redistribute statement: %+v", f)
				}
			}
		})
	}
}

// TestApplyFixesRejectsUnsafe: deleting a dead redistribute that a later
// copy's layout compatibility depends on would surface a new HPF010, so
// the engine must refuse it.
func TestApplyFixesRejectsUnsafe(t *testing.T) {
	src := `processors P(4)
array A(64) distribute cyclic(4) onto P
array B(64) distribute cyclic(8) onto P
A = 1.0
redistribute B cyclic(4)
B(0:63) = A(0:63)
`
	diags := analysis.AnalyzeSource(src)
	hasDead := false
	for _, d := range diags {
		if d.Code == analysis.CodeDeadRedist {
			hasDead = true
		}
	}
	if !hasDead {
		t.Fatalf("setup: expected an HPF014 candidate, got %v", diags)
	}
	fixed, fixes := analysis.ApplyFixes(src)
	if len(fixes) != 0 || fixed != src {
		t.Errorf("unsafe fix was applied: %+v\n%s", fixes, fixed)
	}
}

// TestApplyFixesNoCandidates: scripts without fixable diagnostics pass
// through untouched.
func TestApplyFixesNoCandidates(t *testing.T) {
	src := "processors P(4)\narray A(8) distribute cyclic(2) onto P\nA = 1.0\nsum A(0:7)\n"
	fixed, fixes := analysis.ApplyFixes(src)
	if fixed != src || len(fixes) != 0 {
		t.Errorf("clean script was rewritten: %+v", fixes)
	}
}
