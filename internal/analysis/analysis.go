// Package analysis is a static analyzer for mini-HPF scripts. It walks
// the typed syntax tree of internal/lang/ast — the same tree the
// interpreter executes — and reports, before anything runs:
//
//   - undeclared or redeclared processors and arrays (HPF002–HPF004)
//   - sections outside the declared extents (HPF005)
//   - empty sections, descending sections and zero strides
//     (HPF006, HPF007, HPF011)
//   - shape non-conformance in copies, elementwise ops and transposes
//     (HPF008)
//   - int64 overflow in the lattice parameters p·k and pk·s + l that the
//     AM-table machinery computes with (HPF009)
//   - section copies between incompatible cyclic(k) layouts, which force
//     all-to-all communication (HPF010)
//   - table statements naming processors outside the arrangement (HPF012)
//
// The analyzer tracks the *current* distribution of every array across
// redistribute statements, so layout-sensitive checks apply to the
// layout an array will actually have when a statement runs.
//
// Checks are organized as composable passes (see Pass); Analyze runs
// DefaultPasses over each statement in order, updating the symbol table
// between statements.
package analysis

import (
	"sort"

	"repro/internal/intmath"
	"repro/internal/lang/ast"
)

// Layout is the analyzer's view of one dimension's distribution: a
// cyclic(K) layout over P processors. P == 0 means unknown (the array
// was declared onto an unknown arrangement); layout-sensitive checks
// skip unknown layouts.
type Layout struct {
	P, K int64
}

// known reports whether the layout was resolved at declaration time.
func (l Layout) known() bool { return l.P > 0 && l.K > 0 }

// ArrayInfo is the symbol-table entry for a declared array.
type ArrayInfo struct {
	Name    string
	DeclPos ast.Pos
	Extents []int64  // per-dimension sizes; len is the rank (1 or 2)
	Layouts []Layout // per-dimension current distribution
}

// Rank returns the array's dimensionality.
func (a *ArrayInfo) Rank() int { return len(a.Extents) }

// Checker carries the symbol table and accumulated diagnostics while
// passes walk a script.
type Checker struct {
	diags    []Diagnostic
	flatName string
	flatP    int64
	grids    map[string][]int64
	arrays   map[string]*ArrayInfo
}

// Report appends a diagnostic at pos.
func (c *Checker) Report(code string, sev Severity, pos ast.Pos, msg string) {
	c.diags = append(c.diags, Diagnostic{
		Code: code, Severity: sev, Line: pos.Line, Col: pos.Col, Message: msg,
	})
}

// Array returns the symbol-table entry for name, or nil.
func (c *Checker) Array(name string) *ArrayInfo { return c.arrays[name] }

// Pass is one composable analysis. Check, if set, is called once per
// statement, in script order, before the symbol table absorbs that
// statement. Finish, if set, is called once after the whole script has
// been walked — whole-script passes (the dataflow diagnostics) live
// there, with the final symbol table at their disposal.
type Pass struct {
	Name   string
	Check  func(c *Checker, st ast.Stmt)
	Finish func(c *Checker, sc *ast.Script)
}

// DefaultPasses returns the standard pass list in reporting order.
func DefaultPasses() []Pass {
	return []Pass{
		{Name: "decls", Check: checkDecls},
		{Name: "bounds", Check: checkBounds},
		{Name: "shape", Check: checkShape},
		{Name: "overflow", Check: checkOverflow},
		{Name: "commcost", Check: checkCommCost},
		{Name: "dataflow", Finish: checkDataflow},
	}
}

// Analyze runs the given passes (DefaultPasses when none are given) over
// a parsed script and returns the diagnostics sorted by position.
func Analyze(sc *ast.Script, passes ...Pass) []Diagnostic {
	if len(passes) == 0 {
		passes = DefaultPasses()
	}
	c := &Checker{
		grids:  map[string][]int64{},
		arrays: map[string]*ArrayInfo{},
	}
	for _, st := range sc.Stmts {
		for _, p := range passes {
			if p.Check != nil {
				p.Check(c, st)
			}
		}
		c.track(st)
	}
	for _, p := range passes {
		if p.Finish != nil {
			p.Finish(c, sc)
		}
	}
	sortDiags(c.diags)
	return c.diags
}

// AnalyzeSource parses src (collecting every line's syntax error as an
// HPF001 diagnostic) and analyzes the statements that did parse.
func AnalyzeSource(src string) []Diagnostic {
	sc, perrs := ast.ParseAll(src)
	diags := make([]Diagnostic, 0, len(perrs))
	for _, pe := range perrs {
		diags = append(diags, Diagnostic{
			Code: CodeSyntax, Severity: Error,
			Line: pe.Pos.Line, Col: pe.Pos.Col, Message: pe.Msg,
		})
	}
	diags = append(diags, Analyze(sc)...)
	sortDiags(diags)
	return diags
}

func sortDiags(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		if diags[i].Col != diags[j].Col {
			return diags[i].Col < diags[j].Col
		}
		return diags[i].Code < diags[j].Code
	})
}

// track updates the symbol table with a statement's declarations and
// redistributions. It never reports; the decls pass does.
func (c *Checker) track(st ast.Stmt) {
	switch s := st.(type) {
	case *ast.Processors:
		if len(s.Counts) == 1 {
			if c.flatName == "" {
				if _, isGrid := c.grids[s.Name]; !isGrid {
					c.flatName = s.Name
					c.flatP = s.Counts[0]
				}
			}
			return
		}
		if _, dup := c.grids[s.Name]; !dup && s.Name != c.flatName {
			c.grids[s.Name] = append([]int64(nil), s.Counts...)
		}
	case *ast.ArrayDecl:
		if _, dup := c.arrays[s.Name]; dup {
			return
		}
		info := &ArrayInfo{
			Name:    s.Name,
			DeclPos: s.Pos(),
			Extents: append([]int64(nil), s.Extents...),
			Layouts: make([]Layout, len(s.Extents)),
		}
		procs := c.declProcs(s)
		for d := range s.Dists {
			if procs != nil {
				info.Layouts[d] = resolveLayout(s.Dists[d], procs[d], s.Extents[d])
			}
		}
		c.arrays[s.Name] = info
	case *ast.Redistribute:
		info := c.arrays[s.Name]
		if info == nil || info.Rank() != 1 || !info.Layouts[0].known() {
			return
		}
		info.Layouts[0] = resolveLayout(s.Dist, info.Layouts[0].P, info.Extents[0])
	}
}

// declProcs returns the per-dimension processor counts a declaration
// lands on, or nil when the target arrangement is unknown.
func (c *Checker) declProcs(s *ast.ArrayDecl) []int64 {
	if len(s.Extents) == 1 {
		if c.flatName != "" && s.Target == c.flatName {
			return []int64{c.flatP}
		}
		return nil
	}
	if dims, ok := c.grids[s.Target]; ok {
		return dims
	}
	return nil
}

// resolveLayout lowers a distribution spec to a concrete cyclic(k)
// layout: block is cyclic(ceil(n/p)), cyclic is cyclic(1).
func resolveLayout(spec ast.DistSpec, p, n int64) Layout {
	if p < 1 {
		return Layout{}
	}
	switch spec.Kind {
	case ast.DistBlock:
		return Layout{P: p, K: intmath.CeilDiv(n, p)}
	case ast.DistCyclic:
		return Layout{P: p, K: 1}
	default:
		return Layout{P: p, K: spec.K}
	}
}
