package machine

import (
	"sync"
	"testing"
)

func TestGetBufCapacityAndEmpty(t *testing.T) {
	b := GetBuf(100)
	if len(b) != 0 {
		t.Fatalf("GetBuf returned len %d, want 0", len(b))
	}
	if cap(b) < 100 {
		t.Fatalf("GetBuf returned cap %d, want >= 100", cap(b))
	}
	b = append(b, 1, 2, 3)
	PutBuf(b)
	b2 := GetBuf(3)
	if len(b2) != 0 {
		t.Fatalf("recycled buffer has len %d, want 0", len(b2))
	}
}

func TestPutBufRejectsGiants(t *testing.T) {
	PutBuf(make([]float64, 0, maxPooledCap+1)) // must not panic, must not pool
	PutBuf(nil)                                // must not panic
}

// TestBufPoolConcurrentSendRecv round-trips pooled buffers through the
// machine's mailboxes under -race: every processor sends pooled payloads
// to every other and recycles what it receives.
func TestBufPoolConcurrentSendRecv(t *testing.T) {
	const procs = 8
	m := MustNew(procs)
	for round := 0; round < 20; round++ {
		m.Run(func(p *Proc) {
			me := p.Rank()
			for r := 0; r < procs; r++ {
				buf := GetBuf(4)
				buf = append(buf, float64(me), float64(r))
				p.Send(r, "pool.test", buf, nil)
			}
			for q := 0; q < procs; q++ {
				msg := p.Recv(q, "pool.test")
				if len(msg.Data) != 2 || msg.Data[0] != float64(q) || msg.Data[1] != float64(me) {
					panic("corrupted pooled payload")
				}
				PutBuf(msg.Data)
			}
		})
	}
}

func TestBufPoolParallelStress(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				b := GetBuf(i % 257)
				for j := 0; j < i%257; j++ {
					b = append(b, float64(w))
				}
				for _, v := range b {
					if v != float64(w) {
						t.Errorf("buffer shared across goroutines")
						return
					}
				}
				PutBuf(b)
			}
		}(w)
	}
	wg.Wait()
}
