package machine

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"
)

// faultRand is the per-rank decision stream. Decisions are drawn by the
// owning goroutine only, one per Send in program order, so a given
// (plan, SPMD body) pair reproduces the identical fault sequence on
// every run regardless of goroutine scheduling.
type faultRand = rand.Rand

// FaultKind names one injected fault.
type FaultKind string

const (
	FaultDrop    FaultKind = "drop"    // message silently lost in transit
	FaultDup     FaultKind = "dup"     // message delivered twice
	FaultDelay   FaultKind = "delay"   // delivery deferred by DelayBy
	FaultReorder FaultKind = "reorder" // message jumps the mailbox queue
	FaultCrash   FaultKind = "crash"   // rank panics at a machine op
)

// FaultEvent records one injected fault: rank's op-th machine operation
// (sends, receives and barriers count in program order) was perturbed.
type FaultEvent struct {
	Rank int
	Op   int64
	Kind FaultKind
	To   int    // destination rank for message faults, -1 for crash
	Tag  string // message tag for message faults
}

func (e FaultEvent) String() string {
	if e.Kind == FaultCrash {
		return fmt.Sprintf("rank %d op %d: crash", e.Rank, e.Op)
	}
	return fmt.Sprintf("rank %d op %d: %s -> %d tag=%q", e.Rank, e.Op, e.Kind, e.To, e.Tag)
}

// FaultPlan is a seeded, reproducible fault-injection plan applied
// inside Send/Recv, so every layer built on the machine (comm, redist,
// halo, hpf) is exercised unmodified. Probabilities are per-Send and
// must sum to at most 1; at most one fault is injected per message.
//
// Caveats: a duplicated payload is deep-copied (the pooled-buffer
// ownership convention survives), but the duplicate stays in the
// mailbox if the program never matches it, and a delayed message may
// land after the Run that sent it returns — chaos plans should use
// fresh machines per experiment.
type FaultPlan struct {
	Seed    int64
	Drop    float64       // P(message dropped)
	Dup     float64       // P(message delivered twice)
	Delay   float64       // P(delivery deferred by DelayBy)
	Reorder float64       // P(message prepended to the mailbox)
	DelayBy time.Duration // how long a delayed message waits (default 1ms)

	CrashRank int   // rank to crash, -1 (or out of range) = never
	CrashStep int64 // crash at that rank's CrashStep-th machine op
}

// maxDelay bounds DelayBy so a typo'd spec cannot stall runs (and CI)
// for minutes per delayed message.
const maxDelay = 10 * time.Second

// Validate reports whether the plan's parameters are usable.
func (fp *FaultPlan) Validate() error {
	for _, pr := range []struct {
		name string
		v    float64
	}{{"drop", fp.Drop}, {"dup", fp.Dup}, {"delay", fp.Delay}, {"reorder", fp.Reorder}} {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("machine: fault plan: %s probability %v outside [0, 1]", pr.name, pr.v)
		}
	}
	if sum := fp.Drop + fp.Dup + fp.Delay + fp.Reorder; sum > 1 {
		return fmt.Errorf("machine: fault plan: probabilities sum to %v > 1", sum)
	}
	if fp.DelayBy < 0 || fp.DelayBy > maxDelay {
		return fmt.Errorf("machine: fault plan: delay %v outside [0, %v]", fp.DelayBy, maxDelay)
	}
	if fp.CrashStep < 0 {
		return fmt.Errorf("machine: fault plan: crash step %d < 0", fp.CrashStep)
	}
	return nil
}

// delayBy returns the effective delay duration.
func (fp *FaultPlan) delayBy() time.Duration {
	if fp.DelayBy <= 0 {
		return time.Millisecond
	}
	return fp.DelayBy
}

// rankRand derives rank's private decision stream from the plan seed
// (splitmix-style mixing keeps adjacent seeds and ranks uncorrelated).
func (fp *FaultPlan) rankRand(rank int) *faultRand {
	z := uint64(fp.Seed) + uint64(rank+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}

// ParseFaultSpec parses the CLI fault grammar: a comma-separated list of
//
//	seed=<int>            decision-stream seed (default 1)
//	drop=<prob>           drop probability
//	dup=<prob>            duplication probability
//	reorder=<prob>        reorder probability
//	delay=<prob>[:<dur>]  delay probability and duration (default 1ms)
//	crash=<rank>@<step>   crash rank at its <step>-th machine op
//
// Example: "seed=42,drop=0.01,delay=0.05:2ms,crash=3@100".
func ParseFaultSpec(spec string) (*FaultPlan, error) {
	fp := &FaultPlan{Seed: 1, CrashRank: -1}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("machine: fault spec %q: %q is not key=value", spec, field)
		}
		var err error
		switch key {
		case "seed":
			fp.Seed, err = strconv.ParseInt(val, 10, 64)
		case "drop":
			fp.Drop, err = strconv.ParseFloat(val, 64)
		case "dup":
			fp.Dup, err = strconv.ParseFloat(val, 64)
		case "reorder":
			fp.Reorder, err = strconv.ParseFloat(val, 64)
		case "delay":
			prob, dur, hasDur := strings.Cut(val, ":")
			if fp.Delay, err = strconv.ParseFloat(prob, 64); err == nil && hasDur {
				fp.DelayBy, err = time.ParseDuration(dur)
			}
		case "crash":
			rank, step, hasStep := strings.Cut(val, "@")
			var r int64
			if r, err = strconv.ParseInt(rank, 10, 32); err == nil {
				fp.CrashRank = int(r)
				if hasStep {
					fp.CrashStep, err = strconv.ParseInt(step, 10, 64)
				}
			}
		default:
			return nil, fmt.Errorf("machine: fault spec %q: unknown key %q", spec, key)
		}
		if err != nil {
			return nil, fmt.Errorf("machine: fault spec %q: field %q: %v", spec, field, err)
		}
	}
	if err := fp.Validate(); err != nil {
		return nil, fmt.Errorf("machine: fault spec %q: %v", spec, err)
	}
	return fp, nil
}

// recordFault appends one injected-fault event to the run's log.
func (m *Machine) recordFault(e FaultEvent) {
	m.faultMu.Lock()
	m.faultLog = append(m.faultLog, e)
	m.faultMu.Unlock()
}

// FaultEvents returns the faults injected during the most recent Run,
// sorted by (rank, op). Because decisions are drawn per rank in program
// order, the sorted sequence is identical across runs of the same plan
// and body — the reproducibility contract chaos tests assert.
func (m *Machine) FaultEvents() []FaultEvent {
	m.faultMu.Lock()
	out := append([]FaultEvent(nil), m.faultLog...)
	m.faultMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Op < out[j].Op
	})
	return out
}

// FaultSummary formats a one-line per-kind count of the most recent
// run's injected faults.
func (m *Machine) FaultSummary() string {
	counts := map[FaultKind]int{}
	for _, e := range m.FaultEvents() {
		counts[e.Kind]++
	}
	total := 0
	parts := make([]string, 0, len(counts))
	for _, k := range []FaultKind{FaultDrop, FaultDup, FaultDelay, FaultReorder, FaultCrash} {
		if n := counts[k]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, n))
			total += n
		}
	}
	if total == 0 {
		return "faults: none injected"
	}
	return fmt.Sprintf("faults: injected %d (%s)", total, strings.Join(parts, " "))
}

// faultStep counts one machine operation (send, receive or barrier) on
// this processor and crashes it if the plan says so. Returns the op
// number for fault decisions. Called by the owning goroutine only.
func (p *Proc) faultStep() int64 {
	fp := p.m.faults
	if fp == nil {
		return 0
	}
	op := p.ops
	p.ops++
	if fp.CrashRank == p.rank && op == fp.CrashStep {
		p.m.recordFault(FaultEvent{Rank: p.rank, Op: op, Kind: FaultCrash, To: -1})
		telFaultsCrashes.Inc()
		panic(fmt.Sprintf("machine: fault injection: rank %d crashed at step %d (seed %d)",
			p.rank, op, fp.Seed))
	}
	return op
}

// injectSendFault draws this send's fault decision and applies it.
// Returns true when delivery was handled here (dropped, delayed,
// duplicated or reordered); false means the caller delivers normally.
func (p *Proc) injectSendFault(fp *FaultPlan, op int64, msg Message) bool {
	if p.frand == nil {
		// Sends outside Run (no decision stream) are delivered untouched.
		return false
	}
	u := p.frand.Float64()
	switch {
	case u < fp.Drop:
		p.m.recordFault(FaultEvent{Rank: p.rank, Op: op, Kind: FaultDrop, To: msg.To, Tag: msg.Tag})
		telFaultsDropped.Inc()
		return true
	case u < fp.Drop+fp.Dup:
		p.m.recordFault(FaultEvent{Rank: p.rank, Op: op, Kind: FaultDup, To: msg.To, Tag: msg.Tag})
		telFaultsDuplicated.Inc()
		p.deliver(msg.To, msg, false)
		// The duplicate owns fresh payload slices so a receiver recycling
		// the original's buffer (machine.PutBuf) cannot alias it.
		dup := msg
		dup.Data = append([]float64(nil), msg.Data...)
		dup.Ints = append([]int64(nil), msg.Ints...)
		p.deliver(msg.To, dup, false)
		return true
	case u < fp.Drop+fp.Dup+fp.Delay:
		p.m.recordFault(FaultEvent{Rank: p.rank, Op: op, Kind: FaultDelay, To: msg.To, Tag: msg.Tag})
		telFaultsDelayed.Inc()
		m := p.m
		m.inflight.Add(1)
		go func() {
			time.Sleep(fp.delayBy())
			m.progress.Add(1)
			p.deliver(msg.To, msg, false)
			m.inflight.Add(-1)
		}()
		return true
	case u < fp.Drop+fp.Dup+fp.Delay+fp.Reorder:
		p.m.recordFault(FaultEvent{Rank: p.rank, Op: op, Kind: FaultReorder, To: msg.To, Tag: msg.Tag})
		telFaultsReordered.Inc()
		p.deliver(msg.To, msg, true)
		return true
	}
	return false
}
