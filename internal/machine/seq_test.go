package machine

import (
	"testing"

	"repro/internal/telemetry"
)

// Sequence numbers are per-(sender, receiver, tag) FIFO positions:
// 1, 2, 3… in send order, independent across tags, and persistent
// across Run calls.
func TestSendSeqNumbers(t *testing.T) {
	m := MustNew(2)
	seqs := map[string][]int64{}
	m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			for i := 0; i < 3; i++ {
				p.Send(1, "a", []float64{float64(i)}, nil)
			}
			p.Send(1, "b", nil, nil)
		} else {
			for i := 0; i < 3; i++ {
				seqs["a"] = append(seqs["a"], p.Recv(0, "a").Seq)
			}
			seqs["b"] = append(seqs["b"], p.Recv(0, "b").Seq)
		}
	})
	// Second run: the "a" channel continues from 3.
	m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, "a", nil, nil)
		} else {
			seqs["a"] = append(seqs["a"], p.Recv(0, "a").Seq)
		}
	})
	want := map[string][]int64{"a": {1, 2, 3, 4}, "b": {1}}
	for tag, ws := range want {
		got := seqs[tag]
		if len(got) != len(ws) {
			t.Fatalf("tag %q: got %v, want %v", tag, got, ws)
		}
		for i := range ws {
			if got[i] != ws[i] {
				t.Errorf("tag %q: seqs %v, want %v", tag, got, ws)
				break
			}
		}
	}
}

// With tracing active, every recv event pairs with exactly one send
// event via (src, dst, tag, seq) — the edge set the trace-analysis
// layer builds its happens-before graph from.
func TestTraceSeqPairing(t *testing.T) {
	const p = 4
	tr := telemetry.StartTracing(p, 1024)
	defer telemetry.StopTracing()
	m := MustNew(p)
	m.Run(func(proc *Proc) {
		next := (proc.Rank() + 1) % p
		prev := (proc.Rank() + p - 1) % p
		for i := 0; i < 5; i++ {
			proc.Send(next, "ring", []float64{1}, nil)
			proc.Recv(prev, "ring")
		}
		proc.Barrier()
		proc.AllReduce(float64(proc.Rank()), Sum)
	})
	events := tr.Events()
	var sends, recvs int
	for _, e := range events {
		switch e.Kind {
		case telemetry.KindSend:
			sends++
			if e.Seq <= 0 {
				t.Fatalf("send event without seq: %+v", e)
			}
			if e.Dur < 0 {
				t.Fatalf("send event with negative duration: %+v", e)
			}
		case telemetry.KindRecv:
			recvs++
			if e.Seq <= 0 {
				t.Fatalf("recv event without seq: %+v", e)
			}
		}
	}
	if sends == 0 || sends != recvs {
		t.Fatalf("trace has %d sends, %d recvs", sends, recvs)
	}
	pairs := telemetry.MatchMessages(events)
	if len(pairs) != sends {
		t.Errorf("matched %d pairs, want %d (every message delivered)", len(pairs), sends)
	}
	seen := map[int]bool{}
	for _, pr := range pairs {
		if seen[pr.Send] || seen[pr.Recv] {
			t.Fatalf("event used in two pairs: %+v", pr)
		}
		seen[pr.Send], seen[pr.Recv] = true, true
	}
}
