package machine

import (
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseFaultSpec(t *testing.T) {
	fp, err := ParseFaultSpec("seed=42,drop=0.01,dup=0.02,delay=0.05:2ms,reorder=0.1,crash=3@100")
	if err != nil {
		t.Fatal(err)
	}
	want := &FaultPlan{
		Seed: 42, Drop: 0.01, Dup: 0.02, Delay: 0.05, Reorder: 0.1,
		DelayBy: 2 * time.Millisecond, CrashRank: 3, CrashStep: 100,
	}
	if !reflect.DeepEqual(fp, want) {
		t.Errorf("parsed %+v, want %+v", fp, want)
	}
	if fp, err := ParseFaultSpec(""); err != nil || fp.CrashRank != -1 {
		t.Errorf("empty spec should give a no-op plan, got %+v, %v", fp, err)
	}
	for _, bad := range []string{
		"drop",             // not key=value
		"drop=2",           // probability out of range
		"drop=0.6,dup=0.6", // probabilities sum > 1
		"delay=0.1:zzz",    // malformed duration
		"delay=0.1:30s",    // delay beyond the cap
		"crash=x",          // malformed rank
		"crash=1@-2",       // negative step
		"jitter=0.1",       // unknown key
	} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Errorf("spec %q should fail to parse", bad)
		}
	}
}

// chaosBody is a fixed message pattern: every rank sends `rounds`
// tagged messages to the next rank and drains whatever arrives. Tags
// are unique per (sender, round), so duplicates and reorderings never
// confuse the receive side, and no receive blocks indefinitely.
func chaosBody(rounds int) func(p *Proc) {
	return func(p *Proc) {
		next := (p.Rank() + 1) % p.NProcs()
		for i := 0; i < rounds; i++ {
			p.Send(next, "chaos", []float64{float64(i)}, nil)
		}
		for {
			if _, ok := p.RecvAnyTimeout("chaos", 20*time.Millisecond); !ok {
				return
			}
		}
	}
}

// TestFaultPlanDeterministic asserts the reproducibility contract: the
// same seeded plan over the same SPMD body injects the identical event
// sequence on every run, on fresh machines and on reused ones.
func TestFaultPlanDeterministic(t *testing.T) {
	plan := &FaultPlan{Seed: 7, Drop: 0.1, Dup: 0.2, Delay: 0.1, Reorder: 0.2,
		DelayBy: 100 * time.Microsecond, CrashRank: -1}
	runOnce := func() []FaultEvent {
		m := MustNew(4)
		m.SetFaults(plan)
		m.Run(chaosBody(40))
		return m.FaultEvents()
	}
	first := runOnce()
	if len(first) == 0 {
		t.Fatal("plan injected no faults; probabilities too low for the workload")
	}
	for trial := 0; trial < 3; trial++ {
		if got := runOnce(); !reflect.DeepEqual(got, first) {
			t.Fatalf("trial %d diverged:\nfirst %v\ngot   %v", trial, first, got)
		}
	}
	// A reused machine resets the decision streams per Run.
	m := MustNew(4)
	m.SetFaults(plan)
	m.Run(chaosBody(40))
	m.Run(chaosBody(40))
	if got := m.FaultEvents(); !reflect.DeepEqual(got, first) {
		t.Fatalf("second Run on one machine diverged:\nfirst %v\ngot   %v", first, got)
	}
}

// TestDroppedSendBecomesStructuredFailure: with every message dropped,
// the receive side deadlocks; the watchdog must convert the hang into a
// failure naming each rank's wait site and count the drops.
func TestDroppedSendBecomesStructuredFailure(t *testing.T) {
	m := MustNew(2)
	m.SetQuiescence(15 * time.Millisecond)
	m.SetFaults(&FaultPlan{Seed: 1, Drop: 1, CrashRank: -1})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadlock panic")
		}
		msg := r.(string)
		for _, want := range []string{
			"deadlock",
			`rank 0 parked in Recv(from=1, tag="pong")`,
			`rank 1 parked in Recv(from=0, tag="ping")`,
		} {
			if !strings.Contains(msg, want) {
				t.Errorf("diagnostic %q missing %q", msg, want)
			}
		}
		if events := m.FaultEvents(); len(events) == 0 || events[0].Kind != FaultDrop {
			t.Errorf("drop events not recorded: %v", events)
		}
	}()
	m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, "ping", nil, nil)
			p.Recv(1, "pong")
		} else {
			p.Recv(0, "ping")
			p.Send(0, "pong", nil, nil)
		}
	})
}

// TestCrashRankAtStep: the plan's crash fires at the rank's N-th
// machine op, poisons every parked peer, and is reported as the root
// cause.
func TestCrashRankAtStep(t *testing.T) {
	m := MustNew(3)
	m.SetFaults(&FaultPlan{Seed: 1, CrashRank: 1, CrashStep: 2})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected crash panic")
		}
		msg := r.(string)
		if !strings.Contains(msg, "processor 1") ||
			!strings.Contains(msg, "rank 1 crashed at step 2") {
			t.Errorf("panic %q should name the crashed rank and step", msg)
		}
	}()
	m.Run(func(p *Proc) {
		next := (p.Rank() + 1) % 3
		prev := (p.Rank() + 2) % 3
		// Ops per rank: send (0), recv (1), send (2) — rank 1 dies at its
		// second send while its peers sit in Recv.
		p.Send(next, "a", nil, nil)
		p.Recv(prev, "a")
		p.Send(next, "b", nil, nil)
		p.Recv(prev, "b")
	})
}

// TestDuplicateAndReorderDelivery: duplicated messages arrive with
// deep-copied payloads, reordered ones jump the queue; tag matching
// still routes everything and nothing hangs.
func TestDuplicateAndReorderDelivery(t *testing.T) {
	m := MustNew(2)
	m.SetFaults(&FaultPlan{Seed: 5, Dup: 1, CrashRank: -1})
	var extras atomic.Int64
	m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, "d", []float64{42}, []int64{7})
		} else {
			a, ok := p.RecvTimeout(0, "d", time.Second)
			b, bok := p.RecvTimeout(0, "d", time.Second)
			if !ok || !bok {
				t.Error("expected original and duplicate")
				return
			}
			extras.Add(1)
			if a.Data[0] != 42 || b.Data[0] != 42 || a.Ints[0] != 7 || b.Ints[0] != 7 {
				t.Errorf("duplicate corrupted: %v/%v %v/%v", a.Data, b.Data, a.Ints, b.Ints)
			}
			// The duplicate must own fresh backing arrays: recycling one
			// copy's buffer (machine.PutBuf) must not clobber the other.
			if &a.Data[0] == &b.Data[0] || &a.Ints[0] == &b.Ints[0] {
				t.Error("duplicate aliases the original payload")
			}
		}
	})
	if extras.Load() != 1 {
		t.Fatal("duplicate never delivered")
	}

	m2 := MustNew(2)
	m2.SetFaults(&FaultPlan{Seed: 5, Reorder: 1, CrashRank: -1})
	m2.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, "one", []float64{1}, nil)
			p.Send(1, "two", []float64{2}, nil)
		} else {
			// Tag matching routes both messages regardless of queue order.
			if msg := p.Recv(0, "two"); msg.Data[0] != 2 {
				t.Errorf("reordered payload corrupted: %v", msg.Data)
			}
			if msg := p.Recv(0, "one"); msg.Data[0] != 1 {
				t.Errorf("reordered payload corrupted: %v", msg.Data)
			}
		}
	})
	events := m2.FaultEvents()
	if len(events) != 2 || events[0].Kind != FaultReorder {
		t.Errorf("expected two reorder events, got %v", events)
	}
}

// TestDelayedMessageDoesNotTripWatchdog: while a delayed message is in
// flight every rank may be parked; the inflight counter must keep the
// watchdog from calling that a deadlock.
func TestDelayedMessageDoesNotTripWatchdog(t *testing.T) {
	m := MustNew(2)
	m.SetQuiescence(10 * time.Millisecond)
	m.SetFaults(&FaultPlan{Seed: 1, Delay: 1, DelayBy: 60 * time.Millisecond, CrashRank: -1})
	m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, "slow", []float64{9}, nil)
			p.Recv(1, "ack")
		} else {
			if msg := p.Recv(0, "slow"); msg.Data[0] != 9 {
				t.Errorf("delayed payload corrupted: %v", msg.Data)
			}
			p.Send(0, "ack", nil, nil)
		}
	})
	if s := m.FaultSummary(); !strings.Contains(s, "delay=") {
		t.Errorf("summary %q should count delays", s)
	}
}
