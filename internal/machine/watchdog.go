package machine

import (
	"fmt"
	"strings"
	"time"
)

// defaultQuiescence is the watchdog's default confirmation window: how
// long every live processor must stay parked with no progress before
// the run is declared deadlocked. Any deliverable message would wake
// its receiver (bumping progress) long before this.
const defaultQuiescence = 25 * time.Millisecond

// SetQuiescence sets the watchdog's quiescence window (how long an
// all-parked, no-progress state must persist before the run is aborted).
// Shorter windows detect deadlocks faster but must still comfortably
// exceed scheduler latency; the default is 25ms. d ≤ 0 restores the
// default. Set before Run, not concurrently with one.
func (m *Machine) SetQuiescence(d time.Duration) {
	if d <= 0 {
		d = defaultQuiescence
	}
	m.quiescence = d
}

// watchdog aborts the run when every live processor is parked in a
// blocking wait: with all of them waiting and no fault-delayed message
// in flight, no send can ever happen, so the SPMD program has
// deadlocked (e.g. two processors Recv-ing from each other, or a peer
// that exited without sending). The poison message carries a per-rank
// dump of wait sites.
func (m *Machine) watchdog(done <-chan struct{}) {
	tick := m.quiescence / 8
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-done:
			return
		case <-ticker.C:
			// All-live-parked is stable: a parked processor can only resume
			// if some other processor delivers a message or reaches the
			// barrier, and none is running. One confirming re-read over the
			// quiescence window filters the transient where the last
			// arrival at a barrier is between park and broadcast, and the
			// inflight counter keeps fault-delayed deliveries from being
			// mistaken for deadlock.
			active := m.active.Load()
			if active == 0 || m.parked.Load() != active || m.inflight.Load() != 0 {
				continue
			}
			before := m.progress.Load()
			select {
			case <-done:
				return
			case <-time.After(m.quiescence):
			}
			active = m.active.Load()
			if active == 0 || m.parked.Load() != active ||
				m.progress.Load() != before || m.inflight.Load() != 0 {
				continue
			}
			telWatchdogTrips.Inc()
			msg := m.deadlockReport()
			m.barrier.poison()
			for _, p := range m.procs {
				p.poisonWith(msg)
			}
			return
		}
	}
}

// deadlockReport formats the watchdog's diagnostic: one line per parked
// processor naming its wait site and how long it has been there.
// Processors whose body already returned are listed as exited.
func (m *Machine) deadlockReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine: deadlock: all live processors parked with no progress for %v",
		m.quiescence)
	now := time.Now()
	for _, p := range m.procs {
		p.mu.Lock()
		kind := p.waitKind
		site := p.waitSiteLocked()
		since := p.waitSince
		p.mu.Unlock()
		if kind == waitNone {
			fmt.Fprintf(&b, "\n  rank %d not parked (exited or running)", p.rank)
			continue
		}
		fmt.Fprintf(&b, "\n  rank %d parked in %s for %v",
			p.rank, site, now.Sub(since).Round(100*time.Microsecond))
	}
	return b.String()
}
