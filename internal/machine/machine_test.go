package machine

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("p=0 should fail")
	}
	m, err := New(4)
	if err != nil || m.NProcs() != 4 {
		t.Fatalf("New(4): %v, nprocs=%d", err, m.NProcs())
	}
}

func TestRunSPMD(t *testing.T) {
	m := MustNew(8)
	var count atomic.Int64
	seen := make([]atomic.Bool, 8)
	m.Run(func(p *Proc) {
		count.Add(1)
		seen[p.Rank()].Store(true)
		if p.NProcs() != 8 {
			t.Errorf("NProcs = %d", p.NProcs())
		}
	})
	if count.Load() != 8 {
		t.Errorf("ran %d bodies, want 8", count.Load())
	}
	for r := range seen {
		if !seen[r].Load() {
			t.Errorf("rank %d never ran", r)
		}
	}
}

func TestSendRecv(t *testing.T) {
	m := MustNew(2)
	m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, "data", []float64{1, 2, 3}, []int64{42})
		} else {
			msg := p.Recv(0, "data")
			if len(msg.Data) != 3 || msg.Data[2] != 3 || msg.Ints[0] != 42 {
				t.Errorf("bad message: %+v", msg)
			}
			if msg.From != 0 || msg.To != 1 {
				t.Errorf("bad envelope: %+v", msg)
			}
		}
	})
}

func TestRecvTagMatching(t *testing.T) {
	m := MustNew(2)
	m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			// Send out of the order the receiver asks for them.
			p.Send(1, "b", []float64{2}, nil)
			p.Send(1, "a", []float64{1}, nil)
		} else {
			a := p.Recv(0, "a")
			b := p.Recv(0, "b")
			if a.Data[0] != 1 || b.Data[0] != 2 {
				t.Errorf("tag matching failed: a=%v b=%v", a, b)
			}
		}
	})
}

func TestRecvFIFOPerSenderTag(t *testing.T) {
	m := MustNew(2)
	m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			for i := 0; i < 50; i++ {
				p.Send(1, "seq", []float64{float64(i)}, nil)
			}
		} else {
			for i := 0; i < 50; i++ {
				msg := p.Recv(0, "seq")
				if msg.Data[0] != float64(i) {
					t.Fatalf("message %d out of order: %v", i, msg.Data[0])
				}
			}
		}
	})
}

func TestRecvAny(t *testing.T) {
	m := MustNew(4)
	m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			got := map[int]bool{}
			for i := 0; i < 3; i++ {
				msg := p.RecvAny("hello")
				got[msg.From] = true
			}
			if len(got) != 3 {
				t.Errorf("expected messages from 3 distinct senders, got %v", got)
			}
		} else {
			p.Send(0, "hello", nil, nil)
		}
	})
}

func TestBarrier(t *testing.T) {
	m := MustNew(6)
	var phase atomic.Int64
	m.Run(func(p *Proc) {
		phase.Add(1)
		p.Barrier()
		// After the barrier every processor must see all 6 arrivals.
		if got := phase.Load(); got != 6 {
			t.Errorf("rank %d: phase = %d after barrier, want 6", p.Rank(), got)
		}
		p.Barrier()
		phase.Add(-1)
		p.Barrier()
		if got := phase.Load(); got != 0 {
			t.Errorf("rank %d: phase = %d after second round, want 0", p.Rank(), got)
		}
	})
}

func TestReduce(t *testing.T) {
	m := MustNew(5)
	m.Run(func(p *Proc) {
		got := p.Reduce(float64(p.Rank()+1), Sum, 2)
		if p.Rank() == 2 && got != 15 {
			t.Errorf("Reduce sum = %v, want 15", got)
		}
		if p.Rank() != 2 && got != 0 {
			t.Errorf("non-root got %v", got)
		}
	})
}

func TestAllReduceMax(t *testing.T) {
	m := MustNew(7)
	m.Run(func(p *Proc) {
		got := p.AllReduce(float64(p.Rank()), Max)
		if got != 6 {
			t.Errorf("rank %d: AllReduce max = %v, want 6", p.Rank(), got)
		}
	})
}

func TestBcast(t *testing.T) {
	m := MustNew(4)
	m.Run(func(p *Proc) {
		v := -1.0
		if p.Rank() == 1 {
			v = 99
		}
		got := p.Bcast(v, 1)
		if got != 99 {
			t.Errorf("rank %d: Bcast = %v", p.Rank(), got)
		}
	})
}

func TestGatherSlices(t *testing.T) {
	m := MustNew(3)
	m.Run(func(p *Proc) {
		local := []float64{float64(p.Rank()) * 10}
		all := p.GatherSlices(local, 0)
		if p.Rank() == 0 {
			for r := 0; r < 3; r++ {
				if all[r][0] != float64(r)*10 {
					t.Errorf("gathered[%d] = %v", r, all[r])
				}
			}
		} else if all != nil {
			t.Errorf("non-root rank %d got %v", p.Rank(), all)
		}
	})
}

func TestAllToAll(t *testing.T) {
	m := MustNew(4)
	m.Run(func(p *Proc) {
		send := make([][]float64, 4)
		for r := range send {
			send[r] = []float64{float64(p.Rank()*10 + r)}
		}
		recv := p.AllToAll(send)
		for q := range recv {
			want := float64(q*10 + p.Rank())
			if recv[q][0] != want {
				t.Errorf("rank %d: recv[%d] = %v, want %v", p.Rank(), q, recv[q], want)
			}
		}
	})
}

func TestMultipleRuns(t *testing.T) {
	m := MustNew(3)
	for round := 0; round < 4; round++ {
		m.Run(func(p *Proc) {
			next := (p.Rank() + 1) % 3
			prev := (p.Rank() + 2) % 3
			p.Send(next, "ring", []float64{float64(p.Rank())}, nil)
			msg := p.Recv(prev, "ring")
			if int(msg.Data[0]) != prev {
				t.Errorf("round %d rank %d: got %v", round, p.Rank(), msg.Data[0])
			}
			p.Barrier()
		})
	}
}

func TestPanicPropagates(t *testing.T) {
	m := MustNew(3)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic from Run")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Errorf("panic message %q does not mention cause", r)
		}
	}()
	m.Run(func(p *Proc) {
		if p.Rank() == 1 {
			panic("boom")
		}
		// Other processors block; the poison must unblock them.
		p.Recv(1, "never-sent")
	})
}

func TestMachineUsableAfterPanic(t *testing.T) {
	m := MustNew(2)
	func() {
		defer func() { recover() }()
		m.Run(func(p *Proc) {
			if p.Rank() == 0 {
				panic("first run dies")
			}
			p.Barrier()
		})
	}()
	// The machine must be reusable after the failed run.
	m.Run(func(p *Proc) {
		p.Barrier()
		if p.Rank() == 0 {
			p.Send(1, "ok", []float64{1}, nil)
		} else {
			if msg := p.Recv(0, "ok"); msg.Data[0] != 1 {
				t.Error("recovery run failed")
			}
		}
	})
}

func TestSendInvalidRankPanics(t *testing.T) {
	m := MustNew(2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(5, "x", nil, nil)
		}
	})
}

func TestStatsCounting(t *testing.T) {
	m := MustNew(3)
	m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, "x", []float64{1, 2, 3}, nil)
			p.Send(2, "x", []float64{4}, nil)
		}
		if p.Rank() != 0 {
			p.Recv(0, "x")
		}
	})
	s0 := m.Stats(0)
	if s0.MessagesSent != 2 || s0.ValuesSent != 4 {
		t.Errorf("proc 0 stats = %+v, want 2 msgs / 4 values", s0)
	}
	if s0.MessagesReceived != 0 || s0.ValuesReceived != 0 {
		t.Errorf("proc 0 received nothing but stats = %+v", s0)
	}
	if s := m.Stats(1); s.MessagesSent != 0 {
		t.Errorf("proc 1 sent nothing but stats = %+v", s)
	}
	if s := m.Stats(1); s.MessagesReceived != 1 || s.ValuesReceived != 3 {
		t.Errorf("proc 1 recv stats = %+v, want 1 msg / 3 values", s)
	}
	if s := m.Stats(2); s.MessagesReceived != 1 || s.ValuesReceived != 1 {
		t.Errorf("proc 2 recv stats = %+v, want 1 msg / 1 value", s)
	}
	total := m.TotalStats()
	if total.MessagesSent != 2 || total.ValuesSent != 4 {
		t.Errorf("total = %+v", total)
	}
	if total.MessagesReceived != 2 || total.ValuesReceived != 4 {
		t.Errorf("total recv = %+v, want 2 msgs / 4 values received", total)
	}
	m.ResetStats()
	if s := m.TotalStats(); s != (Stats{}) {
		t.Errorf("after reset: %+v", s)
	}
}

// TestStatsReceiveViaRecvAny covers the receive-side counters on the
// RecvAny path, where the sender is not known in advance.
func TestStatsReceiveViaRecvAny(t *testing.T) {
	m := MustNew(3)
	m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			for i := 0; i < 2; i++ {
				p.RecvAny("any")
			}
		} else {
			p.Send(0, "any", []float64{1, 2, 3, 4, 5}, nil)
		}
	})
	s0 := m.Stats(0)
	if s0.MessagesReceived != 2 || s0.ValuesReceived != 10 {
		t.Errorf("RecvAny stats = %+v, want 2 msgs / 10 values", s0)
	}
	total := m.TotalStats()
	if total.MessagesSent != total.MessagesReceived || total.ValuesSent != total.ValuesReceived {
		t.Errorf("send/receive totals disagree: %+v", total)
	}
}

func TestStatsAccumulateAcrossRuns(t *testing.T) {
	m := MustNew(2)
	for round := 0; round < 3; round++ {
		m.Run(func(p *Proc) {
			if p.Rank() == 0 {
				p.Send(1, "r", []float64{1, 2}, nil)
			} else {
				p.Recv(0, "r")
			}
		})
	}
	if s := m.Stats(0); s.MessagesSent != 3 || s.ValuesSent != 6 {
		t.Errorf("accumulated stats = %+v", s)
	}
}

func TestDeadlockDetected(t *testing.T) {
	m := MustNew(2)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadlock panic")
		}
		if !strings.Contains(r.(string), "deadlock") {
			t.Errorf("panic %q should mention deadlock", r)
		}
	}()
	// Both processors wait for a message the other never sends.
	m.Run(func(p *Proc) {
		p.Recv(1-p.Rank(), "never")
	})
}

func TestNoFalseDeadlockUnderChatter(t *testing.T) {
	// A long-running ping-pong must not trip the watchdog.
	m := MustNew(2)
	m.Run(func(p *Proc) {
		other := 1 - p.Rank()
		for i := 0; i < 2000; i++ {
			if p.Rank() == 0 {
				p.Send(other, "ping", []float64{float64(i)}, nil)
				p.Recv(other, "pong")
			} else {
				p.Recv(other, "ping")
				p.Send(other, "pong", nil, nil)
			}
		}
		p.Barrier()
	})
}

// TestRecvReleasesMailboxSlot is the regression test for the slice-delete
// retention bug: deleting mailbox entry i with append(box[:i], box[i+1:]...)
// left the vacated tail slot holding the last message's payload slices,
// pinning delivered payloads until some later send overwrote the slot.
func TestRecvReleasesMailboxSlot(t *testing.T) {
	m := MustNew(2)
	m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, "a", make([]float64, 4096), []int64{1, 2, 3})
			p.Send(1, "b", make([]float64, 4096), []int64{4, 5, 6})
			p.Send(1, "c", make([]float64, 4096), nil)
		} else {
			// Receive out of order so deletions happen at interior indexes too.
			p.Recv(0, "b")
			p.Recv(0, "a")
			p.Recv(0, "c")
		}
	})
	box := m.procs[1].mailbox
	if len(box) != 0 {
		t.Fatalf("mailbox should be empty, has %d messages", len(box))
	}
	for i, msg := range box[:cap(box)] {
		if msg.Data != nil || msg.Ints != nil {
			t.Errorf("vacated mailbox slot %d still pins payload (Data=%v Ints=%v)",
				i, msg.Data != nil, msg.Ints != nil)
		}
	}
}

// TestPoisonWakesAllWaitSites checks the poison path across every
// blocking wait: a rank that panics while peers are parked in Recv,
// RecvAny or Barrier must wake and poison all of them, and Run must
// report the root cause.
func TestPoisonWakesAllWaitSites(t *testing.T) {
	cases := []struct {
		name string
		wait func(p *Proc)
	}{
		{"Recv", func(p *Proc) { p.Recv(0, "never-sent") }},
		{"RecvAny", func(p *Proc) { p.RecvAny("never-sent") }},
		{"Barrier", func(p *Proc) { p.Barrier() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := MustNew(4)
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s waiters: expected Run to panic", tc.name)
				}
				if !strings.Contains(r.(string), "boom-"+tc.name) {
					t.Errorf("panic %q does not name the root cause", r)
				}
			}()
			m.Run(func(p *Proc) {
				if p.Rank() == 1 {
					panic("boom-" + tc.name)
				}
				tc.wait(p)
			})
		})
	}
}

// TestWatchdogNamesEveryParkedRank asserts the acceptance criterion: a
// deliberately omitted Send aborts within the configured window and the
// error names every parked rank with its wait site.
func TestWatchdogNamesEveryParkedRank(t *testing.T) {
	m := MustNew(3)
	m.SetQuiescence(15 * time.Millisecond)
	start := time.Now()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadlock panic")
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Errorf("watchdog took %v, far beyond the configured window", elapsed)
		}
		msg := r.(string)
		for _, want := range []string{
			"deadlock",
			`rank 0 parked in Recv(from=1, tag="halo-left")`,
			`rank 1 parked in RecvAny(tag="gather")`,
			"rank 2 parked in Barrier",
		} {
			if !strings.Contains(msg, want) {
				t.Errorf("diagnostic %q missing %q", msg, want)
			}
		}
	}()
	m.Run(func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Recv(1, "halo-left")
		case 1:
			p.RecvAny("gather")
		case 2:
			p.Barrier()
		}
	})
}

// TestWatchdogCatchesExitedPeerDeadlock: a rank that returns without
// sending leaves its peer parked forever; the watchdog must treat
// "all live ranks parked" as deadlock even though one rank exited.
func TestWatchdogCatchesExitedPeerDeadlock(t *testing.T) {
	m := MustNew(2)
	m.SetQuiescence(15 * time.Millisecond)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadlock panic")
		}
		if !strings.Contains(r.(string), `rank 0 parked in Recv(from=1, tag="gone")`) {
			t.Errorf("diagnostic %q does not name the surviving waiter", r)
		}
	}()
	m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Recv(1, "gone")
		}
		// Rank 1 exits immediately without sending.
	})
}

func TestRecvTimeoutExpires(t *testing.T) {
	m := MustNew(2)
	var timedOut atomic.Bool
	m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			if _, ok := p.RecvTimeout(1, "never", 20*time.Millisecond); !ok {
				timedOut.Store(true)
			}
		}
	})
	if !timedOut.Load() {
		t.Error("RecvTimeout should report expiry")
	}
}

func TestRecvTimeoutDelivers(t *testing.T) {
	m := MustNew(2)
	m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			msg, ok := p.RecvTimeout(1, "late", 5*time.Second)
			if !ok || msg.Data[0] != 7 {
				t.Errorf("RecvTimeout = %+v, %v; want delivery", msg, ok)
			}
		} else {
			time.Sleep(5 * time.Millisecond)
			p.Send(0, "late", []float64{7}, nil)
		}
	})
}

func TestRecvTimeoutPoll(t *testing.T) {
	m := MustNew(2)
	m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			if _, ok := p.RecvTimeout(1, "nope", 0); ok {
				t.Error("empty-mailbox poll should miss")
			}
			msg := p.Recv(1, "yes")
			if got, ok := p.RecvTimeout(1, "yes2", -1); ok || got.Tag != "" {
				t.Error("negative-deadline poll should miss")
			}
			_ = msg
		} else {
			p.Send(0, "yes", []float64{1}, nil)
		}
	})
}

func TestRecvAnyTimeout(t *testing.T) {
	m := MustNew(3)
	var got atomic.Int64
	m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			for {
				if _, ok := p.RecvAnyTimeout("burst", 20*time.Millisecond); !ok {
					return
				}
				got.Add(1)
			}
		}
		p.Send(0, "burst", nil, nil)
	})
	if got.Load() != 2 {
		t.Errorf("received %d burst messages, want 2", got.Load())
	}
}

// TestMachineDeadlineConvertsHangToFailure: WithDeadline turns a Recv
// that would hang into a structured panic naming the wait site.
func TestMachineDeadlineConvertsHangToFailure(t *testing.T) {
	m := MustNew(2)
	m.SetQuiescence(10 * time.Second) // keep the watchdog out of this test
	m.WithDeadline(25 * time.Millisecond)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadline panic")
		}
		msg := r.(string)
		if !strings.Contains(msg, `Recv(from=1, tag="never")`) || !strings.Contains(msg, "deadline") {
			t.Errorf("panic %q should name the wait site and the deadline", msg)
		}
		if !strings.Contains(msg, "processor 0") {
			t.Errorf("panic %q should name the timed-out rank", msg)
		}
	}()
	m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Recv(1, "never")
		} else {
			p.Barrier() // parked peer must be woken by the poison cascade
		}
	})
}
