package machine

import "testing"

// BenchmarkPingPong measures round-trip message latency between two
// simulated processors.
func BenchmarkPingPong(b *testing.B) {
	m := MustNew(2)
	payload := make([]float64, 64)
	b.ResetTimer()
	m.Run(func(p *Proc) {
		other := 1 - p.Rank()
		for i := 0; i < b.N; i++ {
			if p.Rank() == 0 {
				p.Send(other, "ping", payload, nil)
				p.Recv(other, "pong")
			} else {
				msg := p.Recv(other, "ping")
				p.Send(other, "pong", msg.Data, nil)
			}
		}
	})
}

// BenchmarkBarrier measures one full-machine barrier.
func BenchmarkBarrier(b *testing.B) {
	m := MustNew(8)
	b.ResetTimer()
	m.Run(func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Barrier()
		}
	})
}

// BenchmarkAllReduce measures an 8-processor reduction + broadcast.
func BenchmarkAllReduce(b *testing.B) {
	m := MustNew(8)
	b.ResetTimer()
	m.Run(func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.AllReduce(float64(p.Rank()), Sum)
		}
	})
}
