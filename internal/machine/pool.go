package machine

import "sync"

// Message payload buffers churn hard under iterative communication:
// every section copy packs one []float64 per (sender, receiver) pair and
// abandons it after unpack. The pool recycles them across Run calls so
// steady-state communication performs no payload allocation. Ownership
// follows the message: the sender takes a buffer with GetBuf, Send
// transfers it with the message, and the receiver returns it with PutBuf
// once the payload is consumed.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]float64, 0, 64)
		return &b
	},
}

// maxPooledCap bounds what PutBuf retains, so one giant transfer does
// not pin its buffer for the life of the process.
const maxPooledCap = 1 << 20

// GetBuf returns an empty buffer with capacity at least n, reusing
// pooled storage when possible.
func GetBuf(n int) []float64 {
	bp := bufPool.Get().(*[]float64)
	if cap(*bp) < n {
		*bp = make([]float64, 0, n)
	}
	return (*bp)[:0]
}

// PutBuf recycles a buffer obtained from GetBuf (or any other slice the
// caller no longer references). The caller must not touch b afterwards.
func PutBuf(b []float64) {
	if b == nil || cap(b) > maxPooledCap {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}
