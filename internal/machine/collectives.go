package machine

// This file implements collective operations on top of point-to-point
// messaging. All collectives must be called by every processor of the
// machine (SPMD), like their MPI counterparts. The implementations use a
// simple root-relative star; the machine is simulated, so topology-aware
// trees would only add complexity.

// ReduceOp combines two float64 values; it must be associative and
// commutative (sum, max, min, ...).
type ReduceOp func(a, b float64) float64

// Sum is the addition reduce operator.
func Sum(a, b float64) float64 { return a + b }

// Max is the maximum reduce operator.
func Max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Reduce combines one value per processor with op and returns the result
// on root (other processors receive 0). Every processor must call it.
func (p *Proc) Reduce(value float64, op ReduceOp, root int) float64 {
	const tag = "__reduce"
	if p.rank != root {
		p.Send(root, tag, []float64{value}, nil)
		return 0
	}
	acc := value
	for r := 0; r < p.m.nprocs; r++ {
		if r == root {
			continue
		}
		msg := p.Recv(r, tag)
		acc = op(acc, msg.Data[0])
	}
	return acc
}

// AllReduce is Reduce followed by a broadcast: every processor receives
// the combined value.
func (p *Proc) AllReduce(value float64, op ReduceOp) float64 {
	acc := p.Reduce(value, op, 0)
	return p.Bcast(acc, 0)
}

// Bcast distributes root's value to every processor and returns it.
func (p *Proc) Bcast(value float64, root int) float64 {
	const tag = "__bcast"
	if p.rank == root {
		for r := 0; r < p.m.nprocs; r++ {
			if r != root {
				p.Send(r, tag, []float64{value}, nil)
			}
		}
		return value
	}
	return p.Recv(root, tag).Data[0]
}

// GatherSlices collects one slice per processor on root, indexed by rank.
// Non-root processors receive nil. Every processor must call it.
func (p *Proc) GatherSlices(local []float64, root int) [][]float64 {
	const tag = "__gather"
	if p.rank != root {
		p.Send(root, tag, local, nil)
		return nil
	}
	out := make([][]float64, p.m.nprocs)
	out[root] = local
	for r := 0; r < p.m.nprocs; r++ {
		if r == root {
			continue
		}
		out[r] = p.Recv(r, tag).Data
	}
	return out
}

// AllToAll exchanges one slice per processor pair: send[r] goes to
// processor r, and the result's entry q holds what processor q sent here.
// nil entries are delivered as empty slices. Every processor must call it.
func (p *Proc) AllToAll(send [][]float64) [][]float64 {
	const tag = "__alltoall"
	if len(send) != p.m.nprocs {
		panic("machine: AllToAll send slice count must equal NProcs")
	}
	recv := make([][]float64, p.m.nprocs)
	recv[p.rank] = send[p.rank]
	for r := 0; r < p.m.nprocs; r++ {
		if r != p.rank {
			p.Send(r, tag, send[r], nil)
		}
	}
	for r := 0; r < p.m.nprocs; r++ {
		if r != p.rank {
			recv[r] = p.Recv(r, tag).Data
		}
	}
	return recv
}
