package machine

import "repro/internal/telemetry"

// This file implements collective operations on top of point-to-point
// messaging. All collectives must be called by every processor of the
// machine (SPMD), like their MPI counterparts. The implementations use a
// simple root-relative star; the machine is simulated, so topology-aware
// trees would only add complexity.

// ReduceOp combines two float64 values; it must be associative and
// commutative (sum, max, min, ...).
type ReduceOp func(a, b float64) float64

// Sum is the addition reduce operator.
func Sum(a, b float64) float64 { return a + b }

// Max is the maximum reduce operator.
func Max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// collectiveSpan marks the start of a collective on p's timeline when a
// tracer is active; endCollectiveSpan records it. Kept as a begin/end
// pair (not a defer closure) so the disabled path costs one atomic load.
func (p *Proc) collectiveSpan() (*telemetry.Tracer, int64) {
	tr := telemetry.ActiveTracer()
	if tr == nil {
		return nil, 0
	}
	return tr, tr.Now()
}

func (p *Proc) endCollectiveSpan(tr *telemetry.Tracer, name string, start int64) {
	if tr == nil {
		return
	}
	tr.Record(telemetry.Event{
		Kind: telemetry.KindReduce, Name: name, Rank: int32(p.rank),
		Peer: -1, Start: start, Dur: tr.Now() - start,
	})
}

// Reduce combines one value per processor with op and returns the result
// on root (other processors receive 0). Every processor must call it.
func (p *Proc) Reduce(value float64, op ReduceOp, root int) float64 {
	const tag = "__reduce"
	tr, t0 := p.collectiveSpan()
	var acc float64
	if p.rank != root {
		p.Send(root, tag, []float64{value}, nil)
	} else {
		acc = value
		for r := 0; r < p.m.nprocs; r++ {
			if r == root {
				continue
			}
			msg := p.Recv(r, tag)
			acc = op(acc, msg.Data[0])
		}
	}
	p.endCollectiveSpan(tr, "reduce", t0)
	return acc
}

// AllReduce is Reduce followed by a broadcast: every processor receives
// the combined value.
func (p *Proc) AllReduce(value float64, op ReduceOp) float64 {
	tr, t0 := p.collectiveSpan()
	acc := p.Reduce(value, op, 0)
	out := p.Bcast(acc, 0)
	p.endCollectiveSpan(tr, "allreduce", t0)
	return out
}

// Bcast distributes root's value to every processor and returns it.
func (p *Proc) Bcast(value float64, root int) float64 {
	const tag = "__bcast"
	tr, t0 := p.collectiveSpan()
	out := value
	if p.rank == root {
		for r := 0; r < p.m.nprocs; r++ {
			if r != root {
				p.Send(r, tag, []float64{value}, nil)
			}
		}
	} else {
		out = p.Recv(root, tag).Data[0]
	}
	p.endCollectiveSpan(tr, "bcast", t0)
	return out
}

// GatherSlices collects one slice per processor on root, indexed by rank.
// Non-root processors receive nil. Every processor must call it.
func (p *Proc) GatherSlices(local []float64, root int) [][]float64 {
	const tag = "__gather"
	tr, t0 := p.collectiveSpan()
	var out [][]float64
	if p.rank != root {
		p.Send(root, tag, local, nil)
	} else {
		out = make([][]float64, p.m.nprocs)
		out[root] = local
		for r := 0; r < p.m.nprocs; r++ {
			if r == root {
				continue
			}
			out[r] = p.Recv(r, tag).Data
		}
	}
	p.endCollectiveSpan(tr, "gather", t0)
	return out
}

// AllToAll exchanges one slice per processor pair: send[r] goes to
// processor r, and the result's entry q holds what processor q sent here.
// nil entries are delivered as empty slices. Every processor must call it.
func (p *Proc) AllToAll(send [][]float64) [][]float64 {
	const tag = "__alltoall"
	if len(send) != p.m.nprocs {
		panic("machine: AllToAll send slice count must equal NProcs")
	}
	tr, t0 := p.collectiveSpan()
	recv := make([][]float64, p.m.nprocs)
	recv[p.rank] = send[p.rank]
	for r := 0; r < p.m.nprocs; r++ {
		if r != p.rank {
			p.Send(r, tag, send[r], nil)
		}
	}
	for r := 0; r < p.m.nprocs; r++ {
		if r != p.rank {
			recv[r] = p.Recv(r, tag).Data
		}
	}
	p.endCollectiveSpan(tr, "alltoall", t0)
	return recv
}
