package machine

import (
	"sync/atomic"

	"repro/internal/telemetry"
)

// Stats counts a processor's traffic on both sides: messages and
// float64 values sent, and messages and values received.
// Communication-set quality is the second half of the paper's
// compilation problem (Section 7), and examples report these counters
// the way the HPF literature reports message counts and volumes.
type Stats struct {
	MessagesSent     int64
	ValuesSent       int64
	MessagesReceived int64
	ValuesReceived   int64
}

// statCounters is embedded per processor; updated with atomics so Send
// never contends on more than the destination mailbox lock.
type statCounters struct {
	messagesSent atomic.Int64
	valuesSent   atomic.Int64
	messagesRecv atomic.Int64
	valuesRecv   atomic.Int64
}

// Process-wide telemetry: machine counters aggregate over every Machine
// in the process, alongside the per-Machine Stats API. Latency
// histograms use power-of-two nanosecond buckets.
var (
	telMessagesSent = telemetry.Default().Counter("machine.messages_sent")
	telValuesSent   = telemetry.Default().Counter("machine.values_sent")
	telMessagesRecv = telemetry.Default().Counter("machine.messages_received")
	telValuesRecv   = telemetry.Default().Counter("machine.values_received")
	telSendBytes    = telemetry.Default().Histogram("machine.send_bytes")
	telRecvWaitNs   = telemetry.Default().Histogram("machine.recv_wait_ns")
	telBarrierNs    = telemetry.Default().Histogram("machine.barrier_wait_ns")
)

// Robustness-layer telemetry: injected faults by kind, watchdog trips,
// and receives that gave up at a deadline (see README, Robustness).
var (
	telFaultsDropped    = telemetry.Default().Counter("machine.faults.dropped")
	telFaultsDuplicated = telemetry.Default().Counter("machine.faults.duplicated")
	telFaultsDelayed    = telemetry.Default().Counter("machine.faults.delayed")
	telFaultsReordered  = telemetry.Default().Counter("machine.faults.reordered")
	telFaultsCrashes    = telemetry.Default().Counter("machine.faults.crashes")
	telWatchdogTrips    = telemetry.Default().Counter("machine.watchdog.trips")
	telRecvTimeouts     = telemetry.Default().Counter("machine.recv_timeouts")
)

// Stats returns a snapshot of processor rank's traffic counters.
func (m *Machine) Stats(rank int) Stats {
	p := m.procs[rank]
	return Stats{
		MessagesSent:     p.stats.messagesSent.Load(),
		ValuesSent:       p.stats.valuesSent.Load(),
		MessagesReceived: p.stats.messagesRecv.Load(),
		ValuesReceived:   p.stats.valuesRecv.Load(),
	}
}

// TotalStats sums the counters over all processors.
func (m *Machine) TotalStats() Stats {
	var t Stats
	for r := range m.procs {
		s := m.Stats(r)
		t.MessagesSent += s.MessagesSent
		t.ValuesSent += s.ValuesSent
		t.MessagesReceived += s.MessagesReceived
		t.ValuesReceived += s.ValuesReceived
	}
	return t
}

// ResetStats zeroes every processor's counters.
func (m *Machine) ResetStats() {
	for _, p := range m.procs {
		p.stats.messagesSent.Store(0)
		p.stats.valuesSent.Store(0)
		p.stats.messagesRecv.Store(0)
		p.stats.valuesRecv.Store(0)
	}
}
