package machine

import "sync/atomic"

// Stats counts a processor's outgoing traffic: how many messages it sent
// and how many float64 values they carried. Communication-set quality is
// the second half of the paper's compilation problem (Section 7), and
// examples report these counters the way the HPF literature reports
// message counts and volumes.
type Stats struct {
	MessagesSent int64
	ValuesSent   int64
}

// statCounters is embedded per processor; updated with atomics so Send
// never contends on more than the destination mailbox lock.
type statCounters struct {
	messages atomic.Int64
	values   atomic.Int64
}

// Stats returns a snapshot of processor m's outgoing traffic counters.
func (m *Machine) Stats(rank int) Stats {
	p := m.procs[rank]
	return Stats{
		MessagesSent: p.stats.messages.Load(),
		ValuesSent:   p.stats.values.Load(),
	}
}

// TotalStats sums the outgoing counters over all processors.
func (m *Machine) TotalStats() Stats {
	var t Stats
	for r := range m.procs {
		s := m.Stats(r)
		t.MessagesSent += s.MessagesSent
		t.ValuesSent += s.ValuesSent
	}
	return t
}

// ResetStats zeroes every processor's counters.
func (m *Machine) ResetStats() {
	for _, p := range m.procs {
		p.stats.messages.Store(0)
		p.stats.values.Store(0)
	}
}
