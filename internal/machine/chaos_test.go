package machine

import (
	"strings"
	"testing"
	"time"
)

// Chaos tests: every collective runs under a seeded fault plan. Delay
// and reorder faults must be invisible to collective semantics (tag
// matching plus the collectives' own data dependencies absorb them);
// drop faults must surface as a structured watchdog failure, never a
// hang. CI runs these with -race and a hard timeout (chaos-smoke job).

// runAllCollectives exercises every collective with verifiable values.
//
// The barriers between phases are load-bearing: the machine's
// collectives reuse fixed tags ("__reduce", …), so two back-to-back
// collectives are only race-free while messages from the same sender
// and tag arrive in send order. Delay and reorder faults deliberately
// break that FIFO guarantee, and the chaos runs flush out any phase
// that leans on it — exactly the bug class this suite exists to catch.
// A barrier drains each phase before the next may send.
func runAllCollectives(t *testing.T, m *Machine) {
	t.Helper()
	n := m.NProcs()
	m.Run(func(p *Proc) {
		p.Barrier()
		sum := p.Reduce(float64(p.Rank()+1), Sum, 0)
		if p.Rank() == 0 && sum != float64(n*(n+1)/2) {
			t.Errorf("Reduce sum = %v, want %v", sum, n*(n+1)/2)
		}
		p.Barrier()
		if got := p.AllReduce(float64(p.Rank()), Max); got != float64(n-1) {
			t.Errorf("rank %d: AllReduce max = %v, want %v", p.Rank(), got, n-1)
		}
		p.Barrier()
		if got := p.Bcast(float64(p.Rank())*7, 1); got != 7 {
			t.Errorf("rank %d: Bcast = %v, want 7", p.Rank(), got)
		}
		p.Barrier()
		gathered := p.GatherSlices([]float64{float64(p.Rank()) * 10}, 0)
		if p.Rank() == 0 {
			for r := 0; r < n; r++ {
				if gathered[r][0] != float64(r)*10 {
					t.Errorf("gathered[%d] = %v", r, gathered[r])
				}
			}
		}
		p.Barrier()
		send := make([][]float64, n)
		for r := range send {
			send[r] = []float64{float64(p.Rank()*100 + r)}
		}
		recv := p.AllToAll(send)
		for q := range recv {
			if want := float64(q*100 + p.Rank()); recv[q][0] != want {
				t.Errorf("rank %d: alltoall recv[%d] = %v, want %v", p.Rank(), q, recv[q], want)
			}
		}
		p.Barrier()
	})
}

func TestChaosCollectivesSurviveDelayReorder(t *testing.T) {
	for _, seed := range []int64{3, 11, 27} {
		m := MustNew(4)
		m.SetFaults(&FaultPlan{
			Seed: seed, Delay: 0.3, DelayBy: 300 * time.Microsecond,
			Reorder: 0.3, CrashRank: -1,
		})
		runAllCollectives(t, m)
		if len(m.FaultEvents()) == 0 {
			t.Errorf("seed %d: no faults injected; plan not exercised", seed)
		}
	}
}

// TestChaosCollectivesDropFailsStructured: collectives losing messages
// must end in a watchdog abort that names a parked wait site, within
// the configured window — the hang-to-failure conversion criterion.
func TestChaosCollectivesDropFailsStructured(t *testing.T) {
	m := MustNew(4)
	m.SetQuiescence(15 * time.Millisecond)
	m.SetFaults(&FaultPlan{Seed: 2, Drop: 0.5, CrashRank: -1})
	start := time.Now()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected watchdog abort under 50% message drop")
		}
		msg := r.(string)
		if !strings.Contains(msg, "deadlock") || !strings.Contains(msg, "parked in") {
			t.Errorf("diagnostic %q should name deadlock and a wait site", msg)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Errorf("abort took %v, want well under the test timeout", elapsed)
		}
	}()
	for i := 0; i < 100; i++ {
		runAllCollectives(t, m)
	}
	t.Fatal("dropping half of all messages never wedged a collective")
}

// TestChaosCrashDuringCollective: a rank crashing mid-collective must
// poison every peer parked inside the collective's receives.
func TestChaosCrashDuringCollective(t *testing.T) {
	m := MustNew(4)
	m.SetFaults(&FaultPlan{Seed: 1, CrashRank: 2, CrashStep: 5})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected crash panic")
		}
		if !strings.Contains(r.(string), "rank 2 crashed at step 5") {
			t.Errorf("panic %q should name the injected crash", r)
		}
	}()
	for i := 0; i < 100; i++ {
		runAllCollectives(t, m)
	}
	t.Fatal("crash step never reached")
}
