// Package machine simulates a distributed-memory multiprocessor: the
// substrate the paper's runtime routines execute on. The original
// evaluation ran on a 32-node Intel iPSC/860 hypercube; here each
// processor is a goroutine with a private mailbox, and message passing,
// barriers and collectives are built on channels and condition variables
// (see DESIGN.md, Substitutions).
//
// The programming model is SPMD: Machine.Run launches the same body on
// every processor and waits for all of them to finish. Within the body,
// a *Proc provides its rank and the communication primitives.
package machine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Message is a tagged point-to-point message. Payloads carry float64
// array data and/or int64 metadata; Tag disambiguates concurrent
// conversations (like MPI tags).
type Message struct {
	From, To int
	Tag      string
	Data     []float64
	Ints     []int64
}

// Machine is a simulated multiprocessor with a fixed processor count.
type Machine struct {
	nprocs  int
	procs   []*Proc
	barrier *barrier

	// parked counts processors blocked in Recv/RecvAny/Barrier waits.
	// When every processor is parked no message can ever be delivered, so
	// the run is deadlocked; Run's watchdog then aborts it with a
	// diagnostic panic instead of hanging forever. progress increments on
	// every send and wakeup so the watchdog can distinguish a true
	// deadlock from a waiter that is runnable but not yet scheduled.
	parked   atomic.Int64
	progress atomic.Int64
}

// New creates a machine with p processors (p ≥ 1).
func New(p int) (*Machine, error) {
	if p < 1 {
		return nil, fmt.Errorf("machine: processor count %d < 1", p)
	}
	m := &Machine{nprocs: p}
	m.barrier = newBarrier(p, &m.parked, &m.progress)
	m.procs = make([]*Proc, p)
	for i := range m.procs {
		m.procs[i] = &Proc{rank: i, m: m}
		m.procs[i].cond = sync.NewCond(&m.procs[i].mu)
	}
	return m, nil
}

// MustNew is New but panics on invalid arguments.
func MustNew(p int) *Machine {
	m, err := New(p)
	if err != nil {
		panic(err)
	}
	return m
}

// NProcs returns the processor count.
func (m *Machine) NProcs() int { return m.nprocs }

// Run executes body on every processor concurrently (SPMD) and blocks
// until all instances return. It may be called repeatedly; mailboxes
// persist across runs, so a protocol may span multiple Run calls.
//
// A panic in any body is re-raised on the caller after all other bodies
// finish or deadlock-free exit cannot be guaranteed; bodies should not
// panic as part of normal operation.
func (m *Machine) Run(body func(p *Proc)) {
	var wg sync.WaitGroup
	panics := make([]any, m.nprocs)
	for i := 0; i < m.nprocs; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[rank] = r
					// Unblock any peers waiting on this processor.
					m.barrier.poison()
					for _, p := range m.procs {
						p.poison()
					}
				}
			}()
			body(m.procs[rank])
		}(i)
	}
	done := make(chan struct{})
	go m.watchdog(done)
	wg.Wait()
	close(done)
	// Restore the machine for subsequent runs before re-raising anything.
	m.barrier.reset()
	for _, p := range m.procs {
		p.unpoison()
	}
	// Report an original panic in preference to the poisonError cascades it
	// induced in blocked peers.
	var firstRank = -1
	var firstVal any
	for rank, r := range panics {
		if r == nil {
			continue
		}
		if _, induced := r.(poisonError); !induced {
			panic(fmt.Sprintf("machine: processor %d panicked: %v", rank, r))
		}
		if firstRank < 0 {
			firstRank, firstVal = rank, r
		}
	}
	if firstRank >= 0 {
		panic(fmt.Sprintf("machine: processor %d panicked: %v", firstRank, firstVal))
	}
}

// poisonError marks panics induced in processors that were blocked when a
// peer failed, so Run can report the root cause instead.
type poisonError string

func (e poisonError) Error() string { return string(e) }

// watchdog aborts the run when every processor is parked in a blocking
// wait: with all of them waiting, no send can ever happen, so the SPMD
// program has deadlocked (e.g. two processors Recv-ing from each other).
func (m *Machine) watchdog(done <-chan struct{}) {
	ticker := time.NewTicker(2 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-done:
			return
		case <-ticker.C:
			// All-parked is stable: a parked processor can only resume if
			// some other processor delivers a message or reaches the
			// barrier, and none is running. One confirming re-read filters
			// the transient where the last arrival at a barrier is between
			// park and broadcast.
			if m.parked.Load() == int64(m.nprocs) {
				// Confirm over a generous window: any deliverable message
				// would wake its receiver (bumping progress) long before
				// this.
				before := m.progress.Load()
				time.Sleep(25 * time.Millisecond)
				if m.parked.Load() != int64(m.nprocs) || m.progress.Load() != before {
					continue
				}
				m.barrier.poison()
				for _, p := range m.procs {
					p.poisonWith("machine: deadlock: all processors blocked in Recv/Barrier")
				}
				return
			}
		}
	}
}

// Proc is one simulated processor: a rank plus communication state.
type Proc struct {
	rank int
	m    *Machine

	mu        sync.Mutex
	cond      *sync.Cond
	mailbox   []Message
	poisoned  bool
	poisonMsg string

	stats statCounters
}

// Rank returns this processor's rank in [0, NProcs).
func (p *Proc) Rank() int { return p.rank }

// NProcs returns the machine's processor count.
func (p *Proc) NProcs() int { return p.m.nprocs }

// Send delivers a message to processor `to`. Payload slices are not
// copied; senders must not mutate them after sending (ownership
// transfers, as with channel sends).
func (p *Proc) Send(to int, tag string, data []float64, ints []int64) {
	if to < 0 || to >= p.m.nprocs {
		panic(fmt.Sprintf("machine: send to invalid rank %d", to))
	}
	p.stats.messagesSent.Add(1)
	p.stats.valuesSent.Add(int64(len(data)))
	telMessagesSent.Inc()
	telValuesSent.Add(int64(len(data)))
	telSendBytes.Observe(int64(len(data)) * 8)
	if tr := telemetry.ActiveTracer(); tr != nil {
		tr.Record(telemetry.Event{
			Kind: telemetry.KindSend, Name: tag, Rank: int32(p.rank),
			Peer: int32(to), Bytes: int64(len(data)) * 8, Start: tr.Now(),
		})
	}
	p.m.progress.Add(1)
	dst := p.m.procs[to]
	dst.mu.Lock()
	dst.mailbox = append(dst.mailbox, Message{
		From: p.rank, To: to, Tag: tag, Data: data, Ints: ints,
	})
	dst.mu.Unlock()
	dst.cond.Broadcast()
}

// Recv blocks until a message with the given source and tag arrives and
// returns it. Messages from the same sender with the same tag are
// delivered in send order.
func (p *Proc) Recv(from int, tag string) Message {
	start := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		for i, msg := range p.mailbox {
			if msg.From == from && msg.Tag == tag {
				p.mailbox = append(p.mailbox[:i], p.mailbox[i+1:]...)
				p.recorded(msg, start)
				return msg
			}
		}
		if p.poisoned {
			panic(poisonError(p.poisonMsg))
		}
		p.m.parked.Add(1)
		p.cond.Wait()
		p.m.parked.Add(-1)
		p.m.progress.Add(1)
	}
}

// RecvAny blocks until any message with the given tag arrives.
func (p *Proc) RecvAny(tag string) Message {
	start := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		for i, msg := range p.mailbox {
			if msg.Tag == tag {
				p.mailbox = append(p.mailbox[:i], p.mailbox[i+1:]...)
				p.recorded(msg, start)
				return msg
			}
		}
		if p.poisoned {
			panic(poisonError(p.poisonMsg))
		}
		p.m.parked.Add(1)
		p.cond.Wait()
		p.m.parked.Add(-1)
		p.m.progress.Add(1)
	}
}

// recorded accounts one delivered message on the receive side: the
// per-processor counters, the process-wide telemetry, and — when a
// tracer is active — a recv event whose duration is the time this
// processor spent blocked since entering Recv.
func (p *Proc) recorded(msg Message, start time.Time) {
	wait := time.Since(start).Nanoseconds()
	p.stats.messagesRecv.Add(1)
	p.stats.valuesRecv.Add(int64(len(msg.Data)))
	telMessagesRecv.Inc()
	telValuesRecv.Add(int64(len(msg.Data)))
	telRecvWaitNs.Observe(wait)
	if tr := telemetry.ActiveTracer(); tr != nil {
		tr.Record(telemetry.Event{
			Kind: telemetry.KindRecv, Name: msg.Tag, Rank: int32(p.rank),
			Peer: int32(msg.From), Bytes: int64(len(msg.Data)) * 8,
			Start: tr.Now() - wait, Dur: wait,
		})
	}
}

// Barrier blocks until every processor has reached it.
func (p *Proc) Barrier() {
	start := time.Now()
	p.m.barrier.await()
	wait := time.Since(start).Nanoseconds()
	telBarrierNs.Observe(wait)
	if tr := telemetry.ActiveTracer(); tr != nil {
		tr.Record(telemetry.Event{
			Kind: telemetry.KindBarrier, Name: "barrier", Rank: int32(p.rank),
			Peer: -1, Start: tr.Now() - wait, Dur: wait,
		})
	}
}

func (p *Proc) poison() {
	p.poisonWith("machine: peer processor panicked while this one was receiving")
}

func (p *Proc) poisonWith(msg string) {
	p.mu.Lock()
	if !p.poisoned { // first poison wins: keep the root-cause message
		p.poisoned = true
		p.poisonMsg = msg
	}
	p.mu.Unlock()
	p.cond.Broadcast()
}

func (p *Proc) unpoison() {
	p.mu.Lock()
	p.poisoned = false
	p.mu.Unlock()
}

// barrier is a reusable counting barrier.
type barrier struct {
	mu       sync.Mutex
	cond     *sync.Cond
	n        int
	arrived  int
	epoch    int
	poisoned bool
	parked   *atomic.Int64 // the machine's parked counter
	progress *atomic.Int64 // the machine's progress counter
}

func newBarrier(n int, parked, progress *atomic.Int64) *barrier {
	b := &barrier{n: n, parked: parked, progress: progress}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.poisoned {
		panic(poisonError("machine: peer processor panicked at barrier"))
	}
	epoch := b.epoch
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.epoch++
		b.cond.Broadcast()
		return
	}
	for b.epoch == epoch && !b.poisoned {
		b.parked.Add(1)
		b.cond.Wait()
		b.parked.Add(-1)
		b.progress.Add(1)
	}
	if b.poisoned {
		panic(poisonError("machine: peer processor panicked at barrier"))
	}
}

func (b *barrier) poison() {
	b.mu.Lock()
	b.poisoned = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

func (b *barrier) reset() {
	b.mu.Lock()
	b.poisoned = false
	b.arrived = 0
	b.mu.Unlock()
}
