// Package machine simulates a distributed-memory multiprocessor: the
// substrate the paper's runtime routines execute on. The original
// evaluation ran on a 32-node Intel iPSC/860 hypercube; here each
// processor is a goroutine with a private mailbox, and message passing,
// barriers and collectives are built on channels and condition variables
// (see DESIGN.md, Substitutions).
//
// The programming model is SPMD: Machine.Run launches the same body on
// every processor and waits for all of them to finish. Within the body,
// a *Proc provides its rank and the communication primitives.
//
// The machine also carries a robustness layer (see README, Robustness):
// a deadlock watchdog with per-rank wait-site diagnostics (watchdog.go),
// per-call and machine-wide receive deadlines, and deterministic seeded
// fault injection (faults.go).
package machine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Message is a tagged point-to-point message. Payloads carry float64
// array data and/or int64 metadata; Tag disambiguates concurrent
// conversations (like MPI tags).
//
// Seq is the per-(From, To, Tag) FIFO sequence number Send assigned:
// the first message on a given (sender, receiver, tag) channel is 1,
// and FIFO delivery guarantees a receiver consumes each channel in
// sequence order. Trace events carry it, which is what lets the
// trace-analysis layer match every recv to the exact send that
// produced it (fault injection may duplicate or drop a Seq; it is
// never reassigned).
type Message struct {
	From, To int
	Tag      string
	Seq      int64
	Data     []float64
	Ints     []int64
}

// Machine is a simulated multiprocessor with a fixed processor count.
type Machine struct {
	nprocs  int
	procs   []*Proc
	barrier *barrier

	// parked counts processors blocked in Recv/RecvAny/Barrier waits and
	// active counts processors whose body is still running. When every
	// live (active) processor is parked no message can ever be delivered,
	// so the run is deadlocked; Run's watchdog then aborts it with a
	// diagnostic panic instead of hanging forever. progress increments on
	// every send and wakeup so the watchdog can distinguish a true
	// deadlock from a waiter that is runnable but not yet scheduled.
	// inflight counts fault-delayed messages that have been decided but
	// not yet delivered; the watchdog never trips while one is pending.
	parked   atomic.Int64
	active   atomic.Int64
	progress atomic.Int64
	inflight atomic.Int64

	// Robustness knobs; set before Run (not concurrently with one).
	quiescence time.Duration // watchdog confirmation window
	deadline   time.Duration // machine-wide Recv/RecvAny deadline (0 = none)

	faults   *FaultPlan
	faultMu  sync.Mutex
	faultLog []FaultEvent
}

// defaults are applied to every machine created by New, so CLIs can arm
// fault injection and deadlines for machines constructed deep inside
// other packages (e.g. the bench harness) without plumbing.
var machineDefaults struct {
	mu       sync.Mutex
	deadline time.Duration
	faults   *FaultPlan
}

// SetDefaultDeadline makes every subsequently created machine start with
// the given machine-wide receive deadline (0 disables). Existing
// machines are unaffected.
func SetDefaultDeadline(d time.Duration) {
	machineDefaults.mu.Lock()
	machineDefaults.deadline = d
	machineDefaults.mu.Unlock()
}

// SetDefaultFaults arms the given fault plan on every subsequently
// created machine (nil disarms). Existing machines are unaffected.
func SetDefaultFaults(plan *FaultPlan) {
	machineDefaults.mu.Lock()
	machineDefaults.faults = plan
	machineDefaults.mu.Unlock()
}

// New creates a machine with p processors (p ≥ 1).
func New(p int) (*Machine, error) {
	if p < 1 {
		return nil, fmt.Errorf("machine: processor count %d < 1", p)
	}
	m := &Machine{nprocs: p, quiescence: defaultQuiescence}
	m.barrier = newBarrier(p, &m.parked, &m.progress)
	m.procs = make([]*Proc, p)
	for i := range m.procs {
		m.procs[i] = &Proc{rank: i, m: m}
		m.procs[i].cond = sync.NewCond(&m.procs[i].mu)
	}
	machineDefaults.mu.Lock()
	m.deadline = machineDefaults.deadline
	m.faults = machineDefaults.faults
	machineDefaults.mu.Unlock()
	return m, nil
}

// MustNew is New but panics on invalid arguments.
func MustNew(p int) *Machine {
	m, err := New(p)
	if err != nil {
		panic(err)
	}
	return m
}

// NProcs returns the processor count.
func (m *Machine) NProcs() int { return m.nprocs }

// WithDeadline sets a machine-wide deadline applied to every blocking
// Recv/RecvAny (0 disables): a receive that waits longer panics with a
// diagnostic naming the wait site, which Run converts into a structured
// failure instead of a hang. Returns m for chaining. Per-call
// RecvTimeout/RecvAnyTimeout deadlines are unaffected.
func (m *Machine) WithDeadline(d time.Duration) *Machine {
	if d < 0 {
		d = 0
	}
	m.deadline = d
	return m
}

// SetFaults arms plan for subsequent Run calls (nil disarms). The plan's
// per-rank random streams and the fault-event log reset at the start of
// every Run, so a given plan and SPMD body reproduce the identical
// decision sequence on every run.
func (m *Machine) SetFaults(plan *FaultPlan) { m.faults = plan }

// Run executes body on every processor concurrently (SPMD) and blocks
// until all instances return. It may be called repeatedly; mailboxes
// persist across runs, so a protocol may span multiple Run calls.
//
// A panic in any body is re-raised on the caller after all other bodies
// finish or deadlock-free exit cannot be guaranteed; bodies should not
// panic as part of normal operation.
func (m *Machine) Run(body func(p *Proc)) {
	if m.faults != nil {
		m.faultMu.Lock()
		m.faultLog = m.faultLog[:0]
		m.faultMu.Unlock()
		for _, p := range m.procs {
			p.ops = 0
			p.frand = m.faults.rankRand(p.rank)
		}
	}
	var wg sync.WaitGroup
	panics := make([]any, m.nprocs)
	m.active.Store(int64(m.nprocs))
	for i := 0; i < m.nprocs; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer m.active.Add(-1)
			defer func() {
				if r := recover(); r != nil {
					panics[rank] = r
					// Unblock any peers waiting on this processor.
					m.barrier.poison()
					for _, p := range m.procs {
						p.poison()
					}
				}
			}()
			body(m.procs[rank])
		}(i)
	}
	done := make(chan struct{})
	go m.watchdog(done)
	wg.Wait()
	close(done)
	// Restore the machine for subsequent runs before re-raising anything.
	m.barrier.reset()
	for _, p := range m.procs {
		p.unpoison()
	}
	// Report an original panic in preference to the poisonError cascades it
	// induced in blocked peers.
	var firstRank = -1
	var firstVal any
	for rank, r := range panics {
		if r == nil {
			continue
		}
		if _, induced := r.(poisonError); !induced {
			panic(fmt.Sprintf("machine: processor %d panicked: %v", rank, r))
		}
		if firstRank < 0 {
			firstRank, firstVal = rank, r
		}
	}
	if firstRank >= 0 {
		panic(fmt.Sprintf("machine: processor %d panicked: %v", firstRank, firstVal))
	}
}

// poisonError marks panics induced in processors that were blocked when a
// peer failed, so Run can report the root cause instead.
type poisonError string

func (e poisonError) Error() string { return string(e) }

// Proc is one simulated processor: a rank plus communication state.
type Proc struct {
	rank int
	m    *Machine

	mu        sync.Mutex
	cond      *sync.Cond
	mailbox   []Message
	poisoned  bool
	poisonMsg string

	// Wait-site diagnostics for the watchdog, guarded by mu: which
	// blocking call this processor is parked in, and since when.
	waitKind  waitKind
	waitFrom  int
	waitTag   string
	waitSince time.Time

	// Fault-injection state, touched only by this processor's goroutine
	// (reset by Run): the machine-op counter crash steps index into, and
	// the rank's private decision stream.
	ops   int64
	frand *faultRand

	// seqs assigns per-(destination, tag) FIFO sequence numbers to sent
	// messages. Touched only by this processor's goroutine; persists
	// across Run calls (like mailboxes) so numbers stay unique for the
	// machine's lifetime.
	seqs map[seqKey]int64

	stats statCounters
}

type waitKind uint8

const (
	waitNone waitKind = iota
	waitRecv
	waitRecvAny
	waitBarrier
)

// waitSiteLocked formats the processor's current wait site. p.mu held.
func (p *Proc) waitSiteLocked() string {
	switch p.waitKind {
	case waitRecv:
		return fmt.Sprintf("Recv(from=%d, tag=%q)", p.waitFrom, p.waitTag)
	case waitRecvAny:
		return fmt.Sprintf("RecvAny(tag=%q)", p.waitTag)
	case waitBarrier:
		return "Barrier"
	}
	return "running"
}

// Rank returns this processor's rank in [0, NProcs).
func (p *Proc) Rank() int { return p.rank }

// NProcs returns the machine's processor count.
func (p *Proc) NProcs() int { return p.m.nprocs }

// Send delivers a message to processor `to`. Payload slices are not
// copied; senders must not mutate them after sending (ownership
// transfers, as with channel sends).
func (p *Proc) Send(to int, tag string, data []float64, ints []int64) {
	if to < 0 || to >= p.m.nprocs {
		panic(fmt.Sprintf("machine: send to invalid rank %d", to))
	}
	op := p.faultStep()
	p.stats.messagesSent.Add(1)
	p.stats.valuesSent.Add(int64(len(data)))
	telMessagesSent.Inc()
	telValuesSent.Add(int64(len(data)))
	telSendBytes.Observe(int64(len(data)) * 8)
	p.m.progress.Add(1)
	msg := Message{From: p.rank, To: to, Tag: tag, Seq: p.nextSeq(to, tag), Data: data, Ints: ints}
	tr := telemetry.ActiveTracer()
	var t0 int64
	if tr != nil {
		t0 = tr.Now()
	}
	if fp := p.m.faults; fp == nil || !p.injectSendFault(fp, op, msg) {
		p.deliver(to, msg, false)
	}
	if tr != nil {
		// Recorded after delivery so the event spans the actual mailbox
		// hand-off — a real slice viewers and the critical-path walker can
		// anchor the send→recv flow edge to.
		tr.Record(telemetry.Event{
			Kind: telemetry.KindSend, Name: tag, Rank: int32(p.rank),
			Peer: int32(to), Bytes: int64(len(data)) * 8, Seq: msg.Seq,
			Start: t0, Dur: tr.Now() - t0,
		})
	}
}

// seqKey identifies one FIFO message channel out of a processor.
type seqKey struct {
	to  int
	tag string
}

// nextSeq returns the next sequence number for messages to rank `to`
// with the given tag (first message is 1). Touched only by this
// processor's goroutine, like the fault-injection state.
func (p *Proc) nextSeq(to int, tag string) int64 {
	if p.seqs == nil {
		p.seqs = make(map[seqKey]int64)
	}
	k := seqKey{to: to, tag: tag}
	p.seqs[k]++
	return p.seqs[k]
}

// deliver appends msg to rank to's mailbox (or prepends it when front is
// set, the reorder fault) and wakes the receiver.
func (p *Proc) deliver(to int, msg Message, front bool) {
	dst := p.m.procs[to]
	dst.mu.Lock()
	if front && len(dst.mailbox) > 0 {
		dst.mailbox = append(dst.mailbox, Message{})
		copy(dst.mailbox[1:], dst.mailbox)
		dst.mailbox[0] = msg
	} else {
		dst.mailbox = append(dst.mailbox, msg)
	}
	dst.mu.Unlock()
	dst.cond.Broadcast()
}

// Recv blocks until a message with the given source and tag arrives and
// returns it. Messages from the same sender with the same tag are
// delivered in send order. If the machine has a deadline (WithDeadline),
// waiting past it panics with a diagnostic naming this wait site; Run
// converts the panic into a structured failure.
func (p *Proc) Recv(from int, tag string) Message {
	msg, ok := p.recv(waitRecv, from, tag, p.m.deadline)
	if !ok {
		panic(fmt.Sprintf("machine: Recv(from=%d, tag=%q) exceeded machine deadline %v",
			from, tag, p.m.deadline))
	}
	return msg
}

// RecvAny blocks until any message with the given tag arrives. The
// machine-wide deadline applies as in Recv.
func (p *Proc) RecvAny(tag string) Message {
	msg, ok := p.recv(waitRecvAny, -1, tag, p.m.deadline)
	if !ok {
		panic(fmt.Sprintf("machine: RecvAny(tag=%q) exceeded machine deadline %v",
			tag, p.m.deadline))
	}
	return msg
}

// RecvTimeout is Recv with a per-call deadline: it returns ok=false if
// no matching message arrives within d, letting the caller degrade
// gracefully instead of hanging. d ≤ 0 polls the mailbox without
// blocking. A message that arrives after the timeout stays in the
// mailbox for a later receive.
func (p *Proc) RecvTimeout(from int, tag string, d time.Duration) (Message, bool) {
	if d <= 0 {
		d = -1 // recv treats a negative deadline as a non-blocking poll
	}
	return p.recv(waitRecv, from, tag, d)
}

// RecvAnyTimeout is RecvAny with a per-call deadline; see RecvTimeout.
func (p *Proc) RecvAnyTimeout(tag string, d time.Duration) (Message, bool) {
	if d <= 0 {
		d = -1
	}
	return p.recv(waitRecvAny, -1, tag, d)
}

// recv is the shared receive loop. kind selects source matching (Recv)
// or any-sender matching (RecvAny). d > 0 bounds the wait; d == 0 waits
// forever; d < 0 polls. Returns ok=false on deadline expiry.
func (p *Proc) recv(kind waitKind, from int, tag string, d time.Duration) (Message, bool) {
	start := time.Now()
	p.faultStep()
	var deadline time.Time
	if d != 0 {
		deadline = start.Add(d)
		if d > 0 {
			// The timer broadcast wakes this processor so the expiry check
			// below runs even if no message ever arrives.
			timer := time.AfterFunc(d, p.cond.Broadcast)
			defer timer.Stop()
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.waitKind, p.waitFrom, p.waitTag, p.waitSince = kind, from, tag, start
	defer func() { p.waitKind = waitNone }()
	for {
		for i, msg := range p.mailbox {
			if (kind != waitRecv || msg.From == from) && msg.Tag == tag {
				copy(p.mailbox[i:], p.mailbox[i+1:])
				last := len(p.mailbox) - 1
				// Zero the vacated tail slot so the backing array does not
				// pin the delivered payload (or the shifted copies' slices)
				// until some later send overwrites it.
				p.mailbox[last] = Message{}
				p.mailbox = p.mailbox[:last]
				p.recorded(msg, start)
				return msg, true
			}
		}
		if p.poisoned {
			panic(poisonError(p.poisonMsg))
		}
		if d != 0 && !time.Now().Before(deadline) {
			telRecvTimeouts.Inc()
			return Message{}, false
		}
		p.m.parked.Add(1)
		p.cond.Wait()
		p.m.parked.Add(-1)
		p.m.progress.Add(1)
	}
}

// recorded accounts one delivered message on the receive side: the
// per-processor counters, the process-wide telemetry, and — when a
// tracer is active — a recv event whose duration is the time this
// processor spent blocked since entering Recv.
func (p *Proc) recorded(msg Message, start time.Time) {
	wait := time.Since(start).Nanoseconds()
	p.stats.messagesRecv.Add(1)
	p.stats.valuesRecv.Add(int64(len(msg.Data)))
	telMessagesRecv.Inc()
	telValuesRecv.Add(int64(len(msg.Data)))
	telRecvWaitNs.Observe(wait)
	if tr := telemetry.ActiveTracer(); tr != nil {
		tr.Record(telemetry.Event{
			Kind: telemetry.KindRecv, Name: msg.Tag, Rank: int32(p.rank),
			Peer: int32(msg.From), Bytes: int64(len(msg.Data)) * 8, Seq: msg.Seq,
			Start: tr.Now() - wait, Dur: wait,
		})
	}
}

// Barrier blocks until every processor has reached it.
func (p *Proc) Barrier() {
	start := time.Now()
	p.faultStep()
	p.mu.Lock()
	p.waitKind, p.waitSince = waitBarrier, start
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		p.waitKind = waitNone
		p.mu.Unlock()
	}()
	p.m.barrier.await()
	wait := time.Since(start).Nanoseconds()
	telBarrierNs.Observe(wait)
	if tr := telemetry.ActiveTracer(); tr != nil {
		tr.Record(telemetry.Event{
			Kind: telemetry.KindBarrier, Name: "barrier", Rank: int32(p.rank),
			Peer: -1, Start: tr.Now() - wait, Dur: wait,
		})
	}
}

func (p *Proc) poison() {
	p.poisonWith("machine: peer processor panicked while this one was receiving")
}

func (p *Proc) poisonWith(msg string) {
	p.mu.Lock()
	if !p.poisoned { // first poison wins: keep the root-cause message
		p.poisoned = true
		p.poisonMsg = msg
	}
	p.mu.Unlock()
	p.cond.Broadcast()
}

func (p *Proc) unpoison() {
	p.mu.Lock()
	p.poisoned = false
	p.waitKind = waitNone
	p.mu.Unlock()
}

// barrier is a reusable counting barrier.
type barrier struct {
	mu       sync.Mutex
	cond     *sync.Cond
	n        int
	arrived  int
	epoch    int
	poisoned bool
	parked   *atomic.Int64 // the machine's parked counter
	progress *atomic.Int64 // the machine's progress counter
}

func newBarrier(n int, parked, progress *atomic.Int64) *barrier {
	b := &barrier{n: n, parked: parked, progress: progress}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.poisoned {
		panic(poisonError("machine: peer processor panicked at barrier"))
	}
	epoch := b.epoch
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.epoch++
		b.cond.Broadcast()
		return
	}
	for b.epoch == epoch && !b.poisoned {
		b.parked.Add(1)
		b.cond.Wait()
		b.parked.Add(-1)
		b.progress.Add(1)
	}
	if b.poisoned {
		panic(poisonError("machine: peer processor panicked at barrier"))
	}
}

func (b *barrier) poison() {
	b.mu.Lock()
	b.poisoned = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

func (b *barrier) reset() {
	b.mu.Lock()
	b.poisoned = false
	b.arrived = 0
	b.mu.Unlock()
}
