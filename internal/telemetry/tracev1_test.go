package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceV1RoundTrip(t *testing.T) {
	tr := goldenTracer()
	var buf bytes.Buffer
	if err := tr.WriteTraceV1(&buf); err != nil {
		t.Fatal(err)
	}
	doc, err := ReadTraceV1(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Schema != TraceSchema || doc.Ranks != 2 || doc.Capacity != 64 || doc.Dropped != 0 {
		t.Errorf("header = %+v", doc)
	}
	orig := tr.Events()
	back := doc.RuntimeEvents()
	if len(back) != len(orig) {
		t.Fatalf("round-trip kept %d events, want %d", len(back), len(orig))
	}
	for i := range orig {
		if back[i] != orig[i] {
			t.Errorf("event %d: got %+v, want %+v", i, back[i], orig[i])
		}
	}
}

func TestReadTraceV1Rejects(t *testing.T) {
	for _, bad := range []string{
		`{"schema":"telemetry/v1","ranks":1,"events":[]}`,
		`{"schema":"trace/v1","ranks":1,"events":[{"kind":"warp","name":"x","rank":0,"peer":-1,"start":0,"dur":0}]}`,
		`not json`,
	} {
		if _, err := ReadTraceV1(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadTraceV1(%q) should fail", bad)
		}
	}
}

func TestMatchMessages(t *testing.T) {
	events := []Event{
		{Kind: KindSend, Name: "a", Rank: 0, Peer: 1, Seq: 1, Start: 10},
		{Kind: KindSend, Name: "a", Rank: 0, Peer: 1, Seq: 2, Start: 20},
		{Kind: KindRecv, Name: "a", Rank: 1, Peer: 0, Seq: 2, Start: 25, Dur: 5},
		{Kind: KindRecv, Name: "a", Rank: 1, Peer: 0, Seq: 1, Start: 12, Dur: 2},
		{Kind: KindSend, Name: "b", Rank: 1, Peer: 0, Seq: 1, Start: 30},   // dropped: no recv
		{Kind: KindRecv, Name: "c", Rank: 0, Peer: 1, Seq: 9, Start: 40},   // orphan recv
		{Kind: KindSend, Name: "d", Rank: 0, Peer: 1, Start: 50},           // no seq: ignored
		{Kind: KindBarrier, Name: "barrier", Rank: 0, Start: 60, Dur: 100}, // not a message
	}
	pairs := MatchMessages(events)
	if len(pairs) != 2 {
		t.Fatalf("got %d pairs (%v), want 2", len(pairs), pairs)
	}
	// Sorted by send start: (0→3) then (1→2).
	if pairs[0] != (MessagePair{Send: 0, Recv: 3}) || pairs[1] != (MessagePair{Send: 1, Recv: 2}) {
		t.Errorf("pairs = %v, want [{0 3} {1 2}]", pairs)
	}
}

// Duplicate keys (two machines in one trace, or a duplicated message
// under fault injection) must pair in timestamp order, never crash, and
// never pair one send with two recvs.
func TestMatchMessagesDuplicateKeys(t *testing.T) {
	events := []Event{
		{Kind: KindSend, Name: "t", Rank: 0, Peer: 1, Seq: 1, Start: 10},
		{Kind: KindRecv, Name: "t", Rank: 1, Peer: 0, Seq: 1, Start: 15},
		{Kind: KindSend, Name: "t", Rank: 0, Peer: 1, Seq: 1, Start: 100}, // second machine
		{Kind: KindRecv, Name: "t", Rank: 1, Peer: 0, Seq: 1, Start: 110},
		{Kind: KindRecv, Name: "t", Rank: 1, Peer: 0, Seq: 1, Start: 120}, // duplicated delivery
	}
	pairs := MatchMessages(events)
	if len(pairs) != 2 {
		t.Fatalf("got %d pairs (%v), want 2", len(pairs), pairs)
	}
	if pairs[0] != (MessagePair{Send: 0, Recv: 1}) || pairs[1] != (MessagePair{Send: 2, Recv: 3}) {
		t.Errorf("pairs = %v, want [{0 1} {2 3}]", pairs)
	}
}

func TestDroppedEventsGauge(t *testing.T) {
	tr := StartTracing(1, 16)
	defer StopTracing()
	for i := 0; i < 40; i++ {
		tr.Record(Event{Kind: KindSend, Name: "t", Rank: 0, Start: int64(i)})
	}
	snap := Default().Snapshot()
	if got := snap.Gauges[DroppedGauge]; got != 24 {
		t.Errorf("gauge %s = %d, want 24", DroppedGauge, got)
	}
	// The gauge keeps reporting the last tracer's count after stop.
	StopTracing()
	snap = Default().Snapshot()
	if got := snap.Gauges[DroppedGauge]; got != 24 {
		t.Errorf("gauge %s after stop = %d, want 24", DroppedGauge, got)
	}
}

func TestHistogramMax(t *testing.T) {
	var h Histogram
	for _, v := range []int64{5, 900, 17, -3} {
		h.Observe(v)
	}
	if got := h.Max(); got != 900 {
		t.Errorf("Max = %d, want 900", got)
	}
	s := h.snapshot()
	if s.Max != 900 {
		t.Errorf("snapshot Max = %d, want 900", s.Max)
	}
	var buf bytes.Buffer
	r := NewRegistry()
	r.Histogram("x.lat").Observe(900)
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "p99≤1023") || !strings.Contains(buf.String(), "max=900") {
		t.Errorf("text dump missing quantiles/max:\n%s", buf.String())
	}
}
