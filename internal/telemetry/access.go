package telemetry

// Memory-access tracing: the address-level counterpart of the event
// tracer. The paper's object of study is the *memory access sequence*
// itself — the per-processor order of local addresses a node loop
// touches — yet the event tracer only sees messages and spans. The
// AccessRecorder captures the sequence: every instrumented kernel walk,
// section op and pack/unpack loop can stream its (addr, rw, step)
// records into per-rank buffers, exported as a self-describing
// accesstrace/v1 document (JSON for tools, a compact binary framing for
// long runs) and consumed by internal/reuse and cmd/hpfmem for
// reuse-distance locality analysis.
//
// The recorder follows the tracer's guard discipline: a process-wide
// atomic pointer that is nil when recording is off, so the disabled hot
// path costs one atomic load and zero allocations. Recording itself
// writes fixed-size records into preallocated per-rank buffers (no
// allocation); per-op metadata (step labels) may allocate, but only
// while recording is active.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// AccessSchema identifies the access recorder's self-describing export.
const AccessSchema = "accesstrace/v1"

// AccessOp distinguishes loads from stores in the recorded sequence.
type AccessOp uint8

const (
	AccessRead  AccessOp = 0
	AccessWrite AccessOp = 1
)

func (op AccessOp) String() string {
	if op == AccessWrite {
		return "w"
	}
	return "r"
}

// Access is one record of the traced sequence: the local address a rank
// touched, whether it was read or written, and the step (one per
// instrumented operation, see BeginStep) it belongs to. Records are
// compact — 16 bytes — so long sequences stay cheap to retain.
type Access struct {
	Addr int64
	Step uint32
	Op   AccessOp
}

// AccessStep names one instrumented operation: every access recorded
// during it carries its Step number. Labels follow the convention
// "<package>.<op>[:<kernel-kind>]", e.g. "hpf.fill_section:unrolled" or
// "comm.pack", so locality reports can group by operation and by the
// node-code kernel that generated the addresses.
type AccessStep struct {
	Step  uint32 `json:"step"`
	Label string `json:"label"`
}

// accessRing is one rank's buffer. In ring mode (no spill writer) the
// oldest records are overwritten when it fills; with a spill writer the
// full buffer is flushed as a binary segment and reset, so nothing is
// lost.
type accessRing struct {
	mu      sync.Mutex
	buf     []Access
	n       uint64 // total records ever accepted; buf[(n-1)%cap] is newest
	flushed uint64 // records already written to the spill writer
	seen    int64  // sampling countdown state: accesses observed since last kept
}

// AccessRecorder records per-rank memory access sequences. One extra
// ring (index ranks) absorbs host-side or out-of-range records, exactly
// like the event tracer's host timeline.
type AccessRecorder struct {
	ranks  int
	sample int64 // keep 1 of every sample accesses (1 = all)

	stepMu sync.Mutex
	step   uint32
	steps  []AccessStep

	rings []accessRing

	spillMu  sync.Mutex
	spillW   *bufio.Writer
	spilled  []int64 // per-ring record counts flushed to the spill writer
	spillErr error
}

// NewAccessRecorder creates a recorder for the given number of ranks
// with capacity records retained per rank (minimum 64) keeping 1 of
// every sample accesses (values < 1 mean keep everything).
func NewAccessRecorder(ranks, capacity int, sample int64) *AccessRecorder {
	if ranks < 0 {
		ranks = 0
	}
	if capacity < 64 {
		capacity = 64
	}
	if sample < 1 {
		sample = 1
	}
	r := &AccessRecorder{ranks: ranks, sample: sample}
	r.rings = make([]accessRing, ranks+1)
	r.spilled = make([]int64, ranks+1)
	for i := range r.rings {
		r.rings[i].buf = make([]Access, capacity)
	}
	return r
}

// Ranks returns the number of per-rank sequences (excluding the host
// overflow ring).
func (r *AccessRecorder) Ranks() int { return r.ranks }

// Sample returns the sampling period: 1 means every access is kept.
func (r *AccessRecorder) Sample() int64 { return r.sample }

// SpillTo switches the recorder from ring mode (overwrite oldest) to
// spill mode: whenever a rank's buffer fills, it is flushed to w as a
// binary accesstrace segment and reset, so arbitrarily long sequences
// are retained. Call FinishSpill when recording is done to flush
// partial buffers and the trailer. Must be called before recording
// starts.
func (r *AccessRecorder) SpillTo(w io.Writer) error {
	r.spillMu.Lock()
	defer r.spillMu.Unlock()
	if r.spillW != nil {
		return fmt.Errorf("telemetry: spill writer already set")
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if err := writeBinaryHeader(bw, r.ranks, r.sample); err != nil {
		return err
	}
	r.spillW = bw
	return nil
}

// BeginStep registers a new step with the given label and returns its
// number, to be passed to Record for every access of the operation.
// Step numbers start at 1; 0 means "no step".
func (r *AccessRecorder) BeginStep(label string) uint32 {
	r.stepMu.Lock()
	r.step++
	s := r.step
	r.steps = append(r.steps, AccessStep{Step: s, Label: label})
	r.stepMu.Unlock()
	return s
}

// ring maps a rank (or HostRank) onto its buffer; out-of-range ranks
// fold onto the overflow ring.
func (r *AccessRecorder) ring(rank int32) *accessRing {
	if rank >= 0 && int(rank) < r.ranks {
		return &r.rings[rank]
	}
	return &r.rings[r.ranks]
}

// Record appends one access to rank's sequence, honouring the sampling
// period. It never allocates in ring mode; in spill mode a full buffer
// is flushed to the spill writer before the record lands.
func (r *AccessRecorder) Record(rank int32, addr int64, op AccessOp, step uint32) {
	ring := r.ring(rank)
	ring.mu.Lock()
	ring.seen++
	if ring.seen < r.sample {
		ring.mu.Unlock()
		return
	}
	ring.seen = 0
	if r.spillW != nil && ring.n > 0 && ring.n%uint64(len(ring.buf)) == 0 {
		r.flushRing(rank, ring)
	}
	ring.buf[ring.n%uint64(len(ring.buf))] = Access{Addr: addr, Step: step, Op: op}
	ring.n++
	ring.mu.Unlock()
}

// flushRing writes ring's not-yet-spilled records as a binary segment
// (caller holds ring.mu; only called when the buffer is exactly full, so
// everything since the last flush is contiguous in recording order). The
// first spill error sticks and later flushes are dropped.
func (r *AccessRecorder) flushRing(rank int32, ring *accessRing) {
	idx := r.ringIndex(rank)
	c := uint64(len(ring.buf))
	start := ring.flushed % c
	recs := append(ring.buf[start:], ring.buf[:start]...)
	recs = recs[:ring.n-ring.flushed]
	r.spillMu.Lock()
	if r.spillErr == nil {
		r.spillErr = writeBinarySegment(r.spillW, rank, recs)
		if r.spillErr == nil {
			r.spilled[idx] += int64(len(recs))
			ring.flushed = ring.n
		}
	}
	r.spillMu.Unlock()
}

func (r *AccessRecorder) ringIndex(rank int32) int {
	if rank >= 0 && int(rank) < r.ranks {
		return int(rank)
	}
	return r.ranks
}

// FinishSpill flushes every rank's partial buffer, the step table and
// the trailer to the spill writer, completing the binary document. The
// recorder must not record concurrently with or after FinishSpill.
func (r *AccessRecorder) FinishSpill() error {
	r.spillMu.Lock()
	defer r.spillMu.Unlock()
	if r.spillW == nil {
		return fmt.Errorf("telemetry: no spill writer set")
	}
	if r.spillErr != nil {
		return r.spillErr
	}
	for i := range r.rings {
		ring := &r.rings[i]
		ring.mu.Lock()
		c := uint64(len(ring.buf))
		kept := ring.n - ring.flushed // flushes keep this ≤ cap
		if kept > c {
			kept = c
		}
		recs := make([]Access, 0, kept)
		for j := uint64(0); j < kept; j++ {
			recs = append(recs, ring.buf[(ring.n-kept+j)%c])
		}
		ring.flushed = ring.n
		ring.mu.Unlock()
		rank := int32(i)
		if i == r.ranks {
			rank = HostRank
		}
		if len(recs) > 0 {
			if err := writeBinarySegment(r.spillW, rank, recs); err != nil {
				r.spillErr = err
				return err
			}
			r.spilled[i] += int64(len(recs))
		}
	}
	r.stepMu.Lock()
	steps := append([]AccessStep(nil), r.steps...)
	r.stepMu.Unlock()
	if err := writeBinaryTrailer(r.spillW, steps, 0); err != nil {
		r.spillErr = err
		return err
	}
	if err := r.spillW.Flush(); err != nil {
		r.spillErr = err
		return err
	}
	return nil
}

// Dropped returns how many records were overwritten because a ring was
// full (always 0 in spill mode).
func (r *AccessRecorder) Dropped() int64 {
	var d int64
	for i := range r.rings {
		ring := &r.rings[i]
		ring.mu.Lock()
		c := uint64(len(ring.buf))
		if live := ring.n - ring.flushed; live > c {
			d += int64(live - c)
		}
		ring.mu.Unlock()
	}
	return d
}

// Recorded returns the total number of records accepted across all
// ranks (retained or not).
func (r *AccessRecorder) Recorded() int64 {
	var n int64
	for i := range r.rings {
		ring := &r.rings[i]
		ring.mu.Lock()
		n += int64(ring.n)
		ring.mu.Unlock()
	}
	return n
}

// ---------------------------------------------------------------------
// The process-wide recorder guard, mirroring the event tracer's.

var activeAccess atomic.Pointer[AccessRecorder]

// StartAccessRecording installs a new process-wide access recorder for
// ranks sequences with the given per-rank capacity, keeping 1 of every
// sample accesses, and returns it.
func StartAccessRecording(ranks, capacity int, sample int64) *AccessRecorder {
	r := NewAccessRecorder(ranks, capacity, sample)
	activeAccess.Store(r)
	return r
}

// StopAccessRecording uninstalls and returns the process-wide recorder
// (nil if none was active). The returned recorder can still be
// exported.
func StopAccessRecording() *AccessRecorder {
	return activeAccess.Swap(nil)
}

// ActiveAccessRecorder returns the process-wide recorder, or nil when
// access recording is off. Instrumented code checks for nil once per
// operation before doing any per-element work, so the disabled path is
// one atomic load.
func ActiveAccessRecorder() *AccessRecorder { return activeAccess.Load() }

// ---------------------------------------------------------------------
// accesstrace/v1 document.

// AccessRec is the wire form of one access.
type AccessRec struct {
	Addr  int64  `json:"addr"`
	Step  uint32 `json:"step,omitempty"`
	Write bool   `json:"write,omitempty"`
}

// RankAccesses is one rank's retained sequence, oldest first.
type RankAccesses struct {
	Rank     int32       `json:"rank"`
	Accesses []AccessRec `json:"accesses"`
}

// AccessDoc is the accesstrace/v1 document: recorder identity, the step
// table, and every retained record grouped by rank in recording order.
type AccessDoc struct {
	Schema  string         `json:"schema"`
	Ranks   int            `json:"ranks"`
	Sample  int64          `json:"sample"`
	Dropped int64          `json:"dropped"`
	Steps   []AccessStep   `json:"steps,omitempty"`
	Seqs    []RankAccesses `json:"sequences"`
}

// StepLabel returns the label registered for a step number ("" when
// unknown).
func (d *AccessDoc) StepLabel(step uint32) string {
	for _, s := range d.Steps {
		if s.Step == step {
			return s.Label
		}
	}
	return ""
}

// Doc captures the recorder's retained records as an accesstrace/v1
// document (ring mode only — spilled records live in the spill writer's
// output, not in memory). Ranks that recorded nothing are omitted.
func (r *AccessRecorder) Doc() AccessDoc {
	doc := AccessDoc{
		Schema:  AccessSchema,
		Ranks:   r.ranks,
		Sample:  r.sample,
		Dropped: r.Dropped(),
	}
	r.stepMu.Lock()
	doc.Steps = append([]AccessStep(nil), r.steps...)
	r.stepMu.Unlock()
	for i := range r.rings {
		ring := &r.rings[i]
		ring.mu.Lock()
		c := uint64(len(ring.buf))
		kept := ring.n - ring.flushed // spilled records live in the writer
		if kept > c {
			kept = c
		}
		if kept == 0 {
			ring.mu.Unlock()
			continue
		}
		ra := RankAccesses{Rank: int32(i), Accesses: make([]AccessRec, 0, kept)}
		if i == r.ranks {
			ra.Rank = HostRank
		}
		for j := uint64(0); j < kept; j++ {
			a := ring.buf[(ring.n-kept+j)%c]
			ra.Accesses = append(ra.Accesses, AccessRec{
				Addr: a.Addr, Step: a.Step, Write: a.Op == AccessWrite,
			})
		}
		ring.mu.Unlock()
		doc.Seqs = append(doc.Seqs, ra)
	}
	return doc
}

// WriteJSON writes the retained records as an accesstrace/v1 JSON
// document.
func (r *AccessRecorder) WriteJSON(w io.Writer) error {
	data, err := json.Marshal(r.Doc())
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteBinary writes the retained records in the compact binary
// accesstrace framing (see the binary constants below) — the format the
// spill path streams incrementally.
func (r *AccessRecorder) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if err := writeBinaryHeader(bw, r.ranks, r.sample); err != nil {
		return err
	}
	doc := r.Doc()
	for _, seq := range doc.Seqs {
		recs := make([]Access, len(seq.Accesses))
		for i, a := range seq.Accesses {
			op := AccessRead
			if a.Write {
				op = AccessWrite
			}
			recs[i] = Access{Addr: a.Addr, Step: a.Step, Op: op}
		}
		if err := writeBinarySegment(bw, seq.Rank, recs); err != nil {
			return err
		}
	}
	if err := writeBinaryTrailer(bw, doc.Steps, doc.Dropped); err != nil {
		return err
	}
	return bw.Flush()
}

// ---------------------------------------------------------------------
// Binary framing. A document is:
//
//	header : magic "HPFMACC1" | u32 version | u32 ranks | i64 sample
//	blocks : (blockRecords u8=2 | i32 rank | u32 count | count × record)*
//	         one rank may contribute many blocks (the spill path emits
//	         one per flushed buffer); records are 16 bytes each:
//	         i64 addr | u32 step | u8 op | 3 pad bytes
//	trailer: blockSteps u8=1 | u32 count | count × (u32 step | u16 len | label)
//	         blockEnd u8=0 | i64 dropped
//
// Everything is little-endian.

var accessMagic = [8]byte{'H', 'P', 'F', 'M', 'A', 'C', 'C', '1'}

const (
	accessBinVersion = 1
	blockEnd         = 0
	blockSteps       = 1
	blockRecords     = 2
	accessRecSize    = 16
)

func writeBinaryHeader(w io.Writer, ranks int, sample int64) error {
	if _, err := w.Write(accessMagic[:]); err != nil {
		return err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], accessBinVersion)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(ranks))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(sample))
	_, err := w.Write(hdr[:])
	return err
}

func writeBinarySegment(w io.Writer, rank int32, recs []Access) error {
	var hdr [9]byte
	hdr[0] = blockRecords
	binary.LittleEndian.PutUint32(hdr[1:], uint32(rank))
	binary.LittleEndian.PutUint32(hdr[5:], uint32(len(recs)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var rec [accessRecSize]byte
	for _, a := range recs {
		binary.LittleEndian.PutUint64(rec[0:], uint64(a.Addr))
		binary.LittleEndian.PutUint32(rec[8:], a.Step)
		rec[12] = byte(a.Op)
		if _, err := w.Write(rec[:]); err != nil {
			return err
		}
	}
	return nil
}

func writeBinaryTrailer(w io.Writer, steps []AccessStep, dropped int64) error {
	var hdr [5]byte
	hdr[0] = blockSteps
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(steps)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, s := range steps {
		if len(s.Label) > 0xFFFF {
			s.Label = s.Label[:0xFFFF]
		}
		var sh [6]byte
		binary.LittleEndian.PutUint32(sh[0:], s.Step)
		binary.LittleEndian.PutUint16(sh[4:], uint16(len(s.Label)))
		if _, err := w.Write(sh[:]); err != nil {
			return err
		}
		if _, err := io.WriteString(w, s.Label); err != nil {
			return err
		}
	}
	var end [9]byte
	end[0] = blockEnd
	binary.LittleEndian.PutUint64(end[1:], uint64(dropped))
	_, err := w.Write(end[:])
	return err
}

// ReadAccessTrace parses an accesstrace document in either encoding,
// auto-detected from the first bytes (the binary magic vs JSON's '{').
func ReadAccessTrace(r io.Reader) (*AccessDoc, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(len(accessMagic))
	if err != nil && len(head) == 0 {
		return nil, fmt.Errorf("telemetry: empty access trace: %w", err)
	}
	if bytes.Equal(head, accessMagic[:]) {
		return readAccessBinary(br)
	}
	return readAccessJSON(br)
}

func readAccessJSON(r io.Reader) (*AccessDoc, error) {
	var doc AccessDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("telemetry: parse access trace: %w", err)
	}
	if doc.Schema != AccessSchema {
		return nil, fmt.Errorf("telemetry: access trace schema %q, want %q", doc.Schema, AccessSchema)
	}
	return &doc, nil
}

func readAccessBinary(r *bufio.Reader) (*AccessDoc, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, err
	}
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("telemetry: truncated access trace header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:]); v != accessBinVersion {
		return nil, fmt.Errorf("telemetry: access trace version %d, want %d", v, accessBinVersion)
	}
	doc := &AccessDoc{
		Schema: AccessSchema,
		Ranks:  int(binary.LittleEndian.Uint32(hdr[4:])),
		Sample: int64(binary.LittleEndian.Uint64(hdr[8:])),
	}
	// Rank segments may be interleaved (the spill path flushes buffers
	// as they fill); concatenate per rank in stream order.
	byRank := map[int32]*RankAccesses{}
	var order []int32
	for {
		bt, err := r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("telemetry: truncated access trace: %w", err)
		}
		switch bt {
		case blockRecords:
			var sh [8]byte
			if _, err := io.ReadFull(r, sh[:]); err != nil {
				return nil, fmt.Errorf("telemetry: truncated records block: %w", err)
			}
			rank := int32(binary.LittleEndian.Uint32(sh[0:]))
			count := binary.LittleEndian.Uint32(sh[4:])
			seq := byRank[rank]
			if seq == nil {
				seq = &RankAccesses{Rank: rank}
				byRank[rank] = seq
				order = append(order, rank)
			}
			var rec [accessRecSize]byte
			for i := uint32(0); i < count; i++ {
				if _, err := io.ReadFull(r, rec[:]); err != nil {
					return nil, fmt.Errorf("telemetry: truncated record: %w", err)
				}
				seq.Accesses = append(seq.Accesses, AccessRec{
					Addr:  int64(binary.LittleEndian.Uint64(rec[0:])),
					Step:  binary.LittleEndian.Uint32(rec[8:]),
					Write: AccessOp(rec[12]) == AccessWrite,
				})
			}
		case blockSteps:
			var cb [4]byte
			if _, err := io.ReadFull(r, cb[:]); err != nil {
				return nil, fmt.Errorf("telemetry: truncated step table: %w", err)
			}
			count := binary.LittleEndian.Uint32(cb[:])
			for i := uint32(0); i < count; i++ {
				var sh [6]byte
				if _, err := io.ReadFull(r, sh[:]); err != nil {
					return nil, fmt.Errorf("telemetry: truncated step entry: %w", err)
				}
				label := make([]byte, binary.LittleEndian.Uint16(sh[4:]))
				if _, err := io.ReadFull(r, label); err != nil {
					return nil, fmt.Errorf("telemetry: truncated step label: %w", err)
				}
				doc.Steps = append(doc.Steps, AccessStep{
					Step:  binary.LittleEndian.Uint32(sh[0:]),
					Label: string(label),
				})
			}
		case blockEnd:
			var db [8]byte
			if _, err := io.ReadFull(r, db[:]); err != nil {
				return nil, fmt.Errorf("telemetry: truncated trailer: %w", err)
			}
			doc.Dropped = int64(binary.LittleEndian.Uint64(db[:]))
			for _, rank := range order {
				doc.Seqs = append(doc.Seqs, *byRank[rank])
			}
			return doc, nil
		default:
			return nil, fmt.Errorf("telemetry: unknown access trace block type %d", bt)
		}
	}
}
