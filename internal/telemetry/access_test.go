package telemetry

import (
	"bytes"
	"testing"
)

func TestAccessRecorderRoundTripJSON(t *testing.T) {
	r := NewAccessRecorder(2, 64, 1)
	s1 := r.BeginStep("hpf.fill_section:constgap")
	s2 := r.BeginStep("comm.pack")
	r.Record(0, 10, AccessWrite, s1)
	r.Record(0, 13, AccessWrite, s1)
	r.Record(1, 7, AccessRead, s2)
	r.Record(HostRank, 99, AccessRead, 0)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	doc, err := ReadAccessTrace(&buf)
	if err != nil {
		t.Fatalf("ReadAccessTrace: %v", err)
	}
	checkDoc(t, doc)
}

func TestAccessRecorderRoundTripBinary(t *testing.T) {
	r := NewAccessRecorder(2, 64, 1)
	s1 := r.BeginStep("hpf.fill_section:constgap")
	s2 := r.BeginStep("comm.pack")
	r.Record(0, 10, AccessWrite, s1)
	r.Record(0, 13, AccessWrite, s1)
	r.Record(1, 7, AccessRead, s2)
	r.Record(HostRank, 99, AccessRead, 0)

	var buf bytes.Buffer
	if err := r.WriteBinary(&buf); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	doc, err := ReadAccessTrace(&buf)
	if err != nil {
		t.Fatalf("ReadAccessTrace: %v", err)
	}
	checkDoc(t, doc)
}

func checkDoc(t *testing.T, doc *AccessDoc) {
	t.Helper()
	if doc.Schema != AccessSchema {
		t.Fatalf("schema = %q", doc.Schema)
	}
	if doc.Ranks != 2 || doc.Sample != 1 || doc.Dropped != 0 {
		t.Fatalf("header = %d ranks, sample %d, dropped %d", doc.Ranks, doc.Sample, doc.Dropped)
	}
	if len(doc.Steps) != 2 || doc.StepLabel(1) != "hpf.fill_section:constgap" || doc.StepLabel(2) != "comm.pack" {
		t.Fatalf("steps = %+v", doc.Steps)
	}
	byRank := map[int32][]AccessRec{}
	for _, seq := range doc.Seqs {
		byRank[seq.Rank] = seq.Accesses
	}
	r0 := byRank[0]
	if len(r0) != 2 || r0[0] != (AccessRec{Addr: 10, Step: 1, Write: true}) || r0[1] != (AccessRec{Addr: 13, Step: 1, Write: true}) {
		t.Fatalf("rank 0 = %+v", r0)
	}
	r1 := byRank[1]
	if len(r1) != 1 || r1[0] != (AccessRec{Addr: 7, Step: 2}) {
		t.Fatalf("rank 1 = %+v", r1)
	}
	host := byRank[HostRank]
	if len(host) != 1 || host[0] != (AccessRec{Addr: 99}) {
		t.Fatalf("host = %+v", host)
	}
}

func TestAccessRecorderSampling(t *testing.T) {
	r := NewAccessRecorder(1, 1024, 4)
	for i := 0; i < 100; i++ {
		r.Record(0, int64(i), AccessRead, 0)
	}
	doc := r.Doc()
	if len(doc.Seqs) != 1 {
		t.Fatalf("sequences = %d", len(doc.Seqs))
	}
	got := doc.Seqs[0].Accesses
	if len(got) != 25 {
		t.Fatalf("kept %d of 100 at sample=4, want 25", len(got))
	}
	// Every 4th access is the one retained.
	for i, a := range got {
		if want := int64(4*i + 3); a.Addr != want {
			t.Fatalf("kept[%d].Addr = %d, want %d", i, a.Addr, want)
		}
	}
}

func TestAccessRecorderOverwriteDropped(t *testing.T) {
	r := NewAccessRecorder(1, 64, 1)
	for i := 0; i < 200; i++ {
		r.Record(0, int64(i), AccessRead, 0)
	}
	if d := r.Dropped(); d != 200-64 {
		t.Fatalf("Dropped = %d, want %d", d, 200-64)
	}
	doc := r.Doc()
	got := doc.Seqs[0].Accesses
	if len(got) != 64 || got[0].Addr != 200-64 || got[63].Addr != 199 {
		t.Fatalf("retained window = %d records [%d..%d]", len(got), got[0].Addr, got[len(got)-1].Addr)
	}
	if doc.Dropped != 200-64 {
		t.Fatalf("doc.Dropped = %d", doc.Dropped)
	}
}

func TestAccessRecorderSpill(t *testing.T) {
	var spill bytes.Buffer
	r := NewAccessRecorder(1, 64, 1)
	if err := r.SpillTo(&spill); err != nil {
		t.Fatalf("SpillTo: %v", err)
	}
	s := r.BeginStep("hpf.map_section:generic")
	const total = 300 // 4 full flushes + a 44-record tail
	for i := 0; i < total; i++ {
		r.Record(0, int64(i), AccessWrite, s)
	}
	if d := r.Dropped(); d != 0 {
		t.Fatalf("Dropped in spill mode = %d", d)
	}
	if err := r.FinishSpill(); err != nil {
		t.Fatalf("FinishSpill: %v", err)
	}
	doc, err := ReadAccessTrace(&spill)
	if err != nil {
		t.Fatalf("ReadAccessTrace: %v", err)
	}
	if doc.Dropped != 0 {
		t.Fatalf("doc.Dropped = %d", doc.Dropped)
	}
	if len(doc.Seqs) != 1 {
		t.Fatalf("sequences = %d", len(doc.Seqs))
	}
	got := doc.Seqs[0].Accesses
	if len(got) != total {
		t.Fatalf("spilled %d records, want %d", len(got), total)
	}
	for i, a := range got {
		if a.Addr != int64(i) || a.Step != s || !a.Write {
			t.Fatalf("record %d = %+v", i, a)
		}
	}
	if doc.StepLabel(s) != "hpf.map_section:generic" {
		t.Fatalf("steps = %+v", doc.Steps)
	}
}

func TestAccessRecorderGuard(t *testing.T) {
	if ActiveAccessRecorder() != nil {
		t.Fatal("recorder active at test start")
	}
	r := StartAccessRecording(2, 128, 1)
	if ActiveAccessRecorder() != r {
		t.Fatal("ActiveAccessRecorder did not return the started recorder")
	}
	if got := StopAccessRecording(); got != r {
		t.Fatal("StopAccessRecording did not return the recorder")
	}
	if ActiveAccessRecorder() != nil {
		t.Fatal("recorder still active after stop")
	}
}

// The disabled hot path — the check every instrumented op performs — is
// a single atomic load and must never allocate.
func TestAccessDisabledPathZeroAllocs(t *testing.T) {
	StopAccessRecording()
	allocs := testing.AllocsPerRun(1000, func() {
		if ar := ActiveAccessRecorder(); ar != nil {
			ar.Record(0, 1, AccessRead, 0)
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled access check allocates %v allocs/op", allocs)
	}
}

// Ring-mode recording itself is allocation-free too: records land in
// preallocated buffers.
func TestAccessRecordZeroAllocs(t *testing.T) {
	r := NewAccessRecorder(1, 256, 1)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(0, 42, AccessWrite, 1)
	})
	if allocs != 0 {
		t.Fatalf("ring-mode Record allocates %v allocs/op", allocs)
	}
}
