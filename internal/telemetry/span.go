package telemetry

import (
	"context"
	"strconv"
	"sync/atomic"
	"time"
)

// Request-scoped spans.
//
// The SPMD tracer records per-rank timelines; a service like hpfd needs
// the orthogonal axis: one *request's* journey across goroutines —
// admission, singleflight, table build, kernel selection — stitched into
// a single causal trace. A Span is a named region of work carrying a
// W3C-trace-context identity (128-bit trace ID, 64-bit span ID, parent
// span ID) plus an optional cross-trace Link (a coalesced waiter links
// to the winning build's span). Spans record into the host ring of the
// process-wide tracer as ordinary KindSpan events, so every existing
// exporter — Chrome trace, trace/v1, /trace — carries them for free and
// hpfprof -serve reconstructs the request tree from the identity fields.
//
// When tracing is off (no active tracer) every operation here is a
// no-op that performs zero allocations — the same contract as the
// metrics record paths — so span instrumentation stays compiled into
// production request paths unconditionally.

// SpanContext is the identity of one span within one trace: the W3C
// trace-context triple minus the flags. The zero value means "no span".
type SpanContext struct {
	TraceHi, TraceLo uint64 // 128-bit trace ID, hi/lo halves
	Span             uint64 // 64-bit span ID
}

// Valid reports whether both the trace ID and span ID are nonzero —
// the W3C validity rule (all-zero IDs are forbidden).
func (sc SpanContext) Valid() bool {
	return sc.TraceHi|sc.TraceLo != 0 && sc.Span != 0
}

// TraceID renders the 128-bit trace ID as 32 lowercase hex digits.
func (sc SpanContext) TraceID() string {
	var b [32]byte
	putHex16(b[:16], sc.TraceHi)
	putHex16(b[16:], sc.TraceLo)
	return string(b[:])
}

// SpanID renders the 64-bit span ID as 16 lowercase hex digits.
func (sc SpanContext) SpanID() string { return SpanIDString(sc.Span) }

// SpanIDString renders any span identifier as 16 lowercase hex digits,
// the wire form used by traceparent and the trace/v1 export.
func SpanIDString(id uint64) string {
	var b [16]byte
	putHex16(b[:], id)
	return string(b[:])
}

const hexDigits = "0123456789abcdef"

func putHex16(dst []byte, v uint64) {
	for i := 15; i >= 0; i-- {
		dst[i] = hexDigits[v&0xf]
		v >>= 4
	}
}

// idState seeds the process-local ID generator. A splitmix64 walk from a
// time-seeded origin is collision-safe within a process and cheap enough
// for the request hot path (one atomic add, no allocation); IDs only
// need to be unique per trace, not cryptographically unpredictable.
var idState atomic.Uint64

func init() {
	idState.Store(uint64(time.Now().UnixNano()) * 0x9E3779B97F4A7C15)
}

func nextID() uint64 {
	x := idState.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 1 // the all-zero ID is reserved for "absent"
	}
	return x
}

// NewSpanID returns a fresh nonzero 64-bit span identifier.
func NewSpanID() uint64 { return nextID() }

// NewTraceID returns a fresh nonzero 128-bit trace identifier.
func NewTraceID() (hi, lo uint64) { return nextID(), nextID() }

// FormatTraceparent renders sc as a W3C traceparent header value
// (version 00, sampled flag set):
//
//	00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01
func FormatTraceparent(sc SpanContext) string {
	var b [55]byte
	b[0], b[1], b[2] = '0', '0', '-'
	putHex16(b[3:19], sc.TraceHi)
	putHex16(b[19:35], sc.TraceLo)
	b[35] = '-'
	putHex16(b[36:52], sc.Span)
	b[52], b[53], b[54] = '-', '0', '1'
	return string(b[:])
}

// ParseTraceparent parses a W3C traceparent header value. It accepts any
// known-format version (two hex digits other than "ff") and rejects
// malformed values and the all-zero trace or span IDs, per the spec.
func ParseTraceparent(s string) (SpanContext, bool) {
	var sc SpanContext
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return sc, false
	}
	version := s[0:2]
	if !isHex(version) || version == "ff" {
		return sc, false
	}
	// Version 00 has exactly 55 bytes; future versions may append
	// "-extra" fields, which we ignore.
	if len(s) > 55 && (version == "00" || s[55] != '-') {
		return sc, false
	}
	// isHex is checked separately because ParseUint would also accept
	// uppercase digits, which the spec forbids.
	if !isHex(s[3:35]) || !isHex(s[36:52]) || !isHex(s[53:55]) {
		return sc, false
	}
	hi, err1 := strconv.ParseUint(s[3:19], 16, 64)
	lo, err2 := strconv.ParseUint(s[19:35], 16, 64)
	span, err3 := strconv.ParseUint(s[36:52], 16, 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return sc, false
	}
	sc = SpanContext{TraceHi: hi, TraceLo: lo, Span: span}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// Span is one in-progress named region of request work. The zero value
// is a valid no-op span (Recording reports false, End does nothing), so
// instrumented code never branches on whether tracing is active.
type Span struct {
	tracer *Tracer
	sc     SpanContext
	parent uint64
	name   string
	start  int64
}

// Recording reports whether ending this span will record an event.
func (s Span) Recording() bool { return s.tracer != nil }

// Context returns the span's identity (zero when not recording).
func (s Span) Context() SpanContext { return s.sc }

// End records the span on the host timeline of the tracer it was
// started against. A no-op span ignores it.
func (s Span) End() { s.EndLink(0) }

// EndLink is End with a cross-trace causal link: link names the span ID
// of the operation in *another* request's trace that this span's
// duration was spent waiting on — e.g. a coalesced plan-cache waiter
// links to the winning build's span.
func (s Span) EndLink(link uint64) {
	if s.tracer == nil {
		return
	}
	s.tracer.Record(Event{
		Kind:    KindSpan,
		Name:    s.name,
		Rank:    HostRank,
		Peer:    -1,
		TraceHi: s.sc.TraceHi,
		TraceLo: s.sc.TraceLo,
		Span:    s.sc.Span,
		Parent:  s.parent,
		Link:    link,
		Start:   s.start,
		Dur:     s.tracer.Now() - s.start,
	})
}

// spanCtxKey carries the current Span through a context.Context.
type spanCtxKey struct{}

// SpanFromContext returns the span stored in ctx, if any.
func SpanFromContext(ctx context.Context) (Span, bool) {
	s, ok := ctx.Value(spanCtxKey{}).(Span)
	return s, ok
}

// StartSpan begins a span named name as a child of the span carried by
// ctx (inheriting its trace ID; a fresh trace is minted when ctx has
// none) and returns a derived context carrying the new span. When no
// tracer is active it returns ctx unchanged and a no-op span, with zero
// allocations.
func StartSpan(ctx context.Context, name string) (context.Context, Span) {
	t := active.Load()
	if t == nil {
		return ctx, Span{}
	}
	return startSpan(ctx, t, name, t.Now())
}

// StartSpanAt is StartSpan with an explicit start time (a Tracer.Now
// value captured earlier) — for spans whose existence is only known
// after the fact, e.g. a singleflight waiter that discovers it waited
// only once the winning build finishes.
func StartSpanAt(ctx context.Context, name string, start int64) (context.Context, Span) {
	t := active.Load()
	if t == nil {
		return ctx, Span{}
	}
	return startSpan(ctx, t, name, start)
}

func startSpan(ctx context.Context, t *Tracer, name string, start int64) (context.Context, Span) {
	s := Span{tracer: t, name: name, start: start, sc: SpanContext{Span: NewSpanID()}}
	if parent, ok := ctx.Value(spanCtxKey{}).(Span); ok {
		s.sc.TraceHi, s.sc.TraceLo = parent.sc.TraceHi, parent.sc.TraceLo
		s.parent = parent.sc.Span
	} else {
		s.sc.TraceHi, s.sc.TraceLo = NewTraceID()
	}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// StartRootSpan begins a request-root span with an explicit identity sc
// and remote parent span ID — the service entry point that has already
// parsed (or minted) the request's trace context so it can emit headers
// before knowing whether tracing is on. When no tracer is active it
// returns ctx unchanged and a no-op span, with zero allocations.
func StartRootSpan(ctx context.Context, name string, sc SpanContext, parent uint64) (context.Context, Span) {
	t := active.Load()
	if t == nil {
		return ctx, Span{}
	}
	s := Span{tracer: t, name: name, start: t.Now(), sc: sc, parent: parent}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}
