package telemetry

import (
	"bytes"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("machine.messages_sent").Add(7)
	r.Gauge("plancache.comm-1d.entries").Set(3)
	if err := r.RegisterGaugeFunc("trace.dropped_events", func() int64 { return 5 }); err != nil {
		t.Fatal(err)
	}
	h := r.Histogram("machine.recv_wait_ns")
	h.Observe(3)    // bucket le=3
	h.Observe(3)    // bucket le=3
	h.Observe(1000) // bucket le=1023
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE machine_messages_sent counter\nmachine_messages_sent 7\n",
		"# TYPE plancache_comm_1d_entries gauge\nplancache_comm_1d_entries 3\n",
		"trace_dropped_events 5\n",
		"# TYPE machine_recv_wait_ns histogram\n",
		"machine_recv_wait_ns_bucket{le=\"3\"} 2\n",
		"machine_recv_wait_ns_bucket{le=\"1023\"} 3\n", // cumulative
		"machine_recv_wait_ns_bucket{le=\"+Inf\"} 3\n",
		"machine_recv_wait_ns_sum 1006\n",
		"machine_recv_wait_ns_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

// TestWritePrometheusGolden pins the full exposition byte-for-byte:
// TYPE lines, sorted metric order, cumulative le-labelled buckets, the
// +Inf bucket, and the _sum/_count samples the text format (0.0.4)
// requires. Regenerate with: go test ./internal/telemetry -run Golden -update
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("machine.messages_sent").Add(7)
	r.Counter("codegen.kernel_invocations.constgap").Add(2)
	r.Gauge("plancache.comm-1d.entries").Set(3)
	if err := r.RegisterGaugeFunc("trace.dropped_events", func() int64 { return 5 }); err != nil {
		t.Fatal(err)
	}
	h := r.Histogram("machine.recv_wait_ns")
	for _, v := range []int64{0, 3, 3, 1000} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prometheus.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, buf.String(), want)
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"machine.recv_wait_ns": "machine_recv_wait_ns",
		"plancache.comm-1d":    "plancache_comm_1d",
		"9lives":               "_9lives",
		"ok_name:sub":          "ok_name:sub",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHandlerEndpoints(t *testing.T) {
	Default().Counter("machine.messages_sent").Add(1)
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "machine_messages_sent") {
		t.Errorf("/metrics = %d:\n%s", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, `"status":"ok"`) {
		t.Errorf("/healthz = %d: %s", code, body)
	}
	// No tracer active: /trace is 503.
	if code, _ := get("/trace"); code != 503 {
		t.Errorf("/trace without tracer = %d, want 503", code)
	}
	tr := StartTracing(2, 16)
	defer StopTracing()
	tr.Record(Event{Kind: KindSend, Name: "t", Rank: 0, Peer: 1, Seq: 1, Start: 5, Dur: 2})
	code, body := get("/trace")
	if code != 200 {
		t.Fatalf("/trace with tracer = %d", code)
	}
	doc, err := ReadTraceV1(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/trace is not a trace/v1 document: %v", err)
	}
	if doc.Ranks != 2 || len(doc.Events) != 1 {
		t.Errorf("trace doc = ranks %d events %d, want 2/1", doc.Ranks, len(doc.Events))
	}
	if code, _ := get("/nope"); code != 404 {
		t.Errorf("/nope = %d, want 404", code)
	}
}
