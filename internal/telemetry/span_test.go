package telemetry

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceHi: 0x0af7651916cd43dd, TraceLo: 0x8448eb211c80319c, Span: 0xb7ad6b7169203331}
	h := FormatTraceparent(sc)
	want := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	if h != want {
		t.Fatalf("FormatTraceparent = %q, want %q", h, want)
	}
	got, ok := ParseTraceparent(h)
	if !ok || got != sc {
		t.Fatalf("ParseTraceparent(%q) = %+v, %v; want %+v", h, got, ok, sc)
	}
}

func TestParseTraceparentMalformed(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	cases := []struct {
		name string
		in   string
		ok   bool
	}{
		{"valid", valid, true},
		{"empty", "", false},
		{"short", valid[:54], false},
		{"version ff", "ff" + valid[2:], false},
		{"future version", "cc" + valid[2:], true},
		{"future version with extension", "cc" + valid[2:] + "-extra", true},
		{"version 00 with trailing data", valid + "-extra", false},
		{"trailing garbage without dash", valid + "x", false},
		{"uppercase hex", strings.ToUpper(valid), false},
		{"bad separator", strings.Replace(valid, "-", "_", 1), false},
		{"nonhex trace", "00-zf7651916cd43dd8448eb211c80319c0-b7ad6b7169203331-01", false},
		{"nonhex span", "00-0af7651916cd43dd8448eb211c80319c-z7ad6b7169203331-01", false},
		{"zero trace", "00-00000000000000000000000000000000-b7ad6b7169203331-01", false},
		{"zero span", "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", false},
		{"nonhex flags", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-zz", false},
	}
	for _, tc := range cases {
		if _, ok := ParseTraceparent(tc.in); ok != tc.ok {
			t.Errorf("%s: ParseTraceparent(%q) ok = %v, want %v", tc.name, tc.in, ok, tc.ok)
		}
	}
}

func TestNewIDsNonzero(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := NewSpanID()
		if id == 0 {
			t.Fatal("NewSpanID returned 0")
		}
		if seen[id] {
			t.Fatalf("NewSpanID repeated %x after %d draws", id, i)
		}
		seen[id] = true
	}
	hi, lo := NewTraceID()
	if hi|lo == 0 {
		t.Fatal("NewTraceID returned all-zero")
	}
}

func TestSpanDisabledPathZeroAlloc(t *testing.T) {
	if ActiveTracer() != nil {
		t.Fatal("test requires no active tracer")
	}
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		c2, s := StartSpan(ctx, "disabled")
		s.End()
		_, rs := StartRootSpan(c2, "root", SpanContext{}, 0)
		rs.EndLink(7)
		_, as := StartSpanAt(c2, "at", 0)
		as.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocated %v allocs/op, want 0", allocs)
	}
	if _, s := StartSpan(ctx, "x"); s.Recording() {
		t.Fatal("span reports Recording with no active tracer")
	}
}

func TestSpanRecordsAndParents(t *testing.T) {
	tr := StartTracing(0, 64)
	defer StopTracing()

	ctx, root := StartSpan(context.Background(), "request")
	if !root.Recording() || !root.Context().Valid() {
		t.Fatalf("root span not recording or invalid: %+v", root.Context())
	}
	cctx, child := StartSpan(ctx, "build")
	if child.Context().TraceHi != root.Context().TraceHi || child.Context().TraceLo != root.Context().TraceLo {
		t.Fatal("child did not inherit trace ID")
	}
	if got, ok := SpanFromContext(cctx); !ok || got.Context() != child.Context() {
		t.Fatal("SpanFromContext did not return the child span")
	}
	child.EndLink(0xdead)
	root.End()

	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	ce, re := events[0], events[1]
	if ce.Kind != KindSpan || ce.Name != "build" || ce.Rank != HostRank {
		t.Fatalf("child event = %+v", ce)
	}
	if ce.Parent != root.Context().Span {
		t.Fatalf("child Parent = %x, want root span %x", ce.Parent, root.Context().Span)
	}
	if ce.Link != 0xdead {
		t.Fatalf("child Link = %x, want dead", ce.Link)
	}
	if re.Parent != 0 {
		t.Fatalf("root Parent = %x, want 0", re.Parent)
	}
	if re.Dur < ce.Dur || re.Start > ce.Start {
		t.Fatalf("root should contain child: root [%d,+%d] child [%d,+%d]", re.Start, re.Dur, ce.Start, ce.Dur)
	}
}

func TestStartRootSpanUsesGivenIdentity(t *testing.T) {
	StartTracing(0, 16)
	defer StopTracing()

	sc := SpanContext{TraceHi: 1, TraceLo: 2, Span: 3}
	ctx, root := StartRootSpan(context.Background(), "request", sc, 9)
	_, child := StartSpan(ctx, "inner")
	if child.Context().TraceHi != 1 || child.Context().TraceLo != 2 {
		t.Fatal("child did not inherit explicit trace ID")
	}
	child.End()
	root.End()

	events := ActiveTracer().Events()
	re := events[1]
	if re.TraceHi != 1 || re.TraceLo != 2 || re.Span != 3 || re.Parent != 9 {
		t.Fatalf("root event identity = %+v", re)
	}
}

func TestStartSpanAtBackdates(t *testing.T) {
	tr := StartTracing(0, 16)
	defer StopTracing()

	start := tr.Now()
	_, s := StartSpanAt(context.Background(), "wait", start)
	s.End()
	e := tr.Events()[0]
	if e.Start != start {
		t.Fatalf("Start = %d, want %d", e.Start, start)
	}
}

func TestTraceV1RoundTripsSpanIdentity(t *testing.T) {
	tr := StartTracing(0, 16)
	defer StopTracing()

	ctx, root := StartSpan(context.Background(), "request")
	_, child := StartSpan(ctx, "build")
	child.EndLink(0xfeed)
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteTraceV1(&buf); err != nil {
		t.Fatal(err)
	}
	doc, err := ReadTraceV1(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := doc.RuntimeEvents()
	want := tr.Events()
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	// Spot-check the wire form is hex strings.
	ce := doc.Events[0]
	if ce.Trace != root.Context().TraceID() || ce.Link != "000000000000feed" {
		t.Fatalf("wire event = %+v", ce)
	}
}

func TestReadTraceV1RejectsMalformedSpanIDs(t *testing.T) {
	for _, body := range []string{
		`{"schema":"trace/v1","ranks":0,"capacity":1,"events":[{"kind":"span","name":"x","rank":-1,"peer":-1,"trace":"nothex"}]}`,
		`{"schema":"trace/v1","ranks":0,"capacity":1,"events":[{"kind":"span","name":"x","rank":-1,"peer":-1,"span":"123"}]}`,
		`{"schema":"trace/v1","ranks":0,"capacity":1,"events":[{"kind":"span","name":"x","rank":-1,"peer":-1,"link":"ZZZZZZZZZZZZZZZZ"}]}`,
	} {
		if _, err := ReadTraceV1(strings.NewReader(body)); err == nil {
			t.Errorf("ReadTraceV1 accepted malformed doc %s", body)
		}
	}
}

func TestChromeTraceCarriesSpanArgs(t *testing.T) {
	tr := StartTracing(0, 16)
	defer StopTracing()

	ctx, root := StartSpan(context.Background(), "request")
	_, child := StartSpan(ctx, "build")
	child.EndLink(42)
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"trace": "` + root.Context().TraceID() + `"`,
		`"span": "` + child.Context().SpanID() + `"`,
		`"parent": "` + root.Context().SpanID() + `"`,
		`"link": "000000000000002a"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome trace missing %s", want)
		}
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	if ActiveTracer() != nil {
		b.Fatal("benchmark requires no active tracer")
	}
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c2, s := StartSpan(ctx, "disabled")
		_ = c2
		s.End()
	}
}

func BenchmarkSpanRecord(b *testing.B) {
	StartTracing(0, 1<<14)
	defer StopTracing()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c2, s := StartSpan(ctx, "request")
		_ = c2
		s.End()
	}
}
