package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestTracerRingOverwrite(t *testing.T) {
	tr := NewTracer(1, 16)
	for i := 0; i < 40; i++ {
		tr.Record(Event{Kind: KindSend, Name: "t", Rank: 0, Start: int64(i)})
	}
	events := tr.Events()
	if len(events) != 16 {
		t.Fatalf("retained %d events, want 16", len(events))
	}
	// Oldest retained should be event 24 (40 recorded, 16 kept).
	if events[0].Start != 24 || events[15].Start != 39 {
		t.Errorf("ring kept [%d, %d], want [24, 39]", events[0].Start, events[15].Start)
	}
	if d := tr.Dropped(); d != 24 {
		t.Errorf("Dropped() = %d, want 24", d)
	}
}

func TestTracerRankRouting(t *testing.T) {
	tr := NewTracer(2, 16)
	tr.Record(Event{Kind: KindSend, Name: "a", Rank: 0, Start: 1})
	tr.Record(Event{Kind: KindSend, Name: "b", Rank: 1, Start: 2})
	tr.Record(Event{Kind: KindSpan, Name: "c", Rank: HostRank, Start: 3})
	tr.Record(Event{Kind: KindSpan, Name: "d", Rank: 99, Start: 4}) // out of range → host
	events := tr.Events()
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}
	// Events returns rings in order: rank 0, rank 1, host.
	if events[0].Name != "a" || events[1].Name != "b" || events[2].Name != "c" || events[3].Name != "d" {
		t.Errorf("unexpected ring order: %+v", events)
	}
}

func TestStartStopTracing(t *testing.T) {
	if ActiveTracer() != nil {
		t.Fatal("tracer active at test start")
	}
	tr := StartTracing(2, 64)
	if ActiveTracer() != tr {
		t.Error("StartTracing did not install the tracer")
	}
	if got := StopTracing(); got != tr {
		t.Error("StopTracing did not return the installed tracer")
	}
	if ActiveTracer() != nil {
		t.Error("tracer still active after StopTracing")
	}
	if StopTracing() != nil {
		t.Error("second StopTracing should return nil")
	}
}

func TestEndSpan(t *testing.T) {
	tr := NewTracer(1, 16)
	start := tr.Now()
	tr.EndSpan(0, "work", start)
	events := tr.Events()
	if len(events) != 1 {
		t.Fatalf("got %d events", len(events))
	}
	e := events[0]
	if e.Kind != KindSpan || e.Name != "work" || e.Start != start || e.Dur < 0 {
		t.Errorf("bad span event: %+v", e)
	}
}

// goldenTracer records a fixed event sequence with explicit timestamps,
// so the Chrome export is byte-for-byte reproducible.
func goldenTracer() *Tracer {
	tr := NewTracer(2, 64)
	tr.Record(Event{Kind: KindSpan, Name: "comm.plan", Rank: HostRank, Peer: -1, Start: 1000, Dur: 5000})
	tr.Record(Event{Kind: KindSend, Name: "comm.copy", Rank: 0, Peer: 1, Bytes: 256, Seq: 1, Start: 7000, Dur: 100})
	tr.Record(Event{Kind: KindRecv, Name: "comm.copy", Rank: 1, Peer: 0, Bytes: 256, Seq: 1, Start: 7100, Dur: 900})
	tr.Record(Event{Kind: KindSend, Name: "comm.lost", Rank: 0, Peer: 1, Bytes: 64, Seq: 1, Start: 8000})
	tr.Record(Event{Kind: KindBarrier, Name: "barrier", Rank: 0, Peer: -1, Start: 9000, Dur: 1500})
	tr.Record(Event{Kind: KindBarrier, Name: "barrier", Rank: 1, Peer: -1, Start: 9200, Dur: 1300})
	tr.Record(Event{Kind: KindReduce, Name: "allreduce", Rank: 0, Peer: -1, Start: 11000, Dur: 2000})
	tr.Record(Event{Kind: KindReduce, Name: "allreduce", Rank: 1, Peer: -1, Start: 11050, Dur: 1950})
	return tr
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTracer().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace_golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace drifted from golden file:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestChromeTraceParses(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTracer().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	// 3 thread_name + 1 process_name metadata + 8 events + 1 flow pair.
	if len(doc.TraceEvents) != 14 {
		t.Errorf("got %d trace events, want 14", len(doc.TraceEvents))
	}
	phs := map[string]int{}
	for _, e := range doc.TraceEvents {
		phs[e["ph"].(string)]++
	}
	// The matched comm.copy pair becomes one s/f flow pair; the
	// zero-duration comm.lost send stays an instant, and its recv never
	// happened, so it contributes no flow events.
	if phs["M"] != 4 || phs["i"] != 1 || phs["X"] != 7 || phs["s"] != 1 || phs["f"] != 1 {
		t.Errorf("phase counts = %v, want M:4 i:1 X:7 s:1 f:1", phs)
	}
	if got := doc.OtherData["ranks"]; got != float64(2) {
		t.Errorf("otherData ranks = %v, want 2", got)
	}
	if got := doc.OtherData["dropped"]; got != float64(0) {
		t.Errorf("otherData dropped = %v, want 0", got)
	}
}

func TestWriteSummary(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTracer().WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"rank", "comm.plan", "spans"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
