package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies a trace event. Every kind carries a duration: for
// sends it is the (short) time spent delivering into the destination
// mailbox, for receives and barriers the time spent blocked waiting.
type Kind uint8

const (
	KindSpan    Kind = iota // a named region of work (plan build, execute, exchange)
	KindSend                // point-to-point send: Peer is the destination, Bytes the payload
	KindRecv                // point-to-point receive: Dur is the time blocked waiting
	KindBarrier             // barrier wait
	KindReduce              // collective operation (reduce, bcast, gather, alltoall)
)

// String returns the Chrome-trace category name for the kind.
func (k Kind) String() string {
	switch k {
	case KindSpan:
		return "span"
	case KindSend:
		return "send"
	case KindRecv:
		return "recv"
	case KindBarrier:
		return "barrier"
	case KindReduce:
		return "reduce"
	}
	return "unknown"
}

// KindFromString parses a category name produced by Kind.String.
func KindFromString(s string) (Kind, bool) {
	switch s {
	case "span":
		return KindSpan, true
	case "send":
		return KindSend, true
	case "recv":
		return KindRecv, true
	case "barrier":
		return KindBarrier, true
	case "reduce":
		return KindReduce, true
	}
	return KindSpan, false
}

// HostRank is the timeline for work that happens outside any SPMD body:
// plan construction, cache fills, driver code.
const HostRank = -1

// Event is one record on a rank's timeline. Start and Dur are
// nanoseconds since the tracer's epoch; Dur 0 marks an instant. Peer -1
// means no counterpart.
//
// For KindSend and KindRecv, Seq is the per-(sender, receiver, tag)
// FIFO sequence number the machine assigned to the message (first
// message is 1; 0 means "unknown", e.g. a trace recorded before
// sequence numbers existed). A send and a recv with equal
// (src, dst, name, seq) describe the same message, which is how the
// trace-analysis layer stitches per-rank timelines into a causal
// happens-before graph.
// For KindSpan, the TraceHi/TraceLo/Span/Parent/Link fields carry the
// W3C-style request-trace identity recorded by the Span API (span.go):
// a 128-bit trace ID, this span's 64-bit ID, its parent span within the
// same trace, and an optional cross-trace causal link (a singleflight
// waiter links to the winning build's span). All five are 0 for events
// that are not request-scoped.
type Event struct {
	Kind    Kind
	Name    string
	Rank    int32
	Peer    int32
	Bytes   int64
	Seq     int64
	Start   int64
	Dur     int64
	TraceHi uint64
	TraceLo uint64
	Span    uint64
	Parent  uint64
	Link    uint64
}

// MessagePair links a send event to its matching recv event by index
// into the slice passed to MatchMessages.
type MessagePair struct {
	Send, Recv int
}

// MatchMessages pairs send events with the recv events that consumed
// them, keyed by (src, dst, tag, seq). Events with Seq ≤ 0 are skipped
// (no sequence information). When a key occurs more than once — e.g. a
// trace spanning several machines, or a duplicated message under fault
// injection — occurrences are paired in timestamp order. Unmatched
// events (the counterpart was overwritten in its ring, or the message
// was dropped) are simply absent from the result.
func MatchMessages(events []Event) []MessagePair {
	type key struct {
		src, dst int32
		tag      string
		seq      int64
	}
	sends := map[key][]int{}
	recvs := map[key][]int{}
	for i, e := range events {
		if e.Seq <= 0 {
			continue
		}
		switch e.Kind {
		case KindSend:
			k := key{src: e.Rank, dst: e.Peer, tag: e.Name, seq: e.Seq}
			sends[k] = append(sends[k], i)
		case KindRecv:
			k := key{src: e.Peer, dst: e.Rank, tag: e.Name, seq: e.Seq}
			recvs[k] = append(recvs[k], i)
		}
	}
	var pairs []MessagePair
	for k, ss := range sends {
		rs := recvs[k]
		if len(rs) == 0 {
			continue
		}
		byStart := func(idx []int) {
			sort.Slice(idx, func(a, b int) bool { return events[idx[a]].Start < events[idx[b]].Start })
		}
		byStart(ss)
		byStart(rs)
		n := len(ss)
		if len(rs) < n {
			n = len(rs)
		}
		for i := 0; i < n; i++ {
			pairs = append(pairs, MessagePair{Send: ss[i], Recv: rs[i]})
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if sa, sb := events[pairs[a].Send].Start, events[pairs[b].Send].Start; sa != sb {
			return sa < sb
		}
		return pairs[a].Send < pairs[b].Send
	})
	return pairs
}

// Tracer records SPMD events into fixed-capacity per-rank ring buffers:
// one ring per processor rank plus one for HostRank. Recording takes the
// ring's mutex (uncontended in SPMD use — each rank records from its own
// goroutine) and never allocates; when a ring is full the oldest events
// are overwritten.
type Tracer struct {
	epoch time.Time
	ranks int
	rings []eventRing // rings[0..ranks-1] per rank, rings[ranks] is the host
}

type eventRing struct {
	mu  sync.Mutex
	buf []Event
	n   uint64 // total events ever recorded; buf[(n-1)%cap] is newest
}

// NewTracer creates a tracer for the given number of processor ranks
// with capacity events retained per rank (minimum 16).
func NewTracer(ranks, capacity int) *Tracer {
	if ranks < 0 {
		ranks = 0
	}
	if capacity < 16 {
		capacity = 16
	}
	t := &Tracer{epoch: time.Now(), ranks: ranks}
	t.rings = make([]eventRing, ranks+1)
	for i := range t.rings {
		t.rings[i].buf = make([]Event, capacity)
	}
	return t
}

// Ranks returns the number of processor timelines (excluding the host).
func (t *Tracer) Ranks() int { return t.ranks }

// Now returns nanoseconds since the tracer's epoch — the Start value for
// events recorded now.
func (t *Tracer) Now() int64 { return time.Since(t.epoch).Nanoseconds() }

// ring maps a rank (HostRank or [0, ranks)) to its ring; out-of-range
// ranks fold onto the host ring rather than corrupting memory.
func (t *Tracer) ring(rank int32) *eventRing {
	if rank >= 0 && int(rank) < t.ranks {
		return &t.rings[rank]
	}
	return &t.rings[t.ranks]
}

// Record appends e to the ring of e.Rank. It never allocates; callers on
// hot paths pass string constants as Name.
func (t *Tracer) Record(e Event) {
	r := t.ring(e.Rank)
	r.mu.Lock()
	r.buf[r.n%uint64(len(r.buf))] = e
	r.n++
	r.mu.Unlock()
}

// EndSpan records a KindSpan event on rank's timeline that began at
// start (a value from Now) and ends now.
func (t *Tracer) EndSpan(rank int32, name string, start int64) {
	t.Record(Event{Kind: KindSpan, Name: name, Rank: rank, Peer: -1, Start: start, Dur: t.Now() - start})
}

// Events returns every retained event, oldest first per ring, host ring
// last. Export-path only; allocates.
func (t *Tracer) Events() []Event {
	var out []Event
	for i := range t.rings {
		r := &t.rings[i]
		r.mu.Lock()
		c := uint64(len(r.buf))
		kept := r.n
		if kept > c {
			kept = c
		}
		for j := uint64(0); j < kept; j++ {
			out = append(out, r.buf[(r.n-kept+j)%c])
		}
		r.mu.Unlock()
	}
	return out
}

// Dropped returns how many events were overwritten because their ring
// was full.
func (t *Tracer) Dropped() int64 {
	var d int64
	for i := range t.rings {
		r := &t.rings[i]
		r.mu.Lock()
		if c := uint64(len(r.buf)); r.n > c {
			d += int64(r.n - c)
		}
		r.mu.Unlock()
	}
	return d
}

// active is the process-wide tracer consulted by the instrumented
// packages; nil (the default) disables tracing with a single atomic
// load on the hot path.
var active atomic.Pointer[Tracer]

// DroppedGauge is the computed gauge StartTracing registers in the
// default registry: how many trace events the active tracer has
// overwritten because a ring was full. A nonzero value means exported
// traces are truncated and analysis built on them (critical path,
// breakdowns) is skewed toward the end of the run.
const DroppedGauge = "trace.dropped_events"

// StartTracing installs a new process-wide tracer for ranks processor
// timelines with the given per-rank event capacity, and returns it. The
// tracer's overwrite count is published as the computed gauge
// "trace.dropped_events" in the default registry until StopTracing.
func StartTracing(ranks, capacity int) *Tracer {
	t := NewTracer(ranks, capacity)
	active.Store(t)
	Default().UnregisterGaugeFunc(DroppedGauge)
	_ = Default().RegisterGaugeFunc(DroppedGauge, func() int64 {
		if tr := active.Load(); tr != nil {
			return tr.Dropped()
		}
		return t.Dropped() // stopped: keep reporting the final count
	})
	return t
}

// StopTracing uninstalls and returns the process-wide tracer (nil if
// none was active). The returned tracer can still be exported.
func StopTracing() *Tracer {
	return active.Swap(nil)
}

// ActiveTracer returns the process-wide tracer, or nil when tracing is
// off. Instrumented code checks for nil before doing any timing work.
func ActiveTracer() *Tracer { return active.Load() }

// chromeEvent is one entry of the Chrome trace_event JSON array
// (ph "X" = complete event with duration, "i" = instant, "M" =
// metadata). Timestamps are microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	ID    int            `json:"id,omitempty"`
	Bp    string         `json:"bp,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// chromeTid maps a rank to a Chrome thread id: ranks keep their number,
// the host timeline goes below them as tid ranks.
func (t *Tracer) chromeTid(rank int32) int {
	if rank >= 0 && int(rank) < t.ranks {
		return int(rank)
	}
	return t.ranks
}

// WriteChromeTrace writes every retained event as a Chrome trace_event
// JSON document loadable in chrome://tracing and Perfetto: one thread
// per rank (plus "host"), complete events for every kind (sends carry
// their short delivery duration, zero-duration events render as
// instants), with peer, byte counts and message sequence numbers in
// args. Matched send→recv pairs additionally emit flow events
// (ph "s"/"f") so viewers draw an arrow from each send slice to the
// receive it unblocked. The document's otherData block records the rank
// count and the number of overwritten ring events, which the
// trace-analysis loader reads back.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	sort.SliceStable(events, func(i, j int) bool { return events[i].Start < events[j].Start })

	var out []chromeEvent
	// Thread names first, so viewers label every timeline even when a
	// rank recorded nothing.
	out = append(out, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": "spmd machine"},
	})
	for r := 0; r <= t.ranks; r++ {
		name := fmt.Sprintf("rank %d", r)
		if r == t.ranks {
			name = "host"
		}
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: r,
			Args: map[string]any{"name": name},
		})
	}
	for _, e := range events {
		ce := chromeEvent{
			Name: e.Name,
			Cat:  e.Kind.String(),
			Ts:   float64(e.Start) / 1e3,
			Pid:  0,
			Tid:  t.chromeTid(e.Rank),
		}
		if e.Peer >= 0 || e.Bytes > 0 || e.Seq > 0 || e.Span != 0 {
			ce.Args = map[string]any{}
			if e.Peer >= 0 {
				ce.Args["peer"] = e.Peer
			}
			if e.Bytes > 0 {
				ce.Args["bytes"] = e.Bytes
			}
			if e.Seq > 0 {
				ce.Args["seq"] = e.Seq
			}
			// Request-scoped span identity, as the same hex strings the
			// trace/v1 export and traceparent headers use.
			if e.Span != 0 {
				ce.Args["trace"] = SpanContext{TraceHi: e.TraceHi, TraceLo: e.TraceLo}.TraceID()
				ce.Args["span"] = SpanIDString(e.Span)
				if e.Parent != 0 {
					ce.Args["parent"] = SpanIDString(e.Parent)
				}
				if e.Link != 0 {
					ce.Args["link"] = SpanIDString(e.Link)
				}
			}
		}
		if e.Dur == 0 {
			ce.Ph = "i"
			ce.Scope = "t"
		} else {
			ce.Ph = "X"
			ce.Dur = float64(e.Dur) / 1e3
		}
		out = append(out, ce)
	}
	// Flow events: one s/f pair per matched message, anchored inside the
	// send and recv slices so Perfetto binds the arrow to them ("bp":"e"
	// attaches the finish to the enclosing slice, i.e. the recv wait).
	for flowID, pr := range MatchMessages(events) {
		s, r := events[pr.Send], events[pr.Recv]
		out = append(out,
			chromeEvent{
				Name: s.Name, Cat: "msg", Ph: "s", ID: flowID + 1,
				Ts: float64(s.Start+s.Dur/2) / 1e3, Pid: 0, Tid: t.chromeTid(s.Rank),
			},
			chromeEvent{
				Name: s.Name, Cat: "msg", Ph: "f", Bp: "e", ID: flowID + 1,
				Ts: float64(r.Start+r.Dur/2) / 1e3, Pid: 0, Tid: t.chromeTid(r.Rank),
			})
	}
	doc := chromeTrace{
		TraceEvents:     out,
		DisplayTimeUnit: "ns",
		OtherData: map[string]any{
			"ranks":   t.ranks,
			"dropped": t.Dropped(),
		},
	}
	data, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteSummary writes a plain-text per-rank digest of the retained
// events: message/barrier/collective counts, bytes sent, and the total
// time attributed to each span name.
func (t *Tracer) WriteSummary(w io.Writer) error {
	events := t.Events()
	type rankAgg struct {
		sends, recvs, barriers, reduces int64
		bytesOut                        int64
		recvWaitNs, barrierWaitNs       int64
	}
	aggs := make([]rankAgg, t.ranks+1)
	spanNs := map[string]int64{}
	spanCount := map[string]int64{}
	for _, e := range events {
		a := &aggs[t.chromeTid(e.Rank)]
		switch e.Kind {
		case KindSend:
			a.sends++
			a.bytesOut += e.Bytes
		case KindRecv:
			a.recvs++
			a.recvWaitNs += e.Dur
		case KindBarrier:
			a.barriers++
			a.barrierWaitNs += e.Dur
		case KindReduce:
			a.reduces++
		case KindSpan:
			spanNs[e.Name] += e.Dur
			spanCount[e.Name]++
		}
	}
	var err error
	pr := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pr("rank   sends  recvs  barriers  collectives  bytes_out  recv_wait  barrier_wait\n")
	for r := 0; r <= t.ranks; r++ {
		a := aggs[r]
		label := fmt.Sprintf("%4d", r)
		if r == t.ranks {
			if a == (rankAgg{}) {
				continue // host rarely sends; skip an all-zero line
			}
			label = "host"
		}
		pr("%s  %6d %6d %9d %12d %10d %10s %13s\n",
			label, a.sends, a.recvs, a.barriers, a.reduces, a.bytesOut,
			time.Duration(a.recvWaitNs), time.Duration(a.barrierWaitNs))
	}
	if len(spanNs) > 0 {
		pr("spans (total time by name, all ranks):\n")
		names := make([]string, 0, len(spanNs))
		for name := range spanNs {
			names = append(names, name)
		}
		sort.Slice(names, func(i, j int) bool { return spanNs[names[i]] > spanNs[names[j]] })
		for _, name := range names {
			pr("  %-32s %6d× %12s\n", name, spanCount[name], time.Duration(spanNs[name]))
		}
	}
	if d := t.Dropped(); d > 0 {
		pr("(%d events dropped: ring buffers full)\n", d)
	}
	return err
}
