package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// WritePrometheus writes a snapshot of the registry in the Prometheus
// text exposition format (version 0.0.4): counters and gauges as single
// samples, histograms with cumulative le-labelled buckets plus _sum and
// _count. Dotted metric names become underscore-separated
// (machine.recv_wait_ns → machine_recv_wait_ns); computed gauges are
// evaluated at write time.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	var err error
	pr := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, name := range sortedKeys(s.Counters) {
		pn := promName(name)
		pr("# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := promName(name)
		pr("# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name])
	}
	names := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		pn := promName(name)
		pr("# TYPE %s histogram\n", pn)
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			pr("%s_bucket{le=\"%d\"} %d\n", pn, b.Le, cum)
		}
		pr("%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		pr("%s_sum %d\n", pn, h.Sum)
		pr("%s_count %d\n", pn, h.Count)
	}
	return err
}

// promName maps a dotted metric name onto the Prometheus name charset
// [a-zA-Z0-9_:], replacing every other rune with '_' and prefixing a
// leading digit.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if c >= '0' && c <= '9' && i == 0 {
			b.WriteByte('_')
			ok = true
		}
		if ok {
			b.WriteRune(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Handler returns the live exposition surface served by the CLIs'
// -http flag:
//
//	/metrics — the default registry in Prometheus text format
//	/trace   — the active tracer's rings as a trace/v1 JSON document
//	           (503 when tracing is off)
//	/healthz — a small JSON health document
//
// All endpoints read live state: scraping during a run observes the
// run in flight.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = Default().WritePrometheus(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		t := ActiveTracer()
		if t == nil {
			http.Error(w, "tracing is not active", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = t.WriteTraceV1(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		t := ActiveTracer()
		doc := map[string]any{
			"status":  "ok",
			"tracing": t != nil,
		}
		if t != nil {
			doc["ranks"] = t.Ranks()
			doc["dropped_events"] = t.Dropped()
		}
		w.Header().Set("Content-Type", "application/json")
		data, _ := json.Marshal(doc)
		w.Write(append(data, '\n'))
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "endpoints: /metrics /trace /healthz\n")
	})
	return mux
}
