// Package telemetry is the runtime's unified observability substrate:
// a process-wide metrics registry (counters, gauges, histograms with
// power-of-two buckets) and an SPMD event tracer that records per-rank
// timelines exportable as Chrome trace_event JSON.
//
// The paper's evaluation (Section 6, Tables 1-2, Figures 7-8) is
// entirely about measuring the address-generation runtime; this package
// gives every layer of the stack — the simulated machine, the plan
// caches, the communication sets, the section runtime — one consistent
// way to report what it did and how long it took. Recording a sample is
// allocation free and uses only atomic operations, so instrumentation
// stays on in production paths; exporting (JSON, text, Chrome trace)
// may allocate freely.
//
// Metric names are dotted lowercase paths (`machine.messages_sent`,
// `plancache.comm.plan1d.hits`). The JSON export carries the schema tag
// "telemetry/v1" (see README, Observability).
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Schema identifies the registry's JSON export format.
const Schema = "telemetry/v1"

// Counter is a monotonically increasing int64 metric. The zero value is
// ready to use; Add is safe for concurrent callers and never allocates.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable int64 metric. The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores n as the gauge's current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the gauge's current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// NumBuckets is the number of histogram buckets. Bucket 0 counts
// observations ≤ 0; bucket i (1 ≤ i < NumBuckets) counts observations v
// with 2^(i-1) ≤ v < 2^i, so the buckets cover the full positive int64
// range with power-of-two boundaries — the right shape for latencies in
// nanoseconds and message sizes in bytes.
const NumBuckets = 64

// Histogram accumulates int64 observations into power-of-two buckets.
// The zero value is ready to use; Observe is wait-free and never
// allocates.
type Histogram struct {
	buckets [NumBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// bucketIndex returns the bucket an observation falls into.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketUpperBound returns the largest value counted by bucket i.
func BucketUpperBound(i int) int64 {
	switch {
	case i <= 0:
		return 0
	case i >= NumBuckets-1:
		return math.MaxInt64
	default:
		return int64(1)<<i - 1
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest non-negative sample recorded (0 before any
// positive observation) — the exact counterpart to the bucketed
// quantile upper bounds.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1) of the
// recorded samples: the upper boundary of the bucket the quantile falls
// into. Returns 0 when no samples have been recorded.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < NumBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			return BucketUpperBound(i)
		}
	}
	return BucketUpperBound(NumBuckets - 1)
}

// Bucket is one nonempty histogram bucket in a snapshot: Count samples
// were ≤ Le (and greater than the previous bucket's Le).
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Max     int64    `json:"max"`
	P50     int64    `json:"p50"`
	P90     int64    `json:"p90"`
	P99     int64    `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// snapshot copies the histogram's current state. Concurrent Observe
// calls may land between bucket reads; each read is atomic, so the
// result is a valid (if slightly racy) histogram.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
	for i := 0; i < NumBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, Bucket{Le: BucketUpperBound(i), Count: n})
		}
	}
	return s
}

// Registry is a concurrency-safe collection of named metrics. Metric
// handles are created on first use and live for the registry's
// lifetime, so packages fetch them once (package vars) and record
// through the returned pointer with no further lookups.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() int64
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]func() int64),
		histograms: make(map[string]*Histogram),
	}
}

// defaultRegistry is the process-wide registry every package records to.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	h = &Histogram{}
	r.histograms[name] = h
	return h
}

// RegisterGaugeFunc registers a gauge whose value is computed at
// snapshot time by calling f — the bridge for subsystems that already
// keep their own counters (e.g. plan-cache shards). Registering a name
// that is already a computed or plain gauge returns an error instead of
// silently shadowing the earlier metric.
func (r *Registry) RegisterGaugeFunc(name string, f func() int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.gaugeFuncs[name]; dup {
		return fmt.Errorf("telemetry: gauge func %q already registered", name)
	}
	if _, dup := r.gauges[name]; dup {
		return fmt.Errorf("telemetry: gauge %q already exists; cannot shadow it with a gauge func", name)
	}
	r.gaugeFuncs[name] = f
	return nil
}

// UnregisterGaugeFunc removes a computed gauge, freeing its name for
// re-registration — the teardown half of RegisterGaugeFunc for
// subsystems with bounded lifetimes (tests, per-run caches).
func (r *Registry) UnregisterGaugeFunc(name string) {
	r.mu.Lock()
	delete(r.gaugeFuncs, name)
	r.mu.Unlock()
}

// Snapshot is a point-in-time copy of every metric in a registry,
// marshalable as the telemetry/v1 JSON document.
type Snapshot struct {
	Schema     string                       `json:"schema"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the current value of every metric. Computed gauges
// (RegisterGaugeFunc) are evaluated here.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{Schema: Schema}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 || len(r.gaugeFuncs) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges)+len(r.gaugeFuncs))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
		for name, f := range r.gaugeFuncs {
			s.Gauges[name] = f()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			s.Histograms[name] = h.snapshot()
		}
	}
	return s
}

// Reset zeroes every counter, gauge and histogram. Computed gauges are
// left registered; they reflect external state.
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.histograms {
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
		h.count.Store(0)
		h.sum.Store(0)
		h.max.Store(0)
	}
}

// WriteJSON writes the registry snapshot as an indented telemetry/v1
// JSON document.
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteText writes a sorted plain-text summary of the registry, the
// human-readable counterpart of WriteJSON.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	var err error
	pr := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	if len(s.Counters) > 0 {
		pr("counters:\n")
		for _, name := range sortedKeys(s.Counters) {
			pr("  %-44s %12d\n", name, s.Counters[name])
		}
	}
	if len(s.Gauges) > 0 {
		pr("gauges:\n")
		for _, name := range sortedKeys(s.Gauges) {
			pr("  %-44s %12d\n", name, s.Gauges[name])
		}
	}
	if len(s.Histograms) > 0 {
		pr("histograms:\n")
		names := make([]string, 0, len(s.Histograms))
		for name := range s.Histograms {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			h := s.Histograms[name]
			mean := int64(0)
			if h.Count > 0 {
				mean = h.Sum / h.Count
			}
			pr("  %-44s count=%d mean=%d p50≤%d p90≤%d p99≤%d max=%d\n",
				name, h.Count, mean, h.P50, h.P90, h.P99, h.Max)
		}
	}
	return err
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
