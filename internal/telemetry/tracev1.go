package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// TraceSchema identifies the tracer's self-describing JSON export. The
// Chrome trace_event export is for viewers (chrome://tracing,
// Perfetto); trace/v1 is for tools — it round-trips every Event field
// (including the message sequence numbers analysis needs) and carries
// the overwrite count so a consumer can tell a complete trace from a
// truncated one.
const TraceSchema = "trace/v1"

// TraceDoc is the trace/v1 JSON document: the tracer's identity plus
// every retained event, oldest first per ring, host ring last.
type TraceDoc struct {
	Schema   string       `json:"schema"`
	Ranks    int          `json:"ranks"`
	Capacity int          `json:"capacity"` // per-rank ring capacity
	Dropped  int64        `json:"dropped"`  // events overwritten because a ring was full
	Events   []TraceEvent `json:"events"`
}

// TraceEvent is the wire form of Event: kinds by name, every field
// explicit (peer -1 means "no counterpart", seq 0 "no sequence
// number"). Times are nanoseconds since the tracer's epoch.
//
// Request-scoped spans additionally carry their identity as hex strings
// — Trace is the 32-digit trace ID, Span/Parent/Link 16-digit span IDs
// — rather than JSON numbers, because span IDs use the full uint64
// range and would lose precision in consumers that read JSON numbers as
// float64.
type TraceEvent struct {
	Kind   string `json:"kind"`
	Name   string `json:"name"`
	Rank   int32  `json:"rank"`
	Peer   int32  `json:"peer"`
	Bytes  int64  `json:"bytes,omitempty"`
	Seq    int64  `json:"seq,omitempty"`
	Start  int64  `json:"start"`
	Dur    int64  `json:"dur"`
	Trace  string `json:"trace,omitempty"`
	Span   string `json:"span,omitempty"`
	Parent string `json:"parent,omitempty"`
	Link   string `json:"link,omitempty"`
}

// TraceDoc captures the tracer's retained events as a trace/v1
// document.
func (t *Tracer) TraceDoc() TraceDoc {
	events := t.Events()
	doc := TraceDoc{
		Schema:   TraceSchema,
		Ranks:    t.ranks,
		Capacity: len(t.rings[0].buf),
		Dropped:  t.Dropped(),
		Events:   make([]TraceEvent, len(events)),
	}
	for i, e := range events {
		we := TraceEvent{
			Kind: e.Kind.String(), Name: e.Name, Rank: e.Rank, Peer: e.Peer,
			Bytes: e.Bytes, Seq: e.Seq, Start: e.Start, Dur: e.Dur,
		}
		if e.TraceHi|e.TraceLo != 0 {
			we.Trace = SpanContext{TraceHi: e.TraceHi, TraceLo: e.TraceLo}.TraceID()
		}
		if e.Span != 0 {
			we.Span = SpanIDString(e.Span)
		}
		if e.Parent != 0 {
			we.Parent = SpanIDString(e.Parent)
		}
		if e.Link != 0 {
			we.Link = SpanIDString(e.Link)
		}
		doc.Events[i] = we
	}
	return doc
}

// WriteTraceV1 writes the retained events as a trace/v1 JSON document.
func (t *Tracer) WriteTraceV1(w io.Writer) error {
	data, err := json.Marshal(t.TraceDoc())
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ReadTraceV1 parses a trace/v1 document, validating the schema tag and
// every event kind.
func ReadTraceV1(r io.Reader) (*TraceDoc, error) {
	var doc TraceDoc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("telemetry: parse trace: %w", err)
	}
	if doc.Schema != TraceSchema {
		return nil, fmt.Errorf("telemetry: trace schema %q, want %q", doc.Schema, TraceSchema)
	}
	for i, e := range doc.Events {
		if _, ok := KindFromString(e.Kind); !ok {
			return nil, fmt.Errorf("telemetry: event %d has unknown kind %q", i, e.Kind)
		}
		if e.Trace != "" && (len(e.Trace) != 32 || !isHex(e.Trace)) {
			return nil, fmt.Errorf("telemetry: event %d has malformed trace ID %q", i, e.Trace)
		}
		for _, id := range [...]string{e.Span, e.Parent, e.Link} {
			if id != "" && (len(id) != 16 || !isHex(id)) {
				return nil, fmt.Errorf("telemetry: event %d has malformed span ID %q", i, id)
			}
		}
	}
	return &doc, nil
}

// RuntimeEvents converts the document's wire events back to Events.
// Events with an unknown kind (a newer producer) are skipped.
func (d *TraceDoc) RuntimeEvents() []Event {
	out := make([]Event, 0, len(d.Events))
	for _, e := range d.Events {
		k, ok := KindFromString(e.Kind)
		if !ok {
			continue
		}
		re := Event{
			Kind: k, Name: e.Name, Rank: e.Rank, Peer: e.Peer,
			Bytes: e.Bytes, Seq: e.Seq, Start: e.Start, Dur: e.Dur,
		}
		if len(e.Trace) == 32 {
			re.TraceHi, _ = strconv.ParseUint(e.Trace[:16], 16, 64)
			re.TraceLo, _ = strconv.ParseUint(e.Trace[16:], 16, 64)
		}
		if len(e.Span) == 16 {
			re.Span, _ = strconv.ParseUint(e.Span, 16, 64)
		}
		if len(e.Parent) == 16 {
			re.Parent, _ = strconv.ParseUint(e.Parent, 16, 64)
		}
		if len(e.Link) == 16 {
			re.Link, _ = strconv.ParseUint(e.Link, 16, 64)
		}
		out = append(out, re)
	}
	return out
}
