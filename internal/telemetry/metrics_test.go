package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int // bucket index
	}{
		{-5, 0}, {0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{16, 5},
		{1023, 10}, {1024, 11}, {1025, 11},
		{math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
		// Every value must be ≤ its bucket's upper bound, and (for
		// positive values past bucket 1) > the previous bucket's bound.
		ub := BucketUpperBound(bucketIndex(c.v))
		if c.v > ub {
			t.Errorf("value %d exceeds its bucket upper bound %d", c.v, ub)
		}
		if idx := bucketIndex(c.v); idx > 1 && c.v <= BucketUpperBound(idx-1) {
			t.Errorf("value %d should be in an earlier bucket than %d", c.v, idx)
		}
	}
	if got := BucketUpperBound(0); got != 0 {
		t.Errorf("BucketUpperBound(0) = %d, want 0", got)
	}
	if got := BucketUpperBound(3); got != 7 {
		t.Errorf("BucketUpperBound(3) = %d, want 7", got)
	}
	if got := BucketUpperBound(NumBuckets - 1); got != math.MaxInt64 {
		t.Errorf("BucketUpperBound(last) = %d, want MaxInt64", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram p50 = %d, want 0", got)
	}
	// 90 samples of 5 (bucket ub 7) and 10 samples of 1000 (bucket ub 1023).
	for i := 0; i < 90; i++ {
		h.Observe(5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000)
	}
	if got := h.Quantile(0.5); got != 7 {
		t.Errorf("p50 = %d, want 7", got)
	}
	if got := h.Quantile(0.90); got != 7 {
		t.Errorf("p90 = %d, want 7", got)
	}
	if got := h.Quantile(0.99); got != 1023 {
		t.Errorf("p99 = %d, want 1023", got)
	}
	if h.Count() != 100 || h.Sum() != 90*5+10*1000 {
		t.Errorf("count/sum = %d/%d", h.Count(), h.Sum())
	}
}

// TestRegisterGaugeFuncDuplicate is the regression test for the silent
// shadowing bug: registering the same name twice used to replace the
// first function, so one subsystem's gauges could mask another's.
func TestRegisterGaugeFuncDuplicate(t *testing.T) {
	r := NewRegistry()
	if err := r.RegisterGaugeFunc("x.v", func() int64 { return 1 }); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterGaugeFunc("x.v", func() int64 { return 2 }); err == nil {
		t.Fatal("duplicate gauge func registration should fail")
	}
	if got := r.Snapshot().Gauges["x.v"]; got != 1 {
		t.Errorf("first registration shadowed: got %d, want 1", got)
	}
	// A computed gauge may not shadow an existing plain gauge either.
	r.Gauge("y.v").Set(5)
	if err := r.RegisterGaugeFunc("y.v", func() int64 { return 6 }); err == nil {
		t.Fatal("gauge func over plain gauge should fail")
	}
	// Unregistering frees the name.
	r.UnregisterGaugeFunc("x.v")
	if err := r.RegisterGaugeFunc("x.v", func() int64 { return 3 }); err != nil {
		t.Fatalf("re-registration after unregister: %v", err)
	}
	if got := r.Snapshot().Gauges["x.v"]; got != 3 {
		t.Errorf("after re-registration: got %d, want 3", got)
	}
}

func TestRegistryJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(7)
	r.Gauge("b.gauge").Set(-3)
	if err := r.RegisterGaugeFunc("c.computed", func() int64 { return 42 }); err != nil {
		t.Fatal(err)
	}
	h := r.Histogram("d.hist")
	h.Observe(1)
	h.Observe(100)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("exported JSON does not parse: %v", err)
	}
	want := r.Snapshot()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	if got.Schema != "telemetry/v1" {
		t.Errorf("schema = %q, want telemetry/v1", got.Schema)
	}
	if got.Counters["a.count"] != 7 || got.Gauges["b.gauge"] != -3 || got.Gauges["c.computed"] != 42 {
		t.Errorf("values lost in round trip: %+v", got)
	}
	if got.Histograms["d.hist"].Count != 2 {
		t.Errorf("histogram count = %d, want 2", got.Histograms["d.hist"].Count)
	}
}

func TestRegistryGetOrCreateReturnsSameHandle(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Error("Counter returned distinct handles for the same name")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Error("Gauge returned distinct handles for the same name")
	}
	if r.Histogram("x") != r.Histogram("x") {
		t.Error("Histogram returned distinct handles for the same name")
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(5)
	r.Gauge("g").Set(5)
	r.Histogram("h").Observe(5)
	r.Reset()
	s := r.Snapshot()
	if s.Counters["c"] != 0 || s.Gauges["g"] != 0 || s.Histograms["h"].Count != 0 {
		t.Errorf("reset left values: %+v", s)
	}
}

// TestConcurrentRecording exercises every record path from many
// goroutines at once; run with -race this verifies the lock-free
// claims.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(4, 128)
	const goroutines = 8
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("shared.counter")
			h := r.Histogram("shared.hist")
			ga := r.Gauge("shared.gauge")
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(int64(i))
				ga.Set(int64(i))
				tr.Record(Event{Kind: KindSend, Name: "t", Rank: int32(g % 4), Peer: 0, Start: int64(i)})
				if i%100 == 0 {
					r.Snapshot() // concurrent reads
					tr.Events()
				}
			}
		}(g)
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["shared.counter"] != goroutines*perG {
		t.Errorf("counter = %d, want %d", s.Counters["shared.counter"], goroutines*perG)
	}
	if s.Histograms["shared.hist"].Count != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", s.Histograms["shared.hist"].Count, goroutines*perG)
	}
}

// TestRecordPathAllocs asserts the acceptance criterion directly: one
// counter add, one histogram observation, and one trace record perform
// zero allocations.
func TestRecordPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h")
	tr := NewTracer(2, 64)
	if n := testing.AllocsPerRun(100, func() { c.Add(1) }); n != 0 {
		t.Errorf("Counter.Add allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { h.Observe(12345) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		tr.Record(Event{Kind: KindSend, Name: "tag", Rank: 1, Peer: 0, Bytes: 64, Start: 1})
	}); n != 0 {
		t.Errorf("Tracer.Record allocates %v/op", n)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Add(1)
	r.Counter("a.first").Add(2)
	r.Histogram("h").Observe(10)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "a.first") || !strings.Contains(out, "z.last") {
		t.Errorf("text summary missing counters:\n%s", out)
	}
	if strings.Index(out, "a.first") > strings.Index(out, "z.last") {
		t.Errorf("counters not sorted:\n%s", out)
	}
	if !strings.Contains(out, "count=1") {
		t.Errorf("histogram line missing:\n%s", out)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("bench.counter")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench.hist")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkTracerRecord(b *testing.B) {
	tr := NewTracer(4, 1<<12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Record(Event{Kind: KindSend, Name: "tag", Rank: int32(i & 3), Peer: 0, Bytes: 64, Start: int64(i)})
	}
}
