// Package redist changes the distribution of an array: cyclic(k) →
// cyclic(k'), possibly with a different processor count. This is the
// "block scattered" redistribution of ScaLAPACK-style dense linear
// algebra (Dongarra, van de Geijn & Walker, cited in the paper's
// Section 1): algorithms pick the block size that balances load and
// locality per phase, and the runtime reshuffles the array between
// phases.
//
// A redistribution is the degenerate array assignment B(0:n-1:1) =
// A(0:n-1:1) between different layouts, so the whole implementation is a
// thin layer over package comm's communication sets.
package redist

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/hpf"
	"repro/internal/machine"
	"repro/internal/section"
	"repro/internal/telemetry"
)

// Redistribute copies src into a new array with the target layout using
// planned all-to-all communication on the machine. The machine needs at
// least max(src procs, target procs) processors.
func Redistribute(m *machine.Machine, src *hpf.Array, target dist.Layout) (*hpf.Array, error) {
	if tr := telemetry.ActiveTracer(); tr != nil {
		defer tr.EndSpan(telemetry.HostRank, "redist.redistribute", tr.Now())
	}
	dst, err := hpf.NewArray(target, src.N())
	if err != nil {
		return nil, err
	}
	if src.N() == 0 {
		return dst, nil
	}
	whole := section.Section{Lo: 0, Hi: src.N() - 1, Stride: 1}
	if err := comm.Copy(m, dst, whole, src, whole); err != nil {
		return nil, err
	}
	return dst, nil
}

// RedistributeInto copies src into an existing destination array,
// avoiding the per-call array allocation of Redistribute. Phase-based
// solvers that bounce an array between two layouts every iteration keep
// both arrays alive and alternate; the communication schedule comes from
// the plan cache, so the steady state does no planning and no
// allocation beyond pooled message buffers.
func RedistributeInto(m *machine.Machine, dst, src *hpf.Array) error {
	if tr := telemetry.ActiveTracer(); tr != nil {
		defer tr.EndSpan(telemetry.HostRank, "redist.redistribute_into", tr.Now())
	}
	if dst.N() != src.N() {
		return fmt.Errorf("redist: destination size %d != source size %d", dst.N(), src.N())
	}
	if src.N() == 0 {
		return nil
	}
	whole := section.Section{Lo: 0, Hi: src.N() - 1, Stride: 1}
	return comm.Copy(m, dst, whole, src, whole)
}

// Plan precomputes the communication schedule of a redistribution without
// executing it, for cost inspection (e.g. choosing k' to minimize data
// motion). The schedule is memoized in the shared plan cache: repeated
// redistributions between the same pair of layouts plan once.
func Plan(src dist.Layout, n int64, target dist.Layout) (*comm.Plan, error) {
	if n < 0 {
		return nil, fmt.Errorf("redist: negative array size %d", n)
	}
	if n == 0 {
		return comm.CachedPlan(target, 0, section.Section{Lo: 0, Hi: -1, Stride: 1},
			src, 0, section.Section{Lo: 0, Hi: -1, Stride: 1})
	}
	whole := section.Section{Lo: 0, Hi: n - 1, Stride: 1}
	return comm.CachedPlan(target, n, whole, src, n, whole)
}

// StayVolume returns how many elements keep their owner under the plan —
// the data that moves at memory speed rather than network speed. Defined
// only when source and target processor sets coincide positionally.
func StayVolume(p *comm.Plan) int64 {
	var v int64
	nn := min(p.NSrc, p.NDst)
	for q := int64(0); q < nn; q++ {
		v += p.Volume(q, q)
	}
	return v
}
