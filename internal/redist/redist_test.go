package redist

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/hpf"
	"repro/internal/machine"
)

func TestRedistributePreservesContents(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 40; trial++ {
		p1 := r.Int63n(4) + 1
		k1 := r.Int63n(8) + 1
		p2 := r.Int63n(4) + 1
		k2 := r.Int63n(8) + 1
		n := r.Int63n(500) + 1
		srcL := dist.MustNew(p1, k1)
		dstL := dist.MustNew(p2, k2)
		src := hpf.MustNewArray(srcL, n)
		for i := int64(0); i < n; i++ {
			src.Set(i, float64(i)*0.5)
		}
		m := machine.MustNew(int(max(p1, p2)))
		dst, err := Redistribute(m, src, dstL)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(dst.Gather(), src.Gather()) {
			t.Fatalf("trial %d: contents changed under %v -> %v", trial, srcL, dstL)
		}
		if dst.Layout() != dstL {
			t.Error("target layout not applied")
		}
	}
}

func TestRedistributeRoundTrip(t *testing.T) {
	srcL := dist.MustNew(4, 8)
	dstL := dist.MustNew(3, 5)
	src := hpf.MustNewArray(srcL, 200)
	for i := int64(0); i < 200; i++ {
		src.Set(i, float64(i*i))
	}
	m := machine.MustNew(4)
	mid, err := Redistribute(m, src, dstL)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Redistribute(m, mid, srcL)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Gather(), src.Gather()) {
		t.Error("round trip changed contents")
	}
}

func TestRedistributeEmpty(t *testing.T) {
	m := machine.MustNew(2)
	src := hpf.MustNewArray(dist.MustNew(2, 2), 0)
	dst, err := Redistribute(m, src, dist.MustNew(2, 4))
	if err != nil || dst.N() != 0 {
		t.Fatalf("empty redistribute: %v, n=%d", err, dst.N())
	}
}

func TestPlanIdentityStaysLocal(t *testing.T) {
	// Redistributing onto the same layout moves nothing off-processor.
	l := dist.MustNew(4, 8)
	plan, err := Plan(l, 320, l)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.TotalVolume(); got != 320 {
		t.Errorf("TotalVolume = %d, want 320", got)
	}
	if got := StayVolume(plan); got != 320 {
		t.Errorf("StayVolume = %d, want 320 (identity plan)", got)
	}
}

func TestPlanBlockToCyclicVolume(t *testing.T) {
	// block(64 over 4) -> cyclic over 4 on 256 elements: only elements
	// whose block and cyclic owners coincide stay local.
	src := dist.MustNew(4, 64)
	dst := dist.MustNew(4, 1)
	plan, err := Plan(src, 256, dst)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalVolume() != 256 {
		t.Errorf("TotalVolume = %d", plan.TotalVolume())
	}
	var wantStay int64
	for i := int64(0); i < 256; i++ {
		if src.Owner(i) == dst.Owner(i) {
			wantStay++
		}
	}
	if got := StayVolume(plan); got != wantStay {
		t.Errorf("StayVolume = %d, want %d", got, wantStay)
	}
	if wantStay == 256 {
		t.Error("test bug: block->cyclic should move data")
	}
}

func TestPlanNegativeSize(t *testing.T) {
	l := dist.MustNew(2, 2)
	if _, err := Plan(l, -1, l); err == nil {
		t.Error("negative size should fail")
	}
	if plan, err := Plan(l, 0, l); err != nil || plan.TotalVolume() != 0 {
		t.Errorf("zero size plan: %v", err)
	}
}

func TestRedistributeIntoRoundTrip(t *testing.T) {
	comm.ResetPlanCache()
	srcL := dist.MustNew(4, 8)
	dstL := dist.MustNew(3, 5)
	a := hpf.MustNewArray(srcL, 200)
	b := hpf.MustNewArray(dstL, 200)
	for i := int64(0); i < 200; i++ {
		a.Set(i, float64(3*i+1))
	}
	want := a.Gather()
	m := machine.MustNew(4)
	// Bounce the array between layouts several times; after the first
	// round trip both directions' plans are cached.
	for round := 0; round < 5; round++ {
		if err := RedistributeInto(m, b, a); err != nil {
			t.Fatal(err)
		}
		a.FillAll(0)
		if err := RedistributeInto(m, a, b); err != nil {
			t.Fatal(err)
		}
		if round == 0 {
			warm := comm.PlanCacheStats()
			if warm.Misses < 2 {
				t.Fatalf("expected >= 2 plan constructions on first round, got %d", warm.Misses)
			}
		}
	}
	steady := comm.PlanCacheStats()
	if steady.Misses != 2 {
		t.Fatalf("redistribution bounce planned %d times total, want 2", steady.Misses)
	}
	if !reflect.DeepEqual(a.Gather(), want) {
		t.Error("RedistributeInto round trips changed contents")
	}
}

func TestRedistributeIntoSizeMismatch(t *testing.T) {
	m := machine.MustNew(2)
	a := hpf.MustNewArray(dist.MustNew(2, 2), 10)
	b := hpf.MustNewArray(dist.MustNew(2, 2), 12)
	if err := RedistributeInto(m, b, a); err == nil {
		t.Fatal("expected size-mismatch error")
	}
}
