package redist

import (
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/hpf"
	"repro/internal/machine"
)

// Chaos test: a cyclic(8) → cyclic(3) reshuffle (different processor
// counts included) under seeded delay/dup/reorder faults must still
// move every element to its new home intact.

func TestRedistributeSurvivesFaults(t *testing.T) {
	const n = 500
	src := hpf.MustNewArray(dist.MustNew(4, 8), n)
	for i := int64(0); i < n; i++ {
		src.Set(i, float64(i)+0.25)
	}
	for _, seed := range []int64{13, 41} {
		m := machine.MustNew(6)
		m.SetFaults(&machine.FaultPlan{
			Seed: seed, Delay: 0.25, DelayBy: 300 * time.Microsecond,
			Dup: 0.25, Reorder: 0.25, CrashRank: -1,
		})
		dst, err := Redistribute(m, src, dist.MustNew(6, 3))
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < n; i++ {
			if got := dst.Get(i); got != float64(i)+0.25 {
				t.Fatalf("seed %d: element %d = %v, want %v", seed, i, got, float64(i)+0.25)
			}
		}
		if len(m.FaultEvents()) == 0 {
			t.Errorf("seed %d: no faults injected; redistribution not exercised", seed)
		}
	}
}
