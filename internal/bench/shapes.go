package bench

// The shapes matrix: generic Figure 8 node code (shapes A–D plus the
// table-free walker) against the specialized kernels that plan
// compilation selects, one (k, stride) family per kernel kind. This is
// the evaluation for the kernel-specialization layer: Table 2 shows the
// paper's shapes against each other; this matrix shows what compiling
// the plan into the most specific admissible kernel buys on top.

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/codegen"
	"repro/internal/core"
)

// ShapeFamily is one (k, stride) workload family of the shapes matrix,
// chosen so the selector maps it to a specific kernel kind.
type ShapeFamily struct {
	Name       string
	K          int64 // 0 means "smallest power of two > S·elems" (block family)
	S          int64
	TablesOnly bool               // compile without a gap list (memory-frugal plan)
	Want       codegen.KernelKind // expected selection (informational)
}

// ShapeFamilies returns the benchmark families, one per specialized
// kernel kind plus a generic-fallback control. Strides are chosen so
// the AM table stays non-uniform for power-of-two processor counts:
// k·(p−1) ≡ 0 (mod s) collapses a family to const gap (the boundary
// gap equals s too), e.g. (k=4, s=7) at p = 8.
func ShapeFamilies() []ShapeFamily {
	return []ShapeFamily{
		{Name: "cyclic1", K: 1, S: 3, Want: codegen.KindConstGap},
		{Name: "unit-stride", K: 256, S: 1, Want: codegen.KindConstGap},
		{Name: "block", K: 0, S: 3, Want: codegen.KindConstGap},
		{Name: "unroll4", K: 4, S: 9, Want: codegen.KindUnrolled},
		{Name: "unroll8", K: 8, S: 5, Want: codegen.KindUnrolled},
		{Name: "rowstride", K: 256, S: 5, Want: codegen.KindRowStride},
		{Name: "offsetdispatch", K: 256, S: 999, TablesOnly: true, Want: codegen.KindOffsetDispatch},
	}
}

// blockK returns the smallest power of two large enough that a sweep of
// elems stride-S assignments stays inside one block row — the block
// (k ≥ m) distribution family.
func blockK(s, elems int64) int64 {
	k := int64(1)
	for k <= s*elems+1 {
		k *= 2
	}
	return k
}

// SpecializedKernel compiles the workload's node loop exactly as the
// hpf plan cache would: spec from the workload's bounds and table, the
// shared transition tables from the TableSet, deterministic selection.
// With tablesOnly the gap list is withheld, modelling the memory-frugal
// plan that runs the 8(d) dispatch off the shared tables alone.
func (w *Workload) SpecializedKernel(tablesOnly bool) (codegen.Kernel, error) {
	ts, err := core.NewTableSet(w.pr.P, w.pr.K, w.pr.L, w.pr.S)
	if err != nil {
		return codegen.Kernel{}, err
	}
	sp := codegen.Spec{
		Problem: w.pr,
		Start:   w.start,
		Last:    w.last,
		Count:   w.count,
		Gaps:    w.gaps,
	}
	if tablesOnly {
		sp.Gaps = nil
	}
	if delta, next, ok := ts.Transitions(); ok {
		sp.Delta, sp.Next = delta, next
	}
	return codegen.Select(sp), nil
}

// ShapeBenchResult is the measured matrix row of one family.
type ShapeBenchResult struct {
	Family      string
	K, S        int64
	Elems       int64
	Kernel      codegen.KernelKind      // what the selector picked
	Generic     map[Shape]time.Duration // shapes A–D + walker
	Specialized time.Duration
}

// Speedup returns the specialized kernel's speedup over the generic
// ShapeB baseline (the shape the runtime used before specialization).
func (r ShapeBenchResult) Speedup() float64 {
	if r.Specialized <= 0 {
		return 0
	}
	return float64(r.Generic[ShapeB]) / float64(r.Specialized)
}

// timeSweeps measures one full-sweep operation across all workloads:
// max over processors of the per-sweep time, minimized over reps, with
// the sweep batched so each timing window is long enough to trust.
func timeSweeps(workloads []Workload, reps int, op func(w *Workload) (int64, error)) (time.Duration, error) {
	const window = 50 * time.Microsecond
	batch := 1
	for {
		w := &workloads[0]
		t0 := time.Now()
		for b := 0; b < batch; b++ {
			n, err := op(w)
			if err != nil {
				return 0, err
			}
			if n != w.count {
				return 0, fmt.Errorf("bench: sweep wrote %d of %d elements", n, w.count)
			}
		}
		if el := time.Since(t0); el >= window || batch >= 1<<20 {
			break
		}
		batch *= 2
	}
	best := time.Duration(1<<63 - 1)
	for r := 0; r < reps; r++ {
		var worst time.Duration
		for m := range workloads {
			w := &workloads[m]
			t0 := time.Now()
			for b := 0; b < batch; b++ {
				if _, err := op(w); err != nil {
					return 0, err
				}
			}
			el := time.Since(t0) / time.Duration(batch)
			if el > worst {
				worst = el
			}
		}
		if worst < best {
			best = worst
		}
	}
	return best, nil
}

// ShapeBench measures the full matrix: for each family, every generic
// Figure 8 shape and the specialized kernel, each sweeping elems
// assignments per processor (max over processors, min over reps).
func ShapeBench(p, elems int64, reps int) ([]ShapeBenchResult, error) {
	var results []ShapeBenchResult
	for _, fam := range ShapeFamilies() {
		k := fam.K
		if k == 0 {
			k = blockK(fam.S, elems)
		}
		workloads := make([]Workload, p)
		kernels := make([]codegen.Kernel, p)
		var kind codegen.KernelKind
		for m := int64(0); m < p; m++ {
			w, err := BuildWorkload(p, k, fam.S, m, elems)
			if err != nil {
				return nil, fmt.Errorf("family %s: %w", fam.Name, err)
			}
			kn, err := w.SpecializedKernel(fam.TablesOnly)
			if err != nil {
				return nil, fmt.Errorf("family %s: %w", fam.Name, err)
			}
			workloads[m] = w
			kernels[m] = kn
			if m == 0 {
				kind = kn.Kind()
			} else if kn.Kind() != kind {
				// All processors of a family share (p, k, l, s); selection
				// differs only through degenerate bounds, which BuildWorkload
				// rules out.
				return nil, fmt.Errorf("family %s: kernel kind differs across processors (%v vs %v)",
					fam.Name, kind, kn.Kind())
			}
		}
		res := ShapeBenchResult{
			Family: fam.Name, K: k, S: fam.S, Elems: elems,
			Kernel:  kind,
			Generic: make(map[Shape]time.Duration),
		}
		for _, sh := range Shapes() {
			sh := sh
			d, err := timeSweeps(workloads, reps, func(w *Workload) (int64, error) {
				return w.RunShape(sh)
			})
			if err != nil {
				return nil, fmt.Errorf("family %s shape %s: %w", fam.Name, sh, err)
			}
			res.Generic[sh] = d
		}
		d, err := timeSweeps(workloads, reps, func(w *Workload) (int64, error) {
			m := w.pr.M
			return kernels[m].Fill(w.mem, 1.0), nil
		})
		if err != nil {
			return nil, fmt.Errorf("family %s specialized: %w", fam.Name, err)
		}
		res.Specialized = d
		results = append(results, res)
	}
	return results, nil
}

// FormatShapeBench renders the matrix with the speedup column the
// acceptance criterion reads (specialized vs generic ShapeB).
func FormatShapeBench(results []ShapeBenchResult) string {
	var b strings.Builder
	b.WriteString("Shapes matrix: generic Figure 8 shapes vs specialized kernels (microseconds per sweep)\n")
	b.WriteString(fmt.Sprintf("%-16s%8s%6s%16s", "family", "k", "s", "kernel"))
	for _, sh := range Shapes() {
		b.WriteString(fmt.Sprintf("%12s", sh))
	}
	b.WriteString(fmt.Sprintf("%12s%10s\n", "specialized", "vs 8(b)"))
	for _, r := range results {
		b.WriteString(fmt.Sprintf("%-16s%8d%6d%16s", r.Family, r.K, r.S, r.Kernel))
		for _, sh := range Shapes() {
			b.WriteString(fmt.Sprintf("%12.1f", us(r.Generic[sh])))
		}
		b.WriteString(fmt.Sprintf("%12.1f%9.2fx\n", us(r.Specialized), r.Speedup()))
	}
	return b.String()
}
