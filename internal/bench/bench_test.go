package bench

import (
	"repro/internal/core"
	"strings"
	"testing"
	"time"
)

func TestConstructMethods(t *testing.T) {
	pr := coreProblem(4, 8, 9, 1)
	lat, err := construct(MethodLattice, pr)
	if err != nil {
		t.Fatal(err)
	}
	srt, err := construct(MethodSorting, pr)
	if err != nil {
		t.Fatal(err)
	}
	if !lat.Equal(srt) {
		t.Error("methods disagree")
	}
	if _, err := construct(Method("bogus"), pr); err == nil {
		t.Error("unknown method should fail")
	}
}

func TestTable1Shapes(t *testing.T) {
	if ks := Table1Ks(); ks[0] != 4 || ks[len(ks)-1] != 512 || len(ks) != 8 {
		t.Errorf("Table1Ks = %v", ks)
	}
	strides := Table1Strides()
	if len(strides) != 5 {
		t.Fatalf("want 5 stride cases, got %d", len(strides))
	}
	// The k- and pk-dependent strides evaluate correctly.
	if s := strides[2].Stride(8, 256); s != 9 {
		t.Errorf("s=k+1 for k=8: %d", s)
	}
	if s := strides[3].Stride(8, 256); s != 255 {
		t.Errorf("s=pk-1: %d", s)
	}
	if s := strides[4].Stride(8, 256); s != 257 {
		t.Errorf("s=pk+1: %d", s)
	}
}

// TestTable1Small runs a miniature Table 1 (fewer processors, one rep) to
// exercise the full pipeline without taking benchmark-scale time.
func TestTable1Small(t *testing.T) {
	rows, err := Table1(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Table1Ks()) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if len(r.Cells) != 5 {
			t.Fatalf("row k=%d has %d cells", r.K, len(r.Cells))
		}
		for _, c := range r.Cells {
			if c.Lattice <= 0 || c.Sorting <= 0 {
				t.Errorf("k=%d %s: nonpositive times %v/%v", r.K, c.Stride, c.Lattice, c.Sorting)
			}
		}
	}
	out := FormatTable1(rows)
	for _, want := range []string{"k=4", "k=512", "s=pk+1", "Lattice", "Sorting"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatTable1 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure7Small(t *testing.T) {
	rows, err := Figure7(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows", len(rows))
	}
	out := FormatFigure7(rows)
	if !strings.Contains(out, "ratio") || !strings.Contains(out, "s=7") {
		t.Errorf("FormatFigure7 output:\n%s", out)
	}
}

func TestTable2Small(t *testing.T) {
	results, err := Table2(4, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 9 {
		t.Fatalf("got %d cases", len(results))
	}
	for _, r := range results {
		for _, sh := range Shapes() {
			if r.Times[sh] <= 0 {
				t.Errorf("case %+v shape %s: time %v", r.Case, sh, r.Times[sh])
			}
		}
	}
	out := FormatTable2(results)
	for _, want := range []string{"k=4", "k=256", "s=99", "8(a) mod", "walker"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatTable2 missing %q:\n%s", want, out)
		}
	}
}

func TestBuildWorkloadCounts(t *testing.T) {
	w, err := BuildWorkload(4, 8, 9, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range Shapes() {
		n, err := w.RunShape(sh)
		if err != nil {
			t.Fatal(err)
		}
		if n != 100 {
			t.Errorf("shape %s wrote %d, want 100", sh, n)
		}
	}
	if _, err := w.RunShape(Shape("bogus")); err == nil {
		t.Error("unknown shape should fail")
	}
	// A processor that owns nothing is an error for workload building.
	if _, err := BuildWorkload(4, 2, 8, 1, 10); err == nil {
		t.Error("empty processor should fail")
	}
}

func TestTimeMaxOverProcsPositive(t *testing.T) {
	d, err := timeMaxOverProcs(MethodLattice, 4, 16, 0, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || d > time.Second {
		t.Errorf("implausible duration %v", d)
	}
}

// coreProblem is shorthand for building test problems.
func coreProblem(p, k, s, m int64) core.Problem {
	return core.Problem{P: p, K: k, L: 0, S: s, M: m}
}
