package bench

import "testing"

// TestCacheBenchmarksSteadyState runs the families with a tiny iteration
// count and checks the acceptance criterion directly: warm-cache
// iterations perform zero plan or table constructions.
func TestCacheBenchmarksSteadyState(t *testing.T) {
	results, err := CacheBenchmarks(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d families, want 3", len(results))
	}
	for _, r := range results {
		if r.SteadyMisses != 0 {
			t.Errorf("%s: %d cache misses in steady state, want 0", r.Name, r.SteadyMisses)
		}
		if r.HitRate <= 0 {
			t.Errorf("%s: hit rate %f, want > 0", r.Name, r.HitRate)
		}
		if r.UncachedNsPerOp <= 0 || r.CachedNsPerOp <= 0 {
			t.Errorf("%s: non-positive timing", r.Name)
		}
	}
	if FormatCacheBench(results) == "" {
		t.Error("empty rendering")
	}
}
