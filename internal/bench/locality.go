package bench

// The locality matrix: block vs cyclic(k) reuse-distance profiles for
// the Figure 8 shape families. Each family's node loop runs through the
// specialized kernels with the telemetry access recorder capturing the
// exact per-processor address stream, and the reuse package computes the
// Olken/Parda stack distances. Distances are taken at cache-line
// granularity (LineElems elements per line): at element granularity a
// repeated strict sweep has the same reuse profile under every layout,
// while at line granularity the AM gap sequence's burstiness — bunched
// small gaps inside a block row, long jumps across rows — is exactly
// what separates a cyclic(k) layout from a block one.

import (
	"fmt"
	"strings"

	"repro/internal/codegen"
	"repro/internal/reuse"
	"repro/internal/telemetry"
)

// LineElems is the cache-line granularity of the locality matrix:
// 8 float64 elements per 64-byte line.
const LineElems = 8

// LocalityProfile is the aggregated (all ranks) reuse profile of one
// layout of one family, at cache-line granularity.
type LocalityProfile struct {
	K        int64              // block size of the measured cyclic(k) layout
	Kernel   codegen.KernelKind // what plan compilation selected
	Accesses int64              // recorded accesses across all ranks
	Lines    int64              // distinct lines touched (cold misses)
	MeanDist float64            // mean finite reuse distance, in lines
	MaxDist  int64
	// MissRates are exact LRU miss rates for caches of CacheSize lines.
	MissRates []reuse.MissEstimate
}

// LocalityResult is one family row of the matrix: the same stride-s
// sweep under the family's cyclic(k) layout and under a block layout
// (k large enough that every sweep stays inside one block row).
type LocalityResult struct {
	Family string
	S      int64
	Elems  int64
	Sweeps int
	Cyclic LocalityProfile
	Block  LocalityProfile
}

// profileLayout records sweeps full fill sweeps of every processor's
// node loop under the (p, k, s) layout and analyzes the trace.
func profileLayout(p, k, s, elems int64, sweeps int, tablesOnly bool, sizes []int64) (LocalityProfile, error) {
	workloads := make([]Workload, p)
	kernels := make([]codegen.Kernel, p)
	for m := int64(0); m < p; m++ {
		w, err := BuildWorkload(p, k, s, m, elems)
		if err != nil {
			return LocalityProfile{}, err
		}
		kn, err := w.SpecializedKernel(tablesOnly)
		if err != nil {
			return LocalityProfile{}, err
		}
		workloads[m] = w
		kernels[m] = kn
	}
	// Capacity covers every record so the profile sees the whole run.
	ar := telemetry.NewAccessRecorder(int(p), sweeps*int(elems), 1)
	step := ar.BeginStep("bench.fill:" + kernels[0].Kind().String())
	for sw := 0; sw < sweeps; sw++ {
		for m := int64(0); m < p; m++ {
			w := &workloads[m]
			if n := kernels[m].FillTraced(w.mem, 1.0, ar, int32(m), step); n != w.count {
				return LocalityProfile{}, fmt.Errorf("bench: sweep wrote %d of %d elements", n, w.count)
			}
		}
	}
	if d := ar.Dropped(); d != 0 {
		return LocalityProfile{}, fmt.Errorf("bench: access recorder dropped %d records", d)
	}
	doc := ar.Doc()
	// Fold element addresses to cache lines before the distance analysis.
	for i := range doc.Seqs {
		accs := doc.Seqs[i].Accesses
		for j := range accs {
			accs[j].Addr /= LineElems
		}
	}
	rep := reuse.BuildReport(&doc, reuse.Options{Chunks: 4, CacheSizes: sizes})

	prof := LocalityProfile{K: k, Kernel: kernels[0].Kind(), MissRates: make([]reuse.MissEstimate, len(sizes))}
	for i, c := range sizes {
		prof.MissRates[i].CacheSize = c
	}
	var finiteSum float64
	for _, r := range rep.PerRank {
		prof.Accesses += r.Accesses
		prof.Lines += r.Distinct
		finite := r.Accesses - r.Distinct
		finiteSum += r.Hist.Mean * float64(finite)
		if r.Hist.Max > prof.MaxDist {
			prof.MaxDist = r.Hist.Max
		}
		for i, m := range r.MissRates {
			prof.MissRates[i].Misses += m.Misses
		}
	}
	if finite := prof.Accesses - prof.Lines; finite > 0 {
		prof.MeanDist = finiteSum / float64(finite)
	}
	for i := range prof.MissRates {
		if prof.Accesses > 0 {
			prof.MissRates[i].MissRate = float64(prof.MissRates[i].Misses) / float64(prof.Accesses)
		}
	}
	return prof, nil
}

// LocalityCacheSizes are the default LRU capacities of the matrix, in
// cache lines (64 B each): 32 KiB, 256 KiB and 2 MiB windows.
func LocalityCacheSizes() []int64 { return []int64{512, 4096, 32768} }

// LocalityBench measures the matrix: for every Figure 8 shape family,
// the reuse profile of sweeps stride-s fill sweeps under the family's
// cyclic(k) layout and under the block layout. nil sizes means
// LocalityCacheSizes.
func LocalityBench(p, elems int64, sweeps int, sizes []int64) ([]LocalityResult, error) {
	if sizes == nil {
		sizes = LocalityCacheSizes()
	}
	var results []LocalityResult
	for _, fam := range ShapeFamilies() {
		k := fam.K
		if k == 0 {
			k = blockK(fam.S, elems)
		}
		cyc, err := profileLayout(p, k, fam.S, elems, sweeps, fam.TablesOnly, sizes)
		if err != nil {
			return nil, fmt.Errorf("family %s cyclic(%d): %w", fam.Name, k, err)
		}
		blk, err := profileLayout(p, blockK(fam.S, elems), fam.S, elems, sweeps, false, sizes)
		if err != nil {
			return nil, fmt.Errorf("family %s block: %w", fam.Name, err)
		}
		results = append(results, LocalityResult{
			Family: fam.Name, S: fam.S, Elems: elems, Sweeps: sweeps,
			Cyclic: cyc, Block: blk,
		})
	}
	return results, nil
}

// FormatLocality renders the matrix: one family per row pair, cyclic(k)
// against block, with line-granularity miss rates per cache size.
func FormatLocality(results []LocalityResult) string {
	var b strings.Builder
	b.WriteString("Locality matrix: block vs cyclic(k) reuse-distance profiles (cache-line granularity)\n")
	b.WriteString(fmt.Sprintf("%-16s%-8s%10s%6s%16s%12s%12s%10s", "family", "layout", "k", "s", "kernel", "lines", "mean_dist", "max_dist"))
	if len(results) > 0 {
		for _, m := range results[0].Cyclic.MissRates {
			b.WriteString(fmt.Sprintf(" miss@%-6d", m.CacheSize))
		}
	}
	b.WriteString("\n")
	row := func(fam string, layout string, s int64, p LocalityProfile) {
		b.WriteString(fmt.Sprintf("%-16s%-8s%10d%6d%16s%12d%12.1f%10d", fam, layout, p.K, s, p.Kernel, p.Lines, p.MeanDist, p.MaxDist))
		for _, m := range p.MissRates {
			b.WriteString(fmt.Sprintf(" %9.1f%%", 100*m.MissRate))
		}
		b.WriteString("\n")
	}
	for _, r := range results {
		row(r.Family, "cyclic", r.S, r.Cyclic)
		row(r.Family, "block", r.S, r.Block)
	}
	return b.String()
}
