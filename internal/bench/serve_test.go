package bench

import (
	"strings"
	"testing"
)

// TestServeBenchSmall runs a reduced herd through both modes and checks
// the structural invariants: the coalesced mode compiles each cold key
// exactly once with the rest of the herd coalescing, the baseline
// compiles at least as often, and nobody fails.
func TestServeBenchSmall(t *testing.T) {
	const herd, rounds = 8, 1
	results, err := ServeBench(herd, rounds)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2 modes", len(results))
	}
	byMode := map[string]ServeBenchResult{}
	for _, r := range results {
		byMode[r.Mode] = r
		if r.Failed != 0 {
			t.Errorf("%s: %d failed requests", r.Mode, r.Failed)
		}
		if want := int64(2 * herd * rounds); r.OK != want {
			t.Errorf("%s: %d ok, want %d", r.Mode, r.OK, want)
		}
		if r.ColdP50Ns <= 0 || r.ColdP99Ns < r.ColdP50Ns {
			t.Errorf("%s: cold percentiles inconsistent: p50 %d p99 %d",
				r.Mode, r.ColdP50Ns, r.ColdP99Ns)
		}
	}
	co, ok := byMode["coalesced"]
	if !ok {
		t.Fatal("no coalesced result")
	}
	base, ok := byMode["no-coalesce"]
	if !ok {
		t.Fatal("no no-coalesce result")
	}
	if co.Builds != rounds {
		t.Errorf("coalesced mode ran %d builds for %d cold keys, want exactly one each",
			co.Builds, rounds)
	}
	if co.Coalesced+co.Builds+co.OK == 0 || co.Coalesced < 0 {
		t.Errorf("coalesced counter bogus: %+v", co)
	}
	if base.Coalesced != 0 {
		t.Errorf("baseline mode coalesced %d waiters; the whole point is that it cannot", base.Coalesced)
	}
	if base.Builds < co.Builds {
		t.Errorf("baseline built %d plans, coalesced built %d — baseline can never build fewer",
			base.Builds, co.Builds)
	}
}

func TestFormatServeBench(t *testing.T) {
	out := FormatServeBench([]ServeBenchResult{
		{Mode: "coalesced", Herd: 64, Rounds: 3, Builds: 3, Coalesced: 189,
			ColdP50Ns: 1e6, ColdP99Ns: 2e6, WarmP50Ns: 1e5},
		{Mode: "no-coalesce", Herd: 64, Rounds: 3, Builds: 192,
			ColdP50Ns: 5e6, ColdP99Ns: 9e6, WarmP50Ns: 1e5},
	})
	for _, want := range []string{"coalesced", "no-coalesce", "cold p99", "64-client herd"} {
		if !strings.Contains(out, want) {
			t.Errorf("format output missing %q:\n%s", want, out)
		}
	}
}
