// Cache benchmarks: the runtime plan cache's effect on steady-state
// iteration cost. Each family times one "iteration" of a recurring
// pattern twice — with every runtime cache cleared before each
// iteration (the cold path: plan + AM-table construction every time)
// and with warm caches (iteration 2..N of a solver). The cached column
// also records the caches' steady-state miss count, which the
// acceptance criterion requires to be zero.
package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/hpf"
	"repro/internal/machine"
	"repro/internal/plancache"
	"repro/internal/redist"
	"repro/internal/section"
)

// CacheBenchResult is one family's cold-vs-warm measurement.
type CacheBenchResult struct {
	Name                string
	UncachedNsPerOp     float64
	CachedNsPerOp       float64
	UncachedAllocsPerOp float64
	CachedAllocsPerOp   float64
	HitRate             float64 // combined cache hit rate over the warm run
	SteadyMisses        int64   // cache misses during the warm run (want 0)
}

// Speedup returns the cold/warm time ratio.
func (r CacheBenchResult) Speedup() float64 {
	if r.CachedNsPerOp == 0 {
		return 0
	}
	return r.UncachedNsPerOp / r.CachedNsPerOp
}

// resetRuntimeCaches clears every process-wide runtime cache: section
// plans, communication plans (1-D and 2-D) and the AM-table sets.
func resetRuntimeCaches() {
	hpf.ResetSectionPlanCache()
	comm.ResetPlanCache()
	comm.ResetPlanCache2D()
	plancache.ResetTables()
}

// cacheTotals sums hits and misses across all runtime caches.
func cacheTotals() (hits, misses int64) {
	for _, st := range []plancache.Stats{
		hpf.SectionPlanCacheStats(),
		comm.PlanCacheStats(),
		comm.PlanCache2DStats(),
		plancache.TableStats(),
	} {
		hits += st.Hits
		misses += st.Misses
	}
	return hits, misses
}

// measureOp times iters runs of op and reports mean ns/op and heap
// allocations per op (runtime.MemStats.Mallocs delta). With uncached
// set, every run is preceded by a full cache reset so each iteration
// pays the complete planning cost (the resets themselves are orders of
// magnitude cheaper than the planning they force).
func measureOp(iters int, uncached bool, op func() error) (nsPerOp, allocsPerOp float64, err error) {
	if err := op(); err != nil { // warm-up / sanity run
		return 0, 0, err
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		if uncached {
			resetRuntimeCaches()
		}
		if err := op(); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&after)
	nsPerOp = float64(elapsed.Nanoseconds()) / float64(iters)
	allocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(iters)
	return nsPerOp, allocsPerOp, nil
}

// CacheBenchmarks measures the three steady-state families on procs
// simulated processors, iters iterations per measurement:
//
//   - section-assign: FillSection + MapSection of a strided section
//     (pure addressing, no communication)
//   - jacobi-sweep: one Jacobi iteration — Combine of shifted
//     sections, pointwise scale, Copy back
//   - redistribute: a cyclic(4) ⇄ cyclic(7) bounce via RedistributeInto
func CacheBenchmarks(procs int64, iters int) ([]CacheBenchResult, error) {
	if procs < 1 {
		return nil, fmt.Errorf("bench: need at least one processor, got %d", procs)
	}
	if iters < 1 {
		iters = 50
	}
	m := machine.MustNew(int(procs))
	n := procs * 32

	secArr := hpf.MustNewArray(dist.MustNew(procs, 8), n)
	sec := section.Section{Lo: 1, Hi: n - 2, Stride: 3}
	sectionOp := func() error {
		if err := secArr.FillSection(sec, 1); err != nil {
			return err
		}
		return secArr.MapSection(sec, func(v float64) float64 { return v * 0.5 })
	}

	layout := dist.MustNew(procs, 4)
	x := hpf.MustNewArray(layout, n)
	tmp := hpf.MustNewArray(layout, n)
	interior := section.Section{Lo: 1, Hi: n - 2, Stride: 1}
	left := section.Section{Lo: 0, Hi: n - 3, Stride: 1}
	right := section.Section{Lo: 2, Hi: n - 1, Stride: 1}
	jacobiOp := func() error {
		if err := comm.Combine(m, tmp, interior, x, left, x, right, comm.Add); err != nil {
			return err
		}
		if err := tmp.MapSection(interior, func(v float64) float64 { return 0.5 * v }); err != nil {
			return err
		}
		return comm.Copy(m, x, interior, tmp, interior)
	}

	ra := hpf.MustNewArray(dist.MustNew(procs, 4), n)
	rb := hpf.MustNewArray(dist.MustNew(procs, 7), n)
	redistOp := func() error {
		if err := redist.RedistributeInto(m, rb, ra); err != nil {
			return err
		}
		return redist.RedistributeInto(m, ra, rb)
	}

	families := []struct {
		name string
		op   func() error
	}{
		{"section-assign", sectionOp},
		{"jacobi-sweep", jacobiOp},
		{"redistribute", redistOp},
	}

	var out []CacheBenchResult
	for _, f := range families {
		uNs, uAllocs, err := measureOp(iters, true, f.op)
		if err != nil {
			return nil, fmt.Errorf("bench: %s uncached: %w", f.name, err)
		}
		resetRuntimeCaches()
		if err := f.op(); err != nil { // warm every cache once
			return nil, fmt.Errorf("bench: %s warm-up: %w", f.name, err)
		}
		h0, m0 := cacheTotals()
		cNs, cAllocs, err := measureOp(iters, false, f.op)
		if err != nil {
			return nil, fmt.Errorf("bench: %s cached: %w", f.name, err)
		}
		h1, m1 := cacheTotals()
		hits, misses := h1-h0, m1-m0
		hitRate := 0.0
		if hits+misses > 0 {
			hitRate = float64(hits) / float64(hits+misses)
		}
		out = append(out, CacheBenchResult{
			Name:                f.name,
			UncachedNsPerOp:     uNs,
			CachedNsPerOp:       cNs,
			UncachedAllocsPerOp: uAllocs,
			CachedAllocsPerOp:   cAllocs,
			HitRate:             hitRate,
			SteadyMisses:        misses,
		})
	}
	return out, nil
}

// FormatCacheBench renders the cold-vs-warm comparison.
func FormatCacheBench(results []CacheBenchResult) string {
	var b strings.Builder
	b.WriteString("Plan cache: steady-state iteration cost, cold vs warm caches\n")
	b.WriteString(fmt.Sprintf("%-16s%14s%14s%9s%15s%15s%10s%8s\n",
		"family", "cold ns/op", "warm ns/op", "speedup",
		"cold allocs/op", "warm allocs/op", "hit rate", "misses"))
	for _, r := range results {
		b.WriteString(fmt.Sprintf("%-16s%14.0f%14.0f%8.1fx%15.1f%15.1f%9.1f%%%8d\n",
			r.Name, r.UncachedNsPerOp, r.CachedNsPerOp, r.Speedup(),
			r.UncachedAllocsPerOp, r.CachedAllocsPerOp, 100*r.HitRate, r.SteadyMisses))
	}
	return b.String()
}
