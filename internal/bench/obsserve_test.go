package bench

import (
	"testing"
)

// TestObsServeBench runs a small herd and checks the span-derived
// attribution is internally consistent: one build per round, every
// other herd member a waiter, and the core phases populated.
func TestObsServeBench(t *testing.T) {
	const herd, rounds = 8, 2
	r, err := ObsServeBench(herd, rounds)
	if err != nil {
		t.Fatal(err)
	}
	if r.Requests != herd*rounds {
		t.Errorf("requests = %d, want %d", r.Requests, herd*rounds)
	}
	if r.Builds != rounds {
		t.Errorf("builds = %d, want %d (one per cold key)", r.Builds, rounds)
	}
	// Late herd members can land after the build publishes (cache hit
	// instead of coalesced wait), so waiters is bounded, not exact.
	if r.Waiters < 1 || r.Waiters > (herd-1)*rounds {
		t.Errorf("waiters = %d, want 1..%d", r.Waiters, (herd-1)*rounds)
	}
	for _, name := range []string{"request", "admission", "build", "tables", "select", "encode"} {
		if p := r.Phase(name); p.Count == 0 {
			t.Errorf("phase %q has no samples", name)
		}
	}
	if req, build := r.Phase("request"), r.Phase("build"); build.MaxNs > req.MaxNs {
		t.Errorf("build max %d exceeds request max %d", build.MaxNs, req.MaxNs)
	}
	if out := FormatObsServe(r); len(out) == 0 {
		t.Error("empty formatted table")
	}
}
